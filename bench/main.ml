(* CHLS benchmark harness.

   `dune exec bench/main.exe` regenerates every experiment table
   (T1, E1..E9 in experiments.ml) and then runs the bechamel compiler-
   throughput microbenchmarks (E10).  Pass --skip-perf to stop after the
   experiment tables (used by CI-style runs where wall-clock timings are
   noise). *)

let compile_pipeline_benchmarks () =
  let open Bechamel in
  let src = (Workloads.matmul).Workloads.source in
  let program = Typecheck.parse_and_check src in
  let lower_only = Passes.pipeline "bench-lower" in
  let lowered, _ = Passes.lower_simplify program ~entry:"matmul" in
  let simplified = lowered.Lower.func in
  let tests =
    [ Test.make ~name:"parse+typecheck" (Staged.stage (fun () ->
          ignore (Typecheck.parse_and_check src)));
      Test.make ~name:"lower-to-cir" (Staged.stage (fun () ->
          ignore (Passes.run lower_only program ~entry:"matmul")));
      Test.make ~name:"ssa-construction" (Staged.stage (fun () ->
          ignore (Ssa.of_func simplified)));
      Test.make ~name:"list-schedule" (Staged.stage (fun () ->
          Array.iter
            (fun blk ->
              ignore
                (Schedule.list_schedule simplified
                   Schedule.default_allocation blk.Cir.instrs))
            simplified.Cir.fn_blocks));
      Test.make ~name:"fsmd-elaborate-netlist" (Staged.stage (fun () ->
          let fsmd =
            Fsmd.of_func simplified ~schedule_block:(fun blk ->
                Schedule.list_schedule simplified
                  Schedule.default_allocation blk.Cir.instrs)
          in
          ignore (Rtlgen.elaborate fsmd)));
      Test.make ~name:"interp-reference-run" (Staged.stage (fun () ->
          ignore
            (Interp.run program ~entry:"matmul"
               ~args:[ Bitvec.of_int ~width:64 3 ])));
      Test.make ~name:"cash-async-sim" (Staged.stage (fun () ->
          let ssa = Ssa.of_func simplified in
          ignore (Asim.run ssa ~args:[ Bitvec.of_int ~width:64 3 ]))) ]
  in
  Tables.section "E10" "Compiler throughput (bechamel)"
    "not a paper table: microbenchmarks of the synthesis pipeline stages on \
     the matmul kernel";
  let clock = Toolkit.Instance.monotonic_clock in
  let label = Measure.label clock in
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let result =
            Benchmark.run
              (Benchmark.cfg ~quota:(Time.second 0.2) ~kde:None ())
              [ clock ] elt
          in
          let samples = result.Benchmark.lr in
          let runs = Array.length samples in
          if runs > 0 then begin
            let per_run =
              Array.map
                (fun m ->
                  Measurement_raw.get ~label m
                  /. Float.max 1. (Measurement_raw.run m))
                samples
            in
            Array.sort compare per_run;
            Printf.printf "  %-28s %12.1f ns/run  (%d samples)\n"
              (Test.Elt.name elt)
              per_run.(runs / 2)
              runs
          end)
        (Test.elements test))
    tests

let () =
  let skip_perf = Array.exists (fun a -> a = "--skip-perf") Sys.argv in
  (* CI entry: just the compiled-simulation bench on one kernel, so the
     BENCH_simcomp.json artifact (with its built-in equivalence check)
     regenerates quickly on every push *)
  if Array.exists (fun a -> a = "--simcomp-smoke") Sys.argv then begin
    Simcomp_bench.run_smoke ();
    exit 0
  end;
  (* CI entry: the serve bench alone, so BENCH_serve.json (two-process
     store persistence + Domain-pool throughput, every response
     oracle-checked) regenerates on every push *)
  if Array.exists (fun a -> a = "--serve-smoke") Sys.argv then begin
    Serve_bench.run_smoke ();
    exit 0
  end;
  (* CI entry: the fuzz bench alone, so BENCH_fuzz.json (dialect-matrix
     fuzz throughput + the workload oracle-agreement matrix, failing hard
     on any divergence) regenerates on every push *)
  if Array.exists (fun a -> a = "--fuzz-smoke") Sys.argv then begin
    Fuzz_bench.run_smoke ();
    exit 0
  end;
  (* CI entry: the explore bench alone, so BENCH_explore.json (per-kernel
     design-space sweeps, every point oracle-verified, warm re-sweeps all
     cache hits) regenerates on every push *)
  if Array.exists (fun a -> a = "--explore-smoke") Sys.argv then begin
    Explore_bench.run_smoke ();
    exit 0
  end;
  print_endline
    "CHLS experiment harness — reproducing Edwards, \"The Challenges of \
     Hardware\nSynthesis from C-like Languages\" (DATE 2005).";
  Experiments.run_all ();
  Ablations.run_all ();
  (* the settle-strategy comparison always runs: its node-eval counters are
     deterministic (only the wall-time column is machine-dependent) and it
     doubles as a differential check of the event-driven evaluator *)
  Neteval_bench.run_all ();
  (* the driver sweep's cache counters are likewise deterministic *)
  Driver_bench.run_all ();
  (* fuzz corpus + oracle-agreement matrix: deterministic generation, so
     the agreement counts are stable (only wall time varies) *)
  Fuzz_bench.run_all ();
  (* design-space sweeps: deterministic points and fronts; the warm
     re-sweep doubles as the config-keyed cache regression check *)
  Explore_bench.run_all ();
  (* the serve bench's cache-provenance counts and oracle checks are
     deterministic too; it must precede anything that might spawn a
     domain, because its persistence phase forks *)
  Serve_bench.run_all ();
  if not skip_perf then begin
    (* compiled vs interpreting engines: wall-clock cycles/sec, so it sits
       with the perf benchmarks (the equivalence check inside always runs
       under dune runtest via test_simcomp) *)
    Simcomp_bench.run_all ();
    compile_pipeline_benchmarks ()
  end
  else print_endline "\n(E10 and simcomp skipped: --skip-perf)"
