(* BENCH_explore: the design-space sweep as an experiment.

   For a handful of workload kernels, run the full explore grid
   (resource bound x chaining budget x unroll factor x backend), verify
   every design point against the reference interpreter, and record the
   Pareto front minimizing (area, cycles, clock period).  A second,
   warm sweep over the same grid must be answered entirely by the
   driver's design cache — one front-tier hit per distinct config
   digest — which is the bench's cache regression check.

   Any failed or oracle-diverging point fails the bench loudly.
   Results go to BENCH_explore.json (schema chls.bench-explore/1). *)

let backend_names = [ "bachc"; "hardwarec"; "transmogrifier"; "c2v" ]

let kernels () =
  [ Workloads.gcd; Workloads.fir; Workloads.dotprod; Workloads.crc ]

type row = {
  workload : string;
  points : int;
  verified : int;
  infeasible : int;
  rejected : int;
  pareto : int list;
  sweep : Explore.sweep;
  wall_ms : float;
  warm_hits : int;  (* front-tier hits answering the second sweep *)
}

let count sweep name =
  List.length
    (List.filter
       (fun (c : Explore.cell) ->
         Explore.status_name c.Explore.cell_status = name)
       sweep.Explore.sw_cells)

let front_hits () =
  match List.assoc_opt "driver.cache.front_hits" (Driver.cache_metrics ()) with
  | Some n -> n
  | None -> 0

let sweep_row (w : Workloads.t) : row =
  let backends = List.map Registry.get backend_names in
  let args = List.hd w.Workloads.arg_sets in
  let run () =
    Explore.run ~source:w.Workloads.source ~entry:w.Workloads.entry ~args
      Explore.default_grid backends
  in
  let sweep = run () in
  (* warm re-run: every point is a distinct config digest already in the
     front tier, so the second sweep must be all hits *)
  let h0 = front_hits () in
  let _warm = run () in
  let warm_hits = front_hits () - h0 in
  let failed = count sweep "failed" and unverified = count sweep "unverified" in
  if failed > 0 || unverified > 0 then
    failwith
      (Printf.sprintf
         "explore bench: %s has %d failed / %d unverified point(s) — run \
          `chlsc explore` on the kernel for the per-point detail"
         w.Workloads.name failed unverified);
  { workload = w.Workloads.name;
    points = List.length sweep.Explore.sw_cells;
    verified = Explore.verified_count sweep;
    infeasible = count sweep "infeasible";
    rejected = count sweep "rejected";
    pareto = sweep.Explore.sw_pareto;
    sweep;
    wall_ms = sweep.Explore.sw_wall_ms;
    warm_hits }

let json_of_row r =
  let pareto_cells =
    List.map
      (fun i ->
        let c = List.nth r.sweep.Explore.sw_cells i in
        let meas =
          match c.Explore.cell_status with
          | Explore.Measured m ->
            let f = function
              | Some v -> Metrics.Fixed (2, v)
              | None -> Metrics.Null
            in
            let n = function
              | Some v -> Metrics.Int v
              | None -> Metrics.Null
            in
            [ ("area", f m.Explore.m_area);
              ("cycles", n m.Explore.m_cycles);
              ("period", f m.Explore.m_period) ]
          | _ -> []
        in
        Metrics.Obj
          (( "point", Metrics.Int i )
          :: ("backend", Metrics.String c.Explore.cell_backend)
          :: ("config", Metrics.String c.Explore.cell_digest)
          :: ("knobs", Config.to_json c.Explore.cell_config)
          :: meas))
      r.pareto
  in
  Metrics.Obj
    [ ("workload", Metrics.String r.workload);
      ("points", Metrics.Int r.points);
      ("verified", Metrics.Int r.verified);
      ("infeasible", Metrics.Int r.infeasible);
      ("rejected", Metrics.Int r.rejected);
      ("pareto", Metrics.List pareto_cells);
      ("wall_ms", Metrics.Fixed (1, r.wall_ms));
      ("warm_front_hits", Metrics.Int r.warm_hits) ]

let emit_json path rows =
  let m = Metrics.create () in
  Metrics.set_string m "schema" "chls.bench-explore/1";
  Metrics.set_string m "experiment"
    "design-space sweep: (adders x chain budget x unroll x backend) grid \
     per kernel, every point oracle-verified, Pareto front minimizing \
     (area, cycles, period), warm re-sweep answered by the design cache";
  Metrics.set_string m "backends" (String.concat "," backend_names);
  Metrics.set m "sweeps" (Metrics.List (List.map json_of_row rows));
  Metrics.write_file m path

let run_with kernels () =
  Tables.section "BENCH" "Design-space exploration"
    "every kernel swept over the (adders x chain x unroll x backend) \
     grid; each point is compiled under its own config digest, \
     simulated, and checked against the reference interpreter; the \
     Pareto front minimizes (area, cycles, period)";
  Driver.clear_cache ();
  let rows = List.map sweep_row kernels in
  Tables.table
    [ 12; 7; 9; 11; 9; 14; 8; 10 ]
    [ "workload"; "points"; "verified"; "infeasible"; "rejected";
      "pareto"; "ms"; "warm hits" ]
    (List.map
       (fun r ->
         [ r.workload;
           string_of_int r.points;
           string_of_int r.verified;
           string_of_int r.infeasible;
           string_of_int r.rejected;
           String.concat ","
             (List.map (fun i -> "#" ^ string_of_int i) r.pareto);
           Printf.sprintf "%.0f" r.wall_ms;
           string_of_int r.warm_hits ])
       rows);
  List.iter
    (fun r ->
      if r.warm_hits < r.points then
        failwith
          (Printf.sprintf
             "explore bench: warm re-sweep of %s hit the cache %d/%d \
              times — config digests are not keying the design cache"
             r.workload r.warm_hits r.points))
    rows;
  emit_json "BENCH_explore.json" rows;
  Printf.printf
    "\nEvery point oracle-verified; warm sweeps all cache hits; wrote \
     BENCH_explore.json\n"

let run_all () = run_with (kernels ()) ()

(* CI smoke: the same sweep and artifact (the grid is already small). *)
let run_smoke () = run_with (kernels ()) ()
