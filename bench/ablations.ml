(* Ablations (A1..A4): sensitivity of the headline results to the design
   choices DESIGN.md calls out — the chaining budget, the functional-unit
   allocation, memory ports, and the asynchronous handshake overhead.
   These are not paper claims; they check that the E-series conclusions
   are not artifacts of one parameter setting. *)

let compile_bachc_with resources (w : Workloads.t) =
  let program = Workloads.parse w in
  Bachc.compile ~resources program ~entry:w.Workloads.entry

let run_cycles design args =
  let r = design.Design.run (Design.int_args args) in
  (Option.get r.Design.cycles, Option.get design.Design.clock_period)

(* A1: the chaining budget trades cycles against clock period; wall time
   should have a sweet spot, not a monotone trend. *)
let chain_budget_sweep () =
  Tables.section "A1" "Ablation: operator-chaining budget (Bach C, matmul)"
    "design choice: how much combinational delay may share one control step";
  let widths = [ 12; 9; 9; 12 ] in
  let rows =
    List.map
      (fun budget ->
        let resources =
          { Schedule.default_allocation with Schedule.chain_budget = budget }
        in
        let design = compile_bachc_with resources Workloads.matmul in
        let cycles, period = run_cycles design [ 3 ] in
        [ (if budget = infinity then "unlimited" else Tables.f0 budget);
          Tables.i cycles; Tables.f1 period;
          Tables.f0 (float_of_int cycles *. period) ])
      [ 1.; 5.; 10.; 20.; 40.; 80.; infinity ]
  in
  Tables.table widths [ "budget"; "cycles"; "period"; "wall time" ] rows;
  Printf.printf
    "\nExpected: cycles fall and the period grows as the budget loosens; \
     wall time\nbottoms out in the middle — neither extreme rule (one op \
     per cycle, chain\neverything) is optimal, which is the E3 spectrum in \
     one knob.\n"

(* A2: functional-unit allocation. *)
let resource_sweep () =
  Tables.section "A2" "Ablation: functional-unit allocation (Bach C)"
    "design choice: how many adders/multipliers the list scheduler may use";
  let allocations =
    [ ("1 add, 1 mul", Some 1, Some 1);
      ("2 add, 1 mul", Some 2, Some 1);
      ("2 add, 2 mul", Some 2, Some 2);
      ("4 add, 4 mul", Some 4, Some 4);
      ("unlimited", None, None) ]
  in
  List.iter
    (fun (w : Workloads.t) ->
      Printf.printf "\n%s:\n" w.Workloads.name;
      let widths = [ 14; 9; 9 ] in
      let rows =
        List.map
          (fun (label, adders, multipliers) ->
            let resources =
              { Schedule.default_allocation with
                Schedule.adders; multipliers }
            in
            let design = compile_bachc_with resources w in
            let cycles, period =
              run_cycles design (List.hd w.Workloads.arg_sets)
            in
            [ label; Tables.i cycles; Tables.f1 period ])
          allocations
      in
      Tables.table widths [ "allocation"; "cycles"; "period" ] rows)
    [ Workloads.fir; Workloads.matmul ];
  Printf.printf
    "\nExpected: diminishing returns — cycles shrink from 1 to 2 units and \
     then\nflatten (the E1 ILP ceiling seen from the resource side).\n"

(* A3: memory ports per region. *)
let memory_port_sweep () =
  Tables.section "A3" "Ablation: memory ports per region (Bach C, dotprod)"
    "design choice: loads per region per step (the partitioned-memory \
     advantage of E9 depends on it)";
  let widths = [ 16; 9; 9 ] in
  let rows =
    List.map
      (fun ports ->
        let resources =
          { Schedule.default_allocation with Schedule.mem_read_ports = ports }
        in
        let design = compile_bachc_with resources Workloads.dotprod in
        let cycles, period = run_cycles design [ 3; -2 ] in
        [ Printf.sprintf "%d read port%s" ports (if ports = 1 then "" else "s");
          Tables.i cycles; Tables.f1 period ])
      [ 1; 2; 4 ]
  in
  Tables.table widths [ "ports"; "cycles"; "period" ] rows;
  Printf.printf
    "\nExpected: little effect here because dotprod reads *different* \
     regions in\neach step (the partitioning already parallelized them) — \
     ports matter within\na region, partitioning matters across regions.\n"

(* A4: the asynchronous handshake overhead. *)
let handshake_sweep () =
  Tables.section "A4" "Ablation: CASH handshake overhead"
    "substitution check: E6's async-wins conclusion must survive realistic \
     per-token request/acknowledge costs";
  let widths = [ 11; 12; 12; 12 ] in
  List.iter
    (fun (w : Workloads.t) ->
      Printf.printf "\n%s:\n" w.Workloads.name;
      let program = Workloads.parse w in
      let sync_time =
        let d =
          Chls.compile_program (Registry.get "transmogrifier") program
            ~entry:w.Workloads.entry
        in
        let r = d.Design.run (Design.int_args (List.hd w.Workloads.arg_sets)) in
        float_of_int (Option.get r.Design.cycles)
        *. Option.get d.Design.clock_period
      in
      let rows =
        List.map
          (fun handshake ->
            let design =
              Cash.compile ~handshake program ~entry:w.Workloads.entry
            in
            let r =
              design.Design.run (Design.int_args (List.hd w.Workloads.arg_sets))
            in
            let t = Option.get r.Design.time_units in
            [ Tables.f0 handshake; Tables.f0 t; Tables.f0 sync_time;
              Tables.f2 (sync_time /. t) ])
          [ 0.; 1.; 2.; 4.; 8.; 16. ]
      in
      Tables.table widths
        [ "handshake"; "async time"; "sync (tmcc)"; "sync/async" ] rows)
    [ Workloads.gcd; Workloads.crc ];
  Printf.printf
    "\nExpected: gcd's advantage shrinks with overhead but survives \
     moderate costs\n(the division dominates); crc — already a loss at the \
     default — only gets\nworse, confirming the E6 crossover is \
     overhead-driven.\n"

let run_all () =
  chain_budget_sweep ();
  resource_sweep ();
  memory_port_sweep ();
  handshake_sweep ()
