(* BENCH_driver: the parse-once compile driver vs per-backend re-parse.

   The paper's comparisons push one C program through many surveyed
   compilers, which used to cost one full frontend run per backend.  This
   experiment sweeps the sequential workload suite across every
   registered C-compiling backend three ways:

     baseline    a fresh session per (workload, backend) pair — the old
                 facade behaviour: the frontend runs W*B times
     parse-once  one session per workload, [Driver.compile_all] — the
                 frontend runs W times, B-1 frontend cache hits each
     warm-cache  the same sessions again — every design is a content-hash
                 cache hit, no backend work at all

   The cache counters are deterministic (asserted below); only the wall
   times vary machine to machine.  Results print as a table and land in
   BENCH_driver.json so the perf trajectory is tracked across PRs. *)

let workloads = Workloads.sequential

let backends () = Registry.compiling ()

let sum_counter sessions key =
  List.fold_left
    (fun acc s ->
      match Metrics.find (Driver.metrics s) key with
      | Some (Metrics.Int n) -> acc + n
      | _ -> acc)
    0 sessions

type phase = {
  label : string;
  wall_ms : float;
  compiled : int;  (* (workload, backend) pairs that produced a design *)
  frontend_runs : int;
  cache_hits : int;
  cache_misses : int;
}

let phase_of label ~wall_ms ~compiled sessions =
  { label;
    wall_ms;
    compiled;
    frontend_runs = sum_counter sessions "driver.cache.frontend_misses";
    cache_hits = sum_counter sessions "driver.cache.hits";
    cache_misses = sum_counter sessions "driver.cache.misses" }

(* Best-of-repeats: the counters are identical across repetitions, only
   the wall time varies. *)
let timed_phase ~repeats f =
  let best = ref None in
  for _ = 1 to repeats do
    let t0 = Sys.time () in
    let p = f () in
    let wall = (Sys.time () -. t0) *. 1000. in
    match !best with
    | Some prev when prev.wall_ms <= wall -> ()
    | _ -> best := Some { p with wall_ms = wall }
  done;
  Option.get !best

let count_ok results =
  List.length
    (List.filter (fun (_, r) -> Result.is_ok r) results)

let baseline () =
  Driver.clear_cache ();
  let compiled = ref 0 and sessions = ref [] in
  List.iter
    (fun (w : Workloads.t) ->
      List.iter
        (fun b ->
          let s =
            Driver.create ~entry:w.Workloads.entry w.Workloads.source
          in
          sessions := s :: !sessions;
          match Driver.compile s b with
          | Ok _ -> incr compiled
          | Error _ -> ())
        (backends ()))
    workloads;
  phase_of "per-backend re-parse" ~wall_ms:0. ~compiled:!compiled !sessions

let parse_once () =
  Driver.clear_cache ();
  let sessions =
    List.map
      (fun (w : Workloads.t) ->
        Driver.create ~entry:w.Workloads.entry w.Workloads.source)
      workloads
  in
  let compiled =
    List.fold_left
      (fun acc s ->
        acc + count_ok (Driver.compile_all ~backends:(backends ()) s))
      0 sessions
  in
  (phase_of "parse-once driver" ~wall_ms:0. ~compiled sessions, sessions)

let warm sessions =
  let compiled =
    List.fold_left
      (fun acc s ->
        acc + count_ok (Driver.compile_all ~backends:(backends ()) s))
      0 sessions
  in
  (* the sessions' counters accumulate across phases; report the deltas
     by construction: every lookup in this phase is a hit *)
  compiled

let json_of_phase p =
  Metrics.Obj
    [ ("wall_ms", Metrics.Fixed (3, p.wall_ms));
      ("compiled", Metrics.Int p.compiled);
      ("frontend_runs", Metrics.Int p.frontend_runs);
      ("cache_hits", Metrics.Int p.cache_hits);
      ("cache_misses", Metrics.Int p.cache_misses) ]

let run_all () =
  Tables.section "BENCH"
    "Compile driver: parse-once + content-hashed cache vs re-parse"
    "the survey's tables compare many compilers on one program; the \
     driver amortizes the shared frontend and memoizes designs by \
     content hash";
  let n_backends = List.length (backends ()) in
  let n_workloads = List.length workloads in
  let base = timed_phase ~repeats:3 baseline in
  let once = timed_phase ~repeats:3 (fun () -> fst (parse_once ())) in
  (* the warm phase needs live sessions: run parse-once one more time and
     sweep again on its sessions *)
  let cold, sessions = parse_once () in
  let t0 = Sys.time () in
  let warm_compiled = warm sessions in
  let warm_ms = (Sys.time () -. t0) *. 1000. in
  let warm_hits = sum_counter sessions "driver.cache.hits" - cold.cache_hits in
  let warm_phase =
    { label = "warm cache (again)";
      wall_ms = warm_ms;
      compiled = warm_compiled;
      frontend_runs = 0;
      cache_hits = warm_hits;
      cache_misses =
        sum_counter sessions "driver.cache.misses" - cold.cache_misses }
  in
  (* deterministic invariants: frontend work is once per source in the
     driver sweep (B-1 frontend hits per workload), W*B in the baseline;
     the warm sweep misses nothing *)
  assert (base.frontend_runs = n_workloads * n_backends);
  assert (once.frontend_runs = n_workloads);
  assert (once.cache_hits >= n_workloads * (n_backends - 1));
  assert (warm_phase.cache_misses = 0);
  assert (base.compiled = once.compiled && once.compiled = warm_compiled);
  let widths = [ 22; 10; 9; 14; 12; 12 ] in
  Tables.table widths
    [ "sweep"; "wall ms"; "designs"; "frontend runs"; "cache hits";
      "cache misses" ]
    (List.map
       (fun p ->
         [ p.label; Printf.sprintf "%.3f" p.wall_ms; Tables.i p.compiled;
           Tables.i p.frontend_runs; Tables.i p.cache_hits;
           Tables.i p.cache_misses ])
       [ base; once; warm_phase ]);
  let m = Metrics.create () in
  Metrics.set_string m "experiment"
    "compile driver: parse-once + content-hashed design cache vs \
     per-backend re-parse";
  Metrics.set_int m "workloads" n_workloads;
  Metrics.set_int m "backends" n_backends;
  Metrics.set m "baseline" (json_of_phase base);
  Metrics.set m "parse_once" (json_of_phase once);
  Metrics.set m "warm_cache" (json_of_phase warm_phase);
  Metrics.set_fixed m "frontend_amortization" ~decimals:2
    (float_of_int base.frontend_runs /. float_of_int (max 1 once.frontend_runs));
  Metrics.set_fixed m "speedup_parse_once" ~decimals:2
    (base.wall_ms /. Float.max 0.001 once.wall_ms);
  Metrics.set_fixed m "speedup_warm" ~decimals:2
    (base.wall_ms /. Float.max 0.001 warm_phase.wall_ms);
  Metrics.write_file m "BENCH_driver.json";
  Printf.printf
    "\nFrontend runs: %d -> %d (once per source); warm sweep misses \
     nothing; wrote BENCH_driver.json\n"
    base.frontend_runs once.frontend_runs
