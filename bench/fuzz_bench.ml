(* BENCH_fuzz: the dialect-matrix fuzzer as an experiment.

   Two tables in one artifact:

   - fuzz throughput: for every C-compiling dialect, generate a fixed
     corpus with Fuzzgen and push it through the whole differential
     stack (reference interpreter + every backend + the concurrency
     checker).  The JSON rows carry corpus size, backend compile
     attempts per second, and the divergence count — which must be
     zero, or the bench fails loudly with the shrunk reproducer.

   - oracle-agreement matrix: every built-in workload kernel against
     every backend.  Each cell is "agree" (compiled, ran, matched the
     reference on every argument vector), "reject" (typed dialect
     rejection), "skip" (no C frontend), or "DIVERGE".  Any DIVERGE
     cell fails the bench.

   Results go to BENCH_fuzz.json (schema chls.bench-fuzz/1). *)

let seed = 1

(* --- fuzz throughput ------------------------------------------------- *)

type fuzz_row = {
  dialect : string;
  programs : int;
  attempts : int; (* backend compile+run attempts, rejections included *)
  agreed : int;
  rejected : int;
  divergences : int;
  wall_ms : float;
}

let fuzz_row n (d : Dialect.t) =
  let r = Fuzz.run_dialect d ~seed ~n in
  { dialect = r.Fuzz.rep_dialect;
    programs = r.Fuzz.rep_generated;
    attempts =
      r.Fuzz.rep_agreed + r.Fuzz.rep_rejected
      + List.length r.Fuzz.rep_divergences;
    agreed = r.Fuzz.rep_agreed;
    rejected = r.Fuzz.rep_rejected;
    divergences = List.length r.Fuzz.rep_divergences;
    wall_ms = r.Fuzz.rep_wall_ms }

let attempts_per_sec r =
  float_of_int r.attempts /. Float.max 1e-9 (r.wall_ms /. 1000.)

let json_of_fuzz_row r =
  Metrics.Obj
    [ ("dialect", Metrics.String r.dialect);
      ("programs", Metrics.Int r.programs);
      ("compile_attempts", Metrics.Int r.attempts);
      ("agreed", Metrics.Int r.agreed);
      ("rejected", Metrics.Int r.rejected);
      ("divergences", Metrics.Int r.divergences);
      ("wall_ms", Metrics.Fixed (1, r.wall_ms));
      ("attempts_per_sec", Metrics.Fixed (0, attempts_per_sec r)) ]

(* --- oracle-agreement matrix ----------------------------------------- *)

type cell = Agree | Reject | Skip | Diverge of string

let cell_string = function
  | Agree -> "agree"
  | Reject -> "reject"
  | Skip -> "skip"
  | Diverge d -> "DIVERGE: " ^ d

let workload_cell (w : Workloads.t) backend =
  let session = Driver.create ~entry:w.Workloads.entry w.Workloads.source in
  match Driver.compile session backend with
  | Error (Driver.Dialect_reject _) -> Reject
  | Error (Driver.No_c_frontend _) -> Skip
  | Error e -> Diverge (Driver.render_error e)
  | Ok design -> (
    let check args =
      let expected = Workloads.reference w args in
      match Design.run_int design args with
      | Some v when v = expected -> None
      | Some v ->
        Some (Printf.sprintf "args %s: got %d, reference %d"
                (String.concat "," (List.map string_of_int args))
                v expected)
      | None -> Some "returned void"
      | exception exn -> Some (Printexc.to_string exn)
    in
    match List.filter_map check w.Workloads.arg_sets with
    | [] -> Agree
    | d :: _ -> Diverge d)

type matrix_row = { workload : string; cells : (string * cell) list }

let matrix_row backends (w : Workloads.t) =
  { workload = w.Workloads.name;
    cells =
      List.map (fun b -> (Registry.name b, workload_cell w b)) backends }

let json_of_matrix_row r =
  Metrics.Obj
    [ ("workload", Metrics.String r.workload);
      ( "backends",
        Metrics.Obj
          (List.map (fun (b, c) -> (b, Metrics.String (cell_string c)))
             r.cells) ) ]

(* --- the bench ------------------------------------------------------- *)

let emit_json path fuzz_rows matrix_rows =
  let m = Metrics.create () in
  Metrics.set_string m "schema" "chls.bench-fuzz/1";
  Metrics.set_string m "experiment"
    "dialect-matrix fuzzing throughput and workload oracle-agreement \
     matrix";
  Metrics.set_int m "fuzz_seed" seed;
  Metrics.set m "fuzz" (Metrics.List (List.map json_of_fuzz_row fuzz_rows));
  Metrics.set m "agreement"
    (Metrics.List (List.map json_of_matrix_row matrix_rows));
  Metrics.set_int m "workloads" (List.length matrix_rows);
  Metrics.set_int m "diverging"
    (List.length
       (List.filter
          (fun r ->
            List.exists
              (fun (_, c) -> match c with Diverge _ -> true | _ -> false)
              r.cells)
          matrix_rows));
  Metrics.write_file m path

let run_with ~n () =
  Tables.section "BENCH"
    "Dialect-matrix fuzzing and the oracle-agreement matrix"
    "dialect-gated random programs through every backend against the \
     reference interpreter, then every workload kernel against every \
     backend; a divergence anywhere fails the bench";
  let dialects = Fuzz.default_dialects () in
  let fuzz_rows = List.map (fuzz_row n) dialects in
  Printf.printf "\nfuzz throughput (%d programs per dialect, seed %d):\n" n
    seed;
  Tables.table
    [ 18; 9; 9; 8; 9; 11; 9 ]
    [ "dialect"; "programs"; "attempts"; "agreed"; "rejected";
      "divergences"; "att/sec" ]
    (List.map
       (fun r ->
         [ r.dialect; Tables.i r.programs; Tables.i r.attempts;
           Tables.i r.agreed; Tables.i r.rejected; Tables.i r.divergences;
           Printf.sprintf "%.0f" (attempts_per_sec r) ])
       fuzz_rows);
  List.iter
    (fun r ->
      if r.divergences > 0 then
        failwith
          (Printf.sprintf
             "fuzz bench: %d divergence(s) under %s — run `chlsc fuzz \
              --seed %d -n %d --dialects %s --out-dir fuzz-repro` for the \
              shrunk reproducers"
             r.divergences r.dialect seed n r.dialect))
    fuzz_rows;
  let backends = Registry.all () in
  let matrix_rows = List.map (matrix_row backends) Workloads.all in
  Printf.printf "\noracle-agreement matrix (%d workloads x %d backends):\n"
    (List.length matrix_rows) (List.length backends);
  Tables.table
    (16 :: List.map (fun _ -> 7) backends)
    ("workload" :: List.map Registry.name backends)
    (List.map
       (fun r ->
         r.workload
         :: List.map
              (fun (_, c) ->
                match c with
                | Agree -> "agree"
                | Reject -> "-"
                | Skip -> "skip"
                | Diverge _ -> "DIVERGE")
              r.cells)
       matrix_rows);
  let diverging =
    List.concat_map
      (fun r ->
        List.filter_map
          (fun (b, c) ->
            match c with
            | Diverge d -> Some (Printf.sprintf "%s/%s: %s" r.workload b d)
            | _ -> None)
          r.cells)
      matrix_rows
  in
  if diverging <> [] then
    failwith
      ("fuzz bench: oracle-agreement matrix has diverging cells:\n  "
      ^ String.concat "\n  " diverging);
  emit_json "BENCH_fuzz.json" fuzz_rows matrix_rows;
  Printf.printf
    "\nAll cells agree or reject by dialect rule; wrote BENCH_fuzz.json\n"

let run_all () = run_with ~n:50 ()

(* CI smoke: a smaller corpus, same artifact, same hard failure on any
   divergence *)
let run_smoke () = run_with ~n:10 ()
