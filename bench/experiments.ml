(* The experiment implementations (T1, E1..E9).  bench/main.ml drives
   these and adds the bechamel compile-performance section (E10).  Each
   experiment regenerates one paper artifact or quantifiable claim; the
   mapping is documented in DESIGN.md and results are recorded in
   EXPERIMENTS.md. *)

let kernels_for_ilp =
  [ Workloads.gcd; Workloads.fib; Workloads.fir; Workloads.dotprod;
    Workloads.matmul; Workloads.bsort; Workloads.crc; Workloads.checksum;
    Workloads.histogram; Workloads.isqrt_newton; Workloads.transpose ]

(* Compile through the driver, failing loudly — the experiments only push
   workloads at backends whose dialect accepts them. *)
let driver_compile session backend =
  match Driver.compile session backend with
  | Ok design -> design
  | Error e -> failwith (Driver.render_error e)

let lowered (w : Workloads.t) =
  let program = Workloads.parse w in
  let l, _ = Passes.lower_simplify program ~entry:w.Workloads.entry in
  l.Lower.func

(* ---------------------------------------------------------------- T1 -- *)

let table1 () =
  Tables.section "T1" "Table 1: C-like languages/compilers (chronological)"
    "the paper's Table 1 catalogs eleven languages with one-line \
     characterisations";
  print_string (Chls.render_table1 ());
  Printf.printf
    "\nEvery row is implemented as a CHLS dialect + backend (see DESIGN.md).\n"

(* ---------------------------------------------------------------- E1 -- *)

let ilp_limits () =
  Tables.section "E1" "Instruction-level parallelism limits (Wall-style)"
    "\"ILP beyond about five simultaneous instructions is unlikely due to \
     fundamental limits [25,26]\"";
  let windows = [ 2; 4; 8; 16; 32; 64; 128; 256 ] in
  let widths = [ 10; 8 ] @ List.map (fun _ -> 7) windows @ [ 9; 8 ] in
  let header =
    [ "kernel"; "instrs" ]
    @ List.map (fun w -> Printf.sprintf "w=%d" w) windows
    @ [ "dataflow"; "no-spec" ]
  in
  let rows =
    List.map
      (fun (w : Workloads.t) ->
        let func = lowered w in
        let trace =
          Ilp_limits.trace_of func ~args:(List.hd w.Workloads.arg_sets)
        in
        let ipc window =
          (Ilp_limits.measure trace
             { Ilp_limits.window; renaming = true; speculation = `Perfect })
            .Ilp_limits.ipc
        in
        let dataflow =
          (Ilp_limits.measure trace
             { Ilp_limits.window = max_int; renaming = true;
               speculation = `Perfect })
            .Ilp_limits.ipc
        and no_spec =
          (Ilp_limits.measure trace
             { Ilp_limits.window = max_int; renaming = true;
               speculation = `None })
            .Ilp_limits.ipc
        in
        [ w.Workloads.name; Tables.i (List.length trace) ]
        @ List.map (fun win -> Tables.f2 (ipc win)) windows
        @ [ Tables.f2 dataflow; Tables.f2 no_spec ])
      kernels_for_ilp
  in
  Tables.table widths header rows;
  Printf.printf
    "\nShape to check: IPC grows with window size but saturates in the \
     single digits;\nremoving speculation (no-spec) collapses it toward ~1-2 \
     — branches, not window\nsize, are the binding limit, matching Wall.\n"

(* ---------------------------------------------------------------- E2 -- *)

let pipeline_sources =
  [ ( "vecsum", `Regular,
      {|
      int v[64];
      int f(int n) {
        int acc = 0;
        for (int i = 0; i < 64; i = i + 1) { acc = acc + v[i]; }
        return acc + n;
      }
      |} );
    ( "dotprod", `Regular,
      {|
      int va[64];
      int vb[64];
      int f(int n) {
        int acc = 0;
        for (int i = 0; i < 64; i = i + 1) { acc = acc + va[i] * vb[i]; }
        return acc + n;
      }
      |} );
    ( "vecscale", `Regular,
      {|
      int src[64];
      int dst[64];
      int f(int k) {
        for (int i = 0; i < 64; i = i + 1) { dst[i] = src[i] * k + 3; }
        return dst[0];
      }
      |} );
    ( "poly-eval", `Irregular_recurrence,
      {|
      int cs[64];
      int f(int x) {
        int acc = 0;
        for (int i = 0; i < 64; i = i + 1) { acc = acc * x + cs[i]; }
        return acc;
      }
      |} );
    ( "gcd", `Irregular_recurrence,
      "int f(int a, int b) { while (b != 0) { int t = b; b = a % b; a = t; } return a; }"
    );
    ( "bsort-inner", `Irregular_control,
      {|
      int data[16];
      int f(int n) {
        int acc = 0;
        for (int i = 0; i < 16; i = i + 1) {
          if (data[i] > n) { acc = acc + 1; } else { acc = acc - data[i]; }
        }
        return acc;
      }
      |} ) ]

let pipelining () =
  Tables.section "E2" "Pipelining: regular loops vs the general case"
    "\"Pipelining works well on regular loops, e.g., in scientific \
     computation, but is less effective in general.  Again, dependencies \
     and control-flow transfers limit parallelism.\"";
  let widths = [ 12; 22; 7; 7; 5; 10; 8 ] in
  Tables.table widths
    [ "loop"; "class"; "RecMII"; "ResMII"; "II"; "seq c/iter"; "speedup" ]
    (List.map
       (fun (name, cls, src) ->
         let program = Typecheck.parse_and_check src in
         let func =
           (fst (Passes.lower_simplify program ~entry:"f")).Lower.func
         in
         let class_name =
           match cls with
           | `Regular -> "regular (scientific)"
           | `Irregular_recurrence -> "recurrence-bound"
           | `Irregular_control -> "control-flow-bound"
         in
         match Pipeline.modulo_schedule func with
         | r when r.Pipeline.fallback ->
           [ name; class_name; Tables.i r.Pipeline.rec_mii;
             Tables.i r.Pipeline.res_mii; "-";
             Tables.i r.Pipeline.sequential_cycles; "1.00 (diverged)" ]
         | r ->
           [ name; class_name; Tables.i r.Pipeline.rec_mii;
             Tables.i r.Pipeline.res_mii; Tables.i r.Pipeline.ii;
             Tables.i r.Pipeline.sequential_cycles;
             Tables.f2 r.Pipeline.speedup ]
         | exception Pipeline.Irregular reason ->
           [ name; class_name; "-"; "-"; "-"; "-";
             "1.00 (" ^ reason ^ ")" ])
       pipeline_sources);
  if Pipeline.fallback_count () > 0 then
    Printf.printf "sched.modulo.fallbacks: %d\n" (Pipeline.fallback_count ());
  (* extension: if-conversion rescues the control-flow-bound loop *)
  (match
     List.find_opt (fun (_, cls, _) -> cls = `Irregular_control)
       pipeline_sources
   with
  | None -> ()
  | Some (name, _, src) ->
    let program = Typecheck.parse_and_check src in
    let func =
      (fst (Passes.lower_simplify program ~entry:"f")).Lower.func
    in
    let converted, branches = Ifconv.convert func in
    (match Pipeline.modulo_schedule converted with
    | r ->
      Printf.printf
        "\nExtension: %s + if-conversion (%d branch%s predicated): \
         RecMII=%d ResMII=%d\nII=%d, speedup %.2fx — the classic rescue for \
         control-flow-bound loops.\n"
        name branches (if branches = 1 then "" else "es")
        r.Pipeline.rec_mii r.Pipeline.res_mii r.Pipeline.ii
        r.Pipeline.speedup
    | exception Pipeline.Irregular reason ->
      Printf.printf "\nif-conversion failed to regularize %s: %s\n" name
        reason));
  Printf.printf
    "\nShape to check: regular loops reach small II (large speedup); the \
     division\nrecurrence pins gcd's II at the divider latency; internal \
     control flow defeats\nmodulo scheduling — until if-conversion \
     straightens the body.\n"

(* ---------------------------------------------------------------- E3 -- *)

let timing_backends =
  [ (Registry.get "transmogrifier"); (Registry.get "bachc"); (Registry.get "handelc");
    (Registry.get "systemc"); (Registry.get "c2verilog"); (Registry.get "cash") ]

let timing_schemes () =
  Tables.section "E3"
    "The timing-control spectrum: cycles, clock and wall-time per scheme"
    "\"Solutions range from mandatory cycle annotations to implicit rules\" \
     — each rule trades cycle count against clock period differently";
  List.iter
    (fun (w : Workloads.t) ->
      Printf.printf "\n%s (%s), args = %s\n" w.Workloads.name
        w.Workloads.description
        (String.concat ","
           (List.map string_of_int (List.hd w.Workloads.arg_sets)));
      let widths = [ 15; 9; 9; 12; 11; 24 ] in
      (* one driver session per workload: the frontend runs once for the
         whole backend sweep and designs are content-cached *)
      let session =
        Driver.create ~entry:w.Workloads.entry w.Workloads.source
      in
      let rows =
        List.filter_map
          (fun (backend, result) ->
            match result with
            | Error _ -> None
            | Ok (design : Design.t) ->
              let backend = Registry.name backend in
              let pipeline =
                match design.Design.pass_trace with
                | [] -> "(source only)"
                | trace ->
                  String.concat "; "
                    (List.map (fun r -> r.Passes.pass_name) trace)
              in
              let r =
                design.Design.run (Design.int_args (List.hd w.Workloads.arg_sets))
              in
              let cycles =
                match r.Design.cycles with Some c -> Tables.i c | None -> "-"
              in
              let period =
                match design.Design.clock_period with
                | Some p -> Tables.f1 p
                | None -> "-"
              in
              let wall =
                match Design.latency_estimate design r with
                | Some t -> Tables.f0 t
                | None -> "-"
              in
              let area =
                match design.Design.area () with
                | Some a -> Tables.f0 a.Area.total_area
                | None -> "-"
              in
              Some [ backend; cycles; period; wall; area; pipeline ])
          (Driver.compile_all ~backends:timing_backends session)
      in
      Tables.table widths
        [ "backend"; "cycles"; "period"; "wall time"; "area (GE)";
          "pipeline" ] rows)
    [ Workloads.gcd; Workloads.fir; Workloads.matmul; Workloads.crc ];
  Printf.printf
    "\nShape to check: transmogrifier minimizes cycles but pays the longest \
     clock;\nhandelc has short cycles-per-assignment but many of them; bachc \
     sits between;\nc2verilog (full ANSI C, unified memory) is an order of \
     magnitude slower;\ncash has no clock and wins wall-time when operator \
     latencies vary.\n"

(* ---------------------------------------------------------------- E4 -- *)

let recoding () =
  Tables.section "E4" "Recoding to meet timing under implicit rules"
    "\"such rules can require recoding to meet timing.  Handel-C may \
     require assignment statements to be fused and loops may need to be \
     unrolled in Transmogrifier C.\"";
  (* Transmogrifier: loop unrolling *)
  Printf.printf "Transmogrifier C: fully unrolling bounded loops\n\n";
  let widths = [ 12; 16; 9; 9; 13; 13 ] in
  let rows =
    List.map
      (fun (w : Workloads.t) ->
        let program = Workloads.parse w in
        let args = List.hd w.Workloads.arg_sets in
        let measure p =
          let design =
            Chls.compile_program (Registry.get "transmogrifier") p
              ~entry:w.Workloads.entry
          in
          let r = design.Design.run (Design.int_args args) in
          (Option.get r.Design.cycles, Option.get design.Design.clock_period)
        in
        let c0, p0 = measure program in
        let c1, p1 = measure (Loopopt.unroll_all_program program) in
        [ w.Workloads.name; "full unroll"; Tables.i c0; Tables.i c1;
          Tables.f1 p0; Tables.f1 p1 ])
      [ Workloads.fir; Workloads.checksum; Workloads.matmul ]
  in
  Tables.table widths
    [ "kernel"; "recoding"; "cyc before"; "cyc after"; "period before";
      "period after" ]
    rows;
  (* Handel-C: assignment fusion *)
  Printf.printf "\nHandel-C: fusing single-use temporaries\n\n";
  let rows =
    List.map
      (fun (w : Workloads.t) ->
        let program = Workloads.parse w in
        let args = List.hd w.Workloads.arg_sets in
        let measure p =
          let design =
            Chls.compile_program (Registry.get "handelc") p ~entry:w.Workloads.entry
          in
          let r = design.Design.run (Design.int_args args) in
          (Option.get r.Design.cycles, Option.get design.Design.clock_period)
        in
        let c0, p0 = measure program in
        let c1, p1 = measure (Loopopt.fuse_program program) in
        [ w.Workloads.name; "fuse temps"; Tables.i c0; Tables.i c1;
          Tables.f1 p0; Tables.f1 p1 ])
      [ Workloads.checksum; Workloads.fir; Workloads.fib ]
  in
  Tables.table widths
    [ "kernel"; "recoding"; "cyc before"; "cyc after"; "period before";
      "period after" ]
    rows;
  Printf.printf
    "\nShape to check: unrolling collapses cycles to 1 while the clock \
     period\nexplodes (the whole computation becomes one combinational \
     block); fusion cuts\ncycles where single-use temporaries exist \
     (checksum) and the period grows only\nif the fused chain becomes the \
     new critical path.  fib's swap pattern cannot\nfuse soundly (its \
     temporary is live across another assignment) and fir is\nalready \
     fused — recoding is workload-dependent source surgery.\n"

(* ---------------------------------------------------------------- E5 -- *)

let sum_of_products n =
  (* N-term multiply-accumulate with constant-bounded loop *)
  Printf.sprintf
    {|
    int cs[%d];
    int f(int x) {
      int acc = 0;
      for (int i = 0; i < %d; i = i + 1) {
        acc = acc + cs[i] * (x + i);
      }
      return acc;
    }
    |}
    n n

let cones_area () =
  Tables.section "E5" "Cones: flattening everything into combinational logic"
    "\"Cones flattens each function, including loops and conditionals, into \
     a single two-level network\" — loops are unrolled into silicon, so \
     area grows with trip count";
  let widths = [ 8; 10; 12; 14 ] in
  let rows =
    List.map
      (fun n ->
        let session = Driver.create ~entry:"f" (sum_of_products n) in
        let design = driver_compile session (Registry.get "cones") in
        match design.Design.area () with
        | Some a ->
          [ Tables.i n; Tables.i a.Area.num_nodes;
            Tables.f0 a.Area.total_area; Tables.f1 a.Area.critical_path ]
        | None -> [ Tables.i n; "-"; "-"; "-" ])
      [ 2; 4; 8; 16; 32; 64 ]
  in
  Tables.table widths [ "terms"; "nodes"; "area (GE)"; "critical path" ] rows;
  Printf.printf
    "\nShape to check: area grows linearly with the unrolled trip count \
     (every\niteration becomes hardware), the combinational critical path \
     grows too — the\nscheme cannot share anything across \"iterations\".\n"

(* --------------------------------------------------------------- E5b -- *)

(* The per-language concurrency-safety characterisation, regenerated from
   the static checker itself: each row is a canonical hazard shape, each
   cell the verdict Conc_check reaches under that dialect's rules.  The
   table is computed, never hand-written, so it cannot drift from the
   checker. *)
let conc_safety () =
  Tables.section "E5b"
    "Concurrency hazards under each dialect's rules (from the checker)"
    "Handel-C \"programs are supposed to avoid multiple simultaneous \
     accesses to shared resources\"; SpecC leaves shared variables to the \
     programmer (the silent hazard); Bach C's untimed semantics make any \
     racing access unordered";
  let programs =
    [ ( "clean pipeline",
        {|
        chan int c;
        int f(int n) {
          int hits = 0;
          par {
            { int i = 0; while (i < n) { send(c, i); i = i + 1; } send(c, -1); }
            { int v = 0; v = recv(c); while (v != -1) { hits = hits + v; v = recv(c); } }
          }
          return hits;
        }
        |} );
      ( "write/write race",
        {|
        int g;
        int f(int n) {
          par { { g = n; } { g = n + 1; } }
          return g;
        }
        |} );
      ( "read/write race",
        {|
        int g;
        int f(int n) {
          par { { g = n; } { int x = g; x = x + 1; } }
          return g;
        }
        |} );
      ( "unmatched send",
        {|
        chan int c;
        int f(int n) {
          par { { send(c, n); } { int x = n; x = x + 1; } }
          return n;
        }
        |} );
      ( "channel fan (3 arms)",
        {|
        chan int c;
        int f(int n) {
          par {
            { send(c, n); }
            { int a = recv(c); a = a + 1; }
            { int b = recv(c); b = b + 1; }
          }
          return n;
        }
        |} );
      ( "self rendezvous",
        {|
        chan int c;
        int f(int n) {
          par {
            { send(c, n); int x = recv(c); x = x + 1; }
            { int y = n; y = y + 1; }
          }
          return n;
        }
        |} ) ]
  in
  let dialects =
    [ Dialect.handelc; Dialect.specc; Dialect.bachc; Dialect.cyber ]
  in
  let verdict dialect program =
    let diags = Conc_check.check_program ~dialect program in
    let errors = List.length (Conc_check.errors diags)
    and warnings = List.length (Conc_check.warnings diags) in
    if errors > 0 then Printf.sprintf "ERROR x%d" errors
    else if warnings > 0 then Printf.sprintf "warn x%d" warnings
    else "ok"
  in
  let widths = 21 :: List.map (fun _ -> 11) dialects in
  let header =
    "hazard shape" :: List.map (fun (d : Dialect.t) -> d.Dialect.name) dialects
  in
  let rows =
    List.map
      (fun (name, src) ->
        let program = Typecheck.parse_and_check src in
        name :: List.map (fun d -> verdict d program) dialects)
      programs
  in
  Tables.table widths header rows;
  Printf.printf
    "\nShape to check: the clean pipeline is ok everywhere; Handel-C and \
     Cyber reject\ntwo writers but only warn on a reader beside a writer; \
     Bach C's untimed\nsemantics harden read/write races into errors too; \
     SpecC never errors — the\npaper's silent hazard, every cell a \
     warning.\n"

(* ---------------------------------------------------------------- E6 -- *)

let async_vs_sync () =
  Tables.section "E6" "Asynchronous dataflow (CASH) vs synchronous clocks"
    "\"CASH is unique because it generates asynchronous hardware\" — a \
     clocked design pays the worst-case state delay every cycle; an \
     asynchronous one pays actual operator latencies";
  let widths = [ 12; 12; 14; 14; 13; 13 ] in
  let rows =
    List.map
      (fun (w : Workloads.t) ->
        let session =
          Driver.create ~entry:w.Workloads.entry w.Workloads.source
        in
        let args = List.hd w.Workloads.arg_sets in
        let async = driver_compile session (Registry.get "cash") in
        let ra = async.Design.run (Design.int_args args) in
        let async_time = Option.get ra.Design.time_units in
        let sync_time backend =
          let d = driver_compile session backend in
          let r = d.Design.run (Design.int_args args) in
          float_of_int (Option.get r.Design.cycles)
          *. Option.get d.Design.clock_period
        in
        let tm = sync_time (Registry.get "transmogrifier") in
        let bach = sync_time (Registry.get "bachc") in
        [ w.Workloads.name; Tables.f0 async_time; Tables.f0 tm;
          Tables.f0 bach; Tables.f2 (tm /. async_time);
          Tables.f2 (bach /. async_time) ])
      [ Workloads.gcd; Workloads.fib; Workloads.fir; Workloads.matmul;
        Workloads.crc ]
  in
  Tables.table widths
    [ "kernel"; "async time"; "sync (tmcc)"; "sync (bach)"; "tmcc/async";
      "bach/async" ]
    rows;
  Printf.printf
    "\nShape to check: ratios > 1 (async wins) and largest where per-\
     operation\nlatencies are most varied (division in gcd vs cheap moves).\n"

(* ---------------------------------------------------------------- E7 -- *)

let constraint_kernel k =
  Printf.sprintf
    {|
    int f(int a, int b, int c, int d) {
      int r = 0;
      constrain(1, %d) {
        int p0 = a * b;
        int p1 = c * d;
        int p2 = (a + c) * (b + d);
        int p3 = (a - c) * (b - d);
        int s0 = p0 + p1;
        int s1 = p2 + p3;
        r = s0 ^ s1;
      }
      return r;
    }
    |}
    k

let timing_constraints () =
  Tables.section "E7" "HardwareC: timing constraints drive exploration"
    "\"these three statements must execute in two cycles ... they allow \
     easier design-space exploration\"";
  let widths = [ 14; 10; 30; 10 ] in
  let rows =
    List.map
      (fun k ->
        let program = Typecheck.parse_and_check (constraint_kernel k) in
        match Hardwarec.compile program ~entry:"f" with
        | design, report ->
          let r = design.Design.run (Design.int_args [ 3; 5; 7; 9 ]) in
          [ Printf.sprintf "max %d cycles" k;
            (if List.for_all (fun s -> s.Constrain.satisfied) report.Hardwarec.statuses
             then "met" else "violated");
            report.Hardwarec.chosen_allocation;
            Tables.i (Option.get r.Design.cycles) ]
        | exception Hardwarec.Unsatisfiable _ ->
          [ Printf.sprintf "max %d cycles" k; "unsatisfiable"; "-"; "-" ])
      [ 6; 4; 3; 2; 1 ]
  in
  Tables.table widths [ "constraint"; "status"; "allocation chosen"; "cycles" ] rows;
  Printf.printf
    "\nShape to check: tightening the max-cycle bound forces progressively \
     richer\nallocations (more functional units / deeper chaining) until the \
     constraint\nbecomes unsatisfiable — the designer explores cost/time by \
     moving one number.\n"

(* ---------------------------------------------------------------- E8 -- *)

let bitwidth_kernels =
  [ ( "crc8",
      (Workloads.crc).Workloads.source, "crc8" );
    ( "nibble-mix",
      {|
      int f(int input) {
        int lo = input & 15;
        int hi = (input >> 4) & 15;
        int sum = lo + hi;
        int prod = lo * hi;
        int flag = sum > prod;
        return sum * 256 + prod * 2 + flag;
      }
      |},
      "f" );
    ( "bool-logic",
      {|
      int f(int a, int b) {
        int p = (a > 0) & (b > 0);
        int q = (a < b) | p;
        int r = q ^ (a == b);
        return r;
      }
      |},
      "f" );
    ( "saturate",
      {|
      int f(int x) {
        int v = x & 255;
        int doubled = v * 2;
        int sat = doubled > 255 ? 255 : doubled;
        return sat;
      }
      |},
      "f" ) ]

let bitwidth () =
  Tables.section "E8" "Bit-accurate widths vs C's four sizes"
    "\"Bit vectors are natural in hardware, yet C only supports four \
     sizes\" — datapaths built at declared C widths waste area that width \
     inference recovers";
  let widths = [ 12; 13; 13; 9; 13; 13 ] in
  let rows =
    List.map
      (fun (name, src, entry) ->
        let program = Typecheck.parse_and_check src in
        let lower_only = Passes.pipeline "bitwidth-study" in
        let func = (fst (Passes.run lower_only program ~entry)).Lower.func in
        let r = Bitwidth.infer func in
        let declared_area =
          Bitwidth.datapath_area func ~widths:r.Bitwidth.declared
        and inferred_area =
          Bitwidth.datapath_area func ~widths:r.Bitwidth.widths
        in
        let declared_bits = Bitwidth.register_bits func ~widths:r.Bitwidth.declared
        and inferred_bits = Bitwidth.register_bits func ~widths:r.Bitwidth.widths in
        [ name;
          Tables.f0 declared_area; Tables.f0 inferred_area;
          Printf.sprintf "%.0f%%"
            (100. *. (1. -. (inferred_area /. declared_area)));
          Tables.i declared_bits; Tables.i inferred_bits ])
      bitwidth_kernels
  in
  Tables.table widths
    [ "kernel"; "C-width area"; "inferred"; "saved"; "C reg bits";
      "inferred" ]
    rows;
  Printf.printf
    "\nShape to check: substantial datapath area savings on bit-level code \
     (flags,\nnibbles, 8-bit CRC state) that C's int-everywhere typing hides.\n"

(* ---------------------------------------------------------------- E9 -- *)

let memory_model () =
  Tables.section "E9" "Memory models: many small memories vs one byte soup"
    "\"C's memory model is an undifferentiated array of bytes, yet many \
     small, varied memories are most effective in hardware\" — and pointer \
     support forces the undifferentiated model";
  (* same computation, array style (Bach C: partitioned regions) vs pointer
     style (C2Verilog: unified memory) *)
  let array_style =
    {|
    int va[16];
    int vb[16];
    int run(int seed) {
      for (int i = 0; i < 16; i = i + 1) {
        va[i] = seed + i;
        vb[i] = seed * 2 - i;
      }
      int acc = 0;
      for (int i = 0; i < 16; i = i + 1) { acc = acc + va[i] * vb[i]; }
      return acc;
    }
    |}
  in
  let pointer_style =
    {|
    int va[16];
    int vb[16];
    int run(int seed) {
      int* p = va;
      int* q = vb;
      for (int i = 0; i < 16; i = i + 1) {
        *(p + i) = seed + i;
        *(q + i) = seed * 2 - i;
      }
      int acc = 0;
      for (int i = 0; i < 16; i = i + 1) { acc = acc + p[i] * q[i]; }
      return acc;
    }
    |}
  in
  let widths = [ 26; 10; 9; 12; 12 ] in
  let measure label backend src =
    let program = Typecheck.parse_and_check src in
    let design = Chls.compile_program backend program ~entry:"run" in
    let r = design.Design.run (Design.int_args [ 5 ]) in
    let wall =
      match Design.latency_estimate design r with
      | Some t -> Tables.f0 t
      | None -> "-"
    in
    [ label; Chls.backend_name backend;
      Tables.i (Option.get r.Design.cycles);
      (match design.Design.clock_period with
      | Some p -> Tables.f1 p
      | None -> "-");
      wall ]
  in
  Tables.table widths
    [ "program style"; "backend"; "cycles"; "clock"; "wall time" ]
    [ measure "arrays (2 small RAMs)" (Registry.get "bachc") array_style;
      measure "arrays (unified RAM)" (Registry.get "c2verilog") array_style;
      measure "pointers (unified RAM)" (Registry.get "c2verilog") pointer_style ];
  (* points-to analysis: when is banking recoverable? *)
  let r = Pointer.analyze (Typecheck.parse_and_check pointer_style) in
  Printf.printf
    "\nPoints-to: run::p -> {%s}, run::q -> {%s}; fully partitionable = %b\n"
    (String.concat "," (Pointer.points_to r "run::p"))
    (String.concat "," (Pointer.points_to r "run::q"))
    (Pointer.fully_partitionable r);
  Printf.printf
    "\nShape to check: the same kernel is far slower through the unified \
     memory\n(every access serialized through one port + processor-style \
     sequencing) than\nwith per-array memories; the pointer version is \
     recoverable here only because\nAndersen analysis proves p and q \
     disjoint.\n"

let run_all () =
  table1 ();
  ilp_limits ();
  pipelining ();
  timing_schemes ();
  recoding ();
  cones_area ();
  conc_safety ();
  async_vs_sync ();
  timing_constraints ();
  bitwidth ();
  memory_model ()
