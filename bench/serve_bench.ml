(* BENCH_serve: the synthesis service under load.

   Two questions the cache-as-a-subsystem refactor has to answer with
   numbers rather than unit tests:

     persistence  does a compiled design survive a process restart?  A
                  forked child cold-compiles the sequential workload
                  suite into a fresh on-disk store and exits; the parent
                  (a genuinely different process image by then) opens the
                  same directory and sweeps again, counting disk-store
                  revivals instead of recompiles.
     throughput   what does the Domain pool buy?  The same sweep is
                  pushed through [Serve.Pool] as wire-shaped [compile]
                  requests — cold, warm (front-cache), and persistent
                  (disk-store) — at 1 domain and at the machine's
                  recommended domain count, reading compiles/sec and the
                  p50/p99 latency histograms the daemon itself serves
                  from its [stats] op.

   Every pooled compile carries an argument vector, so the serve handler
   checks each design against the interpreter oracle
   ([matches_reference]); a sweep only counts as passed when every
   response verifies.  The cache-provenance counts per sweep are
   deterministic and asserted (cold: all miss; warm: all front;
   persistent: all store).  Wall times vary machine to machine; on a
   single-core container the 1->N scaling ratio is meaningless, so it is
   recorded but only asserted >1 when the machine actually has cores to
   scale onto ([scaling_limited_by_cores] flags the degenerate case).

   Ordering constraint: the fork-based persistence phase MUST run before
   any pool is created — [Unix.fork] is unavailable once a Domain has
   been spawned. *)

let workloads = Workloads.sequential
let backends () = Registry.compiling ()

(* one wire-shaped compile request per (workload, compiling backend),
   each with the workload's first argument vector so the serve handler
   runs the design and checks it against the interpreter oracle *)
let requests () =
  List.concat_map
    (fun (w : Workloads.t) ->
      List.map
        (fun b ->
          Serve.Compile
            { id =
                Metrics.String
                  (w.Workloads.name ^ "/" ^ Registry.name b);
              source = w.Workloads.source;
              entry = w.Workloads.entry;
              backend = Registry.name b;
              args = Some (List.hd w.Workloads.arg_sets);
              config = None })
        (backends ()))
    workloads

let json_field name = function
  | Metrics.Obj members -> List.assoc_opt name members
  | _ -> None

(* --- phase 1: restart survival, two real processes over one store --- *)

type persistence = {
  child_ms : float;  (* cold-populate process, fork to exit *)
  revive_ms : float;  (* parent's sweep over the child's store *)
  designs : int;
  store_hits : int;
  entries : int;
  bytes : int;
  verified : int;
}

let sweep_driver () =
  let sessions =
    List.map
      (fun (w : Workloads.t) ->
        Driver.create ~entry:w.Workloads.entry w.Workloads.source)
      workloads
  in
  let results =
    List.concat_map
      (fun s -> Driver.compile_all ~backends:(backends ()) s)
      sessions
  in
  (sessions, List.filter_map (fun (_, r) -> Result.to_option r) results)

let sum_counter sessions key =
  List.fold_left
    (fun acc s ->
      match Metrics.find (Driver.metrics s) key with
      | Some (Metrics.Int n) -> acc + n
      | _ -> acc)
    0 sessions

let persistence_phase dir =
  (* fork duplicates the stdio buffers: flush so the child cannot replay
     half-written bench output on exit *)
  flush stdout;
  flush stderr;
  let t0 = Unix.gettimeofday () in
  (match Unix.fork () with
  | 0 ->
    (* the child: a separate process cold-compiling into the store *)
    let code =
      match Driver.attach_disk_cache ~dir () with
      | Error _ -> 1
      | Ok _ ->
        Driver.clear_cache ();
        let _, designs = sweep_driver () in
        if designs <> [] then 0 else 1
    in
    (* _exit: skip at_exit, or the inherited buffers would double-print *)
    Unix._exit code
  | pid -> (
    match Unix.waitpid [] pid with
    | _, Unix.WEXITED 0 -> ()
    | _ -> failwith "serve bench: store-populating child process failed"));
  let child_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  (* the parent: a different live process opening the same directory *)
  (match Driver.attach_disk_cache ~dir () with
  | Ok _ -> ()
  | Error msg -> failwith msg);
  Driver.clear_cache ();
  let t1 = Unix.gettimeofday () in
  let sessions, designs = sweep_driver () in
  let revive_ms = (Unix.gettimeofday () -. t1) *. 1000. in
  let store_hits = sum_counter sessions "driver.cache.design_store_hits" in
  (* the restart-survival claim itself: nothing recompiled, every design
     revived from the store the other process wrote *)
  assert (store_hits = List.length designs);
  assert (sum_counter sessions "driver.cache.design_misses" = 0);
  (* spot-check the revived artifacts against the interpreter oracle *)
  let verified =
    List.fold_left2
      (fun acc (s : Driver.session) (w : Workloads.t) ->
        match Driver.compile s (Registry.get "bachc") with
        | Error _ -> acc
        | Ok d -> (
          let args = List.hd w.Workloads.arg_sets in
          match (Design.run_int d args, Driver.reference s ~args) with
          | Some got, Ok want when got = want -> acc + 1
          | _ -> acc))
      0 sessions workloads
  in
  assert (verified = List.length workloads);
  let entries, bytes =
    match Driver.cache_store () with
    | Some store ->
      let c = Cache.store_counters store in
      (c.Cache.entries, c.Cache.bytes)
    | None -> (0, 0)
  in
  { child_ms; revive_ms; designs = List.length designs; store_hits;
    entries; bytes; verified }

(* --- phase 2: the Domain pool, 1 vs N domains --- *)

type sweep = {
  label : string;
  domains : int;
  wall_ms : float;
  responses : int;
  verified : int;  (* accepted, run, and equal to the oracle *)
  rejected : int;  (* typed dialect/frontend rejections (cones on loops) *)
  miss : int;
  front : int;
  store : int;
  p50_ms : float;
  p99_ms : float;
}

let pool_sweep ~label ~domains () =
  let pool = Serve.Pool.create ~domains () in
  let lock = Mutex.create () in
  let acc = ref [] in
  let reqs = requests () in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun r ->
      Serve.Pool.submit pool r ~respond:(fun resp ->
          Mutex.lock lock;
          acc := resp :: !acc;
          Mutex.unlock lock))
    reqs;
  Serve.Pool.drain pool;
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  let p50, p99 =
    match Metrics.histogram (Serve.Pool.metrics pool) "serve.latency.compile_ms"
    with
    | Some h ->
      (Metrics.Histogram.percentile h 50., Metrics.Histogram.percentile h 99.)
    | None -> (0., 0.)
  in
  Serve.Pool.shutdown pool;
  let responses = !acc in
  let count f = List.length (List.filter f responses) in
  let cached kind r =
    json_field "cached" r = Some (Metrics.String kind)
  in
  let verified =
    count (fun r ->
        json_field "ok" r = Some (Metrics.Bool true)
        && json_field "status" r = Some (Metrics.String "ok")
        && json_field "matches_reference" r = Some (Metrics.Bool true))
  in
  (* some pairs are meant to bounce: cones dialect-rejects unbounded
     loops.  Those must come back as typed errors, nothing else. *)
  let rejected =
    count (fun r ->
        json_field "ok" r = Some (Metrics.Bool false)
        &&
        match json_field "error" r with
        | Some (Metrics.Obj e) ->
          List.assoc_opt "kind" e = Some (Metrics.String "dialect-reject")
        | _ -> false)
  in
  let s =
    { label; domains; wall_ms;
      responses = List.length responses;
      verified; rejected;
      miss = count (cached "miss");
      front = count (cached "front");
      store = count (cached "store");
      p50_ms = p50; p99_ms = p99 }
  in
  (* every request answered; every accepted design oracle-checked, every
     refusal a typed dialect rejection — no third outcome *)
  assert (s.responses = List.length reqs);
  assert (s.verified + s.rejected = s.responses);
  s

(* --- phase 3: what does tracing cost on the warm path? ---

   The serve handler over the warm (front-cache) request list, spans on
   vs [Span.set_enabled false].  Measured through [Pool.handle] — the
   exact surface the span machinery instruments — rather than through
   submit/drain: on a single-core container the queue's domain wakeups
   cost tens of microseconds of scheduler noise per request, which
   swamps the microseconds the spans themselves take.  Each measurement
   is best-of-5 over three passes of the whole list, so one GC or
   scheduler hiccup cannot masquerade as instrumentation cost.  The
   warm cache is deliberate: with compiles memoized, per-request span
   bookkeeping is at its largest relative to the work left (simulate +
   oracle, plus the flight-recorder dump on every typed rejection). *)

let span_overhead () =
  let pool = Serve.Pool.create ~domains:1 () in
  let sessions = Some (Hashtbl.create 8) in
  let reqs = requests () in
  let pass () =
    List.iter (fun r -> ignore (Serve.Pool.handle pool sessions r)) reqs
  in
  pass () (* warm the session table alongside the design cache *);
  let best_of_5 () =
    let best = ref infinity in
    for _ = 1 to 5 do
      let t0 = Unix.gettimeofday () in
      pass ();
      pass ();
      pass ();
      let ms = (Unix.gettimeofday () -. t0) *. 1000. in
      if ms < !best then best := ms
    done;
    !best
  in
  Span.set_enabled true;
  let warm_on_ms = best_of_5 () in
  Span.set_enabled false;
  let warm_off_ms = best_of_5 () in
  Span.set_enabled true;
  Serve.Pool.shutdown pool;
  let overhead_pct =
    (warm_on_ms -. warm_off_ms) /. Float.max 1e-6 warm_off_ms *. 100.
  in
  (warm_on_ms, warm_off_ms, overhead_pct)

let compiles_per_sec s =
  float_of_int s.responses /. Float.max 1e-6 (s.wall_ms /. 1000.)

let json_of_sweep s =
  Metrics.Obj
    [ ("domains", Metrics.Int s.domains);
      ("wall_ms", Metrics.Fixed (3, s.wall_ms));
      ("compiles_per_sec", Metrics.Fixed (1, compiles_per_sec s));
      ("responses", Metrics.Int s.responses);
      ("verified", Metrics.Int s.verified);
      ("rejected", Metrics.Int s.rejected);
      ("p50_ms", Metrics.Fixed (3, s.p50_ms));
      ("p99_ms", Metrics.Fixed (3, s.p99_ms));
      ( "cached",
        Metrics.Obj
          [ ("miss", Metrics.Int s.miss);
            ("front", Metrics.Int s.front);
            ("store", Metrics.Int s.store) ] ) ]

let fresh_dir () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "chlsc-serve-bench-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  dir

let remove_dir dir =
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  try Unix.rmdir dir with Unix.Unix_error _ -> ()

let run_all () =
  Tables.section "BENCH"
    "chlsc serve: Domain-pool throughput and cache persistence"
    "the daemon's compile path over the sequential workload suite: every \
     response is oracle-checked, the store written by one process is \
     read back by another";
  let cores = Domain.recommended_domain_count () in
  let n_domains = max 2 cores in
  let n_requests = List.length (requests ()) in
  let dir = fresh_dir () in
  (* fork-based phase first: Unix.fork is illegal once domains exist *)
  let persist = persistence_phase dir in
  (* detach the store and drop the front tier: the pool sweeps start cold *)
  Driver.set_cache_store None;
  Driver.clear_cache ();
  let cold_1 = pool_sweep ~label:"cold" ~domains:1 () in
  let warm_1 = pool_sweep ~label:"warm (front)" ~domains:1 () in
  (* a third process image: fresh front, the same on-disk store *)
  Driver.clear_cache ();
  (match Driver.attach_disk_cache ~dir () with
  | Ok _ -> ()
  | Error msg -> failwith msg);
  let persistent_1 = pool_sweep ~label:"persistent (store)" ~domains:1 () in
  Driver.set_cache_store None;
  Driver.clear_cache ();
  let cold_n = pool_sweep ~label:"cold" ~domains:n_domains () in
  let warm_n = pool_sweep ~label:"warm (front)" ~domains:n_domains () in
  (* the front tier is warm from the sweep above: measure tracing cost *)
  let warm_on_ms, warm_off_ms, overhead_pct = span_overhead () in
  remove_dir dir;
  (* deterministic provenance: every sweep accepts the same pairs, and
     each accepted design's cache tier is forced by the sweep's setup *)
  let accepted = cold_1.verified in
  assert (accepted > 0 && accepted = persist.designs);
  List.iter
    (fun s -> assert (s.verified = accepted))
    [ warm_1; persistent_1; cold_n; warm_n ];
  assert (cold_1.miss = accepted && cold_n.miss = accepted);
  assert (warm_1.front = accepted && warm_n.front = accepted);
  assert (persistent_1.store = accepted);
  let speedup_cold = cold_1.wall_ms /. Float.max 1e-6 cold_n.wall_ms in
  let speedup_warm = warm_1.wall_ms /. Float.max 1e-6 warm_n.wall_ms in
  let scaling_limited = cores < 2 in
  (* the scaling claim only means something with cores to scale onto *)
  if not scaling_limited then assert (speedup_cold > 1.0);
  let sweeps = [ cold_1; warm_1; persistent_1; cold_n; warm_n ] in
  Tables.table
    [ 20; 8; 10; 13; 9; 9; 6; 6; 6 ]
    [ "sweep"; "domains"; "wall ms"; "compiles/sec"; "p50 ms"; "p99 ms";
      "miss"; "front"; "store" ]
    (List.map
       (fun s ->
         [ s.label; Tables.i s.domains; Printf.sprintf "%.1f" s.wall_ms;
           Printf.sprintf "%.1f" (compiles_per_sec s);
           Printf.sprintf "%.3f" s.p50_ms; Printf.sprintf "%.3f" s.p99_ms;
           Tables.i s.miss; Tables.i s.front; Tables.i s.store ])
       sweeps);
  let m = Metrics.create () in
  Metrics.set_string m "experiment"
    "chlsc serve: Domain-pool compile throughput (cold / warm / \
     persistent, 1 vs N domains) and two-process store persistence";
  Metrics.set_int m "workloads" (List.length workloads);
  Metrics.set_int m "backends" (List.length (backends ()));
  Metrics.set_int m "requests" n_requests;
  Metrics.set_int m "cores" cores;
  Metrics.set_int m "domains_n" n_domains;
  Metrics.set_bool m "scaling_limited_by_cores" scaling_limited;
  Metrics.set m "persistence"
    (Metrics.Obj
       [ ("child_cold_ms", Metrics.Fixed (3, persist.child_ms));
         ("parent_revive_ms", Metrics.Fixed (3, persist.revive_ms));
         ("designs", Metrics.Int persist.designs);
         ("store_hits", Metrics.Int persist.store_hits);
         ("store_entries", Metrics.Int persist.entries);
         ("store_bytes", Metrics.Int persist.bytes);
         ("oracle_verified_workloads", Metrics.Int persist.verified) ]);
  Metrics.set m "cold_1" (json_of_sweep cold_1);
  Metrics.set m "warm_1" (json_of_sweep warm_1);
  Metrics.set m "persistent_1" (json_of_sweep persistent_1);
  Metrics.set m "cold_n" (json_of_sweep cold_n);
  Metrics.set m "warm_n" (json_of_sweep warm_n);
  Metrics.set_fixed m "speedup_cold_1_to_n" ~decimals:2 speedup_cold;
  Metrics.set_fixed m "speedup_warm_1_to_n" ~decimals:2 speedup_warm;
  Metrics.set m "span_overhead"
    (Metrics.Obj
       [ ("warm_on_ms", Metrics.Fixed (3, warm_on_ms));
         ("warm_off_ms", Metrics.Fixed (3, warm_off_ms));
         ("overhead_pct", Metrics.Fixed (1, overhead_pct)) ]);
  Metrics.write_file m "BENCH_serve.json";
  Printf.printf
    "\nPersistence: %d designs revived from the other process's store \
     (%d store hits); pool sweeps: %d oracle checks passed, %d typed \
     dialect rejections, nothing else; span overhead on the warm path \
     %.1f%% (%.1f ms on vs %.1f ms off, best of 5); wrote \
     BENCH_serve.json%s\n"
    persist.designs persist.store_hits
    (List.fold_left (fun a s -> a + s.verified) 0 sweeps)
    (List.fold_left (fun a s -> a + s.rejected) 0 sweeps)
    overhead_pct warm_on_ms warm_off_ms
    (if scaling_limited then " (single core: scaling ratio not asserted)"
     else "")

(* CI entry: the sweep is already single-pass, so the smoke run is the
   real thing — it regenerates BENCH_serve.json with the persistence and
   oracle assertions live *)
let run_smoke () = run_all ()
