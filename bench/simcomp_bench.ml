(* BENCH_simcomp: compiled (levelized closure) engines vs the
   interpreters, in cycles per second.

   The tentpole claim of the compiled-simulation work is 10-100x
   cycles/sec from letting the design build its own evaluator instead of
   walking graph structures every cycle.  This experiment measures every
   engine in the house on the full sequential workload suite:

   - compiled FSMD (Fsmdcomp): per-state closures over unboxed int
     register files, compiled once per design and reused — the engine
     Design.run dispatches to by default;
   - interpreting FSMD (Rtlsim): re-walks each state's instruction list
     every cycle;
   - compiled netlist (Netcomp): levelized closure arrays over the
     elaborated netlist, compiled once and reset between runs;
   - interpreting netlist (Neteval event-driven and full-sweep): the
     graph-walking engines the ROADMAP item is aimed at.

   The headline speedup column is the default compiled engine against
   the event-driven netlist interpreter — the same design simulated
   cycle-accurately both ways (the netlist run takes one extra cycle for
   the done handshake; each engine's cycles/sec uses its own cycle
   count).  The same-level ratios (Fsmdcomp/Rtlsim, Netcomp/Neteval)
   are in the JSON too, so the abstraction-level contribution is never
   hidden.

   Every benchmarked run is first verified against its interpreting
   oracle (full outcome equality at the FSMD level: result, cycles,
   globals, memories, state visits; outputs and cycles at the netlist
   level) — speed without the cross-check is how semantics drift in.
   Results go to BENCH_simcomp.json through the unified metrics
   registry. *)

let kernels = Workloads.sequential

type row = {
  name : string;
  args : int list;
  fsmd_cycles : int;
  net_cycles : int;
  compiled : bool; (* both closure engines, not the width fallbacks *)
  fsmd_comp_cps : float; (* Fsmdcomp, precompiled *)
  fsmd_interp_cps : float; (* Rtlsim *)
  net_comp_cps : float; (* Netcomp, precompiled *)
  net_event_cps : float; (* Neteval event-driven *)
  net_sweep_cps : float; (* Neteval full-sweep *)
  verified : bool;
}

let lowered (w : Workloads.t) =
  let program = Workloads.parse w in
  let l, _ = Passes.lower_simplify program ~entry:w.Workloads.entry in
  l.Lower.func

let fsmd_of func =
  Fsmd.of_func func ~schedule_block:(fun blk ->
      Schedule.list_schedule func Schedule.default_allocation blk.Cir.instrs)

(* Seconds per run, from an adaptively repeated loop: Sys.time has
   coarse granularity, so repeat until the measured window is at least
   ~50ms (the counters are deterministic; only wall time varies). *)
let time_runs f =
  ignore (f ());
  let rec go repeats =
    let t0 = Sys.time () in
    for _ = 1 to repeats do
      ignore (f ())
    done;
    let dt = Sys.time () -. t0 in
    if dt < 0.05 && repeats < 1 lsl 16 then go (repeats * 4)
    else dt /. float_of_int repeats
  in
  go 1

let bv_opt_eq a b =
  match (a, b) with
  | Some x, Some y -> Bitvec.equal x y
  | None, None -> true
  | _ -> false

let named_eq eq a b =
  List.length a = List.length b
  && List.for_all2 (fun (n1, v1) (n2, v2) -> n1 = n2 && eq v1 v2) a b

let run_kernel (w : Workloads.t) =
  let func = lowered w in
  let fsmd = fsmd_of func in
  let nl = (Rtlgen.elaborate fsmd).Rtlgen.netlist in
  let int_args = List.hd w.Workloads.arg_sets in
  let args = List.map (Bitvec.of_int ~width:64) int_args in
  (* same argument resizing Rtlgen.simulate uses *)
  let inputs =
    List.map2
      (fun (name, r) v ->
        (name, Bitvec.resize ~signed:true ~width:(Cir.reg_width func r) v))
      func.Cir.fn_params args
  in
  (* compile once; the timed loops reuse these engines *)
  let feng = Fsmdcomp.create fsmd in
  let neng = Netcomp.create nl in
  let run_fc () = Fsmdcomp.execute feng ~args in
  let run_fi () = Rtlsim.run fsmd ~args in
  let run_nc () =
    Netcomp.reset neng;
    Netcomp.drive neng ~inputs ~done_name:"done" ~max_cycles:2_000_000
  in
  let run_ne () =
    Neteval.run_until_done nl ~inputs ~done_name:"done" ~max_cycles:2_000_000
  in
  let run_ns () =
    let t = Neteval.create ~strategy:Neteval.Full_sweep nl in
    Neteval.drive t ~inputs ~done_name:"done" ~max_cycles:2_000_000
  in
  (* verify compiled = interpreting oracle at both levels before timing *)
  let oc = run_fc () and oi = run_fi () in
  let fsmd_ok =
    bv_opt_eq oc.Rtlsim.return_value oi.Rtlsim.return_value
    && oc.Rtlsim.cycles = oi.Rtlsim.cycles
    && named_eq Bitvec.equal oc.Rtlsim.globals oi.Rtlsim.globals
    && named_eq
         (fun a b ->
           Array.length a = Array.length b && Array.for_all2 Bitvec.equal a b)
         oc.Rtlsim.memories oi.Rtlsim.memories
    && oc.Rtlsim.states_visited = oi.Rtlsim.states_visited
  in
  match (run_nc (), run_ne (), run_ns ()) with
  | Ok (nc_out, nc_cycles), Ok (ne_out, ne_cycles), Ok (ns_out, ns_cycles) ->
    let net_ok =
      nc_cycles = ne_cycles
      && ne_cycles = ns_cycles
      && named_eq Bitvec.equal nc_out ne_out
      && named_eq Bitvec.equal nc_out ns_out
    in
    let cps cycles t = float_of_int cycles /. Float.max 1e-9 t in
    { name = w.Workloads.name;
      args = int_args;
      fsmd_cycles = oc.Rtlsim.cycles;
      net_cycles = nc_cycles;
      compiled = Fsmdcomp.compiled feng && Netcomp.compiled neng;
      fsmd_comp_cps = cps oc.Rtlsim.cycles (time_runs run_fc);
      fsmd_interp_cps = cps oc.Rtlsim.cycles (time_runs run_fi);
      net_comp_cps = cps nc_cycles (time_runs run_nc);
      net_event_cps = cps nc_cycles (time_runs run_ne);
      net_sweep_cps = cps nc_cycles (time_runs run_ns);
      verified = fsmd_ok && net_ok }
  | _ -> failwith ("simcomp bench: " ^ w.Workloads.name ^ " timed out")

(* headline: the default compiled engine vs the event-driven netlist
   interpreter (the graph-walking engine of BENCH_neteval) *)
let speedup r = r.fsmd_comp_cps /. Float.max 1e-9 r.net_event_cps

let json_of_row r =
  Metrics.Obj
    [ ("kernel", Metrics.String r.name);
      ("args", Metrics.List (List.map (fun a -> Metrics.Int a) r.args));
      ("fsmd_cycles", Metrics.Int r.fsmd_cycles);
      ("netlist_cycles", Metrics.Int r.net_cycles);
      ("compiled_engines", Metrics.Bool r.compiled);
      ("fsmd_compiled_cycles_per_sec", Metrics.Fixed (0, r.fsmd_comp_cps));
      ("fsmd_interp_cycles_per_sec", Metrics.Fixed (0, r.fsmd_interp_cps));
      ("netlist_compiled_cycles_per_sec", Metrics.Fixed (0, r.net_comp_cps));
      ("netlist_event_cycles_per_sec", Metrics.Fixed (0, r.net_event_cps));
      ("netlist_sweep_cycles_per_sec", Metrics.Fixed (0, r.net_sweep_cps));
      ("speedup_vs_event_interp", Metrics.Fixed (1, speedup r));
      ( "speedup_vs_sweep_interp",
        Metrics.Fixed (1, r.fsmd_comp_cps /. Float.max 1e-9 r.net_sweep_cps) );
      ( "fsmd_compiled_vs_rtlsim",
        Metrics.Fixed (2, r.fsmd_comp_cps /. Float.max 1e-9 r.fsmd_interp_cps)
      );
      ( "netlist_compiled_vs_event",
        Metrics.Fixed (2, r.net_comp_cps /. Float.max 1e-9 r.net_event_cps) );
      ("verified_vs_interpreters", Metrics.Bool r.verified) ]

let emit_json path rows =
  let m = Metrics.create () in
  Metrics.set_string m "experiment"
    "compiled simulation: closure engines vs interpreters (cycles/sec)";
  Metrics.set m "kernels" (Metrics.List (List.map json_of_row rows));
  Metrics.write_file m path

let print_rows rows =
  Printf.printf "\ncycles/sec by engine (compiled engines precompiled):\n";
  let widths = [ 14; 7; 10; 10; 10; 9; 9; 8; 9 ] in
  Tables.table widths
    [ "kernel"; "cycles"; "fsmd-comp"; "rtlsim"; "net-comp"; "event";
      "sweep"; "speedup"; "verified" ]
    (List.map
       (fun r ->
         let m f = Printf.sprintf "%.2fM" (f /. 1e6) in
         [ r.name; Tables.i r.fsmd_cycles;
           m r.fsmd_comp_cps; m r.fsmd_interp_cps; m r.net_comp_cps;
           m r.net_event_cps; m r.net_sweep_cps;
           Printf.sprintf "%.0fx" (speedup r);
           (if r.verified then "yes" else "NO") ])
       rows)

let run_kernels kernels =
  Tables.section "BENCH" "Compiled simulation: closure engines vs interpreters"
    "the design builds its own simulator — per-state closures at the FSMD \
     level, levelized closures at the netlist level — with the \
     interpreters kept as bit-exact differential oracles; speedup column \
     is the default compiled engine vs the event-driven netlist \
     interpreter";
  let rows = List.map run_kernel kernels in
  print_rows rows;
  List.iter
    (fun r ->
      if not r.verified then
        failwith
          (Printf.sprintf
             "simcomp bench: %s diverged from the interpreters — engine bug"
             r.name))
    rows;
  emit_json "BENCH_simcomp.json" rows;
  let fast = List.length (List.filter (fun r -> speedup r >= 10.) rows) in
  Printf.printf
    "\nAll runs verified against the interpreting oracles; %d/%d kernels \
     at >= 10x vs the event-driven interpreter; wrote BENCH_simcomp.json\n"
    fast (List.length rows)

let run_all () = run_kernels kernels

(* CI smoke: one kernel, same verification, same JSON artifact *)
let run_smoke () = run_kernels [ Workloads.gcd ]
