(* BENCH_neteval: full-sweep vs event-driven netlist settling.

   The netlist evaluator is the workhorse behind every cross-backend
   experiment, and Edwards' survey argues simulation speed is what made
   C-like hardware languages attractive in the first place.  This
   experiment elaborates the low-activity kernels (gcd, isqrt-newton,
   crc) to netlists and runs them to completion under both settling
   strategies, recording node evaluations, change events and wall time.
   Results are printed as a table and emitted to BENCH_neteval.json so
   the perf trajectory is tracked across PRs.

   Low-activity means: per cycle only a small cone of the netlist (the
   active FSMD state's datapath slice) actually changes, so the
   event-driven evaluator should do several times fewer node evaluations
   per cycle than the full sweep.  Both runs must be bit-exact. *)

let kernels = [ Workloads.gcd; Workloads.isqrt_newton; Workloads.crc ]

type row = {
  name : string;
  args : int list;
  nodes : int;
  cycles : int;
  full : Neteval.stats;
  event : Neteval.stats;
  bit_exact : bool;
}

let lowered (w : Workloads.t) =
  let program = Workloads.parse w in
  let l, _ = Passes.lower_simplify program ~entry:w.Workloads.entry in
  l.Lower.func

(* Wall times from a single run are dominated by clock granularity for
   these small kernels; take the fastest of a few repetitions (the stats
   counters are deterministic and identical across repetitions). *)
let timed_run ~strategy ~repeats e ~args ~func =
  let best = ref None in
  for _ = 1 to repeats do
    match Rtlgen.simulate_stats ~strategy e ~args ~func with
    | Ok (outputs, cycles, st) -> (
      match !best with
      | Some (_, _, prev) when prev.Neteval.wall_time <= st.Neteval.wall_time
        -> ()
      | _ -> best := Some (outputs, cycles, st))
    | Error `Timeout -> failwith "neteval bench: timeout"
  done;
  Option.get !best

let run_kernel (w : Workloads.t) =
  let func = lowered w in
  let fsmd =
    Fsmd.of_func func ~schedule_block:(fun blk ->
        Schedule.list_schedule func Schedule.default_allocation blk.Cir.instrs)
  in
  let e = Rtlgen.elaborate fsmd in
  let int_args = List.hd w.Workloads.arg_sets in
  let args = List.map (Bitvec.of_int ~width:64) int_args in
  let f_out, f_cycles, full =
    timed_run ~strategy:Neteval.Full_sweep ~repeats:5 e ~args ~func
  in
  let e_out, e_cycles, event =
    timed_run ~strategy:Neteval.Event_driven ~repeats:5 e ~args ~func
  in
  let bit_exact =
    f_cycles = e_cycles
    && List.length f_out = List.length e_out
    && List.for_all2
         (fun (n1, v1) (n2, v2) -> n1 = n2 && Bitvec.equal v1 v2)
         f_out e_out
  in
  { name = w.Workloads.name;
    args = int_args;
    nodes = Netlist.length e.Rtlgen.netlist;
    cycles = e_cycles;
    full;
    event;
    bit_exact }

let evals_per_settle (st : Neteval.stats) =
  float_of_int st.Neteval.nodes_evaluated
  /. float_of_int (max 1 st.Neteval.settles)

let reduction r =
  float_of_int r.full.Neteval.nodes_evaluated
  /. float_of_int (max 1 r.event.Neteval.nodes_evaluated)

(* The report goes through the unified metrics registry (Obs.Metrics), so
   BENCH_neteval.json shares its renderer — and its determinism rules —
   with `chlsc compile --metrics-json`.  Counter values are exact ints;
   ratios render at fixed precision; only wall_ms varies run to run. *)
let json_of_row r =
  let strategy_json (st : Neteval.stats) =
    Metrics.Obj
      [ ("node_evals", Metrics.Int st.Neteval.nodes_evaluated);
        ("events", Metrics.Int st.Neteval.events);
        ("evals_per_settle", Metrics.Fixed (2, evals_per_settle st));
        ("wall_ms", Metrics.Fixed (4, st.Neteval.wall_time *. 1000.)) ]
  in
  Metrics.Obj
    [ ("kernel", Metrics.String r.name);
      ("args", Metrics.List (List.map (fun a -> Metrics.Int a) r.args));
      ("nodes", Metrics.Int r.nodes);
      ("cycles", Metrics.Int r.cycles);
      ("full_sweep", strategy_json r.full);
      ("event_driven", strategy_json r.event);
      ("eval_reduction", Metrics.Fixed (2, reduction r));
      ("bit_exact", Metrics.Bool r.bit_exact) ]

let emit_json path rows =
  let m = Metrics.create () in
  Metrics.set_string m "experiment"
    "neteval settle: full-sweep vs event-driven";
  Metrics.set m "kernels" (Metrics.List (List.map json_of_row rows));
  Metrics.write_file m path

let run_all () =
  Tables.section "BENCH" "Netlist simulation: full-sweep vs event-driven settle"
    "fast behavioural simulation is the C-like methodology's core appeal; \
     the event-driven evaluator should re-evaluate only the active cone";
  let rows = List.map run_kernel kernels in
  let widths = [ 14; 7; 7; 12; 12; 10; 10; 9 ] in
  Tables.table widths
    [ "kernel"; "nodes"; "cycles"; "sweep ev/st"; "event ev/st"; "sweep ms";
      "event ms"; "reduction" ]
    (List.map
       (fun r ->
         [ r.name; Tables.i r.nodes; Tables.i r.cycles;
           Tables.f1 (evals_per_settle r.full);
           Tables.f1 (evals_per_settle r.event);
           Printf.sprintf "%.3f" (r.full.Neteval.wall_time *. 1000.);
           Printf.sprintf "%.3f" (r.event.Neteval.wall_time *. 1000.);
           Tables.f1 (reduction r) ^ "x" ])
       rows);
  List.iter
    (fun r ->
      if not r.bit_exact then
        failwith
          (Printf.sprintf
             "neteval bench: %s diverged between strategies — evaluator bug"
             r.name))
    rows;
  emit_json "BENCH_neteval.json" rows;
  Printf.printf
    "\nAll kernels bit-exact across strategies; wrote BENCH_neteval.json\n"
