(* Driver semantics: the frontend runs once per session, repeated
   compiles with an identical content key are cache hits returning
   bit-identical designs, and every rejection path comes back as a typed
   error instead of an exception. *)

let counter session key =
  match Metrics.find (Driver.metrics session) key with
  | Some (Metrics.Int n) -> n
  | _ -> 0

let gcd_w = Workloads.gcd

let session () = Driver.create ~entry:gcd_w.Workloads.entry gcd_w.Workloads.source

let design_of = function
  | Ok d -> d
  | Error e -> Alcotest.fail (Driver.render_error e)

let test_frontend_memoized () =
  let s = session () in
  (match Driver.program s with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Driver.render_error e));
  Alcotest.(check int) "first demand is a miss" 1
    (counter s "driver.cache.frontend_misses");
  ignore (Driver.program s);
  ignore (Driver.program s);
  Alcotest.(check int) "later demands are hits" 2
    (counter s "driver.cache.frontend_hits");
  Alcotest.(check int) "still one frontend run" 1
    (counter s "driver.cache.frontend_misses")

let test_design_cache_hit_bit_identical () =
  Driver.clear_cache ();
  let s = session () in
  let bachc = Registry.get "bachc" in
  let d1 = design_of (Driver.compile s bachc) in
  Alcotest.(check int) "first compile misses" 1
    (counter s "driver.cache.design_misses");
  let d2 = design_of (Driver.compile s bachc) in
  Alcotest.(check int) "second compile hits" 1
    (counter s "driver.cache.design_hits");
  (* same key, same memoized artifact *)
  Alcotest.(check bool) "the very same design" true (d1 == d2);
  (* a second session over identical source shares the process-wide
     cache: no recompile, bit-identical results on the seed vectors *)
  let s' = session () in
  let d3 = design_of (Driver.compile s' bachc) in
  Alcotest.(check bool) "cross-session hit" true (d1 == d3);
  Alcotest.(check int) "no new design compile" 0
    (counter s' "driver.cache.design_misses");
  List.iter
    (fun args ->
      Alcotest.(check (option int))
        (Printf.sprintf "gcd(%s) identical across compiles"
           (String.concat "," (List.map string_of_int args)))
        (Design.run_int d1 args) (Design.run_int d3 args))
    gcd_w.Workloads.arg_sets

let test_entry_and_source_key () =
  Driver.clear_cache ();
  let bachc = Registry.get "bachc" in
  let d1 = design_of (Driver.compile (session ()) bachc) in
  (* a different source digest must not hit gcd's cache line *)
  let w = Workloads.fib in
  let s2 = Driver.create ~entry:w.Workloads.entry w.Workloads.source in
  let d2 = design_of (Driver.compile s2 bachc) in
  Alcotest.(check bool) "different source, different design" false (d1 == d2);
  Alcotest.(check int) "fib compile was a miss" 1
    (counter s2 "driver.cache.design_misses")

let test_compile_all_amortizes_frontend () =
  Driver.clear_cache ();
  let s = session () in
  let backends = Registry.compiling () in
  let results = Driver.compile_all ~backends s in
  Alcotest.(check int) "one verdict per backend" (List.length backends)
    (List.length results);
  Alcotest.(check int) "frontend ran once" 1
    (counter s "driver.cache.frontend_misses");
  Alcotest.(check bool) "frontend hits >= N-1" true
    (counter s "driver.cache.frontend_hits" >= List.length backends - 1)

let test_typed_rejections () =
  let s = session () in
  (* ocapi: structural EDSL, no C frontend — typed, not an exception *)
  (match Driver.compile s (Registry.get "ocapi") with
  | Error (Driver.No_c_frontend { backend }) ->
    Alcotest.(check string) "ocapi rejection names the backend" "ocapi" backend
  | Ok _ -> Alcotest.fail "ocapi cannot compile C"
  | Error e -> Alcotest.fail ("wrong error: " ^ Driver.render_error e));
  (* cones: gcd's unbounded loop violates the combinational dialect *)
  (match Driver.compile s (Registry.get "cones") with
  | Error (Driver.Dialect_reject { backend; violations }) ->
    Alcotest.(check string) "reject names cones" "cones" backend;
    Alcotest.(check bool) "violations are reported" true (violations <> [])
  | Ok _ -> Alcotest.fail "cones must reject gcd"
  | Error e -> Alcotest.fail ("wrong error: " ^ Driver.render_error e));
  (* a frontend failure poisons the session with a typed error *)
  let bad = Driver.create ~entry:"f" "int f(int x) { return y; }" in
  match Driver.program bad with
  | Error (Driver.Frontend_error _) -> ()
  | Ok _ -> Alcotest.fail "unbound variable must not typecheck"
  | Error e -> Alcotest.fail ("wrong error: " ^ Driver.render_error e)

let test_reference_oracle () =
  let s = session () in
  match Driver.reference s ~args:[ 1071; 462 ] with
  | Ok v -> Alcotest.(check int) "gcd(1071,462)" 21 v
  | Error e -> Alcotest.fail (Driver.render_error e)

(* Verdict ordering is contractual (driver.mli): compile_all answers in
   the order of its [backends] argument, defaulting to registry
   declaration (Table 1) order.  Pin both so a refactor that reaches for
   a hash table gets caught here, not in a flaky compare table. *)
let test_compile_all_declared_order () =
  let s = session () in
  Alcotest.(check (list string)) "default order is registry declaration"
    (Registry.names ())
    (List.map (fun (b, _) -> Registry.name b) (Driver.compile_all s));
  Alcotest.(check (list string)) "registry declaration is Table 1"
    [ "cones"; "hardwarec"; "transmogrifier"; "systemc"; "ocapi";
      "c2verilog"; "cyber"; "handelc"; "specc"; "bachc"; "cash" ]
    (Registry.names ());
  let subset = [ Registry.get "cash"; Registry.get "cones" ] in
  Alcotest.(check (list string)) "explicit backends keep caller order"
    [ "cash"; "cones" ]
    (List.map
       (fun (b, _) -> Registry.name b)
       (Driver.compile_all ~backends:subset s))

let suite =
  ( "driver",
    [ Alcotest.test_case "frontend memoized" `Quick test_frontend_memoized;
      Alcotest.test_case "design cache hit is bit-identical" `Quick
        test_design_cache_hit_bit_identical;
      Alcotest.test_case "cache keyed by source and entry" `Quick
        test_entry_and_source_key;
      Alcotest.test_case "compile_all amortizes frontend" `Quick
        test_compile_all_amortizes_frontend;
      Alcotest.test_case "typed rejections" `Quick test_typed_rejections;
      Alcotest.test_case "reference oracle" `Quick test_reference_oracle;
      Alcotest.test_case "compile_all verdict order is declared order"
        `Quick test_compile_all_declared_order ] )
