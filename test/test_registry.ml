(* Registry completeness and round-trips: the registry replaced the
   closed backend variant, so these tests pin what the type system used
   to guarantee — every surveyed scheme is registered, every published
   alias resolves, names round-trip, and schemes sharing an
   implementation (Cyber compiles through the Bach C scheduler) are
   still distinguishable handles. *)

let test_table1_completeness () =
  (* every dialect row in the paper's Table 1 names the chls backend
     that implements it; each must be registered under that name *)
  List.iter
    (fun (d : Dialect.t) ->
      match Registry.find d.Dialect.backend with
      | Some handle ->
        Alcotest.(check string)
          (d.Dialect.name ^ " backend registered under its own name")
          d.Dialect.backend (Registry.name handle)
      | None ->
        Alcotest.fail
          (Printf.sprintf "Table 1 row %S names unregistered backend %S"
             d.Dialect.name d.Dialect.backend))
    Dialect.table1;
  Alcotest.(check int) "one registration per Table 1 row"
    (List.length Dialect.table1)
    (List.length (Registry.all ()))

let test_aliases_resolve () =
  List.iter
    (fun handle ->
      List.iter
        (fun alias ->
          match Registry.find alias with
          | Some h ->
            Alcotest.(check bool)
              (Printf.sprintf "alias %S resolves to %s" alias
                 (Registry.name handle))
              true (Registry.equal h handle)
          | None -> Alcotest.fail (Printf.sprintf "alias %S unknown" alias))
        (Registry.aliases handle))
    (Registry.all ());
  (* the published shorthands from the survey *)
  List.iter
    (fun (alias, name) ->
      Alcotest.(check string) alias name (Registry.name (Registry.get alias)))
    [ ("tmcc", "transmogrifier"); ("c2v", "c2verilog"); ("bdl", "cyber");
      ("bach", "bachc"); ("handel-c", "handelc") ]

let test_name_round_trip () =
  List.iter
    (fun name ->
      Alcotest.(check string) ("round-trip " ^ name) name
        (Registry.name (Registry.get name));
      (* lookups are case-insensitive *)
      Alcotest.(check string) ("case-insensitive " ^ name) name
        (Registry.name (Registry.get (String.uppercase_ascii name))))
    (Registry.names ())

let test_cyber_distinct_from_bachc () =
  let cyber = Registry.get "cyber" and bachc = Registry.get "bachc" in
  Alcotest.(check bool) "distinct handles" false (Registry.equal cyber bachc);
  Alcotest.(check bool) "distinct handles (structural =)" false (cyber = bachc);
  (* they share the scheduler but not the dialect: Cyber is
     process-level concurrent, Bach C statement-level *)
  Alcotest.(check bool) "distinct dialects" false
    ((Registry.dialect cyber).Dialect.name
    = (Registry.dialect bachc).Dialect.name)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i =
    i + n <= h && (String.sub haystack i n = needle || go (i + 1))
  in
  go 0

let test_unknown_backend_lists_catalog () =
  (match Registry.find "vhdl" with
  | Some _ -> Alcotest.fail "vhdl should not be registered"
  | None -> ());
  match Registry.get "vhdl" with
  | exception Registry.Unknown_backend msg ->
    List.iter
      (fun name ->
        Alcotest.(check bool)
          (Printf.sprintf "error mentions %s" name)
          true (contains msg name))
      (Registry.names ())
  | _ -> Alcotest.fail "Registry.get must raise on unknown names"

let test_capabilities () =
  (* exactly one backend (the structural Ocapi EDSL) lacks a C
     frontend, and it is excluded from [compiling] *)
  let no_frontend =
    List.filter
      (fun h -> not (Registry.capabilities h).Backend.c_frontend)
      (Registry.all ())
  in
  Alcotest.(check (list string)) "only ocapi is structural" [ "ocapi" ]
    (List.map Registry.name no_frontend);
  Alcotest.(check bool) "compiling excludes ocapi" false
    (List.exists (fun h -> Registry.name h = "ocapi") (Registry.compiling ()));
  Alcotest.(check bool) "hardwarec reports constraints" true
    (Registry.capabilities (Registry.get "hardwarec"))
      .Backend.constraint_reports

let test_facade_wrappers_agree () =
  (* the old Chls entry points survive as wrappers over the registry *)
  List.iter
    (fun h ->
      Alcotest.(check bool) ("Chls.backend_of_name " ^ Registry.name h) true
        (Chls.backend_of_name (Registry.name h) = Some h))
    (Registry.all ());
  Alcotest.(check bool) "Chls.all_compiling_backends = Registry.compiling" true
    (Chls.all_compiling_backends = Registry.compiling ())

let suite =
  ( "registry",
    [ Alcotest.test_case "table1 completeness" `Quick test_table1_completeness;
      Alcotest.test_case "aliases resolve" `Quick test_aliases_resolve;
      Alcotest.test_case "name round-trip" `Quick test_name_round_trip;
      Alcotest.test_case "cyber distinct from bachc" `Quick
        test_cyber_distinct_from_bachc;
      Alcotest.test_case "unknown backend lists catalog" `Quick
        test_unknown_backend_lists_catalog;
      Alcotest.test_case "capabilities" `Quick test_capabilities;
      Alcotest.test_case "facade wrappers agree" `Quick
        test_facade_wrappers_agree ] )
