(* Obs.Span: the trace-tree invariants every sink leans on (emission
   order, non-negative durations, stable skeletons), the flight
   recorder's ring arithmetic, the Chrome export's structural contract,
   and the end-to-end acceptance shape: one serve compile request is one
   tree rooted at "request" with queue-wait, frontend, per-pass, backend,
   simulate and oracle descendants — and instrumentation itself is
   inert: span-traced runs are bit-identical to plain runs on every
   simulation engine. *)

let json = Alcotest.testable (Fmt.of_to_string Metrics.render_compact) ( = )
let gcd_w = Workloads.gcd

(* Every suite in this file assumes spans are on and the ring is the
   default shape; tests that perturb either restore it on exit. *)
let with_default_flight f =
  Fun.protect
    ~finally:(fun () ->
      Span.set_enabled true;
      Span.Flight.set_capacity 64)
    f

(* --- core invariants --- *)

let test_parent_before_child () =
  let tr, ctx = Span.start ~kind:"root" () in
  Span.span ctx "a" (fun actx ->
      Span.span actx "b" (fun _ -> ());
      Span.span actx ~attrs:[ ("k", Metrics.Int 7) ] "c" (fun _ -> ()));
  Span.span ctx "d" (fun _ -> ());
  Span.finish tr;
  let rs = Span.records tr in
  Alcotest.(check (list string)) "emission order"
    [ "root"; "a"; "b"; "c"; "d" ]
    (List.map (fun r -> r.Span.kind) rs);
  (* seq numbers are the emission order, and a child never precedes its
     parent — the property the flight recorder and Chrome sink lean on *)
  List.iteri (fun i r -> Alcotest.(check int) "seq = position" i r.Span.seq) rs;
  List.iter
    (fun r ->
      match r.Span.parent with
      | None -> Alcotest.(check int) "only the root is parentless" 0 r.Span.span_id
      | Some p ->
        Alcotest.(check bool) "parent emitted first" true (p < r.Span.span_id))
    rs;
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "%s duration closed and non-negative" r.Span.kind)
        true
        (r.Span.dur_ms >= 0.))
    rs;
  Alcotest.(check string) "skeleton" "root(a(b c) d)" (Span.skeleton tr)

let test_null_ctx_is_inert () =
  with_default_flight (fun () ->
      Span.set_enabled false;
      let tr, ctx = Span.start ~kind:"root" () in
      Alcotest.(check bool) "disabled start yields a null ctx" true
        (ctx = Span.null);
      let v = Span.span ctx "child" (fun _ -> 42) in
      Alcotest.(check int) "body still runs" 42 v;
      Span.add_attr ctx "k" (Metrics.Int 1);
      Span.emit ctx ~dur_ms:1. "e";
      Span.finish tr;
      Alcotest.(check int) "nothing recorded beyond the root" 1
        (List.length (Span.records tr));
      Span.set_enabled true;
      let _, ctx = Span.start ~kind:"root" () in
      Alcotest.(check bool) "re-enabled start is live" true (ctx <> Span.null))

(* --- determinism: the same compile yields the same tree shape --- *)

let gcd_skeleton () =
  Driver.clear_cache ();
  let tr, ctx = Span.start ~kind:"compile" () in
  let session = Driver.create ~entry:gcd_w.Workloads.entry gcd_w.Workloads.source in
  (match Driver.compile ~ctx session (Registry.get "bachc") with
  | Ok design ->
    ignore (Design.run_traced ~ctx design (Design.int_args [ 54; 24 ]))
  | Error e -> Alcotest.fail (Driver.render_error e));
  (match Driver.reference ~ctx session ~args:[ 54; 24 ] with
  | Ok 6 -> ()
  | Ok v -> Alcotest.failf "oracle computed %d" v
  | Error e -> Alcotest.fail (Driver.render_error e));
  Span.finish tr;
  Span.skeleton tr

let test_deterministic_gcd_tree () =
  let first = gcd_skeleton () in
  let second = gcd_skeleton () in
  Alcotest.(check string) "same tree shape across two cold runs" first second;
  (* and the shape names the stages the driver promises *)
  let contains needle hay =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun kind ->
      Alcotest.(check bool) (kind ^ " present") true (contains kind first))
    [ "frontend"; "dialect-check"; "backend"; "pass:"; "simulate"; "oracle" ]

(* --- the flight recorder ring --- *)

let test_flight_ring_is_bounded () =
  with_default_flight (fun () ->
      Span.Flight.set_capacity 8;
      let tr, ctx = Span.start ~kind:"root" () in
      for i = 1 to 12 do
        Span.span ctx ~attrs:[ ("i", Metrics.Int i) ] "tick" (fun _ -> ())
      done;
      Span.finish tr;
      Alcotest.(check int) "capacity" 8 (Span.Flight.capacity ());
      Alcotest.(check int) "occupancy saturates at capacity" 8
        (Span.Flight.occupancy ());
      Alcotest.(check int) "13 closed spans recorded (12 ticks + root)" 13
        (Span.Flight.recorded ());
      Alcotest.(check int) "overflow counted, not crashed" 5
        (Span.Flight.dropped ());
      (* the dump keeps the newest spans, oldest first *)
      match Span.Flight.dump () with
      | Metrics.Obj fields -> (
        Alcotest.check json "dropped" (Metrics.Int 5)
          (Option.get (List.assoc_opt "dropped" fields));
        match List.assoc_opt "spans" fields with
        | Some (Metrics.List spans) ->
          Alcotest.(check int) "spans held" 8 (List.length spans);
          let i_of = function
            | Metrics.Obj s -> (
              match List.assoc_opt "attrs" s with
              | Some (Metrics.Obj [ ("i", Metrics.Int i) ]) -> Some i
              | _ -> None)
            | _ -> None
          in
          (* ticks 6..12 survive (tick 13 is the root, no "i" attr) *)
          Alcotest.(check (list int)) "oldest-first window"
            [ 6; 7; 8; 9; 10; 11; 12 ]
            (List.filter_map i_of spans)
        | _ -> Alcotest.fail "dump without spans list")
      | _ -> Alcotest.fail "dump must be an object")

(* --- the Chrome trace_event sink --- *)

let test_chrome_export_structure () =
  let tr, ctx = Span.start ~kind:"request" () in
  Span.span ctx "work" (fun c -> Span.span c "inner" (fun _ -> ()));
  Span.finish tr;
  let sink = Span.Chrome.create () in
  Span.Chrome.add sink ~pid:3 ~tid:7 tr;
  Alcotest.(check int) "event count" 3 (Span.Chrome.events sink);
  match Span.Chrome.to_json ~extra:[ ("x", Metrics.Int 1) ] sink with
  | Metrics.Obj fields -> (
    Alcotest.check json "extra fields pass through" (Metrics.Int 1)
      (Option.get (List.assoc_opt "x" fields));
    match List.assoc_opt "traceEvents" fields with
    | Some (Metrics.List evs) ->
      Alcotest.(check bool) "nonempty" true (evs <> []);
      List.iter
        (fun ev ->
          match ev with
          | Metrics.Obj e ->
            let has k = List.mem_assoc k e in
            Alcotest.check json "complete event" (Metrics.String "X")
              (Option.get (List.assoc_opt "ph" e));
            Alcotest.check json "pid" (Metrics.Int 3)
              (Option.get (List.assoc_opt "pid" e));
            Alcotest.check json "tid" (Metrics.Int 7)
              (Option.get (List.assoc_opt "tid" e));
            Alcotest.(check bool) "ts/dur/args present" true
              (has "ts" && has "dur" && has "args");
            (match List.assoc_opt "ts" e with
            | Some (Metrics.Fixed (_, ts)) ->
              Alcotest.(check bool) "ts re-anchored to >= 0" true (ts >= 0.)
            | _ -> Alcotest.fail "ts must be a fixed-point number")
          | _ -> Alcotest.fail "event must be an object")
        evs
    | _ -> Alcotest.fail "traceEvents must be a list")
  | _ -> Alcotest.fail "export must be an object"

(* --- the serve acceptance shape --- *)

let member name j =
  match Serve.Json.member name j with
  | Some v -> v
  | None ->
    Alcotest.fail
      (Printf.sprintf "missing %S in %s" name (Metrics.render_compact j))

let with_pool ?domains f =
  let captured = ref [] in
  let lock = Mutex.create () in
  let pool =
    Serve.Pool.create ?domains
      ~on_trace:(fun ~pid ~tid tr ->
        Mutex.lock lock;
        captured := (pid, tid, tr) :: !captured;
        Mutex.unlock lock)
      ()
  in
  Fun.protect
    ~finally:(fun () -> Serve.Pool.shutdown pool)
    (fun () -> f pool captured)

let test_serve_request_trace_tree () =
  Driver.clear_cache ();
  with_pool ~domains:1 (fun pool captured ->
      let resp = ref None in
      Serve.Pool.submit pool
        (Serve.Compile
           { id = Metrics.Int 1;
             source = gcd_w.Workloads.source;
             entry = gcd_w.Workloads.entry;
             backend = "bachc";
             args = Some [ 54; 24 ];
             config = None })
        ~respond:(fun r -> resp := Some r);
      Serve.Pool.drain pool;
      let resp = Option.get !resp in
      Alcotest.check json "computed" (Metrics.Int 6) (member "result" resp);
      let _, _, tr =
        match !captured with [ t ] -> t | l ->
          Alcotest.failf "expected one trace, got %d" (List.length l)
      in
      (* the response's trace_id is the handle into the captured tree *)
      Alcotest.check json "trace_id echoed next to id"
        (Metrics.String (Span.trace_id tr))
        (member "trace_id" resp);
      let rs = Span.records tr in
      let root = List.hd rs in
      Alcotest.(check string) "rooted at the request" "request" root.Span.kind;
      Alcotest.(check bool) "root is parentless" true (root.Span.parent = None);
      let kinds = List.map (fun r -> r.Span.kind) rs in
      List.iter
        (fun k ->
          Alcotest.(check bool) (k ^ " span present") true (List.mem k kinds))
        [ "queue-wait"; "frontend"; "dialect-check"; "backend"; "simulate";
          "oracle" ];
      Alcotest.(check bool) "per-pass spans replayed" true
        (List.exists
           (fun k -> String.length k > 5 && String.sub k 0 5 = "pass:")
           kinds);
      (* all of them descend from the request: parents resolve in-tree *)
      let ids = List.map (fun r -> r.Span.span_id) rs in
      List.iter
        (fun r ->
          match r.Span.parent with
          | None -> ()
          | Some p ->
            Alcotest.(check bool) "parent resolves" true (List.mem p ids))
        rs)

let test_serve_failure_carries_flight_dump () =
  with_pool ~domains:1 (fun pool _captured ->
      let resp = ref None in
      Serve.Pool.submit pool
        (Serve.Compile
           { id = Metrics.Int 2;
             source = gcd_w.Workloads.source;
             entry = gcd_w.Workloads.entry;
             backend = "cones" (* unbounded loop: dialect-reject *);
             args = None; config = None })
        ~respond:(fun r -> resp := Some r);
      Serve.Pool.drain pool;
      let resp = Option.get !resp in
      Alcotest.check json "rejected" (Metrics.Bool false) (member "ok" resp);
      Alcotest.check json "typed kind" (Metrics.String "dialect-reject")
        (member "kind" (member "error" resp));
      (match member "trace_id" resp with
      | Metrics.String _ -> ()
      | _ -> Alcotest.fail "failures still carry a trace id");
      match member "spans" (member "flight_recorder" resp) with
      | Metrics.List spans ->
        Alcotest.(check bool) "flight dump holds the last spans" true
          (spans <> [])
      | _ -> Alcotest.fail "flight_recorder.spans must be a list")

let test_serve_stats_gauges () =
  with_pool ~domains:1 (fun pool _captured ->
      let resp = ref None in
      Serve.Pool.submit pool (Serve.Stats { id = Metrics.Null })
        ~respond:(fun r -> resp := Some r);
      Serve.Pool.drain pool;
      let resp = Option.get !resp in
      Alcotest.check json "schema bumped for spans"
        (Metrics.String "chls.metrics/3")
        (member "schema" resp);
      let serve = member "serve" resp in
      (match member "queue_depth" (member "pool" serve) with
      | Metrics.Int _ -> ()
      | _ -> Alcotest.fail "queue-depth gauge missing");
      match member "flight_occupancy" (member "trace" serve) with
      | Metrics.Int _ -> ()
      | _ -> Alcotest.fail "flight-occupancy gauge missing")

(* --- instrumentation is inert: traced = plain on every engine --- *)

let outcome run =
  match run () with
  | (r : Design.run_result) ->
    Ok
      ( Option.map Bitvec.to_int r.Design.result,
        r.Design.cycles,
        r.Design.globals,
        r.Design.memories )
  | exception Rtlsim.Timeout { cycles; _ } -> Error (`Rtl_timeout cycles)
  | exception Asim.Timeout { tokens_fired; _ } -> Error (`Asim_timeout tokens_fired)

let tracing_never_perturbs =
  QCheck.Test.make ~count:25 ~name:"span-traced run = plain run (3 engines)"
    (QCheck.pair Test_random.arb_program
       (QCheck.pair QCheck.small_nat QCheck.small_nat))
    (fun (src, (a, b)) ->
      let session = Driver.create ~entry:"f" src in
      match Driver.compile session (Registry.get "bachc") with
      | Error _ -> QCheck.assume_fail () (* generator corner: skip *)
      | Ok design ->
        List.for_all
          (fun sim ->
            let plain =
              outcome (fun () -> design.Design.run ~sim (Design.int_args [ a; b ]))
            in
            let tr, ctx = Span.start ~kind:"qcheck" () in
            let traced =
              outcome (fun () ->
                  Design.run_traced ~ctx ~sim design (Design.int_args [ a; b ]))
            in
            Span.finish tr;
            plain = traced)
          [ Design.Compiled; Design.Event_driven; Design.Full_sweep ])

let suite =
  ( "span",
    [ Alcotest.test_case "parent before child, durations closed" `Quick
        test_parent_before_child;
      Alcotest.test_case "disabled tracing is inert" `Quick
        test_null_ctx_is_inert;
      Alcotest.test_case "deterministic gcd tree" `Quick
        test_deterministic_gcd_tree;
      Alcotest.test_case "flight ring bounded, oldest dropped" `Quick
        test_flight_ring_is_bounded;
      Alcotest.test_case "chrome export structure" `Quick
        test_chrome_export_structure;
      Alcotest.test_case "serve request trace tree" `Quick
        test_serve_request_trace_tree;
      Alcotest.test_case "serve failure carries flight dump" `Quick
        test_serve_failure_carries_flight_dump;
      Alcotest.test_case "serve stats trace gauges" `Quick
        test_serve_stats_gauges;
      QCheck_alcotest.to_alcotest tracing_never_perturbs ] )
