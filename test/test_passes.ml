(* The pass manager: trace structure, dump hooks, and the per-pass
   differential verifier.  The centerpiece is the negative test — a
   deliberately broken pass declared semantics-preserving must be caught
   by the vector check at the pass boundary, with a diagnostic naming the
   pipeline and pass — plus positive bit-exact runs over the gcd, isqrt
   and crc workloads' full argument sets. *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let pass_names trace = List.map (fun r -> r.Passes.pass_name) trace

let trace_structure () =
  let program = Workloads.parse Workloads.gcd in
  let lowered, trace = Passes.lower_simplify program ~entry:"gcd" in
  Alcotest.(check (list string))
    "default pipeline stages" [ "lower"; "simplify" ] (pass_names trace);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (r.Passes.pass_name ^ " wall time non-negative")
        true
        (r.Passes.wall_ms >= 0.))
    trace;
  let simplify = List.nth trace 1 in
  Alcotest.(check bool)
    "simplify does not grow the CFG" true
    (simplify.Passes.after.Passes.blocks <= simplify.Passes.before.Passes.blocks);
  Alcotest.(check int)
    "verification off by default" 0 simplify.Passes.verified;
  Alcotest.(check int)
    "trace's final size is the returned function"
    (Cir.num_blocks lowered.Lower.func)
    simplify.Passes.after.Passes.blocks

let describe_pipelines () =
  let pl =
    Passes.pipeline "t"
      ~program_passes:[ Passes.unroll_loops_pass ]
      ~func_passes:[ Passes.simplify_pass ]
  in
  Alcotest.(check string)
    "stages in execution order" "unroll-loops; lower; simplify"
    (Passes.describe pl);
  Alcotest.(check string)
    "source-only pipeline" "(source only)"
    (Passes.describe (Passes.pipeline "s" ~lowers:false))

let render_table () =
  let program = Workloads.parse Workloads.gcd in
  let _, trace = Passes.lower_simplify program ~entry:"gcd" in
  let table = Passes.render_table trace in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("table mentions " ^ needle) true
        (contains table needle))
    [ "pass"; "lower"; "simplify"; "src->cir"; "blocks/instrs" ]

let dump_hook () =
  let buf = Buffer.create 256 in
  let opts =
    { Passes.default_options with
      Passes.dump_after = [ "simplify" ];
      dump_sink = Buffer.add_string buf }
  in
  Passes.with_options opts (fun () ->
      ignore (Passes.lower_simplify (Workloads.parse Workloads.gcd) ~entry:"gcd"));
  let dumped = Buffer.contents buf in
  Alcotest.(check bool) "dump emitted" true (String.length dumped > 0);
  Alcotest.(check bool) "dump labelled with the pass" true
    (contains dumped "after simplify");
  Alcotest.(check bool) "options restored" true
    ((Passes.current_options ()).Passes.dump_after = [])

(* A pass that rewrites every return to a wrong constant, but still claims
   to preserve semantics.  Blocks are copied, not mutated: the verifier
   compares the input function against the output, so an in-place
   corruption would poison its own oracle. *)
let break_returns_pass =
  Passes.func_pass "break-returns" (fun f ->
      let blocks =
        Array.map
          (fun b ->
            match b.Cir.term with
            | Cir.T_return (Some _) ->
              { b with
                Cir.term =
                  Cir.T_return
                    (Some
                       (Cir.O_imm
                          (Bitvec.of_int ~width:f.Cir.fn_ret_width 12345))) }
            | _ -> { b with Cir.b_id = b.Cir.b_id })
          f.Cir.fn_blocks
      in
      { f with Cir.fn_blocks = blocks })

let broken_pass_caught () =
  let pl =
    Passes.pipeline "broken-test"
      ~func_passes:[ Passes.simplify_pass; break_returns_pass ]
  in
  let opts = { Passes.default_options with Passes.verify = [ [ 54; 24 ] ] } in
  match
    Passes.with_options opts (fun () ->
        Passes.run pl (Workloads.parse Workloads.gcd) ~entry:"gcd")
  with
  | _ -> Alcotest.fail "broken pass slipped through verification"
  | exception Passes.Verification_failed msg ->
    Alcotest.(check bool) "diagnostic names the pipeline" true
      (contains msg "broken-test");
    Alcotest.(check bool) "diagnostic names the pass" true
      (contains msg "break-returns");
    Alcotest.(check bool) "diagnostic shows the vector" true
      (contains msg "54,24")

let non_preserving_pass_not_checked () =
  let declared_lossy =
    Passes.func_pass ~preserves_semantics:false "break-returns-declared"
      break_returns_pass.Passes.fp_transform
  in
  let pl = Passes.pipeline "lossy-test" ~func_passes:[ declared_lossy ] in
  let opts = { Passes.default_options with Passes.verify = [ [ 54; 24 ] ] } in
  let _, trace =
    Passes.with_options opts (fun () ->
        Passes.run pl (Workloads.parse Workloads.gcd) ~entry:"gcd")
  in
  let record =
    List.find (fun r -> r.Passes.pass_name = "break-returns-declared") trace
  in
  Alcotest.(check int)
    "pass declared non-preserving is exempt from verification" 0
    record.Passes.verified

(* Positive direction of the same machinery: on the real workloads every
   simplify run must come back bit-exact on every pinned argument set. *)
let workload_verified (w : Workloads.t) () =
  let program = Workloads.parse w in
  let opts = { Passes.default_options with Passes.verify = w.Workloads.arg_sets } in
  let _, trace =
    Passes.with_options opts (fun () ->
        Passes.lower_simplify program ~entry:w.Workloads.entry)
  in
  let simplify = List.find (fun r -> r.Passes.pass_name = "simplify") trace in
  Alcotest.(check int)
    ("all " ^ w.Workloads.name ^ " vectors bit-exact across simplify")
    (List.length w.Workloads.arg_sets)
    simplify.Passes.verified

(* Source-level passes go through the reference interpreter instead: the
   Transmogrifier-style full unroll of crc's bounded loop must agree with
   the original program on every vector. *)
let program_pass_verified () =
  let w = Workloads.crc in
  let program = Workloads.parse w in
  let pl =
    Passes.pipeline "unroll-test"
      ~program_passes:[ Passes.unroll_loops_pass ]
      ~func_passes:[ Passes.simplify_pass ]
  in
  let opts = { Passes.default_options with Passes.verify = w.Workloads.arg_sets } in
  let _, trace =
    Passes.with_options opts (fun () ->
        Passes.run pl program ~entry:w.Workloads.entry)
  in
  let unroll = List.find (fun r -> r.Passes.pass_name = "unroll-loops") trace in
  Alcotest.(check Alcotest.bool)
    "unroll is a source-level pass" true (unroll.Passes.level = Passes.Source);
  Alcotest.(check int)
    "all crc vectors agree across unrolling"
    (List.length w.Workloads.arg_sets)
    unroll.Passes.verified

let suite =
  ( "passes",
    [ Alcotest.test_case "trace structure" `Quick trace_structure;
      Alcotest.test_case "describe" `Quick describe_pipelines;
      Alcotest.test_case "render table" `Quick render_table;
      Alcotest.test_case "dump hook" `Quick dump_hook;
      Alcotest.test_case "broken pass caught" `Quick broken_pass_caught;
      Alcotest.test_case "non-preserving pass exempt" `Quick
        non_preserving_pass_not_checked;
      Alcotest.test_case "gcd verified bit-exact" `Quick
        (workload_verified Workloads.gcd);
      Alcotest.test_case "isqrt verified bit-exact" `Quick
        (workload_verified Workloads.isqrt_newton);
      Alcotest.test_case "crc verified bit-exact" `Quick
        (workload_verified Workloads.crc);
      Alcotest.test_case "program pass verified via interp" `Quick
        program_pass_verified ] )
