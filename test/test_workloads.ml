(* Workload suite pinning: the oracle values of every built-in workload
   are written down here, so any semantic drift in the frontend or
   interpreter shows up as an explicit diff rather than silently shifting
   every equivalence test's baseline. *)

let pinned =
  [ ("gcd", [ 54; 24 ], 6);
    ("gcd", [ 1071; 462 ], 21);
    ("fib", [ 10 ], 55);
    ("fib", [ 24 ], 46368);
    ("fir", [ 1; 2 ], -68);
    ("fir", [ 5; -3 ], 76);
    ("dotprod", [ 1; 1 ], -1224);
    ("dotprod", [ 3; -2 ], -1936);
    ("matmul", [ 1 ], -3312);
    ("matmul", [ 3 ], -1328);
    ("bsort", [ 7 ], 7935054);
    ("crc", [ 0 ], 129);
    ("crc", [ 0xA5 ], 144);
    ("popcount", [ 0xABCD ], 10);
    ("popcount", [ -1 ], 32);
    ("checksum", [ 3 ], 23593068);
    ("histogram", [ 1 ], -547221728);
    ("histogram", [ 5 ], -492105440);
    ("isqrt_newton", [ 10000 ], 100);
    ("isqrt_newton", [ 123456 ], 351);
    ("transpose", [ 2 ], 1678033216);
    ("producer_consumer", [ 4 ], 112);
    ("pointer_sum", [ 5 ], 335);
    ("recursion", [ 6 ], 2108);
    ("dynamic_list", [ 5 ], 30);
    ("adpcm", [ 0; 3 ], 51292334);
    ("adpcm", [ 100; -7 ], -1243107158);
    (* known S-box rows: S[0]=0x63 S[1]=0x7c S[0x53]=0xed S[0xff]=0x16 *)
    ("aes_sbox", [ 0 ], 0x63);
    ("aes_sbox", [ 1 ], 0x7c);
    ("aes_sbox", [ 83 ], 0xed);
    ("aes_sbox", [ 255 ], 0x16);
    ("iir", [ 16; 4 ], 174668008);
    ("iir", [ 0; 0 ], 0);
    ("insertion_sort", [ 3 ], -97993177);
    ("insertion_sort", [ 11 ], -92436699);
    ("odd_even_sort", [ 1 ], 21071820);
    ("odd_even_sort", [ 6 ], 99557016);
    (* CRC-32 of four zero bytes is the standard 0x2144DF1C *)
    ("crc32", [ 0 ], 0x2144DF1C);
    ("crc32", [ 0x12345678 ], -1351776302);
    ("adler32", [ 1 ], 1054869625);
    ("adler32", [ 77 ], 1335888153);
    (* the pipelined split must agree with the sequential adler32 *)
    ("adler32_par", [ 1 ], 1054869625);
    ("adler32_par", [ 77 ], 1335888153);
    (* pointer walk must agree with the array-indexed fir *)
    ("fir_ptr", [ 1; 2 ], -68);
    ("fir_ptr", [ 5; -3 ], 76) ]

let test_pinned_values () =
  List.iter
    (fun (name, args, expected) ->
      match Workloads.find name with
      | None -> Alcotest.fail ("missing workload " ^ name)
      | Some w ->
        Alcotest.(check int)
          (Printf.sprintf "%s(%s)" name
             (String.concat "," (List.map string_of_int args)))
          expected
          (Workloads.reference w args))
    pinned

let test_all_workloads_have_args () =
  List.iter
    (fun (w : Workloads.t) ->
      Alcotest.(check bool)
        (w.Workloads.name ^ " has argument vectors")
        true
        (w.Workloads.arg_sets <> []);
      (* every workload's source parses, checks and runs on every vector *)
      List.iter
        (fun args -> ignore (Workloads.reference w args))
        w.Workloads.arg_sets)
    Workloads.all

let test_categories_partition () =
  (* concurrent workloads use par/channels, thorny ones use pointers or
     recursion, and the sequential set accepts the bachc dialect *)
  List.iter
    (fun (w : Workloads.t) ->
      let program = Workloads.parse w in
      Alcotest.(check bool)
        (w.Workloads.name ^ " accepted by bachc")
        true
        (Dialect.check Dialect.bachc program = []))
    Workloads.sequential;
  List.iter
    (fun (w : Workloads.t) ->
      let program = Workloads.parse w in
      Alcotest.(check bool)
        (w.Workloads.name ^ " only fits c2verilog")
        true
        (Dialect.check Dialect.c2verilog program = []
        && Dialect.check Dialect.bachc program <> []))
    Workloads.thorny

let suite =
  ( "workloads",
    [ Alcotest.test_case "pinned oracle values" `Quick test_pinned_values;
      Alcotest.test_case "all workloads runnable" `Quick
        test_all_workloads_have_args;
      Alcotest.test_case "category consistency" `Quick
        test_categories_partition ] )
