(* The cache subsystem: LRU accounting in the Memory store, and the Disk
   store's whole failure-mode contract — round trips, persistence across
   handles (a simulated restart), corruption and truncation degrading to
   a miss, version skew dropped at open, byte-budget eviction — plus the
   driver plumbed over a persistent store. *)

let fresh_dir =
  let n = ref 0 in
  fun label ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "chlsc-cache-test-%d-%s-%d" (Unix.getpid ()) label !n)
    in
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
    dir

let disk ?max_bytes ?version label =
  match Cache.Disk.open_dir ?max_bytes ?version (fresh_dir label) with
  | Ok d -> d
  | Error msg -> Alcotest.fail msg

let reopen ?max_bytes ?version d =
  match Cache.Disk.open_dir ?max_bytes ?version (Cache.Disk.dir d) with
  | Ok d -> d
  | Error msg -> Alcotest.fail msg

(* the one entry file a key lives in (the store's naming scheme: entries
   are digest-named so keys can hold any byte) *)
let entry_path d key =
  Filename.concat (Cache.Disk.dir d)
    (Digest.to_hex (Digest.string key) ^ ".entry")

(* --- Memory --- *)

let test_memory_lru_eviction_order () =
  let m = Cache.Memory.create ~max_bytes:10 () in
  let s = Cache.Memory.store m in
  Cache.store_put s "a" "1234";
  Cache.store_put s "b" "5678";
  (* touch "a": it becomes most recently used *)
  Alcotest.(check (option string)) "a resident" (Some "1234")
    (Cache.store_find s "a");
  Alcotest.(check (list string)) "LRU order, least recent first"
    [ "b"; "a" ] (Cache.store_keys s);
  (* 4 more bytes blow the 10-byte budget: "b" (the LRU) must go *)
  Cache.store_put s "c" "9999";
  Alcotest.(check (option string)) "b evicted" None (Cache.store_find s "b");
  Alcotest.(check (option string)) "a survived" (Some "1234")
    (Cache.store_find s "a");
  let c = Cache.store_counters s in
  Alcotest.(check int) "one eviction" 1 c.Cache.evictions;
  Alcotest.(check int) "bytes tracked" 8 c.Cache.bytes

let test_memory_oversized_value_not_resident () =
  let m = Cache.Memory.create ~max_bytes:4 () in
  let s = Cache.Memory.store m in
  Cache.store_put s "k" "way too large for the budget";
  Alcotest.(check (option string)) "never resident" None
    (Cache.store_find s "k");
  Cache.store_put s "ok" "1234";
  Alcotest.(check (option string)) "fitting value resident" (Some "1234")
    (Cache.store_find s "ok")

(* --- Disk: round trips and restart survival --- *)

let test_disk_round_trip_and_restart () =
  let d = disk "roundtrip" in
  let s = Cache.Disk.store d in
  Cache.store_put s "key|1" "payload one";
  Cache.store_put s "key|2" "payload two";
  Alcotest.(check (option string)) "immediate hit" (Some "payload one")
    (Cache.store_find s "key|1");
  (* a second handle over the same directory: the restart case *)
  let d2 = reopen d in
  let s2 = Cache.Disk.store d2 in
  Alcotest.(check (option string)) "hit after reopen" (Some "payload two")
    (Cache.store_find s2 "key|2");
  let c = Cache.store_counters s2 in
  Alcotest.(check int) "both entries indexed at open" 2 c.Cache.entries;
  Alcotest.(check int) "no corruption" 0 c.Cache.corrupt

let test_disk_cross_handle_sharing () =
  (* two live handles over one directory (two co-operating workers): a
     put through one is visible to the other via the file probe, without
     reopening *)
  let d = disk "sharing" in
  let d2 = reopen d in
  Cache.store_put (Cache.Disk.store d) "shared" "from the first worker";
  Alcotest.(check (option string)) "second worker sees it"
    (Some "from the first worker")
    (Cache.store_find (Cache.Disk.store d2) "shared")

let test_disk_corrupt_entry_degrades_to_miss () =
  let d = disk "corrupt" in
  let s = Cache.Disk.store d in
  Cache.store_put s "good" "intact payload";
  Cache.store_put s "bad" "doomed payload";
  (* flip the last payload byte behind the store's back — the payload
     sits at the end of the entry file, so the header stays well-formed
     and the checksum is what catches it *)
  let path = entry_path d "bad" in
  let content = In_channel.with_open_bin path In_channel.input_all in
  let n = String.length content in
  let corrupted =
    String.sub content 0 (n - 1)
    ^ String.make 1 (if content.[n - 1] = 'X' then 'Y' else 'X')
  in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc corrupted);
  Alcotest.(check (option string)) "corrupt entry is a miss" None
    (Cache.store_find s "bad");
  Alcotest.(check bool) "corrupt file deleted" false (Sys.file_exists path);
  Alcotest.(check (option string)) "other entries unharmed"
    (Some "intact payload") (Cache.store_find s "good");
  Alcotest.(check bool) "corruption counted" true
    ((Cache.store_counters s).Cache.corrupt >= 1)

let test_disk_truncated_entry_degrades_to_miss () =
  let d = disk "truncated" in
  let s = Cache.Disk.store d in
  Cache.store_put s "short" "a payload that will lose its tail";
  let path = entry_path d "short" in
  let content = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc
        (String.sub content 0 (String.length content / 2)));
  Alcotest.(check (option string)) "truncated entry is a miss" None
    (Cache.store_find s "short");
  Alcotest.(check bool) "truncated file deleted" false (Sys.file_exists path)

let test_disk_version_skew_invalidated_at_open () =
  let d = disk "skew" ~version:"binary-A" in
  Cache.store_put (Cache.Disk.store d) "k" "written by binary A";
  (* the next binary opens the same directory under its own version *)
  let d2 = reopen d ~version:"binary-B" in
  let s2 = Cache.Disk.store d2 in
  Alcotest.(check int) "skewed entry dropped at open" 1
    (Cache.store_counters s2).Cache.version_skew;
  Alcotest.(check int) "nothing indexed" 0
    (Cache.store_counters s2).Cache.entries;
  Alcotest.(check (option string)) "miss under the new version" None
    (Cache.store_find s2 "k");
  Alcotest.(check bool) "skewed file deleted" false
    (Sys.file_exists (entry_path d2 "k"))

let test_disk_lru_eviction_by_byte_budget () =
  let d = disk "evict" ~max_bytes:30 in
  let s = Cache.Disk.store d in
  Cache.store_put s "one" (String.make 12 'x');
  Cache.store_put s "two" (String.make 12 'y');
  (* touching "one" protects it: "two" becomes the LRU *)
  ignore (Cache.store_find s "one");
  Cache.store_put s "three" (String.make 12 'z');
  Alcotest.(check (option string)) "LRU entry evicted from disk" None
    (Cache.store_find s "two");
  Alcotest.(check (option string)) "recently used entry kept"
    (Some (String.make 12 'x'))
    (Cache.store_find s "one");
  Alcotest.(check (option string)) "new entry resident"
    (Some (String.make 12 'z'))
    (Cache.store_find s "three");
  Alcotest.(check bool) "eviction counted" true
    ((Cache.store_counters s).Cache.evictions >= 1);
  Alcotest.(check bool) "budget respected" true
    ((Cache.store_counters s).Cache.bytes <= 30)

(* --- the decoded front cache over a store --- *)

let test_front_revives_from_store () =
  let mem = Cache.Memory.store (Cache.Memory.create ()) in
  let cache =
    Cache.create ~name:"test"
      ~encode:(fun v -> Some v)
      ~decode:(fun s -> Some s)
      ~store:mem ()
  in
  Cache.add cache "k" "decoded value";
  (match Cache.find cache "k" with
  | Some (_, `Front) -> ()
  | _ -> Alcotest.fail "expected a front hit");
  (* simulated restart: the front table dies, the store survives *)
  Cache.clear cache;
  Alcotest.(check int) "front emptied" 0 (Cache.size cache);
  (match Cache.find cache "k" with
  | Some (v, `Store) ->
    Alcotest.(check string) "revived payload" "decoded value" v
  | _ -> Alcotest.fail "expected a store revival");
  (* the revival re-seats the value front-side *)
  match Cache.find cache "k" with
  | Some (_, `Front) -> ()
  | _ -> Alcotest.fail "expected a front hit after revival"

let test_front_undecodable_store_entry_is_a_miss () =
  let mem = Cache.Memory.store (Cache.Memory.create ()) in
  let cache =
    Cache.create ~name:"test"
      ~encode:(fun v -> Some v)
      ~decode:(fun _ -> None)
      ~store:mem ()
  in
  Cache.store_put mem "k" "bytes the codec rejects";
  Alcotest.(check bool) "undecodable entry is a miss" true
    (Cache.find cache "k" = None);
  Alcotest.(check int) "failure counted" 1 (Cache.decode_failures cache);
  Alcotest.(check (option string)) "poisoned entry deleted" None
    (Cache.store_find mem "k")

(* --- the driver over a persistent store --- *)

let test_driver_designs_survive_restart () =
  let dir = fresh_dir "driver" in
  let previous = Driver.cache_store () in
  Fun.protect
    ~finally:(fun () ->
      Driver.set_cache_store previous;
      Driver.clear_cache ())
    (fun () ->
      (match Driver.attach_disk_cache ~dir () with
      | Ok _ -> ()
      | Error msg -> Alcotest.fail msg);
      Driver.clear_cache ();
      let w = Workloads.gcd in
      let bachc = Registry.get "bachc" in
      let compile () =
        let s = Driver.create ~entry:w.Workloads.entry w.Workloads.source in
        match Driver.compile s bachc with
        | Ok d -> (s, d)
        | Error e -> Alcotest.fail (Driver.render_error e)
      in
      let s1, d1 = compile () in
      Alcotest.(check bool) "first compile is a miss" true
        (Metrics.find (Driver.metrics s1) "driver.cache.design_misses"
        = Some (Metrics.Int 1));
      (* restart: drop the decoded front tier, keep the disk store *)
      Driver.clear_cache ();
      let s2, d2 = compile () in
      Alcotest.(check bool) "second process hits the disk store" true
        (Metrics.find (Driver.metrics s2) "driver.cache.design_store_hits"
        = Some (Metrics.Int 1));
      List.iter
        (fun args ->
          Alcotest.(check (option int))
            "revived design runs identically"
            (Design.run_int d1 args) (Design.run_int d2 args))
        w.Workloads.arg_sets)

let suite =
  ( "cache",
    [ Alcotest.test_case "memory LRU eviction order" `Quick
        test_memory_lru_eviction_order;
      Alcotest.test_case "memory oversized value" `Quick
        test_memory_oversized_value_not_resident;
      Alcotest.test_case "disk round trip and restart" `Quick
        test_disk_round_trip_and_restart;
      Alcotest.test_case "disk cross-handle sharing" `Quick
        test_disk_cross_handle_sharing;
      Alcotest.test_case "corrupt entry degrades to miss" `Quick
        test_disk_corrupt_entry_degrades_to_miss;
      Alcotest.test_case "truncated entry degrades to miss" `Quick
        test_disk_truncated_entry_degrades_to_miss;
      Alcotest.test_case "version skew invalidated at open" `Quick
        test_disk_version_skew_invalidated_at_open;
      Alcotest.test_case "disk LRU eviction by byte budget" `Quick
        test_disk_lru_eviction_by_byte_budget;
      Alcotest.test_case "front revives from store" `Quick
        test_front_revives_from_store;
      Alcotest.test_case "undecodable store entry" `Quick
        test_front_undecodable_store_entry_is_a_miss;
      Alcotest.test_case "driver designs survive restart" `Quick
        test_driver_designs_survive_restart ] )
