(* Random-program differential testing.

   A qcheck generator produces small well-typed C programs (arithmetic,
   arrays, nested if/for, global state).  Each generated program is run
   through every semantic layer of the system — the AST interpreter, the
   CIR interpreter, the SSA evaluator, the FSMD simulator (three
   scheduling policies), the elaborated netlist, the asynchronous token
   simulator, the Handel-C statement machine and the C2Verilog stack
   machine — and all results must agree bit-for-bit.  This is the deepest
   correctness net in the repository: any divergence between two layers is
   a real compiler bug. *)

(* --- a tiny well-typed program generator --- *)

type genv = {
  mutable vars : string list; (* int scalars in scope *)
  mutable counter : int;
  array_name : string;
  array_len : int;
}

let fresh g prefix =
  g.counter <- g.counter + 1;
  Printf.sprintf "%s%d" prefix g.counter

open QCheck.Gen

(* expressions are built from in-scope variables and bounded constants;
   shift amounts are masked into 0..7 and divisors guarded into 1..8 so
   every generated program is defined under all dialects while still
   exercising signedness and the division/shift datapaths *)
let gen_expr g =
  let leaf =
    oneof
      [ map (fun n -> Printf.sprintf "%d" n) (int_range (-20) 20);
        (match g.vars with
        | [] -> return "7"
        | vars -> map (fun i -> List.nth vars (abs i mod List.length vars)) nat) ]
  in
  let rec go depth =
    if depth = 0 then leaf
    else
      frequency
        [ (2, leaf);
          ( 3,
            map3
              (fun op a b -> Printf.sprintf "(%s %s %s)" a op b)
              (oneofl [ "+"; "-"; "*"; "&"; "|"; "^" ])
              (go (depth - 1)) (go (depth - 1)) );
          ( 1,
            map3
              (fun op a b -> Printf.sprintf "(%s %s (%s & 7))" a op b)
              (oneofl [ "<<"; ">>" ])
              (go (depth - 1)) (go (depth - 1)) );
          ( 1,
            (* division/modulo with the divisor guarded into 1..8 *)
            map3
              (fun op a b -> Printf.sprintf "(%s %s ((%s & 7) + 1))" a op b)
              (oneofl [ "/"; "%" ])
              (go (depth - 1)) (go (depth - 1)) );
          ( 1,
            map3
              (fun op a b -> Printf.sprintf "(%s %s %s)" a op b)
              (oneofl [ "<"; "<="; "=="; "!=" ])
              (go (depth - 1)) (go (depth - 1)) );
          ( 1,
            map2
              (fun a idx ->
                Printf.sprintf "%s[(%s & %d)]" g.array_name idx
                  (g.array_len - 1)
                |> fun s -> ignore a; s)
              (go 0) (go (depth - 1)) ) ]
  in
  go 2

let gen_stmt g ~depth =
  let assign_var =
    match g.vars with
    | [] -> map (fun e -> Printf.sprintf "int t0 = %s;" e) (gen_expr g)
    | vars ->
      map2
        (fun i e ->
          Printf.sprintf "%s = %s;" (List.nth vars (abs i mod List.length vars)) e)
        nat (gen_expr g)
  in
  let decl =
    map
      (fun e ->
        let name = fresh g "v" in
        let s = Printf.sprintf "int %s = %s;" name e in
        g.vars <- name :: g.vars;
        s)
      (gen_expr g)
  in
  let array_store =
    map2
      (fun idx e ->
        Printf.sprintf "%s[(%s & %d)] = %s;" g.array_name idx
          (g.array_len - 1) e)
      (gen_expr g) (gen_expr g)
  in
  let rec stmt depth =
    if depth = 0 then oneof [ assign_var; decl; array_store ]
    else
      frequency
        [ (3, assign_var);
          (2, decl);
          (2, array_store);
          ( 2,
            (* if/else over existing statements; declarations inside the
               branches stay scoped there, so remember and restore vars *)
            gen_expr g >>= fun cond ->
            let saved = g.vars in
            stmt (depth - 1) >>= fun then_s ->
            g.vars <- saved;
            stmt (depth - 1) >>= fun else_s ->
            g.vars <- saved;
            return
              (Printf.sprintf "if (%s) { %s } else { %s }" cond then_s else_s)
          );
          ( 1,
            (* a bounded counting loop over fresh body statements *)
            int_range 2 6 >>= fun trips ->
            let loop_var = fresh g "i" in
            let saved = g.vars in
            g.vars <- loop_var :: g.vars;
            stmt (depth - 1) >>= fun body ->
            g.vars <- saved;
            return
              (Printf.sprintf "for (int %s = 0; %s < %d; %s = %s + 1) { %s }"
                 loop_var loop_var trips loop_var loop_var body) ) ]
  in
  stmt depth

(* Statements must be generated strictly left to right so that a mutable
   scope entry (a declaration) is only visible to *later* statements;
   an explicit monadic fold guarantees the order. *)
let gen_stmts g n =
  let rec go n acc =
    if n = 0 then return (List.rev acc)
    else gen_stmt g ~depth:2 >>= fun s -> go (n - 1) (s :: acc)
  in
  go n []

let gen_program =
  sized_size (int_range 3 8) (fun n ->
      let g = { vars = [ "a"; "b" ]; counter = 0; array_name = "buf";
                array_len = 8 } in
      gen_stmts g n >>= fun stmts ->
      gen_expr g >>= fun result ->
      return
        (Printf.sprintf
           {|
           int buf[8];
           int f(int a, int b) {
             %s
             return %s;
           }
           |}
           (String.concat "\n             " stmts)
           result))

let arb_program = QCheck.make ~print:(fun s -> s) gen_program

(* --- the differential harness --- *)

let args_of (a, b) = [ Bitvec.of_int ~width:64 a; Bitvec.of_int ~width:64 b ]

let layers (src : string) (a, b) : (string * int option) list =
  let program = Typecheck.parse_and_check src in
  let reference =
    let o = Interp.run program ~entry:"f" ~args:(args_of (a, b)) in
    Option.map Bitvec.to_int o.Interp.return_value
  in
  let lowered = Lower.lower_program program ~entry:"f" in
  let simplified, _ = Simplify.simplify lowered.Lower.func in
  let cir =
    let o = Cir_interp.run lowered.Lower.func ~args:(args_of (a, b)) in
    Option.map Bitvec.to_int o.Cir_interp.return_value
  in
  let cir_simplified =
    let o = Cir_interp.run simplified ~args:(args_of (a, b)) in
    Option.map Bitvec.to_int o.Cir_interp.return_value
  in
  let if_converted =
    let converted, _ = Ifconv.convert simplified in
    let o = Cir_interp.run converted ~args:(args_of (a, b)) in
    Option.map Bitvec.to_int o.Cir_interp.return_value
  in
  let ssa_result =
    Option.map Bitvec.to_int
      (Ssa.run (Ssa.of_func simplified) ~args:(args_of (a, b)))
  in
  let fsmd_with schedule_name schedule_block =
    let fsmd = Fsmd.of_func simplified ~schedule_block in
    let o = Rtlsim.run fsmd ~args:(args_of (a, b)) in
    (schedule_name, Option.map Bitvec.to_int o.Rtlsim.return_value)
  in
  let serial = fsmd_with "fsmd-serial" (Fsmd.serial_schedule simplified) in
  let scheduled =
    fsmd_with "fsmd-scheduled" (fun blk ->
        Schedule.list_schedule simplified Schedule.default_allocation
          blk.Cir.instrs)
  in
  let handelc_fsmd =
    fsmd_with "fsmd-handelc" (Fsmd.handelc_schedule simplified)
  in
  let transmogrifier =
    let fsmd =
      Fsmd.of_func ~mem_forwarding:true simplified
        ~schedule_block:(Fsmd.transmogrifier_schedule simplified)
    in
    let o = Rtlsim.run fsmd ~args:(args_of (a, b)) in
    ("fsmd-transmogrifier", Option.map Bitvec.to_int o.Rtlsim.return_value)
  in
  let netlist =
    let fsmd =
      Fsmd.of_func simplified ~schedule_block:(fun blk ->
          Schedule.list_schedule simplified Schedule.default_allocation
            blk.Cir.instrs)
    in
    let e = Rtlgen.elaborate fsmd in
    match
      Rtlgen.simulate e ~args:(args_of (a, b)) ~func:simplified
    with
    | Ok (outputs, _) ->
      ("netlist", Some (Bitvec.to_int (List.assoc "result" outputs)))
    | Error `Timeout -> ("netlist", None)
  in
  let async =
    let o = Asim.run (Ssa.of_func simplified) ~args:(args_of (a, b)) in
    ("async-dataflow", Option.map Bitvec.to_int o.Asim.return_value)
  in
  let handelc =
    let d = Handelc.compile program ~entry:"f" in
    ("handelc", Design.run_int d [ a; b ])
  in
  let c2v =
    let d = C2v_machine.compile program ~entry:"f" in
    ("c2verilog", Design.run_int d [ a; b ])
  in
  [ ("interp", reference); ("cir", cir); ("cir-simplified", cir_simplified);
    ("if-converted", if_converted); ("ssa", ssa_result); serial; scheduled;
    handelc_fsmd; transmogrifier; netlist; async; handelc; c2v ]

let prop_all_layers_agree =
  QCheck.Test.make ~name:"all semantic layers agree on random programs"
    ~count:120
    (QCheck.pair arb_program
       (QCheck.pair (QCheck.int_range (-50) 50) (QCheck.int_range (-50) 50)))
    (fun (src, inputs) ->
      let results = layers src inputs in
      let reference = snd (List.hd results) in
      List.for_all
        (fun (layer, r) ->
          if r = reference then true
          else
            QCheck.Test.fail_reportf
              "layer %s = %s but interp = %s on:\n%s\ninputs %d,%d" layer
              (match r with Some v -> string_of_int v | None -> "none")
              (match reference with
              | Some v -> string_of_int v
              | None -> "none")
              src (fst inputs) (snd inputs))
        results)

(* Cones needs the stricter subset (no while/unbounded): our generator only
   emits bounded for loops, so it qualifies — flatten and compare too. *)
let prop_cones_agrees =
  QCheck.Test.make ~name:"cones flattening agrees on random programs"
    ~count:80
    (QCheck.pair arb_program
       (QCheck.pair (QCheck.int_range (-50) 50) (QCheck.int_range (-50) 50)))
    (fun (src, (a, b)) ->
      let program = Typecheck.parse_and_check src in
      let expected = Interp.run_int src ~entry:"f" ~args:[ a; b ] in
      let design = Cones.compile program ~entry:"f" in
      match Design.run_int design [ a; b ] with
      | Some v when v = expected -> true
      | Some v ->
        QCheck.Test.fail_reportf "cones = %d, interp = %d on:\n%s" v expected
          src
      | None -> QCheck.Test.fail_reportf "cones returned nothing on:\n%s" src)

(* The event-driven netlist evaluator must be indistinguishable from the
   full-sweep oracle: same outputs (all of them, bit for bit) and the same
   cycle count, on every generated program. *)
let prop_event_driven_equals_full_sweep =
  QCheck.Test.make
    ~name:"event-driven settle = full-sweep settle on elaborated netlists"
    ~count:200
    (QCheck.pair arb_program
       (QCheck.pair (QCheck.int_range (-50) 50) (QCheck.int_range (-50) 50)))
    (fun (src, (a, b)) ->
      let program = Typecheck.parse_and_check src in
      let lowered = Lower.lower_program program ~entry:"f" in
      let simplified, _ = Simplify.simplify lowered.Lower.func in
      let fsmd =
        Fsmd.of_func simplified ~schedule_block:(fun blk ->
            Schedule.list_schedule simplified Schedule.default_allocation
              blk.Cir.instrs)
      in
      let e = Rtlgen.elaborate fsmd in
      let run strategy =
        Rtlgen.simulate ~strategy e ~args:(args_of (a, b)) ~func:simplified
      in
      match (run Neteval.Event_driven, run Neteval.Full_sweep) with
      | Ok (ev_out, ev_cycles), Ok (fs_out, fs_cycles) ->
        if ev_cycles <> fs_cycles then
          QCheck.Test.fail_reportf
            "cycle count diverged: event-driven %d vs full-sweep %d on:\n%s"
            ev_cycles fs_cycles src
        else if
          not
            (List.length ev_out = List.length fs_out
            && List.for_all2
                 (fun (n1, v1) (n2, v2) -> n1 = n2 && Bitvec.equal v1 v2)
                 ev_out fs_out)
        then
          QCheck.Test.fail_reportf
            "outputs diverged between settle strategies on:\n%s\ninputs %d,%d"
            src a b
        else true
      | Error `Timeout, Error `Timeout -> true
      | Ok _, Error `Timeout | Error `Timeout, Ok _ ->
        QCheck.Test.fail_reportf
          "timeout under only one settle strategy on:\n%s" src)

(* Simplify must be a fixpoint of itself: a second application changes
   nothing.  Anything it still wants to rewrite after one application is a
   missed rewrite the trace would misattribute to later passes. *)
let prop_simplify_idempotent =
  QCheck.Test.make ~name:"simplify is idempotent on random programs"
    ~count:200 arb_program (fun src ->
      let program = Typecheck.parse_and_check src in
      let lowered = Lower.lower_program program ~entry:"f" in
      let once, _ = Simplify.simplify lowered.Lower.func in
      let again, _ = Simplify.simplify once in
      if Cir.to_string once = Cir.to_string again then true
      else
        QCheck.Test.fail_reportf
          "simplify is not idempotent on:\n%s\nfirst:\n%s\nsecond:\n%s" src
          (Cir.to_string once) (Cir.to_string again))

(* --- concurrent programs: par blocks and rendezvous channels --- *)

(* Each generated program has two par arms over two shared globals and one
   channel.  The clean shape partitions the state: arm 0 owns g0 and the
   sending end, arm 1 owns g1 and the receiving end, with matched
   send/recv counts (straight-line arms with matched counts cannot
   deadlock).  The racy shape additionally lets arm 1 touch g0, which is
   a structural race the static checker must flag. *)
let gen_list n gen =
  let rec go n acc =
    if n = 0 then return (List.rev acc) else gen >>= fun x -> go (n - 1) (x :: acc)
  in
  go n []

let rec interleave xs ys =
  match (xs, ys) with
  | [], r | r, [] -> r
  | x :: xs, y :: ys -> x :: y :: interleave xs ys

let gen_par_program : (bool * string) t =
  bool >>= fun racy ->
  int_range 1 3 >>= fun msgs ->
  let compute owned =
    map2
      (fun c k -> Printf.sprintf "%s = (%s + %d) * %d;" owned owned c k)
      (int_range (-9) 9) (int_range 1 4)
  in
  int_range 1 3 >>= fun n0 ->
  int_range 1 3 >>= fun n1 ->
  gen_list n0 (compute "g0") >>= fun c0 ->
  gen_list n1 (compute "g1") >>= fun c1 ->
  gen_list msgs
    (map (fun k -> Printf.sprintf "send(ch, a + %d);" k) (int_range 0 9))
  >>= fun sends ->
  (* recv is a statement form (bare RHS), so bind it before folding *)
  let recvs =
    List.init msgs (fun i ->
        Printf.sprintf "int m%d = recv(ch); g1 = g1 + m%d;" i i)
  in
  int_range 0 2 >>= fun racy_shape ->
  let race =
    if not racy then []
    else
      match racy_shape with
      | 0 -> [ "g0 = g0 + 1;" ] (* write/write with arm 0 *)
      | 1 -> [ "g1 = g1 + g0;" ] (* read/write with arm 0's writes *)
      | _ -> [ "g0 = b;" ]
  in
  let arm0 = interleave c0 sends in
  let arm1 = interleave c1 recvs @ race in
  let body arm = String.concat " " arm in
  return
    ( racy,
      Printf.sprintf
        {|
        chan int ch;
        int g0;
        int g1;
        int f(int a, int b) {
          par {
            { %s }
            { %s }
          }
          return (g0 + 3 * g1) ^ b;
        }
        |}
        (body arm0) (body arm1) )

let arb_par_program =
  QCheck.make ~print:(fun (racy, s) ->
      Printf.sprintf "(* racy=%b *)%s" racy s)
    gen_par_program

(* The dynamic cross-check of the static concurrency checker: perturbing
   the interpreter's per-round thread visit order must not change any
   observable of a checker-clean program, while programs constructed with
   a structural race must be flagged (so a divergence there is expected
   and excluded, never silently tolerated). *)
let prop_checker_clean_is_schedule_deterministic =
  QCheck.Test.make
    ~name:"checker-clean par programs are deterministic under arm-order shuffles"
    ~count:120
    (QCheck.pair arb_par_program
       (QCheck.pair (QCheck.int_range (-20) 20) (QCheck.int_range (-20) 20)))
    (fun ((racy, src), (a, b)) ->
      let program = Typecheck.parse_and_check src in
      let diags = Conc_check.check_program ~dialect:Dialect.handelc program in
      if racy then
        if diags = [] then
          QCheck.Test.fail_reportf
            "checker missed a constructed race in:\n%s" src
        else true
      else if diags <> [] then
        QCheck.Test.fail_reportf
          "checker flagged a race-free program:\n%s\nfirst diagnostic: %s" src
          (Conc_check.render (List.hd diags))
      else
        let observe sched_seed =
          let o =
            Interp.run ?sched_seed program ~entry:"f" ~args:(args_of (a, b))
          in
          ( Option.map Bitvec.to_int o.Interp.return_value,
            Bitvec.to_int (Interp.read_global o "g0"),
            Bitvec.to_int (Interp.read_global o "g1") )
        in
        let reference = observe None in
        List.for_all
          (fun seed ->
            if observe (Some seed) = reference then true
            else
              QCheck.Test.fail_reportf
                "schedule divergence under seed %d on a checker-clean \
                 program:\n%s\ninputs %d,%d"
                seed src a b)
          [ 1; 2; 3; 5; 8; 13 ])

let suite =
  ( "random-differential",
    [ QCheck_alcotest.to_alcotest prop_simplify_idempotent;
      QCheck_alcotest.to_alcotest prop_all_layers_agree;
      QCheck_alcotest.to_alcotest prop_cones_agrees;
      QCheck_alcotest.to_alcotest prop_event_driven_equals_full_sweep;
      QCheck_alcotest.to_alcotest prop_checker_clean_is_schedule_deterministic ] )
