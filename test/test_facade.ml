(* Chls facade tests: name round-trips, the full acceptance matrix
   (every workload x every backend), verification plumbing, and Table 1
   rendering. *)

let test_backend_name_roundtrip () =
  List.iter
    (fun backend ->
      Alcotest.(check bool)
        (Chls.backend_name backend ^ " round-trips")
        true
        (Chls.backend_of_name (Chls.backend_name backend) = Some backend))
    Chls.all_compiling_backends;
  Alcotest.(check bool) "aliases work" true
    (Chls.backend_of_name "tmcc" = Some (Registry.get "transmogrifier")
    && Chls.backend_of_name "BDL" = Some (Registry.get "cyber")
    && Chls.backend_of_name "c2v" = Some (Registry.get "c2verilog"));
  Alcotest.(check bool) "unknown rejected" true
    (Chls.backend_of_name "vhdl" = None)

(* The acceptance matrix, written out so a dialect-rule regression is
   immediately visible.  true = the backend's dialect accepts it. *)
let expected_acceptance =
  (* workload, cones, handelc, bachc, cash, c2verilog *)
  [ ("gcd", false, true, true, true, true);
    ("fib", false, true, true, true, true);
    ("fir", true, true, true, true, true);
    ("dotprod", true, true, true, true, true);
    ("matmul", true, true, true, true, true);
    ("bsort", false, true, true, true, true);
    ("crc", true, true, true, true, true);
    ("popcount", false, true, true, true, true);
    ("checksum", true, true, true, true, true);
    ("histogram", true, true, true, true, true);
    ("isqrt_newton", false, true, true, true, true);
    ("transpose", false, true, true, true, true);
    ("producer_consumer", false, true, true, false, false);
    ("pointer_sum", false, false, false, false, true);
    ("recursion", false, false, false, false, true);
    ("dynamic_list", false, false, false, false, true) ]

let test_acceptance_matrix () =
  List.iter
    (fun (name, cones, handelc, bachc, cash, c2v) ->
      let w = Option.get (Workloads.find name) in
      let program = Workloads.parse w in
      let check backend expected =
        Alcotest.(check bool)
          (Printf.sprintf "%s/%s" (Chls.backend_name backend) name)
          expected
          (Chls.accepts backend program)
      in
      check (Registry.get "cones") cones;
      check (Registry.get "handelc") handelc;
      check (Registry.get "bachc") bachc;
      check (Registry.get "cash") cash;
      check (Registry.get "c2verilog") c2v)
    expected_acceptance

let test_verify_against_reference () =
  let w = Workloads.gcd in
  let design =
    Chls.compile (Registry.get "bachc") w.Workloads.source ~entry:"gcd"
  in
  let checks =
    Chls.verify_against_reference design w.Workloads.source ~entry:"gcd"
      ~arg_sets:w.Workloads.arg_sets
  in
  Alcotest.(check int) "one check per vector"
    (List.length w.Workloads.arg_sets)
    (List.length checks);
  List.iter
    (fun c ->
      Alcotest.(check bool) "agrees" true c.Chls.agrees;
      Alcotest.(check bool) "observed present" true (c.Chls.observed <> None))
    checks

let test_table1_rendering () =
  let t = Chls.render_table1 () in
  List.iter
    (fun needle ->
      let n = String.length needle in
      let rec go i =
        i + n <= String.length t && (String.sub t i n = needle || go (i + 1))
      in
      Alcotest.(check bool) ("table mentions " ^ needle) true (go 0))
    [ "Cones"; "HardwareC"; "Transmogrifier C"; "SystemC"; "Ocapi";
      "C2Verilog"; "Cyber (BDL)"; "Handel-C"; "SpecC"; "Bach C"; "CASH";
      "Comprehensive; company defunct"; "Untimed semantics (Sharp)" ]

let test_compile_rejects_wrong_dialect () =
  let ptr = (Workloads.pointer_sum).Workloads.source in
  match Chls.compile (Registry.get "bachc") ptr ~entry:"run" with
  | exception Backend.Dialect_rejected { backend = "bachc"; violations } ->
    Alcotest.(check bool) "violation names the rule" true (violations <> [])
  | exception Backend.Dialect_rejected { backend; _ } ->
    Alcotest.failf "rejection blamed on %s, not bachc" backend
  | _ -> Alcotest.fail "bachc must reject pointers at compile"

let suite =
  ( "facade",
    [ Alcotest.test_case "backend name round-trip" `Quick
        test_backend_name_roundtrip;
      Alcotest.test_case "acceptance matrix" `Quick test_acceptance_matrix;
      Alcotest.test_case "verify against reference" `Quick
        test_verify_against_reference;
      Alcotest.test_case "table1 rendering" `Quick test_table1_rendering;
      Alcotest.test_case "wrong dialect rejected" `Quick
        test_compile_rejects_wrong_dialect ] )
