(* Interpreter edge cases: channel protocols, nested par, pointer and
   malloc corners, error conditions — the parts of the software semantics
   the plain workload runs don't reach. *)

let run_int = Interp.run_int

let test_multiple_channels_interleave () =
  Alcotest.(check int) "two channels, strict alternation" 1234
    (run_int
       {|
       chan int even;
       chan int odd;
       int f(void) {
         int result = 0;
         par {
           { send(even, 1); send(even, 3); }
           { send(odd, 2); send(odd, 4); }
           {
             int a = recv(even);
             int b = recv(odd);
             int c = recv(even);
             int d = recv(odd);
             result = a * 1000 + b * 100 + c * 10 + d;
           }
         }
         return result;
       }
       |}
       ~entry:"f" ~args:[])

let test_nested_par () =
  Alcotest.(check int) "par inside par joins correctly" 15
    (run_int
       {|
       int f(void) {
         int a = 0;
         int b = 0;
         int c = 0;
         int d = 0;
         par {
           {
             par {
               { a = 1; }
               { b = 2; }
             }
           }
           {
             par {
               { c = 4; }
               { d = 8; }
             }
           }
         }
         return a + b + c + d;
       }
       |}
       ~entry:"f" ~args:[])

let test_par_sequencing () =
  (* statements after par see all branch effects *)
  Alcotest.(check int) "join is a barrier" 30
    (run_int
       {|
       int f(void) {
         int x = 0;
         par {
           { x = x + 10; }
         }
         par {
           { x = x + 20; }
         }
         return x;
       }
       |}
       ~entry:"f" ~args:[])

let test_send_before_recv_and_reverse () =
  (* rendezvous works regardless of which side arrives first *)
  let src ready_first =
    Printf.sprintf
      {|
      chan int c;
      int f(void) {
        int got = 0;
        par {
          { %s send(c, 99); }
          { %s got = recv(c); }
        }
        return got;
      }
      |}
      (if ready_first then "" else "delay; delay;")
      (if ready_first then "delay; delay;" else "")
  in
  Alcotest.(check int) "sender first" 99
    (run_int (src true) ~entry:"f" ~args:[]);
  Alcotest.(check int) "receiver first" 99
    (run_int (src false) ~entry:"f" ~args:[])

let test_channel_in_loop () =
  Alcotest.(check int) "stream of 10 values" 45
    (run_int
       {|
       chan int c;
       int f(void) {
         int sum = 0;
         par {
           { for (int i = 0; i < 10; i = i + 1) { send(c, i); } }
           { for (int i = 0; i < 10; i = i + 1) { int v = recv(c); sum = sum + v; } }
         }
         return sum;
       }
       |}
       ~entry:"f" ~args:[])

let test_malloc_isolation () =
  (* two allocations do not overlap; heap survives function return *)
  Alcotest.(check int) "separate blocks" 1059
    (run_int
       {|
       int* make(int v) {
         int* p = malloc(3);
         p[0] = v;
         p[1] = v * 2;
         p[2] = v * 3;
         return p;
       }
       int f(void) {
         int* a = make(100);
         int* b = make(23);
         return a[0] + a[1] + b[0] + b[1] + b[2] * 10;
       }
       |}
       ~entry:"f" ~args:[])

let test_pointer_comparisons () =
  Alcotest.(check int) "pointer difference" 3
    (run_int
       {|
       int buf[8];
       int f(void) {
         int* p = buf;
         int* q = &buf[3];
         return q - p;
       }
       |}
       ~entry:"f" ~args:[])

let test_pointer_into_argument () =
  Alcotest.(check int) "writing through an & argument" 7
    (run_int
       {|
       void set7(int* out) { *out = 7; }
       int f(void) { int x = 0; set7(&x); return x; }
       |}
       ~entry:"f" ~args:[])

let expect_runtime_error src =
  let program = Typecheck.parse_and_check src in
  match Interp.run program ~entry:"f" ~args:[] with
  | exception Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail ("expected a runtime error for: " ^ src)

let test_runtime_errors () =
  (* wild pointer *)
  expect_runtime_error
    "int f(void) { int* p = (int*)99999; return *p; }";
  (* out-of-bounds array write (the strict software semantics catches it,
     unlike the total hardware semantics) *)
  expect_runtime_error
    "int buf[4];\nint f(void) { buf[100] = 1; return 0; }";
  (* recv nested in a larger expression is a documented restriction *)
  expect_runtime_error
    "chan int c;\nint f(void) { int x = 1 + recv(c); return x; }"

let test_step_counting () =
  (* the work metric grows with iterations — the untimed model's only
     notion of cost *)
  let steps n =
    let program =
      Typecheck.parse_and_check
        "int f(int n) { int s = 0; for (int i = 0; i < n; i = i + 1) { s = s + i; } return s; }"
    in
    (Interp.run program ~entry:"f" ~args:[ Bitvec.of_int ~width:64 n ])
      .Interp.steps
  in
  Alcotest.(check bool) "steps grow linearly" true
    (steps 100 > steps 10 && steps 10 > steps 1)

let test_void_functions () =
  Alcotest.(check int) "void call as statement" 12
    (run_int
       {|
       int acc = 0;
       void bump(int v) { acc = acc + v; }
       int f(void) { bump(4); bump(8); return acc; }
       |}
       ~entry:"f" ~args:[])

let test_early_return_in_loop () =
  Alcotest.(check int) "return exits everything" 5
    (run_int
       {|
       int f(int n) {
         for (int i = 0; i < 100; i = i + 1) {
           if (i == n) { return i; }
         }
         return -1;
       }
       |}
       ~entry:"f" ~args:[ 5 ])

let test_deep_expression_nesting () =
  (* deep but not pathological: exercises parser recursion and interp *)
  let expr = String.concat "" (List.init 200 (fun _ -> "(1 + ")) in
  let close = String.concat "" (List.init 200 (fun _ -> ")")) in
  Alcotest.(check int) "200-deep nesting" 201
    (run_int
       (Printf.sprintf "int f(void) { return %s1%s; }" expr close)
       ~entry:"f" ~args:[])

let test_short_circuit_internal_error () =
  (* The scalar binop evaluator must never see && / || — eval rewrites
     them into muxes first.  If a lowering change lets one through, the
     process used to die on [assert false]; now it raises a located
     Internal_error the CLI renders as a file:line:col diagnostic. *)
  let program = Typecheck.parse_and_check "int f(int a) { return a; }" in
  let store =
    { Interp.mem = Array.make 64 (Bitvec.of_int ~width:64 0);
      sp = 0;
      globals = Hashtbl.create 4;
      heap_next = Interp.heap_base }
  in
  let env =
    { Interp.store; program; scopes = []; steps = 0; fuel = 1000 }
  in
  let loc = { Ast.line = 42; col = 7 } in
  let one = Ast.mk_expr ~loc (Ast.Const (1L, Ctypes.int_t)) in
  List.iter
    (fun op ->
      match Interp.eval_binop env op one one with
      | _ -> Alcotest.fail "short-circuit op reached the scalar evaluator"
      | exception Interp.Internal_error (msg, eloc) ->
        Alcotest.(check bool) "diagnostic names the operator" true
          (String.length msg > 0);
        Alcotest.(check int) "location line survives" 42 eloc.Ast.line;
        Alcotest.(check int) "location column survives" 7 eloc.Ast.col)
    [ Ast.Log_and; Ast.Log_or ]

let suite =
  ( "interp-edge",
    [ Alcotest.test_case "multiple channels" `Quick
        test_multiple_channels_interleave;
      Alcotest.test_case "nested par" `Quick test_nested_par;
      Alcotest.test_case "par is a barrier" `Quick test_par_sequencing;
      Alcotest.test_case "rendezvous both orders" `Quick
        test_send_before_recv_and_reverse;
      Alcotest.test_case "channel in loop" `Quick test_channel_in_loop;
      Alcotest.test_case "malloc isolation" `Quick test_malloc_isolation;
      Alcotest.test_case "pointer comparisons" `Quick
        test_pointer_comparisons;
      Alcotest.test_case "pointer into argument" `Quick
        test_pointer_into_argument;
      Alcotest.test_case "runtime errors" `Quick test_runtime_errors;
      Alcotest.test_case "step counting" `Quick test_step_counting;
      Alcotest.test_case "void functions" `Quick test_void_functions;
      Alcotest.test_case "early return in loop" `Quick
        test_early_return_in_loop;
      Alcotest.test_case "deep expression nesting" `Quick
        test_deep_expression_nesting;
      Alcotest.test_case "short-circuit ops raise Internal_error" `Quick
        test_short_circuit_internal_error ] )
