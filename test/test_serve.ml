(* The serve subsystem without a daemon: the JSON codec, the frame
   format (byte order pinned — a length header assembled in the wrong
   order reads as a multi-megabyte frame), typed request decoding, and
   the Domain pool driven directly through submit/handle. *)

let json = Alcotest.testable (Fmt.of_to_string Metrics.render_compact) ( = )

let parse_ok s =
  match Serve.Json.parse s with
  | Ok v -> v
  | Error msg -> Alcotest.fail msg

let member name j =
  match Serve.Json.member name j with
  | Some v -> v
  | None ->
    Alcotest.fail
      (Printf.sprintf "missing %S in %s" name (Metrics.render_compact j))

let gcd_w = Workloads.gcd

(* --- JSON --- *)

let test_json_values () =
  Alcotest.check json "object"
    (Metrics.Obj
       [ ("a", Metrics.Int 1);
         ("b", Metrics.List [ Metrics.Int 1; Metrics.Int 2 ]);
         ("c", Metrics.Null) ])
    (parse_ok {| {"a": 1, "b": [1, 2], "c": null} |});
  Alcotest.check json "nesting and bools"
    (Metrics.Obj [ ("x", Metrics.Obj [ ("y", Metrics.Bool true) ]) ])
    (parse_ok {| {"x":{"y":true}} |});
  Alcotest.check json "negative int" (Metrics.Int (-42)) (parse_ok "-42");
  Alcotest.check json "float" (Metrics.Float 2.5) (parse_ok "2.5");
  Alcotest.check json "string escapes"
    (Metrics.String "a\"b\\c\nd")
    (parse_ok {| "a\"b\\c\nd" |});
  Alcotest.check json "unicode escapes decode to UTF-8"
    (Metrics.String "A*\xc3\xa9")
    (parse_ok {| "A*\u00e9" |});
  Alcotest.check json "empty containers"
    (Metrics.Obj [ ("o", Metrics.Obj []); ("l", Metrics.List []) ])
    (parse_ok {| {"o":{},"l":[]} |})

let test_json_render_round_trip () =
  let v =
    Metrics.Obj
      [ ("op", Metrics.String "compile");
        ("id", Metrics.Int 7);
        ("args", Metrics.List [ Metrics.Int 12; Metrics.Int 18 ]);
        ("nested", Metrics.Obj [ ("ok", Metrics.Bool false) ]) ]
  in
  Alcotest.check json "parse (render v) = v" v
    (parse_ok (Metrics.render_compact v))

let test_json_errors () =
  let rejects s =
    match Serve.Json.parse s with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (Printf.sprintf "%S should not parse" s)
  in
  rejects "";
  rejects "not json";
  rejects "{\"a\":}";
  rejects "{\"a\":1,}";
  rejects "[1, 2";
  rejects "{\"a\":1} trailing";
  rejects "\"bad \\q escape\""

(* --- framing --- *)

let with_frame_file f =
  let path = Filename.temp_file "chlsc-frame" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with _ -> ())
    (fun () -> f path)

let test_frame_round_trip () =
  with_frame_file (fun path ->
      let payloads = [ "{}"; "{\"op\":\"stats\"}"; String.make 1000 'x' ] in
      Out_channel.with_open_bin path (fun oc ->
          List.iter (Serve.Frame.write oc) payloads);
      In_channel.with_open_bin path (fun ic ->
          List.iter
            (fun expected ->
              match Serve.Frame.read ic with
              | Some got ->
                Alcotest.(check string) "payload round trip" expected got
              | None -> Alcotest.fail "unexpected EOF")
            payloads;
          Alcotest.(check bool) "clean EOF at the boundary" true
            (Serve.Frame.read ic = None)))

let test_frame_header_is_big_endian () =
  with_frame_file (fun path ->
      Out_channel.with_open_bin path (fun oc -> Serve.Frame.write oc "hi");
      let raw = In_channel.with_open_bin path In_channel.input_all in
      Alcotest.(check string) "4-byte big-endian length then payload"
        "\x00\x00\x00\x02hi" raw;
      (* and the reader agrees with its own writer byte-for-byte *)
      In_channel.with_open_bin path (fun ic ->
          Alcotest.(check (option string)) "reader sees 2 bytes" (Some "hi")
            (Serve.Frame.read ic)))

let test_frame_rejects_oversized_and_truncated () =
  with_frame_file (fun path ->
      (* a length far past max_frame must be rejected before allocation *)
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc "\x7f\xff\xff\xffgarb");
      In_channel.with_open_bin path (fun ic ->
          match Serve.Frame.read ic with
          | exception Serve.Frame.Protocol_error _ -> ()
          | _ -> Alcotest.fail "oversized frame accepted"));
  with_frame_file (fun path ->
      (* a frame whose payload ends early is a protocol error, not EOF *)
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc "\x00\x00\x00\x10short");
      In_channel.with_open_bin path (fun ic ->
          match Serve.Frame.read ic with
          | exception Serve.Frame.Protocol_error _ -> ()
          | _ -> Alcotest.fail "truncated frame accepted"))

(* --- request decoding --- *)

let test_parse_request_compile_defaults () =
  match
    Serve.parse_request
      (parse_ok {| {"op":"compile","source":"int main(){return 1;}"} |})
  with
  | Ok (Serve.Compile { entry; backend; args; _ }) ->
    Alcotest.(check string) "default entry" "main" entry;
    Alcotest.(check string) "default backend" "bachc" backend;
    Alcotest.(check bool) "no args" true (args = None)
  | _ -> Alcotest.fail "expected a Compile request"

let test_parse_request_compare_vector_shapes () =
  (match
     Serve.parse_request
       (parse_ok
          {| {"op":"compare","source":"s","args":[[1,2],[3,4]]} |})
   with
  | Ok (Serve.Compare { vectors; _ }) ->
    Alcotest.(check (list (list int))) "list of vectors"
      [ [ 1; 2 ]; [ 3; 4 ] ] vectors
  | _ -> Alcotest.fail "expected a Compare request");
  match
    Serve.parse_request
      (parse_ok {| {"op":"compare","source":"s","args":[1,2]} |})
  with
  | Ok (Serve.Compare { vectors; _ }) ->
    Alcotest.(check (list (list int))) "flat shorthand = one vector"
      [ [ 1; 2 ] ] vectors
  | _ -> Alcotest.fail "expected a Compare request"

let test_parse_request_errors_echo_id () =
  (match Serve.parse_request (parse_ok {| {"op":"compile","id":9} |}) with
  | Error (_, id) -> Alcotest.check json "id echoed" (Metrics.Int 9) id
  | Ok _ -> Alcotest.fail "compile without source should not decode");
  (match Serve.parse_request (parse_ok {| {"op":"frobnicate","id":3} |}) with
  | Error (msg, _) ->
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "unknown op named" true (contains msg "frobnicate")
  | Ok _ -> Alcotest.fail "unknown op should not decode");
  match Serve.parse_request (parse_ok {| {"source":"s"} |}) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing op should not decode"

(* --- the pool, driven directly --- *)

let with_pool ?domains ?queue_capacity f =
  let pool = Serve.Pool.create ?domains ?queue_capacity () in
  Fun.protect ~finally:(fun () -> Serve.Pool.shutdown pool) (fun () -> f pool)

let handle pool req = Serve.Pool.handle pool None req

let bool_member name j =
  match Serve.Json.member name j with
  | Some (Metrics.Bool b) -> b
  | _ -> Alcotest.fail (Printf.sprintf "missing bool %S" name)

let test_handle_compile_verifies_against_oracle () =
  Driver.clear_cache ();
  with_pool ~domains:1 (fun pool ->
      let resp =
        handle pool
          (Serve.Compile
             { id = Metrics.Int 1;
               source = gcd_w.Workloads.source;
               entry = gcd_w.Workloads.entry;
               backend = "bachc";
               args = Some [ 12; 18 ];
               config = None })
      in
      Alcotest.(check bool) "ok" true (bool_member "ok" resp);
      Alcotest.check json "result" (Metrics.Int 6) (member "result" resp);
      Alcotest.(check bool) "oracle agrees" true
        (bool_member "matches_reference" resp);
      Alcotest.check json "id echoed" (Metrics.Int 1) (member "id" resp))

let test_handle_typed_errors () =
  with_pool ~domains:1 (fun pool ->
      let kind resp =
        match Serve.Json.member "error" resp with
        | Some e -> (
          match Serve.Json.member "kind" e with
          | Some (Metrics.String k) -> k
          | _ -> Alcotest.fail "error without kind")
        | None -> Alcotest.fail "expected an error response"
      in
      let compile ?(source = gcd_w.Workloads.source) backend =
        handle pool
          (Serve.Compile
             { id = Metrics.Null; source; entry = "main"; backend;
               args = None; config = None })
      in
      Alcotest.(check string) "unknown backend" "protocol"
        (kind (compile "no-such-backend"));
      Alcotest.(check string) "parse failure" "frontend-error"
        (kind (compile ~source:"int main( {" "bachc"));
      Alcotest.(check string) "structural EDSL" "no-c-frontend"
        (kind (compile "ocapi"));
      Alcotest.(check string) "dialect rejection" "dialect-reject"
        (kind (compile "cones")))

let test_handle_compare_rows_in_registry_order () =
  with_pool ~domains:1 (fun pool ->
      let resp =
        handle pool
          (Serve.Compare
             { id = Metrics.Null;
               source = gcd_w.Workloads.source;
               entry = gcd_w.Workloads.entry;
               backends = None;
               vectors = [ [ 12; 18 ] ]; config = None })
      in
      Alcotest.(check bool) "ok" true (bool_member "ok" resp);
      Alcotest.(check bool) "no mismatch" false (bool_member "mismatch" resp);
      let row_names =
        match member "backends" resp with
        | Metrics.List rows ->
          List.map
            (fun row ->
              match Serve.Json.member "backend" row with
              | Some (Metrics.String n) -> n
              | _ -> Alcotest.fail "row without backend name")
            rows
        | _ -> Alcotest.fail "backends must be a list"
      in
      Alcotest.(check (list string))
        "rows follow registry declaration order" (Registry.names ())
        row_names)

let test_handle_stats_and_internal_safety () =
  with_pool ~domains:1 (fun pool ->
      let resp = handle pool (Serve.Stats { id = Metrics.Int 5 }) in
      Alcotest.(check bool) "ok" true (bool_member "ok" resp);
      Alcotest.check json "schema" (Metrics.String "chls.metrics/3")
        (member "schema" resp))

let test_pool_processes_concurrent_batch () =
  Driver.clear_cache ();
  with_pool ~domains:2 ~queue_capacity:2 (fun pool ->
      (* more jobs than queue capacity: submit must block (backpressure)
         rather than drop, and every job must respond exactly once *)
      let lock = Mutex.create () in
      let responses = ref [] in
      let n = 8 in
      for i = 1 to n do
        Serve.Pool.submit pool
          (Serve.Compile
             { id = Metrics.Int i;
               source = gcd_w.Workloads.source;
               entry = gcd_w.Workloads.entry;
               backend = (if i mod 2 = 0 then "bachc" else "handelc");
               args = Some [ 27; 9 ]; config = None })
          ~respond:(fun resp ->
            Mutex.lock lock;
            responses := resp :: !responses;
            Mutex.unlock lock)
      done;
      Serve.Pool.drain pool;
      Alcotest.(check int) "every job responded" n (List.length !responses);
      List.iter
        (fun resp ->
          Alcotest.(check bool) "computed gcd" true
            (member "result" resp = Metrics.Int 9))
        !responses;
      let ids =
        List.sort compare
          (List.map
             (fun r ->
               match member "id" r with
               | Metrics.Int i -> i
               | _ -> Alcotest.fail "non-int id")
             !responses)
      in
      Alcotest.(check (list int)) "all ids, exactly once"
        (List.init n (fun i -> i + 1))
        ids;
      let stats = Serve.Pool.stats pool in
      Alcotest.(check (option int)) "total jobs counted" (Some n)
        (List.assoc_opt "total_jobs" stats))

let test_pool_shutdown_is_idempotent_and_rejects_late_jobs () =
  let pool = Serve.Pool.create ~domains:1 () in
  Serve.Pool.shutdown pool;
  Serve.Pool.shutdown pool;
  let resp = ref None in
  Serve.Pool.submit pool
    (Serve.Stats { id = Metrics.Int 1 })
    ~respond:(fun r -> resp := Some r);
  match !resp with
  | Some r ->
    Alcotest.(check bool) "late job rejected" false (bool_member "ok" r)
  | None -> Alcotest.fail "late submit must still respond"

let suite =
  ( "serve",
    [ Alcotest.test_case "json values" `Quick test_json_values;
      Alcotest.test_case "json render round trip" `Quick
        test_json_render_round_trip;
      Alcotest.test_case "json errors" `Quick test_json_errors;
      Alcotest.test_case "frame round trip" `Quick test_frame_round_trip;
      Alcotest.test_case "frame header is big-endian" `Quick
        test_frame_header_is_big_endian;
      Alcotest.test_case "frame rejects oversized and truncated" `Quick
        test_frame_rejects_oversized_and_truncated;
      Alcotest.test_case "compile request defaults" `Quick
        test_parse_request_compile_defaults;
      Alcotest.test_case "compare vector shapes" `Quick
        test_parse_request_compare_vector_shapes;
      Alcotest.test_case "request errors echo id" `Quick
        test_parse_request_errors_echo_id;
      Alcotest.test_case "compile verifies against oracle" `Quick
        test_handle_compile_verifies_against_oracle;
      Alcotest.test_case "typed error kinds" `Quick test_handle_typed_errors;
      Alcotest.test_case "compare rows in registry order" `Quick
        test_handle_compare_rows_in_registry_order;
      Alcotest.test_case "stats response" `Quick
        test_handle_stats_and_internal_safety;
      Alcotest.test_case "pool batch with backpressure" `Quick
        test_pool_processes_concurrent_batch;
      Alcotest.test_case "shutdown idempotent, late jobs rejected" `Quick
        test_pool_shutdown_is_idempotent_and_rejects_late_jobs ] )
