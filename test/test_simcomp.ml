(* Compiled-simulation equivalence: the closure engines must be
   indistinguishable from the interpreters they replace.

   Fsmdcomp (per-state closures over unboxed int register files) is
   checked against Rtlsim on the full outcome — return value, cycle
   count, globals, memories, per-state visit counts — and on the VCD
   change stream a shared trace hook produces.  Netcomp (levelized
   closure arrays) is checked three ways against Neteval: event-driven,
   full-sweep, and the probe-visible change stream.  Random programs
   (the test_random generator) drive the property versions; gcd,
   isqrt-newton and crc pin the workload corpus.  Divergence anywhere
   here is an engine bug, never noise — every quantity compared is
   deterministic. *)

let schedule func blk =
  Schedule.list_schedule func Schedule.default_allocation blk.Cir.instrs

let build src ~entry =
  let program = Typecheck.parse_and_check src in
  let lowered = Lower.lower_program program ~entry in
  let simplified, _ = Simplify.simplify lowered.Lower.func in
  let fsmd = Fsmd.of_func simplified ~schedule_block:(schedule simplified) in
  (simplified, fsmd, (Rtlgen.elaborate fsmd).Rtlgen.netlist)

let args_of ints = List.map (Bitvec.of_int ~width:64) ints

let named_eq eq a b =
  List.length a = List.length b
  && List.for_all2 (fun (n1, v1) (n2, v2) -> n1 = n2 && eq v1 v2) a b

let outcome_eq (a : Rtlsim.outcome) (b : Rtlsim.outcome) =
  (match (a.Rtlsim.return_value, b.Rtlsim.return_value) with
  | Some x, Some y -> Bitvec.equal x y
  | None, None -> true
  | _ -> false)
  && a.Rtlsim.cycles = b.Rtlsim.cycles
  && named_eq Bitvec.equal a.Rtlsim.globals b.Rtlsim.globals
  && named_eq
       (fun x y ->
         Array.length x = Array.length y && Array.for_all2 Bitvec.equal x y)
       a.Rtlsim.memories b.Rtlsim.memories
  && a.Rtlsim.states_visited = b.Rtlsim.states_visited

(* the VCD stream an FSMD run produces under the shared trace hook *)
let fsmd_vcd runner fsmd =
  let v = Vcd.create () in
  let trace = Trace.rtlsim_trace v fsmd in
  ignore (runner ~trace fsmd);
  Vcd.contents v

(* drive a netlist engine with a probe attached; returns outputs,
   cycles, and the VCD stream (None on timeout) *)
let netcomp_probed nl ~inputs =
  let v = Vcd.create () in
  let eng = Netcomp.create nl in
  Netcomp.set_probe eng (Trace.neteval_probe v nl);
  match Netcomp.drive eng ~inputs ~done_name:"done" ~max_cycles:200_000 with
  | Ok (out, cycles) -> Some (out, cycles, Vcd.contents v)
  | Error `Timeout -> None

let neteval_probed ~strategy nl ~inputs =
  let v = Vcd.create () in
  let e = Neteval.create ~strategy nl in
  Neteval.set_probe e (Trace.neteval_probe v nl);
  match Neteval.drive e ~inputs ~done_name:"done" ~max_cycles:200_000 with
  | Ok (out, cycles) -> Some (out, cycles, Vcd.contents v)
  | Error `Timeout -> None

let inputs_of func args =
  List.map2
    (fun (name, r) v ->
      (name, Bitvec.resize ~signed:true ~width:(Cir.reg_width func r) v))
    func.Cir.fn_params args

(* --- pinned workload corpus --- *)

let check_kernel (w : Workloads.t) () =
  let func, fsmd, nl =
    build w.Workloads.source ~entry:w.Workloads.entry
  in
  Alcotest.(check bool)
    (w.Workloads.name ^ " FSMD is compilable")
    true (Fsmdcomp.compilable fsmd);
  Alcotest.(check bool)
    (w.Workloads.name ^ " netlist is compilable")
    true (Netcomp.compilable nl);
  List.iter
    (fun int_args ->
      let args = args_of int_args in
      let oc = Fsmdcomp.run fsmd ~args in
      let oi = Rtlsim.run fsmd ~args in
      Alcotest.(check bool)
        (Printf.sprintf "%s: compiled outcome = interpreter outcome"
           w.Workloads.name)
        true (outcome_eq oc oi);
      Alcotest.(check string)
        (Printf.sprintf "%s: compiled VCD = interpreter VCD" w.Workloads.name)
        (fsmd_vcd (fun ~trace f -> Rtlsim.run ~trace f ~args) fsmd)
        (fsmd_vcd (fun ~trace f -> Fsmdcomp.run ~trace f ~args) fsmd);
      let inputs = inputs_of func args in
      match
        ( netcomp_probed nl ~inputs,
          neteval_probed ~strategy:Neteval.Event_driven nl ~inputs,
          neteval_probed ~strategy:Neteval.Full_sweep nl ~inputs )
      with
      | Some (c_out, c_cyc, c_vcd), Some (e_out, e_cyc, e_vcd),
        Some (s_out, s_cyc, s_vcd) ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: netlist outputs agree across engines"
             w.Workloads.name)
          true
          (named_eq Bitvec.equal c_out e_out
          && named_eq Bitvec.equal c_out s_out);
        Alcotest.(check bool)
          (Printf.sprintf "%s: netlist cycle counts agree" w.Workloads.name)
          true
          (c_cyc = e_cyc && c_cyc = s_cyc);
        Alcotest.(check string)
          (Printf.sprintf "%s: compiled netlist VCD = event-driven VCD"
             w.Workloads.name)
          e_vcd c_vcd;
        Alcotest.(check string)
          (Printf.sprintf "%s: full-sweep VCD = event-driven VCD"
             w.Workloads.name)
          e_vcd s_vcd
      | _ -> Alcotest.fail (w.Workloads.name ^ ": a netlist engine timed out"))
    w.Workloads.arg_sets

(* --- engine reuse: one create, many executes --- *)

let test_fsmd_engine_reuse () =
  let w = Workloads.gcd in
  let _, fsmd, _ = build w.Workloads.source ~entry:w.Workloads.entry in
  let eng = Fsmdcomp.create fsmd in
  Alcotest.(check bool) "gcd runs on the closure engine" true
    (Fsmdcomp.compiled eng);
  List.iter
    (fun int_args ->
      let args = args_of int_args in
      let first = Fsmdcomp.execute eng ~args in
      let second = Fsmdcomp.execute eng ~args in
      Alcotest.(check bool) "re-executed run is identical" true
        (outcome_eq first second);
      Alcotest.(check bool) "reused engine matches a fresh interpreter" true
        (outcome_eq second (Rtlsim.run fsmd ~args)))
    w.Workloads.arg_sets;
  (* tracing one run must not perturb the next untraced one *)
  let args = args_of (List.hd w.Workloads.arg_sets) in
  let v = Vcd.create () in
  ignore (Fsmdcomp.execute eng ~trace:(Trace.rtlsim_trace v fsmd) ~args);
  Alcotest.(check bool) "post-trace run still matches the interpreter" true
    (outcome_eq (Fsmdcomp.execute eng ~args) (Rtlsim.run fsmd ~args))

let test_netlist_engine_reset () =
  let w = Workloads.crc in
  let func, _, nl = build w.Workloads.source ~entry:w.Workloads.entry in
  let eng = Netcomp.create nl in
  Alcotest.(check bool) "crc runs on the closure engine" true
    (Netcomp.compiled eng);
  List.iter
    (fun int_args ->
      let inputs = inputs_of func (args_of int_args) in
      let run () =
        Netcomp.reset eng;
        match
          Netcomp.drive eng ~inputs ~done_name:"done" ~max_cycles:200_000
        with
        | Ok r -> r
        | Error `Timeout -> Alcotest.fail "crc timed out"
      in
      let out1, cyc1 = run () in
      let out2, cyc2 = run () in
      Alcotest.(check int) "reset rewinds the cycle counter" cyc1 cyc2;
      Alcotest.(check bool) "reset reproduces the outputs" true
        (named_eq Bitvec.equal out1 out2))
    w.Workloads.arg_sets

(* --- random programs: property versions of the same checks --- *)

let gen_inputs =
  QCheck.pair (QCheck.int_range (-50) 50) (QCheck.int_range (-50) 50)

let prop_fsmd_compiled_equals_interpreter =
  QCheck.Test.make
    ~name:"compiled FSMD engine = Rtlsim on random programs (outcome + VCD)"
    ~count:100
    (QCheck.pair Test_random.arb_program gen_inputs)
    (fun (src, (a, b)) ->
      let _, fsmd, _ = build src ~entry:"f" in
      let args = args_of [ a; b ] in
      let oc = Fsmdcomp.run fsmd ~args in
      let oi = Rtlsim.run fsmd ~args in
      if not (outcome_eq oc oi) then
        QCheck.Test.fail_reportf
          "compiled FSMD outcome diverged from Rtlsim on:\n%s\ninputs %d,%d"
          src a b
      else
        let vc = fsmd_vcd (fun ~trace f -> Fsmdcomp.run ~trace f ~args) fsmd in
        let vi = fsmd_vcd (fun ~trace f -> Rtlsim.run ~trace f ~args) fsmd in
        if vc <> vi then
          QCheck.Test.fail_reportf
            "compiled FSMD VCD diverged from Rtlsim on:\n%s\ninputs %d,%d" src
            a b
        else true)

let prop_netlist_engines_agree =
  QCheck.Test.make
    ~name:
      "compiled, event-driven and full-sweep netlist engines agree on random \
       programs (outputs + cycles + VCD)"
    ~count:100
    (QCheck.pair Test_random.arb_program gen_inputs)
    (fun (src, (a, b)) ->
      let func, _, nl = build src ~entry:"f" in
      let inputs = inputs_of func (args_of [ a; b ]) in
      match
        ( netcomp_probed nl ~inputs,
          neteval_probed ~strategy:Neteval.Event_driven nl ~inputs,
          neteval_probed ~strategy:Neteval.Full_sweep nl ~inputs )
      with
      | None, None, None -> true
      | Some (c_out, c_cyc, c_vcd), Some (e_out, e_cyc, e_vcd),
        Some (s_out, s_cyc, s_vcd) ->
        if c_cyc <> e_cyc || c_cyc <> s_cyc then
          QCheck.Test.fail_reportf
            "cycle counts diverged (compiled %d, event %d, sweep %d) on:\n%s"
            c_cyc e_cyc s_cyc src
        else if
          not
            (named_eq Bitvec.equal c_out e_out
            && named_eq Bitvec.equal c_out s_out)
        then
          QCheck.Test.fail_reportf
            "outputs diverged between netlist engines on:\n%s\ninputs %d,%d"
            src a b
        else if c_vcd <> e_vcd || s_vcd <> e_vcd then
          QCheck.Test.fail_reportf
            "probe change streams diverged between netlist engines on:\n\
             %s\ninputs %d,%d"
            src a b
        else true
      | _ ->
        QCheck.Test.fail_reportf "timeout under only some netlist engines on:\n%s"
          src)

let suite =
  ( "simcomp",
    [ Alcotest.test_case "pinned gcd equivalence" `Quick
        (check_kernel Workloads.gcd);
      Alcotest.test_case "pinned isqrt-newton equivalence" `Quick
        (check_kernel Workloads.isqrt_newton);
      Alcotest.test_case "pinned crc equivalence" `Quick
        (check_kernel Workloads.crc);
      Alcotest.test_case "FSMD engine reuse" `Quick test_fsmd_engine_reuse;
      Alcotest.test_case "netlist engine reset" `Quick
        test_netlist_engine_reset;
      QCheck_alcotest.to_alcotest prop_fsmd_compiled_equals_interpreter;
      QCheck_alcotest.to_alcotest prop_netlist_engines_agree ] )
