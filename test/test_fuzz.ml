(* The dialect-matrix fuzzer: generation gating, reproducibility, the
   shrinker, a mini differential sweep, and the typed crash-path
   regressions that ride along (Ssa.Timeout, Backend.Dialect_rejected,
   the delay feature axis). *)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let corpus d = List.init 20 (fun index -> Fuzzgen.generate d ~seed:7 ~index)

let census progs =
  List.fold_left
    (fun acc prog ->
      List.map2
        (fun (k, a) (k', b) ->
          assert (k = k');
          (k, a + b))
        acc
        (Fuzzgen.construct_counts prog))
    (List.map (fun k -> (k, 0)) Fuzzgen.construct_keys)
    progs

let count key c = List.assoc key c

(* --- generation gating ------------------------------------------------ *)

(* Every program generated for a dialect must satisfy that dialect's own
   feature row: the fuzzer's whole premise is that its corpus exercises
   exactly what the row allows. *)
let test_own_dialect_accepts () =
  List.iter
    (fun (d : Dialect.t) ->
      List.iter
        (fun prog ->
          match Dialect.check d prog with
          | [] -> ()
          | { Dialect.rule; _ } :: _ ->
            Alcotest.failf "%s rejects its own fuzz program: %s"
              d.Dialect.name rule)
        (corpus d))
    (Fuzz.default_dialects ())

(* Gated constructs never leak into rows that lack the feature, and the
   rows that have a feature actually exercise it (nonzero census over a
   20-program corpus). *)
let test_feature_gating_matrix () =
  List.iter
    (fun (d : Dialect.t) ->
      let c = census (corpus d) in
      let gate name allowed keys =
        let n = List.fold_left (fun a k -> a + count k c) 0 keys in
        if allowed then
          Alcotest.(check bool)
            (Printf.sprintf "%s generates %s" d.Dialect.name name)
            true (n > 0)
        else
          Alcotest.(check int)
            (Printf.sprintf "%s must not generate %s" d.Dialect.name name)
            0 n
      in
      gate "par" d.Dialect.allows_par [ "par" ];
      gate "channels" d.Dialect.allows_channels [ "chan_send"; "chan_recv" ];
      gate "delay" d.Dialect.allows_delay [ "delay" ];
      gate "constrain" d.Dialect.allows_constrain [ "constrain" ];
      gate "while" d.Dialect.allows_unbounded_loops [ "while"; "do_while" ];
      gate "pointers" d.Dialect.allows_pointers [ "pointer" ];
      (* ungated staples show up everywhere *)
      gate "for" true [ "for" ];
      gate "if" true [ "if" ];
      gate "arrays" true [ "array" ])
    (Fuzz.default_dialects ())

let test_seed_reproducible () =
  List.iter
    (fun (d : Dialect.t) ->
      for index = 0 to 9 do
        let a = Fuzzgen.generate d ~seed:42 ~index
        and b = Fuzzgen.generate d ~seed:42 ~index in
        Alcotest.(check string)
          (Printf.sprintf "%s #%d deterministic" d.Dialect.name index)
          (Pretty.program_to_string a)
          (Pretty.program_to_string b)
      done;
      (* different seeds must not replay the same corpus *)
      let a = Pretty.program_to_string (Fuzzgen.generate d ~seed:1 ~index:0)
      and b =
        Pretty.program_to_string (Fuzzgen.generate d ~seed:2 ~index:0)
      in
      Alcotest.(check bool)
        (d.Dialect.name ^ " seeds diverge")
        true (a <> b))
    [ Dialect.bachc; Dialect.handelc; Dialect.c2verilog; Dialect.cones ]

(* every generated program parses back through the frontend: Pretty and
   the parser stay inverses over the fuzz surface *)
let test_generated_programs_typecheck () =
  List.iter
    (fun (d : Dialect.t) ->
      List.iter
        (fun prog ->
          ignore
            (Typecheck.parse_and_check (Pretty.program_to_string prog)))
        (corpus d))
    (Fuzz.default_dialects ())

(* --- the shrinker ----------------------------------------------------- *)

let stmt_count prog =
  let n = ref 0 in
  List.iter
    (fun f -> Ast.iter_func ~stmt:(fun _ -> incr n) ~expr:(fun _ -> ()) f)
    prog.Ast.funcs;
  !n

(* Shrinking under a syntactic keep predicate must preserve the predicate
   and never grow the program; on a program with an obviously deletable
   payload it must actually delete. *)
let test_shrinker_minimizes () =
  let src =
    {|
    int buf[8];
    int f(int a, int b) {
      int t = 0;
      for (int i = 0; i < 8; i = i + 1) { buf[i & 7] = i * a; }
      if (a > b) { t = t + 3; } else { t = t - b; }
      t = t + (a / ((b & 7) + 1));
      return t;
    }
    |}
  in
  let prog = Typecheck.parse_and_check src in
  let keep p = contains ~affix:"/" (Pretty.program_to_string p) in
  Alcotest.(check bool) "original satisfies keep" true (keep prog);
  let shrunk = Fuzzgen.shrink ~keep prog in
  Alcotest.(check bool) "shrunk still divides" true (keep shrunk);
  Alcotest.(check bool) "shrunk is strictly smaller" true
    (stmt_count shrunk < stmt_count prog);
  (* the for-loop and if are noise for this predicate: both must go *)
  let text = Pretty.program_to_string shrunk in
  Alcotest.(check bool) "loop removed" false (contains ~affix:"for" text);
  Alcotest.(check bool) "branch removed" false (contains ~affix:"if" text);
  (* local minimum: no single edit both keeps the predicate and shrinks *)
  List.iter
    (fun cand ->
      if keep cand then
        Alcotest.(check bool) "no smaller keep-preserving candidate" true
          (stmt_count cand >= stmt_count shrunk))
    (Fuzzgen.shrink_program shrunk)

(* shrinking a concurrent program under a checker-aware keep (the one
   the fuzz driver uses) lands on a checker-clean local minimum that
   still carries its channel traffic — candidates that unbalance a
   rendezvous exist, but keep filters them out *)
let test_shrinker_preserves_channel_balance () =
  let has_send p =
    List.exists
      (fun f ->
        Ast.exists_stmt
          (fun st ->
            match st.Ast.s with Ast.Chan_send _ -> true | _ -> false)
          f)
      p.Ast.funcs
  in
  let progs = List.filter has_send (corpus Dialect.handelc) in
  Alcotest.(check bool) "corpus has channel programs" true (progs <> []);
  List.iter
    (fun prog ->
      let keep p =
        has_send p
        &&
        match Typecheck.parse_and_check (Pretty.program_to_string p) with
        | exception _ -> false
        | checked ->
          Conc_check.errors
            (Conc_check.check_program ~dialect:Dialect.handelc checked)
          = []
      in
      Alcotest.(check bool) "original satisfies keep" true (keep prog);
      let shrunk = Fuzzgen.shrink ~keep prog in
      Alcotest.(check bool) "shrunk keeps its rendezvous" true
        (has_send shrunk);
      Alcotest.(check bool) "shrunk stays checker-clean" true (keep shrunk))
    progs

(* --- the differential sweep ------------------------------------------- *)

(* A mini end-to-end run of the fuzz driver: a clean matrix, nonzero
   agreement, and the expected rejection pattern (everything Bach C
   generates is channel-free for cones to reject, par-bearing programs
   are rejected by the sequential rows). *)
let test_mini_sweep_clean () =
  List.iter
    (fun (d : Dialect.t) ->
      let r = Fuzz.run_dialect d ~seed:3 ~n:5 in
      Alcotest.(check int)
        (d.Dialect.name ^ " sweep has no divergences")
        0
        (List.length r.Fuzz.rep_divergences);
      Alcotest.(check bool)
        (d.Dialect.name ^ " sweep agreed somewhere")
        true (r.Fuzz.rep_agreed > 0))
    [ Dialect.bachc; Dialect.handelc; Dialect.c2verilog ]

let test_sweep_reproducible () =
  let run () =
    let r = Fuzz.run_dialect Dialect.handelc ~seed:11 ~n:4 in
    (r.Fuzz.rep_agreed, r.Fuzz.rep_rejected, r.Fuzz.rep_constructs)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "same seed, same sweep" true (a = b)

(* --- crash-path regressions ------------------------------------------- *)

(* Ssa.run used to spin forever (or die with a bare Failure) on
   non-terminating input; now it raises a typed Timeout naming the
   function and the budget. *)
let test_ssa_timeout_typed () =
  let src =
    {|
    int f(int a) {
      int i = 0;
      while (a < 1000000000) { i = i + 1; a = a + 1; }
      return i;
    }
    |}
  in
  let program = Typecheck.parse_and_check src in
  let lowered, _ = Passes.lower_simplify program ~entry:"f" in
  let ssa = Ssa.of_func lowered.Lower.func in
  match Ssa.run ~max_steps:100 ssa ~args:[ Bitvec.of_int ~width:64 0 ] with
  | _ -> Alcotest.fail "expected Ssa.Timeout"
  | exception Ssa.Timeout { func_name; max_steps } ->
    Alcotest.(check string) "timeout names the function" "f" func_name;
    Alcotest.(check int) "timeout carries the budget" 100 max_steps

(* Backend dialect rejections are one typed exception naming backend,
   rule and source location — and the driver maps it to Dialect_reject
   (never Backend_error/internal). *)
let test_typed_rejection_has_location () =
  let src = {|
int f(int a, int b) {
  while (a < b) { a = a + 1; }
  return a;
}
|} in
  let program = Typecheck.parse_and_check src in
  (match Backend.reject_if_illegal ~backend:"cones" Dialect.cones program with
  | () -> Alcotest.fail "cones must reject a while loop"
  | exception Backend.Dialect_rejected { backend; violations } ->
    Alcotest.(check string) "backend name" "cones" backend;
    (match violations with
    | [] -> Alcotest.fail "no violations carried"
    | { Dialect.vloc; _ } :: _ ->
      Alcotest.(check bool) "violation is located" true
        (vloc <> Ast.no_loc)));
  let session = Driver.create ~entry:"f" src in
  match Driver.compile session (Registry.get "cones") with
  | Error (Driver.Dialect_reject { backend; violations }) ->
    Alcotest.(check string) "driver reports the backend" "cones" backend;
    Alcotest.(check bool) "driver keeps the violations" true
      (violations <> []);
    let rendered =
      Driver.render_error
        (Driver.Dialect_reject { backend; violations })
    in
    Alcotest.(check bool) "rendering carries the location" true
      (contains ~affix:"at " rendered)
  | Ok _ -> Alcotest.fail "cones accepted a while loop"
  | Error e -> Alcotest.failf "wrong error class: %s" (Driver.render_error e)

(* delay is a real feature axis now: legal exactly where Table 1's
   timing column says cycles are designer-visible *)
let test_delay_feature_axis () =
  let src = {|
int f(int a, int b) {
  a = a + b;
  delay;
  return a;
}
|} in
  let program = Typecheck.parse_and_check src in
  List.iter
    (fun (d : Dialect.t) ->
      let rejected = Dialect.check d program <> [] in
      Alcotest.(check bool)
        (d.Dialect.name ^ " delay acceptance matches the feature row")
        d.Dialect.allows_delay (not rejected))
    Dialect.table1

let suite =
  ( "fuzz",
    [ Alcotest.test_case "own dialect accepts corpus" `Quick
        test_own_dialect_accepts;
      Alcotest.test_case "feature-gating matrix" `Quick
        test_feature_gating_matrix;
      Alcotest.test_case "seed reproducibility" `Quick test_seed_reproducible;
      Alcotest.test_case "corpus round-trips the frontend" `Quick
        test_generated_programs_typecheck;
      Alcotest.test_case "shrinker minimizes" `Quick test_shrinker_minimizes;
      Alcotest.test_case "shrinker keeps channels balanced" `Quick
        test_shrinker_preserves_channel_balance;
      Alcotest.test_case "mini differential sweep" `Quick
        test_mini_sweep_clean;
      Alcotest.test_case "sweep reproducibility" `Quick
        test_sweep_reproducible;
      Alcotest.test_case "Ssa.run timeout is typed" `Quick
        test_ssa_timeout_typed;
      Alcotest.test_case "typed dialect rejection with location" `Quick
        test_typed_rejection_has_location;
      Alcotest.test_case "delay feature axis" `Quick test_delay_feature_axis
    ] )
