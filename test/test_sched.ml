(* Scheduling layer tests: list scheduling legality, ASAP/ALAP/slack,
   timing constraints, modulo scheduling (pipelining) and the ILP-limit
   machinery. *)

let lower src ~entry =
  let program = Typecheck.parse_and_check src in
  let lowered = Lower.lower_program program ~entry in
  fst (Simplify.simplify lowered.Lower.func)

let straightline_instrs func =
  Array.to_list func.Cir.fn_blocks |> List.concat_map (fun b -> b.Cir.instrs)

let fir_block =
  lower
    {|
    int mem[4];
    int f(int a, int b, int c, int d) {
      int p0 = a * b;
      int p1 = c * d;
      int p2 = a * d;
      int s0 = p0 + p1;
      int s1 = s0 + p2;
      mem[0] = s1;
      int back = mem[1];
      return s1 ^ back;
    }
    |}
    ~entry:"f"

(* A schedule is legal iff every dependence edge is honored given the
   backend contract (same-step order-preserving execution). *)
let check_legal ?(mem_forwarding = false) instrs (sched : Schedule.schedule) =
  let g = Dep.of_instrs instrs in
  let arr = Array.of_list instrs in
  List.iter
    (fun (e : Dep.edge) ->
      let s = sched.Schedule.steps.(e.Dep.src)
      and d = sched.Schedule.steps.(e.Dep.dst) in
      match e.Dep.kind with
      | Dep.Raw | Dep.War | Dep.Waw ->
        Alcotest.(check bool) "register dep order" true (s <= d)
      | Dep.Mem ->
        let store_to_load =
          (match Cir.memory_access arr.(e.Dep.src) with
          | Some (_, `Write) -> true
          | _ -> false)
          && match Cir.memory_access arr.(e.Dep.dst) with
             | Some (_, `Read) -> true
             | _ -> false
        in
        if store_to_load && not mem_forwarding then
          Alcotest.(check bool) "store->load crosses a step" true (s < d)
        else Alcotest.(check bool) "mem dep order" true (s <= d))
    g.Dep.edges

let test_list_schedule_legal () =
  let instrs = straightline_instrs fir_block in
  List.iter
    (fun resources ->
      check_legal instrs (Schedule.list_schedule fir_block resources instrs))
    [ Schedule.unconstrained; Schedule.default_allocation;
      { Schedule.default_allocation with Schedule.multipliers = Some 1;
        chain_budget = 5. } ]

let test_resource_limits_respected () =
  let instrs = straightline_instrs fir_block in
  let resources =
    { Schedule.default_allocation with Schedule.multipliers = Some 1 }
  in
  let sched = Schedule.list_schedule fir_block resources instrs in
  (* at most one multiply per step *)
  let arr = Array.of_list instrs in
  let mults_in_step = Hashtbl.create 8 in
  Array.iteri
    (fun i step ->
      if Schedule.class_of_instr arr.(i) = Schedule.Multiplier then
        Hashtbl.replace mults_in_step step
          (1 + Option.value (Hashtbl.find_opt mults_in_step step) ~default:0))
    sched.Schedule.steps;
  Hashtbl.iter
    (fun _ count ->
      Alcotest.(check bool) "one multiplier per step" true (count <= 1))
    mults_in_step;
  (* the 3 multiplies need at least 3 steps *)
  Alcotest.(check bool) "constrained schedule is longer" true
    (sched.Schedule.num_steps
    >= (Schedule.list_schedule fir_block Schedule.unconstrained instrs)
         .Schedule.num_steps)

let test_asap_alap_slack () =
  let instrs = straightline_instrs fir_block in
  let slack = Schedule.slack fir_block instrs in
  Array.iter
    (fun s -> Alcotest.(check bool) "slack >= 0" true (s >= 0))
    slack;
  (* at least one operation on the critical path *)
  Alcotest.(check bool) "some zero-slack op" true
    (Array.exists (fun s -> s = 0) slack)

let test_chaining_budget () =
  let instrs = straightline_instrs fir_block in
  let tight =
    Schedule.list_schedule fir_block
      { Schedule.unconstrained with Schedule.chain_budget = 1. }
      instrs
  in
  let loose =
    Schedule.list_schedule fir_block
      { Schedule.unconstrained with Schedule.chain_budget = 1000. }
      instrs
  in
  Alcotest.(check bool) "tight budget needs more steps" true
    (tight.Schedule.num_steps > loose.Schedule.num_steps);
  Array.iter
    (fun d ->
      Alcotest.(check bool) "loose chaining keeps delay reasonable" true
        (d <= 1000.))
    loose.Schedule.step_delay

(* --- timing constraints --- *)

let test_constraints () =
  let program =
    Typecheck.parse_and_check
      {|
      int f(int a, int b) {
        int r = 0;
        constrain(1, 2) {
          int p = a * b;
          int q = a + b;
          r = p ^ q;
        }
        return r;
      }
      |}
  in
  let lowered = Lower.lower_program program ~entry:"f" in
  let constraints = Constrain.of_lowering lowered.Lower.constraints in
  Alcotest.(check int) "one constraint" 1 (List.length constraints);
  let c = List.hd constraints in
  let blk = Cir.block lowered.Lower.func c.Constrain.block in
  let sched =
    Schedule.list_schedule lowered.Lower.func Schedule.unconstrained
      blk.Cir.instrs
  in
  let statuses = Constrain.check constraints ~block:c.Constrain.block sched in
  Alcotest.(check int) "one status" 1 (List.length statuses);
  let s = List.hd statuses in
  Alcotest.(check bool) "unconstrained chaining meets 2 cycles" true
    (s.Constrain.actual_cycles <= 2)

let test_hardwarec_exploration () =
  (* a tight constraint forces the explorer to a bigger allocation *)
  let src =
    {|
    int f(int a, int b, int c, int d) {
      int r = 0;
      constrain(1, 2) {
        int p0 = a * b;
        int p1 = c * d;
        int p2 = (a + c) * (b + d);
        int p3 = (a - c) * (b - d);
        r = (p0 + p1) ^ (p2 + p3);
      }
      return r;
    }
    |}
  in
  let program = Typecheck.parse_and_check src in
  let design, report = Hardwarec.compile program ~entry:"f" in
  Alcotest.(check bool) "constraints satisfied after exploration" true
    (List.for_all
       (fun s ->
         s.Constrain.actual_cycles <= s.Constrain.constraint_.Constrain.max_cycles)
       report.Hardwarec.statuses);
  (* and the design still computes the right value *)
  let expected = Interp.run_int src ~entry:"f" ~args:[ 3; 5; 7; 9 ] in
  Alcotest.(check (option int)) "exploration preserves semantics"
    (Some expected)
    (Design.run_int design [ 3; 5; 7; 9 ])

(* --- pipelining --- *)

let test_pipeline_regular_loop () =
  let func =
    lower
      {|
      int va[64];
      int vb[64];
      int f(int n) {
        int acc = 0;
        for (int i = 0; i < 64; i = i + 1) {
          acc = acc + va[i] * vb[i];
        }
        return acc + n;
      }
      |}
      ~entry:"f"
  in
  let r = Pipeline.modulo_schedule func in
  Alcotest.(check bool) "II is small" true (r.Pipeline.ii <= 3);
  Alcotest.(check bool)
    (Printf.sprintf "pipelining speeds up the regular loop (%.2fx)"
       r.Pipeline.speedup)
    true (r.Pipeline.speedup > 1.5);
  Alcotest.(check bool) "II >= RecMII" true (r.Pipeline.ii >= r.Pipeline.rec_mii);
  Alcotest.(check bool) "II >= ResMII" true (r.Pipeline.ii >= r.Pipeline.res_mii)

let test_pipeline_recurrence_bound () =
  (* gcd: the division sits on the loop-carried dependence cycle, so RecMII
     is dominated by the divider latency and pipelining buys ~nothing *)
  let func =
    lower
      "int f(int a, int b) { while (b != 0) { int t = b; b = a % b; a = t; } return a; }"
      ~entry:"f"
  in
  let r = Pipeline.modulo_schedule func in
  Alcotest.(check bool)
    (Printf.sprintf "division recurrence bounds II (rec_mii=%d)"
       r.Pipeline.rec_mii)
    true
    (r.Pipeline.rec_mii >= 10);
  Alcotest.(check bool)
    (Printf.sprintf "speedup stays small (%.2f)" r.Pipeline.speedup)
    true (r.Pipeline.speedup < 1.6)

let test_pipeline_rejects_irregular () =
  (* data-dependent branch inside the loop body -> irregular *)
  let func =
    lower
      {|
      int data[16];
      int f(int n) {
        int acc = 0;
        for (int i = 0; i < 16; i = i + 1) {
          if (data[i] > n) { acc = acc + 1; } else { acc = acc - data[i]; }
        }
        return acc;
      }
      |}
      ~entry:"f"
  in
  (* note: the ?: would be if-converted to a mux by lowering, but an
     explicit if/else with different side effects keeps real control flow *)
  match Pipeline.modulo_schedule func with
  | exception Pipeline.Irregular _ -> ()
  | _ -> Alcotest.fail "expected the irregular loop to be rejected"

let test_pipeline_ii_divergence_falls_back () =
  (* Regression: a loop whose ResMII exceeds the II search limit (4096)
     used to abort the whole compile with [failwith "modulo scheduling:
     II diverged"].  4100 loads through one single-read-port region give
     ResMII = 4100, so the search starts past the limit; the loop must
     now come back unpipelined with [fallback = true] and bump the
     process-wide counter the driver layers export as
     sched.modulo.fallbacks.  Independent accumulators keep RecMII tiny
     so only the resource bound diverges. *)
  let n_stmts = 410 and loads_per_stmt = 10 in
  let stmt s =
    let loads =
      List.init loads_per_stmt (fun k ->
          Printf.sprintf "buf[(i + %d) & 7]" ((s * loads_per_stmt) + k))
    in
    Printf.sprintf "s%d = s%d + %s;" s s (String.concat " + " loads)
  in
  let src =
    Printf.sprintf
      {|
      int buf[8];
      int f(int n) {
        %s
        for (int i = 0; i < 4; i = i + 1) {
          %s
        }
        return s0;
      }
      |}
      (String.concat "\n        "
         (List.init n_stmts (fun s -> Printf.sprintf "int s%d = n;" s)))
      (String.concat "\n          " (List.init n_stmts stmt))
  in
  let func = lower src ~entry:"f" in
  let before = Pipeline.fallback_count () in
  let r = Pipeline.modulo_schedule func in
  Alcotest.(check bool)
    (Printf.sprintf "ResMII diverges past the search limit (res_mii=%d)"
       r.Pipeline.res_mii)
    true
    (r.Pipeline.res_mii > Pipeline.ii_search_limit);
  Alcotest.(check bool) "the loop falls back instead of dying" true
    r.Pipeline.fallback;
  Alcotest.(check int) "fallback counter bumped" (before + 1)
    (Pipeline.fallback_count ());
  Alcotest.(check int) "II degenerates to the sequential schedule"
    r.Pipeline.sequential_cycles r.Pipeline.ii;
  Alcotest.(check (float 1e-9)) "speedup is exactly 1.0" 1.0
    r.Pipeline.speedup

(* --- ILP limits --- *)

let matmul_trace =
  lazy
    (let func = lower (Workloads.matmul).Workloads.source ~entry:"matmul" in
     Ilp_limits.trace_of func ~args:[ 3 ])

let test_ilp_monotone_in_window () =
  let trace = Lazy.force matmul_trace in
  let ipc w renaming =
    (Ilp_limits.measure trace
       { Ilp_limits.window = w; renaming; speculation = `Perfect })
      .Ilp_limits.ipc
  in
  let widths = [ 1; 4; 16; 64; 256 ] in
  let series = List.map (fun w -> ipc w true) widths in
  List.iter2
    (fun a b -> Alcotest.(check bool) "IPC grows with window" true (a <= b +. 1e-9))
    (List.filteri (fun i _ -> i < List.length series - 1) series)
    (List.tl series);
  (* window of 1 is sequential *)
  Alcotest.(check bool) "window 1 is ~1 IPC" true (ipc 1 true <= 1.0 +. 1e-9)

let test_ilp_renaming_helps () =
  let trace = Lazy.force matmul_trace in
  let with_renaming =
    Ilp_limits.measure trace
      { Ilp_limits.window = 64; renaming = true; speculation = `Perfect }
  and without =
    Ilp_limits.measure trace
      { Ilp_limits.window = 64; renaming = false; speculation = `Perfect }
  in
  Alcotest.(check bool) "renaming never hurts" true
    (with_renaming.Ilp_limits.ipc >= without.Ilp_limits.ipc -. 1e-9)

let test_ilp_speculation_matters () =
  let trace = Lazy.force matmul_trace in
  let _, no_spec, dataflow = Ilp_limits.sweep ~windows:[ 16 ] trace in
  Alcotest.(check bool) "no-speculation is slower than dataflow" true
    (no_spec.Ilp_limits.ipc <= dataflow.Ilp_limits.ipc +. 1e-9);
  Alcotest.(check bool) "dataflow limit is finite and > 1" true
    (dataflow.Ilp_limits.ipc > 1.)

(* --- CFG simplification --- *)

let test_simplify_equivalence () =
  List.iter
    (fun (w : Workloads.t) ->
      let program = Workloads.parse w in
      let lowered = Lower.lower_program program ~entry:w.Workloads.entry in
      let simplified, _ = Simplify.simplify lowered.Lower.func in
      Alcotest.(check bool) "fewer blocks" true
        (Cir.num_blocks simplified <= Cir.num_blocks lowered.Lower.func);
      List.iter
        (fun args ->
          let expected = Workloads.reference w args in
          let outcome =
            Cir_interp.run simplified ~args:(Design.int_args args)
          in
          Alcotest.(check int)
            (Printf.sprintf "simplify preserves %s" w.Workloads.name)
            expected
            (Bitvec.to_int (Option.get outcome.Cir_interp.return_value)))
        w.Workloads.arg_sets)
    Workloads.sequential

let suite =
  ( "sched",
    [ Alcotest.test_case "list schedule legality" `Quick
        test_list_schedule_legal;
      Alcotest.test_case "resource limits" `Quick
        test_resource_limits_respected;
      Alcotest.test_case "asap/alap slack" `Quick test_asap_alap_slack;
      Alcotest.test_case "chaining budget" `Quick test_chaining_budget;
      Alcotest.test_case "timing constraints" `Quick test_constraints;
      Alcotest.test_case "hardwarec exploration" `Quick
        test_hardwarec_exploration;
      Alcotest.test_case "pipeline regular loop" `Quick
        test_pipeline_regular_loop;
      Alcotest.test_case "pipeline recurrence bound" `Quick
        test_pipeline_recurrence_bound;
      Alcotest.test_case "pipeline rejects irregular" `Quick
        test_pipeline_rejects_irregular;
      Alcotest.test_case "pipeline II divergence falls back" `Quick
        test_pipeline_ii_divergence_falls_back;
      Alcotest.test_case "ILP monotone in window" `Quick
        test_ilp_monotone_in_window;
      Alcotest.test_case "ILP renaming helps" `Quick test_ilp_renaming_helps;
      Alcotest.test_case "ILP speculation matters" `Quick
        test_ilp_speculation_matters;
      Alcotest.test_case "simplify equivalence" `Quick
        test_simplify_equivalence ] )
