(* The static concurrency checker (lib/analysis) and the crash-path
   regressions that ride along with it: par-block races, channel lint,
   per-dialect severities, and the located diagnostics that replaced
   assert-false crashes in the front end and lowering. *)

let check ?(dialect = Dialect.handelc) src =
  Conc_check.check_program ~dialect (Typecheck.parse_and_check src)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let count_kind p diags = List.length (List.filter (fun d -> p d.Conc_check.d_kind) diags)

let is_ww = function Conc_check.Race_ww _ -> true | _ -> false
let is_rw = function Conc_check.Race_rw _ -> true | _ -> false

(* --- race detection --- *)

let racy_src =
  {|
  int g;
  int f(int n) {
    int t = 0;
    par {
      { g = n + 1; t = 1; }
      { g = n * 2; }
      { int mine = g; mine = mine + 1; }
    }
    return g + t;
  }
  |}

let test_clean_pipeline () =
  let src =
    {|
    chan int c1;
    int f(int n) {
      int hits = 0;
      par {
        { int i = 0; while (i < n) { send(c1, i); i = i + 1; } send(c1, -1); }
        { int v = 0; v = recv(c1); while (v != -1) { hits = hits + v; v = recv(c1); } }
      }
      return hits;
    }
    |}
  in
  Alcotest.(check int) "no diagnostics" 0 (List.length (check src))

let test_ww_race_handelc () =
  let diags = check racy_src in
  Alcotest.(check int) "one write/write race" 1 (count_kind is_ww diags);
  Alcotest.(check int) "two read/write races" 2 (count_kind is_rw diags);
  (* Handel-C: the paper says two writers are illegal; a reader beside a
     writer is merely dangerous *)
  Alcotest.(check int) "ww is the only hard error" 1
    (List.length (Conc_check.errors diags));
  let e = List.hd (Conc_check.errors diags) in
  Alcotest.(check bool) "error is the ww race" true (is_ww e.Conc_check.d_kind);
  Alcotest.(check bool) "carries a real location" true
    (e.Conc_check.d_loc.Ast.line > 0);
  Alcotest.(check bool) "carries the sibling location" true
    (e.Conc_check.d_other <> None)

let test_severity_per_dialect () =
  (* same program, three verdicts *)
  let errors_under d = List.length (Conc_check.errors (check ~dialect:d racy_src)) in
  Alcotest.(check int) "handelc: ww only" 1 (errors_under Dialect.handelc);
  Alcotest.(check int) "specc: silent hazard, warnings only" 0
    (errors_under Dialect.specc);
  Alcotest.(check int) "bachc: untimed semantics, rw also errors" 3
    (errors_under Dialect.bachc)

let test_arm_private_state_ok () =
  let src =
    {|
    int f(int n) {
      par {
        { int x = n; x = x + 1; }
        { int x = n; x = x * 2; }
      }
      return n;
    }
    |}
  in
  Alcotest.(check int) "arm-locals never race" 0 (List.length (check src))

let test_array_race () =
  let src =
    {|
    int buf[8];
    int f(int n) {
      par {
        { buf[0] = n; }
        { buf[7] = n; }
      }
      return buf[0];
    }
    |}
  in
  (* whole-array granularity: disjoint indices still conflict *)
  let diags = check src in
  Alcotest.(check int) "array ww race" 1 (count_kind is_ww diags);
  match (List.hd diags).Conc_check.d_kind with
  | Conc_check.Race_ww (Conc_check.Array "buf") -> ()
  | _ -> Alcotest.fail "expected a race on array buf"

let test_pointer_param_aliasing () =
  let shared =
    {|
    int a[4];
    int store(int *p, int v) { p[0] = v; return 0; }
    int f(int n) {
      par {
        { int r1 = store(a, n); r1 = r1 + 1; }
        { int r2 = store(a, n + 1); r2 = r2 + 1; }
      }
      return a[0];
    }
    |}
  in
  (* the array argument is charged read+write at each call site, so two
     arms passing the same array to a pointer parameter conflict *)
  Alcotest.(check int) "same array through pointer params races" 1
    (count_kind is_ww (check shared));
  let disjoint =
    {|
    int a[4];
    int b[4];
    int store(int *p, int v) { p[0] = v; return 0; }
    int f(int n) {
      par {
        { int r1 = store(a, n); r1 = r1 + 1; }
        { int r2 = store(b, n); r2 = r2 + 1; }
      }
      return a[0] + b[0];
    }
    |}
  in
  (* ...and distinct arrays do not: the summary is per call site, not a
     single blanket "touches pointers" verdict *)
  Alcotest.(check int) "distinct arrays stay clean" 0
    (List.length (check disjoint))

let test_call_effects () =
  let src =
    {|
    int g;
    int bump(int by) { g = g + by; return g; }
    int f(int n) {
      par {
        { int r1 = bump(n); r1 = r1 + 1; }
        { int r2 = bump(1); r2 = r2 + 1; }
      }
      return g;
    }
    |}
  in
  let diags = check src in
  Alcotest.(check int) "race through function summaries" 1
    (count_kind is_ww diags);
  (* the conflict is charged to the call sites inside the par arms *)
  let d = List.hd diags in
  Alcotest.(check bool) "charged to a source line" true
    (d.Conc_check.d_loc.Ast.line > 0)

let test_nested_par () =
  let src =
    {|
    int g;
    int f(int n) {
      par {
        {
          par {
            { g = n; }
            { g = n + 1; }
          }
        }
        { int x = n; x = x + 1; }
      }
      return g;
    }
    |}
  in
  Alcotest.(check int) "race inside nested par is found" 1
    (count_kind is_ww (check src))

(* --- channel lint --- *)

let test_chan_unmatched_send () =
  let src =
    {|
    chan int c;
    int f(int n) {
      par {
        { send(c, n); }
        { int x = n; x = x + 1; }
      }
      return n;
    }
    |}
  in
  let diags = check src in
  Alcotest.(check int) "one unmatched send" 1
    (count_kind (function Conc_check.Chan_unmatched_send _ -> true | _ -> false) diags);
  (* the channel is used nowhere else in the program, so the rendezvous
     provably never completes: a hard error under strict rules *)
  Alcotest.(check int) "certain deadlock is an error" 1
    (List.length (Conc_check.errors diags))

let test_chan_fan () =
  let src =
    {|
    chan int c;
    int f(int n) {
      par {
        { send(c, n); }
        { int a = recv(c); a = a + 1; }
        { int b = recv(c); b = b + 1; }
      }
      return n;
    }
    |}
  in
  let diags = check src in
  Alcotest.(check bool) "fan is reported" true
    (count_kind (function Conc_check.Chan_fan _ -> true | _ -> false) diags > 0)

let test_chan_self_deadlock () =
  let src =
    {|
    chan int c;
    int f(int n) {
      par {
        { send(c, n); int x = recv(c); x = x + 1; }
        { int y = n; y = y + 1; }
      }
      return n;
    }
    |}
  in
  let diags = check src in
  Alcotest.(check bool) "self-communication is reported" true
    (count_kind (function Conc_check.Chan_self _ -> true | _ -> false) diags > 0)

let test_metric_counters () =
  let counters = Conc_check.metric_counters (check racy_src) in
  Alcotest.(check int) "all six counters present" 6 (List.length counters);
  Alcotest.(check int) "ww count" 1 (List.assoc "races.write_write" counters);
  Alcotest.(check int) "rw count" 2 (List.assoc "races.read_write" counters);
  Alcotest.(check int) "no channel hazards" 0
    (List.assoc "chan.unmatched_send" counters)

let test_pipeline_pass_rejects () =
  (* the checker runs as a declared pass in the Handel-C pipeline: a racy
     program must not reach the statement machine *)
  let program = Typecheck.parse_and_check racy_src in
  match Handelc.compile program ~entry:"f" with
  | _ -> Alcotest.fail "expected Check_failed from the pipeline pass"
  | exception Conc_check.Check_failed diags ->
    Alcotest.(check bool) "the pass reports the ww race" true
      (List.exists (fun d -> is_ww d.Conc_check.d_kind) diags)

(* --- crash-path regressions --- *)

let test_negative_global_array_diagnosed () =
  (* used to sail through typecheck and crash in storage allocation *)
  match Typecheck.parse_and_check "int g[-3]; int f(int n) { return n; }" with
  | _ -> Alcotest.fail "expected a type error for int g[-3]"
  | exception Typecheck.Error (msg, _) ->
    Alcotest.(check bool) "message names the size" true
      (contains ~affix:"-3" msg)

let test_lower_error_carries_location () =
  let program =
    Typecheck.parse_and_check
      "int g;\nint f(int n) {\n  par { { g = n; } { int x = n; x = x + 1; } }\n  return g;\n}"
  in
  match Lower.lower_program program ~entry:"f" with
  | _ -> Alcotest.fail "expected lowering to reject par"
  | exception Lower.Error (msg, loc) ->
    Alcotest.(check bool) "message mentions par" true
      (contains ~affix:"par" msg);
    Alcotest.(check int) "location is the par statement line" 3
      loc.Ast.line

let test_c2verilog_channel_rejection () =
  (* sequential recv slips past the dialect gate (which only rejects par
     here), so the stack-machine compiler itself must refuse it with a
     descriptive error, not a crash *)
  let program =
    Typecheck.parse_and_check
      {|
      chan int c;
      int f(int n) {
        int v = recv(c);
        return v + n;
      }
      |}
  in
  match C2verilog.compile_program program ~entry:"f" with
  | _ -> Alcotest.fail "expected C2Verilog to reject channels"
  | exception C2verilog.Compile_error msg ->
    Alcotest.(check bool) "descriptive, not a crash" true
      (contains ~affix:"channel" msg)

let test_logical_ops_on_guarded_backends () =
  (* the backends whose assert-false crashes became descriptive errors
     must still take every logical-operator shape down the guarded
     dispatch: datapath, condition, and mixed positions *)
  let src =
    "int f(int a, int b) { int r = (a && b) || !a; if (!(a || b)) { r = r + 2; } return r; }"
  in
  let program = Typecheck.parse_and_check src in
  List.iter
    (fun (a, b) ->
      let expected = Interp.run_int src ~entry:"f" ~args:[ a; b ] in
      let cones = Design.run_int (Cones.compile program ~entry:"f") [ a; b ] in
      let c2v =
        Design.run_int (C2v_machine.compile program ~entry:"f") [ a; b ]
      in
      Alcotest.(check (option int)) "cones" (Some expected) cones;
      Alcotest.(check (option int)) "c2verilog" (Some expected) c2v)
    [ (0, 0); (0, 1); (1, 0); (3, 5) ]

let suite =
  ( "conc-check",
    [ Alcotest.test_case "clean pipeline program" `Quick test_clean_pipeline;
      Alcotest.test_case "write/write race (handelc)" `Quick
        test_ww_race_handelc;
      Alcotest.test_case "severity per dialect" `Quick
        test_severity_per_dialect;
      Alcotest.test_case "arm-private state ok" `Quick
        test_arm_private_state_ok;
      Alcotest.test_case "whole-array race" `Quick test_array_race;
      Alcotest.test_case "pointer-parameter aliasing" `Quick
        test_pointer_param_aliasing;
      Alcotest.test_case "races through calls" `Quick test_call_effects;
      Alcotest.test_case "nested par" `Quick test_nested_par;
      Alcotest.test_case "unmatched send" `Quick test_chan_unmatched_send;
      Alcotest.test_case "channel fan-in/out" `Quick test_chan_fan;
      Alcotest.test_case "self-communication deadlock" `Quick
        test_chan_self_deadlock;
      Alcotest.test_case "metric counters" `Quick test_metric_counters;
      Alcotest.test_case "pipeline pass rejects racy program" `Quick
        test_pipeline_pass_rejects;
      Alcotest.test_case "negative global array size" `Quick
        test_negative_global_array_diagnosed;
      Alcotest.test_case "lower errors carry locations" `Quick
        test_lower_error_carries_location;
      Alcotest.test_case "c2verilog rejects channels descriptively" `Quick
        test_c2verilog_channel_rejection;
      Alcotest.test_case "logical ops on guarded backends" `Quick
        test_logical_ops_on_guarded_backends ] )
