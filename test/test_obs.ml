(* The observability subsystem: Obs.Metrics rendering invariants, Obs.Vcd
   format invariants, waveform tracing from all three simulators on gcd,
   the profile accounting identity (state visits sum to cycles), timeout
   payloads, and the qcheck property that tracing is observation-only. *)

let gcd_src =
  {|
  int gcd(int a, int b) {
    while (a != b) {
      if (a > b) a = a - b;
      else b = b - a;
    }
    return a;
  }
  |}

let gcd_func () =
  let program = Typecheck.parse_and_check gcd_src in
  let lowered, _ = Passes.lower_simplify program ~entry:"gcd" in
  lowered.Lower.func

(* The dataflow circuit is built from the raw lowering (the cash pipeline
   runs no CFG simplification — every tiny block is just a cheap merge). *)
let gcd_ssa () =
  let program = Typecheck.parse_and_check gcd_src in
  let lowered = Lower.lower_program program ~entry:"gcd" in
  Ssa.of_func lowered.Lower.func

let gcd_fsmd () =
  let func = gcd_func () in
  Fsmd.of_func func ~schedule_block:(fun blk ->
      Schedule.list_schedule func Schedule.default_allocation blk.Cir.instrs)

let args_of (a, b) =
  [ Bitvec.of_int ~width:64 a; Bitvec.of_int ~width:64 b ]

(* Timestamps in a VCD body must be non-decreasing. *)
let check_vcd_structure name contents =
  Alcotest.(check bool) (name ^ ": has header") true
    (String.length contents > 0
    && String.sub contents 0 5 = "$date");
  let has needle =
    let nl = String.length needle and l = String.length contents in
    let rec go i =
      i + nl <= l && (String.sub contents i nl = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) (name ^ ": has $enddefinitions") true
    (has "$enddefinitions $end");
  Alcotest.(check bool) (name ^ ": has $dumpvars") true (has "$dumpvars");
  let last = ref (-1) in
  List.iter
    (fun line ->
      if String.length line > 1 && line.[0] = '#' then begin
        let t = int_of_string (String.sub line 1 (String.length line - 1)) in
        if t < !last then
          Alcotest.failf "%s: timestamp #%d after #%d" name t !last;
        last := t
      end)
    (String.split_on_char '\n' contents);
  Alcotest.(check bool) (name ^ ": has at least one timestamp") true
    (!last >= 0)

(* --- Obs.Metrics --- *)

let test_metrics_render () =
  let m = Metrics.create () in
  Metrics.set_string m "schema" "chls.metrics/3";
  Metrics.set_int m "sim.cycles" 35;
  Metrics.set_int m "sim.events" 3;
  Metrics.set_fixed m "sim.ratio" ~decimals:2 1.5;
  let rendered = Metrics.render (Metrics.to_json m) in
  let expected =
    "{\n  \"schema\": \"chls.metrics/3\",\n  \"sim\": {\n    \"cycles\": 35,\n\
    \    \"events\": 3,\n    \"ratio\": 1.50\n  }\n}"
  in
  Alcotest.(check string) "dotted names nest, Fixed is deterministic"
    expected rendered;
  (* byte-stable: rendering twice yields the same bytes *)
  Alcotest.(check string) "render is stable" rendered
    (Metrics.render (Metrics.to_json m))

let test_metrics_counters () =
  let m = Metrics.create () in
  Metrics.incr m "n";
  Metrics.incr m ~by:4 "n";
  Alcotest.(check bool) "incr accumulates" true
    (Metrics.find m "n" = Some (Metrics.Int 5));
  let src = Metrics.create () in
  Metrics.set_int src "cycles" 7;
  Metrics.merge ~into:m ~prefix:"run" src;
  Alcotest.(check bool) "merge prefixes" true
    (Metrics.find m "run.cycles" = Some (Metrics.Int 7))

(* --- Obs.Vcd --- *)

let test_vcd_invariants () =
  let v = Vcd.create () in
  let x = Vcd.add_var v ~name:"x" ~width:4 in
  Vcd.change v ~time:0 x (Bitvec.of_int ~width:4 3);
  Vcd.change v ~time:1 x (Bitvec.of_int ~width:4 3);
  (* unchanged *)
  Vcd.change v ~time:2 x (Bitvec.of_int ~width:4 5);
  (match Vcd.change v ~time:1 x (Bitvec.of_int ~width:4 9) with
  | () -> Alcotest.fail "non-monotone time accepted"
  | exception Invalid_argument _ -> ());
  let contents = Vcd.contents v in
  check_vcd_structure "unit" contents;
  (* the unchanged value at #1 must be dropped: exactly two changes *)
  let changes =
    List.filter
      (fun l -> String.length l > 1 && l.[0] = 'b')
      (String.split_on_char '\n' contents)
  in
  (* one x-init in $dumpvars + two real changes *)
  Alcotest.(check int) "unchanged values dropped" 3 (List.length changes)

(* --- waveforms from all three simulators --- *)

let test_vcd_rtlsim () =
  let fsmd = gcd_fsmd () in
  let v = Vcd.create () in
  let trace = Trace.rtlsim_trace v fsmd in
  let outcome = Rtlsim.run ~trace fsmd ~args:(args_of (1071, 462)) in
  Alcotest.(check (option int)) "result" (Some 21)
    (Option.map Bitvec.to_int outcome.Rtlsim.return_value);
  check_vcd_structure "rtlsim" (Vcd.contents v)

let test_vcd_neteval () =
  let fsmd = gcd_fsmd () in
  let e = Rtlgen.elaborate fsmd in
  let v = Vcd.create () in
  let t = Neteval.create e.Rtlgen.netlist in
  Neteval.set_probe t (Trace.neteval_probe v e.Rtlgen.netlist);
  let inputs =
    [ ("a", Bitvec.of_int ~width:32 1071); ("b", Bitvec.of_int ~width:32 462) ]
  in
  (match Neteval.drive t ~inputs ~done_name:"done" ~max_cycles:10_000 with
  | Ok (outputs, _) ->
    Alcotest.(check int) "result" 21
      (Bitvec.to_int (List.assoc "result" outputs))
  | Error `Timeout -> Alcotest.fail "netlist timeout");
  check_vcd_structure "neteval" (Vcd.contents v)

let test_vcd_asim () =
  let ssa = gcd_ssa () in
  let v = Vcd.create () in
  let on_fire, finalize = Trace.asim_tracer v ssa.Ssa.func in
  let outcome = Asim.run ~on_fire ssa ~args:(args_of (1071, 462)) in
  finalize ();
  Alcotest.(check (option int)) "result" (Some 21)
    (Option.map Bitvec.to_int outcome.Asim.return_value);
  check_vcd_structure "asim" (Vcd.contents v)

(* --- profile accounting --- *)

let test_states_visited_sums_to_cycles () =
  let fsmd = gcd_fsmd () in
  let outcome = Rtlsim.run fsmd ~args:(args_of (1071, 462)) in
  let sum = Array.fold_left ( + ) 0 outcome.Rtlsim.states_visited in
  Alcotest.(check int) "visit counts account for every cycle"
    outcome.Rtlsim.cycles sum

(* --- timeout payloads --- *)

let test_timeout_payloads () =
  let fsmd = gcd_fsmd () in
  (match Rtlsim.run ~max_cycles:3 fsmd ~args:(args_of (1071, 462)) with
  | _ -> Alcotest.fail "expected Rtlsim.Timeout"
  | exception Rtlsim.Timeout { cycles; state } ->
    Alcotest.(check int) "cycles at timeout" 3 cycles;
    Alcotest.(check bool) "state in range" true
      (state >= 0 && state < Fsmd.num_states fsmd));
  let ssa = gcd_ssa () in
  match Asim.run ~max_tokens:5 ssa ~args:(args_of (1071, 462)) with
  | _ -> Alcotest.fail "expected Asim.Timeout"
  | exception Asim.Timeout { tokens_fired; time } ->
    Alcotest.(check int) "tokens at timeout" 5 tokens_fired;
    Alcotest.(check bool) "time is finite" true (Float.is_finite time)

(* --- tracing is observation-only ---

   Compile random programs and run each simulator with and without its
   trace hook installed: results, cycle counts and completion times must
   be bit-identical.  This is the property that makes --vcd safe to reach
   for during debugging: a waveform can never change the run. *)

let observation_only =
  QCheck.Test.make ~name:"tracing never perturbs simulation" ~count:60
    (QCheck.pair Test_random.arb_program
       (QCheck.pair QCheck.small_nat QCheck.small_nat))
    (fun (src, (a, b)) ->
      let program = Typecheck.parse_and_check src in
      let lowered, _ = Passes.lower_simplify program ~entry:"f" in
      let func = lowered.Lower.func in
      let args = args_of (a, b) in
      (* FSMD: plain vs traced *)
      let fsmd =
        Fsmd.of_func func ~schedule_block:(fun blk ->
            Schedule.list_schedule func Schedule.default_allocation
              blk.Cir.instrs)
      in
      let plain = Rtlsim.run fsmd ~args in
      let v = Vcd.create () in
      let traced = Rtlsim.run ~trace:(Trace.rtlsim_trace v fsmd) fsmd ~args in
      let opt_eq x y =
        match (x, y) with
        | Some x, Some y -> Bitvec.equal x y
        | None, None -> true
        | _ -> false
      in
      let fsmd_same =
        opt_eq plain.Rtlsim.return_value traced.Rtlsim.return_value
        && plain.Rtlsim.cycles = traced.Rtlsim.cycles
        && plain.Rtlsim.states_visited = traced.Rtlsim.states_visited
      in
      (* netlist: plain vs probed *)
      let e = Rtlgen.elaborate fsmd in
      let inputs =
        List.map2
          (fun (name, r) x ->
            ( name,
              Bitvec.resize ~signed:true ~width:(Cir.reg_width func r) x ))
          func.Cir.fn_params args
      in
      let run_net probe =
        let t = Neteval.create e.Rtlgen.netlist in
        (match probe with
        | Some p -> Neteval.set_probe t p
        | None -> ());
        Neteval.drive t ~inputs ~done_name:"done" ~max_cycles:100_000
      in
      let nv = Vcd.create () in
      let net_same =
        match
          ( run_net None,
            run_net (Some (Trace.neteval_probe nv e.Rtlgen.netlist)) )
        with
        | Ok (o1, c1), Ok (o2, c2) ->
          c1 = c2
          && List.for_all2
               (fun (n1, v1) (n2, v2) -> n1 = n2 && Bitvec.equal v1 v2)
               o1 o2
        | Error `Timeout, Error `Timeout -> true
        | _ -> false
      in
      (* async dataflow: plain vs traced (SSA from the raw lowering, as
         the cash pipeline builds it) *)
      let ssa = Ssa.of_func (Lower.lower_program program ~entry:"f").Lower.func in
      let aplain = Asim.run ssa ~args in
      let av = Vcd.create () in
      let on_fire, finalize = Trace.asim_tracer av ssa.Ssa.func in
      let atraced = Asim.run ~on_fire ssa ~args in
      finalize ();
      let asim_same =
        opt_eq aplain.Asim.return_value atraced.Asim.return_value
        && aplain.Asim.completion_time = atraced.Asim.completion_time
        && aplain.Asim.tokens_fired = atraced.Asim.tokens_fired
      in
      if not fsmd_same then QCheck.Test.fail_report "rtlsim diverged";
      if not net_same then QCheck.Test.fail_report "neteval diverged";
      if not asim_same then QCheck.Test.fail_report "asim diverged";
      true)

let suite =
  ( "obs",
    [ Alcotest.test_case "metrics: nesting and determinism" `Quick
        test_metrics_render;
      Alcotest.test_case "metrics: counters and merge" `Quick
        test_metrics_counters;
      Alcotest.test_case "vcd: format invariants" `Quick test_vcd_invariants;
      Alcotest.test_case "vcd from rtlsim (gcd)" `Quick test_vcd_rtlsim;
      Alcotest.test_case "vcd from neteval (gcd)" `Quick test_vcd_neteval;
      Alcotest.test_case "vcd from asim (gcd)" `Quick test_vcd_asim;
      Alcotest.test_case "profile: state visits sum to cycles" `Quick
        test_states_visited_sums_to_cycles;
      Alcotest.test_case "timeouts carry partial outcomes" `Quick
        test_timeout_payloads;
      QCheck_alcotest.to_alcotest observation_only ] )
