(* RTL layer tests: FSMD construction, the cycle-accurate simulator's
   state accounting, netlist elaboration details (INIT/DONE protocol,
   write-port muxing, error cases) and Verilog emission hygiene. *)

let lower src ~entry =
  let program = Typecheck.parse_and_check src in
  fst (Simplify.simplify (Lower.lower_program program ~entry).Lower.func)

let gcd_func =
  lower
    "int gcd(int a, int b) { while (b != 0) { int t = b; b = a % b; a = t; } return a; }"
    ~entry:"gcd"

let default_fsmd func =
  Fsmd.of_func func ~schedule_block:(fun blk ->
      Schedule.list_schedule func Schedule.default_allocation blk.Cir.instrs)

let test_fsmd_state_structure () =
  let fsmd = default_fsmd gcd_func in
  (* at least one state per block, entry state valid *)
  Alcotest.(check bool) "states cover blocks" true
    (Fsmd.num_states fsmd >= Cir.num_blocks gcd_func);
  Alcotest.(check bool) "entry in range" true
    (fsmd.Fsmd.entry >= 0 && fsmd.Fsmd.entry < Fsmd.num_states fsmd);
  (* every transition target is a valid state *)
  Array.iter
    (fun st ->
      match st.Fsmd.next with
      | Fsmd.N_goto t ->
        Alcotest.(check bool) "goto in range" true
          (t >= 0 && t < Fsmd.num_states fsmd)
      | Fsmd.N_branch { if_true; if_false; _ } ->
        Alcotest.(check bool) "branch in range" true
          (if_true >= 0 && if_true < Fsmd.num_states fsmd
          && if_false >= 0 && if_false < Fsmd.num_states fsmd)
      | Fsmd.N_halt _ -> ())
    fsmd.Fsmd.states

let test_serial_policy_one_instr_per_state () =
  let fsmd =
    Fsmd.of_func gcd_func ~schedule_block:(Fsmd.serial_schedule gcd_func)
  in
  Array.iter
    (fun st ->
      Alcotest.(check bool) "at most one action" true
        (List.length st.Fsmd.actions <= 1))
    fsmd.Fsmd.states

let test_rtlsim_state_profile () =
  let fsmd = default_fsmd gcd_func in
  let outcome =
    Rtlsim.run fsmd ~args:[ Bitvec.of_int ~width:64 54; Bitvec.of_int ~width:64 24 ]
  in
  (* the profile sums to the cycle count *)
  Alcotest.(check int) "profile sums to cycles" outcome.Rtlsim.cycles
    (Array.fold_left ( + ) 0 outcome.Rtlsim.states_visited);
  Alcotest.(check int) "gcd(54,24)" 6
    (Bitvec.to_int (Option.get outcome.Rtlsim.return_value))

let test_rtlsim_timeout () =
  let func =
    lower "int f(void) { while (1) { } return 0; }" ~entry:"f"
  in
  let fsmd = default_fsmd func in
  match Rtlsim.run ~max_cycles:100 fsmd ~args:[] with
  | exception Rtlsim.Timeout _ -> ()
  | _ -> Alcotest.fail "expected timeout"

let test_elaboration_init_done_protocol () =
  let fsmd = default_fsmd gcd_func in
  let e = Rtlgen.elaborate fsmd in
  (* the elaborated netlist takes exactly one more cycle than the FSMD
     simulator (the INIT state) *)
  let args = [ Bitvec.of_int ~width:64 1071; Bitvec.of_int ~width:64 462 ] in
  let rtl = Rtlsim.run fsmd ~args in
  match Rtlgen.simulate e ~args ~func:gcd_func with
  | Ok (outputs, cycles) ->
    Alcotest.(check int) "one INIT cycle overhead" (rtl.Rtlsim.cycles + 1)
      cycles;
    Alcotest.(check int) "same result" 21
      (Bitvec.to_int (List.assoc "result" outputs));
    Alcotest.(check int) "done asserted" 1
      (Bitvec.to_int_unsigned (List.assoc "done" outputs))
  | Error `Timeout -> Alcotest.fail "netlist timeout"

let test_elaboration_memory_write_mux () =
  (* a design with stores in several states still elaborates to a single
     muxed write port per memory *)
  let func =
    lower
      {|
      int buf[4];
      int f(int a) {
        buf[0] = a;
        buf[1] = a * 2;
        buf[2] = a * 3;
        return buf[0] + buf[1] + buf[2];
      }
      |}
      ~entry:"f"
  in
  let fsmd = default_fsmd func in
  let e = Rtlgen.elaborate fsmd in
  let nl = e.Rtlgen.netlist in
  Alcotest.(check int) "one memory" 1 (Array.length (Netlist.mems nl));
  Alcotest.(check bool) "write port connected" true
    ((Netlist.mems nl).(0).Netlist.write_port <> None);
  match Rtlgen.simulate e ~args:[ Bitvec.of_int ~width:64 5 ] ~func with
  | Ok (outputs, _) ->
    Alcotest.(check int) "muxed stores work" 30
      (Bitvec.to_int (List.assoc "result" outputs))
  | Error `Timeout -> Alcotest.fail "timeout"

let test_verilog_hygiene () =
  let fsmd = default_fsmd gcd_func in
  let e = Rtlgen.elaborate fsmd in
  let v = Verilog.to_string e.Rtlgen.netlist in
  let count_substring needle =
    let n = String.length needle and total = ref 0 in
    for i = 0 to String.length v - n do
      if String.sub v i n = needle then incr total
    done;
    !total
  in
  Alcotest.(check int) "exactly one module" 1 (count_substring "module gcd");
  Alcotest.(check int) "one endmodule" 1 (count_substring "endmodule");
  Alcotest.(check bool) "inputs declared" true
    (count_substring "input wire" >= 3); (* clk, a, b *)
  Alcotest.(check bool) "outputs declared" true
    (count_substring "output wire" >= 2); (* done, result *)
  (* no unprintable characters, no dangling assigns to w-1 *)
  Alcotest.(check int) "no negative signal names" 0 (count_substring "w-1")

let test_verilog_literals () =
  Alcotest.(check string) "bv literal"
    "8'hff"
    (Verilog.bv_literal (Bitvec.of_int ~width:8 255));
  Alcotest.(check string) "sanitize" "a_b_c" (Verilog.sanitize "a.b c")

let test_netlist_eval_combinational () =
  (* direct netlist building and evaluation *)
  let nl = Netlist.create ~name:"addmul" () in
  let a = Netlist.input nl "a" ~width:16 in
  let b = Netlist.input nl "b" ~width:16 in
  let sum = Netlist.binop nl Netlist.B_add a b in
  let prod = Netlist.binop nl Netlist.B_mul a b in
  let sel = Netlist.binop nl Netlist.B_ult a b in
  let out = Netlist.mux nl ~sel ~if_true:sum ~if_false:prod in
  Netlist.set_output nl "out" out;
  let eval a_v b_v =
    let outputs =
      Neteval.eval_combinational nl
        ~inputs:
          [ ("a", Bitvec.of_int ~width:16 a_v);
            ("b", Bitvec.of_int ~width:16 b_v) ]
    in
    Bitvec.to_int_unsigned (List.assoc "out" outputs)
  in
  Alcotest.(check int) "a<b: sum" 7 (eval 3 4);
  Alcotest.(check int) "a>=b: product" 12 (eval 4 3)

let test_netlist_sequential_counter () =
  (* a counter with enable, run via settle/tick *)
  let nl = Netlist.create ~name:"counter" () in
  let en = Netlist.input nl "en" ~width:1 in
  let count = Netlist.reg_forward nl ~init:(Bitvec.zero 8) in
  let one = Netlist.const_int nl ~width:8 1 in
  let next = Netlist.binop nl Netlist.B_add count one in
  Netlist.reg_connect nl count ~next ~enable:en ();
  Netlist.set_output nl "count" count;
  let sim = Neteval.create nl in
  let step en_v =
    Neteval.settle sim ~inputs:[ ("en", Bitvec.of_int ~width:1 en_v) ];
    let v = Bitvec.to_int_unsigned (Neteval.output sim "count") in
    Neteval.tick sim;
    v
  in
  (* fold_left guarantees left-to-right stepping (a list literal of calls
     would evaluate right to left) *)
  let observed =
    List.rev
      (List.fold_left (fun acc en -> step en :: acc) [] [ 1; 1; 0; 0; 1; 1 ])
  in
  Alcotest.(check (list int)) "enable gates counting"
    [ 0; 1; 2; 2; 2; 3 ] observed

let test_netlist_event_driven_matches_sweep () =
  (* the two settle strategies must agree on outputs, cycle count and the
     number of value-change events; event-driven must evaluate fewer nodes *)
  let fsmd = default_fsmd gcd_func in
  let e = Rtlgen.elaborate fsmd in
  let args = [ Bitvec.of_int ~width:64 1071; Bitvec.of_int ~width:64 462 ] in
  let run strategy =
    match Rtlgen.simulate_stats ~strategy e ~args ~func:gcd_func with
    | Ok r -> r
    | Error `Timeout -> Alcotest.fail "timeout"
  in
  let ev_out, ev_cycles, ev = run Neteval.Event_driven in
  let fs_out, fs_cycles, fs = run Neteval.Full_sweep in
  Alcotest.(check int) "same cycle count" fs_cycles ev_cycles;
  Alcotest.(check int) "same result" 21
    (Bitvec.to_int (List.assoc "result" ev_out));
  List.iter2
    (fun (n1, v1) (n2, v2) ->
      Alcotest.(check string) "output order" n1 n2;
      Alcotest.(check bool) ("output " ^ n1 ^ " bit-exact") true
        (Bitvec.equal v1 v2))
    fs_out ev_out;
  Alcotest.(check int) "same change events" fs.Neteval.events
    ev.Neteval.events;
  Alcotest.(check bool) "fewer node evaluations" true
    (ev.Neteval.nodes_evaluated < fs.Neteval.nodes_evaluated);
  (* the full sweep evaluates every node on every settle *)
  Alcotest.(check int) "sweep evals = nodes x settles"
    (Netlist.length e.Rtlgen.netlist * fs.Neteval.settles)
    fs.Neteval.nodes_evaluated

let test_netlist_unknown_output_error () =
  let fsmd = default_fsmd gcd_func in
  let e = Rtlgen.elaborate fsmd in
  let sim = Neteval.create e.Rtlgen.netlist in
  match Neteval.output sim "no_such_port" with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "names the missing output" true
      (String.length msg > 0
      && (let contains needle =
            let n = String.length needle in
            let found = ref false in
            for i = 0 to String.length msg - n do
              if String.sub msg i n = needle then found := true
            done;
            !found
          in
          contains "no_such_port" && contains "done"))

let test_netlist_fanout_index () =
  (* fanout edges point forward and invert comb_deps exactly *)
  let fsmd = default_fsmd gcd_func in
  let nl = (Rtlgen.elaborate fsmd).Rtlgen.netlist in
  let f = Netlist.fanouts nl in
  let edges_from_deps = ref 0 and edges_from_fanouts = ref 0 in
  for s = 0 to Netlist.length nl - 1 do
    List.iter
      (fun d ->
        incr edges_from_deps;
        Alcotest.(check bool) "dep already created" true (d < s);
        Alcotest.(check bool) "dep's fanout lists user" true
          (Array.exists (fun u -> u = s) f.(d)))
      (Netlist.comb_deps (Netlist.node nl s));
    edges_from_fanouts := !edges_from_fanouts + Array.length f.(s)
  done;
  Alcotest.(check int) "edge counts match" !edges_from_deps
    !edges_from_fanouts

let test_area_model_monotone () =
  (* wider operators must never be cheaper or faster *)
  List.iter
    (fun op ->
      let a8 = (Area.binop_cost op 8).Area.area
      and a32 = (Area.binop_cost op 32).Area.area in
      Alcotest.(check bool) "area grows with width" true (a32 >= a8);
      let d8 = (Area.binop_cost op 8).Area.delay
      and d32 = (Area.binop_cost op 32).Area.delay in
      Alcotest.(check bool) "delay grows with width" true (d32 >= d8))
    [ Netlist.B_add; Netlist.B_mul; Netlist.B_udiv; Netlist.B_shl;
      Netlist.B_slt; Netlist.B_and ];
  (* multiplier much bigger than adder at same width *)
  Alcotest.(check bool) "mul >> add" true
    ((Area.binop_cost Netlist.B_mul 32).Area.area
    > 4. *. (Area.binop_cost Netlist.B_add 32).Area.area)

let test_area_report_of_design () =
  let fsmd = default_fsmd gcd_func in
  let e = Rtlgen.elaborate fsmd in
  let report = Area.analyze e.Rtlgen.netlist in
  Alcotest.(check bool) "positive total" true (report.Area.total_area > 0.);
  Alcotest.(check bool) "has registers" true (report.Area.num_registers > 0);
  Alcotest.(check bool) "critical path positive" true
    (report.Area.critical_path > 0.);
  Alcotest.(check bool) "comb + reg + mem = total" true
    (Float.abs
       (report.Area.combinational_area +. report.Area.register_area
       +. report.Area.memory_area -. report.Area.total_area)
    < 1e-6)

let suite =
  ( "rtl",
    [ Alcotest.test_case "fsmd state structure" `Quick
        test_fsmd_state_structure;
      Alcotest.test_case "serial policy" `Quick
        test_serial_policy_one_instr_per_state;
      Alcotest.test_case "rtlsim state profile" `Quick
        test_rtlsim_state_profile;
      Alcotest.test_case "rtlsim timeout" `Quick test_rtlsim_timeout;
      Alcotest.test_case "elaboration INIT/DONE protocol" `Quick
        test_elaboration_init_done_protocol;
      Alcotest.test_case "elaboration memory write mux" `Quick
        test_elaboration_memory_write_mux;
      Alcotest.test_case "verilog hygiene" `Quick test_verilog_hygiene;
      Alcotest.test_case "verilog literals" `Quick test_verilog_literals;
      Alcotest.test_case "netlist combinational eval" `Quick
        test_netlist_eval_combinational;
      Alcotest.test_case "netlist sequential counter" `Quick
        test_netlist_sequential_counter;
      Alcotest.test_case "netlist event-driven vs full sweep" `Quick
        test_netlist_event_driven_matches_sweep;
      Alcotest.test_case "netlist unknown output error" `Quick
        test_netlist_unknown_output_error;
      Alcotest.test_case "netlist fanout index" `Quick
        test_netlist_fanout_index;
      Alcotest.test_case "area model monotone" `Quick test_area_model_monotone;
      Alcotest.test_case "area report" `Quick test_area_report_of_design ] )
