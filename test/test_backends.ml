(* Backend correctness: every synthesized design must produce the same
   results as the software oracle (the reference interpreter) on every
   workload the backend's dialect accepts — the central refinement
   property of the whole system.  Also sanity-checks each backend's
   timing/area characteristics and the netlist elaboration path. *)

let check_design backend (w : Workloads.t) design =
  List.iter
    (fun args ->
      let expected = Workloads.reference w args in
      let observed = Design.run_int design args in
      Alcotest.(check (option int))
        (Printf.sprintf "%s/%s(%s)" (Chls.backend_name backend)
           w.Workloads.name
           (String.concat "," (List.map string_of_int args)))
        (Some expected) observed)
    w.Workloads.arg_sets

let check_result backend (w : Workloads.t) = function
  | Ok design -> check_design backend w design
  | Error (Driver.Dialect_reject _) | Error (Driver.No_c_frontend _) -> ()
  | Error e ->
    Alcotest.fail
      (Printf.sprintf "%s/%s: %s" (Chls.backend_name backend) w.Workloads.name
         (Driver.render_error e))

let check_backend_on backend (w : Workloads.t) =
  let session = Driver.create ~entry:w.Workloads.entry w.Workloads.source in
  check_result backend w (Driver.compile session backend)

let sequential_backends =
  [ (Registry.get "transmogrifier"); (Registry.get "bachc"); (Registry.get "cyber");
    (Registry.get "handelc"); (Registry.get "cash"); (Registry.get "systemc");
    (Registry.get "c2verilog"); (Registry.get "specc"); (Registry.get "hardwarec") ]

let test_sequential_equivalence () =
  (* one driver session per workload: the frontend runs once and every
     backend compiles from the same checked program *)
  List.iter
    (fun (w : Workloads.t) ->
      let session = Driver.create ~entry:w.Workloads.entry w.Workloads.source in
      List.iter
        (fun (backend, result) -> check_result backend w result)
        (Driver.compile_all ~backends:sequential_backends session))
    Workloads.sequential

let test_cones_equivalence () =
  List.iter (check_backend_on (Registry.get "cones")) Workloads.combinational

let test_concurrent_equivalence () =
  List.iter (check_backend_on (Registry.get "handelc")) Workloads.concurrent;
  List.iter (check_backend_on (Registry.get "bachc")) Workloads.concurrent

let test_thorny_equivalence () =
  List.iter (check_backend_on (Registry.get "c2verilog")) Workloads.thorny

let test_dialect_rejections () =
  (* the pointer workload must be rejected by the pointer-free dialects *)
  let ptr = Workloads.parse Workloads.pointer_sum in
  List.iter
    (fun backend ->
      Alcotest.(check bool)
        (Chls.backend_name backend ^ " rejects pointers")
        false (Chls.accepts backend ptr))
    [ (Registry.get "cones"); (Registry.get "handelc"); (Registry.get "bachc");
      (Registry.get "cash") ];
  Alcotest.(check bool) "c2verilog accepts pointers" true
    (Chls.accepts (Registry.get "c2verilog") ptr);
  let conc = Workloads.parse Workloads.producer_consumer in
  Alcotest.(check bool) "cash rejects channels" false
    (Chls.accepts (Registry.get "cash") conc);
  Alcotest.(check bool) "handelc accepts channels" true
    (Chls.accepts (Registry.get "handelc") conc)

(* --- timing semantics of the clock-insertion rules --- *)

let cycles_of backend w args =
  let program = Workloads.parse w in
  let design = Chls.compile_program backend program ~entry:w.Workloads.entry in
  let r = design.Design.run (Design.int_args args) in
  Option.get r.Design.cycles

let test_transmogrifier_cycle_rule () =
  (* fib(n): after CFG simplification an iteration is the header state plus
     one merged body state — cycles grow at exactly 2 per iteration, the
     "only loop iterations take a cycle" rule (plus the exit test). *)
  let c10 = cycles_of (Registry.get "transmogrifier") Workloads.fib [ 10 ] in
  let c20 = cycles_of (Registry.get "transmogrifier") Workloads.fib [ 20 ] in
  Alcotest.(check int) "two states per extra iteration" 20 (c20 - c10)

let test_handelc_cycle_rule () =
  (* Handel-C: one cycle per assignment.  fib's loop body has 3 assignments
     plus the for-step, so cycles scale at ~4/iteration. *)
  let c10 = cycles_of (Registry.get "handelc") Workloads.fib [ 10 ] in
  let c20 = cycles_of (Registry.get "handelc") Workloads.fib [ 20 ] in
  let per_iter = (c20 - c10) / 10 in
  Alcotest.(check int) "four assignment-cycles per fib iteration" 4 per_iter

let test_timing_scheme_tradeoffs () =
  (* The paper's timing-control spectrum, as orderings that must hold:
     Transmogrifier chains whole blocks, so it has the fewest cycles but
     the longest clock period; Bach C's scheduler splits work across
     states under a chain budget, so it takes more cycles at a shorter
     period; Handel-C's one-assignment-per-cycle rule charges a cycle per
     assignment but its period is set by its deepest expression. *)
  List.iter
    (fun (w : Workloads.t) ->
      let args = List.hd w.Workloads.arg_sets in
      let program = Workloads.parse w in
      let design b = Chls.compile_program b program ~entry:w.Workloads.entry in
      let tm = design (Registry.get "transmogrifier") in
      let bach = design (Registry.get "bachc") in
      let tm_cycles = cycles_of (Registry.get "transmogrifier") w args in
      let bach_cycles = cycles_of (Registry.get "bachc") w args in
      Alcotest.(check bool)
        (Printf.sprintf "transmogrifier <= bachc cycles on %s (%d vs %d)"
           w.Workloads.name tm_cycles bach_cycles)
        true (tm_cycles <= bach_cycles);
      let period d = Option.get d.Design.clock_period in
      Alcotest.(check bool)
        (Printf.sprintf "bachc period <= transmogrifier period on %s (%.1f vs %.1f)"
           w.Workloads.name (period bach) (period tm))
        true (period bach <= period tm))
    [ Workloads.fir; Workloads.checksum; Workloads.matmul ]

let test_cones_is_combinational () =
  let program = Workloads.parse Workloads.fir in
  let design = Chls.compile_program (Registry.get "cones") program ~entry:"fir" in
  let r = design.Design.run (Design.int_args [ 1; 2 ]) in
  Alcotest.(check bool) "no cycles" true (r.Design.cycles = None);
  Alcotest.(check bool) "has settle time" true (r.Design.time_units <> None);
  match design.Design.area () with
  | Some report ->
    Alcotest.(check bool) "no registers in a combinational design" true
      (report.Area.num_registers = 0)
  | None -> Alcotest.fail "cones must report area"

let test_cash_is_asynchronous () =
  let program = Workloads.parse Workloads.fir in
  let design = Chls.compile_program (Registry.get "cash") program ~entry:"fir" in
  let r = design.Design.run (Design.int_args [ 1; 2 ]) in
  Alcotest.(check bool) "no clock" true (r.Design.cycles = None);
  Alcotest.(check bool) "completion time positive" true
    (match r.Design.time_units with Some t -> t > 0. | None -> false)

(* --- netlist elaboration: the third oracle layer --- *)

let test_elaboration_equivalence () =
  List.iter
    (fun (w : Workloads.t) ->
      let program = Workloads.parse w in
      let lowered = Lower.lower_program program ~entry:w.Workloads.entry in
      let func = lowered.Lower.func in
      let fsmd =
        Fsmd.of_func func ~schedule_block:(fun blk ->
            Schedule.list_schedule func Schedule.default_allocation
              blk.Cir.instrs)
      in
      let elaborated = Rtlgen.elaborate fsmd in
      List.iter
        (fun args ->
          let expected = Workloads.reference w args in
          match
            Rtlgen.simulate elaborated ~args:(Design.int_args args) ~func
          with
          | Ok (outputs, _cycles) ->
            Alcotest.(check int)
              (Printf.sprintf "netlist %s(%s)" w.Workloads.name
                 (String.concat "," (List.map string_of_int args)))
              expected
              (Bitvec.to_int (List.assoc "result" outputs))
          | Error `Timeout -> Alcotest.fail "netlist simulation timeout")
        w.Workloads.arg_sets)
    Workloads.sequential

let test_elaborated_verilog_emits () =
  let program = Workloads.parse Workloads.gcd in
  let design = Chls.compile_program (Registry.get "bachc") program ~entry:"gcd" in
  match design.Design.verilog () with
  | Some src ->
    Alcotest.(check bool) "has module header" true
      (String.length src > 0
      && String.sub src 0 7 = "module ");
    let contains needle =
      let rec go i =
        i + String.length needle <= String.length src
        && (String.sub src i (String.length needle) = needle || go (i + 1))
      in
      go 0
    in
    Alcotest.(check bool) "has clocked block" true
      (contains "always @(posedge clk)");
    Alcotest.(check bool) "has endmodule" true (contains "endmodule")
  | None -> Alcotest.fail "bachc should emit Verilog"

(* --- the refinement and EDSL backends --- *)

let test_specc_refinement () =
  let w = Workloads.gcd in
  let program = Workloads.parse w in
  let _, report =
    Specc.refine program ~entry:w.Workloads.entry
      ~test_vectors:w.Workloads.arg_sets
  in
  Alcotest.(check bool) "all levels equivalent" true
    report.Specc.all_equivalent;
  Alcotest.(check int) "4 levels x vectors checks"
    (4 * List.length w.Workloads.arg_sets)
    (List.length report.Specc.checks)

let test_ocapi_edsl () =
  (* build a GCD FSM structurally, the Ocapi way *)
  let b = Ocapi.create ~name:"gcd_edsl" in
  let a = Ocapi.input b ~name:"a" ~width:32 in
  let bb = Ocapi.input b ~name:"b" ~width:32 in
  Ocapi.set_result_width b 32;
  let open Ocapi in
  (* state 0: test b != 0; state 1: (a, b) <- (b, a mod b) *)
  let s0 = add_state b [] (Branch (reg bb ==: const ~width:32 0, 2, 1)) in
  let s1 =
    add_state b
      [ Set (a, reg bb); Set (bb, Bin (Netlist.B_srem, reg a, reg bb)) ]
      (Goto 0)
  in
  let s2 = add_state b [] (Done (Some (reg a))) in
  Alcotest.(check (list int)) "state ids" [ 0; 1; 2 ] [ s0; s1; s2 ];
  let design = Ocapi.to_design b in
  List.iter
    (fun (x, y) ->
      let rec ocaml_gcd a b = if b = 0 then a else ocaml_gcd b (a mod b) in
      Alcotest.(check (option int))
        (Printf.sprintf "gcd_edsl(%d,%d)" x y)
        (Some (ocaml_gcd x y))
        (Design.run_int design [ x; y ]))
    [ (54, 24); (1071, 462); (13, 5) ]

let test_systemc_kernel () =
  (* a two-process network: a counter and a comparator *)
  let k = Systemc.create () in
  let count = Systemc.signal k ~name:"count" ~width:8 () in
  let done_sig = Systemc.signal k ~name:"done" ~width:1 () in
  Systemc.sc_clocked k ~name:"counter" (fun () ->
      Systemc.write_int count (Systemc.read_int count + 1));
  Systemc.sc_method k ~name:"compare" (fun () ->
      Systemc.write_int done_sig
        (if Systemc.read_int count >= 10 then 1 else 0));
  (match Systemc.run_until k ~stop:done_sig ~max_cycles:100 with
  | Ok cycles -> Alcotest.(check int) "10 cycles to reach 10" 10 cycles
  | Error `Timeout -> Alcotest.fail "counter never finished");
  Alcotest.(check int) "count is 10" 10 (Systemc.read_int count)

let test_systemc_delta_convergence () =
  (* a chain of combinational processes must settle via delta cycles *)
  let k = Systemc.create () in
  let a = Systemc.signal k ~name:"a" ~width:8 () in
  let b = Systemc.signal k ~name:"b" ~width:8 () in
  let c = Systemc.signal k ~name:"c" ~width:8 () in
  let stop = Systemc.signal k ~name:"stop" ~width:1 ~init:1 () in
  Systemc.sc_method k ~name:"b=a+1" (fun () ->
      Systemc.write_int b (Systemc.read_int a + 1));
  Systemc.sc_method k ~name:"c=b*2" (fun () ->
      Systemc.write_int c (Systemc.read_int b * 2));
  Systemc.sc_clocked k ~name:"drive" (fun () -> Systemc.write_int a 5);
  (match Systemc.run_until k ~stop ~max_cycles:4 with
  | Ok _ -> ()
  | Error `Timeout -> Alcotest.fail "no convergence");
  Alcotest.(check int) "c settled to (0+1)*2 before any clock" 2
    (Systemc.read_int c)

let test_c2verilog_machine_details () =
  let program = Workloads.parse Workloads.recursion in
  let design =
    Chls.compile_program (Registry.get "c2verilog") program ~entry:"run"
  in
  (* recursion depth costs cycles: deeper recursion, more cycles *)
  let cycles n =
    Option.get
      ((design.Design.run (Design.int_args [ n ])).Design.cycles)
  in
  Alcotest.(check bool) "recursion costs cycles" true (cycles 10 > cycles 6);
  Alcotest.(check bool) "stats mention code words" true
    (List.mem_assoc "code words" design.Design.stats)

let test_handelc_channel_cycle_semantics () =
  (* a rendezvous costs a cycle and blocks until both sides arrive *)
  let src =
    {|
    chan int c;
    int run(int n) {
      int got = 0;
      par {
        { delay; delay; delay; send(c, n * 2); }
        { got = recv(c); }
      }
      return got;
    }
    |}
  in
  let design = Chls.compile (Registry.get "handelc") src ~entry:"run" in
  let r = design.Design.run (Design.int_args [ 21 ]) in
  Alcotest.(check (option int)) "value transferred" (Some 42)
    (Option.map Bitvec.to_int r.Design.result);
  (* 3 delay cycles + send/recv transfer + join bookkeeping: 4..7 cycles *)
  let cycles = Option.get r.Design.cycles in
  Alcotest.(check bool)
    (Printf.sprintf "receiver waited (%d cycles)" cycles)
    true
    (cycles >= 4 && cycles <= 8)

let test_handelc_structural_views () =
  (* sequential Handel-C programs get a netlist view cut at assignment
     boundaries; concurrent ones do not (the statement machine is the
     only executable model for par/channels) *)
  let seq = Chls.compile (Registry.get "handelc")
      (Workloads.gcd).Workloads.source ~entry:"gcd"
  in
  (match seq.Design.verilog () with
  | Some v -> Alcotest.(check bool) "module emitted" true (String.length v > 0)
  | None -> Alcotest.fail "sequential handelc should emit Verilog");
  (match seq.Design.area () with
  | Some a ->
    Alcotest.(check bool) "has registers" true (a.Area.num_registers > 0)
  | None -> Alcotest.fail "sequential handelc should report area");
  let conc =
    Chls.compile (Registry.get "handelc")
      (Workloads.producer_consumer).Workloads.source ~entry:"run"
  in
  Alcotest.(check bool) "concurrent: no netlist view" true
    (conc.Design.verilog () = None)

let test_global_state_observable () =
  (* globals written by the design are observable after the run *)
  let src =
    {|
    int last = 0;
    int run(int n) {
      last = n * 3;
      return n;
    }
    |}
  in
  List.iter
    (fun backend ->
      let design = Chls.compile backend src ~entry:"run" in
      let r = design.Design.run (Design.int_args [ 7 ]) in
      match List.assoc_opt "last" r.Design.globals with
      | Some v ->
        Alcotest.(check int)
          (Chls.backend_name backend ^ " global readback")
          21 (Bitvec.to_int v)
      | None ->
        Alcotest.fail (Chls.backend_name backend ^ " lost global 'last'"))
    [ (Registry.get "transmogrifier"); (Registry.get "bachc"); (Registry.get "handelc");
      (Registry.get "c2verilog") ]

let suite =
  ( "backends",
    [ Alcotest.test_case "sequential equivalence (9 backends x 9 kernels)"
        `Quick test_sequential_equivalence;
      Alcotest.test_case "cones equivalence" `Quick test_cones_equivalence;
      Alcotest.test_case "concurrent equivalence" `Quick
        test_concurrent_equivalence;
      Alcotest.test_case "thorny-C equivalence (c2verilog)" `Quick
        test_thorny_equivalence;
      Alcotest.test_case "dialect rejections" `Quick test_dialect_rejections;
      Alcotest.test_case "transmogrifier cycle rule" `Quick
        test_transmogrifier_cycle_rule;
      Alcotest.test_case "handelc cycle rule" `Quick test_handelc_cycle_rule;
      Alcotest.test_case "timing scheme tradeoffs" `Quick
        test_timing_scheme_tradeoffs;
      Alcotest.test_case "cones is combinational" `Quick
        test_cones_is_combinational;
      Alcotest.test_case "cash is asynchronous" `Quick
        test_cash_is_asynchronous;
      Alcotest.test_case "netlist elaboration equivalence" `Quick
        test_elaboration_equivalence;
      Alcotest.test_case "verilog emission" `Quick
        test_elaborated_verilog_emits;
      Alcotest.test_case "specc refinement report" `Quick
        test_specc_refinement;
      Alcotest.test_case "ocapi EDSL gcd" `Quick test_ocapi_edsl;
      Alcotest.test_case "systemc kernel" `Quick test_systemc_kernel;
      Alcotest.test_case "systemc delta convergence" `Quick
        test_systemc_delta_convergence;
      Alcotest.test_case "c2verilog machine details" `Quick
        test_c2verilog_machine_details;
      Alcotest.test_case "handelc channel cycles" `Quick
        test_handelc_channel_cycle_semantics;
      Alcotest.test_case "handelc structural views" `Quick
        test_handelc_structural_views;
      Alcotest.test_case "globals observable" `Quick
        test_global_state_observable ] )
