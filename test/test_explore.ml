(* The design-space sweep: grid parsing and enumeration order, Pareto
   dominance on synthetic cells, and the end-to-end engine — every gcd
   point oracle-verified with a non-empty front, constraint-infeasible
   points typed as infeasible cells (never errors), and a warm re-sweep
   answered per config digest by the design cache. *)

let gcd_w = Workloads.gcd

(* --- the grid ---------------------------------------------------------- *)

let test_parse_grid () =
  (match Explore.parse_grid "adders=1,2,*;chain=5.5,40;unroll=1,4" with
  | Error msg -> Alcotest.fail msg
  | Ok g ->
    Alcotest.(check bool) "adders parsed" true
      (g.Explore.adders = [ Some 1; Some 2; None ]);
    Alcotest.(check bool) "chains parsed" true
      (g.Explore.chains = [ 5.5; 40. ]);
    Alcotest.(check bool) "unrolls parsed" true
      (g.Explore.unrolls = [ 1; 4 ]));
  (match Explore.parse_grid "unroll=2" with
  | Error msg -> Alcotest.fail msg
  | Ok g ->
    Alcotest.(check bool) "unset axes keep the default" true
      (g.Explore.adders = Explore.default_grid.Explore.adders
      && g.Explore.chains = Explore.default_grid.Explore.chains);
    Alcotest.(check bool) "set axis overrides" true
      (g.Explore.unrolls = [ 2 ]));
  List.iter
    (fun (what, spec) ->
      match Explore.parse_grid spec with
      | Ok _ -> Alcotest.fail (what ^ ": should be rejected")
      | Error _ -> ())
    [ ("unknown axis", "multithreading=9");
      ("bad bound", "adders=0");
      ("bad chain", "chain=-4");
      ("missing =", "adders");
      ("empty values", "unroll=") ]

let test_enumeration_order_and_size () =
  let grid =
    { Explore.adders = [ Some 1; Some 2 ];
      chains = [ 10.; 20. ];
      unrolls = [ 1; 2 ] }
  in
  let backends = [ Registry.get "bachc"; Registry.get "handelc" ] in
  let pts = Explore.points grid backends in
  Alcotest.(check int) "size = product of axes"
    (Explore.grid_size grid ~backends:2)
    (List.length pts);
  Alcotest.(check int) "16 points" 16 (List.length pts);
  (* backend-major, then adders, chains, unrolls *)
  let first, c0 = List.hd pts in
  Alcotest.(check string) "first point is the first backend" "bachc"
    (Registry.name first);
  Alcotest.(check bool) "first point is the smallest knobs" true
    (c0.Config.resources.Schedule.adders = Some 1
    && c0.Config.resources.Schedule.chain_budget = 10.
    && c0.Config.unroll_factor = 1);
  let second = snd (List.nth pts 1) in
  Alcotest.(check int) "unroll varies fastest" 2
    second.Config.unroll_factor;
  (* every point is a distinct cache key *)
  let digests =
    List.sort_uniq compare
      (List.map
         (fun (b, c) -> Registry.name b ^ "|" ^ Config.digest c)
         pts)
  in
  Alcotest.(check int) "all points distinct" 16 (List.length digests)

(* --- Pareto dominance on synthetic cells ------------------------------- *)

let cell ?(verified = true) ?(status = `Measured) ~area ~cycles ~period ()
    : Explore.cell =
  let m =
    { Explore.m_area = area;
      m_registers = Some 1;
      m_cycles = cycles;
      m_period = period;
      m_latency = None;
      m_verified = verified }
  in
  { Explore.cell_backend = "synthetic";
    cell_config = Config.default;
    cell_digest = "d";
    cell_status =
      (match status with
      | `Measured -> Explore.Measured m
      | `Infeasible -> Explore.Infeasible "synthetic"
      | `Failed -> Explore.Failed "synthetic");
    cell_wall_ms = 0. }

let mk ~area ~cycles ~period =
  cell ~area:(Some area) ~cycles:(Some cycles) ~period:(Some period) ()

let test_pareto_front () =
  (* 0 dominates 1; 0 and 2 trade area against cycles; 3 trades period *)
  let cells =
    [ mk ~area:100. ~cycles:10 ~period:5.;
      mk ~area:120. ~cycles:11 ~period:5.;
      mk ~area:80. ~cycles:20 ~period:5.;
      mk ~area:300. ~cycles:30 ~period:1. ]
  in
  Alcotest.(check (list int)) "front keeps the trade-offs" [ 0; 2; 3 ]
    (Explore.pareto_front cells);
  (* equal-axis duplicates collapse to the lowest index *)
  let dup = [ mk ~area:1. ~cycles:1 ~period:1.; mk ~area:1. ~cycles:1 ~period:1. ] in
  Alcotest.(check (list int)) "duplicates collapse" [ 0 ]
    (Explore.pareto_front dup);
  (* unverified, non-measured and partially-measured cells never enter *)
  let ineligible =
    [ cell ~verified:false ~area:(Some 1.) ~cycles:(Some 1)
        ~period:(Some 1.) ();
      cell ~status:`Infeasible ~area:None ~cycles:None ~period:None ();
      cell ~status:`Failed ~area:None ~cycles:None ~period:None ();
      cell ~area:(Some 1.) ~cycles:(Some 1) ~period:None ();
      mk ~area:500. ~cycles:500 ~period:500. ]
  in
  Alcotest.(check (list int)) "only the full, verified cell" [ 4 ]
    (Explore.pareto_front ineligible)

let test_dominates () =
  let m ~area ~cycles ~period =
    match mk ~area ~cycles ~period with
    | { Explore.cell_status = Explore.Measured m; _ } -> m
    | _ -> assert false
  in
  let a = m ~area:1. ~cycles:1 ~period:1. in
  let b = m ~area:2. ~cycles:1 ~period:1. in
  Alcotest.(check bool) "strictly better on one axis" true
    (Explore.dominates a b);
  Alcotest.(check bool) "not the other way" false (Explore.dominates b a);
  Alcotest.(check bool) "equal points never dominate" false
    (Explore.dominates a a)

(* --- end to end -------------------------------------------------------- *)

let sweep_gcd ?domains () =
  Explore.run ?domains ~source:gcd_w.Workloads.source
    ~entry:gcd_w.Workloads.entry
    ~args:(List.hd gcd_w.Workloads.arg_sets)
    Explore.default_grid
    [ Registry.get "bachc"; Registry.get "hardwarec" ]

let test_gcd_sweep_verified () =
  Driver.clear_cache ();
  let sweep = sweep_gcd () in
  Alcotest.(check int) "16 points" 16
    (List.length sweep.Explore.sw_cells);
  Alcotest.(check int) "every point oracle-verified" 16
    (Explore.verified_count sweep);
  Alcotest.(check bool) "front is non-empty" true
    (sweep.Explore.sw_pareto <> []);
  (* front members really are undominated measured cells *)
  List.iter
    (fun i ->
      match (List.nth sweep.Explore.sw_cells i).Explore.cell_status with
      | Explore.Measured m ->
        Alcotest.(check bool) "front member verified" true
          m.Explore.m_verified
      | _ -> Alcotest.fail "front member is not a measured cell")
    sweep.Explore.sw_pareto;
  (* the chain-budget axis is live: some points differ in cycle count *)
  let cycles =
    List.filter_map
      (fun (c : Explore.cell) ->
        match c.Explore.cell_status with
        | Explore.Measured m -> m.Explore.m_cycles
        | _ -> None)
      sweep.Explore.sw_cells
  in
  Alcotest.(check bool) "knobs move the measurements" true
    (List.length (List.sort_uniq compare cycles) > 1)

let test_warm_sweep_hits_per_digest () =
  Driver.clear_cache ();
  let _cold = sweep_gcd () in
  let hits_before =
    match
      List.assoc_opt "driver.cache.front_hits" (Driver.cache_metrics ())
    with
    | Some n -> n
    | None -> 0
  in
  let warm = sweep_gcd ~domains:2 () in
  let hits_after =
    match
      List.assoc_opt "driver.cache.front_hits" (Driver.cache_metrics ())
    with
    | Some n -> n
    | None -> 0
  in
  Alcotest.(check int) "one hit per distinct config point" 16
    (hits_after - hits_before);
  Alcotest.(check int) "warm sweep still verifies" 16
    (Explore.verified_count warm)

(* A constrain block no allocation can satisfy (two dependent memory
   reads inside constrain(1,1)): hardwarec must report it as a typed
   infeasible cell, and a backend whose dialect bans constrain rejects
   the program — neither is a failure. *)
let infeasible_source =
  "int f(int i) {\n\
  \  int tab[4];\n\
  \  tab[0] = i; tab[1] = i + 1; tab[2] = i + 2; tab[3] = 3;\n\
  \  int r = 0;\n\
  \  constrain(1, 1) {\n\
  \    int a = tab[i & 3];\n\
  \    int b = tab[a & 3];\n\
  \    r = a + b;\n\
  \  }\n\
  \  return r;\n\
   }\n"

let test_infeasible_points_are_typed () =
  Driver.clear_cache ();
  let grid =
    { Explore.adders = [ Some 1 ]; chains = [ 10. ]; unrolls = [ 1 ] }
  in
  let sweep =
    Explore.run ~source:infeasible_source ~entry:"f" ~args:[ 1 ]
      grid
      [ Registry.get "hardwarec"; Registry.get "bachc" ]
  in
  (* the capability predicts which backend can report infeasibility *)
  Alcotest.(check bool) "hardwarec advertises constraint reports" true
    (Registry.capabilities (Registry.get "hardwarec"))
      .Backend.constraint_reports;
  let status i =
    Explore.status_name
      (List.nth sweep.Explore.sw_cells i).Explore.cell_status
  in
  Alcotest.(check string) "hardwarec cell is infeasible" "infeasible"
    (status 0);
  Alcotest.(check string) "bachc rejects constrain by dialect" "rejected"
    (status 1);
  Alcotest.(check int) "nothing failed" 0
    (List.length
       (List.filter
          (fun (c : Explore.cell) ->
            match c.Explore.cell_status with
            | Explore.Failed _ -> true
            | _ -> false)
          sweep.Explore.sw_cells));
  Alcotest.(check (list int)) "no front from infeasible points" []
    sweep.Explore.sw_pareto

(* the typed driver error behind those cells *)
let test_driver_constraint_infeasible () =
  Driver.clear_cache ();
  let s = Driver.create ~entry:"f" infeasible_source in
  match Driver.compile s (Registry.get "hardwarec") with
  | Error (Driver.Constraint_infeasible { backend; message }) ->
    Alcotest.(check string) "backend named" "hardwarec" backend;
    Alcotest.(check bool) "message names the block" true
      (String.length message > 0)
  | Ok _ -> Alcotest.fail "unsatisfiable program compiled"
  | Error e ->
    Alcotest.fail
      ("wrong error class: " ^ Driver.render_error e)

let test_metrics_report () =
  Driver.clear_cache ();
  let sweep = sweep_gcd () in
  let m = Explore.metrics sweep in
  let get k = Metrics.find m k in
  Alcotest.(check bool) "schema" true
    (get "schema" = Some (Metrics.String "chls.explore/1"));
  Alcotest.(check bool) "point count" true
    (get "explore.points" = Some (Metrics.Int 16));
  Alcotest.(check bool) "verified count" true
    (get "explore.verified" = Some (Metrics.Int 16));
  Alcotest.(check bool) "per-cell backend present" true
    (get "explore.cell.0.backend" = Some (Metrics.String "bachc"));
  Alcotest.(check bool) "per-cell digest present" true
    (match get "explore.cell.0.config" with
    | Some (Metrics.String d) -> String.length d = 32
    | _ -> false);
  Alcotest.(check bool) "cache counters folded in" true
    (get "driver.cache.front_entries" <> None);
  (* the text table covers every cell plus the header *)
  let header, rows = Explore.table sweep in
  Alcotest.(check int) "a row per cell" 16 (List.length rows);
  List.iter
    (fun row ->
      Alcotest.(check int) "row width matches header"
        (List.length header) (List.length row))
    rows

let suite =
  ( "explore",
    [ Alcotest.test_case "grid parsing" `Quick test_parse_grid;
      Alcotest.test_case "enumeration order and size" `Quick
        test_enumeration_order_and_size;
      Alcotest.test_case "pareto front" `Quick test_pareto_front;
      Alcotest.test_case "dominance" `Quick test_dominates;
      Alcotest.test_case "gcd sweep fully verified" `Quick
        test_gcd_sweep_verified;
      Alcotest.test_case "warm sweep hits per digest" `Quick
        test_warm_sweep_hits_per_digest;
      Alcotest.test_case "infeasible points are typed" `Quick
        test_infeasible_points_are_typed;
      Alcotest.test_case "driver constraint-infeasible error" `Quick
        test_driver_constraint_infeasible;
      Alcotest.test_case "metrics report" `Quick test_metrics_report ] )
