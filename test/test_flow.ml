(* Asynchronous dataflow (CASH substrate) tests: circuit construction,
   timed token simulation, and the async-vs-sync timing relationships
   experiment E6 relies on. *)

let ssa_of src ~entry =
  let program = Typecheck.parse_and_check src in
  let lowered = Lower.lower_program program ~entry in
  Ssa.of_func lowered.Lower.func

let test_dfg_structure () =
  let ssa =
    ssa_of
      "int f(int n) { int s = 0; for (int i = 0; i < n; i = i + 1) { s = s + i; } return s; }"
      ~entry:"f"
  in
  let circuit = Dfg.of_ssa ssa in
  let stats = Dfg.stats circuit in
  Alcotest.(check bool) "has operators" true (stats.Dfg.operators > 0);
  (* the loop introduces merge (mu) nodes for s and i at the header *)
  Alcotest.(check bool) "has merges for the loop" true (stats.Dfg.merges >= 2);
  Alcotest.(check bool) "has a steer for the exit test" true
    (stats.Dfg.steers >= 1);
  Alcotest.(check bool) "area positive" true (Dfg.area circuit > 0.)

let test_asim_equivalence () =
  List.iter
    (fun (w : Workloads.t) ->
      let ssa = ssa_of w.Workloads.source ~entry:w.Workloads.entry in
      List.iter
        (fun args ->
          let expected = Workloads.reference w args in
          let outcome = Asim.run ssa ~args:(Design.int_args args) in
          Alcotest.(check (option int))
            (Printf.sprintf "asim %s" w.Workloads.name)
            (Some expected)
            (Option.map Bitvec.to_int outcome.Asim.return_value))
        w.Workloads.arg_sets)
    Workloads.sequential

let test_asim_parallelism () =
  (* two independent chains complete in ~max time, not the sum: the
     dataflow machine runs them concurrently *)
  let serial =
    ssa_of
      "int f(int a) { int x = a; x = x * x; x = x * x; x = x * x; x = x * x; return x; }"
      ~entry:"f"
  in
  let parallel =
    ssa_of
      {|
      int f(int a) {
        int x = a * a;
        int y = (a + 1) * (a + 1);
        int z = (a + 2) * (a + 2);
        int w = (a + 3) * (a + 3);
        return x + y + z + w;
      }
      |}
      ~entry:"f"
  in
  let time ssa =
    (Asim.run ssa ~args:[ Bitvec.of_int ~width:64 3 ]).Asim.completion_time
  in
  (* serial: 4 dependent multiplies; parallel: 4 independent multiplies,
     then an add tree — must be clearly faster despite more operations *)
  Alcotest.(check bool)
    (Printf.sprintf "parallel (%.1f) < serial (%.1f)" (time parallel)
       (time serial))
    true
    (time parallel < time serial)

let test_asim_memory_serialization () =
  (* stores to the same region serialize via memory tokens *)
  let ssa =
    ssa_of
      {|
      int buf[4];
      int f(int a) {
        buf[0] = a;
        buf[1] = a + 1;
        buf[2] = a + 2;
        int x = buf[0] + buf[1] + buf[2];
        return x;
      }
      |}
      ~entry:"f"
  in
  let outcome = Asim.run ssa ~args:[ Bitvec.of_int ~width:64 10 ] in
  Alcotest.(check (option int)) "memory tokens preserve order" (Some 33)
    (Option.map Bitvec.to_int outcome.Asim.return_value);
  (* 3 serialized stores bound completion from below: latency(store) = 3,
     handshake = 2 -> at least 15 units *)
  Alcotest.(check bool) "stores serialized in time" true
    (outcome.Asim.completion_time >= 15.)

let test_async_beats_worstcase_clock () =
  (* E6's core claim: a synchronous design pays the worst-case state delay
     every cycle, the asynchronous one pays actual operator latencies.
     Verify time(async) < cycles(sync) x period(sync) on gcd, whose cycle
     mixes cheap moves with an expensive remainder. *)
  let w = Workloads.gcd in
  let program = Workloads.parse w in
  let async = Chls.compile_program (Registry.get "cash") program ~entry:"gcd" in
  let sync =
    Chls.compile_program (Registry.get "transmogrifier") program ~entry:"gcd"
  in
  List.iter
    (fun args ->
      let ra = async.Design.run (Design.int_args args) in
      let rs = sync.Design.run (Design.int_args args) in
      let async_time = Option.get ra.Design.time_units in
      let sync_time =
        float_of_int (Option.get rs.Design.cycles)
        *. Option.get sync.Design.clock_period
      in
      Alcotest.(check bool)
        (Printf.sprintf "async %.0f < sync %.0f on gcd%s" async_time sync_time
           (String.concat "," (List.map string_of_int args)))
        true
        (async_time < sync_time))
    w.Workloads.arg_sets

let test_tokens_counted () =
  let ssa = ssa_of (Workloads.fib).Workloads.source ~entry:"fib" in
  let o5 = Asim.run ssa ~args:[ Bitvec.of_int ~width:64 5 ] in
  let o20 = Asim.run ssa ~args:[ Bitvec.of_int ~width:64 20 ] in
  Alcotest.(check bool) "more iterations fire more tokens" true
    (o20.Asim.tokens_fired > o5.Asim.tokens_fired)

let suite =
  ( "flow",
    [ Alcotest.test_case "dfg structure" `Quick test_dfg_structure;
      Alcotest.test_case "asim equivalence" `Quick test_asim_equivalence;
      Alcotest.test_case "asim parallelism" `Quick test_asim_parallelism;
      Alcotest.test_case "asim memory serialization" `Quick
        test_asim_memory_serialization;
      Alcotest.test_case "async beats worst-case clock" `Quick
        test_async_beats_worstcase_clock;
      Alcotest.test_case "tokens counted" `Quick test_tokens_counted ] )
