(* Config as a first-class value: the canonical rendering is pinned
   against a golden string (changing it invalidates persisted caches —
   exactly when it should change), distinct knob points get distinct
   digests, the digest keys the design cache front-to-disk, and two
   domains compiling under different options concurrently never bleed
   into each other (the satellite for the old Passes.set_options race). *)

let gcd_w = Workloads.gcd

let golden_render =
  "chls.config/1;adders=2;multipliers=1;dividers=1;shifters=1;\
   mem_read_ports=1;mem_write_ports=1;chain_budget=20;\
   mem_forwarding=false;unroll=1;ii_limit=4096;verify=;dump_after=;\
   sim=compiled"

let golden_digest = "3887f3d160870b0be2ca39a3dc900d24"

let test_render_golden () =
  Alcotest.(check string) "default renders canonically" golden_render
    (Config.render Config.default);
  Alcotest.(check string) "digest is pinned" golden_digest
    (Config.digest Config.default);
  Alcotest.(check string) "digest = md5(render)"
    (Digest.to_hex (Digest.string (Config.render Config.default)))
    (Config.digest Config.default)

let test_digests_distinguish_knobs () =
  let d = Config.default in
  let variants =
    [ ("unroll", { d with Config.unroll_factor = 2 });
      ("ii limit", { d with Config.ii_limit = 8 });
      ("verify", { d with Config.verify = [ [ 1; 2 ] ] });
      ("dump", { d with Config.dump_after = [ "simplify" ] });
      ("sim", { d with Config.sim = Design.Event_driven });
      ( "adders",
        Config.with_resources
          { Schedule.default_allocation with Schedule.adders = Some 1 }
          d );
      ( "unbounded adders",
        Config.with_resources
          { Schedule.default_allocation with Schedule.adders = None }
          d );
      ( "chain",
        Config.with_resources
          { Schedule.default_allocation with Schedule.chain_budget = 10. }
          d ) ]
  in
  List.iter
    (fun (what, c) ->
      Alcotest.(check bool)
        (what ^ " changes the digest")
        true
        (Config.digest c <> Config.digest d))
    variants;
  (* every pair distinct too: the rendering separates fields *)
  let digests = List.map (fun (_, c) -> Config.digest c) variants in
  Alcotest.(check int) "all variant digests distinct"
    (List.length digests)
    (List.length (List.sort_uniq compare digests))

let test_dump_sink_is_not_identity () =
  let buf = Buffer.create 16 in
  let c = { Config.default with Config.dump_sink = Buffer.add_string buf } in
  Alcotest.(check string) "sink never renders"
    (Config.digest Config.default) (Config.digest c);
  Alcotest.(check bool) "equal modulo sink" true
    (Config.equal Config.default c)

let test_knobs_mapping () =
  let resources =
    { Schedule.default_allocation with
      Schedule.adders = Some 1;
      chain_budget = 12.5 }
  in
  let c =
    { Config.default with
      Config.resources;
      unroll_factor = 3;
      ii_limit = 7;
      verify = [ [ 4 ] ];
      dump_after = [ "simplify" ] }
  in
  let k = Config.knobs c in
  Alcotest.(check bool) "resources forwarded" true
    (k.Backend.resources = resources);
  Alcotest.(check int) "unroll forwarded" 3 k.Backend.unroll_factor;
  Alcotest.(check int) "ii limit forwarded" 7 k.Backend.ii_limit;
  Alcotest.(check bool) "verify vectors forwarded" true
    (k.Backend.pass_options.Passes.verify = [ [ 4 ] ]);
  Alcotest.(check bool) "dump passes forwarded" true
    (k.Backend.pass_options.Passes.dump_after = [ "simplify" ])

let test_json_round_trip () =
  let c =
    { Config.default with
      Config.resources =
        { Schedule.default_allocation with
          Schedule.adders = None;
          multipliers = Some 3;
          chain_budget = 7.5;
          mem_forwarding = true };
      unroll_factor = 4;
      ii_limit = 16;
      verify = [ [ 1; 2 ]; [ -3 ] ];
      sim = Design.Full_sweep }
  in
  match Config.of_json (Config.to_json c) with
  | Error msg -> Alcotest.fail msg
  | Ok c' ->
    Alcotest.(check string) "round trip preserves the digest"
      (Config.digest c) (Config.digest c')

let test_of_json_errors () =
  let parse s =
    match Serve.Json.parse s with
    | Ok j -> Config.of_json j
    | Error msg -> Alcotest.fail ("probe JSON does not parse: " ^ msg)
  in
  (match parse "{}" with
  | Ok c ->
    Alcotest.(check string) "empty object is the default"
      (Config.digest Config.default) (Config.digest c)
  | Error msg -> Alcotest.fail msg);
  (match parse "{\"adders\": null, \"unroll\": 2}" with
  | Ok c ->
    Alcotest.(check bool) "null bound is unconstrained" true
      (c.Config.resources.Schedule.adders = None);
    Alcotest.(check int) "unroll parsed" 2 c.Config.unroll_factor
  | Error msg -> Alcotest.fail msg);
  List.iter
    (fun (what, json) ->
      match parse json with
      | Ok _ -> Alcotest.fail (what ^ ": should be rejected")
      | Error _ -> ())
    [ ("typo field", "{\"addres\": 1}");
      ("zero bound", "{\"adders\": 0}");
      ("bad unroll", "{\"unroll\": \"two\"}");
      ("bad sim", "{\"sim\": \"quantum\"}");
      ("non-object", "[1,2]") ]

(* --- the digest keys the design cache ---------------------------------- *)

let counter session key =
  match Metrics.find (Driver.metrics session) key with
  | Some (Metrics.Int n) -> n
  | _ -> 0

let compile_cfg session config backend =
  match Driver.compile ~config session backend with
  | Ok d -> d
  | Error e -> Alcotest.fail (Driver.render_error e)

let test_two_configs_two_front_entries () =
  Driver.clear_cache ();
  let bachc = Registry.get "bachc" in
  let s = Driver.create ~entry:gcd_w.Workloads.entry gcd_w.Workloads.source in
  let ca = Config.default in
  let cb =
    Config.with_resources
      { Schedule.default_allocation with Schedule.chain_budget = 200. }
      Config.default
  in
  let da = compile_cfg s ca bachc in
  let db = compile_cfg s cb bachc in
  Alcotest.(check int) "two distinct configs, two compiles" 2
    (counter s "driver.cache.design_misses");
  Alcotest.(check int) "two front entries" 2 (Driver.cache_size ());
  (* warm: each config digest hits its own memoized design *)
  let da' = compile_cfg s ca bachc in
  let db' = compile_cfg s cb bachc in
  Alcotest.(check int) "re-compiles are hits" 2
    (counter s "driver.cache.design_hits");
  Alcotest.(check bool) "config A memo is physical" true (da == da');
  Alcotest.(check bool) "config B memo is physical" true (db == db');
  Alcotest.(check bool) "distinct designs per config" true (not (da == db));
  (* both configs produced correct hardware *)
  List.iter
    (fun args ->
      let expected = Workloads.reference gcd_w args in
      Alcotest.(check (option int)) "config A agrees" (Some expected)
        (Design.run_int da args);
      Alcotest.(check (option int)) "config B agrees" (Some expected)
        (Design.run_int db args))
    gcd_w.Workloads.arg_sets

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "chlsc-config-test-%d-%d" (Unix.getpid ()) !n)
    in
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    dir

let test_two_configs_two_disk_entries () =
  let dir = fresh_dir () in
  let previous = Driver.cache_store () in
  Fun.protect
    ~finally:(fun () ->
      Driver.set_cache_store previous;
      Driver.clear_cache ())
    (fun () ->
      (match Driver.attach_disk_cache ~dir () with
      | Ok _ -> ()
      | Error msg -> Alcotest.fail msg);
      Driver.clear_cache ();
      let bachc = Registry.get "bachc" in
      let ca = Config.default in
      let cb = { Config.default with Config.unroll_factor = 2 } in
      let compile config =
        let s =
          Driver.create ~entry:gcd_w.Workloads.entry gcd_w.Workloads.source
        in
        (s, compile_cfg s config bachc)
      in
      let _, da = compile ca in
      let _, db = compile cb in
      let store =
        match Driver.cache_store () with
        | Some s -> s
        | None -> Alcotest.fail "store vanished"
      in
      Alcotest.(check int) "one disk entry per config digest" 2
        (List.length (Cache.store_keys store));
      (* simulated restart: the front tier drops, the store answers one
         hit per distinct config *)
      Driver.clear_cache ();
      let s1, da' = compile ca in
      let s2, db' = compile cb in
      Alcotest.(check int) "config A revives from disk" 1
        (counter s1 "driver.cache.design_store_hits");
      Alcotest.(check int) "config B revives from disk" 1
        (counter s2 "driver.cache.design_store_hits");
      List.iter
        (fun args ->
          Alcotest.(check (option int)) "A bit-identical across restart"
            (Design.run_int da args) (Design.run_int da' args);
          Alcotest.(check (option int)) "B bit-identical across restart"
            (Design.run_int db args) (Design.run_int db' args))
        gcd_w.Workloads.arg_sets)

(* --- no options bleed across domains ----------------------------------- *)

(* Two domains compile the same source concurrently, one with dumps and
   verification on, one with everything off.  Under the old global
   Passes.set_options this raced; with per-compile configs the quiet
   domain's sink must never fire. *)
let test_no_options_bleed_across_domains () =
  Driver.clear_cache ();
  let bachc = Registry.get "bachc" in
  let rounds = 8 in
  let noisy_dumps = Atomic.make 0 in
  let quiet_dumps = Atomic.make 0 in
  let failures = Atomic.make 0 in
  let compile_round config i =
    (* a distinct source per round so every compile really runs the
       passes (cache hits would skip them and hide a race) *)
    let source =
      Printf.sprintf
        "int f(int a, int b) { int k = %d; while (b != 0) { int t = b; b = \
         a %% b; a = t; } return a + k; }"
        i
    in
    let s = Driver.create ~entry:"f" source in
    match Driver.compile ~config s bachc with
    | Ok _ -> ()
    | Error _ -> Atomic.incr failures
  in
  let noisy () =
    for i = 0 to rounds - 1 do
      let config =
        { Config.default with
          Config.verify = [ [ 12; 18 ] ];
          dump_after = [ "simplify" ];
          dump_sink = (fun _ -> Atomic.incr noisy_dumps) }
      in
      compile_round config i
    done
  in
  let quiet () =
    for i = 0 to rounds - 1 do
      let config =
        { Config.default with
          Config.dump_sink = (fun _ -> Atomic.incr quiet_dumps) }
      in
      compile_round config i
    done
  in
  let d = Domain.spawn noisy in
  quiet ();
  Domain.join d;
  Alcotest.(check int) "no compile failed" 0 (Atomic.get failures);
  Alcotest.(check int) "noisy domain dumped every round" rounds
    (Atomic.get noisy_dumps);
  Alcotest.(check int) "quiet domain never saw a dump" 0
    (Atomic.get quiet_dumps)

let suite =
  ( "config",
    [ Alcotest.test_case "golden render and digest" `Quick test_render_golden;
      Alcotest.test_case "digests distinguish knobs" `Quick
        test_digests_distinguish_knobs;
      Alcotest.test_case "dump sink excluded from identity" `Quick
        test_dump_sink_is_not_identity;
      Alcotest.test_case "knobs mapping" `Quick test_knobs_mapping;
      Alcotest.test_case "json round trip" `Quick test_json_round_trip;
      Alcotest.test_case "of_json rejects malformed input" `Quick
        test_of_json_errors;
      Alcotest.test_case "two configs, two front entries" `Quick
        test_two_configs_two_front_entries;
      Alcotest.test_case "two configs, two disk entries" `Quick
        test_two_configs_two_disk_entries;
      Alcotest.test_case "no options bleed across domains" `Quick
        test_no_options_bleed_across_domains ] )
