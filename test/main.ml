let () =
  Alcotest.run "chls"
    [ Test_bitvec.suite; Test_front.suite; Test_front_edge.suite; Test_interp.suite; Test_interp_edge.suite; Test_ir.suite; Test_ssa.suite;
      Test_backends.suite; Test_sched.suite; Test_flow.suite; Test_rtl.suite;
      Test_workloads.suite; Test_ifconv.suite; Test_c2v.suite; Test_facade.suite;
      Test_passes.suite; Test_random.suite; Test_simcomp.suite; Test_obs.suite;
      Test_conc.suite; Test_registry.suite; Test_driver.suite; Test_cache.suite;
      Test_serve.suite; Test_span.suite; Test_fuzz.suite;
      Test_config.suite; Test_explore.suite ]
