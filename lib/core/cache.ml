(* The artifact-cache subsystem.  See cache.mli.

   Entry file format (Disk):

     chlsc-cache/1 <version> <payload-md5> <payload-len> <key-len>\n
     <key bytes><payload bytes>

   The header is one ASCII line so `head -1` on an entry is meaningful;
   everything after it is raw bytes.  A reader validates the magic, the
   store version, the key (digest-named files could collide across keys)
   and the payload checksum; any failure deletes the entry and counts as
   a miss.  Writes go to a temp file in the same directory and rename
   into place, so a concurrently reading worker only ever sees complete
   entries. *)

type counters = {
  hits : int;
  misses : int;
  puts : int;
  evictions : int;
  corrupt : int;
  version_skew : int;
  entries : int;
  bytes : int;
}

module type STORE = sig
  type t

  val name : t -> string
  val find : t -> string -> string option
  val put : t -> string -> string -> unit
  val delete : t -> string -> unit
  val clear : t -> unit
  val keys : t -> string list
  val counters : t -> counters
end

type store = Store : (module STORE with type t = 'a) * 'a -> store

let store_name (Store ((module S), s)) = S.name s
let store_find (Store ((module S), s)) key = S.find s key
let store_put (Store ((module S), s)) key v = S.put s key v
let store_delete (Store ((module S), s)) key = S.delete s key
let store_clear (Store ((module S), s)) = S.clear s
let store_keys (Store ((module S), s)) = S.keys s
let store_counters (Store ((module S), s)) = S.counters s

(* --- shared LRU accounting ---

   Key recency as a list (most recent first) plus per-key payload sizes.
   Entry counts are small (designs, not blocks), so O(n) touch is fine
   and keeps the order directly testable. *)

module Lru = struct
  type t = {
    mutable order : string list; (* MRU first *)
    sizes : (string, int) Hashtbl.t;
    mutable total : int;
  }

  let create () = { order = []; sizes = Hashtbl.create 32; total = 0 }
  let mem t key = Hashtbl.mem t.sizes key

  let remove t key =
    match Hashtbl.find_opt t.sizes key with
    | None -> ()
    | Some sz ->
      Hashtbl.remove t.sizes key;
      t.total <- t.total - sz;
      t.order <- List.filter (fun k -> k <> key) t.order

  let add t key size =
    remove t key;
    Hashtbl.replace t.sizes key size;
    t.total <- t.total + size;
    t.order <- key :: t.order

  let touch t key =
    if mem t key then t.order <- key :: List.filter (fun k -> k <> key) t.order

  let lru t = match List.rev t.order with [] -> None | k :: _ -> Some k
  let keys_lru_first t = List.rev t.order

  let clear t =
    t.order <- [];
    Hashtbl.reset t.sizes;
    t.total <- 0
end

(* Mutable counter cell shared by both stores. *)
type counts = {
  mutable c_hits : int;
  mutable c_misses : int;
  mutable c_puts : int;
  mutable c_evictions : int;
  mutable c_corrupt : int;
  mutable c_skew : int;
}

let fresh_counts () =
  { c_hits = 0; c_misses = 0; c_puts = 0; c_evictions = 0; c_corrupt = 0;
    c_skew = 0 }

let snapshot c ~entries ~bytes =
  { hits = c.c_hits;
    misses = c.c_misses;
    puts = c.c_puts;
    evictions = c.c_evictions;
    corrupt = c.c_corrupt;
    version_skew = c.c_skew;
    entries;
    bytes }

(* --- the in-memory byte store --- *)

module Memory = struct
  type t = {
    table : (string, string) Hashtbl.t;
    lru : Lru.t;
    max_bytes : int option;
    counts : counts;
    lock : Mutex.t;
  }

  let create ?max_bytes () =
    { table = Hashtbl.create 64;
      lru = Lru.create ();
      max_bytes;
      counts = fresh_counts ();
      lock = Mutex.create () }

  let locked t f =
    Mutex.lock t.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

  let name _ = "memory"

  let find t key =
    locked t (fun () ->
        match Hashtbl.find_opt t.table key with
        | Some v ->
          t.counts.c_hits <- t.counts.c_hits + 1;
          Lru.touch t.lru key;
          Some v
        | None ->
          t.counts.c_misses <- t.counts.c_misses + 1;
          None)

  let evict_to_fit t =
    match t.max_bytes with
    | None -> ()
    | Some budget ->
      let rec go () =
        if t.lru.Lru.total > budget then
          match Lru.lru t.lru with
          | None -> ()
          | Some victim ->
            Hashtbl.remove t.table victim;
            Lru.remove t.lru victim;
            t.counts.c_evictions <- t.counts.c_evictions + 1;
            go ()
      in
      go ()

  let put t key v =
    locked t (fun () ->
        Hashtbl.replace t.table key v;
        Lru.add t.lru key (String.length v);
        t.counts.c_puts <- t.counts.c_puts + 1;
        evict_to_fit t)

  let delete t key =
    locked t (fun () ->
        Hashtbl.remove t.table key;
        Lru.remove t.lru key)

  let clear t =
    locked t (fun () ->
        Hashtbl.reset t.table;
        Lru.clear t.lru)

  let keys t = locked t (fun () -> Lru.keys_lru_first t.lru)

  let counters t =
    locked t (fun () ->
        snapshot t.counts ~entries:(Hashtbl.length t.table)
          ~bytes:t.lru.Lru.total)

  let store t = Store ((module struct
    type nonrec t = t

    let name = name
    let find = find
    let put = put
    let delete = delete
    let clear = clear
    let keys = keys
    let counters = counters
  end), t)
end

(* --- the persistent on-disk byte store --- *)

module Disk = struct
  let magic = "chlsc-cache/1"
  let default_max_bytes = 256 * 1024 * 1024

  (* Closures marshalled by one binary only resolve in that binary, so
     the executable digest is the store version: any rebuild invalidates
     (degrades to a miss), never crashes. *)
  let default_version =
    let v = lazy (
      match Digest.to_hex (Digest.file Sys.executable_name) with
      | d -> d
      | exception _ -> "unversioned")
    in
    fun () -> Lazy.force v

  type t = {
    dir : string;
    version : string;
    max_bytes : int;
    lru : Lru.t;
    counts : counts;
    lock : Mutex.t;
  }

  let dir t = t.dir
  let name _ = "disk"

  let entry_file t key = Filename.concat t.dir (Digest.to_hex (Digest.string key) ^ ".entry")

  let header ~version ~payload ~key =
    Printf.sprintf "%s %s %s %d %d\n" magic version
      (Digest.to_hex (Digest.string payload))
      (String.length payload) (String.length key)

  (* Read and fully validate one entry file.  [`Corrupt] covers every
     malformed shape; [`Skew] is a well-formed entry from another store
     version. *)
  let read_entry ~version path =
    match In_channel.with_open_bin path In_channel.input_all with
    | exception _ -> `Corrupt
    | contents -> (
      match String.index_opt contents '\n' with
      | None -> `Corrupt
      | Some nl -> (
        let head = String.sub contents 0 nl in
        match String.split_on_char ' ' head with
        | [ m; v; md5; plen; klen ] -> (
          match (int_of_string_opt plen, int_of_string_opt klen) with
          | Some plen, Some klen ->
            if m <> magic then `Corrupt
            else if v <> version then `Skew
            else if String.length contents <> nl + 1 + klen + plen then
              `Corrupt
            else
              let key = String.sub contents (nl + 1) klen in
              let payload = String.sub contents (nl + 1 + klen) plen in
              if Digest.to_hex (Digest.string payload) <> md5 then `Corrupt
              else `Entry (key, payload)
          | _ -> `Corrupt)
        | _ -> `Corrupt))

  let try_remove path = try Sys.remove path with _ -> ()

  let open_dir ?(max_bytes = default_max_bytes) ?version dir =
    let version =
      match version with Some v -> v | None -> default_version ()
    in
    let rec mkdirs d =
      if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
        mkdirs (Filename.dirname d);
        try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
      end
    in
    match
      mkdirs dir;
      Sys.readdir dir
    with
    | exception e ->
      Error
        (Printf.sprintf "cache dir %s: %s" dir (Printexc.to_string e))
    | files ->
      let t =
        { dir; version; max_bytes; lru = Lru.create ();
          counts = fresh_counts (); lock = Mutex.create () }
      in
      (* index resident entries, oldest mtime first so the initial
         recency order survives restarts; skewed or invalid entries are
         dead weight — delete and count them *)
      let entries =
        Array.to_list files
        |> List.filter (fun f -> Filename.check_suffix f ".entry")
        |> List.filter_map (fun f ->
               let path = Filename.concat dir f in
               match Unix.stat path with
               | { Unix.st_mtime; _ } -> Some (path, st_mtime)
               | exception _ -> None)
        |> List.sort (fun (_, a) (_, b) -> compare (a : float) b)
      in
      List.iter
        (fun (path, _) ->
          match read_entry ~version path with
          | `Entry (key, payload) -> Lru.add t.lru key (String.length payload)
          | `Skew ->
            t.counts.c_skew <- t.counts.c_skew + 1;
            try_remove path
          | `Corrupt ->
            t.counts.c_corrupt <- t.counts.c_corrupt + 1;
            try_remove path)
        entries;
      Ok t

  let locked t f =
    Mutex.lock t.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

  let touch_mtime path =
    (* best-effort: cross-process restarts rebuild recency from mtimes *)
    try Unix.utimes path 0. 0. with _ -> ()

  let evict_to_fit t =
    let rec go () =
      if t.lru.Lru.total > t.max_bytes then
        match Lru.lru t.lru with
        | None -> ()
        | Some victim ->
          try_remove (entry_file t victim);
          Lru.remove t.lru victim;
          t.counts.c_evictions <- t.counts.c_evictions + 1;
          go ()
    in
    go ()

  let find t key =
    locked t (fun () ->
        let path = entry_file t key in
        (* probe the file even on an index miss: another worker sharing
           the directory may have written the entry after we opened *)
        if (not (Lru.mem t.lru key)) && not (Sys.file_exists path) then begin
          t.counts.c_misses <- t.counts.c_misses + 1;
          None
        end
        else
          match read_entry ~version:t.version path with
          | `Entry (k, payload) when k = key ->
            t.counts.c_hits <- t.counts.c_hits + 1;
            Lru.add t.lru key (String.length payload);
            Lru.touch t.lru key;
            touch_mtime path;
            Some payload
          | `Entry _ (* digest collision with a different key *) | `Corrupt ->
            t.counts.c_corrupt <- t.counts.c_corrupt + 1;
            t.counts.c_misses <- t.counts.c_misses + 1;
            try_remove path;
            Lru.remove t.lru key;
            None
          | `Skew ->
            t.counts.c_skew <- t.counts.c_skew + 1;
            t.counts.c_misses <- t.counts.c_misses + 1;
            try_remove path;
            Lru.remove t.lru key;
            None)

  let put t key payload =
    locked t (fun () ->
        let path = entry_file t key in
        let tmp =
          Printf.sprintf "%s.tmp.%d" path (Unix.getpid ())
        in
        let ok =
          try
            Out_channel.with_open_bin tmp (fun oc ->
                output_string oc (header ~version:t.version ~payload ~key);
                output_string oc key;
                output_string oc payload);
            Sys.rename tmp path;
            true
          with _ ->
            try_remove tmp;
            false
        in
        if ok then begin
          Lru.add t.lru key (String.length payload);
          t.counts.c_puts <- t.counts.c_puts + 1;
          evict_to_fit t
        end)

  let delete t key =
    locked t (fun () ->
        try_remove (entry_file t key);
        Lru.remove t.lru key)

  let clear t =
    locked t (fun () ->
        List.iter
          (fun key -> try_remove (entry_file t key))
          (Lru.keys_lru_first t.lru);
        Lru.clear t.lru)

  let keys t = locked t (fun () -> Lru.keys_lru_first t.lru)

  let counters t =
    locked t (fun () ->
        snapshot t.counts
          ~entries:(List.length t.lru.Lru.order)
          ~bytes:t.lru.Lru.total)

  let store t = Store ((module struct
    type nonrec t = t

    let name = name
    let find = find
    let put = put
    let delete = delete
    let clear = clear
    let keys = keys
    let counters = counters
  end), t)
end

(* --- the decoded front cache --- *)

type 'a t = {
  f_name : string;
  encode : 'a -> string option;
  decode : string -> 'a option;
  front : (string, 'a) Hashtbl.t;
  mutable backing : store option;
  mutable undecodable : int;
  mutable f_hits : int;
  mutable f_misses : int;
  lock : Mutex.t;
}

let create ~name ~encode ~decode ?store () =
  { f_name = name;
    encode;
    decode;
    front = Hashtbl.create 64;
    backing = store;
    undecodable = 0;
    f_hits = 0;
    f_misses = 0;
    lock = Mutex.create () }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let set_store t s = locked t (fun () -> t.backing <- s)
let store t = locked t (fun () -> t.backing)
let size t = locked t (fun () -> Hashtbl.length t.front)
let decode_failures t = locked t (fun () -> t.undecodable)
let clear t = locked t (fun () -> Hashtbl.reset t.front)

let front_hits t = locked t (fun () -> t.f_hits)
let front_misses t = locked t (fun () -> t.f_misses)

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.front key with
      | Some v ->
        t.f_hits <- t.f_hits + 1;
        Some (v, `Front)
      | None -> (
        t.f_misses <- t.f_misses + 1;
        match t.backing with
        | None -> None
        | Some s -> (
          match store_find s key with
          | None -> None
          | Some payload -> (
            match t.decode payload with
            | Some v ->
              Hashtbl.replace t.front key v;
              Some (v, `Store)
            | None ->
              (* validated bytes the codec cannot revive: drop the entry
                 so it never costs another decode attempt *)
              t.undecodable <- t.undecodable + 1;
              store_delete s key;
              None))))

let add t key v =
  locked t (fun () ->
      Hashtbl.replace t.front key v;
      match t.backing with
      | None -> ()
      | Some s -> (
        match t.encode v with
        | Some payload -> store_put s key payload
        | None -> ()))
