(* CHLS public facade.

   One entry point for everything the library does: parse and check a
   C-like source, pick a surveyed language (a backend), synthesize a
   design, simulate it, and compare against the software oracle.

   Backends are no longer a closed variant: {!Registry} holds the
   descriptors and [backend] is a thin registry handle.  The function
   names below survive as one-line wrappers so old call sites keep
   reading naturally; multi-backend work should go through {!Driver},
   which parses once and caches designs by content. *)

type backend = Registry.t

let backend_name = Registry.name
let backend_of_name = Registry.find
let dialect_of = Registry.dialect
let pipeline_of = Registry.pipeline

(** Backends that compile C sources (Ocapi builds hardware structurally
    from OCaml instead). *)
let all_compiling_backends = Registry.compiling ()

(** Parse and type-check a source string. *)
let parse = Typecheck.parse_and_check

(** Can this (checked) program be compiled by this backend? *)
let accepts backend program = Dialect.check (dialect_of backend) program = []

(** Synthesize a checked program with the chosen backend. *)
let compile_program backend (program : Ast.program) ~entry : Design.t =
  Registry.compile backend program ~entry

(** Parse, check and synthesize in one step. *)
let compile backend source ~entry =
  compile_program backend (parse source) ~entry

(** Run the software oracle on a source. *)
let reference source ~entry ~args = Interp.run_int source ~entry ~args

type verification = {
  vector : int list;
  expected : int;
  observed : int option;
  agrees : bool;
}

(** Check a design against the software semantics on argument vectors. *)
let verify_against_reference design source ~entry ~arg_sets =
  List.map
    (fun args ->
      let expected = reference source ~entry ~args in
      let observed = Design.run_int design args in
      { vector = args; expected; observed; agrees = observed = Some expected })
    arg_sets

(* --- the paper's Table 1, regenerated --- *)

let render_table1 () =
  let header =
    [ "Language"; "Year"; "Concurrency"; "Timing"; "Characterisation (Table 1)" ]
  in
  let rows =
    List.map
      (fun (d : Dialect.t) ->
        [ d.Dialect.name;
          string_of_int d.Dialect.year;
          Dialect.string_of_concurrency d.Dialect.concurrency;
          Dialect.string_of_timing d.Dialect.timing;
          d.Dialect.characterisation ])
      Dialect.table1
  in
  (* column widths come from the data so no cell is ever truncated; the
     last column is left unpadded *)
  let widths =
    List.fold_left
      (fun ws row -> List.map2 (fun w c -> max w (String.length c)) ws row)
      (List.map String.length header)
      rows
  in
  let buf = Buffer.create 1024 in
  let emit row =
    let n = List.length row in
    List.iteri
      (fun i (w, c) ->
        if i = n - 1 then Buffer.add_string buf c
        else begin
          Buffer.add_string buf c;
          Buffer.add_string buf (String.make (w - String.length c + 1) ' ')
        end)
      (List.combine widths row);
    Buffer.add_char buf '\n'
  in
  emit header;
  Buffer.add_string buf
    (String.make
       (List.fold_left ( + ) 0 widths + List.length widths - 1)
       '-');
  Buffer.add_char buf '\n';
  List.iter emit rows;
  Buffer.contents buf
