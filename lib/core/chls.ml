(* CHLS public facade.

   One entry point for everything the library does: parse and check a
   C-like source, pick a surveyed language (a backend), synthesize a
   design, simulate it, and compare against the software oracle.  The
   examples, tests, CLI and benchmarks all go through this module. *)

type backend =
  | Cones_backend
  | Hardwarec_backend
  | Transmogrifier_backend
  | Systemc_backend
  | Ocapi_backend (* structural EDSL: no C frontend; see Ocapi directly *)
  | C2verilog_backend
  | Cyber_backend
  | Handelc_backend
  | Specc_backend
  | Bachc_backend
  | Cash_backend

let backend_name = function
  | Cones_backend -> "cones"
  | Hardwarec_backend -> "hardwarec"
  | Transmogrifier_backend -> "transmogrifier"
  | Systemc_backend -> "systemc"
  | Ocapi_backend -> "ocapi"
  | C2verilog_backend -> "c2verilog"
  | Cyber_backend -> "cyber"
  | Handelc_backend -> "handelc"
  | Specc_backend -> "specc"
  | Bachc_backend -> "bachc"
  | Cash_backend -> "cash"

let backend_of_name name =
  match String.lowercase_ascii name with
  | "cones" -> Some Cones_backend
  | "hardwarec" -> Some Hardwarec_backend
  | "transmogrifier" | "tmcc" -> Some Transmogrifier_backend
  | "systemc" -> Some Systemc_backend
  | "c2verilog" | "c2v" -> Some C2verilog_backend
  | "cyber" | "bdl" -> Some Cyber_backend
  | "handelc" | "handel-c" -> Some Handelc_backend
  | "specc" -> Some Specc_backend
  | "bachc" | "bach" -> Some Bachc_backend
  | "cash" -> Some Cash_backend
  | _ -> None

(** Backends that compile C sources (Ocapi builds hardware structurally
    from OCaml instead). *)
let all_compiling_backends =
  [ Cones_backend; Hardwarec_backend; Transmogrifier_backend;
    Systemc_backend; C2verilog_backend; Cyber_backend; Handelc_backend;
    Specc_backend; Bachc_backend; Cash_backend ]

(** Parse and type-check a source string. *)
let parse = Typecheck.parse_and_check

(** The dialect a backend implements (for legality checking). *)
let dialect_of = function
  | Cones_backend -> Dialect.cones
  | Hardwarec_backend -> Dialect.hardwarec
  | Transmogrifier_backend -> Dialect.transmogrifier
  | Systemc_backend -> Dialect.systemc
  | Ocapi_backend -> Dialect.ocapi
  | C2verilog_backend -> Dialect.c2verilog
  | Cyber_backend -> Dialect.cyber
  | Handelc_backend -> Dialect.handelc
  | Specc_backend -> Dialect.specc
  | Bachc_backend -> Dialect.bachc
  | Cash_backend -> Dialect.cash

(** Can this (checked) program be compiled by this backend? *)
let accepts backend program = Dialect.check (dialect_of backend) program = []

(** The pipeline a backend declares to the pass manager ([None] for the
    structural Ocapi EDSL, which runs no compilation pipeline). *)
let pipeline_of = function
  | Cones_backend -> Some Cones.pipeline
  | Hardwarec_backend -> Some Hardwarec.pipeline
  | Transmogrifier_backend -> Some Transmogrifier.pipeline
  | Systemc_backend -> Some Systemc.pipeline
  | Ocapi_backend -> None
  | C2verilog_backend -> Some C2v_machine.pipeline
  | Cyber_backend -> Some Bachc.pipeline
  | Handelc_backend -> Some Handelc.pipeline
  | Specc_backend -> Some Specc.pipeline
  | Bachc_backend -> Some Bachc.pipeline
  | Cash_backend -> Some Cash.pipeline

(** Synthesize a checked program with the chosen backend. *)
let compile_program backend (program : Ast.program) ~entry : Design.t =
  match backend with
  | Cones_backend -> Cones.compile program ~entry
  | Hardwarec_backend -> fst (Hardwarec.compile program ~entry)
  | Transmogrifier_backend -> Transmogrifier.compile program ~entry
  | Systemc_backend -> Systemc.compile program ~entry
  | Ocapi_backend ->
    failwith "ocapi is a structural EDSL: build designs with the Ocapi module"
  | C2verilog_backend -> C2v_machine.compile program ~entry
  | Cyber_backend -> Bachc.compile_cyber program ~entry
  | Handelc_backend -> Handelc.compile program ~entry
  | Specc_backend -> Specc.compile program ~entry
  | Bachc_backend -> Bachc.compile program ~entry
  | Cash_backend -> Cash.compile program ~entry

(** Parse, check and synthesize in one step. *)
let compile backend source ~entry =
  compile_program backend (parse source) ~entry

(** Run the software oracle on a source. *)
let reference source ~entry ~args = Interp.run_int source ~entry ~args

type verification = {
  vector : int list;
  expected : int;
  observed : int option;
  agrees : bool;
}

(** Check a design against the software semantics on argument vectors. *)
let verify_against_reference design source ~entry ~arg_sets =
  List.map
    (fun args ->
      let expected = reference source ~entry ~args in
      let observed = Design.run_int design args in
      { vector = args; expected; observed; agrees = observed = Some expected })
    arg_sets

(* --- the paper's Table 1, regenerated --- *)

let render_table1 () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-18s %-6s %-24s %-28s %s\n" "Language" "Year"
       "Concurrency" "Timing" "Characterisation (Table 1)");
  Buffer.add_string buf (String.make 110 '-' ^ "\n");
  List.iter
    (fun (d : Dialect.t) ->
      Buffer.add_string buf
        (Printf.sprintf "%-18s %-6d %-24s %-28s %s\n" d.Dialect.name
           d.Dialect.year
           (Dialect.string_of_concurrency d.Dialect.concurrency)
           (let s = Dialect.string_of_timing d.Dialect.timing in
            if String.length s > 28 then String.sub s 0 28 else s)
           d.Dialect.characterisation))
    Dialect.table1;
  Buffer.contents buf
