(** Synthesis configuration as a first-class value.

    The paper's thesis is that C-like HLS lives or dies by its knobs —
    how the designer controls concurrency, timing and resource binding —
    not by the language.  This module makes those knobs one explicit
    record that travels with each compile: the driver folds its
    {!digest} into cache keys (distinct config points are distinct
    cached designs, on disk included), backends receive it as
    {!Backend.knobs}, and [Serve] accepts one per request so sweeps can
    ride the Domain pool.  Nothing reads process-global state on the
    way. *)

type t = {
  resources : Schedule.resources;
      (** functional-unit / memory-port bounds and the chaining (cycle
          time) budget for the scheduling backends *)
  unroll_factor : int;  (** partial loop unrolling; 1 disables *)
  ii_limit : int;
      (** largest initiation interval modulo scheduling may try *)
  verify : int list list;
      (** argument vectors for per-pass differential verification *)
  dump_after : string list;  (** pass names whose output IR to dump *)
  dump_sink : string -> unit;
      (** where dumps go; excluded from {!render}/{!digest} (a closure
          has no canonical form and never affects the produced design) *)
  sim : Design.engine;  (** simulation engine for [Design.run] calls *)
}

val default : t
(** {!Schedule.default_allocation}, unroll 1,
    {!Pipeline.ii_search_limit}, no verification, no dumps,
    {!Design.Compiled} — exactly the pre-config behaviour, so
    [compile ?config] call sites that omit it are unchanged. *)

val with_resources : Schedule.resources -> t -> t

val render : t -> string
(** Canonical one-line rendering
    (["chls.config/1;adders=2;...;sim=compiled"]).  Deterministic:
    equal configurations render equally, and the format is pinned by a
    golden test — changing it invalidates persisted caches, which is
    exactly when it should change. *)

val digest : t -> string
(** MD5 hex of {!render}: the cache-key component. *)

val equal : t -> t -> bool
(** Equality of {!render} (so [dump_sink] is ignored). *)

val knobs : t -> Backend.knobs
(** The backend-facing half: resources, unroll factor, II limit and the
    pass options assembled for {!Registry.compile}. *)

val to_json : t -> Metrics.json
(** For metrics reports and serve requests; [dump_after]/[dump_sink]
    are omitted (meaningless across a wire). *)

val of_json : Metrics.json -> (t, string) result
(** Parse a serve request's ["config"] member.  Every field is optional
    and defaults to {!default}'s value; unknown fields are rejected so
    typos fail loudly.  Resource bounds are [null] (unconstrained) or
    positive ints. *)
