(** CHLS public facade: parse and check a C-like source, pick a surveyed
    language (a backend), synthesize a design, simulate it, and compare
    against the software oracle.

    A [backend] is a thin {!Registry} handle (structural equality by
    name) — the old closed variant is gone; every function here is a
    one-line wrapper over the registry.  Multi-backend workloads should
    use {!Driver}, which parses the source once and memoizes designs
    under a content hash. *)

type backend = Registry.t

val backend_name : backend -> string

val backend_of_name : string -> backend option
(** Case-insensitive; accepts the registered aliases ("tmcc", "c2v",
    "bdl", "bach", "handel-c"). *)

val all_compiling_backends : backend list
(** Backends that compile C sources (everything except Ocapi). *)

val parse : string -> Ast.program
(** Parse and type-check a source string.
    @raise Parser.Error or Typecheck.Error on bad input. *)

val dialect_of : backend -> Dialect.t

val accepts : backend -> Ast.program -> bool
(** Does the backend's dialect accept this (checked) program? *)

val pipeline_of : backend -> Passes.pipeline option
(** The pipeline a backend declares to the pass manager; [None] for the
    structural Ocapi EDSL.  Concurrent programs on Handel-C/Bach C run on
    the statement machine, where the declared pipeline only produces the
    structural view. *)

val compile_program : backend -> Ast.program -> entry:string -> Design.t
(** Synthesize a checked program.  Fails if the dialect rejects it.
    @raise Backend.No_c_frontend for the structural Ocapi EDSL. *)

val compile : backend -> string -> entry:string -> Design.t
(** Parse, check and synthesize in one step. *)

val reference : string -> entry:string -> args:int list -> int
(** The software oracle (reference interpreter) on a source string. *)

type verification = {
  vector : int list;
  expected : int;
  observed : int option;
  agrees : bool;
}

val verify_against_reference :
  Design.t -> string -> entry:string -> arg_sets:int list list ->
  verification list
(** Check a design against the software semantics on argument vectors. *)

val render_table1 : unit -> string
(** The paper's Table 1, regenerated from the dialect registry; column
    widths are computed from the data, so no cell is truncated. *)
