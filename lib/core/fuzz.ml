(* The dialect-matrix differential fuzzing driver.

   Fuzzgen (lib/analysis) builds dialect-gated random programs; this
   module points the whole oracle machinery at them: the reference
   interpreter, every C-compiling backend through the parse-once Driver
   (typed dialect rejections are *expected* matrix cells, not failures),
   the static concurrency checker, optional differential pass
   verification and compiled-vs-event-driven simulation.  Any
   disagreement is classified, shrunk to a local minimum with Fuzzgen's
   reducer (the keep predicate re-runs only the diverging layer), and
   returned as a reproducer the caller can pin as a regression test. *)

let entry = "f"

(* two fixed vectors: one benign, one negative-heavy to stress signed
   division/shift paths *)
let default_arg_sets = [ [ 3; 5 ]; [ -7; 11 ] ]

(* bounded oracle so shrink candidates that manufacture an infinite loop
   fail fast instead of burning the full 10M-step default *)
let oracle_fuel = 2_000_000

type divergence = {
  div_dialect : string;  (* generating dialect's Table-1 name *)
  div_backend : string;  (* diverging backend, or "reference"/"checker" *)
  div_class : string;  (* stable failure class used for shrinking *)
  div_detail : string;
  div_index : int;  (* generation index under the seed *)
  div_args : int list;
  div_source : string;  (* the program as generated *)
  div_shrunk : string;  (* minimal [keep]-preserving reproducer *)
}

type report = {
  rep_dialect : string;
  rep_backend : string;  (* the dialect's own backend *)
  rep_generated : int;
  rep_compiled : int;  (* successful backend compiles *)
  rep_rejected : int;  (* typed dialect rejections (expected) *)
  rep_agreed : int;  (* runs matching the reference result *)
  rep_divergences : divergence list;
  rep_constructs : (string * int) list;  (* summed construct census *)
  rep_wall_ms : float;
}

(* --- per-layer classification ----------------------------------------- *)

type outcome =
  | Agree
  | Rejected
  | Skipped
  | Fail of { cls : string; detail : string }

let exn_class exn =
  let s = Printexc.to_string exn in
  match String.index_opt s '(' with
  | Some i -> String.trim (String.sub s 0 i)
  | None -> s

let reference source args : (int, string * string) result =
  match Interp.run_int ~fuel:oracle_fuel source ~entry ~args with
  | v -> Ok v
  | exception exn -> Error (exn_class exn, Printexc.to_string exn)

let run_design design args ~expected : outcome =
  match Design.run_int design args with
  | Some v when v = expected -> Agree
  | Some v ->
    Fail
      { cls = "mismatch";
        detail = Printf.sprintf "returned %d, reference says %d" v expected }
  | None ->
    Fail
      { cls = "mismatch";
        detail = Printf.sprintf "returned void, reference says %d" expected }
  | exception exn ->
    Fail { cls = "run-error:" ^ exn_class exn;
           detail = Printexc.to_string exn }

let verify_engines design args : outcome =
  let run sim =
    match design.Design.run ~sim (Design.int_args args) with
    | r -> Ok (Option.map Bitvec.to_int r.Design.result)
    | exception exn -> Error (exn_class exn)
  in
  match (run Design.Compiled, run Design.Event_driven) with
  | Ok a, Ok b when a = b -> Agree
  | Ok a, Ok b ->
    let s = function Some v -> string_of_int v | None -> "void" in
    Fail
      { cls = "sim-divergence";
        detail =
          Printf.sprintf "compiled engine %s, event-driven %s" (s a) (s b) }
  | Error e, _ | _, Error e ->
    Fail { cls = "sim-error:" ^ e; detail = e }

(* One backend on one argument vector.  [expected] is the reference
   interpreter's value on the same vector.  [config] carries the
   per-compile pass options (verify vectors when --verify-passes) — no
   global state, so parallel fuzz/serve work cannot bleed options. *)
let classify_backend ?(config = Config.default) session backend ~args
    ~expected ~verify_sim : outcome =
  match Driver.compile ~config session backend with
  | Error (Driver.Dialect_reject _) -> Rejected
  | Error (Driver.No_c_frontend _) -> Skipped
  | Error (Driver.Frontend_error { message; _ }) ->
    Fail { cls = "frontend-error"; detail = message }
  | Error (Driver.Backend_error { message; _ }) ->
    Fail { cls = "backend-error"; detail = message }
  | Error (Driver.Verification_error { message; _ }) ->
    Fail { cls = "pass-verification"; detail = message }
  | Error (Driver.Constraint_infeasible { message; _ }) ->
    Fail { cls = "constraint-infeasible"; detail = message }
  | Ok design -> (
    match run_design design args ~expected with
    | Agree when verify_sim -> verify_engines design args
    | o -> o)

(* --- shrinking --------------------------------------------------------- *)

let source_of prog = Pretty.program_to_string prog

(* The keep predicate re-runs only the diverging layer and demands the
   same failure class — candidates that fail differently (or stop
   failing, or stop typechecking) are rejected. *)
let same_failure ~config ~backend ~args ~cls ~verify_sim prog =
  let src = source_of prog in
  match Typecheck.parse_and_check src with
  | exception _ -> false
  | _ -> (
    match backend with
    | None -> (
      (* reference-layer failure (interpreter crash/deadlock/timeout) *)
      match reference src args with
      | Error (c, _) -> c = cls
      | Ok _ -> false)
    | Some b -> (
      let session = Driver.create ~entry src in
      match reference src args with
      | Error _ -> false (* must keep the oracle healthy *)
      | Ok expected -> (
        match
          classify_backend ~config session b ~args ~expected ~verify_sim
        with
        | Fail { cls = c; _ } -> c = cls
        | Agree | Rejected | Skipped -> false)))

let shrink_divergence ~config ~backend ~args ~cls ~verify_sim prog =
  Fuzzgen.shrink
    ~keep:(same_failure ~config ~backend ~args ~cls ~verify_sim)
    prog

(* --- the sweep --------------------------------------------------------- *)

let add_counts acc counts =
  List.map2
    (fun (k, a) (k', b) ->
      assert (k = k');
      (k, a + b))
    acc counts

let zero_counts = List.map (fun k -> (k, 0)) Fuzzgen.construct_keys

(* Fuzz [n] programs generated for [dialect] with [seed], running every
   backend in [backends] (default: all with a C frontend) against the
   reference on every argument vector. *)
let run_dialect ?(arg_sets = default_arg_sets) ?backends
    ?(verify_passes = false) ?(verify_sim = false) (dialect : Dialect.t)
    ~seed ~n : report =
  let t0 = Sys.time () in
  let backends =
    match backends with Some bs -> bs | None -> Registry.compiling ()
  in
  (* the config carries per-compile pass verification — no global
     Passes.set_options, so a concurrent sweep on another domain keeps
     its own options *)
  let config =
    if verify_passes then { Config.default with Config.verify = arg_sets }
    else Config.default
  in
  let compiled = ref 0 and rejected = ref 0 and agreed = ref 0 in
  let divergences = ref [] in
  let constructs = ref zero_counts in
  let record ~index ~args ~backend ~cls ~detail prog =
    let shrunk =
      shrink_divergence ~config
        ~backend:(match backend with "reference" -> None
                  | b -> Some (Registry.get b))
        ~args ~cls ~verify_sim prog
    in
    divergences :=
      { div_dialect = dialect.Dialect.name;
        div_backend = backend;
        div_class = cls;
        div_detail = detail;
        div_index = index;
        div_args = args;
        div_source = source_of prog;
        div_shrunk = source_of shrunk }
      :: !divergences
  in
  for index = 0 to n - 1 do
    let prog = Fuzzgen.generate dialect ~seed ~index in
    constructs := add_counts !constructs (Fuzzgen.construct_counts prog);
    let src = source_of prog in
    match Typecheck.parse_and_check src with
    | exception exn ->
      (* the generator emitted something the frontend refuses: always a
         bug worth a reproducer, never expected *)
      record ~index ~args:[] ~backend:"reference"
        ~cls:("generator:" ^ exn_class exn)
        ~detail:(Printexc.to_string exn) prog
    | checked ->
      (* the static checker must stay quiet: generated par arms own
         disjoint state and channel traffic is balanced *)
      let diags =
        Conc_check.errors
          (Conc_check.check_program ~dialect checked)
      in
      if diags <> [] then
        record ~index ~args:[] ~backend:"checker" ~cls:"checker-error"
          ~detail:
            (String.concat "; "
               (List.map (Conc_check.render ?file:None) diags))
          prog
      else
        List.iter
          (fun args ->
            match reference src args with
            | Error (cls, detail) ->
              record ~index ~args ~backend:"reference"
                ~cls:("oracle:" ^ cls) ~detail prog
            | Ok expected ->
              let session = Driver.create ~entry src in
              List.iter
                (fun b ->
                  match
                    classify_backend ~config session b ~args ~expected
                      ~verify_sim
                  with
                  | Agree ->
                    incr compiled;
                    incr agreed
                  | Rejected ->
                    if Registry.name b = dialect.Dialect.backend then
                      (* the dialect's own backend rejected a program
                         generated under its feature row: a gating bug *)
                      record ~index ~args ~backend:(Registry.name b)
                        ~cls:"gating" ~detail:"own dialect rejected" prog
                    else incr rejected
                  | Skipped -> ()
                  | Fail { cls; detail } ->
                    record ~index ~args ~backend:(Registry.name b) ~cls
                      ~detail prog)
                backends)
          arg_sets
  done;
  { rep_dialect = dialect.Dialect.name;
    rep_backend = dialect.Dialect.backend;
    rep_generated = n;
    rep_compiled = !compiled;
    rep_rejected = !rejected;
    rep_agreed = !agreed;
    rep_divergences = List.rev !divergences;
    rep_constructs = !constructs;
    rep_wall_ms = (Sys.time () -. t0) *. 1000. }

(* Default fuzzing matrix: every distinct feature row with a C
   frontend.  One representative per identical row would hide
   backend-specific bugs, so all compiling dialects are in. *)
let default_dialects () =
  List.filter
    (fun (d : Dialect.t) ->
      match Registry.find d.Dialect.backend with
      | Some b -> (Registry.capabilities b).Backend.c_frontend
      | None -> false)
    Dialect.table1

let run ?arg_sets ?backends ?verify_passes ?verify_sim ?dialects ~seed ~n ()
    : report list =
  let dialects =
    match dialects with Some ds -> ds | None -> default_dialects ()
  in
  List.map
    (fun d ->
      run_dialect ?arg_sets ?backends ?verify_passes ?verify_sim d ~seed ~n)
    dialects

(* Metrics for --metrics-json and the CI smoke: per-dialect construct
   census and traffic counters under a stable prefix. *)
let metrics (reports : report list) : Metrics.t =
  let m = Metrics.create () in
  Metrics.set_string m "schema" "chls.fuzz/1";
  List.iter
    (fun r ->
      let p key =
        Printf.sprintf "fuzz.%s.%s"
          (String.lowercase_ascii
             (String.map
                (function ' ' | '(' | ')' -> '_' | c -> c)
                r.rep_dialect))
          key
      in
      Metrics.set_int m (p "generated") r.rep_generated;
      Metrics.set_int m (p "compiled") r.rep_compiled;
      Metrics.set_int m (p "rejected") r.rep_rejected;
      Metrics.set_int m (p "agreed") r.rep_agreed;
      Metrics.set_int m (p "divergences") (List.length r.rep_divergences);
      Metrics.set_fixed m (p "wall_ms") ~decimals:1 r.rep_wall_ms;
      List.iter
        (fun (k, v) -> Metrics.set_int m (p ("constructs." ^ k)) v)
        r.rep_constructs)
    reports;
  m
