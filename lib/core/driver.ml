(* The parse-once compile driver.  See driver.mli. *)

type error =
  | Frontend_error of { message : string; loc : Ast.loc }
  | No_c_frontend of { backend : string }
  | Dialect_reject of { backend : string;
                        violations : Dialect.violation list }
  | Backend_error of { backend : string; message : string; loc : Ast.loc }
  | Verification_error of { backend : string; message : string }

type session = {
  source : string;
  entry : string;
  digest : string;
  metrics : Metrics.t;
  mutable frontend : (Ast.program, error) result option;
}

let create ?(entry = "main") source =
  { source; entry; digest = Digest.to_hex (Digest.string source);
    metrics = Metrics.create (); frontend = None }

let entry t = t.entry
let source_digest t = t.digest
let metrics t = t.metrics

let render_loc ?file (loc : Ast.loc) =
  if loc = Ast.no_loc then Option.value file ~default:""
  else
    Printf.sprintf "%s%d:%d"
      (match file with Some f -> f ^ ":" | None -> "")
      loc.Ast.line loc.Ast.col

let render_error ?file = function
  | Frontend_error { message; loc } ->
    let where = render_loc ?file loc in
    if where = "" then Printf.sprintf "error: %s" message
    else Printf.sprintf "%s: error: %s" where message
  | No_c_frontend { backend } ->
    Printf.sprintf "%s: structural EDSL, no C frontend — build designs \
                    with the Ocapi module" backend
  | Dialect_reject { backend; violations } -> (
    match violations with
    | { Dialect.rule; where } :: _ ->
      Printf.sprintf "%s: dialect rejects: %s (in %s)" backend rule where
    | [] -> Printf.sprintf "%s: dialect rejects" backend)
  | Backend_error { backend; message; loc } ->
    let where = render_loc ?file loc in
    if where = "" then Printf.sprintf "%s: error: %s" backend message
    else Printf.sprintf "%s: %s: error: %s" backend where message
  | Verification_error { backend; message } ->
    Printf.sprintf "%s: pass verification failed: %s" backend message

(* --- cache bookkeeping --- *)

(* content hash -> design; process-wide so sessions over the same source
   (and repeated sessions in one run) share artifacts *)
let design_cache : (string, Design.t) Hashtbl.t = Hashtbl.create 64

let cache_size () = Hashtbl.length design_cache
let clear_cache () = Hashtbl.reset design_cache

let hit t kind =
  Metrics.incr t.metrics "driver.cache.hits";
  Metrics.incr t.metrics (Printf.sprintf "driver.cache.%s_hits" kind)

let miss t kind =
  Metrics.incr t.metrics "driver.cache.misses";
  Metrics.incr t.metrics (Printf.sprintf "driver.cache.%s_misses" kind)

(* The pass-manager options are part of the compile's identity (verify
   vectors change what gets checked, dump hooks are side effects), so
   they join the content hash. *)
let options_fingerprint () =
  let o = Passes.current_options () in
  Printf.sprintf "%s|%s"
    (String.concat ";"
       (List.map
          (fun vec -> String.concat "," (List.map string_of_int vec))
          o.Passes.verify))
    (String.concat "," o.Passes.dump_after)

let design_key t backend =
  Printf.sprintf "%s|%s|%s|%s" t.digest (Registry.name backend) t.entry
    (options_fingerprint ())

(* --- the frontend, exactly once per session --- *)

let program t =
  match t.frontend with
  | Some r ->
    hit t "frontend";
    r
  | None ->
    miss t "frontend";
    let t0 = Sys.time () in
    let r =
      match Typecheck.parse_and_check t.source with
      | p -> Ok p
      | exception Parser.Error (message, loc) ->
        Error (Frontend_error { message; loc })
      | exception Typecheck.Error (message, loc) ->
        Error (Frontend_error { message; loc })
    in
    Metrics.add_ms t.metrics "driver.frontend_ms"
      ((Sys.time () -. t0) *. 1000.);
    t.frontend <- Some r;
    r

(* --- per-backend compilation --- *)

let compile t backend =
  match program t with
  | Error e -> Error e
  | Ok prog ->
    let name = Registry.name backend in
    if not (Registry.capabilities backend).Backend.c_frontend then
      Error (No_c_frontend { backend = name })
    else begin
      match Dialect.check (Registry.dialect backend) prog with
      | _ :: _ as violations ->
        Error (Dialect_reject { backend = name; violations })
      | [] -> (
        let key = design_key t backend in
        match Hashtbl.find_opt design_cache key with
        | Some design ->
          hit t "design";
          Ok design
        | None ->
          miss t "design";
          let t0 = Sys.time () in
          let r =
            match Registry.compile backend prog ~entry:t.entry with
            | design ->
              Hashtbl.replace design_cache key design;
              Ok design
            | exception Backend.No_c_frontend b ->
              Error (No_c_frontend { backend = b })
            | exception Lower.Error (message, loc) ->
              Error (Backend_error { backend = name; message; loc })
            | exception Conc_check.Check_failed ds ->
              Error
                (Backend_error
                   { backend = name;
                     message =
                       String.concat "; "
                         (List.map (Conc_check.render ?file:None) ds);
                     loc = Ast.no_loc })
            | exception Passes.Verification_failed message ->
              Error (Verification_error { backend = name; message })
            | exception Hardwarec.Unsatisfiable message ->
              Error
                (Backend_error
                   { backend = name;
                     message = "unsatisfiable timing constraints: " ^ message;
                     loc = Ast.no_loc })
            | exception Cones.Unsupported message ->
              Error
                (Backend_error
                   { backend = name; message; loc = Ast.no_loc })
            | exception Failure message ->
              Error
                (Backend_error
                   { backend = name; message; loc = Ast.no_loc })
          in
          Metrics.add_ms t.metrics
            (Printf.sprintf "driver.compile.%s_ms" name)
            ((Sys.time () -. t0) *. 1000.);
          r)
    end

let compile_all ?backends t =
  let backends =
    match backends with Some bs -> bs | None -> Registry.all ()
  in
  List.map (fun b -> (b, compile t b)) backends

let reference t ~args =
  match program t with
  | Error e -> Error e
  | Ok prog -> (
    let width = 64 in
    match
      Interp.run prog ~entry:t.entry
        ~args:(List.map (Bitvec.of_int ~width) args)
    with
    | { Interp.return_value = Some v; _ } -> Ok (Bitvec.to_int v)
    | { Interp.return_value = None; _ } ->
      Error
        (Backend_error
           { backend = "reference"; message = "entry returned void";
             loc = Ast.no_loc })
    | exception Interp.Runtime_error message ->
      Error
        (Backend_error
           { backend = "reference"; message; loc = Ast.no_loc }))
