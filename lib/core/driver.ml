(* The parse-once compile driver.  See driver.mli. *)

type error =
  | Frontend_error of { message : string; loc : Ast.loc }
  | No_c_frontend of { backend : string }
  | Dialect_reject of { backend : string;
                        violations : Dialect.violation list }
  | Backend_error of { backend : string; message : string; loc : Ast.loc }
  | Verification_error of { backend : string; message : string }
  | Constraint_infeasible of { backend : string; message : string }

type session = {
  source : string;
  entry : string;
  digest : string;
  metrics : Metrics.t;
  mutable frontend : (Ast.program, error) result option;
}

let create ?(entry = "main") source =
  { source; entry; digest = Digest.to_hex (Digest.string source);
    metrics = Metrics.create (); frontend = None }

let entry t = t.entry
let source_digest t = t.digest
let metrics t = t.metrics

let render_loc ?file (loc : Ast.loc) =
  if loc = Ast.no_loc then Option.value file ~default:""
  else
    Printf.sprintf "%s%d:%d"
      (match file with Some f -> f ^ ":" | None -> "")
      loc.Ast.line loc.Ast.col

let render_error ?file = function
  | Frontend_error { message; loc } ->
    let where = render_loc ?file loc in
    if where = "" then Printf.sprintf "error: %s" message
    else Printf.sprintf "%s: error: %s" where message
  | No_c_frontend { backend } ->
    Printf.sprintf "%s: structural EDSL, no C frontend — build designs \
                    with the Ocapi module" backend
  | Dialect_reject { backend; violations } -> (
    match violations with
    | { Dialect.rule; where; vloc } :: _ ->
      let at = render_loc ?file vloc in
      if at = "" then
        Printf.sprintf "%s: dialect rejects: %s (in %s)" backend rule where
      else
        Printf.sprintf "%s: dialect rejects: %s (in %s, at %s)" backend rule
          where at
    | [] -> Printf.sprintf "%s: dialect rejects" backend)
  | Backend_error { backend; message; loc } ->
    let where = render_loc ?file loc in
    if where = "" then Printf.sprintf "%s: error: %s" backend message
    else Printf.sprintf "%s: %s: error: %s" backend where message
  | Verification_error { backend; message } ->
    Printf.sprintf "%s: pass verification failed: %s" backend message
  | Constraint_infeasible { backend; message } ->
    Printf.sprintf "%s: unsatisfiable timing constraints: %s" backend message

(* --- cache bookkeeping --- *)

(* content hash -> design; process-wide so sessions over the same source
   (and repeated sessions in one run) share artifacts.  The decoded
   front tier is always on; attaching a byte store (usually Cache.Disk)
   makes warm-cache state survive restarts and lets workers share.  A
   design is a bundle of closures, so the codec is Marshal with the
   Closures flag — only readable by the binary that wrote it, which is
   why the disk store versions entries by executable digest. *)
let design_cache : Design.t Cache.t =
  Cache.create ~name:"designs"
    ~encode:(fun d ->
      try Some (Marshal.to_string (d : Design.t) [ Marshal.Closures ])
      with _ -> None)
    ~decode:(fun s ->
      try Some (Marshal.from_string s 0 : Design.t) with _ -> None)
    ()

let cache_size () = Cache.size design_cache
let clear_cache () = Cache.clear design_cache

let set_cache_store s = Cache.set_store design_cache s
let cache_store () = Cache.store design_cache

let attach_disk_cache ?max_bytes ~dir () =
  match Cache.Disk.open_dir ?max_bytes dir with
  | Ok d ->
    let s = Cache.Disk.store d in
    set_cache_store (Some s);
    Ok s
  | Error _ as e -> e

(* Global cache-subsystem state (store counters, residency) as metric
   pairs, for the CLI's reports and [chlsc cache stats]. *)
let cache_metrics () =
  let front =
    [ ("driver.cache.front_entries", cache_size ());
      ("driver.cache.decode_failures", Cache.decode_failures design_cache) ]
  in
  let front =
    front
    @ [ ("driver.cache.front_hits", Cache.front_hits design_cache);
        ("driver.cache.front_misses", Cache.front_misses design_cache) ]
  in
  match cache_store () with
  | None -> front
  | Some s ->
    let c = Cache.store_counters s in
    front
    @ [ ("driver.store.hits", c.Cache.hits);
        ("driver.store.misses", c.Cache.misses);
        ("driver.store.puts", c.Cache.puts);
        ("driver.store.evictions", c.Cache.evictions);
        ("driver.store.corrupt", c.Cache.corrupt);
        ("driver.store.version_skew", c.Cache.version_skew);
        ("driver.store.entries", c.Cache.entries);
        ("driver.store.bytes", c.Cache.bytes) ]

(* Derived hit rates, only where there was traffic: a fresh process has
   no lookups and a percentage would be noise, so absent beats 0%. *)
let cache_hit_rates () =
  let rate hits misses =
    let total = hits + misses in
    if total = 0 then None
    else Some (100. *. float_of_int hits /. float_of_int total)
  in
  let front =
    match
      rate (Cache.front_hits design_cache) (Cache.front_misses design_cache)
    with
    | Some r -> [ ("driver.cache.front_hit_rate_pct", r) ]
    | None -> []
  in
  let store =
    match cache_store () with
    | None -> []
    | Some s -> (
      let c = Cache.store_counters s in
      match rate c.Cache.hits c.Cache.misses with
      | Some r -> [ ("driver.store.hit_rate_pct", r) ]
      | None -> [])
  in
  front @ store

let hit t kind =
  Metrics.incr t.metrics "driver.cache.hits";
  Metrics.incr t.metrics (Printf.sprintf "driver.cache.%s_hits" kind)

let miss t kind =
  Metrics.incr t.metrics "driver.cache.misses";
  Metrics.incr t.metrics (Printf.sprintf "driver.cache.%s_misses" kind)

(* The configuration is part of the compile's identity — resource
   bounds, unroll factor, verify vectors and dump hooks all change what
   the backend produces or does — so its digest joins the content hash.
   Distinct config points are distinct cached designs, on disk too. *)
let design_key t backend config =
  Printf.sprintf "%s|%s|%s|%s" t.digest (Registry.name backend) t.entry
    (Config.digest config)

(* --- the frontend, exactly once per session --- *)

let program ?(ctx = Span.null) t =
  Span.span ctx "frontend" (fun sctx ->
      match t.frontend with
      | Some r ->
        hit t "frontend";
        Span.add_attr sctx "memo" (Metrics.Bool true);
        r
      | None ->
        miss t "frontend";
        Span.add_attr sctx "memo" (Metrics.Bool false);
        let t0 = Sys.time () in
        let r =
          match Typecheck.parse_and_check t.source with
          | p -> Ok p
          | exception Parser.Error (message, loc) ->
            Error (Frontend_error { message; loc })
          | exception Typecheck.Error (message, loc) ->
            Error (Frontend_error { message; loc })
        in
        Metrics.add_ms t.metrics "driver.frontend_ms"
          ((Sys.time () -. t0) *. 1000.);
        (match r with
        | Error _ -> Span.add_attr sctx "rejected" (Metrics.Bool true)
        | Ok _ -> ());
        t.frontend <- Some r;
        r)

(* --- per-backend compilation --- *)

(* Passes cannot open spans itself (chl_ir sits below chl_obs in the
   library order), so pass spans are reconstructed post hoc from the
   trace records a fresh compile produced: each record carries its own
   start offset within the pipeline run, anchored at [at] — the trace
   offset where the backend compile began. *)
let emit_pass_spans ctx ~at (trace : Passes.trace) =
  List.iter
    (fun (r : Passes.record) ->
      Span.emit ctx
        ~attrs:
          [ ( "level",
              Metrics.String
                (match r.Passes.level with
                | Passes.Source -> "source"
                | Passes.Ir -> "ir") );
            ("blocks", Metrics.Int r.Passes.after.Passes.blocks);
            ( "instrs_delta",
              Metrics.Int
                (r.Passes.after.Passes.instrs - r.Passes.before.Passes.instrs)
            );
            ("verified", Metrics.Int r.Passes.verified) ]
        ~start_ms:(at +. r.Passes.start_ms) ~dur_ms:r.Passes.wall_ms
        ("pass:" ^ r.Passes.pass_name))
    trace

let compile ?(ctx = Span.null) ?(config = Config.default) t backend =
  match program ~ctx t with
  | Error e -> Error e
  | Ok prog ->
    let name = Registry.name backend in
    if not (Registry.capabilities backend).Backend.c_frontend then
      Error (No_c_frontend { backend = name })
    else begin
      let violations =
        Span.span ctx "dialect-check"
          ~attrs:[ ("backend", Metrics.String name) ]
          (fun sctx ->
            let vs = Dialect.check (Registry.dialect backend) prog in
            Span.add_attr sctx "violations" (Metrics.Int (List.length vs));
            vs)
      in
      match violations with
      | _ :: _ as violations ->
        Error (Dialect_reject { backend = name; violations })
      | [] ->
        Span.span ctx "backend"
          ~attrs:[ ("backend", Metrics.String name) ]
          (fun sctx ->
        let key = design_key t backend config in
        match Cache.find design_cache key with
        | Some (design, `Front) ->
          hit t "design";
          Span.add_attr sctx "cache" (Metrics.String "front");
          Ok design
        | Some (design, `Store) ->
          (* revived from the persistent store: a hit that did no
             backend work, distinguished so benchmarks can see
             restart-survival *)
          hit t "design_store";
          Span.add_attr sctx "cache" (Metrics.String "store");
          Ok design
        | None ->
          miss t "design";
          Span.add_attr sctx "cache" (Metrics.String "miss");
          let t0 = Sys.time () in
          let at = Span.elapsed_ms sctx in
          let r =
            match
              Registry.compile backend ~knobs:(Config.knobs config) prog
                ~entry:t.entry
            with
            | design ->
              Cache.add design_cache key design;
              (* only a fresh compile has live pass timings — a cached
                 design's pass_trace describes work another request did *)
              emit_pass_spans sctx ~at design.Design.pass_trace;
              Ok design
            | exception Backend.No_c_frontend b ->
              Error (No_c_frontend { backend = b })
            | exception Backend.Dialect_rejected { backend; violations } ->
              (* a backend entered through a side door (another backend's
                 fallback, a stricter embedded check) still reports a
                 dialect property, not an internal failure *)
              Error (Dialect_reject { backend; violations })
            | exception Ssa.Timeout { func_name; max_steps } ->
              Error
                (Backend_error
                   { backend = name;
                     message =
                       Printf.sprintf
                         "ssa evaluation timed out in %s after %d steps"
                         func_name max_steps;
                     loc = Ast.no_loc })
            | exception Lower.Error (message, loc) ->
              Error (Backend_error { backend = name; message; loc })
            | exception Conc_check.Check_failed ds ->
              Error
                (Backend_error
                   { backend = name;
                     message =
                       String.concat "; "
                         (List.map (Conc_check.render ?file:None) ds);
                     loc = Ast.no_loc })
            | exception Passes.Verification_failed message ->
              Error (Verification_error { backend = name; message })
            | exception Hardwarec.Unsatisfiable message ->
              (* a typed verdict, not a failure: the design point asks
                 for timing no allocation can meet — explore sweeps
                 report these as infeasible cells *)
              Error (Constraint_infeasible { backend = name; message })
            | exception Cones.Unsupported message ->
              Error
                (Backend_error
                   { backend = name; message; loc = Ast.no_loc })
            | exception Failure message ->
              Error
                (Backend_error
                   { backend = name; message; loc = Ast.no_loc })
          in
          Metrics.add_ms t.metrics
            (Printf.sprintf "driver.compile.%s_ms" name)
            ((Sys.time () -. t0) *. 1000.);
          r)
    end

let compile_all ?ctx ?config ?backends t =
  let backends =
    match backends with Some bs -> bs | None -> Registry.all ()
  in
  List.map (fun b -> (b, compile ?ctx ?config t b)) backends

let reference ?(ctx = Span.null) t ~args =
  Span.span ctx "oracle"
    ~attrs:[ ("args", Metrics.Int (List.length args)) ]
    (fun sctx ->
      match program ~ctx:sctx t with
      | Error e -> Error e
      | Ok prog -> (
        let width = 64 in
        match
          Interp.run prog ~entry:t.entry
            ~args:(List.map (Bitvec.of_int ~width) args)
        with
        | { Interp.return_value = Some v; _ } -> Ok (Bitvec.to_int v)
        | { Interp.return_value = None; _ } ->
          Error
            (Backend_error
               { backend = "reference"; message = "entry returned void";
                 loc = Ast.no_loc })
        | exception Interp.Runtime_error message ->
          Error
            (Backend_error
               { backend = "reference"; message; loc = Ast.no_loc })
        | exception Interp.Internal_error (message, loc) ->
          Error
            (Backend_error
               { backend = "reference";
                 message = "internal error: " ^ message;
                 loc })))
