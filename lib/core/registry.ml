(* The backend registry.  Descriptors live with their backends; this
   module only collects them and resolves names.  The registration list
   at the bottom is the single place the repo enumerates backends. *)

type t = { id : string }

exception Unknown_backend of string

(* canonical name -> descriptor, in registration order *)
let table : (string * Backend.descriptor) list ref = ref []

(* lowercased name/alias -> canonical name *)
let by_name : (string, string) Hashtbl.t = Hashtbl.create 32

let catalog () =
  String.concat ", "
    (List.map
       (fun (name, (d : Backend.descriptor)) ->
         match d.Backend.aliases with
         | [] -> name
         | aliases ->
           Printf.sprintf "%s (alias %s)" name (String.concat ", " aliases))
       (List.rev !table))

let register (d : Backend.descriptor) =
  let keys =
    List.map String.lowercase_ascii (d.Backend.name :: d.Backend.aliases)
  in
  List.iter
    (fun k ->
      if Hashtbl.mem by_name k then
        invalid_arg
          (Printf.sprintf "Registry.register: %S already names backend %S" k
             (Hashtbl.find by_name k)))
    keys;
  table := (d.Backend.name, d) :: !table;
  List.iter (fun k -> Hashtbl.replace by_name k d.Backend.name) keys

let find s =
  Option.map
    (fun id -> { id })
    (Hashtbl.find_opt by_name (String.lowercase_ascii s))

let get s =
  match find s with
  | Some h -> h
  | None ->
    raise
      (Unknown_backend
         (Printf.sprintf "unknown backend %S; registered: %s" s (catalog ())))

(* A handle can only be forged by constructing the abstract type through
   a stale marshalled value or similar; answer with the catalog instead
   of an anonymous Not_found. *)
let descriptor (h : t) =
  match List.assoc_opt h.id !table with
  | Some d -> d
  | None ->
    raise
      (Unknown_backend
         (Printf.sprintf "stale backend handle %S; registered: %s" h.id
            (catalog ())))
let name (h : t) = h.id
let aliases h = (descriptor h).Backend.aliases
let description h = (descriptor h).Backend.description
let dialect h = (descriptor h).Backend.dialect
let pipeline h = (descriptor h).Backend.pipeline
let capabilities h = (descriptor h).Backend.capabilities
let compile h ?(knobs = Backend.default_knobs) program ~entry =
  (descriptor h).Backend.compile ~knobs program ~entry
let equal (a : t) (b : t) = a.id = b.id

let all () = List.rev_map (fun (id, _) -> { id }) !table

let compiling () =
  List.filter (fun h -> (capabilities h).Backend.c_frontend) (all ())

let names () = List.map name (all ())

(* --- registrations: the paper's Table 1, one line per backend --- *)

let () =
  List.iter register
    [ Cones.descriptor;
      Hardwarec.descriptor;
      Transmogrifier.descriptor;
      Systemc.descriptor;
      Ocapi.descriptor;
      C2v_machine.descriptor;
      Bachc.cyber_descriptor;
      Handelc.descriptor;
      Specc.descriptor;
      Bachc.descriptor;
      Cash.descriptor ]
