(** Dialect-matrix differential fuzzing driver.

    Generates dialect-gated random programs with {!Fuzzgen}, runs every
    C-compiling backend against the reference interpreter on fixed
    argument vectors, treats typed dialect rejections as expected matrix
    cells, and shrinks every disagreement (wrong result, crash, checker
    noise, pass-verification or engine divergence, generator artifact)
    into a minimal [.c] reproducer. *)

val entry : string
(** Entry point of every generated program: ["f"], taking
    [(int a, int b)]. *)

val default_arg_sets : int list list
(** The fixed argument vectors a sweep evaluates unless overridden. *)

type divergence = {
  div_dialect : string;  (** generating dialect's Table-1 name *)
  div_backend : string;  (** diverging backend, or ["reference"]/["checker"] *)
  div_class : string;  (** stable failure class, preserved while shrinking *)
  div_detail : string;
  div_index : int;  (** generation index under the seed *)
  div_args : int list;
  div_source : string;  (** the program as generated *)
  div_shrunk : string;  (** minimal class-preserving reproducer *)
}

type report = {
  rep_dialect : string;
  rep_backend : string;  (** the dialect's own backend *)
  rep_generated : int;
  rep_compiled : int;  (** successful backend compiles that also ran *)
  rep_rejected : int;  (** typed dialect rejections (expected) *)
  rep_agreed : int;  (** runs matching the reference result *)
  rep_divergences : divergence list;
  rep_constructs : (string * int) list;  (** summed construct census *)
  rep_wall_ms : float;
}

val run_dialect :
  ?arg_sets:int list list ->
  ?backends:Registry.t list ->
  ?verify_passes:bool ->
  ?verify_sim:bool ->
  Dialect.t -> seed:int -> n:int -> report
(** Fuzz [n] programs for one dialect.  [verify_passes] additionally
    interprets the IR after every pass on the same vectors
    ({!Passes.options.verify}); [verify_sim] compares the compiled and
    event-driven simulation engines on agreeing designs.  Deterministic
    for a fixed [(dialect, seed, n)]. *)

val default_dialects : unit -> Dialect.t list
(** Every Table-1 dialect whose backend compiles from C. *)

val run :
  ?arg_sets:int list list ->
  ?backends:Registry.t list ->
  ?verify_passes:bool ->
  ?verify_sim:bool ->
  ?dialects:Dialect.t list ->
  seed:int -> n:int -> unit -> report list
(** {!run_dialect} over [dialects] (default {!default_dialects}). *)

val metrics : report list -> Metrics.t
(** Per-dialect counters (generated/compiled/rejected/agreed/
    divergences, wall time, construct census) under [fuzz.<dialect>.*],
    with a [schema] tag of ["chls.fuzz/1"]. *)
