(* Design-space exploration: sweep a grid of synthesis configurations
   through the driver and report the Pareto front.

   The paper's Table 1 compares compilers along fixed axes; this module
   turns the reproduction's knobs — resource bounds, chaining budget,
   unroll factor, backend — into an enumerable grid, compiles every
   point through {!Driver.compile} (each point is its own config digest,
   so the artifact cache memoizes per point, on disk included), runs the
   produced design against the interpreter oracle, and computes the
   front that minimizes (area, cycles, clock period).

   Points are evaluated on a small pool of OCaml 5 domains: each worker
   owns its own {!Driver.session} (the frontend memo is per-session
   mutable state) while compiled designs flow through the mutex-guarded
   process-wide cache, so a warm re-run is all hits. *)

(* --- the grid ---------------------------------------------------------- *)

type grid = {
  adders : int option list;  (* adder bound per point; [None] unbounded *)
  chains : float list;  (* chaining (cycle-time) budgets *)
  unrolls : int list;  (* partial unroll factors; 1 disables *)
}

(* chain budgets straddle the chaining knee: 10 forces one op per state
   on the survey kernels' delay model, 200 lets whole blocks chain *)
let default_grid =
  { adders = [ Some 1; Some 2 ]; chains = [ 10.; 200. ]; unrolls = [ 1; 2 ] }

let grid_size g ~backends =
  List.length g.adders * List.length g.chains * List.length g.unrolls
  * backends

(* "adders=1,2;chain=10,20;unroll=1,2" — unset axes keep the default.
   An adder bound of [*] means unconstrained. *)
let parse_grid spec : (grid, string) result =
  let parse_values key conv values =
    let parts =
      String.split_on_char ',' values
      |> List.map String.trim
      |> List.filter (fun s -> s <> "")
    in
    if parts = [] then Error (Printf.sprintf "%s: empty value list" key)
    else
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | v :: rest -> (
          match conv v with
          | Some x -> go (x :: acc) rest
          | None -> Error (Printf.sprintf "%s: bad value %S" key v))
      in
      go [] parts
  in
  let int_bound s =
    if s = "*" then Some None
    else
      match int_of_string_opt s with
      | Some n when n >= 1 -> Some (Some n)
      | _ -> None
  in
  let pos_int s =
    match int_of_string_opt s with Some n when n >= 1 -> Some n | None | Some _ -> None
  in
  let pos_float s =
    match float_of_string_opt s with
    | Some f when f > 0. -> Some f
    | _ -> None
  in
  let segments =
    String.split_on_char ';' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let rec go g = function
    | [] -> Ok g
    | seg :: rest -> (
      match String.index_opt seg '=' with
      | None -> Error (Printf.sprintf "grid: %S is not key=v1,v2,..." seg)
      | Some i -> (
        let key = String.trim (String.sub seg 0 i) in
        let values = String.sub seg (i + 1) (String.length seg - i - 1) in
        match key with
        | "adders" -> (
          match parse_values key int_bound values with
          | Ok vs -> go { g with adders = vs } rest
          | Error e -> Error e)
        | "chain" -> (
          match parse_values key pos_float values with
          | Ok vs -> go { g with chains = vs } rest
          | Error e -> Error e)
        | "unroll" -> (
          match parse_values key pos_int values with
          | Ok vs -> go { g with unrolls = vs } rest
          | Error e -> Error e)
        | _ ->
          Error
            (Printf.sprintf
               "grid: unknown axis %S (expected adders, chain or unroll)"
               key)))
  in
  go default_grid segments

(* Enumeration order is contractual (backend-major, then adders, chains,
   unrolls) so cell indices are stable across runs and reports. *)
let points grid backends : (Registry.t * Config.t) list =
  List.concat_map
    (fun backend ->
      List.concat_map
        (fun adders ->
          List.concat_map
            (fun chain ->
              List.map
                (fun unroll ->
                  let config =
                    { Config.default with
                      Config.resources =
                        { Schedule.default_allocation with
                          Schedule.adders;
                          chain_budget = chain };
                      unroll_factor = unroll }
                  in
                  (backend, config))
                grid.unrolls)
            grid.chains)
        grid.adders)
    backends

let rebase base (backend, config) =
  ( backend,
    { base with
      Config.resources = config.Config.resources;
      unroll_factor = config.Config.unroll_factor } )

(* --- one point --------------------------------------------------------- *)

type measurement = {
  m_area : float option;  (* Area.report.total_area *)
  m_registers : int option;
  m_cycles : int option;  (* simulated cycles on [args] *)
  m_period : float option;  (* achieved clock period estimate *)
  m_latency : float option;  (* cycles x period, when both known *)
  m_verified : bool;  (* simulation matched the interpreter oracle *)
}

type status =
  | Measured of measurement
  | Infeasible of string  (* typed: no allocation meets the constraints *)
  | Rejected of string  (* dialect restriction / no C frontend *)
  | Failed of string  (* a real error: compile, run or verify crashed *)

type cell = {
  cell_backend : string;
  cell_config : Config.t;
  cell_digest : string;  (* Config.digest — the cache-key component *)
  cell_status : status;
  cell_wall_ms : float;
}

let evaluate session backend config ~args ~(expected : (int, string) result)
    : status =
  match Driver.compile ~config session backend with
  | Error (Driver.Constraint_infeasible { message; _ }) -> Infeasible message
  | Error ((Driver.Dialect_reject _ | Driver.No_c_frontend _) as e) ->
    Rejected (Driver.render_error e)
  | Error e -> Failed (Driver.render_error e)
  | Ok design -> (
    match design.Design.run ~sim:config.Config.sim (Design.int_args args) with
    | exception exn ->
      Failed (Printf.sprintf "simulation raised %s" (Printexc.to_string exn))
    | r ->
      let observed = Option.map Bitvec.to_int r.Design.result in
      let verified =
        match expected with Ok e -> observed = Some e | Error _ -> false
      in
      let report = design.Design.area () in
      Measured
        { m_area = Option.map (fun a -> a.Area.total_area) report;
          m_registers = Option.map (fun a -> a.Area.num_registers) report;
          m_cycles = r.Design.cycles;
          m_period = design.Design.clock_period;
          m_latency = Design.latency_estimate design r;
          m_verified = verified })

(* --- the sweep --------------------------------------------------------- *)

type sweep = {
  sw_entry : string;
  sw_args : int list;
  sw_cells : cell list;  (* in {!points} enumeration order *)
  sw_pareto : int list;  (* ascending indices into [sw_cells] *)
  sw_wall_ms : float;
}

(* a dominates b: no worse on every axis, strictly better on one.
   Cells missing any axis never enter the front (and dominate nothing). *)
let dominates a b =
  match
    (a.m_area, a.m_cycles, a.m_period, b.m_area, b.m_cycles, b.m_period)
  with
  | Some aa, Some ac, Some ap, Some ba, Some bc, Some bp ->
    aa <= ba && ac <= bc && ap <= bp && (aa < ba || ac < bc || ap < bp)
  | _ -> false

let eligible cell =
  match cell.cell_status with
  | Measured m ->
    if
      m.m_verified && m.m_area <> None && m.m_cycles <> None
      && m.m_period <> None
    then Some m
    else None
  | Infeasible _ | Rejected _ | Failed _ -> None

let pareto_front cells : int list =
  let indexed =
    List.mapi (fun i c -> (i, eligible c)) cells
    |> List.filter_map (fun (i, m) ->
           match m with Some m -> Some (i, m) | None -> None)
  in
  (* strict dominance keeps ties; collapse equal-axis duplicates to the
     lowest index so the front lists distinct design points *)
  let same_axes a b =
    a.m_area = b.m_area && a.m_cycles = b.m_cycles && a.m_period = b.m_period
  in
  List.filter_map
    (fun (i, m) ->
      if
        List.exists (fun (j, m') -> j <> i && dominates m' m) indexed
        || List.exists (fun (j, m') -> j < i && same_axes m' m) indexed
      then None
      else Some i)
    indexed

let run ?domains ?(base = Config.default) ~source ~entry ~args grid backends
    : sweep =
  let t0 = Unix.gettimeofday () in
  let pts = Array.of_list (List.map (rebase base) (points grid backends)) in
  let n = Array.length pts in
  let expected =
    let session = Driver.create ~entry source in
    match Driver.reference session ~args with
    | Ok v -> Ok v
    | Error e -> Error (Driver.render_error e)
  in
  let cells = Array.make n None in
  let next = Atomic.make 0 in
  let worker () =
    (* per-domain session: the frontend memo is session-local mutable
       state; the design cache behind the driver is shared and locked *)
    let session = Driver.create ~entry source in
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        let backend, config = pts.(i) in
        let c0 = Unix.gettimeofday () in
        let status =
          try evaluate session backend config ~args ~expected
          with exn ->
            Failed (Printf.sprintf "point raised %s" (Printexc.to_string exn))
        in
        cells.(i) <-
          Some
            { cell_backend = Registry.name backend;
              cell_config = config;
              cell_digest = Config.digest config;
              cell_status = status;
              cell_wall_ms = (Unix.gettimeofday () -. c0) *. 1000. };
        loop ()
      end
    in
    loop ()
  in
  let workers =
    match domains with
    | Some d -> max 1 (min d n)
    | None -> max 1 (min 4 (min n (Domain.recommended_domain_count ())))
  in
  let spawned =
    List.init (workers - 1) (fun _ -> Domain.spawn worker)
  in
  worker ();
  List.iter Domain.join spawned;
  let cells =
    Array.to_list cells
    |> List.map (function
         | Some c -> c
         | None -> assert false (* every index < n was claimed *))
  in
  { sw_entry = entry;
    sw_args = args;
    sw_cells = cells;
    sw_pareto = pareto_front cells;
    sw_wall_ms = (Unix.gettimeofday () -. t0) *. 1000. }

(* --- reporting --------------------------------------------------------- *)

let status_name = function
  | Measured m -> if m.m_verified then "ok" else "unverified"
  | Infeasible _ -> "infeasible"
  | Rejected _ -> "rejected"
  | Failed _ -> "failed"

let count_status sweep name =
  List.length
    (List.filter (fun c -> status_name c.cell_status = name) sweep.sw_cells)

let verified_count sweep =
  List.length
    (List.filter
       (fun c ->
         match c.cell_status with Measured m -> m.m_verified | _ -> false)
       sweep.sw_cells)

let metrics (sweep : sweep) : Metrics.t =
  let m = Metrics.create () in
  Metrics.set_string m "schema" "chls.explore/1";
  Metrics.set_string m "explore.entry" sweep.sw_entry;
  Metrics.set m "explore.args"
    (Metrics.List (List.map (fun a -> Metrics.Int a) sweep.sw_args));
  Metrics.set_int m "explore.points" (List.length sweep.sw_cells);
  Metrics.set_int m "explore.verified" (verified_count sweep);
  List.iter
    (fun s -> Metrics.set_int m ("explore." ^ s) (count_status sweep s))
    [ "infeasible"; "rejected"; "failed"; "unverified" ];
  Metrics.set m "explore.pareto"
    (Metrics.List (List.map (fun i -> Metrics.Int i) sweep.sw_pareto));
  Metrics.set_fixed m "explore.wall_ms" ~decimals:1 sweep.sw_wall_ms;
  List.iteri
    (fun i c ->
      let p key = Printf.sprintf "explore.cell.%d.%s" i key in
      Metrics.set_string m (p "backend") c.cell_backend;
      Metrics.set_string m (p "config") (Config.digest c.cell_config);
      Metrics.set m (p "knobs") (Config.to_json c.cell_config);
      Metrics.set_string m (p "status") (status_name c.cell_status);
      Metrics.set_bool m (p "pareto") (List.mem i sweep.sw_pareto);
      (match c.cell_status with
      | Measured meas ->
        let opt_float key = function
          | Some v -> Metrics.set_fixed m (p key) ~decimals:2 v
          | None -> ()
        in
        opt_float "area" meas.m_area;
        opt_float "period" meas.m_period;
        opt_float "latency" meas.m_latency;
        (match meas.m_registers with
        | Some r -> Metrics.set_int m (p "registers") r
        | None -> ());
        (match meas.m_cycles with
        | Some cy -> Metrics.set_int m (p "cycles") cy
        | None -> ());
        Metrics.set_bool m (p "verified") meas.m_verified
      | Infeasible d | Rejected d | Failed d ->
        Metrics.set_string m (p "detail") d);
      Metrics.set_fixed m (p "wall_ms") ~decimals:1 c.cell_wall_ms)
    sweep.sw_cells;
  List.iter
    (fun (k, v) -> Metrics.set_int m k v)
    (Driver.cache_metrics ());
  m

(* A Table-1-style text table: one row per grid point, Pareto members
   starred.  Returned as header + rows for the CLI's table printer. *)
let table (sweep : sweep) : string list * string list list =
  let header =
    [ "#"; "backend"; "adders"; "chain"; "unroll"; "status"; "area";
      "regs"; "cycles"; "period"; "latency"; "pareto" ]
  in
  let fmt_float = function
    | None -> "-"
    | Some v ->
      if Float.is_integer v && Float.abs v < 1e9 then
        Printf.sprintf "%.0f" v
      else Printf.sprintf "%.2f" v
  in
  let fmt_int = function None -> "-" | Some v -> string_of_int v in
  let rows =
    List.mapi
      (fun i c ->
        let r = c.cell_config.Config.resources in
        let adders =
          match r.Schedule.adders with
          | None -> "*"
          | Some a -> string_of_int a
        in
        let meas =
          match c.cell_status with Measured m -> Some m | _ -> None
        in
        let get f = Option.join (Option.map f meas) in
        [ string_of_int i;
          c.cell_backend;
          adders;
          fmt_float (Some r.Schedule.chain_budget);
          string_of_int c.cell_config.Config.unroll_factor;
          status_name c.cell_status;
          fmt_float (get (fun m -> m.m_area));
          fmt_int (get (fun m -> m.m_registers));
          fmt_int (get (fun m -> m.m_cycles));
          fmt_float (get (fun m -> m.m_period));
          fmt_float (get (fun m -> m.m_latency));
          (if List.mem i sweep.sw_pareto then "*" else "") ])
      sweep.sw_cells
  in
  (header, rows)
