(* Synthesis configuration as a first-class value.

   Every knob the stack exposes — resource allocation, chaining budget,
   unroll factor, modulo-scheduling II limit, pass options, simulation
   engine — bundled into one record that travels with each compile
   instead of living in globals or per-backend defaults.  The canonical
   rendering and its digest key caches: two compiles of one source under
   different configs are different designs, on disk included. *)

type t = {
  resources : Schedule.resources;
  unroll_factor : int;
  ii_limit : int;
  verify : int list list;
  dump_after : string list;
  dump_sink : string -> unit;
  sim : Design.engine;
}

let default =
  { resources = Schedule.default_allocation;
    unroll_factor = 1;
    ii_limit = Pipeline.ii_search_limit;
    verify = [];
    dump_after = [];
    dump_sink = print_string;
    sim = Design.Compiled }

let with_resources resources t = { t with resources }

(* --- canonical rendering and digest ----------------------------------- *)

let render_bound = function None -> "*" | Some n -> string_of_int n

(* Chain budgets are designer inputs like "10" or "20.5"; %.17g would
   render them unreadably.  %g is stable for the values that reach us
   (finite decimals and infinity). *)
let render_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let render t =
  let r = t.resources in
  String.concat ";"
    [ "chls.config/1";
      Printf.sprintf "adders=%s" (render_bound r.Schedule.adders);
      Printf.sprintf "multipliers=%s" (render_bound r.Schedule.multipliers);
      Printf.sprintf "dividers=%s" (render_bound r.Schedule.dividers);
      Printf.sprintf "shifters=%s" (render_bound r.Schedule.shifters);
      Printf.sprintf "mem_read_ports=%d" r.Schedule.mem_read_ports;
      Printf.sprintf "mem_write_ports=%d" r.Schedule.mem_write_ports;
      Printf.sprintf "chain_budget=%s" (render_float r.Schedule.chain_budget);
      Printf.sprintf "mem_forwarding=%b" r.Schedule.mem_forwarding;
      Printf.sprintf "unroll=%d" t.unroll_factor;
      Printf.sprintf "ii_limit=%d" t.ii_limit;
      Printf.sprintf "verify=%s"
        (String.concat "|"
           (List.map
              (fun v -> String.concat "," (List.map string_of_int v))
              t.verify));
      Printf.sprintf "dump_after=%s" (String.concat "," t.dump_after);
      Printf.sprintf "sim=%s" (Design.engine_name t.sim) ]

let digest t = Digest.to_hex (Digest.string (render t))

let equal a b = render a = render b

(* --- backend knobs ---------------------------------------------------- *)

let knobs t =
  { Backend.resources = t.resources;
    unroll_factor = t.unroll_factor;
    ii_limit = t.ii_limit;
    pass_options =
      { Passes.verify = t.verify;
        dump_after = t.dump_after;
        dump_sink = t.dump_sink } }

(* --- JSON (for serve requests and metrics reports) --------------------- *)

let to_json t =
  let r = t.resources in
  let bound = function
    | None -> Metrics.Null
    | Some n -> Metrics.Int n
  in
  Metrics.Obj
    [ ("adders", bound r.Schedule.adders);
      ("multipliers", bound r.Schedule.multipliers);
      ("dividers", bound r.Schedule.dividers);
      ("shifters", bound r.Schedule.shifters);
      ("mem_read_ports", Metrics.Int r.Schedule.mem_read_ports);
      ("mem_write_ports", Metrics.Int r.Schedule.mem_write_ports);
      ("chain_budget", Metrics.Float r.Schedule.chain_budget);
      ("mem_forwarding", Metrics.Bool r.Schedule.mem_forwarding);
      ("unroll", Metrics.Int t.unroll_factor);
      ("ii_limit", Metrics.Int t.ii_limit);
      ("verify",
       Metrics.List
         (List.map
            (fun v -> Metrics.List (List.map (fun n -> Metrics.Int n) v))
            t.verify));
      ("sim", Metrics.String (Design.engine_name t.sim)) ]

(* dump_after/dump_sink are deliberately absent from of_json: a remote
   client has nowhere for dumps to go. *)
let of_json (j : Metrics.json) : (t, string) result =
  let ( let* ) = Result.bind in
  match j with
  | Metrics.Obj fields ->
    let known =
      [ "adders"; "multipliers"; "dividers"; "shifters"; "mem_read_ports";
        "mem_write_ports"; "chain_budget"; "mem_forwarding"; "unroll";
        "ii_limit"; "verify"; "sim" ]
    in
    let* () =
      match List.find_opt (fun (k, _) -> not (List.mem k known)) fields with
      | Some (k, _) -> Error (Printf.sprintf "config: unknown field %S" k)
      | None -> Ok ()
    in
    let field name = List.assoc_opt name fields in
    let bound name default =
      match field name with
      | None -> Ok default
      | Some Metrics.Null -> Ok None
      | Some (Metrics.Int n) when n >= 1 -> Ok (Some n)
      | Some _ -> Error (Printf.sprintf "config: %s must be null or int >= 1" name)
    in
    let int name default ~min =
      match field name with
      | None -> Ok default
      | Some (Metrics.Int n) when n >= min -> Ok n
      | Some _ -> Error (Printf.sprintf "config: %s must be an int >= %d" name min)
    in
    let num name default =
      match field name with
      | None -> Ok default
      | Some (Metrics.Int n) when n >= 1 -> Ok (float_of_int n)
      | Some (Metrics.Float f) when f >= 1. -> Ok f
      | Some _ -> Error (Printf.sprintf "config: %s must be a number >= 1" name)
    in
    let bool name default =
      match field name with
      | None -> Ok default
      | Some (Metrics.Bool b) -> Ok b
      | Some _ -> Error (Printf.sprintf "config: %s must be a bool" name)
    in
    let d = default and dr = default.resources in
    let* adders = bound "adders" dr.Schedule.adders in
    let* multipliers = bound "multipliers" dr.Schedule.multipliers in
    let* dividers = bound "dividers" dr.Schedule.dividers in
    let* shifters = bound "shifters" dr.Schedule.shifters in
    let* mem_read_ports =
      int "mem_read_ports" dr.Schedule.mem_read_ports ~min:1
    in
    let* mem_write_ports =
      int "mem_write_ports" dr.Schedule.mem_write_ports ~min:1
    in
    let* chain_budget = num "chain_budget" dr.Schedule.chain_budget in
    let* mem_forwarding = bool "mem_forwarding" dr.Schedule.mem_forwarding in
    let* unroll_factor = int "unroll" d.unroll_factor ~min:1 in
    let* ii_limit = int "ii_limit" d.ii_limit ~min:1 in
    let* verify =
      match field "verify" with
      | None -> Ok d.verify
      | Some (Metrics.List vs) ->
        let vector = function
          | Metrics.List ns ->
            List.fold_right
              (fun n acc ->
                let* acc = acc in
                match n with
                | Metrics.Int n -> Ok (n :: acc)
                | _ -> Error "config: verify vectors must be ints")
              ns (Ok [])
          | _ -> Error "config: verify must be a list of int lists"
        in
        List.fold_right
          (fun v acc ->
            let* acc = acc in
            let* v = vector v in
            Ok (v :: acc))
          vs (Ok [])
      | Some _ -> Error "config: verify must be a list of int lists"
    in
    let* sim =
      match field "sim" with
      | None -> Ok d.sim
      | Some (Metrics.String s) -> (
        match Design.engine_of_name s with
        | Some e -> Ok e
        | None -> Error (Printf.sprintf "config: unknown sim engine %S" s))
      | Some _ -> Error "config: sim must be a string"
    in
    Ok
      { resources =
          { Schedule.adders; multipliers; dividers; shifters;
            mem_read_ports; mem_write_ports; chain_budget; mem_forwarding };
        unroll_factor;
        ii_limit;
        verify;
        dump_after = d.dump_after;
        dump_sink = d.dump_sink;
        sim }
  | _ -> Error "config: expected an object"
