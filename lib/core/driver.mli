(** The compilation driver: parse once, compile many, cache by content.

    The paper's argument is comparative — the same C program pushed
    through many surveyed compilers — and before this module every
    consumer re-parsed and re-typechecked the source once per backend.  A
    {!session} owns one source: the frontend runs exactly once (memoized,
    timed), every backend compiles through {!compile} which memoizes the
    resulting {!Design.t} in a process-wide artifact cache keyed by a
    content hash of (source digest, backend, entry, {!Config.digest}),
    and {!compile_all} runs dialect legality first and returns
    per-backend accept/reject values instead of raising.

    Per-stage timings and cache activity land in the session's
    {!Metrics.t} registry ([driver.frontend_ms],
    [driver.compile.<backend>_ms], [driver.cache.hits/misses]), which
    [chlsc compare --metrics-json] and [BENCH_driver.json] render. *)

type session

val create : ?entry:string -> string -> session
(** A session over a source string; [entry] defaults to ["main"].  The
    frontend has not run yet — it runs (once) on first demand. *)

val entry : session -> string

val source_digest : session -> string
(** Hex content digest of the source — the frontend half of the cache
    key. *)

val metrics : session -> Metrics.t
(** The session's live metrics registry (timings, cache counters). *)

(** {1 Typed rejection} *)

type error =
  | Frontend_error of { message : string; loc : Ast.loc }
      (** parse or typecheck failure — poisons the whole session *)
  | No_c_frontend of { backend : string }
      (** structural EDSL (Ocapi): there is no C source to compile *)
  | Dialect_reject of { backend : string;
                        violations : Dialect.violation list }
      (** the dialect's published restrictions reject the program *)
  | Backend_error of { backend : string; message : string; loc : Ast.loc }
      (** the backend failed mid-compile (lowering, concurrency check,
          unsatisfiable constraints...) *)
  | Verification_error of { backend : string; message : string }
      (** a semantics-preserving pass diverged under the config's
          [verify] vectors *)
  | Constraint_infeasible of { backend : string; message : string }
      (** no allocation meets the program's timing constraints
          (HardwareC's [constrain] walk exhausted the lattice) — a
          property of the design point, not a failure; explore sweeps
          render these as typed [infeasible] cells *)

val render_error : ?file:string -> error -> string
(** One-line diagnostic; locations render as [file:line:col] when a file
    name is given and the location is known. *)

(** {1 Compiling} *)

val program : ?ctx:Span.ctx -> session -> (Ast.program, error) result
(** The parsed, type-checked program.  Runs the frontend on first call
    (recording [driver.frontend_ms]); later calls are cache hits.
    Under a span context, every call opens a ["frontend"] span whose
    [memo] attribute says whether the session memo answered. *)

val compile :
  ?ctx:Span.ctx -> ?config:Config.t -> session -> Registry.t ->
  (Design.t, error) result
(** Compile through one backend: dialect legality first, then the
    content-hashed design cache, then the backend itself (under
    [config]'s knobs, default {!Config.default}) with every backend
    exception converted to a typed {!error}.  Never raises on bad
    input; a repeated call with identical (source, backend, entry,
    config digest) is a cache hit returning the same design, and two
    calls differing only in config compile and cache independently.

    Under a span context the stages become spans: ["frontend"],
    ["dialect-check"], and a ["backend"] span whose [cache] attribute
    records provenance ([front]/[store]/[miss]); a fresh compile
    additionally replays its {!Passes} trace as one ["pass:<name>"]
    child span per declared pass, reusing the engine's own timings and
    IR-size deltas as attributes. *)

val compile_all :
  ?ctx:Span.ctx -> ?config:Config.t -> ?backends:Registry.t list -> session ->
  (Registry.t * (Design.t, error) result) list
(** {!compile} across [backends] — the frontend runs once, each backend
    gets its own accept/reject verdict.  Verdict order is contractual:
    exactly the order of [backends], defaulting to registry declaration
    (Table 1) order — never the iteration order of any hash table — so
    compare tables, metrics reports and the serve protocol are
    byte-stable across runs. *)

val reference : ?ctx:Span.ctx -> session -> args:int list -> (int, error) result
(** The software oracle on the session's (already parsed) program — the
    frontend is amortized here too.  Under a span context the run is an
    ["oracle"] span. *)

(** {1 The process-wide artifact cache}

    The driver's memo is a {!Cache.t}: a decoded in-process front tier
    (always on) over an optional pluggable byte store.  Attaching a
    {!Cache.Disk} store makes warm-cache state survive restarts —
    designs are encoded with [Marshal] (closures included), entries are
    versioned by executable digest and checksummed, and every failure
    mode degrades to a miss plus a recompile. *)

val cache_size : unit -> int
(** Designs currently memoized in the decoded front tier. *)

val clear_cache : unit -> unit
(** Drop every front-tier design (benchmarks use this to measure cold
    compiles and to simulate restarts; sessions keep their frontend
    memo).  An attached byte store keeps its entries. *)

val attach_disk_cache :
  ?max_bytes:int -> dir:string -> unit -> (Cache.store, string) result
(** Open (creating if needed) a persistent design store under [dir] and
    plug it behind the front tier.  [Error message] if the directory is
    unusable — the caller decides whether that is fatal. *)

val set_cache_store : Cache.store option -> unit
(** Plug in (or detach, with [None]) an arbitrary byte store. *)

val cache_store : unit -> Cache.store option

val cache_metrics : unit -> (string * int) list
(** Cache-subsystem gauges and counters ([driver.cache.front_entries],
    [driver.cache.front_hits/front_misses],
    [driver.store.hits/misses/puts/evictions/corrupt/version_skew/...])
    for metrics reports and [chlsc cache stats]. *)

val cache_hit_rates : unit -> (string * float) list
(** Derived hit-rate percentages — [driver.cache.front_hit_rate_pct]
    over the decoded front tier, [driver.store.hit_rate_pct] over the
    byte store — each present only once that tier has seen at least one
    lookup, so a fresh process reports nothing rather than 0%. *)
