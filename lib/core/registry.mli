(** The backend registry: every surveyed synthesis scheme, looked up by
    name instead of dispatched over a closed variant.

    Backends self-describe as {!Backend.descriptor} records in their own
    modules; this registry collects them at module initialisation (one
    registration line per backend) and hands out thin {!t} handles.  A
    handle is just the canonical name, so handles compare structurally
    and survive in data (the old [Chls.backend] constructors compared
    with [=]; handles still do).

    The paper's comparative tables ([chlsc compare], experiment E3) walk
    {!all}/{!compiling} instead of hand-maintained lists, so adding a
    twelfth backend means one new module plus one registration line —
    nothing else in the repo names backends exhaustively. *)

type t
(** A registered backend: a thin handle (the canonical name) over the
    descriptor table.  Structural equality is by name. *)

exception Unknown_backend of string
(** Raised by {!get} with a message listing every registered name and
    alias. *)

val register : Backend.descriptor -> unit
(** Add a descriptor.  @raise Invalid_argument if its name or an alias
    (case-insensitively) collides with an existing registration. *)

val find : string -> t option
(** Case-insensitive lookup by canonical name or alias. *)

val get : string -> t
(** Like {!find}. @raise Unknown_backend (listing the catalog) on miss. *)

val all : unit -> t list
(** Every registered backend, in registration (Table 1) order. *)

val compiling : unit -> t list
(** The backends whose capabilities include a C frontend (everything
    except the structural Ocapi EDSL). *)

val names : unit -> string list
(** Canonical names in registration order. *)

val catalog : unit -> string
(** Human-readable one-line listing — ["cones, hardwarec, transmogrifier
    (alias tmcc), ..."] — for unknown-backend error messages. *)

(** {1 Descriptor accessors} *)

val descriptor : t -> Backend.descriptor
val name : t -> string
val aliases : t -> string list
val description : t -> string
val dialect : t -> Dialect.t
val pipeline : t -> Passes.pipeline option
val capabilities : t -> Backend.capabilities

val compile :
  t -> ?knobs:Backend.knobs -> Ast.program -> entry:string -> Design.t
(** The descriptor's compile entry point; [knobs] (default
    {!Backend.default_knobs}) carries the per-compile resource
    allocation, unroll factor and pass options.
    @raise Backend.No_c_frontend for structural backends (Ocapi). *)

val equal : t -> t -> bool
