(* chlsc serve: length-prefixed JSON protocol + Domain pool.  See
   serve.mli for the wire-protocol reference.

   Layering: Json/Frame are the pure codec (unit-testable without a
   socket), [parse_request] is the typed decode, [Pool] owns the worker
   domains and the bounded job queue, and [run] is the accept loop that
   glues a Unix-domain socket to the pool.  Every failure mode a peer
   can trigger — malformed JSON, unknown ops, oversized frames, compile
   errors, even handler bugs — comes back as a typed error response;
   nothing a client sends can kill the daemon. *)

(* --- JSON parsing (rendering lives in Metrics) --- *)

module Json = struct
  exception Fail of string * int

  let fail pos msg = raise (Fail (msg, pos))

  let parse (s : string) : (Metrics.json, string) result =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail !pos (Printf.sprintf "expected %C" c)
    in
    let literal word value =
      if !pos + String.length word <= n
         && String.sub s !pos (String.length word) = word
      then begin
        pos := !pos + String.length word;
        value
      end
      else fail !pos (Printf.sprintf "expected %s" word)
    in
    let utf8_of_code buf u =
      (* \uXXXX escapes decode to UTF-8 bytes *)
      if u < 0x80 then Buffer.add_char buf (Char.chr u)
      else if u < 0x800 then begin
        Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
        Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
      end
      else begin
        Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
        Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
      end
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let escape () =
        match peek () with
        | None -> fail !pos "unterminated escape"
        | Some c -> (
          advance ();
          match c with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' -> (
            if !pos + 4 > n then fail !pos "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            match int_of_string_opt ("0x" ^ hex) with
            | Some u ->
              pos := !pos + 4;
              utf8_of_code buf u
            | None -> fail !pos "bad \\u escape")
          | c -> fail !pos (Printf.sprintf "bad escape \\%c" c))
      in
      let rec go () =
        match peek () with
        | None -> fail !pos "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' ->
          advance ();
          escape ();
          go ()
        | Some c when Char.code c < 0x20 -> fail !pos "raw control character"
        | Some c ->
          advance ();
          Buffer.add_char buf c;
          go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while match peek () with Some c when is_num_char c -> true | _ -> false
      do
        advance ()
      done;
      let lit = String.sub s start (!pos - start) in
      let integral =
        not (String.exists (fun c -> c = '.' || c = 'e' || c = 'E') lit)
      in
      if integral then
        match int_of_string_opt lit with
        | Some i -> Metrics.Int i
        | None -> (
          match float_of_string_opt lit with
          | Some f -> Metrics.Float f
          | None -> fail start (Printf.sprintf "bad number %S" lit))
      else
        match float_of_string_opt lit with
        | Some f -> Metrics.Float f
        | None -> fail start (Printf.sprintf "bad number %S" lit)
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail !pos "unexpected end of input"
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Metrics.Obj []
        end
        else begin
          let members = ref [] in
          let rec members_loop () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            members := (k, v) :: !members;
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              members_loop ()
            | Some '}' -> advance ()
            | _ -> fail !pos "expected ',' or '}'"
          in
          members_loop ();
          Metrics.Obj (List.rev !members)
        end
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Metrics.List []
        end
        else begin
          let items = ref [] in
          let rec items_loop () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              items_loop ()
            | Some ']' -> advance ()
            | _ -> fail !pos "expected ',' or ']'"
          in
          items_loop ();
          Metrics.List (List.rev !items)
        end
      | Some '"' -> Metrics.String (parse_string ())
      | Some 't' -> literal "true" (Metrics.Bool true)
      | Some 'f' -> literal "false" (Metrics.Bool false)
      | Some 'n' -> literal "null" Metrics.Null
      | Some ('0' .. '9' | '-') -> parse_number ()
      | Some c -> fail !pos (Printf.sprintf "unexpected %C" c)
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail !pos "trailing bytes after JSON value";
      v
    with
    | v -> Ok v
    | exception Fail (msg, p) ->
      Error (Printf.sprintf "JSON parse error at offset %d: %s" p msg)

  let member name = function
    | Metrics.Obj members -> List.assoc_opt name members
    | _ -> None
end

(* --- framing --- *)

module Frame = struct
  let max_frame = 16 * 1024 * 1024

  exception Protocol_error of string

  let write oc payload =
    let len = String.length payload in
    if len > max_frame then
      raise
        (Protocol_error
           (Printf.sprintf "frame of %d bytes exceeds the %d-byte limit" len
              max_frame));
    let hdr = Bytes.create 4 in
    Bytes.set hdr 0 (Char.chr ((len lsr 24) land 0xff));
    Bytes.set hdr 1 (Char.chr ((len lsr 16) land 0xff));
    Bytes.set hdr 2 (Char.chr ((len lsr 8) land 0xff));
    Bytes.set hdr 3 (Char.chr (len land 0xff));
    output_bytes oc hdr;
    output_string oc payload;
    flush oc

  let read ic =
    match input_char ic with
    | exception End_of_file -> None (* clean EOF at a frame boundary *)
    | c0 ->
      let next () =
        match input_char ic with
        | c -> Char.code c
        | exception End_of_file ->
          raise (Protocol_error "truncated frame length")
      in
      (* bind in sequence: operand order inside one expression would be
         unspecified, and these reads must happen big-endian first *)
      let b1 = next () in
      let b2 = next () in
      let b3 = next () in
      let len = (Char.code c0 lsl 24) lor (b1 lsl 16) lor (b2 lsl 8) lor b3 in
      if len > max_frame then
        raise
          (Protocol_error
             (Printf.sprintf "frame length %d exceeds the %d-byte limit" len
                max_frame));
      let buf = Bytes.create len in
      (match really_input ic buf 0 len with
      | () -> ()
      | exception End_of_file ->
        raise (Protocol_error "truncated frame payload"));
      Some (Bytes.to_string buf)
end

(* --- typed requests --- *)

type request =
  | Compile of {
      id : Metrics.json;
      source : string;
      entry : string;
      backend : string;
      args : int list option;
      config : Config.t option;
    }
  | Compare of {
      id : Metrics.json;
      source : string;
      entry : string;
      backends : string list option;
      vectors : int list list;
      config : Config.t option;
    }
  | Check of { id : Metrics.json; source : string; dialect : string }
  | Stats of { id : Metrics.json }
  | Shutdown of { id : Metrics.json }

let request_id = function
  | Compile { id; _ } | Compare { id; _ } | Check { id; _ } | Stats { id }
  | Shutdown { id } ->
    id

let op_name = function
  | Compile _ -> "compile"
  | Compare _ -> "compare"
  | Check _ -> "check"
  | Stats _ -> "stats"
  | Shutdown _ -> "shutdown"

let error_response ?(id = Metrics.Null) ~kind message =
  Metrics.Obj
    [ ("id", id);
      ("ok", Metrics.Bool false);
      ( "error",
        Metrics.Obj
          [ ("kind", Metrics.String kind);
            ("message", Metrics.String message) ] ) ]

let parse_request (j : Metrics.json) : (request, string * Metrics.json) result
    =
  let id = Option.value (Json.member "id" j) ~default:Metrics.Null in
  let err msg = Error (msg, id) in
  let str_field ?default name =
    match Json.member name j with
    | Some (Metrics.String s) -> Ok s
    | Some _ -> err (Printf.sprintf "%S must be a string" name)
    | None -> (
      match default with
      | Some d -> Ok d
      | None -> err (Printf.sprintf "missing %S" name))
  in
  let int_list name = function
    | Metrics.List items ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | Metrics.Int i :: rest -> go (i :: acc) rest
        | _ -> err (Printf.sprintf "%S must contain integers" name)
      in
      go [] items
    | _ -> err (Printf.sprintf "%S must be a list" name)
  in
  let ( let* ) = Result.bind in
  (* per-request synthesis configuration: an optional "config" object
     parsed by Config.of_json, so sweeps can ride the Domain pool with a
     distinct design point per request *)
  let config () =
    match Json.member "config" j with
    | None | Some Metrics.Null -> Ok None
    | Some v -> (
      match Config.of_json v with
      | Ok c -> Ok (Some c)
      | Error msg -> err msg)
  in
  match Json.member "op" j with
  | None -> err "missing \"op\""
  | Some (Metrics.String op) -> (
    match op with
    | "compile" ->
      let* source = str_field "source" in
      let* entry = str_field ~default:"main" "entry" in
      let* backend = str_field ~default:"bachc" "backend" in
      let* args =
        match Json.member "args" j with
        | None | Some Metrics.Null -> Ok None
        | Some v -> Result.map Option.some (int_list "args" v)
      in
      let* config = config () in
      Ok (Compile { id; source; entry; backend; args; config })
    | "compare" ->
      let* source = str_field "source" in
      let* entry = str_field ~default:"main" "entry" in
      let* backends =
        match Json.member "backends" j with
        | None | Some Metrics.Null -> Ok None
        | Some (Metrics.List items) ->
          let rec go acc = function
            | [] -> Ok (Some (List.rev acc))
            | Metrics.String s :: rest -> go (s :: acc) rest
            | _ -> err "\"backends\" must contain strings"
          in
          go [] items
        | Some _ -> err "\"backends\" must be a list"
      in
      let* vectors =
        match Json.member "args" j with
        | None | Some Metrics.Null | Some (Metrics.List []) -> Ok []
        | Some (Metrics.List (Metrics.List _ :: _ as vecs)) ->
          let rec go acc = function
            | [] -> Ok (List.rev acc)
            | v :: rest ->
              let* ints = int_list "args" v in
              go (ints :: acc) rest
          in
          go [] vecs
        | Some (Metrics.List _ as flat) ->
          (* a single flat vector is accepted as one-vector shorthand *)
          Result.map (fun v -> [ v ]) (int_list "args" flat)
        | Some _ -> err "\"args\" must be a list of integer vectors"
      in
      let* config = config () in
      Ok (Compare { id; source; entry; backends; vectors; config })
    | "check" ->
      let* source = str_field "source" in
      let* dialect = str_field ~default:"handelc" "dialect" in
      Ok (Check { id; source; dialect })
    | "stats" -> Ok (Stats { id })
    | "shutdown" -> Ok (Shutdown { id })
    | op -> err (Printf.sprintf "unknown op %S" op))
  | Some _ -> err "\"op\" must be a string"

(* --- handlers --- *)

let kind_of_error = function
  | Driver.Frontend_error _ -> "frontend-error"
  | Driver.No_c_frontend _ -> "no-c-frontend"
  | Driver.Dialect_reject _ -> "dialect-reject"
  | Driver.Backend_error _ -> "backend-error"
  | Driver.Verification_error _ -> "verification-error"
  | Driver.Constraint_infeasible _ -> "constraint-infeasible"

let driver_error ~id e =
  error_response ~id ~kind:(kind_of_error e) (Driver.render_error e)

let session_counter s key =
  match Metrics.find (Driver.metrics s) key with
  | Some (Metrics.Int n) -> n
  | _ -> 0

(* One session per (source, entry) per worker domain: the frontend runs
   once per distinct program per domain, designs are shared across
   domains through the process-wide content-hash cache. *)
let session_for sessions source entry =
  let key = Digest.to_hex (Digest.string source) ^ "|" ^ entry in
  match Hashtbl.find_opt sessions key with
  | Some s -> s
  | None ->
    if Hashtbl.length sessions > 128 then Hashtbl.reset sessions;
    let s = Driver.create ~entry source in
    Hashtbl.add sessions key s;
    s

let run_design ?ctx ?sim (design : Design.t) args =
  match Design.run_traced ?ctx ?sim design (Design.int_args args) with
  | r -> `Ok r
  | exception Rtlsim.Timeout { cycles; state = _ } -> `Timeout (Some cycles)
  | exception Asim.Timeout _ -> `Timeout None
  | exception Handelc.Timeout -> `Timeout None
  | exception C2v_machine.Timeout -> `Timeout None
  | exception Cir_interp.Timeout -> `Timeout None

let handle_compile sessions ~ctx ~id ~source ~entry ~backend ~args ~config =
  match Registry.find backend with
  | None ->
    error_response ~id ~kind:"protocol"
      (Printf.sprintf "unknown backend %S; registered: %s" backend
         (Registry.catalog ()))
  | Some b -> (
    let s = session_for sessions source entry in
    let front0 = session_counter s "driver.cache.design_hits"
    and store0 = session_counter s "driver.cache.design_store_hits" in
    match Driver.compile ~ctx ?config s b with
    | Error e -> driver_error ~id e
    | Ok design -> (
      let cached =
        if session_counter s "driver.cache.design_hits" > front0 then "front"
        else if session_counter s "driver.cache.design_store_hits" > store0
        then "store"
        else "miss"
      in
      let base =
        [ ("id", id);
          ("ok", Metrics.Bool true);
          ("backend", Metrics.String (Registry.name b));
          ("cached", Metrics.String cached) ]
        @
        (* echo the config digest so sweep clients can correlate cache
           provenance with their design points *)
        match config with
        | Some c -> [ ("config_digest", Metrics.String (Config.digest c)) ]
        | None -> []
      in
      match args with
      | None -> Metrics.Obj (base @ [ ("status", Metrics.String "compiled") ])
      | Some args -> (
        match
          run_design ~ctx
            ?sim:(Option.map (fun c -> c.Config.sim) config)
            design args
        with
        | `Timeout cycles ->
          Metrics.Obj
            (base
            @ [ ("status", Metrics.String "timeout") ]
            @
            match cycles with
            | Some c -> [ ("cycles", Metrics.Int c) ]
            | None -> [])
        | `Ok r ->
          (* every served design is checked against the interpreter
             oracle on the request's vector *)
          let observed = Option.map Bitvec.to_int r.Design.result in
          let oracle =
            match Driver.reference ~ctx s ~args with
            | Ok v -> `Expected v
            | Error e -> `Failed (Driver.render_error e)
          in
          Metrics.Obj
            (base
            @ [ ("status", Metrics.String "ok");
                ( "result",
                  match observed with
                  | Some v -> Metrics.Int v
                  | None -> Metrics.Null ) ]
            @ (match r.Design.cycles with
              | Some c -> [ ("cycles", Metrics.Int c) ]
              | None -> [])
            @ (match r.Design.time_units with
              | Some t -> [ ("time_units", Metrics.Fixed (1, t)) ]
              | None -> [])
            @
            match oracle with
            | `Expected v ->
              [ ("matches_reference", Metrics.Bool (observed = Some v)) ]
            | `Failed msg -> [ ("reference_error", Metrics.String msg) ]))))

let handle_compare sessions ~ctx ~id ~source ~entry ~backends ~vectors
    ~config =
  let resolve names =
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | n :: rest -> (
        match Registry.find (String.trim n) with
        | Some b -> go (b :: acc) rest
        | None ->
          Error
            (Printf.sprintf "unknown backend %S; registered: %s" n
               (Registry.catalog ())))
    in
    go [] names
  in
  let backends =
    match backends with
    | None -> Ok (Registry.all ())
    | Some names -> resolve names
  in
  match backends with
  | Error msg -> error_response ~id ~kind:"protocol" msg
  | Ok backends -> (
    let s = session_for sessions source entry in
    match Driver.program ~ctx s with
    | Error e -> driver_error ~id e
    | Ok _ ->
      let expected =
        List.map
          (fun args ->
            match Driver.reference ~ctx s ~args with
            | Ok v -> Some v
            | Error _ -> None)
          vectors
      in
      let mismatch = ref false in
      let rows =
        List.map
          (fun (b, verdict) ->
            let name = Registry.name b in
            match verdict with
            | Error e ->
              Metrics.Obj
                [ ("backend", Metrics.String name);
                  ("status", Metrics.String (kind_of_error e));
                  ("detail", Metrics.String (Driver.render_error e)) ]
            | Ok design ->
              let outcomes =
                List.map (fun args -> run_design ~ctx design args) vectors
              in
              let results =
                List.map
                  (function
                    | `Ok r -> Option.map Bitvec.to_int r.Design.result
                    | `Timeout _ -> None)
                  outcomes
              in
              let agrees =
                vectors <> []
                && List.for_all2
                     (fun observed exp -> exp <> None && observed = exp)
                     results expected
              in
              if vectors <> [] && not agrees then mismatch := true;
              Metrics.Obj
                ([ ("backend", Metrics.String name);
                   ("status", Metrics.String "ok");
                   ( "results",
                     Metrics.List
                       (List.map
                          (function
                            | Some v -> Metrics.Int v
                            | None -> Metrics.Null)
                          results) ) ]
                @
                if vectors = [] then []
                else [ ("agrees", Metrics.Bool agrees) ]))
          (Driver.compile_all ~ctx ?config ~backends s)
      in
      Metrics.Obj
        [ ("id", id);
          ("ok", Metrics.Bool true);
          ("entry", Metrics.String entry);
          ("vectors", Metrics.Int (List.length vectors));
          ("backends", Metrics.List rows);
          ("mismatch", Metrics.Bool !mismatch) ])

let handle_check sessions ~ctx ~id ~source ~dialect =
  let resolved =
    match Registry.find dialect with
    | Some b -> Some (Registry.dialect b)
    | None -> Dialect.find dialect
  in
  match resolved with
  | None ->
    error_response ~id ~kind:"protocol"
      (Printf.sprintf "unknown dialect %S (try handelc, specc, bachc)"
         dialect)
  | Some d -> (
    let s = session_for sessions source "main" in
    match Driver.program ~ctx s with
    | Error e -> driver_error ~id e
    | Ok program ->
      let diags =
        Span.span ctx "conc-check"
          ~attrs:[ ("dialect", Metrics.String d.Dialect.name) ]
          (fun _ -> Conc_check.check_program ~dialect:d program)
      in
      let errors = Conc_check.errors diags
      and warnings = Conc_check.warnings diags in
      Metrics.Obj
        [ ("id", id);
          ("ok", Metrics.Bool true);
          ("dialect", Metrics.String d.Dialect.name);
          ("errors", Metrics.Int (List.length errors));
          ("warnings", Metrics.Int (List.length warnings));
          ( "diagnostics",
            Metrics.List
              (List.map
                 (fun diag ->
                   Metrics.String (Conc_check.render ?file:None diag))
                 diags) ) ])

(* --- the Domain pool --- *)

module Pool = struct
  (* A queued job may carry a live trace: the request root span plus the
     queue-wait span opened at submit time (on the accept loop's side of
     the Domain boundary) and closed by the worker that dequeues it. *)
  type job = {
    req : request;
    respond : Metrics.json -> unit;
    jtrace : (Span.trace * Span.ctx * Span.ctx) option;
        (* (trace, request ctx, queue-wait ctx) *)
  }

  type t = {
    lock : Mutex.t;
    not_empty : Condition.t;
    not_full : Condition.t;
    idle : Condition.t;
    queue : job Queue.t;
    capacity : int;
    max_batch : int;
    n_domains : int;
    tracing : bool;
    on_trace : (pid:int -> tid:int -> Span.trace -> unit) option;
    mutable active : int;
    mutable total_jobs : int;
    mutable stopping : bool;
    mutable joined : bool;
    mutable workers : unit Domain.t list;
    pmetrics : Metrics.t;
    mlock : Mutex.t;
  }

  let domains t = t.n_domains

  let metrics t = t.pmetrics

  let snapshot_metrics t =
    Mutex.lock t.mlock;
    let pairs = Metrics.pairs t.pmetrics in
    Mutex.unlock t.mlock;
    pairs

  let record t req ok dt_ms =
    let op = op_name req in
    Mutex.lock t.mlock;
    Metrics.incr t.pmetrics "serve.requests.total";
    Metrics.incr t.pmetrics (Printf.sprintf "serve.requests.%s" op);
    if not ok then Metrics.incr t.pmetrics "serve.errors";
    Metrics.observe_ms t.pmetrics
      (Printf.sprintf "serve.latency.%s_ms" op)
      dt_ms;
    Mutex.unlock t.mlock

  let stats t =
    Mutex.lock t.lock;
    let queued = Queue.length t.queue
    and active = t.active
    and total = t.total_jobs in
    Mutex.unlock t.lock;
    [ ("domains", t.n_domains);
      ("queue_capacity", t.capacity);
      ("queued", queued);
      ("queue_depth", queued);
      ("active", active);
      ("total_jobs", total) ]

  let response_ok = function
    | Metrics.Obj members -> (
      match List.assoc_opt "ok" members with
      | Some (Metrics.Bool b) -> b
      | _ -> false)
    | _ -> false

  let dispatch t sessions ~ctx req =
    match req with
    | Compile { id; source; entry; backend; args; config } ->
      handle_compile sessions ~ctx ~id ~source ~entry ~backend ~args ~config
    | Compare { id; source; entry; backends; vectors; config } ->
      handle_compare sessions ~ctx ~id ~source ~entry ~backends ~vectors
        ~config
    | Check { id; source; dialect } ->
      handle_check sessions ~ctx ~id ~source ~dialect
    | Stats { id } ->
      let m = Metrics.create () in
      Metrics.set_string m "schema" "chls.metrics/3";
      List.iter
        (fun (k, v) -> Metrics.set_int m ("serve.pool." ^ k) v)
        (stats t);
      Metrics.set_int m "serve.trace.flight_capacity"
        (Span.Flight.capacity ());
      Metrics.set_int m "serve.trace.flight_occupancy"
        (Span.Flight.occupancy ());
      Metrics.set_int m "serve.trace.flight_recorded"
        (Span.Flight.recorded ());
      Metrics.set_int m "serve.trace.flight_dropped"
        (Span.Flight.dropped ());
      List.iter
        (fun (k, v) -> Metrics.set m k v)
        (snapshot_metrics t);
      List.iter
        (fun (k, v) -> Metrics.set_int m k v)
        (Driver.cache_metrics ());
      List.iter
        (fun (k, v) -> Metrics.set_fixed m k ~decimals:1 v)
        (Driver.cache_hit_rates ());
      (match Metrics.to_json m with
      | Metrics.Obj members ->
        Metrics.Obj
          (("id", id) :: ("ok", Metrics.Bool true) :: members)
      | other -> other)
    | Shutdown { id } ->
      Metrics.Obj
        [ ("id", id);
          ("ok", Metrics.Bool true);
          ("shutting_down", Metrics.Bool true) ]

  (* The trace id rides next to the caller's own id; a failing answer
     additionally carries the flight recorder's last-N finished spans,
     so every dialect-reject/verification-error/internal response is
     its own crash report. *)
  let decorate_response tr resp =
    match resp with
    | Metrics.Obj members ->
      let tid = ("trace_id", Metrics.String (Span.trace_id tr)) in
      let rec ins = function
        | (("id", _) as m) :: rest -> m :: tid :: rest
        | m :: rest -> m :: ins rest
        | [] -> [ tid ]
      in
      let members = ins members in
      Metrics.Obj
        (if response_ok resp then members
         else members @ [ ("flight_recorder", Span.Flight.dump ()) ])
    | other -> other

  let handle_traced t sessions ?jtrace ?(pid = 0) ?(tid = 0) req =
    let sessions =
      match sessions with Some s -> s | None -> Hashtbl.create 4
    in
    let t0 = Unix.gettimeofday () in
    let id = request_id req in
    let jtrace =
      match jtrace with
      | Some _ as tr -> tr
      | None ->
        if t.tracing && Span.enabled () then begin
          let tr, ctx = Span.start ~kind:"request" () in
          Span.add_attr ctx "op" (Metrics.String (op_name req));
          Some (tr, ctx)
        end
        else None
    in
    let ctx = match jtrace with Some (_, c) -> c | None -> Span.null in
    let resp =
      try dispatch t sessions ~ctx req
      with e ->
        (* a handler bug must not kill the worker domain *)
        error_response ~id ~kind:"internal" (Printexc.to_string e)
    in
    record t req (response_ok resp) ((Unix.gettimeofday () -. t0) *. 1000.);
    match jtrace with
    | None -> resp
    | Some (tr, _) ->
      Span.finish tr;
      let resp = decorate_response tr resp in
      (match t.on_trace with
      | Some f -> ( try f ~pid ~tid tr with _ -> ())
      | None -> ());
      resp

  let handle t sessions req = handle_traced t sessions req

  (* Drain up to max_batch queued jobs in one lock acquisition, grouped
     by source so a batch over one program walks its session once; the
     per-domain session table then memoizes across batches too. *)
  let take_batch t =
    let rec drain acc k =
      if k = 0 || Queue.is_empty t.queue then List.rev acc
      else drain (Queue.pop t.queue :: acc) (k - 1)
    in
    let batch = drain [] t.max_batch in
    let source_key job =
      match job.req with
      | Compile { source; entry; _ } | Compare { source; entry; _ } ->
        source ^ "|" ^ entry
      | Check { source; _ } -> source
      | Stats _ | Shutdown _ -> ""
    in
    List.stable_sort
      (fun a b -> compare (source_key a) (source_key b))
      batch

  let rec worker_loop t ~widx sessions =
    Mutex.lock t.lock;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.not_empty t.lock
    done;
    if Queue.is_empty t.queue then begin
      (* stopping and nothing left *)
      Mutex.unlock t.lock
    end
    else begin
      let batch = take_batch t in
      t.active <- t.active + List.length batch;
      Condition.broadcast t.not_full;
      Mutex.unlock t.lock;
      List.iter
        (fun job ->
          (* the queue-wait span ends the instant a worker owns the job *)
          let jtrace =
            match job.jtrace with
            | None -> None
            | Some (tr, ctx, q) ->
              Span.exit q;
              Some (tr, ctx)
          in
          let resp =
            handle_traced t (Some sessions) ?jtrace ~pid:widx
              ~tid:(Domain.self () :> int)
              job.req
          in
          (try job.respond resp with _ -> ());
          Mutex.lock t.lock;
          t.active <- t.active - 1;
          if t.active = 0 && Queue.is_empty t.queue then
            Condition.broadcast t.idle;
          Mutex.unlock t.lock)
        batch;
      worker_loop t ~widx sessions
    end

  let create ?domains:n ?queue_capacity ?max_batch ?(tracing = true)
      ?on_trace () =
    let n_domains =
      max 1 (Option.value n ~default:(Domain.recommended_domain_count ()))
    in
    let capacity =
      max 1 (Option.value queue_capacity ~default:(4 * n_domains))
    in
    let max_batch = max 1 (Option.value max_batch ~default:16) in
    let t =
      { lock = Mutex.create ();
        not_empty = Condition.create ();
        not_full = Condition.create ();
        idle = Condition.create ();
        queue = Queue.create ();
        capacity;
        max_batch;
        n_domains;
        tracing;
        on_trace;
        active = 0;
        total_jobs = 0;
        stopping = false;
        joined = false;
        workers = [];
        pmetrics = Metrics.create ();
        mlock = Mutex.create () }
    in
    t.workers <-
      List.init n_domains (fun widx ->
          Domain.spawn (fun () -> worker_loop t ~widx (Hashtbl.create 16)));
    t

  let submit t req ~respond =
    Mutex.lock t.lock;
    while Queue.length t.queue >= t.capacity && not t.stopping do
      Condition.wait t.not_full t.lock
    done;
    if t.stopping then begin
      Mutex.unlock t.lock;
      try
        respond
          (error_response ~id:(request_id req) ~kind:"protocol"
             "server is shutting down")
      with _ -> ()
    end
    else begin
      let jtrace =
        if t.tracing && Span.enabled () then begin
          let tr, ctx = Span.start ~kind:"request" () in
          Span.add_attr ctx "op" (Metrics.String (op_name req));
          Some (tr, ctx, Span.enter ctx "queue-wait")
        end
        else None
      in
      Queue.push { req; respond; jtrace } t.queue;
      t.total_jobs <- t.total_jobs + 1;
      Condition.signal t.not_empty;
      Mutex.unlock t.lock
    end

  let drain t =
    Mutex.lock t.lock;
    while t.active > 0 || not (Queue.is_empty t.queue) do
      Condition.wait t.idle t.lock
    done;
    Mutex.unlock t.lock

  let shutdown t =
    drain t;
    Mutex.lock t.lock;
    t.stopping <- true;
    Condition.broadcast t.not_empty;
    Condition.broadcast t.not_full;
    let join_now = not t.joined in
    t.joined <- true;
    Mutex.unlock t.lock;
    if join_now then begin
      List.iter Domain.join t.workers;
      t.workers <- []
    end
end

(* --- the daemon --- *)

let run ?domains ?queue_capacity ?max_batch ?cache_dir ?cache_max_bytes
    ?trace_json ?(log = fun _ -> ()) ~socket () =
  (match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | _ -> ()
  | exception _ -> ());
  let cache_attached =
    match cache_dir with
    | None -> Ok ()
    | Some dir ->
      Result.map ignore
        (Driver.attach_disk_cache ?max_bytes:cache_max_bytes ~dir ())
  in
  match cache_attached with
  | Error msg -> Error msg
  | Ok () -> (
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.unlink socket with _ -> ());
    match
      Unix.bind fd (Unix.ADDR_UNIX socket);
      Unix.listen fd 16
    with
    | exception e ->
      (try Unix.close fd with _ -> ());
      Error
        (Printf.sprintf "cannot bind %s: %s" socket (Printexc.to_string e))
    | () ->
      let sink = Option.map (fun _ -> Span.Chrome.create ()) trace_json in
      let on_trace =
        Option.map
          (fun sink ~pid ~tid tr -> Span.Chrome.add sink ~pid ~tid tr)
          sink
      in
      let pool =
        Pool.create ?domains ?queue_capacity ?max_batch ?on_trace ()
      in
      let stop = ref false in
      let on_signal _ = stop := true in
      let prev_int = Sys.signal Sys.sigint (Sys.Signal_handle on_signal) in
      let prev_term = Sys.signal Sys.sigterm (Sys.Signal_handle on_signal) in
      log
        (Printf.sprintf
           "chlsc serve: listening on %s (%d domain(s), queue %s%s)" socket
           (Pool.domains pool)
           (match queue_capacity with
           | Some c -> string_of_int c
           | None -> string_of_int (4 * Pool.domains pool))
           (match cache_dir with
           | Some d -> Printf.sprintf ", cache %s" d
           | None -> ""));
      let handle_connection cfd =
        let ic = Unix.in_channel_of_descr cfd in
        let oc = Unix.out_channel_of_descr cfd in
        let wlock = Mutex.create () in
        let send json =
          Mutex.lock wlock;
          (try Frame.write oc (Metrics.render_compact json) with _ -> ());
          Mutex.unlock wlock
        in
        let rec loop () =
          if !stop then ()
          else
            match Frame.read ic with
            | None -> ()
            | exception Frame.Protocol_error msg ->
              send (error_response ~kind:"protocol" msg)
            | exception _ -> ()
            | Some payload -> (
              match Json.parse payload with
              | Error msg ->
                send (error_response ~kind:"protocol" msg);
                loop ()
              | Ok j -> (
                match parse_request j with
                | Error (msg, id) ->
                  send (error_response ~id ~kind:"protocol" msg);
                  loop ()
                | Ok (Shutdown { id }) ->
                  (* answer only after in-flight work has responded, so
                     a pipelined client sees every reply before the
                     goodbye *)
                  Pool.drain pool;
                  send
                    (Metrics.Obj
                       [ ("id", id);
                         ("ok", Metrics.Bool true);
                         ("shutting_down", Metrics.Bool true) ]);
                  stop := true
                | Ok req ->
                  Pool.submit pool req ~respond:send;
                  loop ()))
        in
        loop ();
        (* pending responses still target this socket *)
        Pool.drain pool;
        (try flush oc with _ -> ());
        try Unix.close cfd with _ -> ()
      in
      let rec accept_loop () =
        if !stop then ()
        else begin
          (match Unix.select [ fd ] [] [] 0.25 with
          | [], _, _ -> ()
          | _ -> (
            match Unix.accept fd with
            | cfd, _ -> handle_connection cfd
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
          accept_loop ()
        end
      in
      accept_loop ();
      Pool.shutdown pool;
      (try Unix.close fd with _ -> ());
      (try Unix.unlink socket with _ -> ());
      Sys.set_signal Sys.sigint prev_int;
      Sys.set_signal Sys.sigterm prev_term;
      (match (trace_json, sink) with
      | Some path, Some sink ->
        (try
           Span.Chrome.write_file sink path;
           log
             (Printf.sprintf "chlsc serve: wrote %d trace event(s) to %s"
                (Span.Chrome.events sink) path)
         with e ->
           log
             (Printf.sprintf "chlsc serve: cannot write trace %s: %s" path
                (Printexc.to_string e)))
      | _ -> ());
      log "chlsc serve: shut down cleanly";
      Ok ())

(* --- client --- *)

module Client = struct
  type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

  let connect ?timeout_ms ~socket () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (match timeout_ms with
    | Some ms when ms > 0 ->
      let s = float_of_int ms /. 1000. in
      (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO s with _ -> ());
      (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO s with _ -> ())
    | _ -> ());
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () ->
      Ok
        { fd;
          ic = Unix.in_channel_of_descr fd;
          oc = Unix.out_channel_of_descr fd }
    | exception e ->
      (try Unix.close fd with _ -> ());
      Error
        (Printf.sprintf "cannot connect to %s: %s" socket
           (Printexc.to_string e))

  (* SO_RCVTIMEO surfaces through channel reads as EAGAIN-flavoured
     failures; name them for what they are so a wedged daemon produces
     "timed out", not an errno spelling. *)
  let is_timeout = function
    | Unix.Unix_error
        ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT), _, _)
    | Sys_blocked_io ->
      true
    | Sys_error m ->
      let has needle =
        let nl = String.length needle and ml = String.length m in
        let rec go i =
          i + nl <= ml && (String.sub m i nl = needle || go (i + 1))
        in
        go 0
      in
      has "emporarily unavailable" || has "imed out"
    | _ -> false

  let rpc t payload =
    match
      Frame.write t.oc payload;
      Frame.read t.ic
    with
    | Some resp -> Ok resp
    | None -> Error "connection closed by server"
    | exception Frame.Protocol_error msg -> Error msg
    | exception e when is_timeout e ->
      Error "timed out waiting for a response"
    | exception e -> Error (Printexc.to_string e)

  let close t = try Unix.close t.fd with _ -> ()
end
