(* The built-in workload suite.

   These kernels are the kinds of programs the surveyed papers evaluate
   on — DSP loops (FIR, dot product, matrix multiply), control-dominated
   algorithms (GCD, bubble sort), bit manipulation (CRC, popcount),
   streaming process networks (producer/consumer over channels) and the
   thorny-C cases only C2Verilog accepts (pointers, recursion, malloc).
   Each workload carries representative argument vectors so tests and
   experiments share one ground truth. *)

type category =
  | Regular_loop (* data-independent trip counts, pipelineable *)
  | Irregular (* data-dependent control *)
  | Bit_twiddling
  | Concurrent (* par / channels *)
  | Thorny_c (* pointers, recursion, malloc *)

type t = {
  name : string;
  source : string;
  entry : string;
  arg_sets : int list list;
  category : category;
  description : string;
}

let gcd =
  { name = "gcd";
    entry = "gcd";
    category = Irregular;
    description = "Euclid's algorithm; data-dependent loop with division";
    arg_sets = [ [ 54; 24 ]; [ 1071; 462 ]; [ 17; 5 ]; [ 270; 192 ] ];
    source =
      {|
      int gcd(int a, int b) {
        while (b != 0) {
          int t = b;
          b = a % b;
          a = t;
        }
        return a;
      }
      |} }

let fib =
  { name = "fib";
    entry = "fib";
    category = Regular_loop;
    description = "iterative Fibonacci; serial dependence chain";
    arg_sets = [ [ 10 ]; [ 0 ]; [ 1 ]; [ 24 ] ];
    source =
      {|
      int fib(int n) {
        int a = 0;
        int b = 1;
        for (int i = 0; i < n; i = i + 1) {
          int t = a + b;
          a = b;
          b = t;
        }
        return a;
      }
      |} }

let fir =
  { name = "fir";
    entry = "fir";
    category = Regular_loop;
    description = "8-tap FIR filter over a window; classic DSP kernel";
    arg_sets = [ [ 1; 2 ]; [ 5; -3 ]; [ 100; 7 ] ];
    source =
      {|
      int coeff[8] = {1, -2, 3, -4, 5, -6, 7, -8};
      int fir(int x0, int step) {
        int window[8];
        for (int i = 0; i < 8; i = i + 1) {
          window[i] = x0 + i * step;
        }
        int acc = 0;
        for (int i = 0; i < 8; i = i + 1) {
          acc = acc + coeff[i] * window[i];
        }
        return acc;
      }
      |} }

let dotprod =
  { name = "dotprod";
    entry = "dotprod";
    category = Regular_loop;
    description = "dot product of two 16-element vectors";
    arg_sets = [ [ 1; 1 ]; [ 3; -2 ]; [ 7; 11 ] ];
    source =
      {|
      int va[16];
      int vb[16];
      int dotprod(int seed_a, int seed_b) {
        for (int i = 0; i < 16; i = i + 1) {
          va[i] = seed_a + i;
          vb[i] = seed_b - i;
        }
        int acc = 0;
        for (int i = 0; i < 16; i = i + 1) {
          acc = acc + va[i] * vb[i];
        }
        return acc;
      }
      |} }

let matmul =
  { name = "matmul";
    entry = "matmul";
    category = Regular_loop;
    description = "4x4 integer matrix multiply, checksum of the product";
    arg_sets = [ [ 1 ]; [ 3 ]; [ -2 ] ];
    source =
      {|
      int ma[16];
      int mb[16];
      int mc[16];
      int matmul(int seed) {
        for (int i = 0; i < 16; i = i + 1) {
          ma[i] = seed + i;
          mb[i] = seed * 2 - i;
        }
        for (int i = 0; i < 4; i = i + 1) {
          for (int j = 0; j < 4; j = j + 1) {
            int acc = 0;
            for (int k = 0; k < 4; k = k + 1) {
              acc = acc + ma[i * 4 + k] * mb[k * 4 + j];
            }
            mc[i * 4 + j] = acc;
          }
        }
        int sum = 0;
        for (int i = 0; i < 16; i = i + 1) { sum = sum + mc[i]; }
        return sum;
      }
      |} }

let bsort =
  { name = "bsort";
    entry = "bsort";
    category = Irregular;
    description = "bubble sort of 12 elements; data-dependent swaps";
    arg_sets = [ [ 7 ]; [ 1 ]; [ 13 ] ];
    source =
      {|
      int data[12];
      int bsort(int seed) {
        for (int i = 0; i < 12; i = i + 1) {
          data[i] = (seed * (i + 3) * 7919) % 100;
        }
        for (int i = 0; i < 11; i = i + 1) {
          for (int j = 0; j < 11 - i; j = j + 1) {
            if (data[j] > data[j + 1]) {
              int t = data[j];
              data[j] = data[j + 1];
              data[j + 1] = t;
            }
          }
        }
        int checksum = 0;
        for (int i = 0; i < 12; i = i + 1) {
          checksum = checksum * 3 + data[i];
        }
        return checksum;
      }
      |} }

let crc =
  { name = "crc";
    entry = "crc8";
    category = Bit_twiddling;
    description = "bit-serial CRC-8 over one input word";
    arg_sets = [ [ 0 ]; [ 0xA5 ]; [ 0x1234 ] ];
    source =
      {|
      int crc8(int input) {
        unsigned int crc = 0xFFu;
        unsigned int data = (unsigned int)input;
        for (int i = 0; i < 16; i = i + 1) {
          unsigned int bit = (crc ^ data) & 1u;
          crc = crc >> 1;
          if (bit != 0u) { crc = crc ^ 0x8Cu; }
          data = data >> 1;
        }
        return (int)crc;
      }
      |} }

let popcount =
  { name = "popcount";
    entry = "popcount";
    category = Bit_twiddling;
    description = "population count by shift-and-mask loop";
    arg_sets = [ [ 0 ]; [ 0xABCD ]; [ -1 ] ];
    source =
      {|
      int popcount(int input) {
        unsigned int x = (unsigned int)input;
        int n = 0;
        while (x != 0u) {
          n = n + (int)(x & 1u);
          x = x >> 1;
        }
        return n;
      }
      |} }

let checksum =
  { name = "checksum";
    entry = "checksum";
    category = Regular_loop;
    description = "Fletcher-style checksum with temporaries (fusion target)";
    arg_sets = [ [ 3 ]; [ 100 ]; [ -9 ] ];
    source =
      {|
      int buf[8];
      int checksum(int seed) {
        for (int i = 0; i < 8; i = i + 1) {
          buf[i] = seed * (i + 1);
        }
        int s1 = 0;
        int s2 = 0;
        for (int i = 0; i < 8; i = i + 1) {
          int v = buf[i];
          int t1 = s1 + v;
          int t2 = t1 & 65535;
          s1 = t2;
          int u1 = s2 + s1;
          int u2 = u1 & 65535;
          s2 = u2;
        }
        return s2 * 65536 + s1;
      }
      |} }

let producer_consumer =
  { name = "producer_consumer";
    entry = "run";
    category = Concurrent;
    description = "two-stage pipeline over a rendezvous channel";
    arg_sets = [ [ 4 ]; [ 9 ] ];
    source =
      {|
      chan int c;
      int run(int n) {
        int total = 0;
        par {
          {
            for (int i = 0; i < 8; i = i + 1) {
              send(c, i * n);
            }
          }
          {
            for (int i = 0; i < 8; i = i + 1) {
              int v = recv(c);
              total = total + v;
            }
          }
        }
        return total;
      }
      |} }

let pointer_sum =
  { name = "pointer_sum";
    entry = "run";
    category = Thorny_c;
    description = "walks an array through a pointer; C2Verilog territory";
    arg_sets = [ [ 5 ]; [ -2 ] ];
    source =
      {|
      int buf[10];
      int run(int seed) {
        for (int i = 0; i < 10; i = i + 1) { buf[i] = seed + i * i; }
        int* p = buf;
        int acc = 0;
        for (int i = 0; i < 10; i = i + 1) {
          acc = acc + *(p + i);
        }
        return acc;
      }
      |} }

let recursion =
  { name = "recursion";
    entry = "run";
    category = Thorny_c;
    description = "recursive Ackermann-lite; needs a runtime stack";
    arg_sets = [ [ 6 ]; [ 10 ] ];
    source =
      {|
      int sumto(int n) {
        if (n <= 0) { return 0; }
        return n + sumto(n - 1);
      }
      int fibr(int n) {
        if (n < 2) { return n; }
        return fibr(n - 1) + fibr(n - 2);
      }
      int run(int n) {
        return sumto(n) * 100 + fibr(n);
      }
      |} }

let dynamic_list =
  { name = "dynamic_list";
    entry = "run";
    category = Thorny_c;
    description = "malloc'd linked list build + traversal";
    arg_sets = [ [ 5 ]; [ 9 ] ];
    source =
      {|
      int run(int n) {
        /* node: [0] = value, [1] = next pointer (0 = nil) */
        int* head = (int*)0;
        for (int i = 0; i < n; i = i + 1) {
          int* node = malloc(2);
          node[0] = i * i;
          node[1] = (int)head;
          head = node;
        }
        int acc = 0;
        while ((int)head != 0) {
          acc = acc + head[0];
          head = (int*)head[1];
        }
        return acc;
      }
      |} }

let histogram =
  { name = "histogram";
    entry = "histogram";
    category = Regular_loop;
    description = "bin 32 samples into 8 buckets; read-modify-write on one RAM";
    arg_sets = [ [ 1 ]; [ 5 ]; [ -3 ] ];
    source =
      {|
      int bins[8];
      int histogram(int seed) {
        for (int i = 0; i < 8; i = i + 1) { bins[i] = 0; }
        for (int i = 0; i < 32; i = i + 1) {
          int sample = (((seed * 7 + i * i * i) & 1023) >> 2) & 7;
          bins[sample] = bins[sample] + 1;
        }
        int spread = 0;
        for (int i = 0; i < 8; i = i + 1) {
          spread = spread * 33 + bins[i];
        }
        return spread;
      }
      |} }

let isqrt_newton =
  { name = "isqrt_newton";
    entry = "isqrt";
    category = Irregular;
    description = "Newton iteration for integer square root; division chain";
    arg_sets = [ [ 123456 ]; [ 0 ]; [ 17 ]; [ 10000 ] ];
    source =
      {|
      int isqrt(int x) {
        if (x <= 0) { return 0; }
        int guess = x;
        int next = (guess + x / guess) / 2;
        while (next < guess) {
          guess = next;
          next = (guess + x / guess) / 2;
        }
        return guess;
      }
      |} }

let transpose =
  { name = "transpose";
    entry = "transpose";
    category = Regular_loop;
    description = "4x4 in-place transpose, checksummed; swap-heavy memory traffic";
    arg_sets = [ [ 2 ]; [ 9 ] ];
    source =
      {|
      int m[16];
      int transpose(int seed) {
        for (int i = 0; i < 16; i = i + 1) { m[i] = seed * i + (i ^ 5); }
        for (int i = 0; i < 4; i = i + 1) {
          for (int j = i + 1; j < 4; j = j + 1) {
            int t = m[i * 4 + j];
            m[i * 4 + j] = m[j * 4 + i];
            m[j * 4 + i] = t;
          }
        }
        int acc = 0;
        for (int i = 0; i < 16; i = i + 1) { acc = acc * 7 + m[i]; }
        return acc;
      }
      |} }

(* --- Classic kernel ports (ADPCM, AES, DSP, sorts, checksums) --------- *)

let adpcm =
  { name = "adpcm";
    entry = "adpcm";
    category = Regular_loop;
    description = "IMA-style ADPCM predictor step over 8 samples";
    arg_sets = [ [ 0; 3 ]; [ 100; -7 ]; [ 512; 64 ] ];
    source =
      {|
      int steps[16] = {7, 8, 9, 10, 11, 12, 13, 14,
                       16, 17, 19, 21, 23, 25, 28, 31};
      int adpcm(int x0, int dx) {
        int predicted = 0;
        int index = 0;
        int out = 0;
        for (int i = 0; i < 8; i = i + 1) {
          int sample = x0 + i * dx;
          int diff = sample - predicted;
          int sign = 0;
          if (diff < 0) { sign = 8; diff = -diff; }
          int step = steps[index];
          int delta = 0;
          if (diff >= step) { delta = 4; diff = diff - step; }
          if (diff >= step / 2) { delta = delta + 2; diff = diff - step / 2; }
          if (diff >= step / 4) { delta = delta + 1; }
          int vpdiff = step / 8;
          if ((delta & 4) != 0) { vpdiff = vpdiff + step; }
          if ((delta & 2) != 0) { vpdiff = vpdiff + step / 2; }
          if ((delta & 1) != 0) { vpdiff = vpdiff + step / 4; }
          if (sign != 0) { predicted = predicted - vpdiff; }
          else { predicted = predicted + vpdiff; }
          if (delta >= 4) { index = index + 2; }
          else { index = index - 1; }
          if (index < 0) { index = 0; }
          if (index > 15) { index = 15; }
          out = out * 17 + sign + delta;
        }
        return out;
      }
      |} }

let aes_sbox =
  { name = "aes_sbox";
    entry = "aes_sbox";
    category = Bit_twiddling;
    description = "AES S-box of one byte: GF(2^8) inverse by square-and-\
                   multiply plus the affine transform";
    arg_sets = [ [ 0 ]; [ 1 ]; [ 83 ]; [ 255 ] ];
    source =
      {|
      int aes_sbox(int input) {
        int x = input & 255;
        int inv = 0;
        if (x != 0) {
          /* inv = x^254 in GF(2^8) mod x^8+x^4+x^3+x+1 (0x11B) */
          int acc = 1;
          int base = x;
          int e = 254;
          for (int i = 0; i < 8; i = i + 1) {
            if ((e & 1) != 0) {
              int a = acc;
              int b = base;
              int p = 0;
              for (int k = 0; k < 8; k = k + 1) {
                if ((b & 1) != 0) { p = p ^ a; }
                int hi = a & 128;
                a = (a * 2) & 255;
                if (hi != 0) { a = a ^ 27; }
                b = b / 2;
              }
              acc = p;
            }
            int a2 = base;
            int b2 = base;
            int p2 = 0;
            for (int k = 0; k < 8; k = k + 1) {
              if ((b2 & 1) != 0) { p2 = p2 ^ a2; }
              int hi2 = a2 & 128;
              a2 = (a2 * 2) & 255;
              if (hi2 != 0) { a2 = a2 ^ 27; }
              b2 = b2 / 2;
            }
            base = p2;
            e = e / 2;
          }
          inv = acc;
        }
        /* affine: s = inv ^ rotl1 ^ rotl2 ^ rotl3 ^ rotl4 ^ 0x63 */
        int s = inv;
        int r = inv;
        for (int i = 0; i < 4; i = i + 1) {
          r = ((r * 2) & 255) + (r / 128);
          s = s ^ r;
        }
        return s ^ 99;
      }
      |} }

let iir =
  { name = "iir";
    entry = "iir";
    category = Regular_loop;
    description = "direct-form-I biquad IIR in Q8 fixed point, 16 samples";
    arg_sets = [ [ 16; 4 ]; [ 0; 0 ]; [ 200; -16 ] ];
    source =
      {|
      int iir(int x0, int step) {
        int x1 = 0;
        int x2 = 0;
        int y1 = 0;
        int y2 = 0;
        int acc = 0;
        for (int i = 0; i < 16; i = i + 1) {
          int x = x0 + i * step;
          int y = (64 * x + 128 * x1 + 64 * x2 + 32 * y1 - 16 * y2) / 256;
          x2 = x1;
          x1 = x;
          y2 = y1;
          y1 = y;
          acc = acc * 3 + y;
        }
        return acc;
      }
      |} }

let insertion_sort =
  { name = "insertion_sort";
    entry = "isort";
    category = Irregular;
    description = "insertion sort of 10 elements; data-dependent shifts";
    arg_sets = [ [ 3 ]; [ 11 ]; [ -5 ] ];
    source =
      {|
      int data[10];
      int isort(int seed) {
        for (int i = 0; i < 10; i = i + 1) {
          data[i] = (seed * (7 - i) * 131) % 50;
        }
        for (int i = 1; i < 10; i = i + 1) {
          int key = data[i];
          int j = i - 1;
          while (j >= 0 && data[j] > key) {
            data[j + 1] = data[j];
            j = j - 1;
          }
          data[j + 1] = key;
        }
        int acc = 0;
        for (int i = 0; i < 10; i = i + 1) { acc = acc * 5 + data[i]; }
        return acc;
      }
      |} }

let odd_even_sort =
  { name = "odd_even_sort";
    entry = "oesort";
    category = Regular_loop;
    description = "odd-even transposition sort of 8 elements; statically \
                   bounded compare-and-swap network";
    arg_sets = [ [ 6 ]; [ 1 ]; [ -9 ] ];
    source =
      {|
      int arr[8];
      int oesort(int seed) {
        for (int i = 0; i < 8; i = i + 1) {
          arr[i] = (seed * (i + 1) * 37) % 64;
        }
        for (int phase = 0; phase < 8; phase = phase + 1) {
          for (int i = 0; i < 4; i = i + 1) {
            int j = i * 2 + (phase & 1);
            if (j < 7) {
              if (arr[j] > arr[j + 1]) {
                int t = arr[j];
                arr[j] = arr[j + 1];
                arr[j + 1] = t;
              }
            }
          }
        }
        int acc = 0;
        for (int i = 0; i < 8; i = i + 1) { acc = acc * 9 + arr[i]; }
        return acc;
      }
      |} }

let crc32 =
  { name = "crc32";
    entry = "crc32";
    category = Bit_twiddling;
    description = "bit-serial CRC-32 (reflected 0xEDB88320) of one word";
    arg_sets = [ [ 0 ]; [ 0x12345678 ]; [ -1 ] ];
    source =
      {|
      int crc32(int input) {
        unsigned int crc = 0xFFFFFFFFu;
        unsigned int data = (unsigned int)input;
        for (int i = 0; i < 32; i = i + 1) {
          unsigned int bit = (crc ^ data) & 1u;
          crc = crc >> 1;
          if (bit != 0u) { crc = crc ^ 0xEDB88320u; }
          data = data >> 1;
        }
        return (int)(crc ^ 0xFFFFFFFFu);
      }
      |} }

let adler32 =
  { name = "adler32";
    entry = "adler32";
    category = Regular_loop;
    description = "Adler-32 over 16 synthesized bytes; two mod-65521 sums";
    arg_sets = [ [ 1 ]; [ 77 ]; [ -4 ] ];
    source =
      {|
      int adler32(int seed) {
        int a = 1;
        int b = 0;
        for (int i = 0; i < 16; i = i + 1) {
          int byte = (seed * (i + 1) * 31) & 255;
          a = (a + byte) % 65521;
          b = (b + a) % 65521;
        }
        return b * 65536 + a;
      }
      |} }

let adler32_par =
  { name = "adler32_par";
    entry = "run";
    category = Concurrent;
    description = "Adler-32 as a two-process pipeline: byte producer and \
                   mod-sum consumer over a rendezvous channel";
    arg_sets = [ [ 1 ]; [ 77 ] ];
    source =
      {|
      chan int c;
      int run(int seed) {
        int a = 1;
        int b = 0;
        par {
          {
            for (int i = 0; i < 16; i = i + 1) {
              send(c, (seed * (i + 1) * 31) & 255);
            }
          }
          {
            for (int i = 0; i < 16; i = i + 1) {
              int byte = recv(c);
              a = (a + byte) % 65521;
              b = (b + a) % 65521;
            }
          }
        }
        return b * 65536 + a;
      }
      |} }

let fir_ptr =
  { name = "fir_ptr";
    entry = "run";
    category = Thorny_c;
    description = "the FIR kernel walked through pointers; C2Verilog's \
                   pointer-analysis territory";
    arg_sets = [ [ 1; 2 ]; [ 5; -3 ] ];
    source =
      {|
      int coeff[8] = {1, -2, 3, -4, 5, -6, 7, -8};
      int window[8];
      int run(int x0, int step) {
        int* w = window;
        for (int i = 0; i < 8; i = i + 1) {
          *(w + i) = x0 + i * step;
        }
        int* cp = coeff;
        int acc = 0;
        for (int i = 0; i < 8; i = i + 1) {
          acc = acc + *(cp + i) * w[i];
        }
        return acc;
      }
      |} }

(** Workloads every sequential backend accepts. *)
let sequential =
  [ gcd; fib; fir; dotprod; matmul; bsort; crc; popcount; checksum;
    histogram; isqrt_newton; transpose; adpcm; aes_sbox; iir;
    insertion_sort; odd_even_sort; crc32; adler32 ]

(** Bounded-loop, pointer-free subset Cones accepts (no while loops, no
    data-dependent trip counts — bsort's triangular inner loop is out). *)
let combinational =
  [ fir; dotprod; matmul; crc; checksum; adpcm; aes_sbox; iir;
    odd_even_sort; crc32; adler32 ]

let concurrent = [ producer_consumer; adler32_par ]
let thorny = [ pointer_sum; recursion; dynamic_list; fir_ptr ]
let all = sequential @ concurrent @ thorny

let find name = List.find_opt (fun w -> String.equal w.name name) all

(** Reference result from the software oracle. *)
let reference w args =
  Interp.run_int w.source ~entry:w.entry ~args

let parse w = Typecheck.parse_and_check w.source
