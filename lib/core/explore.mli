(** [chlsc explore]: design-space sweep over synthesis configurations.

    The paper's comparison is a fixed table; an HLS user's real question
    is a sweep — how do area, cycle count and clock period trade as the
    knobs move?  This module enumerates a grid of
    (resource bound x chaining budget x unroll factor x backend) points,
    pushes each through {!Driver.compile} under its own {!Config.t}
    (distinct digests, so the artifact cache memoizes per point and a
    warm re-run is all hits), verifies every produced design against the
    interpreter oracle, and computes the Pareto front minimizing
    (area, cycles, period).

    Points run on a small pool of OCaml 5 domains; constraint-infeasible
    points (HardwareC's [constrain] lattice exhausted — backends whose
    {!Backend.capabilities} advertise [constraint_reports]) are typed
    {!Infeasible} cells, not errors. *)

(** {1 The grid} *)

type grid = {
  adders : int option list;
      (** adder bound per point; [None] = unconstrained *)
  chains : float list;  (** chaining (cycle-time) budgets *)
  unrolls : int list;  (** partial unroll factors; 1 disables *)
}

val default_grid : grid
(** [adders=1,2; chain=10,200; unroll=1,2] — 8 points per backend; the
    chain budgets straddle the chaining knee (10 schedules one op per
    state, 200 chains whole blocks). *)

val parse_grid : string -> (grid, string) result
(** ["adders=1,2;chain=10,200;unroll=1,2"].  Unset axes keep
    {!default_grid}'s values; an adder bound of [*] means
    unconstrained; unknown axes are rejected. *)

val grid_size : grid -> backends:int -> int

val points : grid -> Registry.t list -> (Registry.t * Config.t) list
(** The enumerated design points, backend-major then adders, chains,
    unrolls — the order is contractual: cell indices in {!sweep},
    {!metrics} and {!table} are positions in this list. *)

(** {1 Point outcomes} *)

type measurement = {
  m_area : float option;  (** {!Area.report}[.total_area] *)
  m_registers : int option;
  m_cycles : int option;  (** simulated cycles on the sweep's args *)
  m_period : float option;  (** achieved clock-period estimate *)
  m_latency : float option;  (** cycles x period, when both known *)
  m_verified : bool;  (** simulation matched the interpreter oracle *)
}

type status =
  | Measured of measurement
  | Infeasible of string
      (** no allocation meets the program's timing constraints — a
          property of the design point, not an error *)
  | Rejected of string  (** dialect restriction / no C frontend *)
  | Failed of string  (** compile, simulation or oracle crash *)

type cell = {
  cell_backend : string;
  cell_config : Config.t;
  cell_digest : string;  (** {!Config.digest} — the cache-key half *)
  cell_status : status;
  cell_wall_ms : float;
}

(** {1 Running a sweep} *)

type sweep = {
  sw_entry : string;
  sw_args : int list;
  sw_cells : cell list;  (** in {!points} enumeration order *)
  sw_pareto : int list;  (** ascending indices into [sw_cells] *)
  sw_wall_ms : float;
}

val run :
  ?domains:int ->
  ?base:Config.t ->
  source:string ->
  entry:string ->
  args:int list ->
  grid ->
  Registry.t list ->
  sweep
(** Evaluate every grid point.  [domains] (default: up to 4, bounded by
    the machine and the point count) sets the worker-domain pool; each
    worker owns its own {!Driver.session} while compiled designs share
    the process-wide cache.  [base] (default {!Config.default}) supplies
    every non-grid knob — verify vectors, dump sinks, sim engine — so a
    sweep can, e.g., run all points under pass verification. *)

val dominates : measurement -> measurement -> bool
(** [dominates a b]: [a] is no worse on (area, cycles, period) and
    strictly better on at least one.  [false] when either side is
    missing an axis. *)

val pareto_front : cell list -> int list
(** Indices of the non-dominated cells among the oracle-verified,
    fully-measured ones, ascending; cells equal on all three axes
    collapse to the lowest index. *)

(** {1 Reporting} *)

val status_name : status -> string
(** [ok], [unverified], [infeasible], [rejected] or [failed]. *)

val verified_count : sweep -> int

val metrics : sweep -> Metrics.t
(** The [chls.explore/1] report: sweep totals, per-cell
    backend/config-digest/knobs/status/measurements, Pareto indices,
    and the driver cache counters ([driver.cache.*]) so a warm re-run's
    hits are visible in the report. *)

val table : sweep -> string list * string list list
(** A Table-1-style text table (header + rows): one row per point with
    its knobs, status, measurements and a [*] marking Pareto
    membership. *)
