(** [chlsc serve]: the synthesis service.

    A daemon on a Unix-domain socket speaking a length-prefixed JSON
    wire protocol, dispatching requests onto an OCaml 5 Domain pool.
    [Design.t] is pure data, so the sharding story is simple: each
    worker domain owns its own {!Driver.session}s (the parsed frontend),
    while compiled designs are shared across domains — and across
    restarts and co-operating workers — through the content-hash keyed
    {!Cache} behind the driver.

    {2 Wire protocol}

    Every frame is a 4-byte big-endian payload length followed by that
    many bytes of JSON (one request or one response per frame; frames
    over {!Frame.max_frame} are rejected).  Requests carry an ["op"] and
    an optional ["id"] that is echoed verbatim in the response;
    responses to pipelined requests may arrive out of order, so the
    ["id"] is the correlator.  Ops:

    - [compile]: [{"op":"compile","source":C,"backend":B,"entry":E,
      "args":[..]}] — compile through one backend; with ["args"], run
      the design and verify the result against the interpreter oracle
      ([matches_reference]).
    - [compare]: [{"op":"compare","source":C,"backends":[..],
      "args":[[..],..]}] — per-backend verdicts in registry order, each
      accepted backend run on every vector and checked against the
      oracle.
    - [check]: [{"op":"check","source":C,"dialect":D}] — the static
      concurrency checker under the dialect's severity rules.
    - [stats]: server counters, per-op latency histograms, queue depth,
      flight-recorder occupancy/dropped gauges and derived cache hit
      rates ([chls.metrics/3]) and the cache subsystem's state.
    - [shutdown]: drain in-flight work, answer, and stop the daemon.

    Every request is traced: a span tree rooted at a ["request"] span
    (queue-wait, frontend, dialect-check, per-pass, backend, simulate,
    oracle children) whose trace id is echoed in the response as
    ["trace_id"] next to the caller's ["id"].

    Error responses are typed, never a dropped connection:
    [{"id":..,"ok":false,"error":{"kind":K,"message":M}}] with [kind]
    one of [protocol], [frontend-error], [no-c-frontend],
    [dialect-reject], [backend-error], [verification-error],
    [internal] — and every one carries a ["flight_recorder"] member,
    the {!Span.Flight} dump of the last finished spans before the
    failure. *)

(** {1 JSON (parsing side; rendering lives in {!Metrics})} *)

module Json : sig
  val parse : string -> (Metrics.json, string) result
  (** Strict JSON to the {!Metrics.json} shape ([Int] for integral
      literals, [Float] otherwise).  [Error message] carries an offset. *)

  val member : string -> Metrics.json -> Metrics.json option
  (** Object member lookup; [None] on non-objects too. *)
end

(** {1 Framing} *)

module Frame : sig
  val max_frame : int
  (** Upper bound on a frame payload (16 MiB) — oversized lengths are a
      protocol error, not an allocation. *)

  exception Protocol_error of string
  (** A malformed frame from the peer (oversized or truncated length /
      payload). *)

  val write : out_channel -> string -> unit
  (** One frame: 4-byte big-endian length, then the payload; flushes. *)

  val read : in_channel -> string option
  (** The next frame's payload, or [None] on clean EOF at a frame
      boundary.  @raise Protocol_error on oversized or truncated
      frames. *)
end

(** {1 Requests} *)

type request =
  | Compile of {
      id : Metrics.json;
      source : string;
      entry : string;
      backend : string;
      args : int list option;
      config : Config.t option;
          (** per-request synthesis configuration (an optional ["config"]
              JSON object, {!Config.of_json}); [None] = {!Config.default}.
              Distinct configs are distinct cache entries, so a sweep can
              push its whole grid through one daemon. *)
    }
  | Compare of {
      id : Metrics.json;
      source : string;
      entry : string;
      backends : string list option;  (** [None]: every registered *)
      vectors : int list list;
      config : Config.t option;  (** as for [Compile] *)
    }
  | Check of { id : Metrics.json; source : string; dialect : string }
  | Stats of { id : Metrics.json }
  | Shutdown of { id : Metrics.json }

val request_id : request -> Metrics.json

val parse_request : Metrics.json -> (request, string * Metrics.json) result
(** Typed decode of one request object; [Error (message, id)] echoes the
    request's ["id"] (or [Null]) so the error response still correlates. *)

val error_response :
  ?id:Metrics.json -> kind:string -> string -> Metrics.json

(** {1 The Domain pool} *)

module Pool : sig
  type t

  val create : ?domains:int -> ?queue_capacity:int -> ?max_batch:int ->
    ?tracing:bool ->
    ?on_trace:(pid:int -> tid:int -> Span.trace -> unit) ->
    unit -> t
  (** [domains] defaults to [Domain.recommended_domain_count ()].
      [queue_capacity] (default [4 * domains]) bounds the job queue —
      {!submit} blocks when it is full, which is the backpressure that
      stops a fast client from ballooning the daemon.  [max_batch]
      (default 16) is how many queued jobs one worker drains at a time;
      a batch is grouped by source so each distinct program parses once
      per batch.

      [tracing] (default on, also gated by {!Span.set_enabled}) mints a
      span trace per request; [on_trace] receives each finished trace
      from the worker that handled it — [pid] is the worker index, [tid]
      the runtime domain id — which is how the daemon's Chrome sink and
      the tests' in-memory sink attach. *)

  val domains : t -> int

  val submit : t -> request -> respond:(Metrics.json -> unit) -> unit
  (** Enqueue one job (blocking while the queue is full).  [respond] is
      called from a worker domain exactly once — callers serialize their
      own writes.  After {!shutdown}, responds immediately with a typed
      [protocol] error. *)

  val drain : t -> unit
  (** Block until every submitted job has responded. *)

  val shutdown : t -> unit
  (** {!drain}, then stop and join the worker domains.  Idempotent. *)

  val stats : t -> (string * int) list
  (** [domains], [queue_capacity], [queued] (also exported as the
      [queue_depth] gauge), [active], and the total-jobs counter — for
      the [stats] op. *)

  val metrics : t -> Metrics.t
  (** The pool's shared registry: [serve.requests.<op>] counters and
      [serve.latency.<op>_ms] histograms.  Guarded internally; read it
      through {!snapshot_metrics}. *)

  val snapshot_metrics : t -> (string * Metrics.json) list
  (** A consistent point-in-time copy of {!metrics} pairs. *)

  val handle :
    t -> (string, Driver.session) Hashtbl.t option -> request -> Metrics.json
  (** The request handler itself (exposed for tests and direct, socketless
      use): compile/compare/check against the given session table (or a
      throwaway one), stats/shutdown answered from pool state.  Never
      raises — internal failures come back as typed [internal] errors.
      Traced like a socket request (minus the queue-wait span, since no
      queue is crossed): the response carries [trace_id], failures carry
      the flight dump, and [on_trace] fires with pid/tid 0. *)
end

(** {1 The daemon} *)

val run :
  ?domains:int ->
  ?queue_capacity:int ->
  ?max_batch:int ->
  ?cache_dir:string ->
  ?cache_max_bytes:int ->
  ?trace_json:string ->
  ?log:(string -> unit) ->
  socket:string ->
  unit ->
  (unit, string) result
(** Bind [socket] (unlinking any stale one), serve connections until a
    [shutdown] request (or SIGINT/SIGTERM), drain the pool and clean up.
    With [cache_dir], attaches the persistent design store first so
    every worker — and the next daemon — shares compiled artifacts.
    With [trace_json], every request's span tree is collected into a
    Chrome [trace_event] sink (pid = worker index, tid = domain id) and
    written to that file at shutdown — load it in [about://tracing] or
    Perfetto.  [Error message] when the socket cannot be bound. *)

(** {1 A minimal client} *)

module Client : sig
  type t

  val connect : ?timeout_ms:int -> socket:string -> unit -> (t, string) result
  (** [timeout_ms] (when positive) bounds every send and receive on the
      connection — {!rpc} against a wedged daemon then fails with a
      "timed out" [Error] instead of hanging the script. *)

  val rpc : t -> string -> (string, string) result
  (** Send one raw-JSON request frame, read one response frame (this
      client keeps one request in flight, so ordering is trivial). *)

  val close : t -> unit
end
