(** [chlsc serve]: the synthesis service.

    A daemon on a Unix-domain socket speaking a length-prefixed JSON
    wire protocol, dispatching requests onto an OCaml 5 Domain pool.
    [Design.t] is pure data, so the sharding story is simple: each
    worker domain owns its own {!Driver.session}s (the parsed frontend),
    while compiled designs are shared across domains — and across
    restarts and co-operating workers — through the content-hash keyed
    {!Cache} behind the driver.

    {2 Wire protocol}

    Every frame is a 4-byte big-endian payload length followed by that
    many bytes of JSON (one request or one response per frame; frames
    over {!Frame.max_frame} are rejected).  Requests carry an ["op"] and
    an optional ["id"] that is echoed verbatim in the response;
    responses to pipelined requests may arrive out of order, so the
    ["id"] is the correlator.  Ops:

    - [compile]: [{"op":"compile","source":C,"backend":B,"entry":E,
      "args":[..]}] — compile through one backend; with ["args"], run
      the design and verify the result against the interpreter oracle
      ([matches_reference]).
    - [compare]: [{"op":"compare","source":C,"backends":[..],
      "args":[[..],..]}] — per-backend verdicts in registry order, each
      accepted backend run on every vector and checked against the
      oracle.
    - [check]: [{"op":"check","source":C,"dialect":D}] — the static
      concurrency checker under the dialect's severity rules.
    - [stats]: server counters, per-op latency histograms
      ([chls.metrics/2]) and the cache subsystem's state.
    - [shutdown]: drain in-flight work, answer, and stop the daemon.

    Error responses are typed, never a dropped connection:
    [{"id":..,"ok":false,"error":{"kind":K,"message":M}}] with [kind]
    one of [protocol], [frontend-error], [no-c-frontend],
    [dialect-reject], [backend-error], [verification-error],
    [internal]. *)

(** {1 JSON (parsing side; rendering lives in {!Metrics})} *)

module Json : sig
  val parse : string -> (Metrics.json, string) result
  (** Strict JSON to the {!Metrics.json} shape ([Int] for integral
      literals, [Float] otherwise).  [Error message] carries an offset. *)

  val member : string -> Metrics.json -> Metrics.json option
  (** Object member lookup; [None] on non-objects too. *)
end

(** {1 Framing} *)

module Frame : sig
  val max_frame : int
  (** Upper bound on a frame payload (16 MiB) — oversized lengths are a
      protocol error, not an allocation. *)

  exception Protocol_error of string
  (** A malformed frame from the peer (oversized or truncated length /
      payload). *)

  val write : out_channel -> string -> unit
  (** One frame: 4-byte big-endian length, then the payload; flushes. *)

  val read : in_channel -> string option
  (** The next frame's payload, or [None] on clean EOF at a frame
      boundary.  @raise Protocol_error on oversized or truncated
      frames. *)
end

(** {1 Requests} *)

type request =
  | Compile of {
      id : Metrics.json;
      source : string;
      entry : string;
      backend : string;
      args : int list option;
    }
  | Compare of {
      id : Metrics.json;
      source : string;
      entry : string;
      backends : string list option;  (** [None]: every registered *)
      vectors : int list list;
    }
  | Check of { id : Metrics.json; source : string; dialect : string }
  | Stats of { id : Metrics.json }
  | Shutdown of { id : Metrics.json }

val request_id : request -> Metrics.json

val parse_request : Metrics.json -> (request, string * Metrics.json) result
(** Typed decode of one request object; [Error (message, id)] echoes the
    request's ["id"] (or [Null]) so the error response still correlates. *)

val error_response :
  ?id:Metrics.json -> kind:string -> string -> Metrics.json

(** {1 The Domain pool} *)

module Pool : sig
  type t

  val create : ?domains:int -> ?queue_capacity:int -> ?max_batch:int ->
    unit -> t
  (** [domains] defaults to [Domain.recommended_domain_count ()].
      [queue_capacity] (default [4 * domains]) bounds the job queue —
      {!submit} blocks when it is full, which is the backpressure that
      stops a fast client from ballooning the daemon.  [max_batch]
      (default 16) is how many queued jobs one worker drains at a time;
      a batch is grouped by source so each distinct program parses once
      per batch. *)

  val domains : t -> int

  val submit : t -> request -> respond:(Metrics.json -> unit) -> unit
  (** Enqueue one job (blocking while the queue is full).  [respond] is
      called from a worker domain exactly once — callers serialize their
      own writes.  After {!shutdown}, responds immediately with a typed
      [protocol] error. *)

  val drain : t -> unit
  (** Block until every submitted job has responded. *)

  val shutdown : t -> unit
  (** {!drain}, then stop and join the worker domains.  Idempotent. *)

  val stats : t -> (string * int) list
  (** [domains], [queue_capacity], [queued], [active], and the
      total-jobs counter — for the [stats] op. *)

  val metrics : t -> Metrics.t
  (** The pool's shared registry: [serve.requests.<op>] counters and
      [serve.latency.<op>_ms] histograms.  Guarded internally; read it
      through {!snapshot_metrics}. *)

  val snapshot_metrics : t -> (string * Metrics.json) list
  (** A consistent point-in-time copy of {!metrics} pairs. *)

  val handle :
    t -> (string, Driver.session) Hashtbl.t option -> request -> Metrics.json
  (** The request handler itself (exposed for tests and direct, socketless
      use): compile/compare/check against the given session table (or a
      throwaway one), stats/shutdown answered from pool state.  Never
      raises — internal failures come back as typed [internal] errors. *)
end

(** {1 The daemon} *)

val run :
  ?domains:int ->
  ?queue_capacity:int ->
  ?max_batch:int ->
  ?cache_dir:string ->
  ?cache_max_bytes:int ->
  ?log:(string -> unit) ->
  socket:string ->
  unit ->
  (unit, string) result
(** Bind [socket] (unlinking any stale one), serve connections until a
    [shutdown] request (or SIGINT/SIGTERM), drain the pool and clean up.
    With [cache_dir], attaches the persistent design store first so
    every worker — and the next daemon — shares compiled artifacts.
    [Error message] when the socket cannot be bound. *)

(** {1 A minimal client} *)

module Client : sig
  type t

  val connect : socket:string -> (t, string) result
  val rpc : t -> string -> (string, string) result
  (** Send one raw-JSON request frame, read one response frame (this
      client keeps one request in flight, so ordering is trivial). *)

  val close : t -> unit
end
