(** Cache: the artifact-cache subsystem behind the compile driver.

    PR 5's driver memoized designs in an ad-hoc [Hashtbl] that died with
    the process.  This module makes the cache an explicit subsystem with
    a pluggable byte-store interface:

    - {!Memory}: the in-process store — a byte table with optional LRU
      eviction by byte budget (also the reference implementation of
      {!STORE} for tests);
    - {!Disk}: the persistent store — one digest-named file per entry
      under a cache directory, every entry versioned and checksummed so
      corruption, truncation or version skew (a different binary wrote
      it) degrades to a miss instead of an error, with LRU eviction by
      byte budget and atomic (write-temp-then-rename) puts so concurrent
      workers can share one directory;
    - {!t}: the decoded front cache the driver actually talks to — a
      table of live values backed by an optional byte store through an
      [encode]/[decode] codec (for designs: [Marshal] with closures,
      which is exactly why the entry version pins the binary identity).

    Every operation is mutex-guarded, so one cache can back a whole
    Domain pool ([chlsc serve]). *)

(** {1 Byte stores} *)

type counters = {
  hits : int;
  misses : int;
  puts : int;
  evictions : int;  (** entries dropped to fit the byte budget *)
  corrupt : int;
      (** checksum / truncation / malformed-header failures, each
          degraded to a miss (the entry is deleted) *)
  version_skew : int;
      (** entries written under a different store version (for the
          default disk version: by a different binary), dropped at open *)
  entries : int;
  bytes : int;  (** payload bytes currently resident *)
}

module type STORE = sig
  type t

  val name : t -> string
  val find : t -> string -> string option
  (** [None] on miss — including every degraded failure mode. *)

  val put : t -> string -> string -> unit
  val delete : t -> string -> unit
  val clear : t -> unit

  val keys : t -> string list
  (** Resident keys in LRU order, least recently used first. *)

  val counters : t -> counters
end

type store = Store : (module STORE with type t = 'a) * 'a -> store
(** A packed store: what {!t} and the driver plug in. *)

val store_name : store -> string
val store_find : store -> string -> string option
val store_put : store -> string -> string -> unit
val store_delete : store -> string -> unit
val store_clear : store -> unit
val store_keys : store -> string list
val store_counters : store -> counters

module Memory : sig
  type t

  val create : ?max_bytes:int -> unit -> t
  (** No [max_bytes]: unbounded (the pre-PR-7 behaviour). *)

  val store : t -> store
end

module Disk : sig
  type t

  val default_version : unit -> string
  (** Digest of the running executable — [Marshal]led closures only
      resolve inside the binary that wrote them, so binary identity is
      the correct compatibility fingerprint.  Computed once. *)

  val open_dir :
    ?max_bytes:int -> ?version:string -> string -> (t, string) result
  (** Open (creating if needed) a cache directory and index its entries.
      Entries written under a different [version] (default
      {!default_version}) or failing validation are deleted and counted
      ([version_skew] / [corrupt]).  Default [max_bytes]: 256 MiB.
      [Error message] only when the directory cannot be created or
      listed. *)

  val store : t -> store
  val dir : t -> string
end

(** {1 The decoded front cache} *)

type 'a t

val create :
  name:string ->
  encode:('a -> string option) ->
  decode:(string -> 'a option) ->
  ?store:store ->
  unit ->
  'a t
(** A front cache of decoded values over an optional byte store.  The
    codec is total-by-construction: [encode] returning [None] keeps the
    value front-only; [decode] returning [None] deletes the undecodable
    entry and degrades to a miss. *)

val set_store : 'a t -> store option -> unit
val store : 'a t -> store option

val find : 'a t -> string -> ('a * [ `Front | `Store ]) option
(** Where the hit came from: [`Front] is the in-process decoded table,
    [`Store] was revived from the byte store (and is now front-resident). *)

val add : 'a t -> string -> 'a -> unit
(** Insert into the front table and (when the codec and a store allow)
    write through. *)

val size : 'a t -> int
(** Decoded values currently front-resident. *)

val decode_failures : 'a t -> int
(** Store payloads that validated at the byte level but failed [decode]
    (each deleted and degraded to a miss). *)

val front_hits : 'a t -> int
(** Lookups answered from the decoded front table. *)

val front_misses : 'a t -> int
(** Lookups that fell past the front table — whether or not the byte
    store then revived them.  [front_hits + front_misses] is the total
    lookup count, which is how derived hit rates are computed. *)

val clear : 'a t -> unit
(** Drop the decoded front table only — the byte store keeps its
    entries (benchmarks use this to simulate a restart). *)
