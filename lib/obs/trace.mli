(** Adapters from each simulator's observation hook to {!Vcd} waveforms,
    plus JSON views of traces the rest of the compiler produces.

    The simulators (Neteval, Rtlsim, Asim) live below this library in the
    dependency order, so they expose generic hooks and know nothing about
    VCD; this module does the naming, scoping and time bookkeeping. *)

val neteval_probe : Vcd.t -> Netlist.t -> Neteval.probe
(** Declare one VCD var per netlist signal (primary inputs under their
    port names, registers as [rN], everything else as [nN]; output names
    are aliases of their driving signals), end the definitions, and
    return a probe that logs every committed value change at the cycle it
    settled in.  The evaluator's event worklist is exactly the change
    list, so tracing adds no re-evaluation. *)

val rtlsim_trace : Vcd.t -> Fsmd.t -> Rtlsim.trace
(** Declare vars for the FSM state, every CIR register (parameter and
    global names where they exist, [rN] otherwise) and one
    [we]/[waddr]/[wdata] port triple per memory region, and return a
    per-cycle trace hook that logs the state taken, changed registers and
    memory writes. *)

val asim_tracer :
  ?scale:float ->
  Vcd.t -> Cir.func ->
  (time:float -> reg:Cir.reg -> value:Bitvec.t -> unit) * (unit -> unit)
(** [asim_tracer vcd func] is [(on_fire, finalize)]: the hook buffers
    token firings (which arrive in execution order, with real-valued
    completion times), and [finalize] stable-sorts them by time and
    writes the waveform, quantizing times by [scale] (default 10.0 —
    one VCD tick per 0.1 time units). *)

val json_of_pass_trace : Passes.trace -> Metrics.json
(** A machine-readable view of a pass-manager trace: one object per pass
    with the name, level, wall time and before/after IR sizes. *)
