(* Adapters from simulator observation hooks to VCD waveforms.

   The simulators live below this library, so they expose generic hooks
   (Neteval.probe, Rtlsim.trace, Asim's on_fire) and know nothing about
   VCD; the naming, scoping and time bookkeeping all happen here. *)

let bits_for n =
  (* bits needed to represent values 0 .. n-1 (at least 1) *)
  let rec go acc v = if v <= 0 then max 1 acc else go (acc + 1) (v lsr 1) in
  go 0 (n - 1)

(* Register names: parameter and global names where the function declares
   them, rN otherwise.  Shared by the FSMD and dataflow tracers so the
   same design traces under the same signal names in both. *)
let reg_names (func : Cir.func) =
  let names =
    Array.init func.Cir.fn_reg_count (fun r -> Printf.sprintf "r%d" r)
  in
  List.iter (fun (n, r) -> names.(r) <- n) func.Cir.fn_params;
  List.iter (fun (n, r, _) -> names.(r) <- n) func.Cir.fn_globals;
  names

let neteval_probe vcd (nl : Netlist.t) : Neteval.probe =
  let scope = Netlist.name nl in
  let vars =
    Array.init (Netlist.length nl) (fun s ->
        let name =
          match Netlist.node nl s with
          | Netlist.Input n -> n
          | Netlist.Reg _ -> Printf.sprintf "r%d" s
          | _ -> Printf.sprintf "n%d" s
        in
        Vcd.add_var vcd ~scope ~name ~width:(Netlist.width nl s))
  in
  List.iter
    (fun (name, s) -> Vcd.alias vcd ~scope ~name vars.(s))
    (Netlist.outputs nl);
  Vcd.enddefinitions vcd;
  { Neteval.on_value =
      (fun ~cycle s v -> Vcd.change vcd ~time:cycle vars.(s) v) }

let rtlsim_trace vcd (fsmd : Fsmd.t) : Rtlsim.trace =
  let func = fsmd.Fsmd.func in
  let scope = fsmd.Fsmd.fd_name in
  let state_width = bits_for (Fsmd.num_states fsmd) in
  let state_var = Vcd.add_var vcd ~scope ~name:"state" ~width:state_width in
  let names = reg_names func in
  let reg_vars =
    Array.init func.Cir.fn_reg_count (fun r ->
        Vcd.add_var vcd ~scope ~name:names.(r)
          ~width:(max 1 func.Cir.fn_reg_widths.(r)))
  in
  let mem_vars =
    Array.map
      (fun (rg : Cir.region) ->
        let v n w =
          Vcd.add_var vcd ~scope
            ~name:(Printf.sprintf "%s_%s" rg.Cir.rg_name n)
            ~width:w
        in
        ( v "we" 1,
          v "waddr" (bits_for rg.Cir.rg_words),
          v "wdata" rg.Cir.rg_width,
          bits_for rg.Cir.rg_words ))
      func.Cir.fn_regions
  in
  Vcd.enddefinitions vcd;
  { Rtlsim.on_cycle =
      (fun ~cycle ~state ~regs ~stores ->
        Vcd.change vcd ~time:cycle state_var
          (Bitvec.of_int ~width:state_width state);
        Array.iteri
          (fun r var -> Vcd.change vcd ~time:cycle var regs.(r))
          reg_vars;
        let wrote = Array.make (Array.length mem_vars) false in
        List.iter
          (fun (region, addr, v) ->
            let we, waddr, wdata, aw = mem_vars.(region) in
            wrote.(region) <- true;
            Vcd.change vcd ~time:cycle we (Bitvec.one 1);
            Vcd.change vcd ~time:cycle waddr (Bitvec.of_int ~width:aw addr);
            Vcd.change vcd ~time:cycle wdata v)
          stores;
        Array.iteri
          (fun i (we, _, _, _) ->
            if not wrote.(i) then
              Vcd.change vcd ~time:cycle we (Bitvec.zero 1))
          mem_vars) }

let asim_tracer ?(scale = 10.) vcd (func : Cir.func) =
  let scope = func.Cir.fn_name in
  let names = reg_names func in
  let vars =
    Array.init func.Cir.fn_reg_count (fun r ->
        Vcd.add_var vcd ~scope ~name:names.(r)
          ~width:(max 1 func.Cir.fn_reg_widths.(r)))
  in
  Vcd.enddefinitions vcd;
  let events = ref [] in
  let on_fire ~time ~reg ~value = events := (time, reg, value) :: !events in
  let finalize () =
    let arr = Array.of_list (List.rev !events) in
    (* stable: simultaneous firings keep execution order *)
    Array.stable_sort
      (fun (t1, _, _) (t2, _, _) -> Float.compare t1 t2)
      arr;
    Array.iter
      (fun (t, r, v) ->
        let tick = int_of_float (Float.round (t *. scale)) in
        Vcd.change vcd ~time:(max tick (Vcd.current_time vcd)) vars.(r) v)
      arr
  in
  (on_fire, finalize)

let json_of_pass_trace (trace : Passes.trace) : Metrics.json =
  let size (s : Passes.size) =
    Metrics.Obj
      [ ("blocks", Metrics.Int s.Passes.blocks);
        ("instrs", Metrics.Int s.Passes.instrs);
        ("regs", Metrics.Int s.Passes.regs) ]
  in
  Metrics.List
    (List.map
       (fun (r : Passes.record) ->
         Metrics.Obj
           [ ("name", Metrics.String r.Passes.pass_name);
             ( "level",
               Metrics.String
                 (match r.Passes.level with
                 | Passes.Source -> "source"
                 | Passes.Ir -> "ir") );
             ("start_ms", Metrics.Fixed (3, r.Passes.start_ms));
             ("wall_ms", Metrics.Fixed (3, r.Passes.wall_ms));
             ("before", size r.Passes.before);
             ("after", size r.Passes.after);
             ("verified", Metrics.Int r.Passes.verified) ])
       trace)
