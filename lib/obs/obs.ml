(* Obs: the observability subsystem, as one namespace.

   The libraries are unwrapped, so Vcd/Metrics/Trace are reachable
   directly; this aggregator exists so client code can say Obs.Vcd and
   Obs.Metrics, matching how the subsystem is documented. *)

module Vcd = Vcd
module Metrics = Metrics
module Trace = Trace
module Span = Span
