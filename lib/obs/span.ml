(* Obs.Span: request-scoped trace trees with three sinks (in-memory,
   Chrome trace_event, flight recorder).  See span.mli for the model.

   Clocking: spans use wall time (Unix.gettimeofday), not Sys.time —
   queue-wait in the serve daemon is real time spent blocked, which CPU
   time would erase.  All stored times are offsets in milliseconds from
   the trace's epoch, so a trace is position-independent and the Chrome
   sink can re-anchor many traces onto one shared timeline. *)

type record = {
  span_id : int;
  parent : int option;
  kind : string;
  seq : int;
  start_ms : float;
  mutable dur_ms : float;
  mutable attrs : (string * Metrics.json) list;
}

type trace = {
  id : string;
  epoch_us : float;  (* absolute, microseconds *)
  root : record;
  mutable spans : record list;  (* reverse emission order *)
  mutable next_id : int;
  mutable n : int;
}

type ctx = Null | Ctx of trace * record

let null = Null
let enabled_flag = Atomic.make true
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag
let now_us () = Unix.gettimeofday () *. 1e6

(* Trace ids: unique within the process, stable-format for greps. *)
let trace_counter = Atomic.make 0

let mint_trace_id () =
  Printf.sprintf "t%04x-%06d"
    (Unix.getpid () land 0xffff)
    (Atomic.fetch_and_add trace_counter 1)

let trace_id t = t.id

(* The flight recorder lives below [close] so finished spans can be
   offered to it; the public module is re-exposed at the bottom. *)
module Flight_impl = struct
  type snap = {
    f_trace : string;
    f_kind : string;
    f_start : float;
    f_dur : float;
    f_attrs : (string * Metrics.json) list;  (* insertion order *)
  }

  let lock = Mutex.create ()
  let default_capacity = 64
  let ring = ref (Array.make default_capacity None)
  let total = ref 0

  let with_lock f =
    Mutex.lock lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

  let set_capacity n =
    let n = max 1 n in
    with_lock (fun () ->
        ring := Array.make n None;
        total := 0)

  let capacity () = with_lock (fun () -> Array.length !ring)
  let occupancy () = with_lock (fun () -> min !total (Array.length !ring))
  let recorded () = with_lock (fun () -> !total)

  let dropped () =
    with_lock (fun () -> max 0 (!total - Array.length !ring))

  let clear () =
    with_lock (fun () ->
        Array.fill !ring 0 (Array.length !ring) None;
        total := 0)

  let record snap =
    with_lock (fun () ->
        let cap = Array.length !ring in
        !ring.(!total mod cap) <- Some snap;
        incr total)

  let json_of_snap s =
    Metrics.Obj
      [
        ("trace_id", Metrics.String s.f_trace);
        ("kind", Metrics.String s.f_kind);
        ("start_ms", Metrics.Fixed (3, s.f_start));
        ("dur_ms", Metrics.Fixed (3, s.f_dur));
        ("attrs", Metrics.Obj s.f_attrs);
      ]

  let dump () =
    with_lock (fun () ->
        let cap = Array.length !ring in
        let held = min !total cap in
        (* Oldest first: the ring's logical start is total - held. *)
        let spans =
          List.init held (fun i ->
              match !ring.((!total - held + i) mod cap) with
              | Some s -> json_of_snap s
              | None -> Metrics.Null)
        in
        Metrics.Obj
          [
            ("capacity", Metrics.Int cap);
            ("recorded", Metrics.Int !total);
            ("dropped", Metrics.Int (max 0 (!total - cap)));
            ("spans", Metrics.List spans);
          ])
end

let elapsed_of t = (now_us () -. t.epoch_us) /. 1000.
let elapsed_ms = function Null -> 0. | Ctx (t, _) -> elapsed_of t

let offer_to_flight t r =
  Flight_impl.record
    {
      Flight_impl.f_trace = t.id;
      f_kind = r.kind;
      f_start = r.start_ms;
      f_dur = r.dur_ms;
      f_attrs = List.rev r.attrs;
    }

let open_record t ~parent ~start_ms kind attrs =
  let r =
    {
      span_id = t.next_id;
      parent;
      kind;
      seq = t.n;
      start_ms;
      dur_ms = -1.;
      attrs = List.rev attrs;
    }
  in
  t.next_id <- t.next_id + 1;
  t.n <- t.n + 1;
  t.spans <- r :: t.spans;
  r

let close t r =
  if r.dur_ms < 0. then begin
    r.dur_ms <- Float.max 0. (elapsed_of t -. r.start_ms);
    offer_to_flight t r
  end

let start ?trace_id:pinned ~kind () =
  let id = match pinned with Some id -> id | None -> mint_trace_id () in
  let root =
    { span_id = 0; parent = None; kind; seq = 0; start_ms = 0.; dur_ms = -1.; attrs = [] }
  in
  let t = { id; epoch_us = now_us (); root; spans = [ root ]; next_id = 1; n = 1 } in
  if enabled () then (t, Ctx (t, root)) else (t, Null)

let enter ctx ?(attrs = []) kind =
  match ctx with
  | Null -> Null
  | Ctx (t, parent) ->
      let r = open_record t ~parent:(Some parent.span_id) ~start_ms:(elapsed_of t) kind attrs in
      Ctx (t, r)

let exit = function Null -> () | Ctx (t, r) -> close t r

let add_attr ctx k v =
  match ctx with Null -> () | Ctx (_, r) -> r.attrs <- (k, v) :: r.attrs

let span ctx ?attrs kind f =
  match enter ctx ?attrs kind with
  | Null -> f Null
  | Ctx (t, r) as child -> (
      match f child with
      | v ->
          close t r;
          v
      | exception e ->
          r.attrs <- ("error", Metrics.String (Printexc.to_string e)) :: r.attrs;
          close t r;
          raise e)

let emit ctx ?(attrs = []) ?start_ms ~dur_ms kind =
  match ctx with
  | Null -> ()
  | Ctx (t, parent) ->
      let dur_ms = Float.max 0. dur_ms in
      let start_ms =
        match start_ms with Some s -> s | None -> Float.max 0. (elapsed_of t -. dur_ms)
      in
      let r = open_record t ~parent:(Some parent.span_id) ~start_ms kind attrs in
      r.dur_ms <- dur_ms;
      offer_to_flight t r

let finish t =
  (* Close stragglers children-first (spans list is reverse emission
     order, so later spans — the deeper ones — close first). *)
  List.iter (fun r -> close t r) t.spans

let records t = List.rev t.spans

let skeleton t =
  let rs = records t in
  let children r = List.filter (fun c -> c.parent = Some r.span_id) rs in
  let buf = Buffer.create 128 in
  let rec go r =
    Buffer.add_string buf r.kind;
    match children r with
    | [] -> ()
    | cs ->
        Buffer.add_char buf '(';
        List.iteri
          (fun i c ->
            if i > 0 then Buffer.add_char buf ' ';
            go c)
          cs;
        Buffer.add_char buf ')'
  in
  (match rs with root :: _ -> go root | [] -> ());
  Buffer.contents buf

let json_of_record r =
  Metrics.Obj
    [
      ("span_id", Metrics.Int r.span_id);
      ("parent", (match r.parent with Some p -> Metrics.Int p | None -> Metrics.Null));
      ("kind", Metrics.String r.kind);
      ("start_ms", Metrics.Fixed (3, r.start_ms));
      ("dur_ms", Metrics.Fixed (3, r.dur_ms));
      ("attrs", Metrics.Obj (List.rev r.attrs));
    ]

let to_json t =
  Metrics.Obj
    [
      ("trace_id", Metrics.String t.id);
      ("spans", Metrics.List (List.map json_of_record (records t)));
    ]

module Flight = struct
  let set_capacity = Flight_impl.set_capacity
  let capacity = Flight_impl.capacity
  let occupancy = Flight_impl.occupancy
  let recorded = Flight_impl.recorded
  let dropped = Flight_impl.dropped
  let clear = Flight_impl.clear
  let dump = Flight_impl.dump
end

module Chrome = struct
  type event = {
    e_pid : int;
    e_tid : int;
    e_name : string;
    e_ts_us : float;  (* absolute; re-anchored at render time *)
    e_dur_us : float;
    e_args : (string * Metrics.json) list;
  }

  type sink = {
    s_lock : Mutex.t;
    mutable s_events : event list;  (* reverse order *)
    mutable s_n : int;
    mutable s_min_us : float;  (* earliest event start seen *)
  }

  let create () =
    { s_lock = Mutex.create (); s_events = []; s_n = 0; s_min_us = infinity }

  let add sink ?(pid = 0) ?(tid = 0) t =
    let evs =
      List.filter_map
        (fun r ->
          if r.dur_ms < 0. then None
          else
            Some
              {
                e_pid = pid;
                e_tid = tid;
                e_name = r.kind;
                e_ts_us = t.epoch_us +. (r.start_ms *. 1000.);
                e_dur_us = r.dur_ms *. 1000.;
                e_args =
                  (("trace_id", Metrics.String t.id)
                  :: ("span_id", Metrics.Int r.span_id)
                  ::
                  (match r.parent with
                  | Some p -> [ ("parent", Metrics.Int p) ]
                  | None -> [])
                  )
                  @ List.rev r.attrs;
              })
        (records t)
    in
    Mutex.lock sink.s_lock;
    sink.s_events <- List.rev_append evs sink.s_events;
    sink.s_n <- sink.s_n + List.length evs;
    List.iter
      (fun e -> if e.e_ts_us < sink.s_min_us then sink.s_min_us <- e.e_ts_us)
      evs;
    Mutex.unlock sink.s_lock

  let events sink =
    Mutex.lock sink.s_lock;
    let n = sink.s_n in
    Mutex.unlock sink.s_lock;
    n

  let json_of_event ~base e =
    Metrics.Obj
      [
        ("name", Metrics.String e.e_name);
        ("cat", Metrics.String "chlsc");
        ("ph", Metrics.String "X");
        ("pid", Metrics.Int e.e_pid);
        ("tid", Metrics.Int e.e_tid);
        ("ts", Metrics.Fixed (1, Float.max 0. (e.e_ts_us -. base)));
        ("dur", Metrics.Fixed (1, e.e_dur_us));
        ("args", Metrics.Obj e.e_args);
      ]

  let to_json ?(extra = []) sink =
    Mutex.lock sink.s_lock;
    let evs = List.rev sink.s_events in
    let base = if sink.s_min_us = infinity then 0. else sink.s_min_us in
    Mutex.unlock sink.s_lock;
    Metrics.Obj
      ([
         ("traceEvents", Metrics.List (List.map (json_of_event ~base) evs));
         ("displayTimeUnit", Metrics.String "ms");
       ]
      @ extra)

  let write_file ?extra sink path =
    let oc = open_out path in
    output_string oc (Metrics.render (to_json ?extra sink));
    output_char oc '\n';
    close_out oc
end
