(** Obs.Span: request-scoped structured tracing.

    Every unit of work — a frontend parse, one optimisation pass, a
    backend compile, a simulation run, an oracle check, a whole serve
    request — opens a {e span}: a named interval with a monotonic start
    offset, a duration, a parent, and key→value attributes.  Spans of
    one request form a {e trace tree} rooted at the request span.

    Three sinks consume finished traces:

    - the deterministic in-memory tree ({!records}, {!skeleton}) that
      tests assert against;
    - the Chrome [trace_event] JSON exporter ({!Chrome}) behind
      [chlsc … --trace-json FILE], loadable in [about://tracing] and
      Perfetto — one pid per serve domain, tid per worker;
    - the global bounded flight recorder ({!Flight}), a ring buffer of
      the last N finished spans that is dumped alongside every typed
      error a failing compile/verify/serve request produces.

    Contexts are explicit values threaded through call sites, never
    ambient state, so the serve daemon's Domain pool can carry many
    concurrent traces without interference.  A disabled tracer
    ({!set_enabled}[ false]) hands out {!null} contexts and every
    operation degenerates to a no-op. *)

(** {1 Contexts and traces} *)

type trace
(** One request's span tree.  Mutated in place while spans open and
    close; safe to share across domains only through {!Flight} and
    {!Chrome}, which lock — a [trace] itself belongs to one request. *)

type ctx
(** A position in a trace: "the currently open span".  Child spans
    opened through a [ctx] attach under it.  The {!null} context (and
    every context handed out while tracing is disabled) ignores all
    operations. *)

type record = {
  span_id : int;  (** unique within the trace, root is 0 *)
  parent : int option;  (** [None] only for the root *)
  kind : string;  (** stable name: "frontend", "pass:cse", … *)
  seq : int;  (** emission order: parents always precede children *)
  start_ms : float;  (** offset from the trace epoch *)
  mutable dur_ms : float;  (** [< 0.] while the span is still open *)
  mutable attrs : (string * Metrics.json) list;  (** reverse order *)
}

val null : ctx
(** The inert context: spans opened under it vanish. *)

val set_enabled : bool -> unit
(** Globally enable/disable tracing (default on).  While disabled,
    {!start} returns a {!null} context and mints no spans, so the only
    residual cost at an instrumented call site is one closure call. *)

val enabled : unit -> bool

val start : ?trace_id:string -> kind:string -> unit -> trace * ctx
(** Open a new trace whose root span has the given [kind].  A fresh
    trace id ([t<pid>-<counter>], unique within the process) is minted
    unless [trace_id] pins one.  The returned context sits on the root
    span.  While tracing is disabled the trace is an empty husk and the
    context is {!null}. *)

val trace_id : trace -> string

val span : ctx -> ?attrs:(string * Metrics.json) list -> string -> (ctx -> 'a) -> 'a
(** [span ctx kind f] opens a child span of [ctx], runs [f] with the
    child's context, and closes the span when [f] returns — or when it
    raises, in which case an ["error"] attribute records the exception
    and the exception propagates.  Finished spans are offered to the
    {!Flight} recorder. *)

val enter : ctx -> ?attrs:(string * Metrics.json) list -> string -> ctx
(** Non-scoped variant of {!span} for intervals that cross function
    boundaries (the serve queue-wait span opens in the accept loop and
    closes in a worker domain).  Pair with {!exit}. *)

val exit : ctx -> unit
(** Close the span [ctx] sits on (idempotent; no-op for {!null}). *)

val add_attr : ctx -> string -> Metrics.json -> unit
(** Attach an attribute to the currently open span. *)

val emit :
  ctx -> ?attrs:(string * Metrics.json) list -> ?start_ms:float -> dur_ms:float -> string -> unit
(** Record an already-finished child span post hoc — how per-pass
    timings measured below the observability layer (Passes records)
    become spans.  [start_ms] is an offset from the trace epoch and
    defaults to [elapsed - dur_ms]. *)

val elapsed_ms : ctx -> float
(** Milliseconds since the trace epoch ([0.] for {!null}). *)

val finish : trace -> unit
(** Close the root span (and any spans left open, children first). *)

(** {1 The in-memory tree} *)

val records : trace -> record list
(** All spans in emission ([seq]) order — every parent before any of
    its children.  Includes the root. *)

val skeleton : trace -> string
(** The tree shape as a stable string, e.g.
    ["request(queue-wait frontend backend(pass:cse pass:dce))"] —
    kinds only, children in emission order.  Deterministic across runs
    of the same pinned compile, which is what tests pin down. *)

val to_json : trace -> Metrics.json
(** [{"trace_id": …, "spans": [{"span_id", "parent", "kind",
    "start_ms", "dur_ms", "attrs"} …]}] in emission order, times as
    fixed 3-decimal values. *)

(** {1 The flight recorder}

    One global, mutex-guarded ring buffer of the last [capacity]
    finished spans across all traces and domains.  When a request
    fails, {!Flight.dump} is attached to the error response so the
    answer carries its own context. *)

module Flight : sig
  val set_capacity : int -> unit
  (** Resize (min 1) and clear the ring. *)

  val capacity : unit -> int

  val occupancy : unit -> int
  (** Spans currently held (≤ capacity). *)

  val recorded : unit -> int
  (** Total spans ever offered while enabled. *)

  val dropped : unit -> int
  (** Spans overwritten by newer ones ([recorded - occupancy]). *)

  val clear : unit -> unit

  val dump : unit -> Metrics.json
  (** [{"capacity", "recorded", "dropped", "spans": [oldest … newest]}]
      where each span carries its [trace_id], [kind], [start_ms],
      [dur_ms] and [attrs]. *)
end

(** {1 Chrome trace_event export} *)

module Chrome : sig
  type sink

  val create : unit -> sink
  (** An empty sink; its epoch is the creation instant, so events from
      traces added later line up on one global timeline. *)

  val add : sink -> ?pid:int -> ?tid:int -> trace -> unit
  (** Append every {e finished} span of the trace as a complete ["X"]
      event.  Thread-safe: serve workers add from their own domains. *)

  val events : sink -> int

  val to_json : ?extra:(string * Metrics.json) list -> sink -> Metrics.json
  (** [{"traceEvents": […], "displayTimeUnit": "ms"}] plus any [extra]
      top-level members (the CLI attaches a ["flight_recorder"] dump to
      the trace file of a failed compile). *)

  val write_file : ?extra:(string * Metrics.json) list -> sink -> string -> unit
end
