(** Obs.Metrics: the unified metrics registry.

    One registry holds every named counter, gauge and timer a compile or
    simulation run produces — the netlist evaluator's activity counters,
    the FSMD simulator's cycle and state-visit counts, the async token
    simulator's firings, per-pass wall times — and renders them as one
    stable JSON document.  The CLI ([chlsc compile --metrics-json]) and
    the bench harness ([BENCH_neteval.json]) both emit through this
    module, so machine-readable run reports share a single schema.

    Determinism: rendering is byte-stable for a given registry content —
    keys keep insertion order, floats print with an explicit fixed number
    of decimals ({!Fixed}) wherever a value must reproduce exactly. *)

(** {1 JSON values} *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** rendered with ["%.6g"] *)
  | Fixed of int * float  (** fixed decimal places: deterministic floats *)
  | String of string
  | List of json list
  | Obj of (string * json) list

val render : json -> string
(** Deterministic pretty rendering: objects one member per line, lists of
    scalars inline, nested structures indented two spaces.  No trailing
    newline. *)

val render_compact : json -> string
(** One-line rendering (the wire format [chlsc serve] frames use); same
    determinism guarantees as {!render}. *)

(** {1 Latency histograms}

    Fixed geometric buckets (0.001 ms doubling to ~537 s, plus overflow),
    so the JSON rendering — counts, sum and the bucket-upper-bound
    percentile readouts — is deterministic for a given observation set.
    This is the [chls.metrics/2] addition: a registry value may now be a
    histogram object ([count], [sum_ms], [min_ms]/[max_ms],
    [p50_ms]/[p90_ms]/[p99_ms], non-empty [buckets]). *)

module Histogram : sig
  type h

  val create : unit -> h
  val observe : h -> float -> unit
  val count : h -> int
  val sum : h -> float

  val percentile : h -> float -> float
  (** [percentile h q] for [q] in [0..100]: the upper bound of the
      smallest bucket reaching rank [ceil (q/100 * count)], clamped to
      the largest observation; [0.] when empty. *)

  val to_json : h -> json
end

(** {1 The registry} *)

type t

val create : unit -> t

val set : t -> string -> json -> unit
(** Set (or replace) a named value.  Dotted names ("sim.cycles") become
    nested objects in {!to_json}. *)

val set_int : t -> string -> int -> unit
val set_bool : t -> string -> bool -> unit
val set_string : t -> string -> string -> unit

val set_fixed : t -> string -> decimals:int -> float -> unit
(** A float gauge with a fixed, deterministic rendering precision. *)

val incr : t -> ?by:int -> string -> unit
(** Counter: add [by] (default 1) to the named [Int], creating it at 0. *)

val add_ms : t -> string -> float -> unit
(** Timer: accumulate milliseconds into the named [Fixed (3, _)] value. *)

val observe_ms : t -> string -> float -> unit
(** Record one latency sample into the named histogram, creating it on
    first observation.  The histogram stays live in the registry and
    materializes through {!find}/{!pairs}/{!to_json} as its summary
    object.  @raise Invalid_argument if the name holds a non-histogram. *)

val histogram : t -> string -> Histogram.h option
(** The live histogram registered under this name, if any. *)

val find : t -> string -> json option

val pairs : t -> (string * json) list
(** All entries in insertion order, dotted names unexpanded. *)

val merge : into:t -> ?prefix:string -> t -> unit
(** Copy every entry of the source registry into [into], prepending
    ["<prefix>."] to each name when a prefix is given. *)

(** {1 Rendering} *)

val to_json : t -> json
(** The registry as a JSON object: dotted names are folded into nested
    objects ("sim.cycles" and "sim.events" share one "sim" object),
    preserving first-appearance order at every level. *)

val render_flat : t -> (string * string) list
(** Flat key/value view (dotted names kept) for terminal printing; scalar
    values render bare (no quotes), structured values as compact JSON. *)

val write_file : t -> string -> unit
(** Render {!to_json} to the file, with a trailing newline. *)
