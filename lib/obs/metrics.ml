(* Obs.Metrics: the unified metrics registry.

   A registry is an insertion-ordered list of (name, json) entries.  The
   rendering is deliberately hand-rolled (no yojson in the container) and
   byte-stable: keys keep insertion order and floats that must reproduce
   exactly carry their own precision (Fixed).  Dotted names fold into
   nested objects at render time, so producers can write "sim.cycles"
   without coordinating on a tree structure. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Fixed of int * float
  | String of string
  | List of json list
  | Obj of (string * json) list

(* --- rendering --- *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let scalar_to_string = function
  | Null -> "null"
  | Bool b -> if b then "true" else "false"
  | Int n -> string_of_int n
  | Float f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.1f" f
    else Printf.sprintf "%.6g" f
  | Fixed (d, f) -> Printf.sprintf "%.*f" d f
  | String s -> Printf.sprintf "\"%s\"" (escape_string s)
  | List _ | Obj _ -> invalid_arg "Metrics.scalar_to_string"

let is_scalar = function
  | Null | Bool _ | Int _ | Float _ | Fixed _ | String _ -> true
  | List _ | Obj _ -> false

let render j =
  let buf = Buffer.create 256 in
  let pad n = Buffer.add_string buf (String.make n ' ') in
  let rec go indent j =
    match j with
    | Null | Bool _ | Int _ | Float _ | Fixed _ | String _ ->
      Buffer.add_string buf (scalar_to_string j)
    | List [] -> Buffer.add_string buf "[]"
    | List items when List.for_all is_scalar items ->
      (* lists of scalars stay inline: "args": [54, 24] *)
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf (scalar_to_string item))
        items;
      Buffer.add_char buf ']'
    | List items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (indent + 2);
          go (indent + 2) item)
        items;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj members ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (indent + 2);
          Buffer.add_string buf (Printf.sprintf "\"%s\": " (escape_string k));
          go (indent + 2) v)
        members;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf '}'
  in
  go 0 j;
  Buffer.contents buf

let render_compact j =
  let buf = Buffer.create 64 in
  let rec go j =
    match j with
    | Null | Bool _ | Int _ | Float _ | Fixed _ | String _ ->
      Buffer.add_string buf (scalar_to_string j)
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ", ";
          go item)
        items;
      Buffer.add_char buf ']'
    | Obj members ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf (Printf.sprintf "\"%s\": " (escape_string k));
          go v)
        members;
      Buffer.add_char buf '}'
  in
  go j;
  Buffer.contents buf

(* --- histograms --- *)

module Histogram = struct
  (* Geometric bucket upper bounds in milliseconds: 0.001 ms doubling up
     to ~537 s.  Fixed bounds keep the JSON rendering (and percentile
     readouts) deterministic for a given set of observations. *)
  let bounds = Array.init 30 (fun i -> 0.001 *. (2. ** float_of_int i))

  type h = {
    counts : int array; (* length bounds + 1; the last is overflow *)
    mutable n : int;
    mutable total : float;
    mutable min_v : float;
    mutable max_v : float;
  }

  let create () =
    { counts = Array.make (Array.length bounds + 1) 0;
      n = 0;
      total = 0.;
      min_v = infinity;
      max_v = neg_infinity }

  let bucket_of v =
    let rec go i =
      if i >= Array.length bounds then i
      else if v <= bounds.(i) then i
      else go (i + 1)
    in
    go 0

  let observe t v =
    let b = bucket_of v in
    t.counts.(b) <- t.counts.(b) + 1;
    t.n <- t.n + 1;
    t.total <- t.total +. v;
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v

  let count t = t.n
  let sum t = t.total

  (* The q-th percentile reads as the upper bound of the smallest bucket
     whose cumulative count reaches rank ceil(q/100 * n), clamped to the
     largest observation — bucket arithmetic over integer counts, so the
     readout is deterministic. *)
  let percentile t q =
    if t.n = 0 then 0.
    else begin
      let rank =
        max 1 (min t.n (int_of_float (ceil (q /. 100. *. float_of_int t.n))))
      in
      let rec go i acc =
        if i >= Array.length t.counts then t.max_v
        else
          let acc = acc + t.counts.(i) in
          if acc >= rank then
            if i >= Array.length bounds then t.max_v
            else Float.min bounds.(i) t.max_v
          else go (i + 1) acc
      in
      go 0 0
    end

  let to_json t =
    if t.n = 0 then
      Obj [ ("count", Int 0) ]
    else
      let buckets =
        List.concat
          (List.mapi
             (fun i c ->
               if c = 0 then []
               else
                 [ Obj
                     [ ( "le_ms",
                         if i >= Array.length bounds then String "inf"
                         else Fixed (3, bounds.(i)) );
                       ("count", Int c) ] ])
             (Array.to_list t.counts))
      in
      Obj
        [ ("count", Int t.n);
          ("sum_ms", Fixed (3, t.total));
          ("min_ms", Fixed (3, t.min_v));
          ("max_ms", Fixed (3, t.max_v));
          ("p50_ms", Fixed (3, percentile t 50.));
          ("p90_ms", Fixed (3, percentile t 90.));
          ("p99_ms", Fixed (3, percentile t 99.));
          ("buckets", List buckets) ]
end

(* --- the registry --- *)

(* Histogram cells stay live (mutable) in the registry and materialize to
   JSON at read time; everything else is a plain JSON value. *)
type cell = Json of json | Hist of Histogram.h

type t = { mutable entries : (string * cell) list (* reversed *) }

let create () = { entries = [] }

let materialize = function
  | Json j -> j
  | Hist h -> Histogram.to_json h

let set t name v =
  if List.mem_assoc name t.entries then
    t.entries <-
      List.map
        (fun (k, old) -> (k, if k = name then Json v else old))
        t.entries
  else t.entries <- (name, Json v) :: t.entries

let find t name = Option.map materialize (List.assoc_opt name t.entries)

let observe_ms t name v =
  match List.assoc_opt name t.entries with
  | Some (Hist h) -> Histogram.observe h v
  | Some (Json _) ->
    invalid_arg
      (Printf.sprintf "Metrics.observe_ms: %S is not a histogram" name)
  | None ->
    let h = Histogram.create () in
    Histogram.observe h v;
    t.entries <- (name, Hist h) :: t.entries

let histogram t name =
  match List.assoc_opt name t.entries with
  | Some (Hist h) -> Some h
  | _ -> None
let set_int t name n = set t name (Int n)
let set_bool t name b = set t name (Bool b)
let set_string t name s = set t name (String s)
let set_fixed t name ~decimals f = set t name (Fixed (decimals, f))

let incr t ?(by = 1) name =
  match find t name with
  | Some (Int n) -> set t name (Int (n + by))
  | Some _ -> invalid_arg (Printf.sprintf "Metrics.incr: %S is not an Int" name)
  | None -> set t name (Int by)

let add_ms t name ms =
  match find t name with
  | Some (Fixed (d, prev)) -> set t name (Fixed (d, prev +. ms))
  | Some _ ->
    invalid_arg (Printf.sprintf "Metrics.add_ms: %S is not a timer" name)
  | None -> set t name (Fixed (3, ms))

let pairs t = List.rev_map (fun (k, c) -> (k, materialize c)) t.entries

let merge ~into ?prefix src =
  let rename k =
    match prefix with None -> k | Some p -> p ^ "." ^ k
  in
  List.iter (fun (k, v) -> set into (rename k) v) (pairs src)

(* Fold dotted names into nested objects, preserving first-appearance
   order at every level.  A name that is both a leaf and a group prefix
   keeps the group (the leaf is dropped) — producers should not mix the
   two under one name. *)
let to_json t =
  let rec nest (entries : (string list * json) list) : json =
    let order = ref [] in
    let groups = Hashtbl.create 8 in
    List.iter
      (fun (path, v) ->
        match path with
        | [] -> ()
        | key :: rest ->
          if not (Hashtbl.mem groups key) then order := key :: !order;
          let prev = try Hashtbl.find groups key with Not_found -> [] in
          Hashtbl.replace groups key ((rest, v) :: prev))
      entries;
    Obj
      (List.rev_map
         (fun key ->
           let sub = List.rev (Hashtbl.find groups key) in
           match sub with
           | [ ([], v) ] -> (key, v)
           | sub -> (key, nest (List.filter (fun (p, _) -> p <> []) sub)))
         !order)
  in
  nest
    (List.map (fun (k, v) -> (String.split_on_char '.' k, v)) (pairs t))

let render_flat t =
  List.map
    (fun (k, v) ->
      ( k,
        match v with
        | String s -> s
        | Null | Bool _ | Int _ | Float _ | Fixed _ -> scalar_to_string v
        | List _ | Obj _ -> render_compact v ))
    (pairs t)

let write_file t path =
  Out_channel.with_open_text path (fun oc ->
      output_string oc (render (to_json t));
      output_char oc '\n')
