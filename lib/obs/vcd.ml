(* Obs.Vcd: IEEE-1364 Value Change Dump writer.

   Identifier codes are printable ASCII (33..126) in a base-94 counter,
   exactly as commercial simulators assign them.  Declarations are
   buffered until $enddefinitions so variables can arrive in any order
   and still be grouped by scope; change records stream straight into
   the buffer with writer-side deduplication (a VCD records changes, so
   hooks may report every observation and let the writer filter). *)

type var = int (* index into vars/last_value *)

type decl = {
  d_scope : string option;
  d_name : string;
  d_width : int;
  d_code : string;
}

type t = {
  date : string;
  version : string;
  timescale : string;
  mutable decls : decl list; (* reversed; aliases included *)
  mutable widths : int list; (* reversed, one per distinct var *)
  mutable nvars : int;
  mutable defs_done : bool;
  mutable last_value : Bitvec.t option array;
  mutable time : int;
  buf : Buffer.t;
}

let create ?(date = "(run)") ?(version = "chls Obs.Vcd") ?(timescale = "1ns")
    () =
  { date;
    version;
    timescale;
    decls = [];
    widths = [];
    nvars = 0;
    defs_done = false;
    last_value = [||];
    time = -1;
    buf = Buffer.create 4096 }

(* base-94 identifier code over the printable characters '!'..'~' *)
let code_of_int n =
  let rec go n acc =
    let acc = String.make 1 (Char.chr (33 + (n mod 94))) ^ acc in
    if n < 94 then acc else go ((n / 94) - 1) acc
  in
  go n ""

let add_var ?scope t ~name ~width =
  if t.defs_done then
    invalid_arg "Vcd.add_var: declarations are closed ($enddefinitions)";
  if width < 1 then invalid_arg "Vcd.add_var: width must be positive";
  let v = t.nvars in
  t.nvars <- v + 1;
  t.decls <-
    { d_scope = scope; d_name = name; d_width = width; d_code = code_of_int v }
    :: t.decls;
  t.widths <- width :: t.widths;
  v

let alias t ?scope ~name var =
  if t.defs_done then
    invalid_arg "Vcd.alias: declarations are closed ($enddefinitions)";
  let existing =
    List.find (fun d -> d.d_code = code_of_int var) t.decls
  in
  t.decls <-
    { d_scope = scope; d_name = name; d_width = existing.d_width;
      d_code = existing.d_code }
    :: t.decls

let num_vars t = t.nvars

(* Sanitize a name into a VCD identifier (no whitespace). *)
let clean_name name =
  String.map (fun c -> if c = ' ' || c = '\t' then '_' else c) name

let enddefinitions t =
  if not t.defs_done then begin
    t.defs_done <- true;
    let b = t.buf in
    Printf.bprintf b "$date %s $end\n" t.date;
    Printf.bprintf b "$version %s $end\n" t.version;
    Printf.bprintf b "$timescale %s $end\n" t.timescale;
    let decls = List.rev t.decls in
    let scopes =
      List.fold_left
        (fun acc d -> if List.mem d.d_scope acc then acc else d.d_scope :: acc)
        [] decls
      |> List.rev
    in
    List.iter
      (fun scope ->
        (match scope with
        | Some s -> Printf.bprintf b "$scope module %s $end\n" (clean_name s)
        | None -> ());
        List.iter
          (fun d ->
            if d.d_scope = scope then
              if d.d_width = 1 then
                Printf.bprintf b "$var wire 1 %s %s $end\n" d.d_code
                  (clean_name d.d_name)
              else
                Printf.bprintf b "$var wire %d %s %s [%d:0] $end\n" d.d_width
                  d.d_code (clean_name d.d_name) (d.d_width - 1))
          decls;
        match scope with
        | Some _ -> Buffer.add_string b "$upscope $end\n"
        | None -> ())
      scopes;
    Buffer.add_string b "$enddefinitions $end\n";
    (* initial snapshot: everything unknown until the first change *)
    Buffer.add_string b "$dumpvars\n";
    let widths = Array.of_list (List.rev t.widths) in
    Array.iteri
      (fun v w ->
        if w = 1 then Printf.bprintf b "x%s\n" (code_of_int v)
        else Printf.bprintf b "bx %s\n" (code_of_int v))
      widths;
    Buffer.add_string b "$end\n";
    t.last_value <- Array.make (max 1 t.nvars) None
  end

let bits_of bv =
  let w = Bitvec.width bv in
  String.init w (fun i -> if Bitvec.bit (w - 1 - i) bv then '1' else '0')

let change t ~time var value =
  if not t.defs_done then enddefinitions t;
  if var < 0 || var >= t.nvars then invalid_arg "Vcd.change: unknown var";
  if time < t.time then
    invalid_arg
      (Printf.sprintf "Vcd.change: time %d is before current time %d" time
         t.time);
  let same =
    match t.last_value.(var) with
    | Some prev -> Bitvec.equal prev value
    | None -> false
  in
  if not same then begin
    if time > t.time then begin
      Printf.bprintf t.buf "#%d\n" time;
      t.time <- time
    end;
    t.last_value.(var) <- Some value;
    if Bitvec.width value = 1 then
      Printf.bprintf t.buf "%c%s\n"
        (if Bitvec.to_bool value then '1' else '0')
        (code_of_int var)
    else Printf.bprintf t.buf "b%s %s\n" (bits_of value) (code_of_int var)
  end

let current_time t = t.time

let contents t =
  enddefinitions t;
  Buffer.contents t.buf

let write_file t path =
  Out_channel.with_open_text path (fun oc -> output_string oc (contents t))
