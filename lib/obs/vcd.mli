(** Obs.Vcd: an IEEE-1364 Value Change Dump writer.

    The industry-standard waveform format: a header ($date, $version,
    $timescale), variable declarations with bit widths, $enddefinitions,
    an initial $dumpvars block, then timestamped value-change records.
    Any VCD viewer (GTKWave, Surfer) opens the output.

    The writer enforces the format's invariants so simulator hooks can
    stay dumb: declarations must precede changes, timestamps must be
    monotone, and a change to a value a variable already holds is
    silently dropped (VCD records changes, not samples). *)

type t
type var

val create :
  ?date:string -> ?version:string -> ?timescale:string -> unit -> t
(** A writer accumulating into memory.  [date] defaults to ["(run)"] — a
    fixed string, so output is deterministic; [timescale] to ["1ns"]. *)

val add_var : ?scope:string -> t -> name:string -> width:int -> var
(** Declare a wire of [width] bits, optionally inside a named module
    scope.  Identifier codes are assigned automatically.
    @raise Invalid_argument after {!enddefinitions}. *)

val alias : t -> ?scope:string -> name:string -> var -> unit
(** Declare a second name for an existing variable (same identifier
    code) — standard VCD aliasing, e.g. an output port name for an
    internal net. *)

val enddefinitions : t -> unit
(** Emit the header, the declarations grouped by scope,
    [$enddefinitions], and a [$dumpvars] block initializing every
    variable to ['x'].  Called automatically by the first {!change}. *)

val change : t -> time:int -> var -> Bitvec.t -> unit
(** Record that [var] takes this value at [time].  Emits a [#time]
    stamp when time advances; drops the record when the variable already
    holds the value.
    @raise Invalid_argument if [time] is less than the last time. *)

val current_time : t -> int
(** The last timestamp written; -1 before the first change. *)

val num_vars : t -> int

val contents : t -> string
(** Everything written so far (forces {!enddefinitions}). *)

val write_file : t -> string -> unit
