(* Timed token simulation of the asynchronous dataflow circuit.

   Executes the SSA form with *timestamps*: every value carries the time
   its token becomes available; an operator fires when all its input
   tokens (and its control token) have arrived, taking its latency plus a
   handshake overhead.  Control tokens model the mu/eta structure: a
   block's control token arrives when the branch steering into it
   resolved; a phi's output is available at max(incoming value, control
   token).  Memory is token-serialized per region (CASH's load-store
   token chains): a load cannot fire before the last store to that region
   completed, and a store waits for prior loads.

   There is no clock anywhere: completion time is the critical path of
   the *dynamic* computation, which is exactly the asynchronous-circuit
   advantage experiment E6 measures against the synchronous backends
   (whose every operation is quantized to a multiple of the clock). *)

type timing = {
  latency : Cir.instr -> float; (* pure computation delay, time units *)
  handshake : float; (* per-token request/acknowledge overhead *)
}

(* Latency in time units ~ gate delays, consistent with Area's delay model
   so sync and async compare on the same scale.  Operator latency depends
   on the operand width, which for register operands comes from the
   function's declared register widths — a 9-bit adder must not be charged
   a 32-bit ripple delay or E6's async-vs-sync comparison is skewed for
   narrow datapaths. *)
let default_timing_for ?(handshake = 2.) (func : Cir.func) =
  { latency =
      (fun instr ->
        match instr with
        | Cir.I_bin { op; a; _ } ->
          (Area.binop_cost op (Cir.operand_width func a)).Area.delay
        | Cir.I_un { op; a; _ } ->
          (Area.unop_cost op (Cir.operand_width func a)).Area.delay
        | Cir.I_mux _ -> 2.
        | Cir.I_mov _ | Cir.I_cast _ -> 0.
        | Cir.I_load _ -> 6.
        | Cir.I_store _ -> 3.);
    handshake }

type outcome = {
  return_value : Bitvec.t option;
  completion_time : float;
  tokens_fired : int;
  globals : (string * Bitvec.t) list;
  memories : (string * Bitvec.t array) list;
}

exception Timeout of { tokens_fired : int; time : float }

(** Execute the dataflow circuit of [ssa] with timed tokens. *)
let run ?timing ?(max_tokens = 10_000_000) ?on_fire (ssa : Ssa.t)
    ~args : outcome =
  let func = ssa.Ssa.func in
  let timing =
    match timing with Some t -> t | None -> default_timing_for func
  in
  let regs =
    Array.init func.Cir.fn_reg_count (fun r ->
        Bitvec.zero (max 1 func.Cir.fn_reg_widths.(r)))
  in
  let reg_time = Array.make func.Cir.fn_reg_count 0. in
  let memories =
    Array.map
      (fun (rg : Cir.region) ->
        match rg.Cir.rg_init with
        | Some init -> Array.copy init
        | None -> Array.make rg.Cir.rg_words (Bitvec.zero rg.Cir.rg_width))
      func.Cir.fn_regions
  in
  let mem_store_time = Array.make (Array.length memories) 0. in
  let mem_load_time = Array.make (Array.length memories) 0. in
  List.iter (fun (_, r, init) -> regs.(r) <- init) func.Cir.fn_globals;
  List.iter2
    (fun (_, r) v ->
      regs.(r) <- Bitvec.resize ~signed:true ~width:(Cir.reg_width func r) v)
    func.Cir.fn_params args;
  let value = function
    | Cir.O_imm bv -> bv
    | Cir.O_reg r -> regs.(r)
  in
  let time_of = function
    | Cir.O_imm _ -> 0.
    | Cir.O_reg r -> reg_time.(r)
  in
  let fired = ref 0 in
  let now = ref 0. in
  let fire () =
    incr fired;
    if !fired > max_tokens then
      raise (Timeout { tokens_fired = !fired - 1; time = !now })
  in
  (* Observation only: report a token's (completion time, register, value)
     after it is committed.  Firing order follows execution, not time —
     Obs.Trace sorts by timestamp before writing a waveform. *)
  let observe t dst v =
    if t > !now then now := t;
    match on_fire with
    | None -> ()
    | Some f -> f ~time:t ~reg:(dst : Cir.reg) ~value:(v : Bitvec.t)
  in
  let rec run_block ~came_from ~control b =
    (* phis: merge (mu) nodes fire at max(value token, control token) *)
    let phi_updates =
      List.map
        (fun (phi : Ssa.phi) ->
          match List.assoc_opt came_from phi.Ssa.p_srcs with
          | Some src ->
            (phi.Ssa.p_dst, value src,
             Float.max control (time_of src) +. timing.handshake)
          | None -> (phi.Ssa.p_dst, Bitvec.zero phi.Ssa.p_width, control))
        ssa.Ssa.phis.(b)
    in
    List.iter
      (fun (dst, v, t) ->
        fire ();
        regs.(dst) <- v;
        reg_time.(dst) <- t;
        observe t dst v)
      phi_updates;
    let blk = Cir.block func b in
    List.iter
      (fun instr ->
        fire ();
        let input_time =
          List.fold_left
            (fun acc r -> Float.max acc reg_time.(r))
            control (Cir.uses_of instr)
        in
        let finish = input_time +. timing.latency instr +. timing.handshake in
        match instr with
        | Cir.I_bin { op; dst; a; b } ->
          regs.(dst) <- Neteval.apply_binop op (value a) (value b);
          reg_time.(dst) <- finish;
          observe finish dst regs.(dst)
        | Cir.I_un { op; dst; a } ->
          regs.(dst) <- Neteval.apply_unop op (value a);
          reg_time.(dst) <- finish;
          observe finish dst regs.(dst)
        | Cir.I_mov { dst; src } ->
          regs.(dst) <- value src;
          reg_time.(dst) <- finish;
          observe finish dst regs.(dst)
        | Cir.I_cast { dst; signed; src } ->
          regs.(dst) <-
            Bitvec.resize ~signed ~width:(Cir.reg_width func dst) (value src);
          reg_time.(dst) <- finish;
          observe finish dst regs.(dst)
        | Cir.I_mux { dst; sel; if_true; if_false } ->
          regs.(dst) <-
            (if Bitvec.to_bool (value sel) then value if_true
             else value if_false);
          reg_time.(dst) <- finish;
          observe finish dst regs.(dst)
        | Cir.I_load { dst; region; addr } ->
          let start = Float.max input_time mem_store_time.(region) in
          let finish = start +. timing.latency instr +. timing.handshake in
          let mem = memories.(region) in
          let a = Bitvec.to_int_unsigned (value addr) in
          regs.(dst) <-
            (if a < Array.length mem then mem.(a)
             else Bitvec.zero (Cir.reg_width func dst));
          reg_time.(dst) <- finish;
          mem_load_time.(region) <- Float.max mem_load_time.(region) finish;
          observe finish dst regs.(dst)
        | Cir.I_store { region; addr; value = v } ->
          let start =
            Float.max input_time
              (Float.max mem_store_time.(region) mem_load_time.(region))
          in
          let finish = start +. timing.latency instr +. timing.handshake in
          let mem = memories.(region) in
          let a = Bitvec.to_int_unsigned (value addr) in
          if a < Array.length mem then mem.(a) <- value v;
          mem_store_time.(region) <- finish;
          if finish > !now then now := finish)
      blk.Cir.instrs;
    match blk.Cir.term with
    | Cir.T_jump next -> run_block ~came_from:b ~control next
    | Cir.T_branch { cond; if_true; if_false } ->
      (* eta/steer: successors' control tokens wait for the predicate *)
      fire ();
      let resolve = Float.max control (time_of cond) +. timing.handshake in
      if Bitvec.to_bool (value cond) then
        run_block ~came_from:b ~control:resolve if_true
      else run_block ~came_from:b ~control:resolve if_false
    | Cir.T_return v ->
      let t =
        match v with
        | Some op -> Float.max control (time_of op) +. timing.handshake
        | None -> control
      in
      (Option.map value v, t)
  in
  let return_value, completion_time =
    run_block ~came_from:(-1) ~control:0. func.Cir.fn_entry
  in
  { return_value;
    completion_time;
    tokens_fired = !fired;
    globals =
      List.map (fun (name, r, _) -> (name, regs.(r))) func.Cir.fn_globals;
    memories =
      Array.to_list
        (Array.mapi
           (fun i (rg : Cir.region) -> (rg.Cir.rg_name, memories.(i)))
           func.Cir.fn_regions) }
