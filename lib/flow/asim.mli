(** Timed token simulation of the asynchronous dataflow circuit: every
    value carries the time its token becomes available; operators fire
    when inputs (and the control token) arrive, taking latency plus a
    handshake overhead; memory is token-serialized per region.  No clock
    anywhere — completion time is the dynamic critical path, which is the
    asynchronous advantage experiment E6 measures. *)

type timing = {
  latency : Cir.instr -> float;  (** pure computation delay, time units *)
  handshake : float;  (** per-token request/acknowledge overhead *)
}

val default_timing_for : ?handshake:float -> Cir.func -> timing
(** Latencies consistent with the Area delay model (so synchronous and
    asynchronous designs compare on one scale), using each operand's
    declared register width — a narrow adder is charged a narrow ripple
    delay.  Default handshake 2.0. *)

type outcome = {
  return_value : Bitvec.t option;
  completion_time : float;
  tokens_fired : int;
  globals : (string * Bitvec.t) list;
  memories : (string * Bitvec.t array) list;
}

exception Timeout of { tokens_fired : int; time : float }
(** Raised past [max_tokens], carrying how many tokens had fired and the
    latest completion time reached, so callers can report a partial
    outcome instead of a bare failure. *)

val run :
  ?timing:timing ->
  ?max_tokens:int ->
  ?on_fire:(time:float -> reg:Cir.reg -> value:Bitvec.t -> unit) ->
  Ssa.t -> args:Bitvec.t list -> outcome
(** [on_fire] observes each committed token (completion time, defined
    register, value).  Tokens are reported in execution order, not time
    order — Obs.Trace buffers and sorts before writing a waveform.  The
    hook observes only; it cannot perturb the run. *)
