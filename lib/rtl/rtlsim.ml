(* Cycle-accurate FSMD simulator.

   One simulation step = one clock cycle = one FSM state.  Within a state,
   actions execute in order with immediate register visibility (that is
   chaining-by-wire; the scheduler guarantees the order is legal), memory
   stores are buffered to the end of the cycle unless the design uses
   forwarding register-file memories, and loads read the pre-state
   contents.

   An optional trace hook observes every cycle (state taken, register
   file, stores committed this cycle) after the cycle's effects are
   applied; it cannot perturb the simulation.  Obs.Trace adapts it into a
   VCD waveform. *)

exception Timeout of { cycles : int; state : int }
exception Runtime_error of string

type trace = {
  on_cycle :
    cycle:int ->
    state:int ->
    regs:Bitvec.t array ->
    stores:(int * int * Bitvec.t) list ->
    unit;
      (* stores: (region, address, value) committed this cycle, in
         program order *)
}

type outcome = {
  return_value : Bitvec.t option;
  cycles : int;
  globals : (string * Bitvec.t) list;
  memories : (string * Bitvec.t array) list;
  states_visited : int array; (* visit count per state, for profiling *)
}

let run ?(max_cycles = 2_000_000) ?trace (fsmd : Fsmd.t) ~args : outcome =
  let func = fsmd.Fsmd.func in
  let regs =
    Array.init func.Cir.fn_reg_count (fun r ->
        Bitvec.zero (max 1 func.Cir.fn_reg_widths.(r)))
  in
  let memories =
    Array.map
      (fun (rg : Cir.region) ->
        match rg.Cir.rg_init with
        | Some init -> Array.copy init
        | None -> Array.make rg.Cir.rg_words (Bitvec.zero rg.Cir.rg_width))
      func.Cir.fn_regions
  in
  List.iter (fun (_, r, init) -> regs.(r) <- init) func.Cir.fn_globals;
  if List.length args <> List.length func.Cir.fn_params then
    raise
      (Runtime_error
         (Printf.sprintf "%s expects %d args" func.Cir.fn_name
            (List.length func.Cir.fn_params)));
  List.iter2
    (fun (_, r) v ->
      regs.(r) <- Bitvec.resize ~signed:true ~width:(Cir.reg_width func r) v)
    func.Cir.fn_params args;
  let value = function
    | Cir.O_imm bv -> bv
    | Cir.O_reg r -> regs.(r)
  in
  let visited = Array.make (Fsmd.num_states fsmd) 0 in
  let cycles = ref 0 in
  let state = ref fsmd.Fsmd.entry in
  let result = ref None in
  let halted = ref false in
  while not !halted do
    if !cycles >= max_cycles then
      raise (Timeout { cycles = !cycles; state = !state });
    incr cycles;
    let st = fsmd.Fsmd.states.(!state) in
    visited.(!state) <- visited.(!state) + 1;
    let store_buffer = ref [] in
    let store_log = ref [] in
    List.iter
      (fun instr ->
        match instr with
        | Cir.I_bin { op; dst; a; b } ->
          regs.(dst) <- Neteval.apply_binop op (value a) (value b)
        | Cir.I_un { op; dst; a } ->
          regs.(dst) <- Neteval.apply_unop op (value a)
        | Cir.I_mov { dst; src } -> regs.(dst) <- value src
        | Cir.I_cast { dst; signed; src } ->
          regs.(dst) <-
            Bitvec.resize ~signed ~width:(Cir.reg_width func dst) (value src)
        | Cir.I_mux { dst; sel; if_true; if_false } ->
          regs.(dst) <-
            (if Bitvec.to_bool (value sel) then value if_true
             else value if_false)
        | Cir.I_load { dst; region; addr } ->
          let mem = memories.(region) in
          let a = Bitvec.to_int_unsigned (value addr) in
          regs.(dst) <-
            (if a < Array.length mem then mem.(a)
             else Bitvec.zero (Cir.reg_width func dst))
        | Cir.I_store { region; addr; value = v } ->
          let a = Bitvec.to_int_unsigned (value addr) in
          store_log := (region, a, value v) :: !store_log;
          if fsmd.Fsmd.mem_forwarding then begin
            let mem = memories.(region) in
            if a < Array.length mem then mem.(a) <- value v
          end
          else store_buffer := (region, a, value v) :: !store_buffer)
      st.Fsmd.actions;
    (* clock edge: apply buffered stores, then transition *)
    List.iter
      (fun (region, a, v) ->
        let mem = memories.(region) in
        if a < Array.length mem then mem.(a) <- v)
      (List.rev !store_buffer);
    (match trace with
    | None -> ()
    | Some tr ->
      tr.on_cycle ~cycle:(!cycles - 1) ~state:!state ~regs
        ~stores:(List.rev !store_log));
    (match st.Fsmd.next with
    | Fsmd.N_goto target -> state := target
    | Fsmd.N_branch { cond; if_true; if_false } ->
      state := (if Bitvec.to_bool (value cond) then if_true else if_false)
    | Fsmd.N_halt v ->
      result := Option.map value v;
      halted := true)
  done;
  { return_value = !result;
    cycles = !cycles;
    globals =
      List.map (fun (name, r, _) -> (name, regs.(r))) func.Cir.fn_globals;
    memories =
      Array.to_list
        (Array.mapi
           (fun i (rg : Cir.region) -> (rg.Cir.rg_name, memories.(i)))
           func.Cir.fn_regions);
    states_visited = visited }
