(** Compiled FSMD simulation.

    [Rtlsim] re-walks each state's instruction list every cycle,
    re-dispatching on constructors and re-boxing every register value.
    This module compiles the FSMD once: each state's actions become an
    array of specialized [unit -> unit] closures over unboxed [int]
    register files (parallel bits/width arrays, since Rtlsim registers
    carry dynamic widths), and each transition becomes a [unit -> int]
    closure.  A cycle is then a straight-line closure run — no
    instruction-list traversal, no Bitvec allocation — and the compiled
    engine is reusable: each {!execute} just blits the precomputed
    initial register/memory images back in, so compilation cost is paid
    once per design, not once per run.

    Semantics are bit-identical to {!Rtlsim} (same exceptions, same
    [outcome], same trace stream); the interpreter stays available as the
    differential oracle (see [chlsc compile --verify-sim]).  Designs
    whose registers, immediates, memories or globals exceed 62 bits fall
    back to {!Rtlsim.run} transparently. *)

val int_width_limit : int
(** Widest register/immediate/memory word the unboxed engine handles
    (62 bits); anything wider sends the whole design to the fallback. *)

val compilable : Fsmd.t -> bool
(** Can this FSMD run on the compiled int engine?  Requires every
    register width, immediate width, memory word width and global
    initializer to fit an unboxed OCaml int (<= 62 bits).  When [false],
    {!create} wraps the interpreter instead. *)

type t
(** A compiled simulation engine for one FSMD. *)

val create : Fsmd.t -> t
(** Compile the FSMD to per-state closure arrays (or, when not
    {!compilable}, an interpreter fallback wrapper). *)

val compiled : t -> bool
(** [true] when {!create} produced the closure engine rather than the
    interpreter fallback. *)

val execute :
  ?max_cycles:int -> ?trace:Rtlsim.trace -> t -> args:Bitvec.t list ->
  Rtlsim.outcome
(** Run the compiled engine.  Resets every register and memory cell to
    its initial image first, so repeated calls are independent.
    Tracing materializes the register file as [Bitvec.t]s once per
    cycle — only paid when a trace is attached.
    @raise Rtlsim.Timeout after [max_cycles] (default 2,000,000).
    @raise Rtlsim.Runtime_error on argument-count mismatch. *)

val run :
  ?max_cycles:int -> ?trace:Rtlsim.trace -> Fsmd.t -> args:Bitvec.t list ->
  Rtlsim.outcome
(** One-shot convenience: {!create} + {!execute}.  Drop-in replacement
    for {!Rtlsim.run}. *)
