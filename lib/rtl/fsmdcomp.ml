(* Compiled FSMD simulation.

   Rtlsim interprets: every cycle it walks the current state's
   instruction list, matching on constructors and evaluating operands
   through boxed Bitvec values.  Here the FSMD is compiled once — each
   instruction becomes one specialized [unit -> unit] closure and each
   transition a [unit -> int] closure (-1 = halt) — and the compiled
   engine can then execute any number of runs: a cycle is a
   straight-line run over a closure array, and a fresh run just blits
   the precomputed initial register/memory images back in.

   Register file representation: Rtlsim registers carry *dynamic* widths
   (an I_bin writes an operand-width result, a comparison a 1-bit one, a
   mov copies the source's width), so the compiled engine keeps two
   parallel unboxed arrays — masked bit patterns and current widths —
   instead of one Bitvec array.  Memory cells get the same treatment
   (stores deposit the stored value's width).  All arithmetic is
   bit-identical to Bitvec at widths <= 62: masking by [(1 lsl w) - 1],
   signed views via shift-extend, division by zero following the
   hardware-divider convention, and out-of-range shifts producing zero
   (sign bits for arithmetic right shifts).  Operand-width mismatches
   take a slow path through Neteval.apply_binop so they raise (or, for
   eq/ne, compare unequal) exactly as the interpreter would.

   Designs with registers, immediates, memories or globals wider than 62
   bits fall back to Rtlsim.run transparently; the interpreter also
   remains the differential oracle for this engine (chlsc compile
   --verify-sim, test/test_simcomp.ml). *)

let int_width_limit = 62

let masks = Array.init (int_width_limit + 1) (fun w -> (1 lsl w) - 1)

let[@inline] sx v w = (v lsl (Sys.int_size - w)) asr (Sys.int_size - w)

let[@inline] to_bits bv = Int64.to_int (Bitvec.to_int64_unsigned bv)

(* operand source, resolved at compile time *)
type src = SImm of int * int (* bits, width *) | SReg of int

let compilable (fsmd : Fsmd.t) =
  let func = fsmd.Fsmd.func in
  let ok = ref true in
  let chk_w w = if w > int_width_limit then ok := false in
  Array.iter chk_w func.Cir.fn_reg_widths;
  Array.iter
    (fun (rg : Cir.region) ->
      if rg.Cir.rg_width < 1 then ok := false;
      chk_w rg.Cir.rg_width;
      match rg.Cir.rg_init with
      | Some cells -> Array.iter (fun c -> chk_w (Bitvec.width c)) cells
      | None -> ())
    func.Cir.fn_regions;
  List.iter (fun (_, _, init) -> chk_w (Bitvec.width init)) func.Cir.fn_globals;
  let chk_op = function
    | Cir.O_imm bv -> chk_w (Bitvec.width bv)
    | Cir.O_reg _ -> ()
  in
  (* leave zero-width cast/load destinations to the interpreter: those
     crash in Bitvec and the fallback reproduces the crash exactly *)
  let chk_dst_w dst = if Cir.reg_width func dst < 1 then ok := false in
  Array.iter
    (fun (st : Fsmd.state) ->
      List.iter
        (fun instr ->
          match instr with
          | Cir.I_bin { a; b; _ } -> chk_op a; chk_op b
          | Cir.I_un { a; _ } -> chk_op a
          | Cir.I_mov { src; _ } -> chk_op src
          | Cir.I_cast { dst; src; _ } -> chk_dst_w dst; chk_op src
          | Cir.I_mux { sel; if_true; if_false; _ } ->
            chk_op sel; chk_op if_true; chk_op if_false
          | Cir.I_load { dst; addr; _ } -> chk_dst_w dst; chk_op addr
          | Cir.I_store { addr; value; _ } -> chk_op addr; chk_op value)
        st.Fsmd.actions;
      match st.Fsmd.next with
      | Fsmd.N_branch { cond; _ } -> chk_op cond
      | Fsmd.N_halt (Some op) -> chk_op op
      | Fsmd.N_goto _ | Fsmd.N_halt None -> ())
    fsmd.Fsmd.states;
  !ok

type comp = {
  fsmd : Fsmd.t;
  nregs : int;
  (* live register file: masked bit patterns + current dynamic widths *)
  reg_bits : int array;
  reg_w : int array;
  (* initial images (globals applied), blitted in at each run's start *)
  reg_init_bits : int array;
  reg_init_w : int array;
  mem_bits : int array array;
  mem_w : int array array;
  mem_init_bits : int array array;
  mem_init_w : int array array;
  (* per-state compiled actions + transition (-1 = halt) *)
  states : ((unit -> unit) array * (unit -> int)) array;
  (* non-forwarding stores buffer here until the clock edge *)
  sb_region : int array;
  sb_addr : int array;
  sb_bits : int array;
  sb_w : int array;
  sb_n : int ref;
  (* trace support; store closures consult [traced] so untraced runs
     never build the log *)
  traced : bool ref;
  store_log : (int * int * Bitvec.t) list ref;
  result : Bitvec.t option ref;
}

type t = Compiled of comp | Interp of Fsmd.t

let compile (fsmd : Fsmd.t) : comp =
  let func = fsmd.Fsmd.func in
  let nregs = func.Cir.fn_reg_count in
  let reg_bits = Array.make (max nregs 1) 0 in
  let reg_w = Array.make (max nregs 1) 1 in
  let reg_init_bits = Array.make (max nregs 1) 0 in
  let reg_init_w =
    Array.init (max nregs 1) (fun r ->
        if r < nregs then max 1 func.Cir.fn_reg_widths.(r) else 1)
  in
  List.iter
    (fun (_, r, init) ->
      reg_init_bits.(r) <- to_bits init;
      reg_init_w.(r) <- Bitvec.width init)
    func.Cir.fn_globals;
  let mem_init_bits =
    Array.map
      (fun (rg : Cir.region) ->
        match rg.Cir.rg_init with
        | Some init -> Array.map to_bits init
        | None -> Array.make rg.Cir.rg_words 0)
      func.Cir.fn_regions
  in
  let mem_init_w =
    Array.map
      (fun (rg : Cir.region) ->
        match rg.Cir.rg_init with
        | Some init -> Array.map Bitvec.width init
        | None -> Array.make rg.Cir.rg_words rg.Cir.rg_width)
      func.Cir.fn_regions
  in
  let mem_bits = Array.map Array.copy mem_init_bits in
  let mem_w = Array.map Array.copy mem_init_w in
  let src = function
    | Cir.O_imm bv -> SImm (to_bits bv, Bitvec.width bv)
    | Cir.O_reg r -> SReg r
  in
  let bits = function SImm (b, _) -> b | SReg r -> reg_bits.(r) in
  let wid = function SImm (_, w) -> w | SReg r -> reg_w.(r) in
  let bv_of = function
    | SImm (b, w) -> Bitvec.make ~width:w (Int64.of_int b)
    | SReg r -> Bitvec.make ~width:reg_w.(r) (Int64.of_int reg_bits.(r))
  in
  let traced = ref false in
  let store_log : (int * int * Bitvec.t) list ref = ref [] in
  let max_stores =
    Array.fold_left
      (fun acc (st : Fsmd.state) ->
        max acc
          (List.length
             (List.filter
                (function Cir.I_store _ -> true | _ -> false)
                st.Fsmd.actions)))
      0 fsmd.Fsmd.states
  in
  let sb_region = Array.make (max max_stores 1) 0 in
  let sb_addr = Array.make (max max_stores 1) 0 in
  let sb_bits = Array.make (max max_stores 1) 0 in
  let sb_w = Array.make (max max_stores 1) 0 in
  let sb_n = ref 0 in
  let result : Bitvec.t option ref = ref None in
  let compile_instr instr : unit -> unit =
    match instr with
    | Cir.I_bin { op; dst; a; b } ->
      let a = src a and b = src b in
      (* operand-width mismatches funnel through the interpreter's
         operator table, so they raise Width_mismatch (or compare
         unequal, for eq/ne) exactly as Rtlsim would *)
      let slow () =
        let r = Neteval.apply_binop op (bv_of a) (bv_of b) in
        reg_bits.(dst) <- to_bits r;
        reg_w.(dst) <- Bitvec.width r
      in
      let arith f () =
        let wa = wid a and wb = wid b in
        if wa <> wb then slow ()
        else begin
          reg_bits.(dst) <- f (bits a) (bits b) wa;
          reg_w.(dst) <- wa
        end
      in
      let cmp f () =
        let wa = wid a and wb = wid b in
        if wa <> wb then slow ()
        else begin
          reg_bits.(dst) <- (if f (bits a) (bits b) wa then 1 else 0);
          reg_w.(dst) <- 1
        end
      in
      (* shift amounts may have any width (Bitvec.shl's contract) *)
      let shift f () =
        let wa = wid a in
        reg_bits.(dst) <- f (bits a) (bits b) wa;
        reg_w.(dst) <- wa
      in
      (match op with
      | Netlist.B_add -> arith (fun x y w -> (x + y) land masks.(w))
      | Netlist.B_sub -> arith (fun x y w -> (x - y) land masks.(w))
      | Netlist.B_mul -> arith (fun x y w -> x * y land masks.(w))
      | Netlist.B_udiv ->
        arith (fun x y w -> if y = 0 then masks.(w) else x / y)
      | Netlist.B_urem -> arith (fun x y _ -> if y = 0 then x else x mod y)
      | Netlist.B_sdiv ->
        arith (fun x y w ->
            if y = 0 then masks.(w) else sx x w / sx y w land masks.(w))
      | Netlist.B_srem ->
        arith (fun x y w ->
            if y = 0 then x else sx x w mod sx y w land masks.(w))
      | Netlist.B_and -> arith (fun x y _ -> x land y)
      | Netlist.B_or -> arith (fun x y _ -> x lor y)
      | Netlist.B_xor -> arith (fun x y _ -> x lxor y)
      | Netlist.B_shl ->
        shift (fun x y w -> if y >= w then 0 else x lsl y land masks.(w))
      | Netlist.B_lshr -> shift (fun x y w -> if y >= w then 0 else x lsr y)
      | Netlist.B_ashr ->
        shift (fun x y w ->
            let n = if y > w - 1 then w - 1 else y in
            sx x w asr n land masks.(w))
      | Netlist.B_eq -> cmp (fun x y _ -> x = y)
      | Netlist.B_ne -> cmp (fun x y _ -> x <> y)
      | Netlist.B_ult -> cmp (fun x y _ -> x < y)
      | Netlist.B_ule -> cmp (fun x y _ -> x <= y)
      | Netlist.B_slt -> cmp (fun x y w -> sx x w < sx y w)
      | Netlist.B_sle -> cmp (fun x y w -> sx x w <= sx y w))
    | Cir.I_un { op; dst; a } ->
      let a = src a in
      (match op with
      | Netlist.U_not ->
        fun () ->
          let w = wid a in
          reg_bits.(dst) <- bits a lxor masks.(w);
          reg_w.(dst) <- w
      | Netlist.U_neg ->
        fun () ->
          let w = wid a in
          reg_bits.(dst) <- -bits a land masks.(w);
          reg_w.(dst) <- w
      | Netlist.U_reduce_or ->
        fun () ->
          reg_bits.(dst) <- (if bits a = 0 then 0 else 1);
          reg_w.(dst) <- 1)
    | Cir.I_mov { dst; src = s } ->
      let s = src s in
      fun () ->
        reg_bits.(dst) <- bits s;
        reg_w.(dst) <- wid s
    | Cir.I_cast { dst; signed; src = s } ->
      let s = src s in
      let tw = Cir.reg_width func dst in
      let tm = masks.(tw) in
      if signed then
        fun () ->
          let w = wid s in
          reg_bits.(dst) <-
            (if w >= tw then bits s land tm else sx (bits s) w land tm);
          reg_w.(dst) <- tw
      else
        fun () ->
          let w = wid s in
          reg_bits.(dst) <- (if w >= tw then bits s land tm else bits s);
          reg_w.(dst) <- tw
    | Cir.I_mux { dst; sel; if_true; if_false } ->
      let sel = src sel and t = src if_true and f = src if_false in
      fun () ->
        if bits sel <> 0 then begin
          reg_bits.(dst) <- bits t;
          reg_w.(dst) <- wid t
        end
        else begin
          reg_bits.(dst) <- bits f;
          reg_w.(dst) <- wid f
        end
    | Cir.I_load { dst; region; addr } ->
      let addr = src addr in
      let mb = mem_bits.(region) and mw = mem_w.(region) in
      let depth = Array.length mb in
      let zw = Cir.reg_width func dst in
      fun () ->
        let a = bits addr in
        if a < depth then begin
          reg_bits.(dst) <- mb.(a);
          reg_w.(dst) <- mw.(a)
        end
        else begin
          reg_bits.(dst) <- 0;
          reg_w.(dst) <- zw
        end
    | Cir.I_store { region; addr; value = v } ->
      let addr = src addr and v = src v in
      let mb = mem_bits.(region) and mw = mem_w.(region) in
      let depth = Array.length mb in
      if fsmd.Fsmd.mem_forwarding then (
        fun () ->
          let a = bits addr in
          if !traced then store_log := (region, a, bv_of v) :: !store_log;
          if a < depth then begin
            mb.(a) <- bits v;
            mw.(a) <- wid v
          end)
      else
        fun () ->
          let a = bits addr in
          if !traced then store_log := (region, a, bv_of v) :: !store_log;
          let i = !sb_n in
          sb_region.(i) <- region;
          sb_addr.(i) <- a;
          sb_bits.(i) <- bits v;
          sb_w.(i) <- wid v;
          sb_n := i + 1
  in
  let compile_next : Fsmd.next -> unit -> int = function
    | Fsmd.N_goto target -> fun () -> target
    | Fsmd.N_branch { cond; if_true; if_false } ->
      let c = src cond in
      fun () -> if bits c <> 0 then if_true else if_false
    | Fsmd.N_halt v -> (
      match v with
      | Some op ->
        let s = src op in
        fun () ->
          result := Some (bv_of s);
          -1
      | None ->
        fun () ->
          result := None;
          -1)
  in
  let states =
    Array.map
      (fun (st : Fsmd.state) ->
        ( Array.of_list (List.map compile_instr st.Fsmd.actions),
          compile_next st.Fsmd.next ))
      fsmd.Fsmd.states
  in
  { fsmd; nregs; reg_bits; reg_w; reg_init_bits; reg_init_w; mem_bits;
    mem_w; mem_init_bits; mem_init_w; states; sb_region; sb_addr; sb_bits;
    sb_w; sb_n; traced; store_log; result }

let create fsmd = if compilable fsmd then Compiled (compile fsmd) else Interp fsmd

let compiled = function Compiled _ -> true | Interp _ -> false

let execute_compiled ~max_cycles ~trace (c : comp) ~args : Rtlsim.outcome =
  let fsmd = c.fsmd in
  let func = fsmd.Fsmd.func in
  (* fresh run: restore the initial register/memory images *)
  let n = Array.length c.reg_bits in
  Array.blit c.reg_init_bits 0 c.reg_bits 0 n;
  Array.blit c.reg_init_w 0 c.reg_w 0 n;
  Array.iteri
    (fun i live -> Array.blit c.mem_init_bits.(i) 0 live 0 (Array.length live))
    c.mem_bits;
  Array.iteri
    (fun i live -> Array.blit c.mem_init_w.(i) 0 live 0 (Array.length live))
    c.mem_w;
  if List.length args <> List.length func.Cir.fn_params then
    raise
      (Rtlsim.Runtime_error
         (Printf.sprintf "%s expects %d args" func.Cir.fn_name
            (List.length func.Cir.fn_params)));
  List.iter2
    (fun (_, r) v ->
      let bv = Bitvec.resize ~signed:true ~width:(Cir.reg_width func r) v in
      c.reg_bits.(r) <- to_bits bv;
      c.reg_w.(r) <- Bitvec.width bv)
    func.Cir.fn_params args;
  c.traced := trace <> None;
  c.store_log := [];
  c.result := None;
  let reg_bits = c.reg_bits and reg_w = c.reg_w in
  let states = c.states and sb_n = c.sb_n in
  let visited = Array.make (Fsmd.num_states fsmd) 0 in
  let cycles = ref 0 in
  let state = ref fsmd.Fsmd.entry in
  let halted = ref false in
  while not !halted do
    if !cycles >= max_cycles then
      raise (Rtlsim.Timeout { cycles = !cycles; state = !state });
    incr cycles;
    visited.(!state) <- visited.(!state) + 1;
    let acts, next = states.(!state) in
    sb_n := 0;
    for i = 0 to Array.length acts - 1 do
      acts.(i) ()
    done;
    (* clock edge: commit buffered stores in program order *)
    for i = 0 to !sb_n - 1 do
      let region = c.sb_region.(i) and a = c.sb_addr.(i) in
      let mb = c.mem_bits.(region) in
      if a < Array.length mb then begin
        mb.(a) <- c.sb_bits.(i);
        c.mem_w.(region).(a) <- c.sb_w.(i)
      end
    done;
    (match trace with
    | None -> ()
    | Some tr ->
      tr.Rtlsim.on_cycle ~cycle:(!cycles - 1) ~state:!state
        ~regs:
          (Array.init c.nregs (fun r ->
               Bitvec.make ~width:reg_w.(r) (Int64.of_int reg_bits.(r))))
        ~stores:(List.rev !(c.store_log));
      c.store_log := []);
    let ns = next () in
    if ns < 0 then halted := true else state := ns
  done;
  { Rtlsim.return_value = !(c.result);
    cycles = !cycles;
    globals =
      List.map
        (fun (name, r, _) ->
          (name, Bitvec.make ~width:reg_w.(r) (Int64.of_int reg_bits.(r))))
        func.Cir.fn_globals;
    memories =
      Array.to_list
        (Array.mapi
           (fun i (rg : Cir.region) ->
             ( rg.Cir.rg_name,
               Array.init
                 (Array.length c.mem_bits.(i))
                 (fun j ->
                   Bitvec.make ~width:c.mem_w.(i).(j)
                     (Int64.of_int c.mem_bits.(i).(j))) ))
           func.Cir.fn_regions);
    states_visited = visited }

let execute ?(max_cycles = 2_000_000) ?trace t ~args =
  match t with
  | Compiled c -> execute_compiled ~max_cycles ~trace c ~args
  | Interp fsmd -> Rtlsim.run ~max_cycles ?trace fsmd ~args

let run ?max_cycles ?trace (fsmd : Fsmd.t) ~args =
  execute ?max_cycles ?trace (create fsmd) ~args
