(* FSMD -> netlist elaboration.

   Produces a synthesizable word-level netlist: a binary-encoded state
   register, one datapath operator per scheduled instruction instance
   (same-state chains become wires exactly as the scheduler assumed), one
   register per CIR register with a per-state write mux, and one RAM per
   region with a muxed write port.

   Protocol: two virtual states are appended — INIT (the reset state,
   loads the parameter registers from the input ports) and DONE
   (absorbing).  Outputs: "result" (the returned value), "done" (1 in the
   DONE state), and one output per scalar global.  The elaborated design
   therefore takes exactly one cycle more than the FSMD simulator reports
   (the INIT cycle); tests compare outputs, and cycle counts via the FSMD
   simulator. *)

exception Elaboration_error of string

let error fmt = Printf.ksprintf (fun m -> raise (Elaboration_error m)) fmt

type elaborated = {
  netlist : Netlist.t;
  done_state : int;
  init_state : int;
}

let elaborate (fsmd : Fsmd.t) : elaborated =
  let func = fsmd.Fsmd.func in
  let nstates = Fsmd.num_states fsmd in
  let done_state = nstates and init_state = nstates + 1 in
  let state_width = max 1 (Area.log2_ceil (nstates + 2)) in
  let nl = Netlist.create ~name:func.Cir.fn_name () in
  (* state register, reset into INIT *)
  let state_reg =
    Netlist.reg_forward nl ~init:(Bitvec.of_int ~width:state_width init_state)
  in
  (* primary inputs *)
  let param_inputs =
    List.map
      (fun (name, r) ->
        (r, Netlist.input nl name ~width:(Cir.reg_width func r)))
      func.Cir.fn_params
  in
  (* CIR registers: create register nodes (params/globals with init) *)
  let global_inits = Hashtbl.create 8 in
  List.iter
    (fun (_, r, init) -> Hashtbl.replace global_inits r init)
    func.Cir.fn_globals;
  let reg_nodes =
    Array.init func.Cir.fn_reg_count (fun r ->
        let width = max 1 (Cir.reg_width func r) in
        let init =
          match Hashtbl.find_opt global_inits r with
          | Some bv -> bv
          | None -> Bitvec.zero width
        in
        Netlist.reg_forward nl ~init)
  in
  (* memories *)
  let mems =
    Array.map
      (fun (rg : Cir.region) ->
        Netlist.add_mem nl ~name:rg.Cir.rg_name ~word_width:rg.Cir.rg_width
          ~depth:rg.Cir.rg_words ?init:rg.Cir.rg_init ())
      func.Cir.fn_regions
  in
  (* state decodes *)
  let decode =
    Array.init (nstates + 2) (fun s ->
        let c = Netlist.const_int nl ~width:state_width s in
        Netlist.binop nl Netlist.B_eq state_reg c)
  in
  (* per-state datapath evaluation *)
  let reg_writes = Array.make func.Cir.fn_reg_count [] in
  let mem_writes = Array.make (Array.length mems) [] in
  let next_state_choices = ref [] in (* (decode sig, next-state sig) *)
  let result_width = max 1 func.Cir.fn_ret_width in
  let result_writes = ref [] in
  Array.iter
    (fun (st : Fsmd.state) ->
      let s = st.Fsmd.st_id in
      let env = Hashtbl.create 16 in (* CIR reg -> wire within this state *)
      let reg_value r =
        match Hashtbl.find_opt env r with
        | Some sig_ -> sig_
        | None -> reg_nodes.(r)
      in
      let operand = function
        | Cir.O_imm bv -> Netlist.const nl bv
        | Cir.O_reg r -> reg_value r
      in
      List.iter
        (fun instr ->
          match instr with
          | Cir.I_bin { op; dst; a; b } ->
            Hashtbl.replace env dst (Netlist.binop nl op (operand a) (operand b))
          | Cir.I_un { op; dst; a } ->
            Hashtbl.replace env dst (Netlist.unop nl op (operand a))
          | Cir.I_mov { dst; src } -> Hashtbl.replace env dst (operand src)
          | Cir.I_cast { dst; signed; src } ->
            Hashtbl.replace env dst
              (Netlist.resize nl ~signed ~width:(Cir.reg_width func dst)
                 (operand src))
          | Cir.I_mux { dst; sel; if_true; if_false } ->
            let sel_bit =
              let sel_sig = operand sel in
              if Netlist.width nl sel_sig = 1 then sel_sig
              else Netlist.unop nl Netlist.U_reduce_or sel_sig
            in
            Hashtbl.replace env dst
              (Netlist.mux nl ~sel:sel_bit ~if_true:(operand if_true)
                 ~if_false:(operand if_false))
          | Cir.I_load { dst; region; addr } ->
            Hashtbl.replace env dst
              (Netlist.mem_read nl ~mem:mems.(region) ~addr:(operand addr))
          | Cir.I_store { region; addr; value } ->
            if List.exists (fun (s', _, _) -> s' = s) mem_writes.(region) then
              error
                "two stores to region %s in one state: elaboration needs \
                 mem_write_ports = 1"
                func.Cir.fn_regions.(region).Cir.rg_name;
            if fsmd.Fsmd.mem_forwarding then
              error
                "mem_forwarding FSMDs (register-file memories) cannot use \
                 RAM elaboration; regions must be small";
            mem_writes.(region) <-
              (s, operand addr, operand value) :: mem_writes.(region))
        st.Fsmd.actions;
      (* register writes at end of state *)
      Hashtbl.iter
        (fun r sig_ -> reg_writes.(r) <- (s, sig_) :: reg_writes.(r))
        env;
      (* next state *)
      let next_sig =
        match st.Fsmd.next with
        | Fsmd.N_goto target -> Netlist.const_int nl ~width:state_width target
        | Fsmd.N_branch { cond; if_true; if_false } ->
          let cond_sig = operand cond in
          let cond_bit =
            if Netlist.width nl cond_sig = 1 then cond_sig
            else Netlist.unop nl Netlist.U_reduce_or cond_sig
          in
          Netlist.mux nl ~sel:cond_bit
            ~if_true:(Netlist.const_int nl ~width:state_width if_true)
            ~if_false:(Netlist.const_int nl ~width:state_width if_false)
        | Fsmd.N_halt v ->
          (match v with
          | Some op ->
            result_writes := (s, Netlist.resize nl ~signed:false
                                   ~width:result_width (operand op))
                             :: !result_writes
          | None -> ());
          Netlist.const_int nl ~width:state_width done_state
      in
      next_state_choices := (s, next_sig) :: !next_state_choices)
    fsmd.Fsmd.states;
  (* INIT state: load parameters, go to entry *)
  List.iter
    (fun (r, input_sig) ->
      let coerced =
        Netlist.resize nl ~signed:false ~width:(Cir.reg_width func r) input_sig
      in
      reg_writes.(r) <- (init_state, coerced) :: reg_writes.(r))
    param_inputs;
  next_state_choices :=
    (init_state, Netlist.const_int nl ~width:state_width fsmd.Fsmd.entry)
    :: (done_state, Netlist.const_int nl ~width:state_width done_state)
    :: !next_state_choices;
  (* close the state register *)
  let next_state =
    List.fold_left
      (fun acc (s, sig_) ->
        Netlist.mux nl ~sel:decode.(s) ~if_true:sig_ ~if_false:acc)
      state_reg !next_state_choices
  in
  Netlist.reg_connect nl state_reg ~next:next_state ();
  (* close data registers *)
  Array.iteri
    (fun r writes ->
      match writes with
      | [] -> Netlist.reg_connect nl reg_nodes.(r) ~next:reg_nodes.(r) ()
      | _ ->
        let next =
          List.fold_left
            (fun acc (s, sig_) ->
              Netlist.mux nl ~sel:decode.(s) ~if_true:sig_ ~if_false:acc)
            reg_nodes.(r) writes
        in
        Netlist.reg_connect nl reg_nodes.(r) ~next ())
    reg_writes;
  (* result register *)
  let result_reg = Netlist.reg_forward nl ~init:(Bitvec.zero result_width) in
  let result_next =
    List.fold_left
      (fun acc (s, sig_) ->
        Netlist.mux nl ~sel:decode.(s) ~if_true:sig_ ~if_false:acc)
      result_reg !result_writes
  in
  Netlist.reg_connect nl result_reg ~next:result_next ();
  (* memory write ports *)
  Array.iteri
    (fun region writes ->
      match writes with
      | [] -> ()
      | (s0, a0, d0) :: rest ->
        let we =
          List.fold_left
            (fun acc (s, _, _) -> Netlist.binop nl Netlist.B_or acc decode.(s))
            decode.(s0) rest
        in
        let addr, data =
          List.fold_left
            (fun (addr, data) (s, a, d) ->
              ( Netlist.mux nl ~sel:decode.(s) ~if_true:a ~if_false:addr,
                Netlist.mux nl ~sel:decode.(s) ~if_true:d ~if_false:data ))
            (a0, d0) rest
        in
        Netlist.mem_write nl ~mem:mems.(region) ~we ~addr ~data)
    mem_writes;
  (* outputs *)
  Netlist.set_output nl "done" decode.(done_state);
  Netlist.set_output nl "result" result_reg;
  List.iter
    (fun (name, r, _) -> Netlist.set_output nl ("g_" ^ name) reg_nodes.(r))
    func.Cir.fn_globals;
  { netlist = nl; done_state; init_state }

(** Run the elaborated netlist to completion and return (result, globals,
    cycles) plus the evaluator's performance counters. *)
let simulate_stats ?(max_cycles = 2_000_000) ?strategy ?probe
    (e : elaborated) ~args ~func =
  let inputs =
    List.map2
      (fun (name, r) v ->
        ( name,
          Bitvec.resize ~signed:true ~width:(Cir.reg_width func r) v ))
      func.Cir.fn_params args
  in
  Neteval.run_until_done_stats ?strategy ?probe e.netlist ~inputs
    ~done_name:"done" ~max_cycles

(** Run the elaborated netlist to completion and return (result, globals,
    cycles). *)
let simulate ?max_cycles ?strategy (e : elaborated) ~args ~func =
  match simulate_stats ?max_cycles ?strategy e ~args ~func with
  | Ok (outputs, cycles, _) -> Ok (outputs, cycles)
  | Error `Timeout -> Error `Timeout
