(** Cycle-accurate FSMD simulator: one step = one clock = one state.
    Within a state, actions execute in order with immediate register
    visibility (chaining-by-wire); stores are buffered to the cycle end
    unless the design uses forwarding register-file memories. *)

exception Timeout of { cycles : int; state : int }
(** Raised past [max_cycles], carrying how far the run got (cycles
    elapsed, the state being executed) so callers can report a partial
    outcome instead of a bare failure. *)

exception Runtime_error of string

type trace = {
  on_cycle :
    cycle:int ->
    state:int ->
    regs:Bitvec.t array ->
    stores:(int * int * Bitvec.t) list ->
    unit;
      (** Fired once per clock cycle, after the state's actions and
          memory commits: the state executed, the whole register file,
          and the (region, address, value) stores this cycle.  The hook
          observes only — it receives committed values and cannot perturb
          the run. *)
}

type outcome = {
  return_value : Bitvec.t option;
  cycles : int;
  globals : (string * Bitvec.t) list;
  memories : (string * Bitvec.t array) list;
  states_visited : int array;
      (** visit count per state; sums to [cycles] (profiling) *)
}

val run :
  ?max_cycles:int -> ?trace:trace -> Fsmd.t -> args:Bitvec.t list -> outcome
