(** FSMD -> netlist elaboration: a binary-encoded state register, one
    datapath operator per scheduled instruction instance, per-register
    write muxes, and one RAM per region with a muxed write port.

    Protocol: virtual INIT (reset; loads parameter registers from input
    ports) and DONE (absorbing) states are appended; outputs are
    ["result"], ["done"] and one ["g_<name>"] per scalar global.  The
    elaborated design takes exactly one cycle more than the FSMD
    simulator (the INIT cycle). *)

exception Elaboration_error of string
(** Raised for designs the RAM model cannot express: two stores to one
    region in a state, or forwarding (register-file) memories. *)

type elaborated = {
  netlist : Netlist.t;
  done_state : int;
  init_state : int;
}

val elaborate : Fsmd.t -> elaborated

val simulate :
  ?max_cycles:int -> ?strategy:Neteval.strategy -> elaborated ->
  args:Bitvec.t list -> func:Cir.func ->
  ((string * Bitvec.t) list * int, [ `Timeout ]) result
(** Run the elaborated netlist to completion: (outputs, cycles).  The
    settling [strategy] defaults to [Neteval.Event_driven]; pass
    [Neteval.Full_sweep] to run the differential-testing oracle. *)

val simulate_stats :
  ?max_cycles:int -> ?strategy:Neteval.strategy -> ?probe:Neteval.probe ->
  elaborated ->
  args:Bitvec.t list -> func:Cir.func ->
  ((string * Bitvec.t) list * int * Neteval.stats, [ `Timeout ]) result
(** Like [simulate] but also returns the evaluator's counters and accepts
    an observation probe (see {!Neteval.probe}). *)
