(* Modulo scheduling (software/hardware pipelining) — experiment E2.

   The paper: "Pipelining works well on regular loops, e.g., in scientific
   computation, but is less effective in general.  Again, dependencies and
   control-flow transfers limit parallelism."

   We implement the standard machinery: extract an innermost loop whose
   body is straight-line (control flow inside the body makes the loop
   "irregular" and, absent if-conversion, unpipelineable); compute the
   recurrence-constrained minimum initiation interval RecMII from
   loop-carried dependence cycles, the resource-constrained ResMII from
   operator counts; then run iterative modulo scheduling, raising II until
   a legal schedule exists.  The pipeline latency model charges whole
   cycles per operation (no chaining): pipelining trades clock-period
   slack for throughput. *)

type latency_model = { of_instr : Cir.instr -> int }

(* Default per-operation latencies in cycles. *)
let default_latency =
  { of_instr =
      (fun instr ->
        match instr with
        | Cir.I_bin { op; _ } -> (
          match op with
          | Netlist.B_mul -> 3
          | Netlist.B_udiv | Netlist.B_urem | Netlist.B_sdiv
          | Netlist.B_srem -> 12
          | Netlist.B_add | Netlist.B_sub | Netlist.B_and | Netlist.B_or
          | Netlist.B_xor | Netlist.B_shl | Netlist.B_lshr | Netlist.B_ashr
          | Netlist.B_eq | Netlist.B_ne | Netlist.B_ult | Netlist.B_ule
          | Netlist.B_slt | Netlist.B_sle -> 1)
        | Cir.I_un _ | Cir.I_mux _ -> 1
        | Cir.I_mov _ | Cir.I_cast _ -> 0
        | Cir.I_load _ -> 2
        | Cir.I_store _ -> 1) }

type dep_edge = { from_i : int; to_i : int; latency : int; distance : int }

type loop_body = {
  instrs : Cir.instr array;
  edges : dep_edge list;
}

exception Irregular of string

(** Extract one iteration of the innermost loop of [func] as a straight-
    line instruction sequence with intra- and inter-iteration dependence
    edges.  Raises [Irregular] when the loop body branches internally. *)
let extract_loop (func : Cir.func) (latency : latency_model) : loop_body =
  let cfg = Cfg.build func in
  let loops = Cfg.natural_loops cfg in
  if loops = [] then raise (Irregular "no loop found");
  (* innermost = smallest body *)
  let loop =
    List.fold_left
      (fun best l ->
        if List.length l.Cfg.body < List.length best.Cfg.body then l else best)
      (List.hd loops) (List.tl loops)
  in
  (* The body must be a simple cycle header -> b1 -> ... -> latch -> header
     with branching only at the header (the exit test). *)
  let ordered =
    let rec walk acc b =
      if b = loop.Cfg.header && acc <> [] then List.rev acc
      else
        let blk = Cir.block func b in
        match blk.Cir.term with
        | Cir.T_jump next when List.mem next loop.Cfg.body ->
          walk (b :: acc) next
        | Cir.T_branch { if_true; if_false; _ }
          when b = loop.Cfg.header
               && (List.mem if_true loop.Cfg.body
                  || List.mem if_false loop.Cfg.body) ->
          let inside =
            if List.mem if_true loop.Cfg.body then if_true else if_false
          in
          walk (b :: acc) inside
        | Cir.T_jump _ | Cir.T_branch _ ->
          raise (Irregular "loop body contains internal control flow")
        | Cir.T_return _ -> raise (Irregular "loop body returns")
    in
    walk [] loop.Cfg.header
  in
  let instrs =
    List.concat_map (fun b -> (Cir.block func b).Cir.instrs) ordered
    |> Array.of_list
  in
  let n = Array.length instrs in
  (* Intra-iteration edges (distance 0).  Anti- and output dependences are
     dropped: modulo scheduling assumes modulo variable expansion /
     rotating registers, which renames them away — keeping them would
     thread false cycles through register reuse (pipelining *requires*
     renaming, one of the resources Wall's study varies too). *)
  let g = Dep.of_instrs_renamed (Array.to_list instrs) in
  let edges = ref [] in
  List.iter
    (fun (e : Dep.edge) ->
      (* movs/casts are wires: zero latency lets copies chain freely *)
      let lat = latency.of_instr instrs.(e.Dep.src) in
      edges := { from_i = e.Dep.src; to_i = e.Dep.dst; latency = lat;
                 distance = 0 } :: !edges)
    g.Dep.edges;
  (* loop-carried register edges: upward-exposed use fed by a later def *)
  let first_def = Hashtbl.create 32 and last_def = Hashtbl.create 32 in
  for i = 0 to n - 1 do
    match Cir.def_of instrs.(i) with
    | Some r ->
      if not (Hashtbl.mem first_def r) then Hashtbl.replace first_def r i;
      Hashtbl.replace last_def r i
    | None -> ()
  done;
  for i = 0 to n - 1 do
    List.iter
      (fun r ->
        let upward_exposed =
          match Hashtbl.find_opt first_def r with
          | Some d -> d >= i
          | None -> false
        in
        if upward_exposed then
          match Hashtbl.find_opt last_def r with
          | Some d ->
            edges :=
              { from_i = d; to_i = i;
                latency = latency.of_instr instrs.(d);
                distance = 1 }
              :: !edges
          | None -> ())
      (Cir.uses_of instrs.(i))
  done;
  (* loop-carried memory edges: store in one iteration orders with accesses
     of the same region in the next *)
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      match (Cir.memory_access instrs.(i), Cir.memory_access instrs.(j)) with
      | Some (ri, `Write), Some (rj, _) when ri = rj && j <= i ->
        edges :=
          { from_i = i; to_i = j; latency = max 1 (latency.of_instr instrs.(i));
            distance = 1 }
          :: !edges
      | _ -> ()
    done
  done;
  { instrs; edges = !edges }

(* Can every instruction be assigned a start time sigma with
   sigma(v) >= sigma(u) + latency - II*distance for every edge u->v?
   Standard longest-path feasibility (Bellman-Ford over the constraint
   graph); infeasible iff a positive cycle exists. *)
let feasible body ~ii =
  let n = Array.length body.instrs in
  if n = 0 then true
  else begin
    let dist = Array.make n 0 in
    let changed = ref true in
    let rounds = ref 0 in
    while !changed && !rounds <= n + 1 do
      changed := false;
      incr rounds;
      List.iter
        (fun e ->
          let bound = dist.(e.from_i) + e.latency - (ii * e.distance) in
          if bound > dist.(e.to_i) then begin
            dist.(e.to_i) <- bound;
            changed := true
          end)
        body.edges
    done;
    not !changed
  end

(** Recurrence-constrained minimum II (smallest II that satisfies all
    dependence cycles). *)
let rec_mii body =
  let rec search ii = if feasible body ~ii then ii else search (ii + 1) in
  search 1

(** Resource-constrained minimum II for a resource allocation. *)
let res_mii (resources : Schedule.resources) body =
  let counts = Hashtbl.create 8 in
  Array.iter
    (fun instr ->
      let cls = Schedule.class_of_instr instr in
      Hashtbl.replace counts cls
        (1 + Option.value (Hashtbl.find_opt counts cls) ~default:0))
    body.instrs;
  let mem_counts = Hashtbl.create 8 in
  Array.iter
    (fun instr ->
      match Cir.memory_access instr with
      | Some key ->
        Hashtbl.replace mem_counts key
          (1 + Option.value (Hashtbl.find_opt mem_counts key) ~default:0)
      | None -> ())
    body.instrs;
  let ceil_div a b = (a + b - 1) / b in
  let from_classes =
    Hashtbl.fold
      (fun cls count acc ->
        let cap = Schedule.capacity resources cls in
        if cap = max_int then acc else max acc (ceil_div count cap))
      counts 1
  in
  Hashtbl.fold
    (fun (_, dir) count acc ->
      let cap =
        match dir with
        | `Read -> max 1 resources.mem_read_ports
        | `Write -> max 1 resources.mem_write_ports
      in
      if cap = max_int then acc else max acc (ceil_div count cap))
    mem_counts from_classes

type result = {
  ii : int; (* achieved initiation interval *)
  rec_mii : int;
  res_mii : int;
  sequential_cycles : int; (* one iteration without pipelining *)
  schedule_length : int; (* depth of one iteration's schedule *)
  speedup : float; (* asymptotic: sequential_cycles / ii *)
  fallback : bool; (* II search diverged; this is the list schedule *)
}

(* II values above this are not pipelining in any useful sense (and the
   search is linear, so a huge ResMII — e.g. thousands of loads through
   one memory port — would scan thousands of IIs); give up and fall back
   to the sequential list schedule instead. *)
let ii_search_limit = 4096

(* How many loops fell back; lib/sched can't see Obs.Metrics, so the
   driver layers (bench E2, chlsc analyze) export this counter as the
   sched.modulo.fallbacks metric. *)
let fallbacks = Atomic.make 0
let fallback_count () = Atomic.get fallbacks

(** Iterative modulo scheduling: place operations at the smallest start
    times satisfying dependences, wrapping resource use modulo II; raise II
    on failure. *)
let modulo_schedule ?(resources = Schedule.default_allocation)
    ?(latency = default_latency) ?(ii_limit = ii_search_limit)
    (func : Cir.func) : result =
  let body = extract_loop func latency in
  let n = Array.length body.instrs in
  let rmii = rec_mii body in
  let smii = res_mii resources body in
  let preds = Array.make n [] in
  List.iter
    (fun e -> preds.(e.to_i) <- e :: preds.(e.to_i))
    body.edges;
  let try_ii ii =
    (* ASAP start times satisfying sigma(v) >= sigma(u)+lat-II*dist,
       then greedy modulo resource assignment scanning slots. *)
    let sigma = Array.make n 0 in
    let changed = ref true in
    let rounds = ref 0 in
    while !changed && !rounds <= n + 2 do
      changed := false;
      incr rounds;
      List.iter
        (fun e ->
          let bound = sigma.(e.from_i) + e.latency - (ii * e.distance) in
          if bound > sigma.(e.to_i) then begin
            sigma.(e.to_i) <- bound;
            changed := true
          end)
        body.edges
    done;
    if !changed then None (* positive cycle: II too small *)
    else begin
      (* resource table: class/mem usage per modulo slot *)
      let usage = Hashtbl.create 16 in
      let get key = Option.value (Hashtbl.find_opt usage key) ~default:0 in
      let ok = ref true in
      let order =
        List.sort
          (fun a b -> compare sigma.(a) sigma.(b))
          (List.init n Fun.id)
      in
      let final = Array.make n 0 in
      let placed = Array.make n false in
      List.iter
        (fun i ->
          let instr = body.instrs.(i) in
          let cls = Schedule.class_of_instr instr in
          let cap = Schedule.capacity resources cls in
          let mem = Cir.memory_access instr in
          let mem_cap =
            match mem with
            | Some (_, `Read) -> max 1 resources.mem_read_ports
            | Some (_, `Write) -> max 1 resources.mem_write_ports
            | None -> max_int
          in
          (* earliest start given already-placed predecessors *)
          let earliest =
            List.fold_left
              (fun acc e ->
                if placed.(e.from_i) then
                  max acc (final.(e.from_i) + e.latency - (ii * e.distance))
                else acc)
              sigma.(i) preds.(i)
          in
          let rec place t tries =
            if tries > ii then ok := false
            else begin
              let slot = ((t mod ii) + ii) mod ii in
              let class_ok = cap = max_int || get (`C (cls, slot)) < cap in
              let mem_ok =
                match mem with
                | None -> true
                | Some (region, dir) ->
                  get (`M (region, dir, slot)) < mem_cap
              in
              if class_ok && mem_ok then begin
                final.(i) <- t;
                placed.(i) <- true;
                if cap <> max_int then
                  Hashtbl.replace usage (`C (cls, slot)) (get (`C (cls, slot)) + 1);
                (match mem with
                | Some (region, dir) ->
                  Hashtbl.replace usage
                    (`M (region, dir, slot))
                    (get (`M (region, dir, slot)) + 1)
                | None -> ())
              end
              else place (t + 1) (tries + 1)
            end
          in
          place earliest 0)
        order;
      if !ok then Some final else None
    end
  in
  let rec search ii =
    if ii > ii_limit then None
    else
      match try_ii ii with
      | Some final -> Some (ii, final)
      | None -> search (ii + 1)
  in
  let start_ii = max rmii smii in
  (* sequential baseline: list schedule of one iteration, no chaining *)
  let seq =
    Array.to_list body.instrs
    |> List.fold_left (fun acc i -> acc + max 1 (latency.of_instr i)) 0
  in
  let seq_scheduled =
    (* with ILP inside the iteration but no overlap across iterations *)
    let sched =
      Schedule.list_schedule func
        { resources with Schedule.chain_budget = 0.1 }
        (Array.to_list body.instrs)
    in
    max sched.Schedule.num_steps 1
  in
  ignore seq;
  match search start_ii with
  | Some (ii, final) ->
    let schedule_length =
      Array.fold_left
        (fun acc i -> max acc i)
        0
        (Array.mapi (fun i t -> t + latency.of_instr body.instrs.(i)) final)
    in
    { ii;
      rec_mii = rmii;
      res_mii = smii;
      sequential_cycles = seq_scheduled;
      schedule_length;
      speedup = float_of_int seq_scheduled /. float_of_int ii;
      fallback = false }
  | None ->
    (* II diverged (this used to be a [failwith]): fall back to the
       unpipelined list schedule — initiating one iteration per
       sequential latency is always legal, just a 1.0x speedup *)
    Atomic.incr fallbacks;
    { ii = seq_scheduled;
      rec_mii = rmii;
      res_mii = smii;
      sequential_cycles = seq_scheduled;
      schedule_length = seq_scheduled;
      speedup = 1.0;
      fallback = true }
