(** Modulo scheduling (software/hardware pipelining) — experiment E2.

    Extracts an innermost straight-line loop, computes the recurrence- and
    resource-constrained minimum initiation intervals, then runs iterative
    modulo scheduling.  Control flow inside the loop body makes the loop
    "irregular" and unpipelineable (without if-conversion), which is
    exactly the paper's claim about pipelining's limits. *)

type latency_model = { of_instr : Cir.instr -> int }

val default_latency : latency_model
(** Whole-cycle latencies: add/logic 1, multiply 3, divide 12, load 2,
    store 1, moves/casts 0 (wires). *)

type dep_edge = {
  from_i : int;
  to_i : int;
  latency : int;
  distance : int;  (** 0 = same iteration, 1 = loop-carried *)
}

type loop_body = { instrs : Cir.instr array; edges : dep_edge list }

exception Irregular of string
(** The loop has internal control flow, returns, or does not exist. *)

val extract_loop : Cir.func -> latency_model -> loop_body
(** One iteration of the innermost loop as a straight-line sequence with
    intra- and inter-iteration dependence edges.  Anti/output dependences
    are dropped (modulo variable expansion renames them away).
    @raise Irregular when the body branches internally. *)

val feasible : loop_body -> ii:int -> bool
(** Does a schedule satisfying all dependence cycles exist at this
    initiation interval? *)

val rec_mii : loop_body -> int
(** Recurrence-constrained minimum II. *)

val res_mii : Schedule.resources -> loop_body -> int
(** Resource-constrained minimum II. *)

type result = {
  ii : int;  (** achieved initiation interval *)
  rec_mii : int;
  res_mii : int;
  sequential_cycles : int;  (** one iteration without pipelining *)
  schedule_length : int;  (** depth of one iteration's schedule *)
  speedup : float;  (** asymptotic: sequential_cycles / ii *)
  fallback : bool;
      (** the II search diverged (II would exceed 4096) and the result is
          the unpipelined list schedule — [ii = sequential_cycles],
          [speedup = 1.0] *)
}

val ii_search_limit : int
(** Largest initiation interval the search will try (4096); a loop whose
    minimum II exceeds it is left unpipelined ([fallback = true]). *)

val fallback_count : unit -> int
(** How many {!modulo_schedule} calls have fallen back to list
    scheduling in this process; exported by the driver layers as the
    [sched.modulo.fallbacks] metric. *)

val modulo_schedule :
  ?resources:Schedule.resources -> ?latency:latency_model -> ?ii_limit:int ->
  Cir.func -> result
(** Iterative modulo scheduling of the innermost loop, raising II from
    max(RecMII, ResMII) until a legal schedule exists.  When no legal II
    <= [ii_limit] (default {!ii_search_limit}) exists the loop is left
    unpipelined ([fallback = true]) rather than aborting the compile;
    driver configs expose the limit as the modulo-scheduling knob.
    @raise Irregular as {!extract_loop}. *)
