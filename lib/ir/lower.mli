(** Lowering: elaborated AST -> CIR.

    All function calls are inlined (the scheduled backends target
    dialects without recursion; recursion hits the depth bound and is
    reported).  Scalar locals/globals become virtual registers; every
    array becomes its own memory region (the partitioned-memory model).
    Pointer operations are rejected — the C2Verilog stack machine is the
    pointer-capable path.

    Conventions relied on downstream: [T_branch] is taken when nonzero;
    comparisons produce 1-bit values immediately widened by an [I_cast];
    locals without initializers read as zero. *)

exception Error of string * Ast.loc
(** The location is the AST node that could not be lowered ([Ast.no_loc]
    when the failure has no single source point, e.g. a missing entry
    function), so drivers can print [file:line:col] diagnostics. *)

val max_inline_depth : int

val expr_pure : Ast.expr -> bool
(** No assignments, calls, or channel operations anywhere inside. *)

type result = {
  func : Cir.func;
  constraints : (int * int * int * int * int) list;
      (** HardwareC ranges: block, first and last instruction index,
          min cycles, max cycles (see Constrain.of_lowering) *)
}

val lower_program : Ast.program -> entry:string -> result
(** Lower the entry function of a type-checked program.
    @raise Error on pointers, channels/par, recursion, or non-scalar
    entry parameters. *)
