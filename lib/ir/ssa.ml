(* SSA construction over CIR (Cytron-style: phi insertion at dominance
   frontiers, renaming down the dominator tree).

   The result keeps the CIR block structure but rewrites instructions over
   fresh single-assignment registers and attaches phi nodes per block.
   The CASH backend builds its dataflow circuit from this form (SSA defs
   become dataflow nodes, phis at loop headers become merge/mu nodes), and
   tests use the verifier plus an SSA evaluator to check semantics are
   preserved. *)

type phi = {
  p_dst : Cir.reg;
  p_width : int;
  p_srcs : (int * Cir.operand) list; (* predecessor block -> value *)
}

type t = {
  func : Cir.func; (* renamed body (registers are SSA names) *)
  phis : phi list array; (* phi nodes at each block, in parallel *)
  cfg : Cfg.t; (* CFG of the *original* function: same shape *)
  ssa_of_param : (string * Cir.reg) list;
}

let operand_map f = function
  | Cir.O_reg r -> Cir.O_reg (f r)
  | Cir.O_imm bv -> Cir.O_imm bv

let rewrite_instr ~use ~def instr =
  match instr with
  | Cir.I_bin { op; dst; a; b } ->
    let a = operand_map use a and b = operand_map use b in
    Cir.I_bin { op; dst = def dst; a; b }
  | Cir.I_un { op; dst; a } ->
    let a = operand_map use a in
    Cir.I_un { op; dst = def dst; a }
  | Cir.I_mov { dst; src } ->
    let src = operand_map use src in
    Cir.I_mov { dst = def dst; src }
  | Cir.I_cast { dst; signed; src } ->
    let src = operand_map use src in
    Cir.I_cast { dst = def dst; signed; src }
  | Cir.I_mux { dst; sel; if_true; if_false } ->
    let sel = operand_map use sel
    and if_true = operand_map use if_true
    and if_false = operand_map use if_false in
    Cir.I_mux { dst = def dst; sel; if_true; if_false }
  | Cir.I_load { dst; region; addr } ->
    let addr = operand_map use addr in
    Cir.I_load { dst = def dst; region; addr }
  | Cir.I_store { region; addr; value } ->
    Cir.I_store
      { region; addr = operand_map use addr; value = operand_map use value }

let rewrite_term ~use = function
  | Cir.T_jump l -> Cir.T_jump l
  | Cir.T_branch { cond; if_true; if_false } ->
    Cir.T_branch { cond = operand_map use cond; if_true; if_false }
  | Cir.T_return v -> Cir.T_return (Option.map (operand_map use) v)

(** Convert [func] to SSA. *)
let of_func (func : Cir.func) : t =
  let cfg = Cfg.build func in
  let n = Cir.num_blocks func in
  let df = Cfg.dominance_frontiers cfg in
  (* def sites per original register *)
  let def_sites = Hashtbl.create 64 in
  let add_def r b =
    let existing =
      match Hashtbl.find_opt def_sites r with Some l -> l | None -> []
    in
    if not (List.mem b existing) then Hashtbl.replace def_sites r (b :: existing)
  in
  for b = 0 to n - 1 do
    if Cfg.reachable cfg b then
      List.iter
        (fun instr ->
          match Cir.def_of instr with
          | Some r -> add_def r b
          | None -> ())
        (Cir.block func b).Cir.instrs
  done;
  (* Parameters and globals are defined at entry. *)
  List.iter (fun (_, r) -> add_def r func.Cir.fn_entry) func.Cir.fn_params;
  List.iter (fun (_, r, _) -> add_def r func.Cir.fn_entry) func.Cir.fn_globals;
  (* Liveness over the original registers, for pruned SSA: a phi is only
     placed where the variable is live-in, so single-definition
     temporaries do not grow dead phis at every join they flow past. *)
  let upward_exposed = Array.make n [] and killed = Array.make n [] in
  for b = 0 to n - 1 do
    let defined = Hashtbl.create 8 in
    let ue = ref [] in
    let use r =
      if not (Hashtbl.mem defined r) && not (List.mem r !ue) then
        ue := r :: !ue
    in
    List.iter
      (fun instr ->
        List.iter use (Cir.uses_of instr);
        match Cir.def_of instr with
        | Some r -> Hashtbl.replace defined r ()
        | None -> ())
      (Cir.block func b).Cir.instrs;
    List.iter use (Cir.uses_of_terminator (Cir.block func b).Cir.term);
    upward_exposed.(b) <- !ue;
    killed.(b) <- Hashtbl.fold (fun r () acc -> r :: acc) defined []
  done;
  let module Iset = Set.Make (Int) in
  let live_in = Array.make n Iset.empty in
  let live_changed = ref true in
  while !live_changed do
    live_changed := false;
    for b = n - 1 downto 0 do
      let live_out =
        List.fold_left
          (fun acc s -> Iset.union acc live_in.(s))
          Iset.empty
          (Cir.successors (Cir.block func b))
      in
      let li =
        Iset.union
          (Iset.of_list upward_exposed.(b))
          (Iset.diff live_out (Iset.of_list killed.(b)))
      in
      if not (Iset.equal li live_in.(b)) then begin
        live_in.(b) <- li;
        live_changed := true
      end
    done
  done;
  (* phi placement: iterated dominance frontier per variable, pruned by
     liveness *)
  let needs_phi = Hashtbl.create 64 in (* (block, reg) -> unit *)
  Hashtbl.iter
    (fun r sites ->
      let worklist = Queue.create () in
      List.iter (fun s -> Queue.add s worklist) sites;
      let placed = Hashtbl.create 8 in
      while not (Queue.is_empty worklist) do
        let b = Queue.take worklist in
        List.iter
          (fun frontier ->
            if not (Hashtbl.mem placed frontier) then begin
              Hashtbl.replace placed frontier ();
              if Iset.mem r live_in.(frontier) then
                Hashtbl.replace needs_phi (frontier, r) ();
              Queue.add frontier worklist
            end)
          df.(b)
      done)
    def_sites;
  (* renaming *)
  let reg_widths = ref (Array.copy func.Cir.fn_reg_widths) in
  let reg_count = ref func.Cir.fn_reg_count in
  let fresh width =
    if !reg_count = Array.length !reg_widths then begin
      let bigger = Array.make (2 * !reg_count) 0 in
      Array.blit !reg_widths 0 bigger 0 !reg_count;
      reg_widths := bigger
    end;
    !reg_widths.(!reg_count) <- width;
    incr reg_count;
    !reg_count - 1
  in
  let stacks = Hashtbl.create 64 in (* orig reg -> current ssa name stack *)
  let top r =
    match Hashtbl.find_opt stacks r with
    | Some (name :: _) -> name
    | Some [] | None -> r (* use before def: keep original (reads as 0) *)
  in
  let push r name =
    let s = match Hashtbl.find_opt stacks r with Some s -> s | None -> [] in
    Hashtbl.replace stacks r (name :: s)
  in
  let pop r =
    match Hashtbl.find_opt stacks r with
    | Some (_ :: s) -> Hashtbl.replace stacks r s
    | Some [] | None -> ()
  in
  let new_blocks =
    Array.map
      (fun blk -> { Cir.b_id = blk.Cir.b_id; instrs = []; term = blk.Cir.term })
      func.Cir.fn_blocks
  in
  let phis : (Cir.reg * int * Cir.reg * (int * Cir.operand) list ref) list array
    =
    Array.make n []
  in
  (* materialize phi slots: (orig reg, width, ssa dst placeholder later) *)
  for b = 0 to n - 1 do
    let here =
      Hashtbl.fold
        (fun (blk, r) () acc -> if blk = b then r :: acc else acc)
        needs_phi []
    in
    phis.(b) <-
      List.map
        (fun r -> (r, func.Cir.fn_reg_widths.(r), -1, ref []))
        (List.sort_uniq compare here)
  done;
  (* children in dominator tree *)
  let children = Array.make n [] in
  Array.iter
    (fun b ->
      if b <> func.Cir.fn_entry && Cfg.reachable cfg b then
        children.(cfg.Cfg.idom.(b)) <- b :: children.(cfg.Cfg.idom.(b)))
    cfg.Cfg.rpo;
  let rec rename b =
    let pushed = ref [] in
    (* phi defs first *)
    phis.(b) <-
      List.map
        (fun (orig, width, _, srcs) ->
          let name = fresh width in
          push orig name;
          pushed := orig :: !pushed;
          (orig, width, name, srcs))
        phis.(b);
    let new_instrs =
      List.map
        (fun instr ->
          let rewritten =
            rewrite_instr ~use:top
              ~def:(fun orig ->
                let name = fresh func.Cir.fn_reg_widths.(orig) in
                push orig name;
                pushed := orig :: !pushed;
                name)
              instr
          in
          rewritten)
        (Cir.block func b).Cir.instrs
    in
    new_blocks.(b).Cir.instrs <- new_instrs;
    new_blocks.(b).Cir.term <- rewrite_term ~use:top (Cir.block func b).Cir.term;
    (* fill phi arguments of successors *)
    List.iter
      (fun s ->
        phis.(s) <-
          List.map
            (fun (orig, width, name, srcs) ->
              srcs := (b, Cir.O_reg (top orig)) :: !srcs;
              (orig, width, name, srcs))
            phis.(s))
      (Cir.successors (Cir.block func b));
    List.iter rename children.(b);
    List.iter pop !pushed
  in
  (* Parameters/globals keep their original registers as their first SSA
     definition (they are defined "before" the entry block). *)
  rename func.Cir.fn_entry;
  let final_phis =
    Array.map
      (fun l ->
        List.filter_map
          (fun (_, width, name, srcs) ->
            if name = -1 then None
            else Some { p_dst = name; p_width = width; p_srcs = List.rev !srcs })
          l)
      phis
  in
  let func' =
    { func with
      Cir.fn_blocks = new_blocks;
      fn_reg_widths = Array.sub !reg_widths 0 !reg_count;
      fn_reg_count = !reg_count }
  in
  { func = func';
    phis = final_phis;
    cfg;
    ssa_of_param = func.Cir.fn_params }

(** Verify the single-assignment property; returns offending registers. *)
let verify t =
  let defined = Hashtbl.create 64 in
  let violations = ref [] in
  let define r =
    if Hashtbl.mem defined r then violations := r :: !violations
    else Hashtbl.replace defined r ()
  in
  Array.iteri
    (fun b blk ->
      List.iter (fun phi -> define phi.p_dst) t.phis.(b);
      List.iter
        (fun instr ->
          match Cir.def_of instr with Some r -> define r | None -> ())
        blk.Cir.instrs)
    t.func.Cir.fn_blocks;
  List.rev !violations

exception Timeout of { func_name : string; max_steps : int }

(** Execute the SSA form (phis evaluated with the incoming edge), used to
    check semantic preservation in tests. *)
let run ?(max_steps = 10_000_000) t ~args =
  let func = t.func in
  let regs =
    Array.init func.Cir.fn_reg_count (fun r ->
        Bitvec.zero (max 1 func.Cir.fn_reg_widths.(r)))
  in
  let memories =
    Array.map
      (fun (rg : Cir.region) ->
        match rg.Cir.rg_init with
        | Some init -> Array.copy init
        | None -> Array.make rg.Cir.rg_words (Bitvec.zero rg.Cir.rg_width))
      func.Cir.fn_regions
  in
  List.iter (fun (_, r, init) -> regs.(r) <- init) func.Cir.fn_globals;
  List.iter2
    (fun (_, r) v ->
      regs.(r) <- Bitvec.resize ~signed:true ~width:(Cir.reg_width func r) v)
    func.Cir.fn_params args;
  let value = function
    | Cir.O_imm bv -> bv
    | Cir.O_reg r -> regs.(r)
  in
  let steps = ref 0 in
  let rec run_block ~came_from b =
    incr steps;
    if !steps > max_steps then
      raise (Timeout { func_name = func.Cir.fn_name; max_steps });
    (* phis evaluate in parallel on entry *)
    let phi_values =
      List.map
        (fun phi ->
          match List.assoc_opt came_from phi.p_srcs with
          | Some src -> (phi.p_dst, value src)
          | None -> (phi.p_dst, Bitvec.zero phi.p_width))
        t.phis.(b)
    in
    List.iter (fun (dst, v) -> regs.(dst) <- v) phi_values;
    let blk = Cir.block func b in
    List.iter
      (fun instr ->
        match instr with
        | Cir.I_bin { op; dst; a; b } ->
          regs.(dst) <- Neteval.apply_binop op (value a) (value b)
        | Cir.I_un { op; dst; a } ->
          regs.(dst) <- Neteval.apply_unop op (value a)
        | Cir.I_mov { dst; src } -> regs.(dst) <- value src
        | Cir.I_cast { dst; signed; src } ->
          regs.(dst) <-
            Bitvec.resize ~signed ~width:(Cir.reg_width func dst) (value src)
        | Cir.I_mux { dst; sel; if_true; if_false } ->
          regs.(dst) <-
            (if Bitvec.to_bool (value sel) then value if_true
             else value if_false)
        | Cir.I_load { dst; region; addr } ->
          let mem = memories.(region) in
          let a = Bitvec.to_int_unsigned (value addr) in
          regs.(dst) <-
            (if a < Array.length mem then mem.(a)
             else Bitvec.zero (Cir.reg_width func dst))
        | Cir.I_store { region; addr; value = v } ->
          let mem = memories.(region) in
          let a = Bitvec.to_int_unsigned (value addr) in
          if a < Array.length mem then mem.(a) <- value v)
      blk.Cir.instrs;
    match blk.Cir.term with
    | Cir.T_jump next -> run_block ~came_from:b next
    | Cir.T_branch { cond; if_true; if_false } ->
      if Bitvec.to_bool (value cond) then run_block ~came_from:b if_true
      else run_block ~came_from:b if_false
    | Cir.T_return v -> Option.map value v
  in
  run_block ~came_from:(-1) func.Cir.fn_entry
