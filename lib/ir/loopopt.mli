(** Source-level loop transformations (AST -> AST): the "recoding" the
    paper says implicit-clocking languages force on designers.
    Transmogrifier C charges a cycle per loop iteration, so timing may
    need loops unrolled; Handel-C charges a cycle per assignment, so
    temporaries may need fusing.  Experiment E4 measures both. *)

exception Not_unrollable of string

val subst_stmt : string -> Ast.expr -> Ast.stmt -> Ast.stmt
(** Substitute an expression for a variable (shadowing-aware). *)

val fully_unroll_for :
  init:Ast.stmt option -> cond:Ast.expr option -> step:Ast.expr option ->
  body:Ast.block -> Ast.block
(** Each iteration becomes a copy of the body with the induction variable
    replaced by its constant value.
    @raise Not_unrollable for non-static bounds, induction-variable
    assignment, or break/continue. *)

val partially_unroll_for :
  factor:int -> init:Ast.stmt option -> cond:Ast.expr option ->
  step:Ast.expr option -> body:Ast.block -> Ast.stmt
(** Replicate the body [factor] times with induction offsets; the trip
    count must divide by [factor].  @raise Not_unrollable otherwise. *)

val unroll_all_stmt : Ast.stmt -> Ast.stmt
val unroll_all_func : Ast.func -> Ast.func

val unroll_all_program : Ast.program -> Ast.program
(** Fully unroll every bounded for loop, innermost first; loops that
    cannot unroll are left in place. *)

val unroll_factor_program : factor:int -> Ast.program -> Ast.program
(** Partially unroll every bounded for loop by [factor] (innermost
    first).  Loops that cannot unroll — non-static bounds,
    break/continue, trip count not divisible by [factor] — are left in
    place, so the transform never fails; [factor < 2] is the identity.
    This is the unroll knob {!Passes.unroll_factor_pass} and the explore
    grid expose. *)

val fuse_block : Ast.block -> Ast.block

val fuse_program : Ast.program -> Ast.program
(** Fuse single-use pure temporaries into their immediately following
    consumer (`int t = a+b; x = t*c;` becomes `x = (a+b)*c;`) — only when
    nothing can intervene between definition and use, so the classic
    swap pattern is left alone.  Semantics-preserving (tested). *)
