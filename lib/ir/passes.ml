(* The pass manager.

   Each backend's hand-rolled Lower -> Simplify dance becomes a declared
   pipeline run through one engine that times every pass, records IR-size
   deltas, honours dump hooks, and (when verification vectors are set)
   differentially checks every semantics-preserving pass: CIR passes
   against Cir_interp, source passes against the reference interpreter.
   A pass that changes observable behaviour on any vector fails loudly
   here, at the pass boundary, instead of surfacing as an end-to-end
   backend mismatch. *)

type size = { blocks : int; instrs : int; regs : int }

type level = Source | Ir

type record = {
  pass_name : string;
  level : level;
  start_ms : float;
  wall_ms : float;
  before : size;
  after : size;
  verified : int;
}

type trace = record list

type func_pass = {
  fp_name : string;
  fp_transform : Cir.func -> Cir.func;
  fp_preserves_semantics : bool;
}

type program_pass = {
  pp_name : string;
  pp_transform : Ast.program -> Ast.program;
  pp_preserves_semantics : bool;
}

let func_pass ?(preserves_semantics = true) name transform =
  { fp_name = name; fp_transform = transform;
    fp_preserves_semantics = preserves_semantics }

let program_pass ?(preserves_semantics = true) name transform =
  { pp_name = name; pp_transform = transform;
    pp_preserves_semantics = preserves_semantics }

let simplify_pass =
  func_pass "simplify" (fun f -> fst (Simplify.simplify f))

let unroll_loops_pass = program_pass "unroll-loops" Loopopt.unroll_all_program
let fuse_temps_pass = program_pass "fuse-temps" Loopopt.fuse_program

let unroll_factor_pass factor =
  program_pass
    (Printf.sprintf "unroll-x%d" factor)
    (Loopopt.unroll_factor_program ~factor)

type pipeline = {
  pl_name : string;
  pl_program_passes : program_pass list;
  pl_func_passes : func_pass list;
  pl_lowers : bool;
}

let pipeline ?(program_passes = []) ?(func_passes = []) ?(lowers = true) name =
  { pl_name = name; pl_program_passes = program_passes;
    pl_func_passes = func_passes; pl_lowers = lowers }

let describe pl =
  let stages =
    List.map (fun p -> p.pp_name) pl.pl_program_passes
    @ (if pl.pl_lowers then [ "lower" ] else [])
    @ List.map (fun p -> p.fp_name) pl.pl_func_passes
  in
  match stages with [] -> "(source only)" | _ -> String.concat "; " stages

(* --- options ---------------------------------------------------------- *)

type options = {
  verify : int list list;
  dump_after : string list;
  dump_sink : string -> unit;
}

let default_options = { verify = []; dump_after = []; dump_sink = print_string }

(* Compatibility shim.  Options travel with each compile's configuration
   ([?options] on {!run} and friends, carried by [Config.t] above this
   library); this atomic only supplies the default for direct callers
   that predate the config value.  Nothing in the driver path writes it,
   so concurrent compiles under the serve Domain pool cannot bleed
   options into each other. *)
let options = Atomic.make default_options

let set_options o = Atomic.set options o
let current_options () = Atomic.get options

let with_options o f =
  let saved = Atomic.get options in
  Atomic.set options o;
  Fun.protect ~finally:(fun () -> Atomic.set options saved) f

(* --- sizes and rendering ---------------------------------------------- *)

let size_of_func (f : Cir.func) =
  { blocks = Cir.num_blocks f;
    instrs = Cir.num_instrs f;
    regs = f.Cir.fn_reg_count }

let size_of_program (p : Ast.program) =
  let stmts = ref 0 in
  List.iter
    (Ast.iter_func ~stmt:(fun _ -> incr stmts) ~expr:(fun _ -> ()))
    p.Ast.funcs;
  { blocks = List.length p.Ast.funcs; instrs = !stmts; regs = 0 }

let render_table (t : trace) =
  let buf = Buffer.create 256 in
  let delta a b = if a = b then string_of_int a else Printf.sprintf "%d->%d" a b in
  let rows =
    List.map
      (fun r ->
        let unit_name =
          if r.pass_name = "lower" then "src->cir"
          else
            match r.level with
            | Source -> "funcs/stmts"
            | Ir -> "blocks/instrs"
        in
        [ r.pass_name;
          Printf.sprintf "%.2f" r.wall_ms;
          delta r.before.blocks r.after.blocks;
          delta r.before.instrs r.after.instrs;
          (if r.level = Source then "-" else delta r.before.regs r.after.regs);
          (if r.verified > 0 then Printf.sprintf "%d vectors" r.verified
           else "-");
          unit_name ])
      t
  in
  let header =
    [ "pass"; "ms"; "blocks"; "instrs"; "regs"; "verified"; "units" ]
  in
  let widths =
    List.fold_left
      (fun ws row -> List.map2 (fun w c -> max w (String.length c)) ws row)
      (List.map String.length header)
      rows
  in
  let emit row =
    List.iteri
      (fun i (w, c) ->
        Buffer.add_string buf c;
        if i < List.length row - 1 then
          Buffer.add_string buf (String.make (w - String.length c + 2) ' '))
      (List.combine widths row);
    Buffer.add_char buf '\n'
  in
  emit header;
  Buffer.add_string buf
    (String.make (List.fold_left ( + ) 0 widths + (2 * (List.length widths - 1))) '-');
  Buffer.add_char buf '\n';
  List.iter emit rows;
  Buffer.contents buf

(* --- differential verification ---------------------------------------- *)

exception Verification_failed of string

let fail_verification fmt =
  Printf.ksprintf (fun m -> raise (Verification_failed m)) fmt

let bitvec_args vector = List.map (Bitvec.of_int ~width:64) vector

let show_vector vector = String.concat "," (List.map string_of_int vector)

let show_value = function
  | Some v -> string_of_int (Bitvec.to_int v)
  | None -> "void"

(* One CIR execution, summarized for comparison.  Timeout is not a
   verdict: a pass may legitimately change dynamic instruction counts, so
   a vector where either side times out is skipped, not failed. *)
let cir_observation func vector =
  match Cir_interp.run func ~args:(bitvec_args vector) with
  | o -> Some (o.Cir_interp.return_value, o.Cir_interp.globals, o.Cir_interp.memories)
  | exception Cir_interp.Timeout -> None

let verify_func_pass ~pipeline_name ~pass_name ~before ~after vectors =
  let checked = ref 0 in
  List.iter
    (fun vector ->
      match (cir_observation before vector, cir_observation after vector) with
      | None, None -> ()
      | None, Some _ | Some _, None ->
        fail_verification
          "pipeline %s, pass %s: Cir_interp timeout on only one side for (%s)"
          pipeline_name pass_name (show_vector vector)
      | Some (r0, g0, m0), Some (r1, g1, m1) ->
        incr checked;
        let value_eq a b =
          match (a, b) with
          | None, None -> true
          | Some a, Some b -> Bitvec.equal a b
          | _ -> false
        in
        if not (value_eq r0 r1) then
          fail_verification
            "pipeline %s, pass %s diverges on (%s): result %s before, %s after"
            pipeline_name pass_name (show_vector vector) (show_value r0)
            (show_value r1);
        List.iter
          (fun (name, v0) ->
            match List.assoc_opt name g1 with
            | Some v1 when Bitvec.equal v0 v1 -> ()
            | _ ->
              fail_verification
                "pipeline %s, pass %s diverges on (%s): global %s changed"
                pipeline_name pass_name (show_vector vector) name)
          g0;
        List.iter
          (fun (name, a0) ->
            match List.assoc_opt name m1 with
            | Some a1
              when Array.length a0 = Array.length a1
                   && Array.for_all2 Bitvec.equal a0 a1 -> ()
            | _ ->
              fail_verification
                "pipeline %s, pass %s diverges on (%s): memory %s changed"
                pipeline_name pass_name (show_vector vector) name)
          m0)
    vectors;
  !checked

(* Source-level passes are checked against the reference interpreter (CIR
   does not exist yet at that point); only the return value is compared —
   the source store is not observable through Design. *)
let source_observation program ~entry vector =
  match Interp.run program ~entry ~args:(bitvec_args vector) with
  | o -> Some o.Interp.return_value
  | exception (Interp.Timeout | Interp.Deadlock) -> None

let verify_program_pass ~pipeline_name ~pass_name ~entry ~before ~after vectors
    =
  let checked = ref 0 in
  List.iter
    (fun vector ->
      match
        ( source_observation before ~entry vector,
          source_observation after ~entry vector )
      with
      | None, None -> ()
      | None, Some _ | Some _, None ->
        fail_verification
          "pipeline %s, pass %s: interpreter timeout on only one side for (%s)"
          pipeline_name pass_name (show_vector vector)
      | Some r0, Some r1 ->
        incr checked;
        let eq =
          match (r0, r1) with
          | None, None -> true
          | Some a, Some b -> Bitvec.equal a b
          | _ -> false
        in
        if not eq then
          fail_verification
            "pipeline %s, pass %s diverges on (%s): result %s before, %s after"
            pipeline_name pass_name (show_vector vector) (show_value r0)
            (show_value r1))
    vectors;
  !checked

(* --- running ----------------------------------------------------------- *)

let timed f =
  let t0 = Sys.time () in
  let result = f () in
  (result, (Sys.time () -. t0) *. 1000.)

let maybe_dump opts ~pass_name render =
  if List.mem pass_name opts.dump_after then
    opts.dump_sink
      (Printf.sprintf "=== IR after %s ===\n%s\n" pass_name (render ()))

(* [epoch] anchors every record's start_ms to the pipeline run's begin,
   so the whole trace shares one timeline (in CPU-time milliseconds, the
   same clock wall_ms already uses). *)
let run_program_passes_from ?options:opts epoch pl program ~entry =
  let opts = match opts with Some o -> o | None -> current_options () in
  let program, rev_trace =
    List.fold_left
      (fun (program, acc) pass ->
        let before = size_of_program program in
        let start_ms = (Sys.time () -. epoch) *. 1000. in
        let program', wall_ms = timed (fun () -> pass.pp_transform program) in
        maybe_dump opts ~pass_name:pass.pp_name (fun () ->
            Pretty.program_to_string program');
        let verified =
          if pass.pp_preserves_semantics && opts.verify <> [] then
            verify_program_pass ~pipeline_name:pl.pl_name
              ~pass_name:pass.pp_name ~entry ~before:program ~after:program'
              opts.verify
          else 0
        in
        ( program',
          { pass_name = pass.pp_name; level = Source; start_ms; wall_ms;
            before; after = size_of_program program'; verified }
          :: acc ))
      (program, []) pl.pl_program_passes
  in
  (program, List.rev rev_trace)

let run_program_passes ?options pl program ~entry =
  run_program_passes_from ?options (Sys.time ()) pl program ~entry

let run ?options:opts pl program ~entry =
  let opts = match opts with Some o -> o | None -> current_options () in
  let epoch = Sys.time () in
  let program, source_trace =
    run_program_passes_from ~options:opts epoch pl program ~entry
  in
  let src_size = size_of_program program in
  let lower_start = (Sys.time () -. epoch) *. 1000. in
  let lowered, wall_ms = timed (fun () -> Lower.lower_program program ~entry) in
  maybe_dump opts ~pass_name:"lower" (fun () ->
      Cir.to_string lowered.Lower.func);
  let lower_record =
    { pass_name = "lower"; level = Ir; start_ms = lower_start; wall_ms;
      before = src_size; after = size_of_func lowered.Lower.func;
      verified = 0 }
  in
  let func, rev_trace =
    List.fold_left
      (fun (func, acc) pass ->
        let before = size_of_func func in
        let start_ms = (Sys.time () -. epoch) *. 1000. in
        let func', wall_ms = timed (fun () -> pass.fp_transform func) in
        maybe_dump opts ~pass_name:pass.fp_name (fun () -> Cir.to_string func');
        let verified =
          if pass.fp_preserves_semantics && opts.verify <> [] then
            verify_func_pass ~pipeline_name:pl.pl_name ~pass_name:pass.fp_name
              ~before:func ~after:func' opts.verify
          else 0
        in
        ( func',
          { pass_name = pass.fp_name; level = Ir; start_ms; wall_ms; before;
            after = size_of_func func'; verified }
          :: acc ))
      (lowered.Lower.func, []) pl.pl_func_passes
  in
  ( { lowered with Lower.func },
    source_trace @ (lower_record :: List.rev rev_trace) )

let default_pipeline = pipeline "default" ~func_passes:[ simplify_pass ]

let lower_simplify ?options program ~entry =
  run ?options default_pipeline program ~entry
