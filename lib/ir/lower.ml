(* Lowering: elaborated AST -> CIR.

   All function calls are inlined (the scheduled backends target dialects
   that forbid recursion; recursion is detected by an inline-depth bound and
   reported).  Scalar locals and scalar globals become virtual registers;
   every array becomes its own memory region — the partitioned-memory model.
   Pointer operations are rejected here: the only dialect with pointers,
   C2Verilog, uses the unified-memory stack machine backend instead.

   Conventions established here and relied on downstream:
     - T_branch is taken when its operand is nonzero;
     - comparison instructions produce 1-bit values, immediately widened by
       an I_cast when C's int-typed result is needed;
     - locals without initializers read as zero (deterministic hardware). *)

exception Error of string * Ast.loc

let error_at loc fmt = Printf.ksprintf (fun m -> raise (Error (m, loc))) fmt

(* for failures with no single source point (malformed builder state,
   missing entry function) *)
let error fmt = error_at Ast.no_loc fmt

let max_inline_depth = 64

type binding = B_reg of Cir.reg * Ctypes.t | B_region of int * Ctypes.t

type builder = {
  program : Ast.program;
  mutable reg_widths : int array;
  mutable reg_count : int;
  mutable blocks : Cir.block array;
  mutable block_count : int;
  mutable current : int; (* block under construction *)
  mutable pending : Cir.instr list; (* reversed instrs of current block *)
  mutable scopes : (string, binding) Hashtbl.t list;
  globals : (string, binding) Hashtbl.t;
  mutable regions : Cir.region list; (* reversed *)
  mutable region_count : int;
  mutable loop_stack : (int * int) list; (* (continue target, break target) *)
  mutable return_stack : (Cir.reg option * int) list; (* inline returns *)
  mutable global_regs : (string * Cir.reg * Bitvec.t) list;
  mutable constraints : (int * int * int * int * int) list;
    (* block, first instr index, last instr index, min, max *)
  mutable depth : int;
}

let new_reg b width =
  if b.reg_count = Array.length b.reg_widths then begin
    let bigger = Array.make (2 * b.reg_count) 0 in
    Array.blit b.reg_widths 0 bigger 0 b.reg_count;
    b.reg_widths <- bigger
  end;
  b.reg_widths.(b.reg_count) <- width;
  b.reg_count <- b.reg_count + 1;
  b.reg_count - 1

let new_block b =
  if b.block_count = Array.length b.blocks then begin
    let bigger =
      Array.make (2 * b.block_count)
        { Cir.b_id = -1; instrs = []; term = Cir.T_return None }
    in
    Array.blit b.blocks 0 bigger 0 b.block_count;
    b.blocks <- bigger
  end;
  let id = b.block_count in
  b.blocks.(id) <- { Cir.b_id = id; instrs = []; term = Cir.T_return None };
  b.block_count <- id + 1;
  id

(* Seal the current block with [term] and switch to building [next]. *)
let finish_block b term next =
  b.blocks.(b.current).instrs <- List.rev b.pending;
  b.blocks.(b.current).term <- term;
  b.pending <- [];
  b.current <- next

let emit b instr = b.pending <- instr :: b.pending

let new_region b ~name ~words ~width ~init =
  let rg =
    { Cir.rg_name = name; rg_words = words; rg_width = width; rg_init = init }
  in
  b.regions <- rg :: b.regions;
  b.region_count <- b.region_count + 1;
  b.region_count - 1

let push_scope b = b.scopes <- Hashtbl.create 8 :: b.scopes
let pop_scope b = b.scopes <- List.tl b.scopes

let bind b name binding =
  match b.scopes with
  | scope :: _ -> Hashtbl.replace scope name binding
  | [] -> error "no scope"

let lookup b name =
  let rec go = function
    | [] -> (
      match Hashtbl.find_opt b.globals name with
      | Some binding -> binding
      | None -> error "unbound variable %s in lowering" name)
    | scope :: rest -> (
      match Hashtbl.find_opt scope name with
      | Some binding -> binding
      | None -> go rest)
  in
  go b.scopes

let width_of ty = max 1 (Ctypes.width ty)

let rec expr_pure (e : Ast.expr) =
  match e.Ast.e with
  | Ast.Const _ | Ast.Var _ -> true
  | Ast.Unop (_, a) | Ast.Cast (_, a) -> expr_pure a
  | Ast.Binop (_, a, b) -> expr_pure a && expr_pure b
  | Ast.Index (a, b) -> expr_pure a && expr_pure b
  | Ast.Cond (a, b, c) -> expr_pure a && expr_pure b && expr_pure c
  | Ast.Assign _ | Ast.Call _ | Ast.Chan_recv _ | Ast.Deref _ | Ast.Addr_of _
    -> false

(* Resolve an expression of array/pointer type to a memory region.  Only
   direct array names (possibly via array-typed parameters, which inlining
   has already bound to regions) are supported in the pointer-free IR. *)
let resolve_region b (e : Ast.expr) =
  match e.Ast.e with
  | Ast.Var name -> (
    match lookup b name with
    | B_region (rg, _) -> rg
    | B_reg _ -> error_at e.Ast.eloc "%s is not an array" name)
  | Ast.Const _ | Ast.Unop _ | Ast.Binop _ | Ast.Assign _ | Ast.Cond _
  | Ast.Call _ | Ast.Index _ | Ast.Deref _ | Ast.Addr_of _ | Ast.Cast _
  | Ast.Chan_recv _ ->
    error_at e.Ast.eloc
      "pointer-valued expressions are not supported in CIR \
       (use the c2verilog backend)"

let bool_of b op ~negate =
  (* Materialize a 1-bit nonzero test of [op]. *)
  let one_bit = new_reg b 1 in
  let width =
    match op with
    | Cir.O_reg r -> b.reg_widths.(r)
    | Cir.O_imm bv -> Bitvec.width bv
  in
  let zero = Cir.O_imm (Bitvec.zero width) in
  emit b
    (Cir.I_bin
       { op = (if negate then Netlist.B_eq else Netlist.B_ne);
         dst = one_bit; a = op; b = zero });
  one_bit

let widen b reg ~width =
  if b.reg_widths.(reg) = width then Cir.O_reg reg
  else begin
    let dst = new_reg b width in
    emit b (Cir.I_cast { dst; signed = false; src = Cir.O_reg reg });
    Cir.O_reg dst
  end

let int_width = Ctypes.width Ctypes.int_t

let rec lower_expr b (e : Ast.expr) : Cir.operand =
  match e.Ast.e with
  | Ast.Const (v, ty) -> Cir.O_imm (Bitvec.of_int64 ~width:(width_of ty) v)
  | Ast.Var name -> (
    match lookup b name with
    | B_reg (r, _) -> Cir.O_reg r
    | B_region _ -> error_at e.Ast.eloc "array %s used as a value" name)
  | Ast.Unop (Ast.Log_not, a) ->
    let a_op = lower_expr b a in
    widen b (bool_of b a_op ~negate:true) ~width:int_width
  | Ast.Unop (op, a) ->
    let a_op = lower_expr b a in
    let dst = new_reg b (width_of e.Ast.ty) in
    let op =
      match op with
      | Ast.Neg -> Netlist.U_neg
      | Ast.Bit_not -> Netlist.U_not
      | Ast.Log_not ->
        error_at e.Ast.eloc
          "internal: !e must lower through the nonzero test, not a unary op"
    in
    emit b (Cir.I_un { op; dst; a = a_op });
    Cir.O_reg dst
  | Ast.Binop ((Ast.Log_and | Ast.Log_or) as op, x, y) ->
    lower_short_circuit b op x y
  | Ast.Binop (op, x, y) ->
    let a = lower_expr b x in
    let bop = lower_expr b y in
    let signed = Ctypes.is_signed x.Ast.ty in
    let netop =
      match op with
      | Ast.Add -> Netlist.B_add
      | Ast.Sub -> Netlist.B_sub
      | Ast.Mul -> Netlist.B_mul
      | Ast.Div -> if signed then Netlist.B_sdiv else Netlist.B_udiv
      | Ast.Mod -> if signed then Netlist.B_srem else Netlist.B_urem
      | Ast.Band -> Netlist.B_and
      | Ast.Bor -> Netlist.B_or
      | Ast.Bxor -> Netlist.B_xor
      | Ast.Shl -> Netlist.B_shl
      | Ast.Shr -> if signed then Netlist.B_ashr else Netlist.B_lshr
      | Ast.Eq -> Netlist.B_eq
      | Ast.Ne -> Netlist.B_ne
      | Ast.Lt -> if signed then Netlist.B_slt else Netlist.B_ult
      | Ast.Le -> if signed then Netlist.B_sle else Netlist.B_ule
      | Ast.Gt -> if signed then Netlist.B_slt else Netlist.B_ult
      | Ast.Ge -> if signed then Netlist.B_sle else Netlist.B_ule
      | Ast.Log_and | Ast.Log_or ->
        error_at e.Ast.eloc
          "internal: && and || lower through lower_short_circuit, not the \
           flat datapath"
    in
    (* Gt/Ge are realized as Lt/Le with swapped operands. *)
    let a, bop =
      match op with Ast.Gt | Ast.Ge -> (bop, a) | _ -> (a, bop)
    in
    if Netlist.is_comparison netop then begin
      let cmp = new_reg b 1 in
      emit b (Cir.I_bin { op = netop; dst = cmp; a; b = bop });
      widen b cmp ~width:(width_of e.Ast.ty)
    end
    else begin
      let dst = new_reg b (width_of e.Ast.ty) in
      emit b (Cir.I_bin { op = netop; dst; a; b = bop });
      Cir.O_reg dst
    end
  | Ast.Assign (lhs, rhs) -> lower_assign b lhs rhs
  | Ast.Cond (c, t, f) ->
    if expr_pure t && expr_pure f then begin
      let sel = lower_expr b c in
      let sel_bit = bool_of b sel ~negate:false in
      let vt = lower_expr b t and vf = lower_expr b f in
      let dst = new_reg b (width_of e.Ast.ty) in
      emit b
        (Cir.I_mux
           { dst; sel = Cir.O_reg sel_bit; if_true = vt; if_false = vf });
      Cir.O_reg dst
    end
    else begin
      (* Side-effecting arms need real control flow. *)
      let dst = new_reg b (width_of e.Ast.ty) in
      let bt = new_block b and bf = new_block b and join = new_block b in
      let sel = lower_expr b c in
      finish_block b
        (Cir.T_branch { cond = sel; if_true = bt; if_false = bf })
        bt;
      let vt = lower_expr b t in
      emit b (Cir.I_mov { dst; src = vt });
      finish_block b (Cir.T_jump join) bf;
      let vf = lower_expr b f in
      emit b (Cir.I_mov { dst; src = vf });
      finish_block b (Cir.T_jump join) join;
      Cir.O_reg dst
    end
  | Ast.Call (name, args) -> lower_call b ~loc:e.Ast.eloc name args
  | Ast.Index (base, idx) ->
    let region = resolve_region b base in
    let addr = lower_expr b idx in
    let dst = new_reg b (width_of e.Ast.ty) in
    emit b (Cir.I_load { dst; region; addr });
    Cir.O_reg dst
  | Ast.Cast (ty, a) ->
    let src = lower_expr b a in
    let target = width_of ty in
    let source =
      match src with
      | Cir.O_reg r -> b.reg_widths.(r)
      | Cir.O_imm bv -> Bitvec.width bv
    in
    if source = target then src
    else begin
      let dst = new_reg b target in
      emit b (Cir.I_cast { dst; signed = Ctypes.is_signed a.Ast.ty; src });
      Cir.O_reg dst
    end
  | Ast.Deref _ | Ast.Addr_of _ ->
    error_at e.Ast.eloc "pointer operation not supported in CIR (use c2verilog)"
  | Ast.Chan_recv _ ->
    error_at e.Ast.eloc
      "channel operation not supported in CIR (handled by handelc)"

and lower_short_circuit b op x y =
  (* dispatch on the operator once; anything else arriving here is a
     dispatch bug in lower_expr, reported instead of crashing *)
  let is_and =
    match op with
    | Ast.Log_and -> true
    | Ast.Log_or -> false
    | _ -> error "internal: lower_short_circuit on a non-logical operator"
  in
  if expr_pure y then begin
    let vx = lower_expr b x and vy = lower_expr b y in
    let bx = bool_of b vx ~negate:false and by = bool_of b vy ~negate:false in
    let dst = new_reg b 1 in
    let netop = if is_and then Netlist.B_and else Netlist.B_or in
    emit b (Cir.I_bin { op = netop; dst; a = Cir.O_reg bx; b = Cir.O_reg by });
    widen b dst ~width:int_width
  end
  else begin
    let dst = new_reg b int_width in
    let eval_rhs = new_block b and skip = new_block b and join = new_block b in
    let vx = lower_expr b x in
    let bt, bf = if is_and then (eval_rhs, skip) else (skip, eval_rhs) in
    finish_block b (Cir.T_branch { cond = vx; if_true = bt; if_false = bf })
      eval_rhs;
    let vy = lower_expr b y in
    let by = bool_of b vy ~negate:false in
    let wide = widen b by ~width:int_width in
    emit b (Cir.I_mov { dst; src = wide });
    finish_block b (Cir.T_jump join) skip;
    let short_value =
      if is_and then Bitvec.zero int_width else Bitvec.one int_width
    in
    emit b (Cir.I_mov { dst; src = Cir.O_imm short_value });
    finish_block b (Cir.T_jump join) join;
    Cir.O_reg dst
  end

and lower_assign b lhs rhs =
  let value = lower_expr b rhs in
  match lhs.Ast.e with
  | Ast.Var name -> (
    match lookup b name with
    | B_reg (r, _) ->
      emit b (Cir.I_mov { dst = r; src = value });
      Cir.O_reg r
    | B_region _ -> error_at lhs.Ast.eloc "cannot assign to array %s" name)
  | Ast.Index (base, idx) ->
    let region = resolve_region b base in
    let addr = lower_expr b idx in
    emit b (Cir.I_store { region; addr; value });
    value
  | Ast.Deref _ ->
    error_at lhs.Ast.eloc "pointer store not supported in CIR (use c2verilog)"
  | Ast.Const _ | Ast.Unop _ | Ast.Binop _ | Ast.Assign _ | Ast.Cond _
  | Ast.Call _ | Ast.Addr_of _ | Ast.Cast _ | Ast.Chan_recv _ ->
    error_at lhs.Ast.eloc "assignment to non-lvalue"

and lower_call b ~loc name args =
  let func =
    match Ast.find_func b.program name with
    | Some f -> f
    | None -> error_at loc "call to undefined function %s" name
  in
  b.depth <- b.depth + 1;
  if b.depth > max_inline_depth then
    error_at loc "inlining depth exceeded: %s is recursive (use c2verilog)"
      name;
  let frame = Hashtbl.create 8 in
  List.iter2
    (fun (ty, pname) arg ->
      match ty with
      | Ctypes.Array (elt, _) | Ctypes.Pointer elt ->
        let rg = resolve_region b arg in
        Hashtbl.replace frame pname (B_region (rg, Ctypes.Pointer elt))
      | Ctypes.Void | Ctypes.Integer _ | Ctypes.Function _ ->
        let v = lower_expr b arg in
        let r = new_reg b (width_of ty) in
        emit b (Cir.I_mov { dst = r; src = v });
        Hashtbl.replace frame pname (B_reg (r, ty)))
    func.Ast.f_params args;
  let result =
    if Ctypes.equal func.Ast.f_ret Ctypes.Void then None
    else Some (new_reg b (width_of func.Ast.f_ret))
  in
  let exit_block = new_block b in
  b.return_stack <- (result, exit_block) :: b.return_stack;
  b.scopes <- frame :: b.scopes;
  List.iter (lower_stmt b) func.Ast.f_body;
  finish_block b (Cir.T_jump exit_block) exit_block;
  b.scopes <- List.tl b.scopes;
  b.return_stack <- List.tl b.return_stack;
  b.depth <- b.depth - 1;
  match result with
  | Some r -> Cir.O_reg r
  | None -> Cir.O_imm (Bitvec.zero 1)

and lower_stmt b (st : Ast.stmt) =
  match st.Ast.s with
  | Ast.Expr e -> ignore (lower_expr b e)
  | Ast.Decl (ty, name, init) -> (
    match ty with
    | Ctypes.Array (elt, n) ->
      let rg =
        new_region b ~name ~words:n ~width:(width_of elt) ~init:None
      in
      bind b name (B_region (rg, ty))
    | Ctypes.Void | Ctypes.Integer _ | Ctypes.Pointer _ | Ctypes.Function _
      ->
      let r = new_reg b (width_of ty) in
      bind b name (B_reg (r, ty));
      let v =
        match init with
        | Some e -> lower_expr b e
        | None -> Cir.O_imm (Bitvec.zero (width_of ty))
      in
      emit b (Cir.I_mov { dst = r; src = v }))
  | Ast.If (c, t, f) ->
    let bt = new_block b and bf = new_block b and join = new_block b in
    let cond = lower_expr b c in
    finish_block b (Cir.T_branch { cond; if_true = bt; if_false = bf }) bt;
    lower_block b t;
    finish_block b (Cir.T_jump join) bf;
    lower_block b f;
    finish_block b (Cir.T_jump join) join
  | Ast.While (c, body) ->
    let header = new_block b and body_b = new_block b and exit_b = new_block b in
    finish_block b (Cir.T_jump header) header;
    let cond = lower_expr b c in
    finish_block b
      (Cir.T_branch { cond; if_true = body_b; if_false = exit_b })
      body_b;
    b.loop_stack <- (header, exit_b) :: b.loop_stack;
    lower_block b body;
    b.loop_stack <- List.tl b.loop_stack;
    finish_block b (Cir.T_jump header) exit_b
  | Ast.Do_while (body, c) ->
    let body_b = new_block b and test_b = new_block b and exit_b = new_block b in
    finish_block b (Cir.T_jump body_b) body_b;
    b.loop_stack <- (test_b, exit_b) :: b.loop_stack;
    lower_block b body;
    b.loop_stack <- List.tl b.loop_stack;
    finish_block b (Cir.T_jump test_b) test_b;
    let cond = lower_expr b c in
    finish_block b
      (Cir.T_branch { cond; if_true = body_b; if_false = exit_b })
      exit_b
  | Ast.For (init, cond, stepper, body) ->
    push_scope b;
    (match init with None -> () | Some st -> lower_stmt b st);
    let header = new_block b
    and body_b = new_block b
    and step_b = new_block b
    and exit_b = new_block b in
    finish_block b (Cir.T_jump header) header;
    (match cond with
    | None -> finish_block b (Cir.T_jump body_b) body_b
    | Some c ->
      let cv = lower_expr b c in
      finish_block b
        (Cir.T_branch { cond = cv; if_true = body_b; if_false = exit_b })
        body_b);
    b.loop_stack <- (step_b, exit_b) :: b.loop_stack;
    lower_block b body;
    b.loop_stack <- List.tl b.loop_stack;
    finish_block b (Cir.T_jump step_b) step_b;
    (match stepper with None -> () | Some e -> ignore (lower_expr b e));
    finish_block b (Cir.T_jump header) exit_b;
    pop_scope b
  | Ast.Return value -> (
    let v = Option.map (lower_expr b) value in
    match b.return_stack with
    | [] ->
      let dead = new_block b in
      finish_block b (Cir.T_return v) dead
    | (result, exit_block) :: _ ->
      (match (result, v) with
      | Some r, Some v -> emit b (Cir.I_mov { dst = r; src = v })
      | Some _, None | None, Some _ | None, None -> ());
      let dead = new_block b in
      finish_block b (Cir.T_jump exit_block) dead)
  | Ast.Break -> (
    match b.loop_stack with
    | [] -> error_at st.Ast.sloc "break outside loop"
    | (_, exit_b) :: _ ->
      let dead = new_block b in
      finish_block b (Cir.T_jump exit_b) dead)
  | Ast.Continue -> (
    match b.loop_stack with
    | [] -> error_at st.Ast.sloc "continue outside loop"
    | (cont_b, _) :: _ ->
      let dead = new_block b in
      finish_block b (Cir.T_jump cont_b) dead)
  | Ast.Block body -> lower_block b body
  | Ast.Constrain (min_c, max_c, body) ->
    let start_block = b.current in
    let start_index = List.length b.pending in
    lower_block b body;
    if b.current <> start_block then
      error_at st.Ast.sloc "constrain body must be straight-line code";
    let end_index = List.length b.pending - 1 in
    if end_index >= start_index then
      b.constraints <-
        (start_block, start_index, end_index, min_c, max_c) :: b.constraints
  | Ast.Par _ | Ast.Chan_send _ ->
    error_at st.Ast.sloc
      "par/channels not representable in CIR (handled by handelc)"
  | Ast.Delay -> () (* a scheduling hint with no sequential meaning *)

and lower_block b body =
  push_scope b;
  List.iter (lower_stmt b) body;
  pop_scope b

type result = {
  func : Cir.func;
  constraints : (int * int * int * int * int) list;
    (* block, first, last instruction index, min cycles, max cycles *)
}

(** Lower the entry function of [program] (type-checked) to CIR. *)
let lower_program (program : Ast.program) ~entry : result =
  let func =
    match Ast.find_func program entry with
    | Some f -> f
    | None -> error "entry function %s not found" entry
  in
  let b =
    { program;
      reg_widths = Array.make 64 0;
      reg_count = 0;
      blocks = Array.make 16 { Cir.b_id = -1; instrs = []; term = Cir.T_return None };
      block_count = 0;
      current = 0;
      pending = [];
      scopes = [];
      globals = Hashtbl.create 16;
      regions = [];
      region_count = 0;
      loop_stack = [];
      return_stack = [];
      global_regs = [];
      constraints = [];
      depth = 0 }
  in
  let entry_block = new_block b in
  b.current <- entry_block;
  (* Globals: arrays become initialized regions, scalars become registers
     initialized before the entry code. *)
  List.iter
    (fun (g : Ast.global) ->
      match g.Ast.g_ty with
      | Ctypes.Array (elt, n) ->
        let width = width_of elt in
        let init =
          match g.Ast.g_init with
          | None -> Some (Array.make n (Bitvec.zero width))
          | Some values ->
            let a = Array.make n (Bitvec.zero width) in
            List.iteri
              (fun i v -> if i < n then a.(i) <- Bitvec.of_int64 ~width v)
              values;
            Some a
        in
        let rg = new_region b ~name:g.Ast.g_name ~words:n ~width ~init in
        Hashtbl.replace b.globals g.Ast.g_name (B_region (rg, g.Ast.g_ty))
      | Ctypes.Void | Ctypes.Integer _ | Ctypes.Pointer _ | Ctypes.Function _
        ->
        let width = width_of g.Ast.g_ty in
        let r = new_reg b width in
        let init =
          match g.Ast.g_init with
          | Some [ v ] -> Bitvec.of_int64 ~width v
          | Some _ | None -> Bitvec.zero width
        in
        b.global_regs <- (g.Ast.g_name, r, init) :: b.global_regs;
        Hashtbl.replace b.globals g.Ast.g_name (B_reg (r, g.Ast.g_ty)))
    program.Ast.globals;
  (* Entry parameters must be scalars: they become hardware input ports. *)
  push_scope b;
  let params =
    List.map
      (fun (ty, name) ->
        match ty with
        | Ctypes.Integer _ ->
          let r = new_reg b (width_of ty) in
          bind b name (B_reg (r, ty));
          (name, r)
        | Ctypes.Void | Ctypes.Pointer _ | Ctypes.Array _ | Ctypes.Function _
          ->
          error "entry parameter %s must be a scalar integer" name)
      func.Ast.f_params
  in
  List.iter (lower_stmt b) func.Ast.f_body;
  (* Fall off the end: return 0/void. *)
  let ret_width = max 0 (Ctypes.width func.Ast.f_ret) in
  let final_term =
    if ret_width = 0 then Cir.T_return None
    else Cir.T_return (Some (Cir.O_imm (Bitvec.zero ret_width)))
  in
  let dead = new_block b in
  finish_block b final_term dead;
  finish_block b (Cir.T_return None) dead;
  pop_scope b;
  let fn =
    { Cir.fn_name = entry;
      fn_params = params;
      fn_ret_width = ret_width;
      fn_blocks = Array.sub b.blocks 0 b.block_count;
      fn_entry = entry_block;
      fn_reg_widths = Array.sub b.reg_widths 0 b.reg_count;
      fn_reg_count = b.reg_count;
      fn_regions = Array.of_list (List.rev b.regions);
      fn_globals = List.rev b.global_regs }
  in
  { func = fn; constraints = List.rev b.constraints }
