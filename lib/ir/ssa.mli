(** Pruned SSA construction over CIR (Cytron-style: phi insertion at
    iterated dominance frontiers filtered by liveness, renaming down the
    dominator tree).

    The result keeps the block structure but rewrites instructions over
    single-assignment registers, with phi nodes attached per block.  The
    CASH backend builds its dataflow circuit from this form (phis at loop
    headers become merge/mu nodes). *)

type phi = {
  p_dst : Cir.reg;
  p_width : int;
  p_srcs : (int * Cir.operand) list;  (** predecessor block -> value *)
}

type t = {
  func : Cir.func;  (** renamed body; registers are SSA names *)
  phis : phi list array;  (** phi nodes per block *)
  cfg : Cfg.t;  (** CFG of the original function (same shape) *)
  ssa_of_param : (string * Cir.reg) list;
}

val of_func : Cir.func -> t
(** Convert to pruned SSA.  Parameters and globals keep their original
    registers as their first definition. *)

val verify : t -> Cir.reg list
(** Registers violating single assignment (empty = valid). *)

exception Timeout of { func_name : string; max_steps : int }
(** [run] exceeded its step budget — the function name and the budget
    ride along so drivers can report which evaluation diverged. *)

val run : ?max_steps:int -> t -> args:Bitvec.t list -> Bitvec.t option
(** Execute the SSA form (phis take the incoming-edge value); used to
    check semantic preservation.  Raises {!Timeout} past [max_steps]
    block entries (default 10M). *)
