(** The pass manager: every backend's lowering pipeline, declared.

    A pipeline is a declarative list of named transforms — source-level
    passes ([Ast.program -> Ast.program], e.g. loop unrolling), the
    lowering stage itself, and CIR passes ([Cir.func -> Cir.func], e.g.
    CFG simplification).  Running a pipeline records a per-pass trace
    (wall time plus IR-size deltas: blocks, instructions, registers),
    supports dump hooks after any named pass, and — when verification
    vectors are supplied — differentially checks every
    semantics-preserving pass against {!Cir_interp} before/after, so each
    pass is individually oracle-checked instead of only end-to-end.

    Backends declare their pipelines through this module; the CLI exposes
    the machinery as [chlsc compile --trace-passes | --dump-ir <pass> |
    --verify-passes]. *)

(** {1 Trace records} *)

type size = {
  blocks : int;  (** CIR basic blocks; functions at the source level *)
  instrs : int;  (** CIR instructions; statements at the source level *)
  regs : int;  (** virtual registers; 0 at the source level *)
}

type level = Source | Ir

type record = {
  pass_name : string;
  level : level;
  start_ms : float;
      (** offset of this pass's start from the pipeline run's begin, so a
          trace can be replayed as a span tree without re-timing *)
  wall_ms : float;
  before : size;
  after : size;
  verified : int;
      (** argument vectors differentially checked through {!Cir_interp};
          0 when verification was off or inapplicable *)
}

type trace = record list

val render_table : trace -> string
(** Fixed-width per-pass table: time, size deltas, vectors verified. *)

(** {1 Passes and pipelines} *)

type func_pass = {
  fp_name : string;
  fp_transform : Cir.func -> Cir.func;
  fp_preserves_semantics : bool;
      (** verified differentially when vectors are supplied *)
}

type program_pass = {
  pp_name : string;
  pp_transform : Ast.program -> Ast.program;
  pp_preserves_semantics : bool;
}

val func_pass :
  ?preserves_semantics:bool -> string -> (Cir.func -> Cir.func) -> func_pass
(** [preserves_semantics] defaults to [true]. *)

val program_pass :
  ?preserves_semantics:bool -> string -> (Ast.program -> Ast.program) ->
  program_pass

val simplify_pass : func_pass
(** {!Simplify.simplify}, block mapping discarded. *)

val unroll_loops_pass : program_pass
(** {!Loopopt.unroll_all_program} (Transmogrifier-style recoding). *)

val fuse_temps_pass : program_pass
(** {!Loopopt.fuse_program} (Handel-C-style recoding). *)

val unroll_factor_pass : int -> program_pass
(** [unroll_factor_pass n] is {!Loopopt.unroll_factor_program}[ ~factor:n]
    under the name ["unroll-x<n>"] — the configurable-unroll knob a
    [Config.t] turns into a pipeline stage.  Factor 1 is the identity. *)

type pipeline = {
  pl_name : string;
  pl_program_passes : program_pass list;
  pl_func_passes : func_pass list;
  pl_lowers : bool;
      (** whether the backend runs the CIR lowering stage; [false] for the
          source-consuming backends (Cones, C2Verilog) *)
}

val pipeline :
  ?program_passes:program_pass list -> ?func_passes:func_pass list ->
  ?lowers:bool -> string -> pipeline
(** [lowers] defaults to [true]. *)

val describe : pipeline -> string
(** ["unroll-loops; lower; simplify"] — the stages in execution order
    (non-lowering pipelines omit the lower stage). *)

(** {1 Options}

    Per-compile knobs.  Every run entry point takes [?options]; callers
    above this library carry them in a [Config.t] and pass them down
    explicitly.  The process-wide setter below is only a compatibility
    shim supplying the default for direct callers that predate the
    config value — nothing on the driver path writes it, so concurrent
    compiles on separate domains cannot bleed options into each other. *)

type options = {
  verify : int list list;
      (** argument vectors for differential verification; [[]] disables *)
  dump_after : string list;
      (** pass names (including ["lower"]) whose output IR to dump *)
  dump_sink : string -> unit;  (** where dumps go; default [print_string] *)
}

val default_options : options

val set_options : options -> unit
(** Compatibility shim: replace the process-wide default that applies
    when [?options] is omitted.  New code should pass [?options] (or a
    driver config) instead. *)

val current_options : unit -> options
(** The process-wide default (an [Atomic.t] under the hood). *)

val with_options : options -> (unit -> 'a) -> 'a
(** Run with a temporary process-wide default, restoring the previous
    one on exit.  Kept for tests of the shim itself; per-compile code
    should pass [?options]. *)

(** {1 Running} *)

exception Verification_failed of string
(** A semantics-preserving pass changed observable behaviour (return
    value, a scalar global, or a memory) on a verification vector. *)

val run :
  ?options:options -> pipeline -> Ast.program -> entry:string ->
  Lower.result * trace
(** Apply the program passes, lower the entry function, then apply the
    CIR passes; the returned {!Lower.result} carries the final function.
    [options] defaults to {!current_options}[ ()].
    @raise Lower.Error as {!Lower.lower_program} does — the payload
    carries the offending AST location for [file:line:col] diagnostics.
    @raise Verification_failed under [options.verify] on divergence. *)

val run_program_passes :
  ?options:options -> pipeline -> Ast.program -> entry:string ->
  Ast.program * trace
(** The source-level prefix only — for backends that never lower
    (Cones' symbolic execution, C2Verilog's stack-machine compiler) and
    for paths that need the transformed AST itself.  [entry] names the
    function the source-level differential checks execute. *)

val lower_simplify :
  ?options:options -> Ast.program -> entry:string -> Lower.result * trace
(** The default [lower; simplify] pipeline shared by the CLI, benches and
    examples. *)
