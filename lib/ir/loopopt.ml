(* Source-level loop transformations (AST -> AST).

   These are the "recoding" steps the paper says the implicit-clocking
   languages force on designers: Transmogrifier C charges one cycle per
   loop iteration, so meeting timing "may need loops unrolled"; Handel-C
   charges one cycle per assignment, so temporaries "may require assignment
   statements to be fused".  Experiment E4 applies these mechanically and
   measures the cycle-count effect; the Cones backend uses full unrolling
   to flatten loops into combinational logic. *)

exception Not_unrollable of string

(* Substitute expression [value] for variable [var] in an expression. *)
let rec subst_expr var value (e : Ast.expr) : Ast.expr =
  let sub = subst_expr var value in
  let desc =
    match e.Ast.e with
    | Ast.Var name when String.equal name var -> value.Ast.e
    | Ast.Var _ | Ast.Const _ | Ast.Chan_recv _ -> e.Ast.e
    | Ast.Unop (op, a) -> Ast.Unop (op, sub a)
    | Ast.Binop (op, a, b) -> Ast.Binop (op, sub a, sub b)
    | Ast.Assign (l, r) -> Ast.Assign (sub l, sub r)
    | Ast.Cond (c, t, f) -> Ast.Cond (sub c, sub t, sub f)
    | Ast.Call (f, args) -> Ast.Call (f, List.map sub args)
    | Ast.Index (b, i) -> Ast.Index (sub b, sub i)
    | Ast.Deref a -> Ast.Deref (sub a)
    | Ast.Addr_of a -> Ast.Addr_of (sub a)
    | Ast.Cast (ty, a) -> Ast.Cast (ty, sub a)
  in
  { e with Ast.e = desc }

let rec subst_stmt var value (st : Ast.stmt) : Ast.stmt =
  let sub_e = subst_expr var value in
  let sub_b = List.map (subst_stmt var value) in
  let shadowed_in_decl = function
    | { Ast.s = Ast.Decl (_, name, _); _ } -> String.equal name var
    | _ -> false
  in
  let desc =
    match st.Ast.s with
    | Ast.Expr e -> Ast.Expr (sub_e e)
    | Ast.Decl (ty, name, init) when String.equal name var ->
      (* shadowing declaration: initializer still sees the outer value *)
      Ast.Decl (ty, name, Option.map sub_e init)
    | Ast.Decl (ty, name, init) -> Ast.Decl (ty, name, Option.map sub_e init)
    | Ast.If (c, t, f) -> Ast.If (sub_e c, sub_b t, sub_b f)
    | Ast.While (c, b) -> Ast.While (sub_e c, sub_b b)
    | Ast.Do_while (b, c) -> Ast.Do_while (sub_b b, sub_e c)
    | Ast.For (init, cond, step, body) ->
      if Option.fold ~none:false ~some:shadowed_in_decl init then st.Ast.s
      else
        Ast.For
          ( Option.map (subst_stmt var value) init,
            Option.map sub_e cond,
            Option.map sub_e step,
            sub_b body )
    | Ast.Return e -> Ast.Return (Option.map sub_e e)
    | Ast.Break -> Ast.Break
    | Ast.Continue -> Ast.Continue
    | Ast.Block b -> Ast.Block (sub_b b)
    | Ast.Par branches -> Ast.Par (List.map sub_b branches)
    | Ast.Chan_send (ch, e) -> Ast.Chan_send (ch, sub_e e)
    | Ast.Delay -> Ast.Delay
    | Ast.Constrain (lo, hi, b) -> Ast.Constrain (lo, hi, sub_b b)
  in
  { st with Ast.s = desc }

let assigns_to var body =
  let found = ref false in
  List.iter
    (Ast.iter_stmt
       ~stmt:(fun _ -> ())
       ~expr:(fun e ->
         match e.Ast.e with
         | Ast.Assign ({ e = Ast.Var name; _ }, _) when String.equal name var
           -> found := true
         | _ -> ()))
    body;
  !found

let uses_break_or_continue body =
  let found = ref false in
  (* only break/continue belonging to *this* loop matter; nested loops keep
     theirs.  We approximate by scanning without descending into nested
     loops. *)
  let rec scan st =
    match st.Ast.s with
    | Ast.Break | Ast.Continue -> found := true
    | Ast.If (_, t, f) ->
      List.iter scan t;
      List.iter scan f
    | Ast.Block b | Ast.Constrain (_, _, b) -> List.iter scan b
    | Ast.While _ | Ast.Do_while _ | Ast.For _ -> ()
    | Ast.Expr _ | Ast.Decl _ | Ast.Return _ | Ast.Par _ | Ast.Chan_send _
    | Ast.Delay -> ()
  in
  List.iter scan body;
  !found

let int_const n =
  Ast.mk_expr (Ast.Const (Int64.of_int n, Ctypes.int_t))

(** Fully unroll a bounded counting loop: each iteration becomes a copy of
    the body with the induction variable replaced by its constant value. *)
let fully_unroll_for ~init ~cond ~step ~body : Ast.block =
  match Loopform.recognize ~init ~cond ~step with
  | None -> raise (Not_unrollable "loop bounds are not static")
  | Some b -> (
    if assigns_to b.Loopform.var body then
      raise (Not_unrollable "body assigns to the induction variable");
    if uses_break_or_continue body then
      raise (Not_unrollable "body uses break/continue");
    match Loopform.iteration_values b with
    | None -> raise (Not_unrollable "loop may not terminate")
    | Some values ->
      List.map
        (fun v ->
          Ast.mk_stmt
            (Ast.Block
               (List.map (subst_stmt b.Loopform.var (int_const v)) body)))
        values)

(** Partially unroll by [factor]: the body is replicated with induction
    offsets 0, step, 2*step, ... and the loop advances by factor*step.
    Requires the trip count to be divisible by [factor]. *)
let partially_unroll_for ~factor ~init ~cond ~step ~body :
    Ast.stmt =
  if factor < 2 then raise (Not_unrollable "factor must be >= 2");
  match Loopform.recognize ~init ~cond ~step with
  | None -> raise (Not_unrollable "loop bounds are not static")
  | Some b -> (
    if assigns_to b.Loopform.var body then
      raise (Not_unrollable "body assigns to the induction variable");
    if uses_break_or_continue body then
      raise (Not_unrollable "body uses break/continue");
    match Loopform.trip_count b with
    | None -> raise (Not_unrollable "loop may not terminate")
    | Some n when n mod factor <> 0 ->
      raise (Not_unrollable "trip count not divisible by factor")
    | Some _ ->
      let var_expr = Ast.mk_expr (Ast.Var b.Loopform.var) in
      let copies =
        List.concat_map
          (fun k ->
            let offset = k * b.Loopform.step in
            let replacement =
              if offset = 0 then var_expr
              else
                Ast.mk_expr
                  (Ast.Binop (Ast.Add, var_expr, int_const offset))
            in
            [ Ast.mk_stmt
                (Ast.Block
                   (List.map (subst_stmt b.Loopform.var replacement) body)) ])
          (List.init factor Fun.id)
      in
      let new_step =
        Ast.mk_expr
          (Ast.Assign
             ( var_expr,
               Ast.mk_expr
                 (Ast.Binop
                    ( Ast.Add,
                      var_expr,
                      int_const (b.Loopform.step * factor) )) ))
      in
      Ast.mk_stmt (Ast.For (init, cond, Some new_step, copies)))

(** Apply full unrolling to every bounded for loop in a function
    (recursively, innermost first). *)
let rec unroll_all_stmt (st : Ast.stmt) : Ast.stmt =
  let desc =
    match st.Ast.s with
    | Ast.For (init, cond, step, body) -> (
      let body = List.map unroll_all_stmt body in
      match fully_unroll_for ~init ~cond ~step ~body with
      | unrolled -> Ast.Block unrolled
      | exception Not_unrollable _ -> Ast.For (init, cond, step, body))
    | Ast.If (c, t, f) ->
      Ast.If (c, List.map unroll_all_stmt t, List.map unroll_all_stmt f)
    | Ast.While (c, b) -> Ast.While (c, List.map unroll_all_stmt b)
    | Ast.Do_while (b, c) -> Ast.Do_while (List.map unroll_all_stmt b, c)
    | Ast.Block b -> Ast.Block (List.map unroll_all_stmt b)
    | Ast.Par branches -> Ast.Par (List.map (List.map unroll_all_stmt) branches)
    | Ast.Constrain (lo, hi, b) ->
      Ast.Constrain (lo, hi, List.map unroll_all_stmt b)
    | Ast.Expr _ | Ast.Decl _ | Ast.Return _ | Ast.Break | Ast.Continue
    | Ast.Chan_send _ | Ast.Delay -> st.Ast.s
  in
  { st with Ast.s = desc }

let unroll_all_func (f : Ast.func) : Ast.func =
  { f with Ast.f_body = List.map unroll_all_stmt f.Ast.f_body }

let unroll_all_program (p : Ast.program) : Ast.program =
  { p with Ast.funcs = List.map unroll_all_func p.Ast.funcs }

(** Partial unrolling by a fixed factor across a whole program — the
    configurable knob form of the recoding above.  Every bounded for loop
    whose trip count divides by [factor] is replicated [factor] times per
    iteration (innermost first); loops that cannot unroll (non-static
    bounds, break/continue, indivisible trip counts) are left in place,
    so the transform is total and semantics-preserving. *)
let rec unroll_factor_stmt ~factor (st : Ast.stmt) : Ast.stmt =
  let walk = unroll_factor_stmt ~factor in
  let desc =
    match st.Ast.s with
    | Ast.For (init, cond, step, body) -> (
      let body = List.map walk body in
      match partially_unroll_for ~factor ~init ~cond ~step ~body with
      | unrolled -> unrolled.Ast.s
      | exception Not_unrollable _ -> Ast.For (init, cond, step, body))
    | Ast.If (c, t, f) -> Ast.If (c, List.map walk t, List.map walk f)
    | Ast.While (c, b) -> Ast.While (c, List.map walk b)
    | Ast.Do_while (b, c) -> Ast.Do_while (List.map walk b, c)
    | Ast.Block b -> Ast.Block (List.map walk b)
    | Ast.Par branches -> Ast.Par (List.map (List.map walk) branches)
    | Ast.Constrain (lo, hi, b) -> Ast.Constrain (lo, hi, List.map walk b)
    | Ast.Expr _ | Ast.Decl _ | Ast.Return _ | Ast.Break | Ast.Continue
    | Ast.Chan_send _ | Ast.Delay -> st.Ast.s
  in
  { st with Ast.s = desc }

let unroll_factor_program ~factor (p : Ast.program) : Ast.program =
  if factor < 2 then p
  else
    { p with
      Ast.funcs =
        List.map
          (fun f ->
            { f with
              Ast.f_body = List.map (unroll_factor_stmt ~factor) f.Ast.f_body })
          p.Ast.funcs }

(* --- assignment fusion (Handel-C recoding) --- *)

let count_uses var stmts =
  let count = ref 0 in
  List.iter
    (Ast.iter_stmt
       ~stmt:(fun _ -> ())
       ~expr:(fun e ->
         match e.Ast.e with
         | Ast.Var name when String.equal name var -> incr count
         | _ -> ()))
    stmts;
  !count

let count_assigns var stmts =
  let count = ref 0 in
  List.iter
    (Ast.iter_stmt
       ~stmt:(fun st ->
         match st.Ast.s with
         | Ast.Decl (_, name, Some _) when String.equal name var -> incr count
         | _ -> ())
       ~expr:(fun e ->
         match e.Ast.e with
         | Ast.Assign ({ e = Ast.Var name; _ }, _) when String.equal name var
           -> incr count
         | _ -> ()))
    stmts;
  !count

(* Safe to substitute [init] for its single use inside [consumer]?
   The use must be in the very next statement, that statement's computed
   expression must be pure apart from its own outermost store (which
   happens after evaluation), and it must not be control flow — otherwise
   something could modify init's inputs between definition and use (the
   classic `t = a+b; a = b; b = t` swap must NOT fuse). *)
let single_use_in_next_statement name init (consumer : Ast.stmt) =
  ignore init;
  match consumer.Ast.s with
  | Ast.Expr { e = Ast.Assign (lhs, rhs); _ } ->
    Lower.expr_pure rhs
    && count_uses name [ Ast.mk_stmt (Ast.Expr rhs) ] = 1
    && count_uses name [ Ast.mk_stmt (Ast.Expr lhs) ] = 0
  | Ast.Decl (_, _, Some rhs) ->
    Lower.expr_pure rhs && count_uses name [ Ast.mk_stmt (Ast.Expr rhs) ] = 1
  | Ast.Return (Some rhs) ->
    Lower.expr_pure rhs && count_uses name [ Ast.mk_stmt (Ast.Expr rhs) ] = 1
  | Ast.Expr _ | Ast.Decl _ | Ast.Return None | Ast.If _ | Ast.While _
  | Ast.Do_while _ | Ast.For _ | Ast.Break | Ast.Continue | Ast.Block _
  | Ast.Par _ | Ast.Chan_send _ | Ast.Delay | Ast.Constrain _ -> false

(** Fuse single-use pure temporaries into their immediately following
    consumer within a straight-line block: `int t = a+b; x = t*c;` becomes
    `x = (a+b)*c;`.  In Handel-C this saves one clock cycle per fused
    temporary.  Only the directly-next statement is considered so nothing
    can intervene between the temporary's definition and its use. *)
let rec fuse_block (stmts : Ast.block) : Ast.block =
  match stmts with
  | [] -> []
  | { Ast.s = Ast.Decl (_, name, Some init); _ } :: (consumer :: _ as rest)
    when Lower.expr_pure init
         && count_uses name rest = 1
         && count_assigns name rest = 0
         && single_use_in_next_statement name init consumer ->
    (* substitute and drop the temporary *)
    fuse_block (List.map (subst_stmt name init) rest)
  | ({ Ast.s = Ast.Block inner; _ } as st) :: rest ->
    { st with Ast.s = Ast.Block (fuse_block inner) } :: fuse_block rest
  | st :: rest -> fuse_stmt st :: fuse_block rest

and fuse_stmt (st : Ast.stmt) : Ast.stmt =
  let desc =
    match st.Ast.s with
    | Ast.If (c, t, f) -> Ast.If (c, fuse_block t, fuse_block f)
    | Ast.While (c, b) -> Ast.While (c, fuse_block b)
    | Ast.Do_while (b, c) -> Ast.Do_while (fuse_block b, c)
    | Ast.For (init, cond, step, body) ->
      Ast.For (init, cond, step, fuse_block body)
    | Ast.Block b -> Ast.Block (fuse_block b)
    | Ast.Par branches -> Ast.Par (List.map fuse_block branches)
    | Ast.Constrain (lo, hi, b) -> Ast.Constrain (lo, hi, fuse_block b)
    | Ast.Expr _ | Ast.Decl _ | Ast.Return _ | Ast.Break | Ast.Continue
    | Ast.Chan_send _ | Ast.Delay -> st.Ast.s
  in
  { st with Ast.s = desc }

let fuse_func (f : Ast.func) : Ast.func =
  { f with Ast.f_body = fuse_block f.Ast.f_body }

let fuse_program (p : Ast.program) : Ast.program =
  { p with Ast.funcs = List.map fuse_func p.Ast.funcs }
