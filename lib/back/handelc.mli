(** Handel-C backend [Celoxica] — and the concurrent Bach C variant.

    A cycle-accurate statement machine over the interpreter's expression
    semantics: assignments and [delay] cost exactly one cycle, control is
    free (unbounded zero-cost stepping is rejected as a combinational
    cycle), a rendezvous transfer costs one cycle for both endpoints.
    The [`Scheduled] policy instead packs independent assignments per
    cycle (Bach C's compiler-decided timing for concurrent programs).

    Sequential programs additionally get a structural view — an FSMD cut
    at assignment boundaries, elaborated to a netlist — behind
    [Design.area]/[Design.verilog]. *)

exception Combinational_loop
exception Deadlock
exception Timeout

type policy = [ `One_cycle_per_assignment | `Scheduled ]

type outcome = {
  return_value : Bitvec.t option;
  cycles : int;
  assignments : int;  (** dynamic assignment count *)
  store : Interp.store;
}

val run :
  ?max_cycles:int -> ?ops_per_cycle:int -> policy:policy -> Ast.program ->
  entry:string -> args:Bitvec.t list -> outcome
(** Run the statement machine to completion.
    @raise Deadlock / Timeout / Combinational_loop as named. *)

val estimate_clock_period : Ast.program -> float
(** The deepest assignment expression's combinational delay: Handel-C's
    achievable clock (assignments must settle in one cycle). *)

val estimate_area : Ast.program -> float
(** Dedicated hardware per static assignment plus variable registers. *)

val uses_concurrency : Ast.program -> bool
(** Any [par] arm or channel operation anywhere in the program — the
    constructs only the statement machine executes.  Backends whose
    dialect allows them route such programs here instead of their
    scheduled-FSMD path. *)

val compile_with_policy :
  backend_name:string -> dialect:Dialect.t ->
  policy:[ `One_per_assignment | `Scheduled ] ->
  ?program_passes:Passes.program_pass list -> ?knobs:Backend.knobs ->
  Ast.program -> entry:string -> Design.t
(** [program_passes] are source-level recodings declared to the pass
    manager (timed, differentially checked); the statement machine runs
    the transformed program.  [knobs] (default {!Backend.default_knobs})
    supplies the per-compile pass options and the unroll factor.  When
    the sequential structural view cannot be lowered, the reason appears
    as a ["structural view"] diagnostic in the design's stats. *)

val dialect : Dialect.t

val pipeline : Passes.pipeline
(** The structural view's pipeline: [lower; simplify]. *)

val compile : ?knobs:Backend.knobs -> Ast.program -> entry:string -> Design.t
(** The Handel-C rule: one cycle per assignment. *)

val compile_fused : Ast.program -> entry:string -> Design.t
(** E4's recoding: fuse single-use temporaries first. *)

val descriptor : Backend.descriptor
