(* The C2Verilog execution engine: a word stack machine with a code ROM
   and one unified RAM, simulated cycle-by-cycle under the backend's rule
   set — and its Design.t wrapper.

   Memory map (word addresses):
     [0, stack_base)         scalar and array globals
     [stack_base, heap_base) the combined evaluation/call stack, growing up
     [heap_base, ...)        the malloc heap, bump-allocated

   The invariant maintained throughout is that every stored word is
   already masked to its C type's width, so each [Bin (op, w)]
   reinterprets its operands at width [w] and pushes a masked result. *)

exception Runtime_error of string
exception Timeout

let error fmt = Printf.ksprintf (fun m -> raise (Runtime_error m)) fmt

type state = {
  compiled : C2verilog.compiled;
  mem : Bitvec.t array; (* 64-bit words, each masked to its value width *)
  mutable pc : int;
  mutable sp : int; (* next free slot *)
  mutable fp : int;
  mutable hp : int; (* heap bump pointer *)
  mutable cycles : int;
  mutable executed : int;
}

let word_width = 64

let push st v =
  if st.sp >= st.compiled.C2verilog.heap_base then error "stack overflow";
  st.mem.(st.sp) <- Bitvec.zero_extend ~width:word_width v;
  st.sp <- st.sp + 1

let pop st =
  if st.sp <= 0 then error "stack underflow";
  st.sp <- st.sp - 1;
  st.mem.(st.sp)

let at_width w v = Bitvec.resize ~signed:false ~width:w v

let step st =
  let code = st.compiled.C2verilog.code in
  if st.pc < 0 || st.pc >= Array.length code then error "pc out of range";
  let instr = code.(st.pc) in
  st.cycles <- st.cycles + C2verilog.cycles_of_instr instr;
  st.executed <- st.executed + 1;
  let next = st.pc + 1 in
  (match instr with
  | C2verilog.Push v ->
    push st (Bitvec.of_int64 ~width:word_width v);
    st.pc <- next
  | C2verilog.Push_global_addr a ->
    push st (Bitvec.of_int ~width:32 a);
    st.pc <- next
  | C2verilog.Push_frame_addr off ->
    push st (Bitvec.of_int ~width:32 (st.fp + off));
    st.pc <- next
  | C2verilog.Load ->
    let addr = Bitvec.to_int_unsigned (pop st) in
    if addr >= Array.length st.mem then error "load out of memory (%d)" addr;
    push st st.mem.(addr);
    st.pc <- next
  | C2verilog.Store ->
    let v = pop st in
    let addr = Bitvec.to_int_unsigned (pop st) in
    if addr >= Array.length st.mem then error "store out of memory (%d)" addr;
    st.mem.(addr) <- v;
    st.pc <- next
  | C2verilog.Bin (op, w) ->
    let b = at_width w (pop st) in
    let a = at_width w (pop st) in
    push st (Neteval.apply_binop op a b);
    st.pc <- next
  | C2verilog.Un (op, w) ->
    let a = at_width w (pop st) in
    push st (Neteval.apply_unop op a);
    st.pc <- next
  | C2verilog.Cast { signed; from_width; to_width } ->
    let v = Bitvec.resize ~signed:false ~width:from_width (pop st) in
    push st (Bitvec.resize ~signed ~width:to_width v);
    st.pc <- next
  | C2verilog.Dup ->
    let v = pop st in
    push st v;
    push st v;
    st.pc <- next
  | C2verilog.Drop ->
    ignore (pop st);
    st.pc <- next
  | C2verilog.Jump target -> st.pc <- target
  | C2verilog.Jump_if_zero target ->
    let v = pop st in
    st.pc <- (if Bitvec.is_zero v then target else next)
  | C2verilog.Call (target, _nargs) ->
    push st (Bitvec.of_int ~width:32 next);
    st.pc <- target
  | C2verilog.Enter locals ->
    push st (Bitvec.of_int ~width:32 st.fp);
    st.fp <- st.sp;
    if st.sp + locals >= st.compiled.C2verilog.heap_base then
      error "stack overflow";
    (* locals read as zero *)
    for i = st.sp to st.sp + locals - 1 do
      st.mem.(i) <- Bitvec.zero word_width
    done;
    st.sp <- st.sp + locals;
    st.pc <- next
  | C2verilog.Ret { args; has_value } ->
    let value = if has_value then Some (pop st) else None in
    st.sp <- st.fp;
    let saved_fp = Bitvec.to_int_unsigned st.mem.(st.sp - 1) in
    let ret_pc = Bitvec.to_int_unsigned st.mem.(st.sp - 2) in
    st.sp <- st.sp - 2 - args;
    st.fp <- saved_fp;
    (match value with Some v -> push st v | None -> ());
    st.pc <- ret_pc
  | C2verilog.Alloc ->
    let words = max 1 (Bitvec.to_int (at_width 32 (pop st))) in
    if st.hp + words >= Array.length st.mem then error "heap exhausted";
    push st (Bitvec.of_int ~width:32 st.hp);
    st.hp <- st.hp + words;
    st.pc <- next
  | C2verilog.Halt _ -> error "halt reached outside the boot protocol")

type outcome = {
  return_value : Bitvec.t option;
  cycles : int;
  instructions_executed : int;
  globals : (string * Bitvec.t) list;
  memories : (string * Bitvec.t array) list;
}

let run ?(max_cycles = 50_000_000) (compiled : C2verilog.compiled)
    ~(ret_width : int) ~args : outcome =
  let st =
    { compiled;
      mem = Array.make compiled.C2verilog.memory_words (Bitvec.zero word_width);
      pc = compiled.C2verilog.entry_pc;
      sp = compiled.C2verilog.stack_base;
      fp = compiled.C2verilog.stack_base;
      hp = compiled.C2verilog.heap_base;
      cycles = 0;
      executed = 0 }
  in
  List.iter (fun (addr, v) -> st.mem.(addr) <- v) compiled.C2verilog.initial_memory;
  if List.length args <> compiled.C2verilog.entry_args then
    error "expected %d arguments" compiled.C2verilog.entry_args;
  (* boot protocol: args, then a return pc beyond the code *)
  let halt_pc = Array.length compiled.C2verilog.code in
  List.iter (fun v -> push st v) args;
  push st (Bitvec.of_int ~width:32 halt_pc);
  while st.pc <> halt_pc do
    if st.cycles > max_cycles then raise Timeout;
    step st
  done;
  let return_value =
    if ret_width > 0 && st.sp > compiled.C2verilog.stack_base then
      Some (Bitvec.resize ~signed:false ~width:ret_width (pop st))
    else None
  in
  let read_layout () =
    Hashtbl.fold
      (fun name (b : C2verilog.var_binding) (scalars, arrays) ->
        match b.C2verilog.ty with
        | Ctypes.Array (elt, n) ->
          let w = max 1 (Ctypes.width elt) in
          ( scalars,
            ( name,
              Array.init n (fun i ->
                  Bitvec.resize ~signed:false ~width:w
                    st.mem.(b.C2verilog.offset + i)) )
            :: arrays )
        | Ctypes.Void | Ctypes.Integer _ | Ctypes.Pointer _
        | Ctypes.Function _ ->
          let w = max 1 (Ctypes.width b.C2verilog.ty) in
          ( ( name,
              Bitvec.resize ~signed:false ~width:w st.mem.(b.C2verilog.offset) )
            :: scalars,
            arrays ))
      compiled.C2verilog.globals_layout ([], [])
  in
  let globals, memories = read_layout () in
  { return_value;
    cycles = st.cycles;
    instructions_executed = st.executed;
    globals;
    memories }

(* --- Design wrapper --- *)

(* C2Verilog compiles the AST straight to stack code (pointers and
   recursion need the unified memory, not CIR's partitioned model), so
   its declared pipeline is source-only and empty. *)
let pipeline = Passes.pipeline "c2verilog" ~lowers:false

let compile ?(knobs = Backend.default_knobs) (program : Ast.program) ~entry :
    Design.t =
  Backend.reject_if_illegal ~backend:"c2verilog" Dialect.c2verilog program;
  let program, pass_trace =
    Passes.run_program_passes ~options:knobs.Backend.pass_options pipeline
      program ~entry
  in
  let compiled = C2verilog.compile_program program ~entry in
  let verilog = lazy (C2v_verilog.to_string compiled ~name:entry) in
  let ret_width =
    match Ast.find_func program entry with
    | Some f -> max 0 (Ctypes.width f.Ast.f_ret)
    | None -> 0
  in
  let pointer_info = Pointer.analyze program in
  let run ?vcd:_ ?sim:_ args =
    let outcome = run compiled ~ret_width ~args in
    let metrics = Metrics.create () in
    Metrics.set_int metrics "sim.cycles" outcome.cycles;
    { Design.result = outcome.return_value;
      globals = outcome.globals;
      memories = outcome.memories;
      cycles = Some outcome.cycles;
      time_units = None;
      metrics }
  in
  let code_words = Array.length compiled.C2verilog.code in
  { Design.design_name = entry;
    backend = "c2verilog";
    run;
    area =
      (fun () ->
        (* fixed CPU datapath + code ROM + unified RAM *)
        let cpu = 9_000. in
        let rom = float_of_int (code_words * 40) in
        let ram_bits = compiled.C2verilog.memory_words * 64 in
        Some
          { Area.combinational_area = cpu;
            register_area = 600.;
            memory_bits = ram_bits + (code_words * 40);
            memory_area = rom +. float_of_int ram_bits;
            total_area = cpu +. 600. +. rom +. float_of_int ram_bits;
            critical_path = 30.;
            num_nodes = code_words;
            num_registers = 4 })
    ;
    verilog = (fun () -> Some (Lazy.force verilog));
    netlist = (fun () -> None);
    clock_period = Some 30.;
    stats =
      [ ("code words", string_of_int code_words);
        ("unified memory words",
         string_of_int compiled.C2verilog.memory_words);
        ("pointers fully partitionable",
         string_of_bool (Pointer.fully_partitionable pointer_info)) ];
    pass_trace }

let descriptor =
  Backend.make ~name:"c2verilog" ~aliases:[ "c2v" ]
    ~pipeline:(Some pipeline)
    ~description:"full ANSI C on a synthesized stack machine with one \
                  unified memory"
    ~dialect:Dialect.c2verilog
    (fun ~knobs program ~entry -> compile ~knobs program ~entry)
