(* HardwareC backend [Ku & De Micheli, 1990], the Olympus system's input.

   The paper: "Typical in high-level synthesis, HardwareC supports timing
   constraints such as 'these three statements must execute in two
   cycles'.  While such constraints can be subtle for the designer and
   challenging for the compiler, they allow easier design-space
   exploration."

   Realization: the scheduled-FSMD path plus `constrain(min,max){...}`
   blocks.  Compilation first schedules under the requested allocation; if
   any max-cycle constraint is violated it walks the allocation lattice
   (Constrain.explore) until the constraints hold — the design-space
   exploration the paper describes — and reports the trail.  Min-cycle
   constraints are met by padding empty states. *)

exception Unsatisfiable of string

let dialect = Dialect.hardwarec

(* No CFG simplification: constrain(min,max) ranges name block ids and
   instruction indices from the raw lowering, which simplify would
   invalidate. *)
let pipeline = Passes.pipeline "hardwarec"

type report = {
  statuses : Constrain.status list; (* final constraint status *)
  exploration : (string * int * bool) list; (* allocation, steps, ok *)
  chosen_allocation : string;
}

let compile ?(knobs = Backend.default_knobs) ?resources
    (program : Ast.program) ~entry : Design.t * report =
  let resources =
    match resources with Some r -> r | None -> knobs.Backend.resources
  in
  Backend.reject_if_illegal ~backend:"hardwarec" dialect program;
  if Handelc.uses_concurrency program then
    (* HardwareC's process-level parallelism and message passing run on
       the statement machine; the allocation lattice and constraint
       exploration only apply to the scheduled sequential path, so the
       report is empty.  [constrain] blocks execute their body (the
       machine has no schedule to check them against). *)
    ( Handelc.compile_with_policy ~backend_name:"hardwarec" ~dialect
        ~policy:`Scheduled ~knobs program ~entry,
      { statuses = [];
        exploration = [];
        chosen_allocation = "statement machine (concurrent)" } )
  else
  (* No pipeline specialization: constrain ranges name raw block ids, so
     even the unroll knob must not reshape the source here.  Only the
     pass options (verify/dump) flow through. *)
  let lowered, pass_trace =
    Passes.run ~options:knobs.Backend.pass_options pipeline program ~entry
  in
  let func = lowered.Lower.func in
  let constraints = Constrain.of_lowering lowered.Lower.constraints in
  (* pick an allocation meeting all max constraints, per block *)
  let blocks_with_constraints =
    List.sort_uniq compare (List.map (fun c -> c.Constrain.block) constraints)
  in
  let exploration = ref [] in
  let chosen = ref ("requested allocation", resources) in
  List.iter
    (fun b ->
      let instrs = (Cir.block func b).Cir.instrs in
      let sched = Schedule.list_schedule func (snd !chosen) instrs in
      let statuses = Constrain.check constraints ~block:b sched in
      if
        List.exists
          (fun s -> s.Constrain.actual_cycles > s.Constrain.constraint_.Constrain.max_cycles)
          statuses
      then begin
        match Constrain.explore func constraints ~block:b instrs with
        | Some (label, r), trail ->
          exploration := !exploration @ trail;
          chosen := (label, r)
        | None, trail ->
          exploration := !exploration @ trail;
          raise
            (Unsatisfiable
               (Printf.sprintf
                  "no allocation meets the timing constraints of block %d" b))
      end)
    blocks_with_constraints;
  let _, allocation = !chosen in
  (* schedule every block with the chosen allocation; pad blocks whose
     constrained ranges finish too quickly (min-cycle constraints) *)
  let schedule_block (blk : Cir.block) =
    let sched = Schedule.list_schedule func allocation blk.Cir.instrs in
    let min_required =
      List.fold_left
        (fun acc c ->
          if c.Constrain.block = blk.Cir.b_id then
            max acc c.Constrain.min_cycles
          else acc)
        0 constraints
    in
    if sched.Schedule.num_steps >= min_required then sched
    else
      { sched with
        Schedule.num_steps = min_required;
        step_delay =
          Array.append sched.Schedule.step_delay
            (Array.make (min_required - sched.Schedule.num_steps) 0.) }
  in
  let statuses =
    List.concat_map
      (fun b ->
        let sched = schedule_block (Cir.block func b) in
        Constrain.check constraints ~block:b sched)
      blocks_with_constraints
  in
  let fsmd = Fsmd.of_func func ~schedule_block in
  let engine = lazy (Fsmdcomp.create fsmd) in
  let run ?vcd ?sim args = Fsmd_common.simulate ~engine ?vcd ?sim fsmd ~args in
  let elaborated = lazy (Rtlgen.elaborate fsmd) in
  let design =
    { Design.design_name = entry;
      backend = "hardwarec";
      run;
      area =
        (fun () ->
          match Lazy.force elaborated with
          | e -> Some (Area.analyze e.Rtlgen.netlist)
          | exception Rtlgen.Elaboration_error _ -> None);
      verilog =
        (fun () ->
          match Lazy.force elaborated with
          | e -> Some (Verilog.to_string e.Rtlgen.netlist)
          | exception Rtlgen.Elaboration_error _ -> None);
      netlist =
        (fun () ->
          match Lazy.force elaborated with
          | e -> Some e.Rtlgen.netlist
          | exception Rtlgen.Elaboration_error _ -> None);
      clock_period = Some (Float.max 1. (Fsmd.critical_state_delay fsmd));
      stats =
        [ ("states", string_of_int (Fsmd.num_states fsmd));
          ("constraints", string_of_int (List.length constraints));
          ("allocation", fst !chosen) ];
      pass_trace }
  in
  ( design,
    { statuses; exploration = !exploration; chosen_allocation = fst !chosen } )

(* The exploration report used to be discarded (the facade kept only the
   design); surface it through the design stats so the registry path,
   [chlsc compile --trace-passes] and [chlsc compare] can show the
   constraint-exploration trail. *)
let stats_of_report (r : report) =
  let met =
    if List.for_all (fun s -> s.Constrain.satisfied) r.statuses then "met"
    else "violated"
  in
  ("constraint-status",
   Printf.sprintf "%d constraint(s) %s" (List.length r.statuses) met)
  ::
  (match r.exploration with
  | [] -> []
  | trail ->
    [ ("constraint-exploration",
       String.concat "; "
         (List.map
            (fun (alloc, steps, ok) ->
              Printf.sprintf "%s: %d steps%s" alloc steps
                (if ok then "" else " (violated)"))
            trail)) ])

let compile_reporting ?knobs program ~entry =
  let design, report = compile ?knobs program ~entry in
  { design with Design.stats = design.Design.stats @ stats_of_report report }

let descriptor =
  Backend.make ~name:"hardwarec"
    ~capabilities:{ Backend.default_capabilities with
                    Backend.constraint_reports = true }
    ~pipeline:(Some pipeline)
    ~description:"scheduled FSMD exploring allocations under [constrain] \
                  timing bounds"
    ~dialect:Dialect.hardwarec
    (fun ~knobs program ~entry -> compile_reporting ~knobs program ~entry)
