(* CASH backend [Budiu & Goldstein, FPL 2002].

   "Compiling application-specific hardware": ANSI C (our pointer-free
   subset) -> SSA -> Pegasus-style asynchronous dataflow circuit, executed
   by the timed token simulator.  No clock exists; performance is the
   dynamic critical path, and the circuit exploits exactly the
   instruction-level parallelism the dependences allow — the
   compiler-finds-all-parallelism end of the paper's concurrency spectrum,
   taken to its logical extreme. *)

let dialect = Dialect.cash

(* No CFG simplification: the Pegasus-style circuit is built from the SSA
   of the raw lowering, where every tiny block is just a cheap merge. *)
let pipeline = Passes.pipeline "cash"

let compile ?(timing = Asim.default_timing) (program : Ast.program) ~entry :
    Design.t =
  (match Dialect.check dialect program with
  | [] -> ()
  | { Dialect.rule; where } :: _ ->
    failwith (Printf.sprintf "cash: %s (in %s)" rule where));
  let lowered, pass_trace = Passes.run pipeline program ~entry in
  let ssa = Ssa.of_func lowered.Lower.func in
  let circuit = Dfg.of_ssa ssa in
  let stats = Dfg.stats circuit in
  let run args =
    let outcome = Asim.run ~timing ssa ~args in
    { Design.result = outcome.Asim.return_value;
      globals = outcome.Asim.globals;
      memories = outcome.Asim.memories;
      cycles = None;
      time_units = Some outcome.Asim.completion_time;
      sim_stats = [] }
  in
  { Design.design_name = entry;
    backend = "cash";
    run;
    area =
      (fun () ->
        Some
          { Area.combinational_area = Dfg.area circuit;
            register_area = 0.;
            memory_bits = 0;
            memory_area = 0.;
            total_area = Dfg.area circuit;
            critical_path = 0.;
            num_nodes = stats.Dfg.total;
            num_registers = 0 });
    verilog = (fun () -> None);
    netlist = (fun () -> None);
    clock_period = None;
    stats =
      [ ("dataflow nodes", string_of_int stats.Dfg.total);
        ("operators", string_of_int stats.Dfg.operators);
        ("merges (mu)", string_of_int stats.Dfg.merges);
        ("steers (eta)", string_of_int stats.Dfg.steers);
        ("memory ops", string_of_int stats.Dfg.memory_ops) ];
    pass_trace }
