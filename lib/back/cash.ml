(* CASH backend [Budiu & Goldstein, FPL 2002].

   "Compiling application-specific hardware": ANSI C (our pointer-free
   subset) -> SSA -> Pegasus-style asynchronous dataflow circuit, executed
   by the timed token simulator.  No clock exists; performance is the
   dynamic critical path, and the circuit exploits exactly the
   instruction-level parallelism the dependences allow — the
   compiler-finds-all-parallelism end of the paper's concurrency spectrum,
   taken to its logical extreme. *)

let dialect = Dialect.cash

(* No CFG simplification: the Pegasus-style circuit is built from the SSA
   of the raw lowering, where every tiny block is just a cheap merge. *)
let pipeline = Passes.pipeline "cash"

let compile ?(knobs = Backend.default_knobs) ?timing ?handshake
    (program : Ast.program) ~entry : Design.t =
  Backend.reject_if_illegal ~backend:"cash" dialect program;
  let lowered, pass_trace =
    Passes.run ~options:knobs.Backend.pass_options pipeline program ~entry
  in
  let ssa = Ssa.of_func lowered.Lower.func in
  (* SSA renaming grows the register file, and the token simulator
     executes the SSA: the timing model and the tracer must both see the
     SSA function's registers and widths *)
  let func = ssa.Ssa.func in
  let timing =
    match timing with
    | Some t -> t
    | None -> Asim.default_timing_for ?handshake func
  in
  let circuit = Dfg.of_ssa ssa in
  let stats = Dfg.stats circuit in
  let run ?vcd ?sim:_ args =
    let tracer = Option.map (fun v -> Trace.asim_tracer v func) vcd in
    let on_fire = Option.map fst tracer in
    let outcome = Asim.run ~timing ?on_fire ssa ~args in
    Option.iter (fun (_, finalize) -> finalize ()) tracer;
    let metrics = Metrics.create () in
    Metrics.set_int metrics "sim.tokens_fired" outcome.Asim.tokens_fired;
    Metrics.set_fixed metrics "sim.completion_time" ~decimals:1
      outcome.Asim.completion_time;
    { Design.result = outcome.Asim.return_value;
      globals = outcome.Asim.globals;
      memories = outcome.Asim.memories;
      cycles = None;
      time_units = Some outcome.Asim.completion_time;
      metrics }
  in
  { Design.design_name = entry;
    backend = "cash";
    run;
    area =
      (fun () ->
        Some
          { Area.combinational_area = Dfg.area circuit;
            register_area = 0.;
            memory_bits = 0;
            memory_area = 0.;
            total_area = Dfg.area circuit;
            critical_path = 0.;
            num_nodes = stats.Dfg.total;
            num_registers = 0 });
    verilog = (fun () -> None);
    netlist = (fun () -> None);
    clock_period = None;
    stats =
      [ ("dataflow nodes", string_of_int stats.Dfg.total);
        ("operators", string_of_int stats.Dfg.operators);
        ("merges (mu)", string_of_int stats.Dfg.merges);
        ("steers (eta)", string_of_int stats.Dfg.steers);
        ("memory ops", string_of_int stats.Dfg.memory_ops) ];
    pass_trace }

let descriptor =
  Backend.make ~name:"cash" ~pipeline:(Some pipeline)
    ~description:"asynchronous Pegasus-style dataflow circuit, no clock"
    ~dialect:Dialect.cash
    (fun ~knobs program ~entry -> compile ~knobs program ~entry)
