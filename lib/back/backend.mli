(** Backend self-description: the record every synthesis scheme exports.

    A backend is no longer a constructor in a closed variant — it is a
    descriptor carrying everything the rest of the system dispatched on
    (name, aliases, dialect, declared pipeline, the compile entry point)
    plus a capability record for the axes that used to hide behind
    special cases (the structural Ocapi EDSL has no C frontend; HardwareC
    attaches its constraint-exploration trail to the design stats).

    Descriptors are collected by {!Registry} in [lib/core]; backends only
    define the record, they never see the registry, so the dependency
    points one way.  Adding a twelfth backend means writing its module
    with a [descriptor] value and adding one registration line. *)

type capabilities = {
  c_frontend : bool;
      (** compiles C sources through the shared frontend; [false] for the
          structural Ocapi EDSL, whose designs are built in OCaml *)
  constraint_reports : bool;
      (** [compile] attaches a constraint-exploration trail
          ([constraints], [exploration]) to {!Design.t}[.stats]
          (HardwareC's design-space walk) *)
}

val default_capabilities : capabilities
(** [{ c_frontend = true; constraint_reports = false }] — the common
    C-compiling case. *)

(** {1 Knobs}

    The per-compile synthesis knobs every backend receives: the
    backend-facing half of the driver's configuration value.  [lib/core]
    builds one from a [Config.t]; backends read from it instead of
    hardcoding {!Schedule.default_allocation} or the process-global pass
    options, so two concurrent compiles with different settings cannot
    interfere. *)

type knobs = {
  resources : Schedule.resources;
      (** functional-unit / memory-port bounds and the chaining budget
          for the scheduling backends *)
  unroll_factor : int;
      (** partial-unroll factor applied as a source pass before the
          declared pipeline; 1 disables *)
  ii_limit : int;
      (** largest initiation interval modulo scheduling may try *)
  pass_options : Passes.options;
      (** verification vectors and dump hooks for this compile *)
}

val default_knobs : knobs
(** [default_allocation], unroll 1, {!Pipeline.ii_search_limit},
    {!Passes.default_options} — exactly the pre-config behaviour. *)

val specialize : knobs -> Passes.pipeline -> Passes.pipeline
(** Apply the source-level knobs to a declared pipeline: prepends
    {!Passes.unroll_factor_pass} when [unroll_factor >= 2], otherwise
    returns the pipeline unchanged. *)

type descriptor = {
  name : string;  (** canonical lowercase name ("bachc") *)
  aliases : string list;  (** alternate spellings ("bach") *)
  description : string;  (** one-line scheme summary for catalogs *)
  dialect : Dialect.t;  (** the surveyed language it implements *)
  pipeline : Passes.pipeline option;
      (** declared pass pipeline; [None] when no compilation pipeline
          runs (Ocapi) *)
  compile : knobs:knobs -> Ast.program -> entry:string -> Design.t;
      (** synthesize a checked program under the given knobs; raises
          {!No_c_frontend} for backends without a C frontend *)
  capabilities : capabilities;
}

exception No_c_frontend of string
(** Raised (with the backend name) by [compile] of a structural backend:
    there is no C source to compile — build designs directly (Ocapi). *)

exception
  Dialect_rejected of {
    backend : string;
    violations : Dialect.violation list;
  }
(** Raised by [compile] when the program breaks the backend dialect's
    published restrictions.  Carries every violation (rule, enclosing
    function, first offending location) so drivers report the rejection
    as a dialect property of the program, never an internal error. *)

val reject_if_illegal : backend:string -> Dialect.t -> Ast.program -> unit
(** Run {!Dialect.check} and raise {!Dialect_rejected} on the first
    non-empty result.  The single entry point every C-compiling backend
    guards its [compile] with. *)

val make :
  ?aliases:string list -> ?capabilities:capabilities ->
  ?pipeline:Passes.pipeline option -> name:string -> description:string ->
  dialect:Dialect.t ->
  (knobs:knobs -> Ast.program -> entry:string -> Design.t) ->
  descriptor
(** Descriptor smart constructor; [pipeline] defaults to [None] wrapped
    over nothing — pass [~pipeline:(Some p)] explicitly. *)
