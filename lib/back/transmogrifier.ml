(* Transmogrifier C backend [Galloway, FCCM 1995].

   The paper: "Transmogrifier C ... places cycle boundaries at function
   calls and at the beginning of while loops" and "in Transmogrifier C,
   only loop iterations and function calls take a cycle.  While simple to
   understand, such rules can require recoding to meet timing ... loops
   may need to be unrolled."

   Realization: calls are inlined during lowering (each call boundary is a
   block boundary) and each basic block becomes exactly one FSM state with
   everything chained combinationally — so cycle count == number of block
   transitions (loop iterations and call sites) and the clock period grows
   with the longest chained block, which is precisely the language's
   timing pathology.  Memories are register files (store forwarding), as
   on its register-rich FPGA target. *)

let dialect = Dialect.transmogrifier

let pipeline =
  Passes.pipeline "transmogrifier" ~func_passes:[ Passes.simplify_pass ]

(** E4's recoding variant declares the unrolling as a source-level pass,
    so it is timed and differentially checked like any other. *)
let unrolled_pipeline =
  Passes.pipeline "transmogrifier-unrolled"
    ~program_passes:[ Passes.unroll_loops_pass ]
    ~func_passes:[ Passes.simplify_pass ]

let compile ?knobs (program : Ast.program) ~entry : Design.t =
  Fsmd_common.build ~backend_name:"transmogrifier" ~dialect
    ~mem_forwarding:true ~pipeline ?knobs
    ~schedule_block:Fsmd.transmogrifier_schedule program ~entry

(** Variant used by experiment E4: unroll every bounded loop first, which
    trades one state's combinational depth for fewer cycles — the recoding
    the paper describes. *)
let compile_unrolled (program : Ast.program) ~entry : Design.t =
  Fsmd_common.build ~backend_name:"transmogrifier" ~dialect
    ~mem_forwarding:true ~pipeline:unrolled_pipeline
    ~schedule_block:Fsmd.transmogrifier_schedule program ~entry

let descriptor =
  Backend.make ~name:"transmogrifier" ~aliases:[ "tmcc" ]
    ~pipeline:(Some pipeline)
    ~description:"one state per basic block, whole blocks chained per cycle"
    ~dialect:Dialect.transmogrifier
    (fun ~knobs program ~entry -> compile ~knobs program ~entry)
