(** HardwareC backend [Ku & De Micheli 1990]: the scheduled-FSMD path
    plus [constrain(min,max){...}] timing constraints.  If the requested
    allocation violates a max-cycle constraint, the compiler walks the
    allocation lattice until the constraints hold (experiment E7's
    design-space exploration); min-cycle constraints pad empty states. *)

exception Unsatisfiable of string

val dialect : Dialect.t

val pipeline : Passes.pipeline
(** [lower] only: timing constraints name raw block/instruction indices,
    which CFG simplification would invalidate. *)

type report = {
  statuses : Constrain.status list;  (** final constraint status *)
  exploration : (string * int * bool) list;
      (** (allocation, steps, met?) trail *)
  chosen_allocation : string;
}

val compile :
  ?knobs:Backend.knobs -> ?resources:Schedule.resources -> Ast.program ->
  entry:string -> Design.t * report
(** [resources] (when given) overrides [knobs.resources].
    @raise Unsatisfiable when no candidate allocation meets a constraint. *)

val compile_reporting :
  ?knobs:Backend.knobs -> Ast.program -> entry:string -> Design.t
(** {!compile} with the exploration {!report} folded into the design's
    stats ([constraint-status], [constraint-exploration]) instead of
    discarded — what the registry registers. *)

val descriptor : Backend.descriptor
