(* SystemC-style modeling kernel [Grötker et al., 2002].

   The paper: "The SystemC C++ library supports hardware and system
   modeling.  While most popular for modeling (it provides concurrency
   with lightweight threads), a subset of the language can be synthesized.
   Classes model hierarchical structures containing combinational and
   sequential processes" — "a system is a collection of clock-edge-
   triggered processes", with cycle boundaries denoted by wait() calls.

   This is that library with OCaml closures standing in for C++ methods: a
   discrete-event kernel with signals (current/next values with delta-
   cycle update), combinational processes (re-run until signals settle)
   and clocked processes (run once per rising edge).  The Verilog-like
   evaluation model — including the classic delta-cycle convergence — is
   the point: "Verilog in C++".

   [of_fsmd] models a scheduled FSMD as a two-process network (next-state
   logic + clocked state), demonstrating the synthesizable subset. *)

exception Unstable of string

type signal = {
  sig_name : string;
  width : int;
  mutable current : Bitvec.t;
  mutable next : Bitvec.t;
  mutable written : bool;
}

type process =
  | Combinational of { name : string; body : unit -> unit }
  | Clocked of { name : string; body : unit -> unit }

type kernel = {
  mutable signals : signal list;
  mutable processes : process list;
  mutable cycle : int;
  max_deltas : int;
}

let create ?(max_deltas = 64) () =
  { signals = []; processes = []; cycle = 0; max_deltas }

let signal kernel ~name ~width ?(init = 0) () =
  let s =
    { sig_name = name; width;
      current = Bitvec.of_int ~width init;
      next = Bitvec.of_int ~width init;
      written = false }
  in
  kernel.signals <- s :: kernel.signals;
  s

(** Read the settled value (SystemC's [sig.read()]). *)
let read s = s.current

let read_int s = Bitvec.to_int (read s)

(** Schedule a value for the next delta/clock update ([sig.write(v)]). *)
let write s v =
  s.next <- Bitvec.resize ~signed:false ~width:s.width v;
  s.written <- true

let write_int s v = write s (Bitvec.of_int ~width:s.width v)

let sc_method kernel ~name body =
  kernel.processes <- Combinational { name; body } :: kernel.processes

let sc_clocked kernel ~name body =
  kernel.processes <- Clocked { name; body } :: kernel.processes

(* Propagate written next-values into current; true if anything changed. *)
let delta_update kernel =
  List.fold_left
    (fun changed s ->
      if s.written && not (Bitvec.equal s.next s.current) then begin
        s.current <- s.next;
        s.written <- false;
        true
      end
      else begin
        s.written <- false;
        changed
      end)
    false kernel.signals

let settle kernel =
  let rec go deltas =
    if deltas > kernel.max_deltas then
      raise (Unstable "combinational processes did not converge");
    List.iter
      (fun p ->
        match p with
        | Combinational { body; _ } -> body ()
        | Clocked _ -> ())
      kernel.processes;
    if delta_update kernel then go (deltas + 1)
  in
  go 0

(** One rising clock edge: clocked processes fire on the settled values,
    then their writes commit, then combinational logic settles again. *)
let clock_tick kernel =
  settle kernel;
  List.iter
    (fun p ->
      match p with
      | Clocked { body; _ } -> body ()
      | Combinational _ -> ())
    kernel.processes;
  ignore (delta_update kernel);
  settle kernel;
  kernel.cycle <- kernel.cycle + 1

(** Run clock cycles until [stop] reads true; returns the cycle count. *)
let run_until kernel ~stop ~max_cycles =
  settle kernel;
  let rec go () =
    if Bitvec.to_bool (read stop) then Ok kernel.cycle
    else if kernel.cycle >= max_cycles then Error `Timeout
    else begin
      clock_tick kernel;
      go ()
    end
  in
  go ()

(* --- modeling a scheduled FSMD as a SystemC process network --- *)

let of_fsmd (fsmd : Fsmd.t) ~args : kernel * signal * signal =
  let func = fsmd.Fsmd.func in
  let kernel = create () in
  let state =
    signal kernel ~name:"state"
      ~width:(max 1 (Area.log2_ceil (Fsmd.num_states fsmd + 1)))
      ~init:fsmd.Fsmd.entry ()
  in
  let done_sig = signal kernel ~name:"done" ~width:1 () in
  let result =
    signal kernel ~name:"result" ~width:(max 1 func.Cir.fn_ret_width) ()
  in
  (* datapath state lives in plain arrays, as an RTL model would keep regs *)
  let regs =
    Array.init func.Cir.fn_reg_count (fun r ->
        Bitvec.zero (max 1 func.Cir.fn_reg_widths.(r)))
  in
  List.iter (fun (_, r, init) -> regs.(r) <- init) func.Cir.fn_globals;
  List.iter2
    (fun (_, r) v ->
      regs.(r) <- Bitvec.resize ~signed:true ~width:(Cir.reg_width func r) v)
    func.Cir.fn_params args;
  let memories =
    Array.map
      (fun (rg : Cir.region) ->
        match rg.Cir.rg_init with
        | Some init -> Array.copy init
        | None -> Array.make rg.Cir.rg_words (Bitvec.zero rg.Cir.rg_width))
      func.Cir.fn_regions
  in
  let value = function
    | Cir.O_imm bv -> bv
    | Cir.O_reg r -> regs.(r)
  in
  (* the single clocked process: execute the current state's actions and
     write the next state — one cycle per state, SystemC-style *)
  sc_clocked kernel ~name:"fsmd" (fun () ->
      if not (Bitvec.to_bool (read done_sig)) then begin
        let st = fsmd.Fsmd.states.(Bitvec.to_int_unsigned (read state)) in
        let stores = ref [] in
        List.iter
          (fun instr ->
            match instr with
            | Cir.I_bin { op; dst; a; b } ->
              regs.(dst) <- Neteval.apply_binop op (value a) (value b)
            | Cir.I_un { op; dst; a } ->
              regs.(dst) <- Neteval.apply_unop op (value a)
            | Cir.I_mov { dst; src } -> regs.(dst) <- value src
            | Cir.I_cast { dst; signed; src } ->
              regs.(dst) <-
                Bitvec.resize ~signed ~width:(Cir.reg_width func dst)
                  (value src)
            | Cir.I_mux { dst; sel; if_true; if_false } ->
              regs.(dst) <-
                (if Bitvec.to_bool (value sel) then value if_true
                 else value if_false)
            | Cir.I_load { dst; region; addr } ->
              let mem = memories.(region) in
              let a = Bitvec.to_int_unsigned (value addr) in
              regs.(dst) <-
                (if a < Array.length mem then mem.(a)
                 else Bitvec.zero (Cir.reg_width func dst))
            | Cir.I_store { region; addr; value = v } ->
              stores := (region, Bitvec.to_int_unsigned (value addr), value v)
                        :: !stores)
          st.Fsmd.actions;
        List.iter
          (fun (region, a, v) ->
            let mem = memories.(region) in
            if a < Array.length mem then mem.(a) <- v)
          (List.rev !stores);
        match st.Fsmd.next with
        | Fsmd.N_goto target -> write_int state target
        | Fsmd.N_branch { cond; if_true; if_false } ->
          write_int state
            (if Bitvec.to_bool (value cond) then if_true else if_false)
        | Fsmd.N_halt v ->
          (match v with Some op -> write result (value op) | None -> ());
          write_int done_sig 1
      end);
  (kernel, done_sig, result)

let pipeline = Passes.pipeline "systemc" ~func_passes:[ Passes.simplify_pass ]

(** SystemC backend entry point: schedule like Bach C, then simulate the
    FSMD as a clock-edge-triggered process network. *)
let compile ?(knobs = Backend.default_knobs) ?resources
    (program : Ast.program) ~entry : Design.t =
  let resources =
    match resources with Some r -> r | None -> knobs.Backend.resources
  in
  Backend.reject_if_illegal ~backend:"systemc" Dialect.systemc program;
  if Handelc.uses_concurrency program then
    (* Process-level par/channels are not representable in the
       sequential CIR lowering; SystemC's process network semantics run
       on the statement machine with compiler-packed cycles, like the
       other concurrent dialects. *)
    Handelc.compile_with_policy ~backend_name:"systemc"
      ~dialect:Dialect.systemc ~policy:`Scheduled ~knobs program ~entry
  else
  let lowered, pass_trace =
    Passes.run ~options:knobs.Backend.pass_options
      (Backend.specialize knobs pipeline)
      program ~entry
  in
  let func = lowered.Lower.func in
  let fsmd =
    Fsmd.of_func func ~schedule_block:(fun blk ->
        Schedule.list_schedule func resources blk.Cir.instrs)
  in
  let run ?vcd:_ ?sim:_ args =
    let kernel, done_sig, result = of_fsmd fsmd ~args in
    match run_until kernel ~stop:done_sig ~max_cycles:2_000_000 with
    | Error `Timeout ->
      (* carry cycles + current FSM state like the other simulators, so
         chlsc can exit 3 with a partial outcome instead of crashing *)
      let state =
        match
          List.find_opt (fun s -> s.sig_name = "state") kernel.signals
        with
        | Some s -> read_int s
        | None -> -1
      in
      raise (Rtlsim.Timeout { cycles = kernel.cycle; state })
    | Ok cycles ->
      let metrics = Metrics.create () in
      Metrics.set_int metrics "sim.cycles" cycles;
      { Design.result = Some (read result);
        globals = [];
        memories = [];
        cycles = Some cycles;
        time_units = None;
        metrics }
  in
  { Design.design_name = entry;
    backend = "systemc";
    run;
    area = (fun () -> None);
    verilog = (fun () -> None);
    netlist = (fun () -> None);
    clock_period = Some (Float.max 1. (Fsmd.critical_state_delay fsmd));
    stats = [ ("states", string_of_int (Fsmd.num_states fsmd)) ];
    pass_trace }

let descriptor =
  Backend.make ~name:"systemc" ~pipeline:(Some pipeline)
    ~description:"clocked process network simulated at the RTL level"
    ~dialect:Dialect.systemc
    (fun ~knobs program ~entry -> compile ~knobs program ~entry)
