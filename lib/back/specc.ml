(* SpecC backend [Gajski et al., 2000].

   The paper: "SpecC adds constructs for finite-state machines,
   concurrency, pipelining, and structure through thirty-three keywords.
   Systems written in the complete language must be refined into the
   synthesizable subset" — it is "resolutely refinement-based".

   Realization: the refinement *methodology* as executable steps.  A
   SpecC design starts as an untimed specification and descends through
   the canonical levels, each step checked for behavioural equivalence on
   user-supplied test vectors:

     Specification  — the untimed software semantics (reference interp);
     Architecture   — scheduled FSMD (cycle-approximate timing appears);
     Communication  — channels refined to cycle-true rendezvous (the
                      statement machine) when the program uses them;
     Implementation — elaborated RTL netlist, cycle- and bit-true.

   compile returns the implementation-level design plus the refinement
   report; a level whose simulation diverges from the specification fails
   the flow, which is exactly the discipline SpecC's methodology imposes. *)

type level = Specification | Architecture | Communication | Implementation

let string_of_level = function
  | Specification -> "specification (untimed)"
  | Architecture -> "architecture (scheduled)"
  | Communication -> "communication (cycle-true channels)"
  | Implementation -> "implementation (RTL netlist)"

type check = {
  level : level;
  vector : int list;
  observed : int option;
  expected : int option;
  equivalent : bool;
  cycles : int option;
}

type report = { checks : check list; all_equivalent : bool }

let dialect = Dialect.specc

(* The architecture-level refinement is a scheduled FSMD.  The
   concurrency checker runs first; under SpecC's rules shared-variable
   hazards are warnings (the paper's silent hazard), never errors. *)
let pipeline =
  Passes.pipeline "specc-arch"
    ~program_passes:[ Conc_check.pass Dialect.specc ]
    ~func_passes:[ Passes.simplify_pass ]

(** Run the refinement flow, checking equivalence at every level on each
    of [test_vectors]. *)
let refine ?(knobs = Backend.default_knobs) (program : Ast.program) ~entry
    ~test_vectors : Design.t * report =
  Backend.reject_if_illegal ~backend:"specc" dialect program;
  let spec_result vector =
    let outcome =
      Interp.run program ~entry
        ~args:(List.map (Bitvec.of_int ~width:64) vector)
    in
    Option.map Bitvec.to_int outcome.Interp.return_value
  in
  let checks = ref [] in
  let record level vector expected observed cycles =
    checks :=
      { level; vector; observed; expected;
        equivalent = observed = expected; cycles }
      :: !checks
  in
  (* Level 1: specification = the oracle itself *)
  List.iter
    (fun v ->
      let r = spec_result v in
      record Specification v r r None)
    test_vectors;
  let concurrent = Handelc.uses_concurrency program in
  (* Level 2: architecture — scheduled design *)
  let arch_design =
    if concurrent then
      Handelc.compile_with_policy ~backend_name:"specc-arch" ~dialect
        ~policy:`Scheduled ~knobs program ~entry
    else
      Fsmd_common.build ~backend_name:"specc-arch" ~dialect ~pipeline ~knobs
        ~schedule_block:(fun func blk ->
          Schedule.list_schedule func knobs.Backend.resources blk.Cir.instrs)
        program ~entry
  in
  List.iter
    (fun v ->
      let expected = spec_result v in
      let r = arch_design.Design.run (Design.int_args v) in
      record Architecture v expected
        (Option.map Bitvec.to_int r.Design.result)
        r.Design.cycles)
    test_vectors;
  (* Level 3: communication — cycle-true rendezvous (concurrent programs
     only; sequential designs pass through unchanged) *)
  let comm_design =
    if concurrent then
      Handelc.compile_with_policy ~backend_name:"specc-comm" ~dialect
        ~policy:`One_per_assignment ~knobs program ~entry
    else arch_design
  in
  List.iter
    (fun v ->
      let expected = spec_result v in
      let r = comm_design.Design.run (Design.int_args v) in
      record Communication v expected
        (Option.map Bitvec.to_int r.Design.result)
        r.Design.cycles)
    test_vectors;
  (* Level 4: implementation — elaborated netlist, when available *)
  let impl_design = comm_design in
  List.iter
    (fun v ->
      let expected = spec_result v in
      match impl_design.Design.verilog () with
      | None ->
        (* no RTL view (statement machine): implementation = comm level *)
        let r = impl_design.Design.run (Design.int_args v) in
        record Implementation v expected
          (Option.map Bitvec.to_int r.Design.result)
          r.Design.cycles
      | Some _ ->
        let r = impl_design.Design.run (Design.int_args v) in
        record Implementation v expected
          (Option.map Bitvec.to_int r.Design.result)
          r.Design.cycles)
    test_vectors;
  let checks = List.rev !checks in
  ( { impl_design with Design.backend = "specc" },
    { checks; all_equivalent = List.for_all (fun c -> c.equivalent) checks } )

let compile ?knobs (program : Ast.program) ~entry : Design.t =
  fst (refine ?knobs program ~entry ~test_vectors:[])

let descriptor =
  Backend.make ~name:"specc" ~pipeline:(Some pipeline)
    ~description:"behavioural hierarchy with par, scheduled per behaviour"
    ~dialect:Dialect.specc
    (fun ~knobs program ~entry -> compile ~knobs program ~entry)
