(* Handel-C backend [Celoxica] — and the concurrent Bach C variant.

   The paper: "Celoxica's Handel-C adds constructs for parallel statements
   and OCCAM-like rendezvous communication.  Each assignment statement
   runs in one cycle" and "in Handel-C, only assignment and delay
   statements take a clock cycle ... Handel-C may require assignment
   statements to be fused" to meet timing.

   Realization: a cycle-accurate statement machine sharing the reference
   interpreter's expression semantics and memory.  Threads advance in
   lock-step, one global clock:

     - `x = e;` and `delay;` consume exactly one cycle (Handel-C policy);
     - control flow (tests, fork/join, blocks) is free — a thread that
       performs unboundedly many zero-cycle steps within one cycle is
       rejected as a combinational cycle, which is what the real compiler
       does to `while(e);`;
     - a rendezvous transfer costs one cycle for both endpoints;
     - under the `Scheduled` policy (Bach C's untimed semantics), the
       machine instead packs independent assignments into the same cycle,
       bounded by an ops-per-cycle allocation and one access per memory
       region per cycle — the compiler, not a rule, decides the cycles. *)

exception Combinational_loop
exception Deadlock
exception Timeout

type policy = [ `One_cycle_per_assignment | `Scheduled ]

type item =
  | H_stmt of Ast.stmt
  | H_end_scope
  | H_loop_end
  | H_while_retest of Ast.expr * Ast.block
  | H_dowhile_retest of Ast.block * Ast.expr
  | H_for_test of Ast.expr option * Ast.expr option * Ast.block
  | H_for_step of Ast.expr option * Ast.expr option * Ast.block
  | H_join_signal of join

and join = { mutable remaining : int; joiner : thread }

and blocked =
  | Runnable
  | Blocked_send of string * Bitvec.t
  | Blocked_recv of string * (Bitvec.t -> unit)
  | Blocked_join

and thread = {
  tid : int;
  mutable cont : item list;
  mutable tenv : Interp.scope list;
  mutable state : blocked;
  (* Scheduled-policy packing state, cleared at every cycle boundary: *)
  mutable written_this_cycle : (string, unit) Hashtbl.t;
  mutable ops_this_cycle : int;
  mutable region_reads : (string, unit) Hashtbl.t;
  mutable region_writes : (string, unit) Hashtbl.t;
}

type machine = {
  env : Interp.env;
  policy : policy;
  ops_per_cycle : int;
  mutable threads : thread list;
  mutable next_tid : int;
  mutable return_value : Bitvec.t option option;
  mutable cycles : int;
  mutable assignments : int; (* total dynamic assignments, for stats *)
}

let spawn machine cont scopes =
  let t =
    { tid = machine.next_tid; cont; tenv = scopes; state = Runnable;
      written_this_cycle = Hashtbl.create 8; ops_this_cycle = 0;
      region_reads = Hashtbl.create 4; region_writes = Hashtbl.create 4 }
  in
  machine.next_tid <- machine.next_tid + 1;
  machine.threads <- machine.threads @ [ t ];
  t

let with_env machine thread f =
  let saved = machine.env.Interp.scopes in
  machine.env.Interp.scopes <- thread.tenv;
  Fun.protect
    ~finally:(fun () -> machine.env.Interp.scopes <- saved)
    (fun () -> f machine.env)

let scoped_items thread body after =
  thread.tenv <- Hashtbl.create 4 :: thread.tenv;
  List.map (fun s -> H_stmt s) body @ (H_end_scope :: after)

let rec unwind_until thread pred =
  match thread.cont with
  | [] -> raise (Interp.Runtime_error "break/continue outside loop")
  | it :: rest ->
    if pred it then ()
    else begin
      (match it with
      | H_end_scope -> thread.tenv <- List.tl thread.tenv
      | H_stmt _ | H_loop_end | H_while_retest _ | H_dowhile_retest _
      | H_for_test _ | H_for_step _ | H_join_signal _ -> ());
      thread.cont <- rest;
      unwind_until thread pred
    end

(* Variables read by a pure expression (for same-cycle conflict checks). *)
let rec vars_read acc (e : Ast.expr) =
  match e.Ast.e with
  | Ast.Var name -> name :: acc
  | Ast.Const _ | Ast.Chan_recv _ -> acc
  | Ast.Unop (_, a) | Ast.Cast (_, a) | Ast.Deref a | Ast.Addr_of a ->
    vars_read acc a
  | Ast.Binop (_, a, b) | Ast.Index (a, b) ->
    vars_read (vars_read acc a) b
  | Ast.Assign (a, b) -> vars_read (vars_read acc a) b
  | Ast.Cond (a, b, c) -> vars_read (vars_read (vars_read acc a) b) c
  | Ast.Call (_, args) -> List.fold_left vars_read acc args

let rec regions_touched acc (e : Ast.expr) =
  match e.Ast.e with
  | Ast.Index ({ e = Ast.Var name; _ }, idx) ->
    regions_touched (name :: acc) idx
  | Ast.Const _ | Ast.Var _ | Ast.Chan_recv _ -> acc
  | Ast.Unop (_, a) | Ast.Cast (_, a) | Ast.Deref a | Ast.Addr_of a ->
    regions_touched acc a
  | Ast.Binop (_, a, b) | Ast.Index (a, b) | Ast.Assign (a, b) ->
    regions_touched (regions_touched acc a) b
  | Ast.Cond (a, b, c) ->
    regions_touched (regions_touched (regions_touched acc a) b) c
  | Ast.Call (_, args) -> List.fold_left regions_touched acc args

(* Does executing `lhs = rhs` conflict with work already packed into this
   thread's current cycle (Scheduled policy)? *)
let conflicts thread lhs rhs =
  let reads = vars_read (vars_read [] rhs) lhs in
  let lhs_var =
    match lhs.Ast.e with Ast.Var name -> Some name | _ -> None
  in
  thread.ops_this_cycle > 0
  && (List.exists (Hashtbl.mem thread.written_this_cycle) reads
     || (match lhs_var with
        | Some v -> Hashtbl.mem thread.written_this_cycle v
        | None -> false)
     || List.exists (Hashtbl.mem thread.region_reads) (regions_touched [] rhs)
     ||
     match lhs.Ast.e with
     | Ast.Index ({ e = Ast.Var region; _ }, _) ->
       Hashtbl.mem thread.region_writes region
     | _ -> false)

let note_assignment machine thread lhs rhs =
  machine.assignments <- machine.assignments + 1;
  thread.ops_this_cycle <- thread.ops_this_cycle + 1;
  (match lhs.Ast.e with
  | Ast.Var name -> Hashtbl.replace thread.written_this_cycle name ()
  | Ast.Index ({ e = Ast.Var region; _ }, _) ->
    Hashtbl.replace thread.region_writes region ()
  | _ -> ());
  List.iter
    (fun r -> Hashtbl.replace thread.region_reads r ())
    (regions_touched [] rhs)

let try_rendezvous machine ch =
  let find pred = List.find_opt pred machine.threads in
  let sender =
    find (fun t ->
        match t.state with
        | Blocked_send (c, _) -> String.equal c ch
        | Runnable | Blocked_recv _ | Blocked_join -> false)
  and receiver =
    find (fun t ->
        match t.state with
        | Blocked_recv (c, _) -> String.equal c ch
        | Runnable | Blocked_send _ | Blocked_join -> false)
  in
  match (sender, receiver) with
  | Some s, Some r -> (
    match (s.state, r.state) with
    | Blocked_send (_, v), Blocked_recv (_, deliver) ->
      deliver v;
      (* the transfer itself costs the cycle; both resume next cycle *)
      s.state <- Runnable;
      r.state <- Runnable;
      true
    | (Runnable | Blocked_send _ | Blocked_recv _ | Blocked_join), _ -> false)
  | (Some _ | None), (Some _ | None) -> false

(* Execute one item.  Returns the cycle cost (0 or 1); blocking costs the
   rest of the cycle implicitly. *)
let rec exec_item machine thread : int =
  match thread.cont with
  | [] -> 0
  | it :: rest ->
    thread.cont <- rest;
    let eval_in e = with_env machine thread (fun env -> Interp.eval env e) in
    (match it with
    | H_end_scope ->
      thread.tenv <- List.tl thread.tenv;
      0
    | H_loop_end -> 0
    | H_while_retest (c, body) ->
      if not (Bitvec.is_zero (eval_in c)) then
        thread.cont <-
          scoped_items thread body (H_while_retest (c, body) :: thread.cont);
      0
    | H_dowhile_retest (body, c) ->
      if not (Bitvec.is_zero (eval_in c)) then
        thread.cont <-
          scoped_items thread body (H_dowhile_retest (body, c) :: thread.cont);
      0
    | H_for_test (cond, stepper, body) ->
      let continue =
        match cond with
        | None -> true
        | Some c -> not (Bitvec.is_zero (eval_in c))
      in
      if continue then
        thread.cont <-
          scoped_items thread body
            (H_for_step (cond, stepper, body) :: thread.cont);
      0
    | H_for_step (cond, stepper, body) -> (
      thread.cont <- H_for_test (cond, stepper, body) :: thread.cont;
      (* the step expression is an assignment: charge per policy *)
      match stepper with
      | None -> 0
      | Some e -> exec_assignment_expr machine thread e)
    | H_join_signal j ->
      j.remaining <- j.remaining - 1;
      if j.remaining = 0 && j.joiner.state = Blocked_join then
        j.joiner.state <- Runnable;
      0
    | H_stmt st -> exec_stmt machine thread st)

and exec_assignment_expr machine thread (e : Ast.expr) : int =
  (* Evaluate an expression statement that is an assignment (or contains
     one) and charge the policy's cycle cost. *)
  match machine.policy with
  | `One_cycle_per_assignment ->
    ignore (with_env machine thread (fun env -> Interp.eval env e));
    machine.assignments <- machine.assignments + 1;
    1
  | `Scheduled -> (
    match e.Ast.e with
    | Ast.Assign (lhs, rhs) ->
      if conflicts thread lhs rhs || thread.ops_this_cycle >= machine.ops_per_cycle
      then begin
        (* cannot pack: spend the cycle boundary, retry next cycle *)
        thread.cont <- H_stmt (Ast.mk_stmt (Ast.Expr e)) :: thread.cont;
        1
      end
      else begin
        ignore (with_env machine thread (fun env -> Interp.eval env e));
        note_assignment machine thread lhs rhs;
        0
      end
    | _ ->
      ignore (with_env machine thread (fun env -> Interp.eval env e));
      0)

and exec_stmt machine thread (st : Ast.stmt) : int =
  let eval_in e = with_env machine thread (fun env -> Interp.eval env e) in
  match st.Ast.s with
  | Ast.Expr e when Interp.(match as_recv e with Some _ -> true | None -> false)
    ->
    let ch, _ = Option.get (Interp.as_recv e) in
    thread.state <- Blocked_recv (ch, fun _ -> ());
    ignore (try_rendezvous machine ch);
    1
  | Ast.Expr { e = Ast.Assign (lhs, rhs); eloc; ty }
    when Interp.as_recv rhs <> None ->
    ignore eloc;
    ignore ty;
    let ch, cast = Option.get (Interp.as_recv rhs) in
    let deliver v =
      with_env machine thread (fun env ->
          let addr = Interp.eval_lvalue env lhs in
          Interp.store_word env.Interp.store addr
            (Interp.convert_received cast v))
    in
    thread.state <- Blocked_recv (ch, deliver);
    ignore (try_rendezvous machine ch);
    1
  | Ast.Expr ({ e = Ast.Assign _; _ } as e) ->
    exec_assignment_expr machine thread e
  | Ast.Expr e ->
    ignore (eval_in e);
    0
  | Ast.Decl (ty, name, init) ->
    let cost = ref 0 in
    with_env machine thread (fun env ->
        let addr = Interp.alloc env.Interp.store (max 1 (Ctypes.word_count ty)) in
        (match thread.tenv with
        | scope :: _ -> Hashtbl.replace scope name (addr, ty)
        | [] -> raise (Interp.Runtime_error "no scope"));
        match init with
        | Some e when Interp.as_recv e <> None ->
          let ch, cast = Option.get (Interp.as_recv e) in
          thread.state <-
            Blocked_recv
              ( ch,
                fun v ->
                  Interp.store_word env.Interp.store addr
                    (Interp.convert_received cast v) );
          ignore (try_rendezvous machine ch);
          cost := 1
        | None -> ()
        | Some e ->
          (* an initializer is an assignment *)
          Interp.store_word env.Interp.store addr (Interp.eval env e);
          machine.assignments <- machine.assignments + 1;
          cost :=
            (match machine.policy with
            | `One_cycle_per_assignment -> 1
            | `Scheduled ->
              thread.ops_this_cycle <- thread.ops_this_cycle + 1;
              Hashtbl.replace thread.written_this_cycle name ();
              0));
    !cost
  | Ast.If (c, t, f) ->
    if Bitvec.is_zero (eval_in c) then
      thread.cont <- scoped_items thread f thread.cont
    else thread.cont <- scoped_items thread t thread.cont;
    0
  | Ast.While (c, body) ->
    thread.cont <- H_while_retest (c, body) :: H_loop_end :: thread.cont;
    0
  | Ast.Do_while (body, c) ->
    thread.cont <-
      scoped_items thread body
        (H_dowhile_retest (body, c) :: H_loop_end :: thread.cont);
    0
  | Ast.For (init, cond, stepper, body) ->
    thread.tenv <- Hashtbl.create 4 :: thread.tenv;
    thread.cont <-
      (match init with None -> [] | Some st -> [ H_stmt st ])
      @ H_for_test (cond, stepper, body)
        :: H_loop_end :: H_end_scope :: thread.cont;
    0
  | Ast.Return value ->
    let v = Option.map eval_in value in
    machine.return_value <- Some v;
    thread.cont <- [];
    0
  | Ast.Break ->
    unwind_until thread (function
      | H_loop_end -> true
      | H_stmt _ | H_end_scope | H_while_retest _ | H_dowhile_retest _
      | H_for_test _ | H_for_step _ | H_join_signal _ -> false);
    (match thread.cont with
    | H_loop_end :: rest -> thread.cont <- rest
    | _ -> ());
    0
  | Ast.Continue ->
    unwind_until thread (function
      | H_while_retest _ | H_dowhile_retest _ | H_for_step _ -> true
      | H_stmt _ | H_end_scope | H_loop_end | H_for_test _ | H_join_signal _
        -> false);
    0
  | Ast.Block body ->
    thread.cont <- scoped_items thread body thread.cont;
    0
  | Ast.Par branches ->
    let j = { remaining = List.length branches; joiner = thread } in
    List.iter
      (fun branch ->
        ignore
          (spawn machine
             (List.map (fun s -> H_stmt s) branch @ [ H_join_signal j ])
             (Hashtbl.create 4 :: thread.tenv)))
      branches;
    if j.remaining > 0 then thread.state <- Blocked_join;
    0
  | Ast.Chan_send (ch, e) ->
    let v = eval_in e in
    thread.state <- Blocked_send (ch, v);
    ignore (try_rendezvous machine ch);
    1
  | Ast.Delay -> 1
  | Ast.Constrain (_, _, body) ->
    thread.cont <- scoped_items thread body thread.cont;
    0

type outcome = {
  return_value : Bitvec.t option;
  cycles : int;
  assignments : int;
  store : Interp.store;
}

(** Run the statement machine to completion. *)
let run ?(max_cycles = 2_000_000) ?(ops_per_cycle = 8) ~policy
    (program : Ast.program) ~entry ~args : outcome =
  let func =
    match Ast.find_func program entry with
    | Some f -> f
    | None -> raise (Interp.Runtime_error ("no entry " ^ entry))
  in
  let store =
    { Interp.mem = Array.make 1024 (Bitvec.zero 1); sp = 0;
      globals = Hashtbl.create 16; heap_next = Interp.heap_base }
  in
  Interp.allocate_globals store program;
  let env =
    { Interp.store; program; scopes = []; steps = 0; fuel = max_int }
  in
  let machine =
    { env; policy; ops_per_cycle; threads = []; next_tid = 0;
      return_value = None; cycles = 0; assignments = 0 }
  in
  let frame : Interp.scope = Hashtbl.create 8 in
  List.iter2
    (fun (ty, name) v ->
      let ty =
        match ty with Ctypes.Array (elt, _) -> Ctypes.Pointer elt | t -> t
      in
      let addr = Interp.alloc store 1 in
      Interp.store_word store addr
        (Bitvec.resize ~signed:true ~width:(Interp.declared_width ty) v);
      Hashtbl.replace frame name (addr, ty))
    func.Ast.f_params args;
  let entry_thread =
    spawn machine (List.map (fun s -> H_stmt s) func.Ast.f_body) [ frame ]
  in
  let finished t = t.cont = [] in
  let guard = 100_000 in
  while
    machine.return_value = None
    && not (finished entry_thread)
  do
    if machine.cycles >= max_cycles then raise Timeout;
    machine.cycles <- machine.cycles + 1;
    let any_progress = ref false in
    List.iter
      (fun t ->
        if machine.return_value = None && t.state = Runnable
           && not (finished t)
        then begin
          any_progress := true;
          Hashtbl.reset t.written_this_cycle;
          Hashtbl.reset t.region_reads;
          Hashtbl.reset t.region_writes;
          t.ops_this_cycle <- 0;
          (* run zero-cost items until the thread spends its cycle *)
          let spent = ref 0 and zero_steps = ref 0 in
          while
            !spent = 0 && t.state = Runnable && not (finished t)
            && machine.return_value = None
          do
            incr zero_steps;
            if !zero_steps > guard then raise Combinational_loop;
            spent := exec_item machine t
          done
        end)
      machine.threads;
    machine.threads <-
      List.filter
        (fun t -> (not (finished t)) || t == entry_thread)
        machine.threads;
    if not !any_progress then
      if
        List.exists
          (fun t ->
            match t.state with
            | Blocked_send _ | Blocked_recv _ -> true
            | Runnable | Blocked_join -> false)
          machine.threads
      then raise Deadlock
      else if machine.return_value = None && not (finished entry_thread) then
        raise Deadlock
  done;
  { return_value =
      (match machine.return_value with Some v -> v | None -> None);
    cycles = machine.cycles;
    assignments = machine.assignments;
    store }

(* --- rough structural estimate ---------------------------------------- *)

(* Since a whole assignment expression must settle within one clock cycle,
   Handel-C's achievable clock period is the *deepest* assignment's
   combinational delay — the timing pathology the paper notes ("Handel-C
   may require assignment statements to be fused" cuts cycles but deepens
   this path; splitting temporaries shortens it at a cycle cost). *)
let rec expr_delay (e : Ast.expr) =
  let w ty = max 2 (Ctypes.width ty) in
  match e.Ast.e with
  | Ast.Const _ | Ast.Var _ | Ast.Chan_recv _ -> 0.
  | Ast.Unop (_, a) -> 1. +. expr_delay a
  | Ast.Binop (op, a, b) ->
    let own =
      match op with
      | Ast.Mul -> (3. *. Area.flog2 (w a.Ast.ty)) +. 4.
      | Ast.Div | Ast.Mod ->
        float_of_int (w a.Ast.ty) *. (Area.flog2 (w a.Ast.ty) +. 1.)
      | Ast.Shl | Ast.Shr -> Area.flog2 (w a.Ast.ty) +. 1.
      | Ast.Add | Ast.Sub | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
        Area.flog2 (w a.Ast.ty) +. 2.
      | Ast.Band | Ast.Bor | Ast.Bxor | Ast.Log_and | Ast.Log_or -> 1.
      | Ast.Eq | Ast.Ne -> Area.flog2 (w a.Ast.ty) +. 1.
    in
    own +. Float.max (expr_delay a) (expr_delay b)
  | Ast.Assign (l, r) -> Float.max (expr_delay l) (expr_delay r)
  | Ast.Cond (c, t, f) ->
    2. +. Float.max (expr_delay c) (Float.max (expr_delay t) (expr_delay f))
  | Ast.Call (_, args) ->
    (* inlined combinationally: approximate by the argument depth + body *)
    4. +. List.fold_left (fun acc a -> Float.max acc (expr_delay a)) 0. args
  | Ast.Index (b, i) -> 5. +. Float.max (expr_delay b) (expr_delay i)
  | Ast.Deref a | Ast.Addr_of a | Ast.Cast (_, a) -> expr_delay a

let estimate_clock_period (program : Ast.program) =
  let worst = ref 4. in
  List.iter
    (fun f ->
      Ast.iter_func
        ~stmt:(fun _ -> ())
        ~expr:(fun e ->
          match e.Ast.e with
          | Ast.Assign (_, rhs) ->
            worst := Float.max !worst (2. +. expr_delay rhs)
          | _ -> ())
        f)
    program.Ast.funcs;
  !worst

(* Handel-C builds dedicated hardware per static assignment: estimate area
   as the operator cost of every assignment's rhs plus registers for
   declared variables. *)
let rec expr_area (e : Ast.expr) =
  let w ty = float_of_int (max 1 (Ctypes.width ty)) in
  match e.Ast.e with
  | Ast.Const _ | Ast.Var _ | Ast.Chan_recv _ -> 0.
  | Ast.Unop (_, a) -> (w e.Ast.ty /. 2.) +. expr_area a
  | Ast.Binop (op, a, b) ->
    let cost =
      match op with
      | Ast.Mul -> 6. *. w a.Ast.ty *. w a.Ast.ty
      | Ast.Div | Ast.Mod -> 10. *. w a.Ast.ty *. w a.Ast.ty
      | Ast.Shl | Ast.Shr -> 3. *. w a.Ast.ty *. Area.flog2 (max 2 (Ctypes.width a.Ast.ty))
      | Ast.Add | Ast.Sub | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> 7. *. w a.Ast.ty
      | Ast.Band | Ast.Bor | Ast.Bxor | Ast.Eq | Ast.Ne | Ast.Log_and
      | Ast.Log_or -> w a.Ast.ty
    in
    cost +. expr_area a +. expr_area b
  | Ast.Assign (l, r) -> expr_area l +. expr_area r
  | Ast.Cond (c, t, f) ->
    (3. *. w e.Ast.ty) +. expr_area c +. expr_area t +. expr_area f
  | Ast.Call (_, args) -> List.fold_left (fun acc a -> acc +. expr_area a) 0. args
  | Ast.Index (b, i) -> 8. +. expr_area b +. expr_area i
  | Ast.Deref a | Ast.Addr_of a | Ast.Cast (_, a) -> expr_area a

let estimate_area (program : Ast.program) =
  let total = ref 0. in
  List.iter
    (fun f ->
      Ast.iter_func
        ~stmt:(fun st ->
          match st.Ast.s with
          | Ast.Decl (ty, _, _) ->
            total := !total +. (6. *. float_of_int (max 1 (Ctypes.width ty)))
          | Ast.Expr _ | Ast.If _ | Ast.While _ | Ast.Do_while _ | Ast.For _
          | Ast.Return _ | Ast.Break | Ast.Continue | Ast.Block _ | Ast.Par _
          | Ast.Chan_send _ | Ast.Delay | Ast.Constrain _ -> ())
        ~expr:(fun e ->
          match e.Ast.e with
          | Ast.Assign (_, rhs) -> total := !total +. expr_area rhs
          | _ -> ())
        f)
    program.Ast.funcs;
  !total

(* --- Design wrappers --------------------------------------------------- *)

(* Whether any function uses par arms or channel rendezvous — the
   constructs only the statement machine executes.  Every backend whose
   dialect allows them (Bach C, SpecC, SystemC, HardwareC) consults this
   to decide between its scheduled-FSMD path and the machine here. *)
let uses_concurrency (program : Ast.program) =
  List.exists
    (fun f ->
      Ast.exists_stmt
        (fun st ->
          match st.Ast.s with
          | Ast.Par _ | Ast.Chan_send _ -> true
          | Ast.Expr _ | Ast.Decl _ | Ast.If _ | Ast.While _ | Ast.Do_while _
          | Ast.For _ | Ast.Return _ | Ast.Break | Ast.Continue
          | Ast.Block _ | Ast.Delay | Ast.Constrain _ -> false)
        f
      || Ast.exists_expr
           (fun e ->
             match e.Ast.e with
             | Ast.Chan_recv _ -> true
             | Ast.Const _ | Ast.Var _ | Ast.Unop _ | Ast.Binop _
             | Ast.Assign _ | Ast.Cond _ | Ast.Call _ | Ast.Index _
             | Ast.Deref _ | Ast.Addr_of _ | Ast.Cast _ -> false)
           f)
    program.Ast.funcs

let compile_with_policy ~backend_name ~dialect ~policy
    ?(program_passes : Passes.program_pass list = [])
    ?(knobs = Backend.default_knobs) (program : Ast.program) ~entry :
    Design.t =
  Backend.reject_if_illegal ~backend:backend_name dialect program;
  let options = knobs.Backend.pass_options in
  let policy =
    match policy with
    | `One_per_assignment -> `One_cycle_per_assignment
    | `Scheduled -> `Scheduled
  in
  (* Source-level recoding (e.g. E4's temporary fusion) is declared to the
     pass manager so it is timed and differentially checked; the statement
     machine below runs the transformed program.  The concurrency checker
     runs first: a program the dialect statically forbids (e.g. two par
     arms writing one variable under Handel-C's rules) never reaches the
     simulator — Conc_check.Check_failed carries the located diagnostics. *)
  let program, source_trace =
    Passes.run_program_passes ~options
      (Backend.specialize knobs
         (Passes.pipeline backend_name
            ~program_passes:(Conc_check.pass dialect :: program_passes)
            ~lowers:false))
      program ~entry
  in
  let run ?vcd:_ ?sim:_ args =
    let outcome = run ~policy program ~entry ~args in
    let globals =
      List.filter_map
        (fun (g : Ast.global) ->
          match g.Ast.g_ty with
          | Ctypes.Array _ -> None
          | Ctypes.Void | Ctypes.Integer _ | Ctypes.Pointer _
          | Ctypes.Function _ ->
            Hashtbl.find_opt outcome.store.Interp.globals g.Ast.g_name
            |> Option.map (fun (addr, _) ->
                   (g.Ast.g_name, outcome.store.Interp.mem.(addr))))
        program.Ast.globals
    in
    let memories =
      List.filter_map
        (fun (g : Ast.global) ->
          match g.Ast.g_ty with
          | Ctypes.Array (_, n) ->
            Hashtbl.find_opt outcome.store.Interp.globals g.Ast.g_name
            |> Option.map (fun (addr, _) ->
                   ( g.Ast.g_name,
                     Array.init n (fun i ->
                         outcome.store.Interp.mem.(addr + i)) ))
          | Ctypes.Void | Ctypes.Integer _ | Ctypes.Pointer _
          | Ctypes.Function _ -> None)
        program.Ast.globals
    in
    let metrics = Metrics.create () in
    Metrics.set_int metrics "sim.cycles" outcome.cycles;
    { Design.result = outcome.return_value;
      globals;
      memories;
      cycles = Some outcome.cycles;
      time_units = None;
      metrics }
  in
  (* Structural views for the sequential subset: an FSMD cut at assignment
     boundaries elaborates to a netlist for area/Verilog.  Concurrent
     programs (par/channels) have no netlist view; the statement machine
     remains the timing reference in all cases.  Lowering runs eagerly
     through the pass manager (cheap, and a Lower failure becomes a
     visible diagnostic instead of a silently absent view); FSMD
     construction and netlist elaboration stay lazy. *)
  let is_concurrent =
    List.exists
      (fun f ->
        Ast.exists_stmt
          (fun st ->
            match st.Ast.s with
            | Ast.Par _ | Ast.Chan_send _ -> true
            | Ast.Expr _ | Ast.Decl _ | Ast.If _ | Ast.While _
            | Ast.Do_while _ | Ast.For _ | Ast.Return _ | Ast.Break
            | Ast.Continue | Ast.Block _ | Ast.Delay | Ast.Constrain _ ->
              false)
          f)
      program.Ast.funcs
  in
  let lowered_view =
    if is_concurrent then
      Error "concurrent program (par/channels): statement machine only"
    else
      match
        Passes.run ~options
          (Passes.pipeline (backend_name ^ "-structural")
             ~func_passes:[ Passes.simplify_pass ])
          program ~entry
      with
      | lowered, trace -> Ok (lowered.Lower.func, trace)
      | exception Lower.Error (msg, loc) ->
        Error
          (if loc = Ast.no_loc then "lowering failed: " ^ msg
           else
             Printf.sprintf "lowering failed at %d:%d: %s" loc.Ast.line
               loc.Ast.col msg)
  in
  let structural =
    lazy
      (match lowered_view with
      | Error _ -> None
      | Ok (func, _) -> (
        let fsmd =
          Fsmd.of_func func ~schedule_block:(Fsmd.handelc_schedule func)
        in
        match Rtlgen.elaborate fsmd with
        | e -> Some e
        | exception Rtlgen.Elaboration_error _ -> None))
  in
  { Design.design_name = entry;
    backend = backend_name;
    run;
    area =
      (fun () ->
        Option.map (fun e -> Area.analyze e.Rtlgen.netlist)
          (Lazy.force structural));
    verilog =
      (fun () ->
        Option.map (fun e -> Verilog.to_string e.Rtlgen.netlist)
          (Lazy.force structural));
    netlist =
      (fun () ->
        Option.map (fun e -> e.Rtlgen.netlist) (Lazy.force structural));
    clock_period =
      Some
        (match policy with
        | `One_cycle_per_assignment -> estimate_clock_period program
        | `Scheduled -> 20.);
    stats =
      (("estimated area", Printf.sprintf "%.0f" (estimate_area program))
      ::
      (match lowered_view with
      | Error msg -> [ ("structural view", "unavailable: " ^ msg) ]
      | Ok _ -> []));
    pass_trace =
      (source_trace
      @ match lowered_view with Ok (_, trace) -> trace | Error _ -> []) }

let dialect = Dialect.handelc

let pipeline =
  Passes.pipeline "handelc-structural"
    ~program_passes:[ Conc_check.pass Dialect.handelc ]
    ~func_passes:[ Passes.simplify_pass ]

let compile ?knobs (program : Ast.program) ~entry : Design.t =
  compile_with_policy ~backend_name:"handelc" ~dialect
    ~policy:`One_per_assignment ?knobs program ~entry

(** E4 recoding: fuse single-use temporaries first, saving their cycles. *)
let compile_fused (program : Ast.program) ~entry : Design.t =
  compile_with_policy ~backend_name:"handelc" ~dialect
    ~policy:`One_per_assignment
    ~program_passes:[ Passes.fuse_temps_pass ] program ~entry

let descriptor =
  Backend.make ~name:"handelc" ~aliases:[ "handel-c" ]
    ~pipeline:(Some pipeline)
    ~description:"one cycle per assignment, par/channels on the statement \
                  machine"
    ~dialect:Dialect.handelc
    (fun ~knobs program ~entry -> compile ~knobs program ~entry)
