(** Bach C backend [Kambe et al. 2001] — also used for Cyber/BDL.

    "Untimed semantics: the compiler does the scheduling" — resource-
    constrained list scheduling with chaining; the cycle count of each
    construct falls out of the schedule, not a syntactic rule.  Programs
    using Bach C's explicit concurrency (par/rendezvous) run on the
    statement machine with the scheduled packing policy. *)

val dialect : Dialect.t

val pipeline : Passes.pipeline
(** [lower; simplify] (sequential programs; the concurrent subset runs on
    the Handel-C statement machine instead). *)

val compile :
  ?knobs:Backend.knobs -> ?resources:Schedule.resources -> Ast.program ->
  entry:string -> Design.t
(** [resources] (when given) overrides [knobs.resources]; [knobs]
    otherwise carries the allocation plus pass options and unroll. *)

val compile_cyber :
  ?knobs:Backend.knobs -> Ast.program -> entry:string -> Design.t
(** Cyber/BDL rides the same scheduler (restricted C, no pointers or
    recursion), per its Table 1 row. *)

val descriptor : Backend.descriptor

val cyber_descriptor : Backend.descriptor
(** Cyber/BDL: same scheduler, distinct dialect and registration. *)
