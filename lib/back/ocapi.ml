(* Ocapi backend [Schaumont et al., DAC 1998; IMEC].

   The paper: "In IMEC's Ocapi system, the user's C++ program runs to
   generate a data structure that represents hardware.  Supplied classes
   provide mechanisms for specifying datapaths, finite-state machines,
   etc.  The result is translated into a language such as Verilog and
   synthesized."  Each FSM state gets a cycle.

   Here the host language is OCaml: this module is a combinator library
   whose *evaluation* builds an FSMD data structure — run the program, get
   the hardware.  Expressions build datapath operators, [add_state]
   defines a state (one cycle each, exactly Ocapi's timing rule), and
   [build] produces the same Fsmd.t the scheduled backends target, so all
   the simulation/elaboration/area machinery applies. *)

type exp =
  | Const of int * int (* value, width *)
  | Reg of int (* CIR register id *)
  | Read of int * exp (* region, address *)
  | Bin of Netlist.binop * exp * exp
  | Un of Netlist.unop * exp
  | Mux of exp * exp * exp

type action = Set of int * exp | Write of int * exp * exp

type transition =
  | Goto of int
  | Branch of exp * int * int
  | Done of exp option

type state_spec = { actions : action list; transition : transition }

type builder = {
  name : string;
  mutable widths : int list; (* reversed *)
  mutable reg_count : int;
  mutable params : (string * int) list; (* reversed *)
  mutable globals : (string * int * Bitvec.t) list; (* reversed *)
  mutable regions : Cir.region list; (* reversed *)
  mutable states : state_spec list; (* reversed *)
  mutable ret_width : int;
}

let create ~name =
  { name; widths = []; reg_count = 0; params = []; globals = [];
    regions = []; states = []; ret_width = 0 }

let new_reg b ~width =
  b.widths <- width :: b.widths;
  b.reg_count <- b.reg_count + 1;
  b.reg_count - 1

(** A named input port (entry parameter). *)
let input b ~name ~width =
  let r = new_reg b ~width in
  b.params <- (name, r) :: b.params;
  r

(** An architectural register, observable as output [g_<name>]. *)
let register b ~name ~width ~init =
  let r = new_reg b ~width in
  b.globals <- (name, r, Bitvec.of_int ~width init) :: b.globals;
  r

(** A scratch register. *)
let wire b ~width = new_reg b ~width

(** An on-chip memory. *)
let memory b ~name ~width ~depth =
  b.regions <-
    { Cir.rg_name = name; rg_words = depth; rg_width = width; rg_init = None }
    :: b.regions;
  List.length b.regions - 1

let set_result_width b width = b.ret_width <- width

(* expression constructors *)
let const ~width v = Const (v, width)
let reg r = Reg r
let read region addr = Read (region, addr)
let ( +: ) a b = Bin (Netlist.B_add, a, b)
let ( -: ) a b = Bin (Netlist.B_sub, a, b)
let ( *: ) a b = Bin (Netlist.B_mul, a, b)
let ( <: ) a b = Bin (Netlist.B_ult, a, b)
let ( ==: ) a b = Bin (Netlist.B_eq, a, b)
let ( &: ) a b = Bin (Netlist.B_and, a, b)
let ( |: ) a b = Bin (Netlist.B_or, a, b)
let ( ^: ) a b = Bin (Netlist.B_xor, a, b)
let ( >>: ) a b = Bin (Netlist.B_lshr, a, b)
let ( <<: ) a b = Bin (Netlist.B_shl, a, b)
let mux sel a b = Mux (sel, a, b)

(** Define a state executing [actions] this cycle, then [transition].
    Action right-hand sides all read the state's *entry* values (parallel
    register-transfer semantics); the transition expression evaluates
    *after* the actions and therefore observes the updated values — test
    the incremented counter, not the old one. *)
let add_state b actions transition =
  b.states <- { actions; transition } :: b.states;
  List.length b.states - 1

exception Build_error of string

(* Lower an Ocapi expression to CIR instructions, returning the operand. *)
let rec lower_exp b widths instrs = function
  | Const (v, width) -> Cir.O_imm (Bitvec.of_int ~width v)
  | Reg r -> Cir.O_reg r
  | Read (region, addr) ->
    let addr_op = lower_exp b widths instrs addr in
    let regions = Array.of_list (List.rev b.regions) in
    if region < 0 || region >= Array.length regions then
      raise (Build_error "bad region id");
    let dst = new_reg b ~width:regions.(region).Cir.rg_width in
    widths := (dst, regions.(region).Cir.rg_width) :: !widths;
    instrs := Cir.I_load { dst; region; addr = addr_op } :: !instrs;
    Cir.O_reg dst
  | Bin (op, x, y) ->
    let a = lower_exp b widths instrs x in
    let bo = lower_exp b widths instrs y in
    let width =
      if Netlist.is_comparison op then 1
      else operand_width b !widths a
    in
    let dst = new_reg b ~width in
    widths := (dst, width) :: !widths;
    instrs := Cir.I_bin { op; dst; a; b = bo } :: !instrs;
    Cir.O_reg dst
  | Un (op, x) ->
    let a = lower_exp b widths instrs x in
    let width =
      match op with
      | Netlist.U_reduce_or -> 1
      | Netlist.U_not | Netlist.U_neg -> operand_width b !widths a
    in
    let dst = new_reg b ~width in
    widths := (dst, width) :: !widths;
    instrs := Cir.I_un { op; dst; a } :: !instrs;
    Cir.O_reg dst
  | Mux (sel, x, y) ->
    let sel_op = lower_exp b widths instrs sel in
    let a = lower_exp b widths instrs x in
    let bo = lower_exp b widths instrs y in
    let width = operand_width b !widths a in
    let dst = new_reg b ~width in
    widths := (dst, width) :: !widths;
    instrs :=
      Cir.I_mux { dst; sel = sel_op; if_true = a; if_false = bo } :: !instrs;
    Cir.O_reg dst

and operand_width b extra = function
  | Cir.O_imm bv -> Bitvec.width bv
  | Cir.O_reg r -> (
    match List.assoc_opt r extra with
    | Some w -> w
    | None -> (
      (* widths list is reversed; index from the end *)
      let all = Array.of_list (List.rev b.widths) in
      if r < Array.length all then all.(r)
      else raise (Build_error "unknown register width")))

(** Evaluate the builder into an FSMD (one state = one cycle). *)
let build (b : builder) : Fsmd.t =
  let states = Array.of_list (List.rev b.states) in
  if Array.length states = 0 then raise (Build_error "no states defined");
  (* One CIR block per state so the FSMD constructor can reuse the
     one-block-one-state policy. *)
  let blocks = ref [] in
  Array.iteri
    (fun i spec ->
      let widths = ref [] and instrs = ref [] in
      (* Register-transfer semantics: all right-hand sides evaluate on the
         state's entry values (in parallel, like Verilog non-blocking
         assignments), then commit — so stage every expression first. *)
      let staged =
        List.map
          (fun action ->
            match action with
            | Set (r, e) -> `Set (r, lower_exp b widths instrs e)
            | Write (region, addr, value) ->
              let a = lower_exp b widths instrs addr in
              let v = lower_exp b widths instrs value in
              `Write (region, a, v))
          spec.actions
      in
      List.iter
        (fun staged_action ->
          match staged_action with
          | `Set (r, v) -> instrs := Cir.I_mov { dst = r; src = v } :: !instrs
          | `Write (region, a, v) ->
            instrs := Cir.I_store { region; addr = a; value = v } :: !instrs)
        staged;
      let term =
        match spec.transition with
        | Goto s -> Cir.T_jump s
        | Branch (e, t, f) ->
          let cond = lower_exp b widths instrs e in
          Cir.T_branch { cond; if_true = t; if_false = f }
        | Done e ->
          let v = Option.map (lower_exp b widths instrs) e in
          Cir.T_return v
      in
      blocks :=
        { Cir.b_id = i; instrs = List.rev !instrs; term } :: !blocks)
    states;
  let func =
    { Cir.fn_name = b.name;
      fn_params = List.rev b.params;
      fn_ret_width = b.ret_width;
      fn_blocks = Array.of_list (List.rev !blocks);
      fn_entry = 0;
      fn_reg_widths = Array.of_list (List.rev b.widths);
      fn_reg_count = b.reg_count;
      fn_regions = Array.of_list (List.rev b.regions);
      fn_globals = List.rev b.globals }
  in
  Fsmd.of_func func ~schedule_block:(Fsmd.transmogrifier_schedule func)

(** Wrap the generated structure as a Design. *)
let to_design (b : builder) : Design.t =
  let fsmd = build b in
  let engine = lazy (Fsmdcomp.create fsmd) in
  let run ?vcd ?sim args = Fsmd_common.simulate ~engine ?vcd ?sim fsmd ~args in
  let elaborated = lazy (Rtlgen.elaborate fsmd) in
  { Design.design_name = b.name;
    backend = "ocapi";
    pass_trace = [];  (* structural EDSL: no compilation pipeline runs *)
    run;
    area =
      (fun () ->
        match Lazy.force elaborated with
        | e -> Some (Area.analyze e.Rtlgen.netlist)
        | exception Rtlgen.Elaboration_error _ -> None);
    verilog =
      (fun () ->
        match Lazy.force elaborated with
        | e -> Some (Verilog.to_string e.Rtlgen.netlist)
        | exception Rtlgen.Elaboration_error _ -> None);
    netlist =
      (fun () ->
        match Lazy.force elaborated with
        | e -> Some e.Rtlgen.netlist
        | exception Rtlgen.Elaboration_error _ -> None);
    clock_period = Some (Float.max 1. (Fsmd.critical_state_delay fsmd));
    stats = [ ("states", string_of_int (Fsmd.num_states fsmd)) ] }

let descriptor =
  Backend.make ~name:"ocapi"
    ~capabilities:{ Backend.default_capabilities with
                    Backend.c_frontend = false }
    ~description:"structural EDSL: the OCaml program builds the FSMD \
                  directly (no C frontend)"
    ~dialect:Dialect.ocapi
    (fun ~knobs:_ _program ~entry:_ -> raise (Backend.No_c_frontend "ocapi"))
