(* Bach C backend [Kambe et al., ASP-DAC 2001] — also used for Cyber/BDL.

   The paper: "Sharp's Bach C ... has untimed semantics: the compiler does
   the scheduling; the number of cycles taken by each construct is not set
   by a rule.  It supports arrays but not pointers."

   Realization: resource-constrained list scheduling with operator
   chaining over each basic block; the number of control steps per
   construct falls out of the schedule, not a syntactic rule.  The
   allocation (functional units, memory ports, chain budget) is the
   designer-visible knob.

   Bach C's explicit concurrency (par + rendezvous) uses the same
   statement-machine machinery as Handel-C (see back/handelc.ml); this
   module is the scheduled sequential core, which is where it contrasts
   with the rule-based languages in experiment E3. *)

let dialect = Dialect.bachc

(* The concurrency checker is a declared prerequisite: Bach C's untimed
   semantics make any par-arm race a hard error (see Conc_check). *)
let pipeline =
  Passes.pipeline "bachc"
    ~program_passes:[ Conc_check.pass Dialect.bachc ]
    ~func_passes:[ Passes.simplify_pass ]

let compile ?(knobs = Backend.default_knobs) ?resources
    (program : Ast.program) ~entry : Design.t =
  let resources =
    match resources with Some r -> r | None -> knobs.Backend.resources
  in
  if Handelc.uses_concurrency program then
    (* The concurrent subset runs on the statement machine with scheduled
       block timing; Handel_sim provides it. *)
    Handelc.compile_with_policy ~backend_name:"bachc" ~dialect
      ~policy:`Scheduled ~knobs program ~entry
  else
    Fsmd_common.build ~backend_name:"bachc" ~dialect ~pipeline ~knobs
      ~schedule_block:(fun func blk ->
        Schedule.list_schedule func resources blk.Cir.instrs)
      program ~entry

(** Cyber/BDL rides the same scheduler (restricted C with extensions; no
    pointers or recursion), per its Table 1 row. *)
let compile_cyber ?knobs program ~entry = compile ?knobs program ~entry

let descriptor =
  Backend.make ~name:"bachc" ~aliases:[ "bach" ] ~pipeline:(Some pipeline)
    ~description:"untimed semantics: resource-constrained scheduling \
                  decides the cycles"
    ~dialect:Dialect.bachc
    (fun ~knobs program ~entry -> compile ~knobs program ~entry)

(* Cyber/BDL rides the same scheduler but is a distinct surveyed
   language: its own Table 1 row, dialect restrictions and registration. *)
let cyber_descriptor =
  Backend.make ~name:"cyber" ~aliases:[ "bdl" ] ~pipeline:(Some pipeline)
    ~description:"restricted C (BDL) on the Bach C scheduler"
    ~dialect:Dialect.cyber
    (fun ~knobs program ~entry -> compile_cyber ~knobs program ~entry)
