(** Transmogrifier C backend [Galloway 1995]: the implicit rule "only
    loop iterations and function calls take a cycle" — calls are inlined
    (block boundaries) and every basic block becomes one FSM state with
    everything chained, so the clock period grows with the longest block
    (the timing pathology of E3/E4). *)

val dialect : Dialect.t

val pipeline : Passes.pipeline
(** [lower; simplify]. *)

val unrolled_pipeline : Passes.pipeline
(** [unroll-loops; lower; simplify] (E4's recoding, as a declared pass). *)

val compile : ?knobs:Backend.knobs -> Ast.program -> entry:string -> Design.t

val compile_unrolled : Ast.program -> entry:string -> Design.t
(** E4's recoding: unroll every bounded loop first, trading cycles for
    combinational depth. *)

val descriptor : Backend.descriptor
