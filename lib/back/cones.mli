(** Cones backend [Stroud/Munoz/Pierce 1988]: symbolic execution of the
    (inlined) entry function into a pure combinational netlist.  Bounded
    loops unroll fully, conditionals (and early returns) if-convert into
    muxes, arrays become signal vectors with mux trees for dynamic
    indexing — the area-explosion behaviour experiment E5 measures. *)

exception Unsupported of string

val pipeline : Passes.pipeline
(** Source-only and empty: Cones symbolically executes the AST directly,
    unrolling loops itself. *)

val synthesize : Ast.program -> entry:string -> Netlist.t
(** The combinational netlist; scalar globals appear as [g_<name>]
    outputs.  @raise Unsupported / Failure outside the Cones dialect. *)

val compile : ?knobs:Backend.knobs -> Ast.program -> entry:string -> Design.t

val descriptor : Backend.descriptor
