(** Ocapi backend [Schaumont et al. 1998, IMEC]: "the user's program runs
    to generate a data structure that represents hardware".  This is a
    combinator library whose evaluation builds an FSMD — expressions
    construct datapath operators, [add_state] defines one state (one
    cycle each, Ocapi's timing rule), [build]/[to_design] produce the
    same artifacts the scheduled backends emit.

    Semantics: action right-hand sides all read the state's *entry*
    values (parallel register transfers); the transition expression
    evaluates after the actions, observing the updated values. *)

type exp =
  | Const of int * int  (** value, width *)
  | Reg of int
  | Read of int * exp  (** memory, address *)
  | Bin of Netlist.binop * exp * exp
  | Un of Netlist.unop * exp
  | Mux of exp * exp * exp

type action = Set of int * exp | Write of int * exp * exp

type transition =
  | Goto of int
  | Branch of exp * int * int
  | Done of exp option

type builder

exception Build_error of string

val create : name:string -> builder

val input : builder -> name:string -> width:int -> int
(** A named input port (entry parameter); returns its register. *)

val register : builder -> name:string -> width:int -> init:int -> int
(** An architectural register, observable as output [g_<name>]. *)

val wire : builder -> width:int -> int
(** A scratch register. *)

val memory : builder -> name:string -> width:int -> depth:int -> int
(** An on-chip memory; returns its region id. *)

val set_result_width : builder -> int -> unit

(** {1 Expression constructors} *)

val const : width:int -> int -> exp
val reg : int -> exp
val read : int -> exp -> exp
val ( +: ) : exp -> exp -> exp
val ( -: ) : exp -> exp -> exp
val ( *: ) : exp -> exp -> exp

val ( <: ) : exp -> exp -> exp
(** Unsigned less-than; [>>:] is a logical shift too. *)

val ( ==: ) : exp -> exp -> exp
val ( &: ) : exp -> exp -> exp
val ( |: ) : exp -> exp -> exp
val ( ^: ) : exp -> exp -> exp
val ( >>: ) : exp -> exp -> exp
val ( <<: ) : exp -> exp -> exp
val mux : exp -> exp -> exp -> exp

val add_state : builder -> action list -> transition -> int
(** Define a state; returns its id (states are numbered from 0 in
    definition order, so transitions may reference forward ids). *)

val build : builder -> Fsmd.t
val to_design : builder -> Design.t

val descriptor : Backend.descriptor
(** Registered for discoverability; its [compile] raises
    {!Backend.No_c_frontend} — build designs with this module instead. *)
