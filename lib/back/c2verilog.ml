(* C2Verilog backend [Soderman & Panchul, FCCM 1998].

   The paper: "C2Verilog ... has truly broad support for ANSI C.  It can
   translate pointers, recursion, dynamic memory allocation, and other
   thorny C constructs" with cycles inserted by "complex rules".

   Supporting *all* of C — pointers into an undifferentiated address
   space, arbitrary recursion, malloc — forces the generated hardware
   toward a processor-shaped design: a unified memory, a runtime stack,
   and sequentialized execution.  This backend makes that architectural
   consequence explicit: it compiles the whole program to a word stack
   machine (code ROM + unified RAM + small datapath FSM) whose per-
   instruction cycle rules model the "complex rules" knob.  Experiment E9
   compares it against Bach C's partitioned-memory FSMD on the same
   kernels to quantify what the paper's memory-model complaint costs.

   Points-to analysis (ir/pointer.ml) is consulted for the E9 report: if
   every pointer resolves to one region, the memory could be banked. *)

exception Compile_error of string

let error fmt = Printf.ksprintf (fun m -> raise (Compile_error m)) fmt

(* --- the instruction set --- *)

type instr =
  | Push of int64
  | Push_global_addr of int (* absolute word address *)
  | Push_frame_addr of int (* FP + offset *)
  | Load (* pop addr, push mem[addr] *)
  | Store (* pop value, pop addr *)
  | Bin of Netlist.binop * int (* op then truncate to width *)
  | Un of Netlist.unop * int
  | Cast of { signed : bool; from_width : int; to_width : int }
  | Dup
  | Drop
  | Jump of int
  | Jump_if_zero of int
  | Call of int * int (* target pc, argument words *)
  | Enter of int (* allocate this many local words *)
  | Ret of { args : int; has_value : bool }
  | Alloc (* pop word count, push heap address *)
  | Halt of { has_value : bool }

let cycles_of_instr = function
  | Push _ | Push_global_addr _ | Push_frame_addr _ | Dup | Drop -> 1
  | Load | Store -> 2 (* unified memory access *)
  | Bin ((Netlist.B_mul), _) -> 2
  | Bin ((Netlist.B_udiv | Netlist.B_urem | Netlist.B_sdiv | Netlist.B_srem), _)
    -> 8
  | Bin _ | Un _ | Cast _ -> 1
  | Jump _ | Jump_if_zero _ -> 1
  | Call _ | Ret _ | Enter _ -> 2
  | Alloc -> 2
  | Halt _ -> 1

(* --- compilation --- *)

type var_binding = { offset : int; is_global : bool; ty : Ctypes.t }

type fn_info = {
  mutable address : int;
  arg_words : int;
  local_layout : (string, var_binding) Hashtbl.t;
  frame_words : int;
}

type compiler = {
  program : Ast.program;
  mutable code : instr list; (* reversed *)
  mutable pc : int;
  functions : (string, fn_info) Hashtbl.t;
  globals_layout : (string, var_binding) Hashtbl.t;
  mutable global_words : int;
  mutable fixups : (int * string) list; (* code index -> function name *)
  mutable loop_stack : (int ref list * int ref list) list;
    (* (break fixups, continue fixups) — patched when targets known *)
  mutable pending_jumps : (int * int ref) list; (* code index -> target cell *)
}

let emit c instr =
  c.code <- instr :: c.code;
  c.pc <- c.pc + 1

let emit_jump c make_instr target_cell =
  let index = c.pc in
  emit c (make_instr 0);
  c.pending_jumps <- (index, target_cell) :: c.pending_jumps;
  index

let width_of ty = max 1 (Ctypes.width ty)

(* Frame layout (word offsets relative to FP):
     FP-2-n .. FP-3 : arguments (first arg lowest)
     FP-2           : return pc
     FP-1           : saved FP
     FP+0 ..        : locals (scalars and arrays, allocated statically) *)

(* First pass over a function body: assign every local a frame slot.
   C scoping is approximated by unique slots per (name, textual order);
   shadowing in disjoint blocks wastes slots but stays correct because we
   resolve names during the second pass with a scope stack. *)

type scope_entry = { name : string; binding : var_binding }

let compile_function c (f : Ast.func) (info : fn_info) =
  info.address <- c.pc;
  let scope_stack : scope_entry list ref list ref = ref [ ref [] ] in
  let push_scope () = scope_stack := ref [] :: !scope_stack in
  let pop_scope () = scope_stack := List.tl !scope_stack in
  let bind_local name binding =
    match !scope_stack with
    | top :: _ -> top := { name; binding } :: !top
    | [] -> error "no scope"
  in
  let next_local = ref 0 in
  let alloc_local words =
    let offset = !next_local in
    next_local := !next_local + words;
    offset
  in
  let lookup name =
    let rec in_scopes = function
      | [] -> None
      | scope :: rest -> (
        match
          List.find_opt (fun e -> String.equal e.name name) !scope
        with
        | Some e -> Some e.binding
        | None -> in_scopes rest)
    in
    match in_scopes !scope_stack with
    | Some b -> Some b
    | None -> Hashtbl.find_opt c.globals_layout name
  in
  (* parameters *)
  let nargs = List.length f.Ast.f_params in
  List.iteri
    (fun i (ty, name) ->
      let ty =
        match ty with Ctypes.Array (elt, _) -> Ctypes.Pointer elt | t -> t
      in
      bind_local name
        { offset = -(2 + nargs) + i; is_global = false; ty })
    f.Ast.f_params;
  let enter_index = c.pc in
  emit c (Enter 0) (* patched once frame size is known *);
  let rec push_lvalue_address (e : Ast.expr) =
    match e.Ast.e with
    | Ast.Var name -> (
      match lookup name with
      | Some b -> (
        match b.ty with
        | Ctypes.Array _ | Ctypes.Integer _ | Ctypes.Pointer _ | Ctypes.Void
        | Ctypes.Function _ ->
          if b.is_global then emit c (Push_global_addr b.offset)
          else emit c (Push_frame_addr b.offset))
      | None -> error "unbound %s" name)
    | Ast.Deref p -> push_expr p
    | Ast.Index (base, idx) ->
      let elt_ty =
        match Ctypes.decay base.Ast.ty with
        | Ctypes.Pointer elt -> elt
        | _ -> error "indexing non-pointer"
      in
      push_array_base base;
      push_expr idx;
      (match max 1 (Ctypes.word_count elt_ty) with
      | 1 -> ()
      | scale ->
        emit c (Push (Int64.of_int scale));
        emit c (Bin (Netlist.B_mul, 32)));
      emit c (Cast { signed = true; from_width = 32; to_width = 32 });
      emit c (Bin (Netlist.B_add, 32))
    | _ -> error "not an lvalue"
  and push_array_base (e : Ast.expr) =
    (* the address value of an array-typed expression *)
    match e.Ast.ty with
    | Ctypes.Array _ -> push_lvalue_address e
    | Ctypes.Void | Ctypes.Integer _ | Ctypes.Pointer _ | Ctypes.Function _
      -> push_expr e
  and push_expr (e : Ast.expr) =
    match e.Ast.e with
    | Ast.Const (v, ty) ->
      emit c (Push (Bitvec.to_int64_unsigned (Bitvec.of_int64 ~width:(width_of ty) v)))
    | Ast.Var name -> (
      match lookup name with
      | Some b -> (
        match b.ty with
        | Ctypes.Array _ ->
          (* array decays to its address *)
          if b.is_global then emit c (Push_global_addr b.offset)
          else emit c (Push_frame_addr b.offset)
        | Ctypes.Integer _ | Ctypes.Pointer _ | Ctypes.Void
        | Ctypes.Function _ ->
          push_lvalue_address e;
          emit c Load)
      | None -> error "unbound %s" name)
    | Ast.Unop (Ast.Log_not, a) ->
      push_expr a;
      emit c (Push 0L);
      emit c (Bin (Netlist.B_eq, width_of e.Ast.ty))
    | Ast.Unop (op, a) ->
      push_expr a;
      emit c
        (Un
           ( (match op with
             | Ast.Neg -> Netlist.U_neg
             | Ast.Bit_not -> Netlist.U_not
             | Ast.Log_not ->
               error
                 "internal: !e must be emitted as a == 0 comparison, \
                  not a unary opcode"),
             width_of e.Ast.ty ))
    | Ast.Binop ((Ast.Log_and | Ast.Log_or) as op, a, b) ->
      (* short-circuit via jumps *)
      let end_cell = ref 0 in
      push_expr a;
      emit c (Push 0L);
      emit c (Bin (Netlist.B_ne, width_of a.Ast.ty));
      emit c Dup;
      (match op with
      | Ast.Log_and ->
        (* if lhs false, result is the 0 on the stack *)
        ignore (emit_jump c (fun t -> Jump_if_zero t) end_cell);
        emit c Drop;
        push_expr b;
        emit c (Push 0L);
        emit c (Bin (Netlist.B_ne, width_of b.Ast.ty))
      | Ast.Log_or ->
        let rhs_cell = ref 0 in
        ignore (emit_jump c (fun t -> Jump_if_zero t) rhs_cell);
        (* lhs true: result is the 1 on the stack *)
        ignore (emit_jump c (fun t -> Jump t) end_cell);
        rhs_cell := c.pc;
        emit c Drop;
        push_expr b;
        emit c (Push 0L);
        emit c (Bin (Netlist.B_ne, width_of b.Ast.ty))
      | _ ->
        error
          "internal: short-circuit emission reached with a non-logical \
           operator");
      end_cell := c.pc
    | Ast.Binop (op, a, b) -> push_binop e op a b
    | Ast.Assign (lhs, rhs) ->
      (* value of an assignment: store then reload the lvalue *)
      push_lvalue_address lhs;
      emit c Dup;
      push_expr rhs;
      emit c Store;
      emit c Load
    | Ast.Cond (cond, t, f) ->
      let else_cell = ref 0 and end_cell = ref 0 in
      push_expr cond;
      ignore (emit_jump c (fun x -> Jump_if_zero x) else_cell);
      push_expr t;
      ignore (emit_jump c (fun x -> Jump x) end_cell);
      else_cell := c.pc;
      push_expr f;
      end_cell := c.pc
    | Ast.Call ("malloc", [ n ]) ->
      push_expr n;
      emit c Alloc
    | Ast.Call (name, args) ->
      List.iter push_expr args;
      let index = c.pc in
      emit c (Call (0, List.length args));
      c.fixups <- (index, name) :: c.fixups
    | Ast.Index _ | Ast.Deref _ ->
      (match e.Ast.ty with
      | Ctypes.Array _ -> push_lvalue_address e
      | Ctypes.Void | Ctypes.Integer _ | Ctypes.Pointer _
      | Ctypes.Function _ ->
        push_lvalue_address e;
        emit c Load)
    | Ast.Addr_of a -> push_lvalue_address a
    | Ast.Cast (ty, a) ->
      push_expr a;
      let from_width = width_of a.Ast.ty and to_width = width_of ty in
      if from_width <> to_width then
        emit c
          (Cast { signed = Ctypes.is_signed a.Ast.ty; from_width; to_width })
    | Ast.Chan_recv _ -> error "C2Verilog has no channels"
  and push_binop e op a b =
    let pointer_scale ty =
      match ty with
      | Ctypes.Pointer elt -> max 1 (Ctypes.word_count elt)
      | _ -> 1
    in
    match (op, Ctypes.is_pointer a.Ast.ty, Ctypes.is_pointer b.Ast.ty) with
    | Ast.Add, true, false | Ast.Sub, true, false ->
      push_expr a;
      push_expr b;
      (match pointer_scale a.Ast.ty with
      | 1 -> ()
      | s ->
        emit c (Push (Int64.of_int s));
        emit c (Bin (Netlist.B_mul, 32)));
      emit c
        (Bin
           ( (if op = Ast.Add then Netlist.B_add else Netlist.B_sub),
             Ctypes.pointer_width ))
    | Ast.Sub, true, true ->
      push_expr a;
      push_expr b;
      emit c (Bin (Netlist.B_sub, 32));
      (match pointer_scale a.Ast.ty with
      | 1 -> ()
      | s ->
        emit c (Push (Int64.of_int s));
        emit c (Bin (Netlist.B_sdiv, 32)))
    | _ ->
      push_expr a;
      push_expr b;
      let signed = Ctypes.is_signed a.Ast.ty in
      let w = width_of a.Ast.ty in
      let bin netop = emit c (Bin (netop, w)) in
      (match op with
      | Ast.Add -> bin Netlist.B_add
      | Ast.Sub -> bin Netlist.B_sub
      | Ast.Mul -> bin Netlist.B_mul
      | Ast.Div -> bin (if signed then Netlist.B_sdiv else Netlist.B_udiv)
      | Ast.Mod -> bin (if signed then Netlist.B_srem else Netlist.B_urem)
      | Ast.Band -> bin Netlist.B_and
      | Ast.Bor -> bin Netlist.B_or
      | Ast.Bxor -> bin Netlist.B_xor
      | Ast.Shl -> bin Netlist.B_shl
      | Ast.Shr -> bin (if signed then Netlist.B_ashr else Netlist.B_lshr)
      | Ast.Eq -> bin Netlist.B_eq
      | Ast.Ne -> bin Netlist.B_ne
      | Ast.Lt -> bin (if signed then Netlist.B_slt else Netlist.B_ult)
      | Ast.Le -> bin (if signed then Netlist.B_sle else Netlist.B_ule)
      | Ast.Gt | Ast.Ge ->
        (* emit as swapped lt/le: re-push in swapped order *)
        ()
      | Ast.Log_and | Ast.Log_or ->
        error
          "internal: && and || are short-circuit control flow, not stack \
           datapath ops (handled in push_expr)");
      (match op with
      | Ast.Gt | Ast.Ge ->
        (* redo with swapped operand order *)
        c.code <- (match c.code with _ :: _ -> c.code | [] -> c.code);
        error "internal: Gt/Ge must be normalized before emission"
      | _ -> ());
      ignore e
  and exec_stmt (st : Ast.stmt) =
    match st.Ast.s with
    | Ast.Expr e ->
      push_expr e;
      if not (Ctypes.equal e.Ast.ty Ctypes.Void) then emit c Drop
    | Ast.Decl (ty, name, init) -> (
      let words = max 1 (Ctypes.word_count ty) in
      let offset = alloc_local words in
      bind_local name { offset; is_global = false; ty };
      match init with
      | None -> ()
      | Some e ->
        emit c (Push_frame_addr offset);
        push_expr e;
        emit c Store)
    | Ast.If (cond, t, f) ->
      let else_cell = ref 0 and end_cell = ref 0 in
      push_expr cond;
      ignore (emit_jump c (fun x -> Jump_if_zero x) else_cell);
      push_scope ();
      List.iter exec_stmt t;
      pop_scope ();
      ignore (emit_jump c (fun x -> Jump x) end_cell);
      else_cell := c.pc;
      push_scope ();
      List.iter exec_stmt f;
      pop_scope ();
      end_cell := c.pc
    | Ast.While (cond, body) ->
      let top = c.pc in
      let exit_cell = ref 0 in
      push_expr cond;
      ignore (emit_jump c (fun x -> Jump_if_zero x) exit_cell);
      let top_cell = ref top in
      c.loop_stack <- ([ exit_cell ], [ top_cell ]) :: c.loop_stack;
      push_scope ();
      List.iter exec_stmt body;
      pop_scope ();
      c.loop_stack <- List.tl c.loop_stack;
      ignore (emit_jump c (fun x -> Jump x) top_cell);
      exit_cell := c.pc
    | Ast.Do_while (body, cond) ->
      let top = c.pc in
      let exit_cell = ref 0 and test_cell = ref 0 in
      c.loop_stack <- ([ exit_cell ], [ test_cell ]) :: c.loop_stack;
      push_scope ();
      List.iter exec_stmt body;
      pop_scope ();
      c.loop_stack <- List.tl c.loop_stack;
      test_cell := c.pc;
      push_expr cond;
      ignore (emit_jump c (fun x -> Jump_if_zero x) exit_cell);
      let top_cell = ref top in
      ignore (emit_jump c (fun x -> Jump x) top_cell);
      exit_cell := c.pc
    | Ast.For (init, cond, step, body) ->
      push_scope ();
      (match init with None -> () | Some st -> exec_stmt st);
      let top = c.pc in
      let exit_cell = ref 0 and step_cell = ref 0 in
      (match cond with
      | None -> ()
      | Some e ->
        push_expr e;
        ignore (emit_jump c (fun x -> Jump_if_zero x) exit_cell));
      c.loop_stack <- ([ exit_cell ], [ step_cell ]) :: c.loop_stack;
      push_scope ();
      List.iter exec_stmt body;
      pop_scope ();
      c.loop_stack <- List.tl c.loop_stack;
      step_cell := c.pc;
      (match step with
      | None -> ()
      | Some e ->
        push_expr e;
        emit c Drop);
      let top_cell = ref top in
      ignore (emit_jump c (fun x -> Jump x) top_cell);
      exit_cell := c.pc;
      pop_scope ()
    | Ast.Return value ->
      let has_value = value <> None in
      (match value with None -> () | Some e -> push_expr e);
      emit c (Ret { args = nargs; has_value })
    | Ast.Break -> (
      match c.loop_stack with
      | (exit_cell :: _, _) :: _ ->
        ignore (emit_jump c (fun x -> Jump x) exit_cell)
      | ([], _) :: _ | [] -> error "break outside loop")
    | Ast.Continue -> (
      match c.loop_stack with
      | (_, continue_cell :: _) :: _ ->
        ignore (emit_jump c (fun x -> Jump x) continue_cell)
      | (_, []) :: _ | [] -> error "continue outside loop")
    | Ast.Block body ->
      push_scope ();
      List.iter exec_stmt body;
      pop_scope ()
    | Ast.Par _ | Ast.Chan_send _ -> error "C2Verilog has no concurrency"
    | Ast.Delay -> ()
    | Ast.Constrain (_, _, body) ->
      push_scope ();
      List.iter exec_stmt body;
      pop_scope ()
  in
  push_scope ();
  List.iter exec_stmt f.Ast.f_body;
  pop_scope ();
  (* implicit return *)
  if Ctypes.equal f.Ast.f_ret Ctypes.Void then
    emit c (Ret { args = nargs; has_value = false })
  else begin
    emit c (Push 0L);
    emit c (Ret { args = nargs; has_value = true })
  end;
  (* patch the frame size *)
  let code = Array.of_list (List.rev c.code) in
  code.(enter_index) <- Enter !next_local;
  c.code <- List.rev (Array.to_list code)

(* Gt/Ge are normalized to Lt/Le with swapped operands before emission. *)
let rec normalize_expr (e : Ast.expr) : Ast.expr =
  let sub = normalize_expr in
  let desc =
    match e.Ast.e with
    | Ast.Binop (Ast.Gt, a, b) -> Ast.Binop (Ast.Lt, sub b, sub a)
    | Ast.Binop (Ast.Ge, a, b) -> Ast.Binop (Ast.Le, sub b, sub a)
    | Ast.Binop (op, a, b) -> Ast.Binop (op, sub a, sub b)
    | Ast.Unop (op, a) -> Ast.Unop (op, sub a)
    | Ast.Assign (l, r) -> Ast.Assign (sub l, sub r)
    | Ast.Cond (a, b, c2) -> Ast.Cond (sub a, sub b, sub c2)
    | Ast.Call (f, args) -> Ast.Call (f, List.map sub args)
    | Ast.Index (a, b) -> Ast.Index (sub a, sub b)
    | Ast.Deref a -> Ast.Deref (sub a)
    | Ast.Addr_of a -> Ast.Addr_of (sub a)
    | Ast.Cast (ty, a) -> Ast.Cast (ty, sub a)
    | Ast.Const _ | Ast.Var _ | Ast.Chan_recv _ -> e.Ast.e
  in
  { e with Ast.e = desc }

let rec normalize_stmt (st : Ast.stmt) : Ast.stmt =
  let se = normalize_expr and sb = List.map normalize_stmt in
  let desc =
    match st.Ast.s with
    | Ast.Expr e -> Ast.Expr (se e)
    | Ast.Decl (ty, n, init) -> Ast.Decl (ty, n, Option.map se init)
    | Ast.If (c2, t, f) -> Ast.If (se c2, sb t, sb f)
    | Ast.While (c2, b) -> Ast.While (se c2, sb b)
    | Ast.Do_while (b, c2) -> Ast.Do_while (sb b, se c2)
    | Ast.For (i, c2, s, b) ->
      Ast.For (Option.map normalize_stmt i, Option.map se c2, Option.map se s, sb b)
    | Ast.Return v -> Ast.Return (Option.map se v)
    | Ast.Break -> Ast.Break
    | Ast.Continue -> Ast.Continue
    | Ast.Block b -> Ast.Block (sb b)
    | Ast.Par bs -> Ast.Par (List.map sb bs)
    | Ast.Chan_send (ch, e) -> Ast.Chan_send (ch, se e)
    | Ast.Delay -> Ast.Delay
    | Ast.Constrain (lo, hi, b) -> Ast.Constrain (lo, hi, sb b)
  in
  { st with Ast.s = desc }

type compiled = {
  code : instr array;
  entry_pc : int;
  entry_args : int;
  memory_words : int;
  initial_memory : (int * Bitvec.t) list;
  globals_layout : (string, var_binding) Hashtbl.t;
  stack_base : int;
  heap_base : int;
}

let compile_program (program : Ast.program) ~entry : compiled =
  let program =
    { program with
      Ast.funcs =
        List.map
          (fun f -> { f with Ast.f_body = List.map normalize_stmt f.Ast.f_body })
          program.Ast.funcs }
  in
  let c =
    { program;
      code = [];
      pc = 0;
      functions = Hashtbl.create 16;
      globals_layout = Hashtbl.create 16;
      global_words = 0;
      fixups = [];
      loop_stack = [];
      pending_jumps = [] }
  in
  (* lay out globals at the bottom of memory *)
  let initial_memory = ref [] in
  List.iter
    (fun (g : Ast.global) ->
      let words = max 1 (Ctypes.word_count g.Ast.g_ty) in
      let base = c.global_words in
      c.global_words <- c.global_words + words;
      Hashtbl.replace c.globals_layout g.Ast.g_name
        { offset = base; is_global = true; ty = g.Ast.g_ty };
      let elem_width =
        match g.Ast.g_ty with
        | Ctypes.Array (elt, _) -> width_of elt
        | ty -> width_of ty
      in
      match g.Ast.g_init with
      | None -> ()
      | Some values ->
        List.iteri
          (fun i v ->
            if i < words then
              initial_memory :=
                (base + i, Bitvec.of_int64 ~width:elem_width v)
                :: !initial_memory)
          values)
    program.Ast.globals;
  (* compile every function *)
  List.iter
    (fun (f : Ast.func) ->
      Hashtbl.replace c.functions f.Ast.f_name
        { address = -1;
          arg_words = List.length f.Ast.f_params;
          local_layout = Hashtbl.create 8;
          frame_words = 0 })
    program.Ast.funcs;
  List.iter
    (fun (f : Ast.func) ->
      let info = Hashtbl.find c.functions f.Ast.f_name in
      compile_function c f info)
    program.Ast.funcs;
  let code = Array.of_list (List.rev c.code) in
  (* patch calls *)
  List.iter
    (fun (index, name) ->
      match Hashtbl.find_opt c.functions name with
      | Some info -> (
        match code.(index) with
        | Call (_, n) -> code.(index) <- Call (info.address, n)
        | _ -> error "bad call fixup")
      | None -> error "undefined function %s" name)
    c.fixups;
  (* patch jumps *)
  List.iter
    (fun (index, cell) ->
      match code.(index) with
      | Jump _ -> code.(index) <- Jump !cell
      | Jump_if_zero _ -> code.(index) <- Jump_if_zero !cell
      | _ -> error "bad jump fixup")
    c.pending_jumps;
  let entry_info =
    match Hashtbl.find_opt c.functions entry with
    | Some i -> i
    | None -> error "entry %s not found" entry
  in
  let stack_base = c.global_words in
  { code;
    entry_pc = entry_info.address;
    entry_args = entry_info.arg_words;
    memory_words = 1 lsl 16;
    initial_memory = !initial_memory;
    globals_layout = c.globals_layout;
    stack_base;
    heap_base = 1 lsl 15 }
