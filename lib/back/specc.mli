(** SpecC backend [Gajski et al. 2000]: the "resolutely refinement-based"
    methodology as executable steps — specification (untimed oracle),
    architecture (scheduled), communication (cycle-true rendezvous),
    implementation (RTL) — each checked for behavioural equivalence on
    the supplied test vectors. *)

type level = Specification | Architecture | Communication | Implementation

val string_of_level : level -> string

type check = {
  level : level;
  vector : int list;
  observed : int option;
  expected : int option;
  equivalent : bool;
  cycles : int option;
}

type report = { checks : check list; all_equivalent : bool }

val dialect : Dialect.t

val pipeline : Passes.pipeline
(** The architecture-level refinement's pipeline: [lower; simplify]. *)

val refine :
  ?knobs:Backend.knobs -> Ast.program -> entry:string ->
  test_vectors:int list list -> Design.t * report
(** Run the full flow; the returned design is the implementation level.
    [knobs] supplies the architecture level's resource allocation. *)

val compile : ?knobs:Backend.knobs -> Ast.program -> entry:string -> Design.t

val descriptor : Backend.descriptor
