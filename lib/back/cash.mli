(** CASH backend [Budiu & Goldstein 2002]: C -> SSA -> Pegasus-style
    asynchronous dataflow circuit, executed by the timed token simulator.
    No clock; performance is the dynamic critical path. *)

val dialect : Dialect.t

val pipeline : Passes.pipeline
(** [lower] only: the dataflow circuit is built from the SSA of the raw
    lowering. *)

val compile :
  ?timing:Asim.timing -> Ast.program -> entry:string -> Design.t
