(** CASH backend [Budiu & Goldstein 2002]: C -> SSA -> Pegasus-style
    asynchronous dataflow circuit, executed by the timed token simulator.
    No clock; performance is the dynamic critical path. *)

val dialect : Dialect.t

val pipeline : Passes.pipeline
(** [lower] only: the dataflow circuit is built from the SSA of the raw
    lowering. *)

val compile :
  ?knobs:Backend.knobs -> ?timing:Asim.timing -> ?handshake:float ->
  Ast.program -> entry:string -> Design.t
(** [timing] overrides the operator latency model wholesale; [handshake]
    (used only when [timing] is absent) adjusts the per-token overhead of
    the default width-aware model — the knob ablations sweep. *)

val descriptor : Backend.descriptor
