(** The C2Verilog execution engine: a word stack machine (code ROM + one
    unified RAM + small datapath) simulated cycle-by-cycle under the
    backend's rule set, plus its Design wrapper.

    Memory map: globals in [0, stack_base), the combined evaluation/call
    stack in [stack_base, heap_base) growing up, the malloc heap above.
    Every stored word is masked to its C type's width. *)

exception Runtime_error of string
exception Timeout

type outcome = {
  return_value : Bitvec.t option;
  cycles : int;
  instructions_executed : int;
  globals : (string * Bitvec.t) list;
  memories : (string * Bitvec.t array) list;
}

val run :
  ?max_cycles:int -> C2verilog.compiled -> ret_width:int ->
  args:Bitvec.t list -> outcome
(** Boot protocol: arguments then a return pc beyond the code; execution
    ends when the entry function returns there.
    @raise Runtime_error on stack overflow / wild access,
    @raise Timeout past [max_cycles]. *)

val pipeline : Passes.pipeline
(** Source-only and empty: the stack-machine compiler consumes the AST
    (pointers and recursion need the unified memory, not CIR). *)

val compile : ?knobs:Backend.knobs -> Ast.program -> entry:string -> Design.t
(** The full backend: compile to stack code, wrap the machine; the
    Verilog view is the generated processor (see {!C2v_verilog}). *)

val descriptor : Backend.descriptor
