(** The common result type of every synthesis backend.

    Backends produce different artifacts (combinational netlists,
    scheduled FSMDs, statement machines, asynchronous circuits, a stack
    machine), so a design exposes a uniform behavioural interface — run on
    inputs, observe outputs and timing — plus optional structural views. *)

type engine =
  | Compiled  (** levelized-closure fast path ({!Netcomp}/{!Fsmdcomp}) *)
  | Event_driven  (** interpreting oracle ({!Neteval}/{!Rtlsim}) *)
  | Full_sweep  (** every-node re-evaluation oracle *)
      (** Which simulation engine executes the behavioural run.  The two
          interpreters survive as differential oracles for the compiled
          engine ([chlsc compile --verify-sim]); backends with a single
          simulator ignore the selection. *)

val engine_name : engine -> string
(** ["compiled"], ["event"], ["sweep"] — the [--sim] flag values. *)

val engine_of_name : string -> engine option

type run_result = {
  result : Bitvec.t option;
  globals : (string * Bitvec.t) list;  (** scalar globals after the run *)
  memories : (string * Bitvec.t array) list;  (** array globals after *)
  cycles : int option;  (** clocked designs *)
  time_units : float option;  (** asynchronous / combinational settle *)
  metrics : Metrics.t;
      (** simulator performance counters for this run (cycles, state
          visits, token firings, evaluator activity) in the unified
          registry; [chlsc compile --metrics-json] merges it into the run
          report *)
}

type t = {
  design_name : string;
  backend : string;
  run : ?vcd:Vcd.t -> ?sim:engine -> Bitvec.t list -> run_result;
      (** [vcd]: trace the behavioural simulation as a waveform (the FSMD
          backends trace per-cycle register state, CASH traces token
          firings); backends whose simulator has no trace hook ignore
          it.  [sim]: engine selection, default {!Compiled}; backends
          with a single simulator ignore it *)
  area : unit -> Area.report option;
  verilog : unit -> string option;
  netlist : unit -> Netlist.t option;
      (** the word-level structural view, when the backend elaborates to
          one (area and Verilog derive from it; [chlsc --stats] drives it
          through the netlist evaluator) *)
  clock_period : float option;  (** estimated; [None] when unclocked *)
  stats : (string * string) list;  (** backend-specific facts *)
  pass_trace : Passes.trace;
      (** per-pass compile record (time, IR-size deltas, vectors verified)
          from the backend's declared pipeline; [[]] for structural
          backends that run no passes.  [chlsc compile --trace-passes]
          renders it. *)
}

val int_args : int list -> Bitvec.t list
(** 64-bit argument vectors from plain integers. *)

val run_traced :
  ?ctx:Span.ctx -> ?vcd:Vcd.t -> ?sim:engine -> t -> Bitvec.t list -> run_result
(** [run] inside a ["simulate"] span: backend and engine kind as
    attributes up front, cycles / settle time attached on completion, an
    ["error"] attribute (and a re-raise) on simulator exceptions.  With
    the default null context this is exactly [design.run]. *)

val run_int : t -> int list -> int option
(** Run with integer arguments; the result as an int. *)

val latency_estimate : t -> run_result -> float option
(** Wall-clock estimate: cycles x clock period for clocked designs, the
    recorded completion/settle time otherwise. *)
