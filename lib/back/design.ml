(* The common result type of every synthesis backend.

   Backends produce wildly different artifacts — a pure combinational
   netlist (Cones), a scheduled FSMD (Transmogrifier/Bach C/HardwareC), a
   statement-clocked machine (Handel-C), an asynchronous dataflow circuit
   (CASH), a stack-machine processor (C2Verilog) — so a design exposes a
   uniform behavioural interface (run on inputs, observe outputs and
   timing) plus optional structural views (area report, Verilog). *)

(* Which simulation engine executes the behavioural run.  Compiled is
   the levelized-closure fast path (Netcomp / Fsmdcomp); the two
   interpreters survive as differential oracles — Event_driven is the
   change-propagating Neteval / instruction-walking Rtlsim, Full_sweep
   re-evaluates every node each settle.  Backends without a compiled
   engine (or without multiple engines at all) ignore the selection. *)
type engine = Compiled | Event_driven | Full_sweep

let engine_name = function
  | Compiled -> "compiled"
  | Event_driven -> "event"
  | Full_sweep -> "sweep"

let engine_of_name = function
  | "compiled" -> Some Compiled
  | "event" -> Some Event_driven
  | "sweep" -> Some Full_sweep
  | _ -> None

type run_result = {
  result : Bitvec.t option;
  globals : (string * Bitvec.t) list;
  memories : (string * Bitvec.t array) list;
  cycles : int option; (* clocked designs *)
  time_units : float option; (* asynchronous / combinational settle time *)
  metrics : Metrics.t;
      (* simulator performance counters for this run (cycles, state
         visits, token firings, evaluator activity) in the unified
         registry; --metrics-json merges it into the run report *)
}

type t = {
  design_name : string;
  backend : string;
  run : ?vcd:Vcd.t -> ?sim:engine -> Bitvec.t list -> run_result;
      (* [vcd]: trace the behavioural simulation as a waveform; backends
         whose simulator has no trace hook ignore it.
         [sim]: engine selection (default Compiled); backends with a
         single simulator ignore it *)
  area : unit -> Area.report option;
  verilog : unit -> string option;
  netlist : unit -> Netlist.t option;
      (* the word-level structural view, when the backend elaborates to one
         (area and Verilog derive from it; the CLI uses it for --stats) *)
  clock_period : float option; (* estimated; None for unclocked designs *)
  stats : (string * string) list; (* backend-specific key/value facts *)
  pass_trace : Passes.trace;
      (* per-pass compile record from the backend's declared pipeline;
         [] for structural backends that run no passes *)
}

let int_args args = List.map (Bitvec.of_int ~width:64) args

(* [run] behind a "simulate" span: engine kind and backend as attributes
   up front (so a crashed/timed-out run still identifies itself in the
   flight recorder), cycles and settle time attached after.  The span
   machinery adds an "error" attribute and re-raises on simulator
   exceptions (Rtlsim.Timeout and friends), so failure context survives
   into the ring buffer. *)
let run_traced ?(ctx = Span.null) ?vcd ?sim design args =
  Span.span ctx "simulate"
    ~attrs:
      [ ("backend", Metrics.String design.backend);
        ( "engine",
          Metrics.String (engine_name (Option.value sim ~default:Compiled)) )
      ]
    (fun sctx ->
      let r = design.run ?vcd ?sim args in
      (match r.cycles with
      | Some c -> Span.add_attr sctx "cycles" (Metrics.Int c)
      | None -> ());
      (match r.time_units with
      | Some t -> Span.add_attr sctx "time_units" (Metrics.Fixed (1, t))
      | None -> ());
      r)

(** Run with plain integer arguments; returns the result as an int. *)
let run_int design args =
  let r = design.run (int_args args) in
  Option.map Bitvec.to_int r.result

(** Wall-clock estimate of a run: cycles x clock period for clocked
    designs, the recorded settle/completion time otherwise. *)
let latency_estimate design (r : run_result) =
  match (r.cycles, design.clock_period, r.time_units) with
  | Some cycles, Some period, _ -> Some (float_of_int cycles *. period)
  | _, _, Some t -> Some t
  | _ -> None
