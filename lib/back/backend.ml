(* Backend self-description records.  See backend.mli for the story:
   descriptors replace the closed variant the facade used to dispatch
   on; lib/core/registry.ml collects them. *)

type capabilities = {
  c_frontend : bool;
  constraint_reports : bool;
}

let default_capabilities = { c_frontend = true; constraint_reports = false }

type knobs = {
  resources : Schedule.resources;
  unroll_factor : int;
  ii_limit : int;
  pass_options : Passes.options;
}

let default_knobs =
  { resources = Schedule.default_allocation;
    unroll_factor = 1;
    ii_limit = Pipeline.ii_search_limit;
    pass_options = Passes.default_options }

let specialize knobs pl =
  if knobs.unroll_factor < 2 then pl
  else
    { pl with
      Passes.pl_program_passes =
        Passes.unroll_factor_pass knobs.unroll_factor
        :: pl.Passes.pl_program_passes }

type descriptor = {
  name : string;
  aliases : string list;
  description : string;
  dialect : Dialect.t;
  pipeline : Passes.pipeline option;
  compile : knobs:knobs -> Ast.program -> entry:string -> Design.t;
  capabilities : capabilities;
}

exception No_c_frontend of string

exception
  Dialect_rejected of {
    backend : string;
    violations : Dialect.violation list;
  }

let reject_if_illegal ~backend dialect program =
  match Dialect.check dialect program with
  | [] -> ()
  | violations -> raise (Dialect_rejected { backend; violations })

let make ?(aliases = []) ?(capabilities = default_capabilities)
    ?(pipeline = None) ~name ~description ~dialect compile =
  { name; aliases; description; dialect; pipeline; compile; capabilities }
