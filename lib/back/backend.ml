(* Backend self-description records.  See backend.mli for the story:
   descriptors replace the closed variant the facade used to dispatch
   on; lib/core/registry.ml collects them. *)

type capabilities = {
  c_frontend : bool;
  constraint_reports : bool;
}

let default_capabilities = { c_frontend = true; constraint_reports = false }

type descriptor = {
  name : string;
  aliases : string list;
  description : string;
  dialect : Dialect.t;
  pipeline : Passes.pipeline option;
  compile : Ast.program -> entry:string -> Design.t;
  capabilities : capabilities;
}

exception No_c_frontend of string

exception
  Dialect_rejected of {
    backend : string;
    violations : Dialect.violation list;
  }

let reject_if_illegal ~backend dialect program =
  match Dialect.check dialect program with
  | [] -> ()
  | violations -> raise (Dialect_rejected { backend; violations })

let make ?(aliases = []) ?(capabilities = default_capabilities)
    ?(pipeline = None) ~name ~description ~dialect compile =
  { name; aliases; description; dialect; pipeline; compile; capabilities }
