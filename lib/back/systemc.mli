(** SystemC-style modeling kernel ("Verilog in C++", here in OCaml): a
    discrete-event kernel with signals (current/next with delta-cycle
    update), combinational processes re-run to convergence, and clocked
    processes fired per rising edge.  [of_fsmd] models a scheduled FSMD
    as a process network; [compile] is the backend entry point. *)

exception Unstable of string
(** Combinational processes failed to converge within the delta bound. *)

type signal
type kernel

val create : ?max_deltas:int -> unit -> kernel

val signal : kernel -> name:string -> width:int -> ?init:int -> unit -> signal

val read : signal -> Bitvec.t
(** The settled value (SystemC's [sig.read()]). *)

val read_int : signal -> int

val write : signal -> Bitvec.t -> unit
(** Schedule a value for the next delta/clock update. *)

val write_int : signal -> int -> unit

val sc_method : kernel -> name:string -> (unit -> unit) -> unit
(** Register a combinational process. *)

val sc_clocked : kernel -> name:string -> (unit -> unit) -> unit
(** Register a clock-edge-triggered process. *)

val settle : kernel -> unit
(** Run combinational processes to convergence (delta cycles).
    @raise Unstable beyond [max_deltas]. *)

val clock_tick : kernel -> unit
(** One rising edge: clocked processes on settled values, commit, settle. *)

val run_until :
  kernel -> stop:signal -> max_cycles:int -> (int, [ `Timeout ]) result
(** Clock until [stop] reads true; returns the cycle count. *)

val of_fsmd : Fsmd.t -> args:Bitvec.t list -> kernel * signal * signal
(** Model an FSMD as a clocked process network; returns
    (kernel, done, result). *)

val pipeline : Passes.pipeline
(** [lower; simplify]. *)

val compile :
  ?knobs:Backend.knobs -> ?resources:Schedule.resources -> Ast.program ->
  entry:string -> Design.t
(** [resources] (when given) overrides [knobs.resources]. *)

val descriptor : Backend.descriptor
