(* Shared plumbing for the FSMD-producing backends (Transmogrifier C,
   Bach C/Cyber, HardwareC): run the backend's declared pipeline through
   the pass manager, build an FSMD under the backend's scheduling policy,
   and wrap simulator + elaboration into a Design.t. *)

(* Engine-dispatched FSMD simulation wrapped into a Design.run_result.
   Compiled runs Fsmdcomp's closure engine (which itself falls back to
   Rtlsim on >62-bit designs); Event_driven and Full_sweep both run the
   Rtlsim interpreter — an FSMD walk has no sweep/event distinction, the
   interpreter IS the oracle. *)
let simulate ?engine ?vcd ?(sim = Design.Compiled) fsmd ~args :
    Design.run_result =
  (* a Design.t's run closure passes a shared lazy engine so the closure
     compilation happens once per design, not once per run *)
  let engine =
    match engine with Some e -> e | None -> lazy (Fsmdcomp.create fsmd)
  in
  let trace = Option.map (fun v -> Trace.rtlsim_trace v fsmd) vcd in
  let outcome =
    match sim with
    | Design.Compiled -> Fsmdcomp.execute ?trace (Lazy.force engine) ~args
    | Design.Event_driven | Design.Full_sweep -> Rtlsim.run ?trace fsmd ~args
  in
  let metrics = Metrics.create () in
  Metrics.set_string metrics "sim.engine"
    (match sim with
    | Design.Compiled when Fsmdcomp.compiled (Lazy.force engine) -> "compiled"
    | _ -> "event");
  Metrics.set_int metrics "sim.cycles" outcome.Rtlsim.cycles;
  Metrics.set metrics "sim.states_visited"
    (Metrics.List
       (Array.to_list
          (Array.map (fun n -> Metrics.Int n) outcome.Rtlsim.states_visited)));
  { Design.result = outcome.Rtlsim.return_value;
    globals = outcome.Rtlsim.globals;
    memories = outcome.Rtlsim.memories;
    cycles = Some outcome.Rtlsim.cycles;
    time_units = None;
    metrics }

let build ~backend_name ~dialect ?(mem_forwarding = false) ?pipeline
    ?(knobs = Backend.default_knobs)
    ~(schedule_block : Cir.func -> Cir.block -> Schedule.schedule)
    ?(extra_stats = fun (_ : Lower.result) (_ : Fsmd.t) -> [])
    (program : Ast.program) ~entry : Design.t =
  Backend.reject_if_illegal ~backend:backend_name dialect program;
  let pipeline =
    match pipeline with
    | Some p -> p
    | None ->
      Passes.pipeline backend_name ~func_passes:[ Passes.simplify_pass ]
  in
  let pipeline = Backend.specialize knobs pipeline in
  let lowered, pass_trace =
    Passes.run ~options:knobs.Backend.pass_options pipeline program ~entry
  in
  let func = lowered.Lower.func in
  let fsmd =
    Fsmd.of_func ~mem_forwarding func ~schedule_block:(schedule_block func)
  in
  let engine = lazy (Fsmdcomp.create fsmd) in
  let run ?vcd ?sim args = simulate ~engine ?vcd ?sim fsmd ~args in
  let elaborated = lazy (Rtlgen.elaborate fsmd) in
  let area () =
    match Lazy.force elaborated with
    | e -> Some (Area.analyze e.Rtlgen.netlist)
    | exception Rtlgen.Elaboration_error _ -> None
  in
  let verilog () =
    match Lazy.force elaborated with
    | e -> Some (Verilog.to_string e.Rtlgen.netlist)
    | exception Rtlgen.Elaboration_error _ -> None
  in
  let netlist () =
    match Lazy.force elaborated with
    | e -> Some e.Rtlgen.netlist
    | exception Rtlgen.Elaboration_error _ -> None
  in
  { Design.design_name = entry;
    backend = backend_name;
    run;
    area;
    verilog;
    netlist;
    clock_period = Some (Float.max 1. (Fsmd.critical_state_delay fsmd));
    stats =
      [ ("states", string_of_int (Fsmd.num_states fsmd));
        ("instructions", string_of_int (Cir.num_instrs func));
        ("regions", string_of_int (Array.length func.Cir.fn_regions)) ]
      @ extra_stats lowered fsmd;
    pass_trace }
