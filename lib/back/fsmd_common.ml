(* Shared plumbing for the FSMD-producing backends (Transmogrifier C,
   Bach C/Cyber, HardwareC): run the backend's declared pipeline through
   the pass manager, build an FSMD under the backend's scheduling policy,
   and wrap simulator + elaboration into a Design.t. *)

let build ~backend_name ~dialect ?(mem_forwarding = false) ?pipeline
    ~(schedule_block : Cir.func -> Cir.block -> Schedule.schedule)
    ?(extra_stats = fun (_ : Lower.result) (_ : Fsmd.t) -> [])
    (program : Ast.program) ~entry : Design.t =
  (match Dialect.check dialect program with
  | [] -> ()
  | { Dialect.rule; where } :: _ ->
    failwith (Printf.sprintf "%s: %s (in %s)" backend_name rule where));
  let pipeline =
    match pipeline with
    | Some p -> p
    | None ->
      Passes.pipeline backend_name ~func_passes:[ Passes.simplify_pass ]
  in
  let lowered, pass_trace = Passes.run pipeline program ~entry in
  let func = lowered.Lower.func in
  let fsmd =
    Fsmd.of_func ~mem_forwarding func ~schedule_block:(schedule_block func)
  in
  let run ?vcd args =
    let trace = Option.map (fun v -> Trace.rtlsim_trace v fsmd) vcd in
    let outcome = Rtlsim.run ?trace fsmd ~args in
    let metrics = Metrics.create () in
    Metrics.set_int metrics "sim.cycles" outcome.Rtlsim.cycles;
    Metrics.set metrics "sim.states_visited"
      (Metrics.List
         (Array.to_list
            (Array.map
               (fun n -> Metrics.Int n)
               outcome.Rtlsim.states_visited)));
    { Design.result = outcome.Rtlsim.return_value;
      globals = outcome.Rtlsim.globals;
      memories = outcome.Rtlsim.memories;
      cycles = Some outcome.Rtlsim.cycles;
      time_units = None;
      metrics }
  in
  let elaborated = lazy (Rtlgen.elaborate fsmd) in
  let area () =
    match Lazy.force elaborated with
    | e -> Some (Area.analyze e.Rtlgen.netlist)
    | exception Rtlgen.Elaboration_error _ -> None
  in
  let verilog () =
    match Lazy.force elaborated with
    | e -> Some (Verilog.to_string e.Rtlgen.netlist)
    | exception Rtlgen.Elaboration_error _ -> None
  in
  let netlist () =
    match Lazy.force elaborated with
    | e -> Some e.Rtlgen.netlist
    | exception Rtlgen.Elaboration_error _ -> None
  in
  { Design.design_name = entry;
    backend = backend_name;
    run;
    area;
    verilog;
    netlist;
    clock_period = Some (Float.max 1. (Fsmd.critical_state_delay fsmd));
    stats =
      [ ("states", string_of_int (Fsmd.num_states fsmd));
        ("instructions", string_of_int (Cir.num_instrs func));
        ("regions", string_of_int (Array.length func.Cir.fn_regions)) ]
      @ extra_stats lowered fsmd;
    pass_trace }
