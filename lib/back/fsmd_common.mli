(** Shared plumbing for the FSMD-producing backends: dialect check, run
    the declared pipeline through the pass manager, build the FSMD under
    the backend's scheduling policy, and wrap simulator + elaboration
    into a Design. *)

val build :
  backend_name:string -> dialect:Dialect.t -> ?mem_forwarding:bool ->
  ?pipeline:Passes.pipeline ->
  schedule_block:(Cir.func -> Cir.block -> Schedule.schedule) ->
  ?extra_stats:(Lower.result -> Fsmd.t -> (string * string) list) ->
  Ast.program -> entry:string -> Design.t
(** [pipeline] defaults to [backend_name: lower; simplify]. *)
