(** Shared plumbing for the FSMD-producing backends: dialect check, run
    the declared pipeline through the pass manager, build the FSMD under
    the backend's scheduling policy, and wrap simulator + elaboration
    into a Design. *)

val simulate :
  ?engine:Fsmdcomp.t Lazy.t -> ?vcd:Vcd.t -> ?sim:Design.engine -> Fsmd.t ->
  args:Bitvec.t list -> Design.run_result
(** Run an FSMD on the selected engine (default {!Design.Compiled}, via
    {!Fsmdcomp}; the oracle engines run the {!Rtlsim} interpreter) and
    package the outcome with [sim.engine] / [sim.cycles] /
    [sim.states_visited] metrics.  Pass [engine] (a shared
    [lazy (Fsmdcomp.create fsmd)]) from a [Design.run] closure so the
    closure compilation is paid once per design rather than per run.
    The [sim.engine] metric reports the engine that actually ran —
    ["event"] when a >62-bit design made the compiled engine fall
    back. *)

val build :
  backend_name:string -> dialect:Dialect.t -> ?mem_forwarding:bool ->
  ?pipeline:Passes.pipeline -> ?knobs:Backend.knobs ->
  schedule_block:(Cir.func -> Cir.block -> Schedule.schedule) ->
  ?extra_stats:(Lower.result -> Fsmd.t -> (string * string) list) ->
  Ast.program -> entry:string -> Design.t
(** [pipeline] defaults to [backend_name: lower; simplify].  [knobs]
    (default {!Backend.default_knobs}) supplies the per-compile pass
    options and specializes the pipeline ({!Backend.specialize});
    resource bounds stay the caller's business — close [schedule_block]
    over [knobs.resources]. *)
