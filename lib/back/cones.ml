(* Cones backend [Stroud/Munoz/Pierce, IEEE D&T 1988].

   The paper: "Stroud et al.'s early Cones synthesized each function in a
   combinational block.  Its strict C subset handled conditionals; loops,
   which it unrolled; and arrays treated as bit vectors" — and later,
   "Cones flattens each function, including loops and conditionals, into a
   single two-level network."

   Realization: symbolic execution of the (inlined) entry function into a
   pure combinational netlist.  Bounded loops are fully unrolled;
   conditionals are if-converted into muxes (including early returns,
   which become a 'returned' guard bit); arrays become vectors of signals
   with mux trees for dynamic indexing — exactly the area explosion
   experiment E5 measures. *)

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun m -> raise (Unsupported m)) fmt

type value = V_scalar of Netlist.signal | V_array of Netlist.signal array

type state = {
  nl : Netlist.t;
  program : Ast.program;
  mutable scopes : (string, value ref) Hashtbl.t list;
  mutable returned : Netlist.signal; (* 1-bit: has the function returned? *)
  mutable result : Netlist.signal;
  mutable depth : int;
}

let push_scope st = st.scopes <- Hashtbl.create 8 :: st.scopes
let pop_scope st = st.scopes <- List.tl st.scopes

let bind st name v =
  match st.scopes with
  | scope :: _ -> Hashtbl.replace scope name (ref v)
  | [] -> unsupported "no scope"

let lookup st name =
  let rec go = function
    | [] -> unsupported "unbound variable %s" name
    | scope :: rest -> (
      match Hashtbl.find_opt scope name with
      | Some cell -> cell
      | None -> go rest)
  in
  go st.scopes

let width_of ty = max 1 (Ctypes.width ty)

let const_int st ~width n = Netlist.const_int st.nl ~width n

(* Write through the 'already returned' guard: statements after an early
   return must not change state. *)
let guarded st ~old ~new_ =
  Netlist.mux st.nl ~sel:st.returned ~if_true:old ~if_false:new_

let bool_signal st s =
  if Netlist.width st.nl s = 1 then s
  else Netlist.unop st.nl Netlist.U_reduce_or s

let rec eval st (e : Ast.expr) : Netlist.signal =
  match e.Ast.e with
  | Ast.Const (v, ty) ->
    Netlist.const st.nl (Bitvec.of_int64 ~width:(width_of ty) v)
  | Ast.Var name -> (
    match !(lookup st name) with
    | V_scalar s -> s
    | V_array _ -> unsupported "array %s used as scalar" name)
  | Ast.Unop (Ast.Log_not, a) ->
    let sa = eval st a in
    let z =
      Netlist.binop st.nl Netlist.B_eq sa
        (const_int st ~width:(Netlist.width st.nl sa) 0)
    in
    Netlist.zext st.nl ~width:(width_of e.Ast.ty) z
  | Ast.Unop (Ast.Neg, a) -> Netlist.unop st.nl Netlist.U_neg (eval st a)
  | Ast.Unop (Ast.Bit_not, a) -> Netlist.unop st.nl Netlist.U_not (eval st a)
  | Ast.Binop ((Ast.Log_and | Ast.Log_or) as op, a, b) ->
    let ba = bool_signal st (eval st a) and bb = bool_signal st (eval st b) in
    let o =
      Netlist.binop st.nl
        (match op with
        | Ast.Log_and -> Netlist.B_and
        | _ -> Netlist.B_or)
        ba bb
    in
    Netlist.zext st.nl ~width:(width_of e.Ast.ty) o
  | Ast.Binop (op, a, b) ->
    let sa = eval st a and sb = eval st b in
    let signed = Ctypes.is_signed a.Ast.ty in
    let netop =
      match op with
      | Ast.Add -> Netlist.B_add
      | Ast.Sub -> Netlist.B_sub
      | Ast.Mul -> Netlist.B_mul
      | Ast.Div -> if signed then Netlist.B_sdiv else Netlist.B_udiv
      | Ast.Mod -> if signed then Netlist.B_srem else Netlist.B_urem
      | Ast.Band -> Netlist.B_and
      | Ast.Bor -> Netlist.B_or
      | Ast.Bxor -> Netlist.B_xor
      | Ast.Shl -> Netlist.B_shl
      | Ast.Shr -> if signed then Netlist.B_ashr else Netlist.B_lshr
      | Ast.Eq -> Netlist.B_eq
      | Ast.Ne -> Netlist.B_ne
      | Ast.Lt -> if signed then Netlist.B_slt else Netlist.B_ult
      | Ast.Le -> if signed then Netlist.B_sle else Netlist.B_ule
      | Ast.Gt -> if signed then Netlist.B_slt else Netlist.B_ult
      | Ast.Ge -> if signed then Netlist.B_sle else Netlist.B_ule
      | Ast.Log_and | Ast.Log_or ->
        unsupported
          "internal: && and || reach the flat datapath emitter (the \
           boolean form above must handle them)"
    in
    let sa, sb = match op with Ast.Gt | Ast.Ge -> (sb, sa) | _ -> (sa, sb) in
    let raw = Netlist.binop st.nl netop sa sb in
    if Netlist.is_comparison netop then
      Netlist.zext st.nl ~width:(width_of e.Ast.ty) raw
    else raw
  | Ast.Assign (lhs, rhs) ->
    let v = eval st rhs in
    assign st lhs v;
    v
  | Ast.Cond (c, t, f) ->
    let sel = bool_signal st (eval st c) in
    Netlist.mux st.nl ~sel ~if_true:(eval st t) ~if_false:(eval st f)
  | Ast.Call (name, args) -> eval_call st name args
  | Ast.Index (base, idx) -> (
    let cell = array_of st base in
    let idx_sig = eval st idx in
    match Array.to_list cell with
    | [] -> unsupported "empty array"
    | first :: rest ->
      (* dynamic index -> mux tree over all elements *)
      snd
        (List.fold_left
           (fun (k, acc) elt ->
             let eq =
               Netlist.binop st.nl Netlist.B_eq idx_sig
                 (const_int st ~width:(Netlist.width st.nl idx_sig) k)
             in
             (k + 1, Netlist.mux st.nl ~sel:eq ~if_true:elt ~if_false:acc))
           (1, first) rest))
  | Ast.Cast (ty, a) ->
    let s = eval st a in
    Netlist.resize st.nl ~signed:(Ctypes.is_signed a.Ast.ty)
      ~width:(width_of ty) s
  | Ast.Deref _ | Ast.Addr_of _ ->
    unsupported "Cones has no pointers"
  | Ast.Chan_recv _ -> unsupported "Cones has no channels"

and array_of st (e : Ast.expr) =
  match e.Ast.e with
  | Ast.Var name -> (
    match !(lookup st name) with
    | V_array a -> a
    | V_scalar _ -> unsupported "%s is not an array" name)
  | _ -> unsupported "only direct array names are indexable in Cones"

and assign st (lhs : Ast.expr) value =
  match lhs.Ast.e with
  | Ast.Var name ->
    let cell = lookup st name in
    (match !cell with
    | V_scalar old -> cell := V_scalar (guarded st ~old ~new_:value)
    | V_array _ -> unsupported "cannot assign whole array")
  | Ast.Index (base, idx) ->
    let cell_name =
      match base.Ast.e with
      | Ast.Var name -> name
      | _ -> unsupported "only direct array names are indexable"
    in
    let cell = lookup st cell_name in
    let arr =
      match !cell with
      | V_array a -> a
      | V_scalar _ -> unsupported "%s is not an array" cell_name
    in
    let idx_sig = eval st idx in
    let updated =
      Array.mapi
        (fun k old ->
          let eq =
            Netlist.binop st.nl Netlist.B_eq idx_sig
              (const_int st ~width:(Netlist.width st.nl idx_sig) k)
          in
          let new_ = Netlist.mux st.nl ~sel:eq ~if_true:value ~if_false:old in
          guarded st ~old ~new_)
        arr
    in
    cell := V_array updated
  | _ -> unsupported "assignment to unsupported lvalue"

and eval_call st name args =
  let func =
    match Ast.find_func st.program name with
    | Some f -> f
    | None -> unsupported "undefined function %s" name
  in
  st.depth <- st.depth + 1;
  if st.depth > 64 then unsupported "recursion in Cones (%s)" name;
  let arg_values =
    List.map2
      (fun (ty, _) arg ->
        match ty with
        | Ctypes.Array _ | Ctypes.Pointer _ ->
          V_array (Array.copy (array_of st arg))
        | Ctypes.Void | Ctypes.Integer _ | Ctypes.Function _ ->
          V_scalar (eval st arg))
      func.Ast.f_params args
  in
  (* fresh return context for the callee *)
  let saved_returned = st.returned and saved_result = st.result in
  let saved_scopes = st.scopes in
  st.scopes <- [ Hashtbl.create 8 ];
  st.returned <- const_int st ~width:1 0;
  st.result <- const_int st ~width:(max 1 (width_of func.Ast.f_ret)) 0;
  List.iter2
    (fun (_, pname) v -> bind st pname v)
    func.Ast.f_params arg_values;
  List.iter (exec st) func.Ast.f_body;
  let result = st.result in
  (* NOTE: arrays are passed by value-copy here; Cones treats arrays as
     wires, so callee writes to array params do not flow back.  The
     dialect's strict subset avoids this pattern. *)
  st.scopes <- saved_scopes;
  st.returned <- saved_returned;
  st.result <- saved_result;
  st.depth <- st.depth - 1;
  result

and exec st (stmt : Ast.stmt) =
  match stmt.Ast.s with
  | Ast.Expr e -> ignore (eval st e)
  | Ast.Decl (ty, name, init) -> (
    match ty with
    | Ctypes.Array (elt, n) ->
      bind st name
        (V_array (Array.make n (const_int st ~width:(width_of elt) 0)))
    | Ctypes.Void | Ctypes.Integer _ | Ctypes.Pointer _ | Ctypes.Function _
      ->
      let v =
        match init with
        | Some e -> eval st e
        | None -> const_int st ~width:(width_of ty) 0
      in
      (* guard: a declaration after an early return must hold a dead value,
         but it is fresh anyway — bind directly *)
      bind st name (V_scalar v))
  | Ast.If (c, then_b, else_b) ->
    let sel = bool_signal st (eval st c) in
    exec_if st sel then_b else_b
  | Ast.For (init, cond, step, body) -> (
    match Loopform.recognize ~init ~cond ~step with
    | None -> unsupported "Cones requires statically bounded loops"
    | Some b -> (
      match Loopform.iteration_values b with
      | None -> unsupported "loop may not terminate"
      | Some values ->
        push_scope st;
        (* bind the induction variable; rebound to a constant per copy *)
        bind st b.Loopform.var (V_scalar (const_int st ~width:32 b.Loopform.start));
        List.iter
          (fun v ->
            let cell = lookup st b.Loopform.var in
            cell := V_scalar (const_int st ~width:32 v);
            push_scope st;
            List.iter (exec st) body;
            pop_scope st)
          values;
        pop_scope st))
  | Ast.While _ | Ast.Do_while _ ->
    unsupported "Cones requires statically bounded loops"
  | Ast.Return value ->
    let v =
      match value with
      | Some e ->
        Netlist.resize st.nl ~signed:false
          ~width:(Netlist.width st.nl st.result) (eval st e)
      | None -> st.result
    in
    st.result <- guarded st ~old:st.result ~new_:v;
    st.returned <-
      Netlist.binop st.nl Netlist.B_or st.returned (const_int st ~width:1 1)
  | Ast.Break | Ast.Continue ->
    unsupported "break/continue cannot be flattened combinationally"
  | Ast.Block body ->
    push_scope st;
    List.iter (exec st) body;
    pop_scope st
  | Ast.Par _ | Ast.Chan_send _ | Ast.Delay ->
    unsupported "Cones has no concurrency or timing constructs"
  | Ast.Constrain _ -> unsupported "Cones has no timing constraints"

(* If-conversion: execute both branches on copies of the environment and
   mux every binding that differs. *)
and exec_if st sel then_b else_b =
  let snapshot () =
    (List.map
       (fun scope ->
         let copy = Hashtbl.create (Hashtbl.length scope) in
         Hashtbl.iter (fun k cell -> Hashtbl.replace copy k (ref !cell)) scope;
         copy)
       st.scopes,
     st.returned, st.result)
  in
  let restore (scopes, returned, result) =
    st.scopes <- scopes;
    st.returned <- returned;
    st.result <- result
  in
  let original = snapshot () in
  (* then branch *)
  push_scope st;
  List.iter (exec st) then_b;
  pop_scope st;
  let after_then = snapshot () in
  restore original;
  (* else branch *)
  push_scope st;
  List.iter (exec st) else_b;
  pop_scope st;
  (* merge: current state is the else outcome *)
  let then_scopes, then_returned, then_result = after_then in
  let mux_sig t f =
    if t = f then t else Netlist.mux st.nl ~sel ~if_true:t ~if_false:f
  in
  List.iter2
    (fun then_scope else_scope ->
      Hashtbl.iter
        (fun name else_cell ->
          match Hashtbl.find_opt then_scope name with
          | None -> ()
          | Some then_cell -> (
            match (!then_cell, !else_cell) with
            | V_scalar t, V_scalar f -> else_cell := V_scalar (mux_sig t f)
            | V_array t, V_array f ->
              else_cell := V_array (Array.map2 mux_sig t f)
            | V_scalar _, V_array _ | V_array _, V_scalar _ -> ()))
        else_scope)
    then_scopes st.scopes;
  st.returned <- mux_sig then_returned st.returned;
  st.result <- mux_sig then_result st.result

(** Synthesize the entry function of [program] into a combinational
    netlist.  Scalar globals appear as outputs [g_<name>]. *)
let synthesize (program : Ast.program) ~entry : Netlist.t =
  Backend.reject_if_illegal ~backend:"cones" Dialect.cones program;
  let func =
    match Ast.find_func program entry with
    | Some f -> f
    | None -> unsupported "entry %s not found" entry
  in
  let nl = Netlist.create ~name:entry () in
  let st =
    { nl; program; scopes = [ Hashtbl.create 16 ];
      returned = 0; result = 0; depth = 0 }
  in
  st.returned <- Netlist.const_int nl ~width:1 0;
  st.result <-
    Netlist.const_int nl ~width:(max 1 (width_of func.Ast.f_ret)) 0;
  (* globals *)
  List.iter
    (fun (g : Ast.global) ->
      match g.Ast.g_ty with
      | Ctypes.Array (elt, n) ->
        let width = width_of elt in
        let values =
          match g.Ast.g_init with
          | None -> Array.make n (Netlist.const_int nl ~width 0)
          | Some init ->
            let a = Array.make n (Netlist.const_int nl ~width 0) in
            List.iteri
              (fun i v ->
                if i < n then
                  a.(i) <- Netlist.const nl (Bitvec.of_int64 ~width v))
              init;
            a
        in
        bind st g.Ast.g_name (V_array values)
      | Ctypes.Void | Ctypes.Integer _ | Ctypes.Pointer _ | Ctypes.Function _
        ->
        let width = width_of g.Ast.g_ty in
        let v =
          match g.Ast.g_init with
          | Some [ v ] -> Netlist.const nl (Bitvec.of_int64 ~width v)
          | Some _ | None -> Netlist.const_int nl ~width 0
        in
        bind st g.Ast.g_name (V_scalar v))
    program.Ast.globals;
  (* parameters as primary inputs *)
  push_scope st;
  List.iter
    (fun (ty, name) ->
      match ty with
      | Ctypes.Integer _ ->
        bind st name (V_scalar (Netlist.input nl name ~width:(width_of ty)))
      | Ctypes.Void | Ctypes.Pointer _ | Ctypes.Array _ | Ctypes.Function _
        -> unsupported "entry parameter %s must be a scalar" name)
    func.Ast.f_params;
  List.iter (exec st) func.Ast.f_body;
  Netlist.set_output nl "result" st.result;
  (* final global values become outputs (combinational block semantics) *)
  List.iter
    (fun (g : Ast.global) ->
      match !(lookup st g.Ast.g_name) with
      | V_scalar s -> Netlist.set_output nl ("g_" ^ g.Ast.g_name) s
      | V_array _ -> ())
    program.Ast.globals;
  nl

(* Cones never lowers to CIR: it symbolically executes the AST, unrolling
   for loops itself.  The declared pipeline is source-only and empty. *)
let pipeline = Passes.pipeline "cones" ~lowers:false

let compile ?(knobs = Backend.default_knobs) (program : Ast.program) ~entry :
    Design.t =
  let program, pass_trace =
    Passes.run_program_passes ~options:knobs.Backend.pass_options pipeline
      program ~entry
  in
  let nl = synthesize program ~entry in
  let report = Area.analyze nl in
  let run ?vcd ?(sim = Design.Compiled) args =
    let inputs =
      List.map2
        (fun (name, _) v -> (name, v))
        (Netlist.inputs nl) args
    in
    let probe = Option.map (fun v -> Trace.neteval_probe v nl) vcd in
    let outputs, st =
      match sim with
      | Design.Compiled -> Netcomp.eval_combinational_stats ?probe nl ~inputs
      | Design.Event_driven ->
        Neteval.eval_combinational_stats ?probe nl ~inputs
      | Design.Full_sweep ->
        Neteval.eval_combinational_stats ~strategy:Neteval.Full_sweep ?probe
          nl ~inputs
    in
    let metrics = Metrics.create () in
    Metrics.set_string metrics "sim.engine"
      (match sim with
      | Design.Compiled when Netcomp.compilable nl -> "compiled"
      | Design.Compiled | Design.Event_driven -> "event"
      | Design.Full_sweep -> "sweep");
    Metrics.set_int metrics "sim.nodes_evaluated" st.Neteval.nodes_evaluated;
    Metrics.set_int metrics "sim.events" st.Neteval.events;
    { Design.result = List.assoc_opt "result" outputs;
      globals =
        List.filter_map
          (fun (name, v) ->
            if String.length name > 2 && String.sub name 0 2 = "g_" then
              Some (String.sub name 2 (String.length name - 2), v)
            else None)
          outputs;
      memories = [];
      cycles = None;
      time_units = Some report.Area.critical_path;
      metrics }
  in
  { Design.design_name = entry;
    backend = "cones";
    run;
    area = (fun () -> Some report);
    verilog = (fun () -> Some (Verilog.to_string nl));
    netlist = (fun () -> Some nl);
    clock_period = None;
    stats =
      [ ("nodes", string_of_int report.Area.num_nodes);
        ("critical path", Printf.sprintf "%.1f" report.Area.critical_path) ];
    pass_trace }

let descriptor =
  Backend.make ~name:"cones" ~pipeline:(Some pipeline)
    ~description:
      "symbolic execution of the entry function into combinational \
       two-level logic"
    ~dialect:Dialect.cones
    (fun ~knobs program ~entry -> compile ~knobs program ~entry)
