(** Reference interpreter: the *software semantics* of the CHLS language,
    and the oracle every hardware backend is tested against.

    Deliberately untimed — the paper: time is absent from the C
    programming model; it guarantees causality but says nothing about
    execution time — so [steps] is a work measure, never clock cycles.
    Expressions evaluate big-step; statements run on a small-step thread
    machine so [par] branches interleave (round-robin) and rendezvous
    channels block; deadlock is detected.

    The lower half of this interface (store/env/eval) is the shared
    expression-semantics surface the Handel-C statement machine builds
    its cycle-accurate simulator on. *)

exception Runtime_error of string

exception Internal_error of string * Ast.loc
(** An invariant the front end was supposed to establish does not hold
    (e.g. a short-circuit operator surviving to the scalar binop
    evaluator).  Located so the CLI renders a [file:line:col] diagnostic
    instead of crashing on [assert false]. *)

exception Deadlock
exception Timeout

(** {1 The word-addressed store} *)

type store = {
  mutable mem : Bitvec.t array;
  mutable sp : int;  (** next free stack word *)
  globals : (string, int * Ctypes.t) Hashtbl.t;
  mutable heap_next : int;  (** malloc bump pointer, above the stack *)
}

val heap_base : int
(** The stack lives in [0, heap_base); malloc carves from [heap_base, _).
    Disjointness means returning from a function never invalidates heap
    storage. *)

val alloc : store -> int -> int
(** Allocate stack words; returns the base address.
    @raise Runtime_error on stack overflow. *)

val load : store -> int -> Bitvec.t
val store_word : store -> int -> Bitvec.t -> unit

val allocate_globals : store -> Ast.program -> unit

(** {1 Environments} *)

type scope = (string, int * Ctypes.t) Hashtbl.t

type env = {
  store : store;
  program : Ast.program;
  mutable scopes : scope list;
  mutable steps : int;
  fuel : int;
}

val declared_width : Ctypes.t -> int

(** {1 Expression semantics (shared with the Handel-C machine)} *)

val eval : env -> Ast.expr -> Bitvec.t
(** Big-step evaluation.  Calls are executed recursively (the callee must
    be sequential); [recv] in expression context is a runtime error. *)

val eval_lvalue : env -> Ast.expr -> int
(** The address of an lvalue. *)

val eval_binop : env -> Ast.binop -> Ast.expr -> Ast.expr -> Bitvec.t
(** Scalar binary-operator semantics (pointer arithmetic included) on
    already-lowered operands.  The short-circuit operators are rewritten
    by {!eval} before this level.
    @raise Internal_error on [Log_and]/[Log_or], which must not reach the
    scalar evaluator. *)

val as_recv : Ast.expr -> (string * Ctypes.t option) option
(** Recognize the statement-position receive forms: a bare [recv(c)] or
    one behind the cast the type checker inserts. *)

val convert_received : Ctypes.t option -> Bitvec.t -> Bitvec.t

(** {1 Running programs} *)

type outcome = {
  return_value : Bitvec.t option;
  steps : int;  (** statement steps executed: the untimed work metric *)
  final_store : store;
}

val run :
  ?fuel:int -> ?sched_seed:int -> Ast.program -> entry:string ->
  args:Bitvec.t list -> outcome
(** Run [entry] on a type-checked program.  [sched_seed] perturbs the
    round-robin thread *visit* order with a deterministic per-round
    shuffle (rendezvous pairing is unaffected): programs the static
    concurrency checker calls race-free must return identical observables
    under every seed, while racy programs may diverge — the dynamic
    cross-check of {!Conc_check}.
    @raise Runtime_error on semantic errors (wild pointers, out-of-bounds
    accesses, undefined functions),
    @raise Deadlock when no thread can make progress,
    @raise Timeout when [fuel] (default 10M steps) is exhausted. *)

val read_global : outcome -> string -> Bitvec.t
val read_global_array : outcome -> string -> Bitvec.t array

val run_int :
  ?fuel:int -> ?sched_seed:int -> string -> entry:string -> args:int list ->
  int
(** Parse, check, run; the entry function's result as an int. *)
