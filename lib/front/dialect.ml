(* The surveyed C-like hardware languages as *dialects* of one frontend.

   This module reproduces the paper's Table 1: each dialect records the
   chronology, provenance and one-line characterisation from the table plus
   the feature axes the paper's two discussion sections use (how concurrency
   is expressed, how time is controlled, what C constructs are excluded).
   It also enforces each dialect's restrictions on a checked program, e.g.
   Cones accepts a strict C subset with no pointers and bounded loops only,
   Bach C "supports arrays but not pointers", Cyber's BDL "prohibits
   recursive functions and pointers". *)

type concurrency =
  | Sequential (* compiler must find all parallelism *)
  | Process_level (* HardwareC/SystemC/Ocapi-style processes *)
  | Statement_level (* Handel-C/SpecC/Bach C par constructs *)

type timing =
  | Combinational (* no clock at all: Cones *)
  | Asynchronous (* no clock, handshaking: CASH *)
  | Implicit_rule of string (* fixed rule inserts cycle boundaries *)
  | Constraint_based (* HardwareC/Bach C scheduling under constraints *)
  | Explicit_cycles of string (* designer-visible cycle boundaries *)

type t = {
  name : string;
  citation : string; (* bracketed reference number in the paper *)
  year : int;
  origin : string;
  characterisation : string; (* the Table 1 one-liner *)
  concurrency : concurrency;
  timing : timing;
  allows_pointers : bool;
  allows_recursion : bool;
  allows_unbounded_loops : bool;
  allows_channels : bool;
  allows_par : bool;
  allows_constrain : bool;
  allows_delay : bool; (* Handel-C style explicit one-cycle delay *)
  backend : string; (* chls backend module that implements the scheme *)
}

let cones =
  { name = "Cones"; citation = "[23]"; year = 1988; origin = "AT&T Bell Labs";
    characterisation = "Early, combinational only";
    concurrency = Sequential; timing = Combinational;
    allows_pointers = false; allows_recursion = false;
    allows_unbounded_loops = false; allows_channels = false;
    allows_par = false; allows_constrain = false; allows_delay = false; backend = "cones" }

let hardwarec =
  { name = "HardwareC"; citation = "[12]"; year = 1990; origin = "Stanford";
    characterisation = "Behavioral synthesis-centric";
    concurrency = Process_level; timing = Constraint_based;
    allows_pointers = false; allows_recursion = false;
    allows_unbounded_loops = true; allows_channels = true; allows_par = true;
    allows_constrain = true; allows_delay = false; backend = "hardwarec" }

let transmogrifier =
  { name = "Transmogrifier C"; citation = "[8]"; year = 1995;
    origin = "U. Toronto"; characterisation = "Limited scope";
    concurrency = Sequential;
    timing = Implicit_rule "cycle at loop iterations and function calls";
    allows_pointers = false; allows_recursion = false;
    allows_unbounded_loops = true; allows_channels = false;
    allows_par = false; allows_constrain = false; allows_delay = false;
    backend = "transmogrifier" }

let systemc =
  { name = "SystemC"; citation = "[9]"; year = 1999; origin = "OSCI";
    characterisation = "Verilog in C++"; concurrency = Process_level;
    timing = Explicit_cycles "wait() calls in sequential processes";
    allows_pointers = false; allows_recursion = false;
    allows_unbounded_loops = true; allows_channels = true; allows_par = true;
    allows_constrain = false; allows_delay = true; backend = "systemc" }

let ocapi =
  { name = "Ocapi"; citation = "[19]"; year = 1998; origin = "IMEC";
    characterisation = "Algorithmic structural descriptions";
    concurrency = Process_level;
    timing = Explicit_cycles "one cycle per FSM state";
    allows_pointers = false; allows_recursion = false;
    allows_unbounded_loops = true; allows_channels = false;
    allows_par = true; allows_constrain = false; allows_delay = false; backend = "ocapi" }

let c2verilog =
  { name = "C2Verilog"; citation = "[21]"; year = 1998;
    origin = "CompiLogic / C Level Design";
    characterisation = "Comprehensive; company defunct";
    concurrency = Sequential;
    timing = Implicit_rule "compiler-inserted cycles, external constraints";
    allows_pointers = true; allows_recursion = true;
    allows_unbounded_loops = true; allows_channels = false;
    allows_par = false; allows_constrain = false; allows_delay = false; backend = "c2verilog" }

let cyber =
  { name = "Cyber (BDL)"; citation = "[24]"; year = 1999; origin = "NEC";
    characterisation = "Restricted C with extensions (NEC)";
    concurrency = Process_level;
    timing = Implicit_rule "implicit or explicit timing";
    allows_pointers = false; allows_recursion = false;
    allows_unbounded_loops = true; allows_channels = true; allows_par = true;
    allows_constrain = false; allows_delay = false; backend = "cyber" }

let handelc =
  { name = "Handel-C"; citation = "[2]"; year = 1996; origin = "Celoxica";
    characterisation = "C with CSP (Celoxica)";
    concurrency = Statement_level;
    timing = Implicit_rule "each assignment/delay takes one cycle";
    allows_pointers = false; allows_recursion = false;
    allows_unbounded_loops = true; allows_channels = true; allows_par = true;
    allows_constrain = false; allows_delay = true; backend = "handelc" }

let specc =
  { name = "SpecC"; citation = "[7]"; year = 2000; origin = "UC Irvine";
    characterisation = "Resolutely refinement-based";
    concurrency = Statement_level;
    timing = Explicit_cycles "refined from untimed to cycle-accurate";
    allows_pointers = false; allows_recursion = false;
    allows_unbounded_loops = true; allows_channels = true; allows_par = true;
    allows_constrain = false; allows_delay = true; backend = "specc" }

let bachc =
  { name = "Bach C"; citation = "[10]"; year = 2001; origin = "Sharp";
    characterisation = "Untimed semantics (Sharp)";
    concurrency = Statement_level; timing = Constraint_based;
    allows_pointers = false; allows_recursion = false;
    allows_unbounded_loops = true; allows_channels = true; allows_par = true;
    allows_constrain = false; allows_delay = false; backend = "bachc" }

let cash =
  { name = "CASH"; citation = "[1]"; year = 2002; origin = "CMU";
    characterisation = "Synthesizes asynchronous circuits";
    concurrency = Sequential; timing = Asynchronous;
    allows_pointers = false; allows_recursion = false;
    allows_unbounded_loops = true; allows_channels = false;
    allows_par = false; allows_constrain = false; allows_delay = false; backend = "cash" }

(** All dialects in the chronological order of the paper's Table 1. *)
let table1 =
  [ cones; hardwarec; transmogrifier; systemc; ocapi; c2verilog; cyber;
    handelc; specc; bachc; cash ]

let find name =
  List.find_opt
    (fun d -> String.lowercase_ascii d.name = String.lowercase_ascii name)
    table1

let string_of_concurrency = function
  | Sequential -> "compiler-inferred"
  | Process_level -> "process-level constructs"
  | Statement_level -> "statement-level par"

let string_of_timing = function
  | Combinational -> "combinational (no clock)"
  | Asynchronous -> "asynchronous handshaking"
  | Implicit_rule r -> "implicit rule: " ^ r
  | Constraint_based -> "scheduled under timing constraints"
  | Explicit_cycles r -> "explicit cycles: " ^ r

(* --- legality checking --- *)

type violation = { rule : string; where : string; vloc : Ast.loc }
(* [vloc] pins the offending statement or expression when the checker
   saw one ([Ast.no_loc] for program-level rules like recursion). *)

let pointer_expr (e : Ast.expr) =
  match e.e with
  | Ast.Deref _ | Ast.Addr_of _ -> true
  | Ast.Const _ | Ast.Var _ | Ast.Unop _ | Ast.Binop _ | Ast.Assign _
  | Ast.Cond _ | Ast.Call _ | Ast.Index _ | Ast.Cast _ | Ast.Chan_recv _ ->
    false

let rec uses_pointer_type = function
  | Ctypes.Pointer _ -> true
  | Ctypes.Array (t, _) -> uses_pointer_type t
  | Ctypes.Function { ret; params } ->
    uses_pointer_type ret || List.exists uses_pointer_type params
  | Ctypes.Void | Ctypes.Integer _ -> false

(* Direct or mutual recursion via the static call graph. *)
let recursive_functions (p : Ast.program) =
  let calls f =
    let acc = ref [] in
    Ast.iter_func
      ~stmt:(fun _ -> ())
      ~expr:(fun e ->
        match e.Ast.e with
        | Ast.Call (name, _) -> acc := name :: !acc
        | Ast.Const _ | Ast.Var _ | Ast.Unop _ | Ast.Binop _ | Ast.Assign _
        | Ast.Cond _ | Ast.Index _ | Ast.Deref _ | Ast.Addr_of _ | Ast.Cast _
        | Ast.Chan_recv _ -> ())
      f;
    !acc
  in
  let reaches =
    Hashtbl.create 16 (* function -> set of functions reachable *)
  in
  List.iter (fun f -> Hashtbl.replace reaches f.Ast.f_name (calls f)) p.funcs;
  let rec reachable_from seen name =
    if List.mem name seen then seen
    else
      let direct =
        match Hashtbl.find_opt reaches name with Some l -> l | None -> []
      in
      List.fold_left reachable_from (name :: seen) direct
  in
  List.filter
    (fun f ->
      let self = f.Ast.f_name in
      let direct =
        match Hashtbl.find_opt reaches self with Some l -> l | None -> []
      in
      List.exists (fun callee -> List.mem self (reachable_from [] callee))
        direct)
    p.funcs
  |> List.map (fun f -> f.Ast.f_name)

(** Check a (type-checked) program against a dialect's restrictions.
    Returns the list of violations; empty means the program is legal. *)
(* First statement/expression of [f] satisfying [pred], so a violation
   can carry the offending location rather than just the function name. *)
let first_stmt pred f =
  let found = ref None in
  Ast.iter_func
    ~stmt:(fun s -> if !found = None && pred s then found := Some s)
    ~expr:(fun _ -> ())
    f;
  !found

let first_expr pred f =
  let found = ref None in
  Ast.iter_func
    ~stmt:(fun _ -> ())
    ~expr:(fun e -> if !found = None && pred e then found := Some e)
    f;
  !found

let check dialect (p : Ast.program) : violation list =
  let violations = ref [] in
  let add ?(loc = Ast.no_loc) rule where =
    violations := { rule; where; vloc = loc } :: !violations
  in
  let check_func (f : Ast.func) =
    let where = f.Ast.f_name in
    (* one violation per (rule, function), located at the first offender *)
    let stmt_rule pred rule =
      match first_stmt pred f with
      | Some st -> add ~loc:st.Ast.sloc rule where
      | None -> ()
    in
    if not dialect.allows_pointers then begin
      (match first_expr pointer_expr f with
      | Some e ->
        add ~loc:e.Ast.eloc (dialect.name ^ " forbids pointer operations")
          where
      | None -> ());
      stmt_rule
        (fun st ->
          match st.Ast.s with
          | Ast.Decl (ty, _, _) -> uses_pointer_type ty
          | Ast.Expr _ | Ast.If _ | Ast.While _ | Ast.Do_while _
          | Ast.For _ | Ast.Return _ | Ast.Break | Ast.Continue | Ast.Block _
          | Ast.Par _ | Ast.Chan_send _ | Ast.Delay | Ast.Constrain _ ->
            false)
        (dialect.name ^ " forbids pointer-typed variables")
    end;
    if not dialect.allows_unbounded_loops then
      stmt_rule
        (fun st ->
          match st.Ast.s with
          | Ast.While _ | Ast.Do_while _ -> true
          | Ast.For (init, cond, step, _) ->
            (* Bounded form: for (int i = c0; i <relop> c1; i = i +/- c2) *)
            not (Loopform.is_statically_bounded ~init ~cond ~step)
          | Ast.Expr _ | Ast.Decl _ | Ast.If _ | Ast.Return _ | Ast.Break
          | Ast.Continue | Ast.Block _ | Ast.Par _ | Ast.Chan_send _
          | Ast.Delay | Ast.Constrain _ -> false)
        (dialect.name ^ " requires statically bounded loops");
    if not dialect.allows_par then
      stmt_rule
        (fun st ->
          match st.Ast.s with
          | Ast.Par _ -> true
          | Ast.Expr _ | Ast.Decl _ | Ast.If _ | Ast.While _ | Ast.Do_while _
          | Ast.For _ | Ast.Return _ | Ast.Break | Ast.Continue | Ast.Block _
          | Ast.Chan_send _ | Ast.Delay | Ast.Constrain _ -> false)
        (dialect.name ^ " has no parallel construct");
    if not dialect.allows_channels then begin
      let uses_chan_stmt (st : Ast.stmt) =
        match st.Ast.s with
        | Ast.Chan_send _ -> true
        | Ast.Expr _ | Ast.Decl _ | Ast.If _ | Ast.While _ | Ast.Do_while _
        | Ast.For _ | Ast.Return _ | Ast.Break | Ast.Continue | Ast.Block _
        | Ast.Par _ | Ast.Delay | Ast.Constrain _ -> false
      and uses_chan_expr (e : Ast.expr) =
        match e.Ast.e with
        | Ast.Chan_recv _ -> true
        | Ast.Const _ | Ast.Var _ | Ast.Unop _ | Ast.Binop _ | Ast.Assign _
        | Ast.Cond _ | Ast.Call _ | Ast.Index _ | Ast.Deref _ | Ast.Addr_of _
        | Ast.Cast _ -> false
      in
      match (first_stmt uses_chan_stmt f, first_expr uses_chan_expr f) with
      | Some st, _ ->
        add ~loc:st.Ast.sloc (dialect.name ^ " has no channels") where
      | None, Some e ->
        add ~loc:e.Ast.eloc (dialect.name ^ " has no channels") where
      | None, None -> ()
    end;
    if not dialect.allows_constrain then
      stmt_rule
        (fun st ->
          match st.Ast.s with
          | Ast.Constrain _ -> true
          | Ast.Expr _ | Ast.Decl _ | Ast.If _ | Ast.While _ | Ast.Do_while _
          | Ast.For _ | Ast.Return _ | Ast.Break | Ast.Continue | Ast.Block _
          | Ast.Par _ | Ast.Chan_send _ | Ast.Delay -> false)
        (dialect.name ^ " has no timing constraints");
    if not dialect.allows_delay then
      stmt_rule
        (fun st ->
          match st.Ast.s with
          | Ast.Delay -> true
          | Ast.Expr _ | Ast.Decl _ | Ast.If _ | Ast.While _ | Ast.Do_while _
          | Ast.For _ | Ast.Return _ | Ast.Break | Ast.Continue | Ast.Block _
          | Ast.Par _ | Ast.Chan_send _ | Ast.Constrain _ -> false)
        (dialect.name ^ " has no delay statement")
  in
  List.iter check_func p.funcs;
  if not dialect.allows_pointers then
    List.iter
      (fun (g : Ast.global) ->
        if uses_pointer_type g.Ast.g_ty then
          add (dialect.name ^ " forbids pointer-typed globals") g.Ast.g_name)
      p.globals;
  if not dialect.allows_recursion then
    List.iter
      (fun name -> add (dialect.name ^ " forbids recursion") name)
      (recursive_functions p);
  List.rev !violations
