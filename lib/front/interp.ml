(* Reference interpreter: the software semantics of the CHLS language.

   This is the oracle every hardware backend is tested against.  It is
   deliberately *untimed* — the paper's point is that time is absent from
   the C programming model: it guarantees causality but says nothing about
   execution time — so the interpreter counts statement steps only as a
   work measure, never as clock cycles.

   Structure: expressions are evaluated big-step; statements run on a
   small-step thread machine so `par` branches interleave (round-robin in
   creation order) and rendezvous channels can block.  Function calls are
   big-step and therefore must be sequential (no par/channel ops inside a
   function called from an expression); the top-level entry function body
   gets the full concurrent treatment.

   Memory is word-addressed: every scalar (of any width) occupies one word
   holding a Bitvec of its declared width; pointers are 32-bit word
   addresses.  Globals live at low addresses, the stack above them.  The
   thread machine never shrinks the stack (block scopes may interleave
   across threads); big-step calls run atomically and do reclaim their
   frames. *)

exception Runtime_error of string
exception Internal_error of string * Ast.loc
exception Deadlock
exception Timeout
exception Return_value of Bitvec.t option
exception Break_exn
exception Continue_exn

let error fmt = Printf.ksprintf (fun m -> raise (Runtime_error m)) fmt

(* An invariant the front end was supposed to establish does not hold.
   Raised (with the offending expression's location) instead of
   [assert false] so the CLI can print a located diagnostic rather than
   crash the process. *)
let internal_error loc fmt =
  Printf.ksprintf (fun m -> raise (Internal_error (m, loc))) fmt

type store = {
  mutable mem : Bitvec.t array;
  mutable sp : int; (* next free stack word *)
  globals : (string, int * Ctypes.t) Hashtbl.t;
  mutable heap_next : int; (* bump pointer for malloc, above the stack *)
}

(* The stack lives in [0, heap_base); malloc carves from [heap_base, ...).
   Keeping them disjoint means returning from a function (which lowers sp)
   never invalidates heap storage. *)
let heap_base = 1 lsl 16

let grow store needed =
  if needed > Array.length store.mem then begin
    let bigger =
      Array.make (max (2 * Array.length store.mem) needed) (Bitvec.zero 1)
    in
    Array.blit store.mem 0 bigger 0 (Array.length store.mem);
    store.mem <- bigger
  end

let alloc store words =
  let base = store.sp in
  store.sp <- store.sp + words;
  if store.sp > heap_base then error "stack overflow";
  grow store store.sp;
  base

let alloc_heap store words =
  let base = store.heap_next in
  store.heap_next <- store.heap_next + words;
  grow store store.heap_next;
  base

let valid_address store addr =
  (addr >= 0 && addr < store.sp)
  || (addr >= heap_base && addr < store.heap_next)

let load store addr =
  if not (valid_address store addr) then
    error "load out of bounds (addr %d, sp %d)" addr store.sp;
  store.mem.(addr)

let store_word store addr v =
  if not (valid_address store addr) then
    error "store out of bounds (addr %d, sp %d)" addr store.sp;
  store.mem.(addr) <- v

(* --- environments: name -> (address, declared type) --- *)

type scope = (string, int * Ctypes.t) Hashtbl.t

type env = {
  store : store;
  program : Ast.program;
  mutable scopes : scope list;
  mutable steps : int;
  fuel : int;
}

let step env =
  env.steps <- env.steps + 1;
  if env.steps > env.fuel then raise Timeout

let lookup env name =
  let rec go = function
    | [] -> (
      match Hashtbl.find_opt env.store.globals name with
      | Some binding -> binding
      | None -> error "undefined variable %s" name)
    | scope :: rest -> (
      match Hashtbl.find_opt scope name with
      | Some binding -> binding
      | None -> go rest)
  in
  go env.scopes

let declared_width ty = max 1 (Ctypes.width ty)

(* Width in words of the pointee, used to scale pointer arithmetic. *)
let pointee_words = function
  | Ctypes.Pointer t | Ctypes.Array (t, _) -> max 1 (Ctypes.word_count t)
  | Ctypes.Void | Ctypes.Integer _ | Ctypes.Function _ -> 1

let ptr_width = Ctypes.pointer_width

let bool_result b =
  Bitvec.of_int ~width:(Ctypes.width Ctypes.int_t) (if b then 1 else 0)

(* --- expression evaluation (big-step) --- *)

let rec eval env (e : Ast.expr) : Bitvec.t =
  match e.e with
  | Const (v, ty) -> Bitvec.of_int64 ~width:(declared_width ty) v
  | Var name ->
    let addr, ty = lookup env name in
    (match ty with
    | Ctypes.Array _ -> Bitvec.of_int ~width:ptr_width addr
    | Ctypes.Void | Ctypes.Integer _ | Ctypes.Pointer _ | Ctypes.Function _
      -> load env.store addr)
  | Unop (Ast.Log_not, a) -> bool_result (Bitvec.is_zero (eval env a))
  | Unop (Ast.Neg, a) -> Bitvec.neg (eval env a)
  | Unop (Ast.Bit_not, a) -> Bitvec.lognot (eval env a)
  | Binop (Ast.Log_and, a, b) ->
    bool_result
      ((not (Bitvec.is_zero (eval env a)))
      && not (Bitvec.is_zero (eval env b)))
  | Binop (Ast.Log_or, a, b) ->
    bool_result
      (not (Bitvec.is_zero (eval env a)) || not (Bitvec.is_zero (eval env b)))
  | Binop (op, a, b) -> eval_binop env op a b
  | Assign (lhs, rhs) ->
    let v = eval env rhs in
    let addr = eval_lvalue env lhs in
    store_word env.store addr v;
    v
  | Cond (c, t, f) ->
    if Bitvec.is_zero (eval env c) then eval env f else eval env t
  | Call (name, args) -> eval_call env name args
  | Index _ | Deref _ ->
    let addr = eval_lvalue env e in
    (match e.ty with
    | Ctypes.Array _ -> Bitvec.of_int ~width:ptr_width addr
    | Ctypes.Void | Ctypes.Integer _ | Ctypes.Pointer _ | Ctypes.Function _
      -> load env.store addr)
  | Addr_of a -> Bitvec.of_int ~width:ptr_width (eval_lvalue env a)
  | Cast (ty, a) ->
    let v = eval env a in
    Bitvec.resize ~signed:(Ctypes.is_signed a.ty) ~width:(declared_width ty) v
  | Chan_recv _ -> error "channel receive inside an expression-context call"

and eval_binop env op a b =
  match (op, a.Ast.ty, b.Ast.ty) with
  | Ast.Add, Ctypes.Pointer _, _ ->
    let base = eval env a and idx = eval env b in
    let words = pointee_words a.ty in
    Bitvec.add base (Bitvec.of_int ~width:ptr_width (Bitvec.to_int idx * words))
  | Ast.Sub, Ctypes.Pointer _, ti when Ctypes.is_integer ti ->
    let base = eval env a and idx = eval env b in
    let words = pointee_words a.ty in
    Bitvec.sub base (Bitvec.of_int ~width:ptr_width (Bitvec.to_int idx * words))
  | Ast.Sub, Ctypes.Pointer _, Ctypes.Pointer _ ->
    let va = eval env a and vb = eval env b in
    let words = pointee_words a.ty in
    Bitvec.of_int ~width:(Ctypes.width Ctypes.int_t)
      ((Bitvec.to_int va - Bitvec.to_int vb) / words)
  | _ ->
    let va = eval env a and vb = eval env b in
    let signed = Ctypes.is_signed a.ty in
    let open Bitvec in
    (match op with
    | Ast.Add -> add va vb
    | Ast.Sub -> sub va vb
    | Ast.Mul -> mul va vb
    | Ast.Div -> if signed then sdiv va vb else udiv va vb
    | Ast.Mod -> if signed then srem va vb else urem va vb
    | Ast.Band -> logand va vb
    | Ast.Bor -> logor va vb
    | Ast.Bxor -> logxor va vb
    | Ast.Shl -> shl va vb
    | Ast.Shr -> if signed then ashr va vb else lshr va vb
    | Ast.Eq -> bool_result (equal va vb)
    | Ast.Ne -> bool_result (not (equal va vb))
    | Ast.Lt -> bool_result (if signed then slt va vb else ult va vb)
    | Ast.Le -> bool_result (if signed then sle va vb else ule va vb)
    | Ast.Gt -> bool_result (if signed then slt vb va else ult vb va)
    | Ast.Ge -> bool_result (if signed then sle vb va else ule vb va)
    | Ast.Log_and | Ast.Log_or ->
      (* [eval] rewrites the short-circuit operators before dispatching
         here; reaching this branch means that lowering missed a case *)
      internal_error a.Ast.eloc
        "short-circuit operator %s reached the scalar binop evaluator"
        (match op with Ast.Log_and -> "&&" | _ -> "||"))

and eval_lvalue env (e : Ast.expr) : int =
  match e.e with
  | Var name -> fst (lookup env name)
  | Deref a -> Bitvec.to_int_unsigned (eval env a)
  | Index (base, idx) ->
    let elt_words =
      match Ctypes.decay base.ty with
      | Ctypes.Pointer elt -> max 1 (Ctypes.word_count elt)
      | Ctypes.Void | Ctypes.Integer _ | Ctypes.Array _ | Ctypes.Function _
        -> error "indexing a non-pointer"
    in
    let base_addr =
      match base.ty with
      | Ctypes.Array _ -> eval_lvalue env base
      | Ctypes.Void | Ctypes.Integer _ | Ctypes.Pointer _ | Ctypes.Function _
        -> Bitvec.to_int_unsigned (eval env base)
    in
    base_addr + (Bitvec.to_int (eval env idx) * elt_words)
  | Const _ | Unop _ | Binop _ | Assign _ | Cond _ | Call _ | Addr_of _
  | Cast _ | Chan_recv _ -> error "not an lvalue"

(* --- big-step function execution (sequential subset) --- *)

and eval_call env name args =
  match (Ast.find_func env.program name, name, args) with
  | None, "malloc", [ n ] ->
    (* bump allocation from the heap half of the word store; never freed *)
    let words = max 1 (Bitvec.to_int (eval env n)) in
    let base = alloc_heap env.store words in
    for i = 0 to words - 1 do
      env.store.mem.(base + i) <- Bitvec.zero 32
    done;
    Bitvec.of_int ~width:ptr_width base
  | None, _, _ -> error "call to undefined function %s" name
  | Some func, _, _ -> eval_user_call env func args

and eval_user_call env func args =
  let arg_values = List.map (eval env) args in
  let saved_sp = env.store.sp in
  let frame : scope = Hashtbl.create 8 in
  List.iter2
    (fun (ty, pname) v ->
      let ty =
        match ty with Ctypes.Array (elt, _) -> Ctypes.Pointer elt | t -> t
      in
      let addr = alloc env.store 1 in
      store_word env.store addr v;
      Hashtbl.replace frame pname (addr, ty))
    func.f_params arg_values;
  let saved_scopes = env.scopes in
  env.scopes <- [ frame ];
  let finish () =
    env.scopes <- saved_scopes;
    env.store.sp <- saved_sp
  in
  let result =
    try
      List.iter (exec_big env) func.f_body;
      Bitvec.zero (max 1 (Ctypes.width func.f_ret))
    with
    | Return_value (Some v) -> v
    | Return_value None -> Bitvec.zero (max 1 (Ctypes.width func.f_ret))
    | exn ->
      finish ();
      raise exn
  in
  finish ();
  result

and exec_big env (st : Ast.stmt) : unit =
  step env;
  match st.s with
  | Expr e -> ignore (eval env e)
  | Decl (ty, name, init) ->
    let addr = alloc env.store (max 1 (Ctypes.word_count ty)) in
    (match env.scopes with
    | scope :: _ -> Hashtbl.replace scope name (addr, ty)
    | [] -> error "no scope");
    (match init with
    | None -> ()
    | Some e -> store_word env.store addr (eval env e))
  | If (c, t, f) ->
    if Bitvec.is_zero (eval env c) then exec_block_big env f
    else exec_block_big env t
  | While (c, body) -> (
    try
      while not (Bitvec.is_zero (eval env c)) do
        step env;
        try exec_block_big env body with Continue_exn -> ()
      done
    with Break_exn -> ())
  | Do_while (body, c) -> (
    try
      let continue = ref true in
      while !continue do
        step env;
        (try exec_block_big env body with Continue_exn -> ());
        continue := not (Bitvec.is_zero (eval env c))
      done
    with Break_exn -> ())
  | For (init, cond, stepper, body) ->
    let scope = Hashtbl.create 4 in
    env.scopes <- scope :: env.scopes;
    let saved_sp = env.store.sp in
    let finish () =
      env.scopes <- List.tl env.scopes;
      env.store.sp <- saved_sp
    in
    (try
       (match init with None -> () | Some st -> exec_big env st);
       let test () =
         match cond with
         | None -> true
         | Some c -> not (Bitvec.is_zero (eval env c))
       in
       (try
          while test () do
            step env;
            (try exec_block_big env body with Continue_exn -> ());
            match stepper with None -> () | Some e -> ignore (eval env e)
          done
        with Break_exn -> ());
       finish ()
     with exn ->
       finish ();
       raise exn)
  | Return None -> raise (Return_value None)
  | Return (Some e) -> raise (Return_value (Some (eval env e)))
  | Break -> raise Break_exn
  | Continue -> raise Continue_exn
  | Block body -> exec_block_big env body
  | Par _ | Chan_send _ ->
    error "par/channel operation inside an expression-context call"
  | Delay -> () (* untimed semantics: delay is a no-op *)
  | Constrain (_, _, body) ->
    (* Timing constraints do not change the software semantics. *)
    exec_block_big env body

and exec_block_big env body =
  let scope = Hashtbl.create 4 in
  env.scopes <- scope :: env.scopes;
  let saved_sp = env.store.sp in
  Fun.protect
    ~finally:(fun () ->
      env.scopes <- List.tl env.scopes;
      env.store.sp <- saved_sp)
    (fun () -> List.iter (exec_big env) body)

(* --- the thread machine for the entry function --- *)

type item =
  | I_stmt of Ast.stmt
  | I_end_scope
  | I_loop_end
  | I_while_retest of Ast.expr * Ast.block
  | I_dowhile_retest of Ast.block * Ast.expr
  | I_for_test of Ast.expr option * Ast.expr option * Ast.block
  | I_for_step of Ast.expr option * Ast.expr option * Ast.block
  | I_join_signal of join

and join = { mutable remaining : int; joiner : thread }

and blocked =
  | Runnable
  | Blocked_send of string * Bitvec.t
  | Blocked_recv of string * (Bitvec.t -> unit)
  | Blocked_join

and thread = {
  tid : int;
  mutable cont : item list;
  mutable tenv : scope list;
  mutable state : blocked;
}

type machine = {
  env : env;
  mutable threads : thread list; (* in creation order *)
  mutable next_tid : int;
  mutable return_value : Bitvec.t option option; (* Some: entry returned *)
}

let spawn machine cont scopes =
  let t = { tid = machine.next_tid; cont; tenv = scopes; state = Runnable } in
  machine.next_tid <- machine.next_tid + 1;
  machine.threads <- machine.threads @ [ t ];
  t

let with_env machine thread f =
  let saved = machine.env.scopes in
  machine.env.scopes <- thread.tenv;
  Fun.protect
    ~finally:(fun () -> machine.env.scopes <- saved)
    (fun () -> f machine.env)

(* Pop continuation items until the predicate holds, popping scopes on the
   way (used by break/continue). *)
let rec unwind_until thread pred =
  match thread.cont with
  | [] -> error "break/continue with no enclosing loop in thread"
  | item :: rest ->
    if pred item then ()
    else begin
      (match item with
      | I_end_scope -> thread.tenv <- List.tl thread.tenv
      | I_stmt _ | I_loop_end | I_while_retest _ | I_dowhile_retest _
      | I_for_test _ | I_for_step _ | I_join_signal _ -> ());
      thread.cont <- rest;
      unwind_until thread pred
    end

(* Open a scope now and return the items that execute [body] then close it. *)
let scoped_items thread body after =
  thread.tenv <- Hashtbl.create 4 :: thread.tenv;
  List.map (fun s -> I_stmt s) body @ (I_end_scope :: after)

(* A receive can appear as a bare expression statement, as the rhs of an
   assignment, or as a declaration initializer (possibly behind the cast
   inserted by the type checker). *)
let as_recv (e : Ast.expr) =
  match e.e with
  | Ast.Chan_recv ch -> Some (ch, None)
  | Ast.Cast (ty, { e = Ast.Chan_recv ch; _ }) -> Some (ch, Some ty)
  | Ast.Const _ | Ast.Var _ | Ast.Unop _ | Ast.Binop _ | Ast.Assign _
  | Ast.Cond _ | Ast.Call _ | Ast.Index _ | Ast.Deref _ | Ast.Addr_of _
  | Ast.Cast _ -> None

let convert_received ty v =
  match ty with
  | None -> v
  | Some ty -> Bitvec.resize ~signed:true ~width:(declared_width ty) v

(* Try to complete a rendezvous on channel [ch]: pairs the earliest blocked
   sender with the earliest blocked receiver. *)
let try_rendezvous machine ch =
  let find pred = List.find_opt pred machine.threads in
  let sender =
    find (fun t ->
        match t.state with
        | Blocked_send (c, _) -> String.equal c ch
        | Runnable | Blocked_recv _ | Blocked_join -> false)
  and receiver =
    find (fun t ->
        match t.state with
        | Blocked_recv (c, _) -> String.equal c ch
        | Runnable | Blocked_send _ | Blocked_join -> false)
  in
  match (sender, receiver) with
  | Some s, Some r -> (
    match (s.state, r.state) with
    | Blocked_send (_, v), Blocked_recv (_, deliver) ->
      deliver v;
      s.state <- Runnable;
      r.state <- Runnable
    | (Runnable | Blocked_send _ | Blocked_recv _ | Blocked_join), _ -> ())
  | (Some _ | None), (Some _ | None) -> ()

let rec exec_item machine thread =
  match thread.cont with
  | [] -> ()
  | item :: rest ->
    thread.cont <- rest;
    step machine.env;
    let eval_in e = with_env machine thread (fun env -> eval env e) in
    (match item with
    | I_end_scope -> thread.tenv <- List.tl thread.tenv
    | I_loop_end -> ()
    | I_while_retest (c, body) ->
      if not (Bitvec.is_zero (eval_in c)) then
        thread.cont <-
          scoped_items thread body (I_while_retest (c, body) :: thread.cont)
    | I_dowhile_retest (body, c) ->
      if not (Bitvec.is_zero (eval_in c)) then
        thread.cont <-
          scoped_items thread body (I_dowhile_retest (body, c) :: thread.cont)
    | I_for_test (cond, stepper, body) ->
      let continue =
        match cond with
        | None -> true
        | Some c -> not (Bitvec.is_zero (eval_in c))
      in
      if continue then
        thread.cont <-
          scoped_items thread body
            (I_for_step (cond, stepper, body) :: thread.cont)
    | I_for_step (cond, stepper, body) ->
      (match stepper with None -> () | Some e -> ignore (eval_in e));
      thread.cont <- I_for_test (cond, stepper, body) :: thread.cont
    | I_join_signal j ->
      j.remaining <- j.remaining - 1;
      if j.remaining = 0 && j.joiner.state = Blocked_join then
        j.joiner.state <- Runnable
    | I_stmt st -> exec_thread_stmt machine thread st)

and exec_thread_stmt machine thread (st : Ast.stmt) =
  let eval_in e = with_env machine thread (fun env -> eval env e) in
  match st.s with
  | Expr e when as_recv e <> None ->
    let ch, _ = Option.get (as_recv e) in
    thread.state <- Blocked_recv (ch, fun _ -> ());
    try_rendezvous machine ch
  | Expr { e = Ast.Assign (lhs, rhs); _ } when as_recv rhs <> None ->
    let ch, cast = Option.get (as_recv rhs) in
    let deliver v =
      with_env machine thread (fun env ->
          let addr = eval_lvalue env lhs in
          store_word env.store addr (convert_received cast v))
    in
    thread.state <- Blocked_recv (ch, deliver);
    try_rendezvous machine ch
  | Expr e -> ignore (eval_in e)
  | Decl (ty, name, init) ->
    with_env machine thread (fun env ->
        let addr = alloc env.store (max 1 (Ctypes.word_count ty)) in
        (match thread.tenv with
        | scope :: _ -> Hashtbl.replace scope name (addr, ty)
        | [] -> error "no scope in thread");
        match init with
        | Some e when as_recv e <> None ->
          let ch, cast = Option.get (as_recv e) in
          thread.state <-
            Blocked_recv
              (ch, fun v -> store_word env.store addr (convert_received cast v));
          try_rendezvous machine ch
        | None -> ()
        | Some e -> store_word env.store addr (eval env e))
  | If (c, t, f) ->
    if Bitvec.is_zero (eval_in c) then
      thread.cont <- scoped_items thread f thread.cont
    else thread.cont <- scoped_items thread t thread.cont
  | While (c, body) ->
    thread.cont <- I_while_retest (c, body) :: I_loop_end :: thread.cont
  | Do_while (body, c) ->
    thread.cont <-
      scoped_items thread body
        (I_dowhile_retest (body, c) :: I_loop_end :: thread.cont)
  | For (init, cond, stepper, body) ->
    thread.tenv <- Hashtbl.create 4 :: thread.tenv;
    thread.cont <-
      (match init with None -> [] | Some st -> [ I_stmt st ])
      @ I_for_test (cond, stepper, body)
        :: I_loop_end :: I_end_scope :: thread.cont
  | Return value ->
    let v = Option.map eval_in value in
    machine.return_value <- Some v;
    thread.cont <- []
  | Break ->
    unwind_until thread (function
      | I_loop_end -> true
      | I_stmt _ | I_end_scope | I_while_retest _ | I_dowhile_retest _
      | I_for_test _ | I_for_step _ | I_join_signal _ -> false);
    (match thread.cont with
    | I_loop_end :: rest -> thread.cont <- rest
    | _ -> ())
  | Continue ->
    unwind_until thread (function
      | I_while_retest _ | I_dowhile_retest _ | I_for_step _ -> true
      | I_stmt _ | I_end_scope | I_loop_end | I_for_test _ | I_join_signal _
        -> false)
  | Block body -> thread.cont <- scoped_items thread body thread.cont
  | Par branches ->
    let j = { remaining = List.length branches; joiner = thread } in
    List.iter
      (fun branch ->
        ignore
          (spawn machine
             (List.map (fun s -> I_stmt s) branch @ [ I_join_signal j ])
             (Hashtbl.create 4 :: thread.tenv)))
      branches;
    if j.remaining > 0 then thread.state <- Blocked_join
  | Chan_send (ch, e) ->
    let v = eval_in e in
    thread.state <- Blocked_send (ch, v);
    try_rendezvous machine ch
  | Delay -> () (* untimed: a delay is just a yield *)
  | Constrain (_, _, body) ->
    thread.cont <- scoped_items thread body thread.cont

(* A deterministic Fisher-Yates shuffle keyed on (seed, round): the
   scheduler-perturbation hook behind [run ~sched_seed].  Thread *visit*
   order changes per round; rendezvous pairing (creation order) does not,
   so a program the static checker calls race-free must produce the same
   observables under every seed — the qcheck property in test_conc.ml. *)
let permute ~seed ~round threads =
  match threads with
  | [] | [ _ ] -> threads
  | _ ->
    let arr = Array.of_list threads in
    let state = ref (((seed * 0x9e3779b1) lxor (round * 0x85ebca77)) lor 1) in
    let next bound =
      state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
      !state mod bound
    in
    for i = Array.length arr - 1 downto 1 do
      let j = next (i + 1) in
      let t = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- t
    done;
    Array.to_list arr

let run_machine ?sched_seed machine entry_thread =
  let finished t = t.cont = [] in
  let runnable t = t.state = Runnable && not (finished t) in
  let round = ref 0 in
  let rec loop () =
    if machine.return_value <> None || finished entry_thread then ()
    else begin
      incr round;
      let snapshot =
        match sched_seed with
        | None -> machine.threads
        | Some seed -> permute ~seed ~round:!round machine.threads
      in
      let ran = ref false in
      List.iter
        (fun t ->
          if machine.return_value = None && runnable t then begin
            ran := true;
            exec_item machine t
          end)
        snapshot;
      machine.threads <-
        List.filter
          (fun t -> (not (finished t)) || t == entry_thread)
          machine.threads;
      if (not !ran) && machine.return_value = None
         && not (finished entry_thread)
      then raise Deadlock;
      loop ()
    end
  in
  loop ()

type outcome = {
  return_value : Bitvec.t option;
  steps : int;
  final_store : store;
}

let allocate_globals store (program : Ast.program) =
  List.iter
    (fun (g : Ast.global) ->
      let words = max 1 (Ctypes.word_count g.g_ty) in
      let base = alloc store words in
      Hashtbl.replace store.globals g.g_name (base, g.g_ty);
      let elem_width =
        match g.g_ty with
        | Ctypes.Array (elt, _) -> declared_width elt
        | ty -> declared_width ty
      in
      for i = 0 to words - 1 do
        store.mem.(base + i) <- Bitvec.zero elem_width
      done;
      match g.g_init with
      | None -> ()
      | Some values ->
        List.iteri
          (fun i v ->
            if i < words then
              store.mem.(base + i) <- Bitvec.of_int64 ~width:elem_width v)
          values)
    program.globals

(** Run [entry] with scalar [args]; the program must already be
    type-checked.  [fuel] bounds the number of interpreter steps. *)
let run ?(fuel = 10_000_000) ?sched_seed (program : Ast.program) ~entry
    ~args : outcome =
  let func =
    match Ast.find_func program entry with
    | Some f -> f
    | None -> error "entry function %s not found" entry
  in
  let store =
    { mem = Array.make 1024 (Bitvec.zero 1); sp = 0;
      globals = Hashtbl.create 16; heap_next = heap_base }
  in
  allocate_globals store program;
  let env = { store; program; scopes = []; steps = 0; fuel } in
  if List.length args <> List.length func.f_params then
    error "%s expects %d arguments, got %d" entry
      (List.length func.f_params) (List.length args);
  let frame : scope = Hashtbl.create 8 in
  List.iter2
    (fun (ty, name) v ->
      let ty =
        match ty with Ctypes.Array (elt, _) -> Ctypes.Pointer elt | t -> t
      in
      let addr = alloc store 1 in
      store_word store addr
        (Bitvec.resize ~signed:true ~width:(declared_width ty) v);
      Hashtbl.replace frame name (addr, ty))
    func.f_params args;
  let machine = { env; threads = []; next_tid = 0; return_value = None } in
  let entry_thread =
    spawn machine (List.map (fun s -> I_stmt s) func.f_body) [ frame ]
  in
  run_machine ?sched_seed machine entry_thread;
  { return_value =
      (match machine.return_value with Some v -> v | None -> None);
    steps = env.steps;
    final_store = store }

(** Read a scalar global after a run. *)
let read_global outcome name =
  match Hashtbl.find_opt outcome.final_store.globals name with
  | Some (addr, _) -> outcome.final_store.mem.(addr)
  | None -> error "no global %s" name

(** Read an array global after a run. *)
let read_global_array outcome name =
  match Hashtbl.find_opt outcome.final_store.globals name with
  | Some (addr, Ctypes.Array (_, n)) ->
    Array.init n (fun i -> outcome.final_store.mem.(addr + i))
  | Some _ -> error "%s is not an array" name
  | None -> error "no global %s" name

(** Convenience wrapper: parse, check, run, and return the entry function's
    result as an int. *)
let run_int ?fuel ?sched_seed src ~entry ~args =
  let program = Typecheck.parse_and_check src in
  let args = List.map (fun n -> Bitvec.of_int ~width:64 n) args in
  let outcome = run ?fuel ?sched_seed program ~entry ~args in
  match outcome.return_value with
  | Some v -> Bitvec.to_int v
  | None -> error "%s returned no value" entry
