(** The surveyed C-like hardware languages as dialects of one frontend.

    Reproduces the paper's Table 1: each dialect records chronology,
    provenance and the table's one-line characterisation, plus the feature
    axes the paper's Concurrency and Time sections use.  [check] enforces
    a dialect's published restrictions on a type-checked program. *)

type concurrency =
  | Sequential  (** compiler must find all parallelism *)
  | Process_level  (** HardwareC/SystemC/Ocapi-style processes *)
  | Statement_level  (** Handel-C/SpecC/Bach C [par] constructs *)

type timing =
  | Combinational  (** no clock at all: Cones *)
  | Asynchronous  (** no clock, handshaking: CASH *)
  | Implicit_rule of string  (** a fixed rule inserts cycle boundaries *)
  | Constraint_based  (** scheduled under timing constraints *)
  | Explicit_cycles of string  (** designer-visible cycle boundaries *)

type t = {
  name : string;
  citation : string;  (** bracketed reference number in the paper *)
  year : int;
  origin : string;
  characterisation : string;  (** the Table 1 one-liner *)
  concurrency : concurrency;
  timing : timing;
  allows_pointers : bool;
  allows_recursion : bool;
  allows_unbounded_loops : bool;
  allows_channels : bool;
  allows_par : bool;
  allows_constrain : bool;
  allows_delay : bool;
  backend : string;  (** chls backend implementing the scheme *)
}

val cones : t
val hardwarec : t
val transmogrifier : t
val systemc : t
val ocapi : t
val c2verilog : t
val cyber : t
val handelc : t
val specc : t
val bachc : t
val cash : t

val table1 : t list
(** All dialects in the paper's Table 1 row order. *)

val find : string -> t option
(** Case-insensitive lookup by language name. *)

val string_of_concurrency : concurrency -> string
val string_of_timing : timing -> string

type violation = { rule : string; where : string; vloc : Ast.loc }
(** A broken dialect rule: [rule] names the restriction, [where] the
    enclosing function (or global), and [vloc] the first offending
    statement or expression ([Ast.no_loc] for program-level rules such
    as recursion). *)

val recursive_functions : Ast.program -> string list
(** Functions involved in direct or mutual recursion. *)

val check : t -> Ast.program -> violation list
(** Check a type-checked program against a dialect's restrictions; an
    empty list means the program is legal in that language. *)
