(* Type checker / elaborator.

   Checks a parsed program and returns an elaborated copy in which every
   expression carries its type and every implicit C conversion (integer
   promotion, usual arithmetic conversion, assignment conversion) has been
   made explicit as a [Cast] node.  Downstream lowering can then translate
   operators width-for-width without re-deriving C's conversion rules. *)

open Ast (* record fields of Ast.expr/Ast.stmt are used pervasively *)

exception Error of string * Ast.loc

let fail loc fmt = Printf.ksprintf (fun msg -> raise (Error (msg, loc))) fmt

type env = {
  program : Ast.program;
  scopes : (string, Ctypes.t) Hashtbl.t list; (* innermost first *)
  current : Ast.func;
  in_loop : bool;
}

let lookup env name =
  let rec go = function
    | [] -> None
    | scope :: rest -> (
      match Hashtbl.find_opt scope name with
      | Some t -> Some t
      | None -> go rest)
  in
  go env.scopes

let bind env loc name ty =
  match env.scopes with
  | scope :: _ ->
    if Hashtbl.mem scope name then fail loc "redeclaration of %s" name;
    Hashtbl.replace scope name ty
  | [] ->
    (* unreachable through [check_func] (which always opens a scope), but
       a malformed environment must surface as a diagnostic, not a crash *)
    fail loc "declaration of %s outside any scope" name

let push_scope env = { env with scopes = Hashtbl.create 8 :: env.scopes }

(* Builtins available without declaration.  [malloc] returns a pointer to
   words (C2Verilog is the only dialect that accepts it; the others reject
   the resulting pointer type). *)
let builtin_signature = function
  | "malloc" -> Some (Ctypes.Pointer Ctypes.int_t, [ Ctypes.int_t ])
  | _ -> None

let func_signature env loc name =
  match Ast.find_func env.program name with
  | Some f -> (f.f_ret, List.map fst f.f_params)
  | None -> (
    match builtin_signature name with
    | Some signature -> signature
    | None -> fail loc "call to undefined function %s" name)

let chan_type env loc name =
  match Ast.find_chan env.program name with
  | Some c -> c.c_ty
  | None -> fail loc "undeclared channel %s" name

(** Insert a conversion cast if [e] does not already have type [ty].
    Conversion to [bool] follows C11 _Bool semantics (any nonzero value
    becomes 1), desugared to an explicit [!= 0] so every downstream layer
    — interpreter, CIR, netlists — inherits it without special cases. *)
let coerce loc ty (e : Ast.expr) =
  if Ctypes.equal e.ty ty then e
  else begin
    if not (Ctypes.is_scalar ty && Ctypes.is_scalar (Ctypes.decay e.ty)) then
      fail loc "cannot convert %s to %s" (Ctypes.to_string e.ty)
        (Ctypes.to_string ty);
    match ty with
    | Ctypes.Integer { kind = Ctypes.Bool; _ } ->
      let zero =
        { Ast.e = Ast.Const (0L, e.ty); ty = e.ty; eloc = loc }
      in
      let test =
        { Ast.e = Ast.Binop (Ast.Ne, e, zero); ty = Ctypes.int_t; eloc = loc }
      in
      { Ast.e = Ast.Cast (ty, test); ty; eloc = loc }
    | Ctypes.Void | Ctypes.Integer _ | Ctypes.Pointer _ | Ctypes.Array _
    | Ctypes.Function _ -> { Ast.e = Ast.Cast (ty, e); ty; eloc = loc }
  end

let is_lvalue (e : Ast.expr) =
  match e.e with
  | Var _ | Index _ | Deref _ -> true
  | Const _ | Unop _ | Binop _ | Assign _ | Cond _ | Call _ | Addr_of _
  | Cast _ | Chan_recv _ -> false

let rec check_expr env (e : Ast.expr) : Ast.expr =
  let loc = e.eloc in
  let ret desc ty : Ast.expr = { Ast.e = desc; ty; eloc = loc } in
  match e.e with
  | Const (v, ty) -> ret (Ast.Const (v, ty)) ty
  | Var name -> (
    match lookup env name with
    | Some ty -> ret (Ast.Var name) ty
    | None -> (
      match Ast.find_global env.program name with
      | Some g -> ret (Ast.Var name) g.g_ty
      | None -> fail loc "undeclared variable %s" name))
  | Unop (Ast.Log_not, a) ->
    let a = rvalue env a in
    if not (Ctypes.is_scalar a.ty) then fail loc "! needs a scalar operand";
    ret (Ast.Unop (Ast.Log_not, a)) Ctypes.int_t
  | Unop (op, a) ->
    let a = rvalue env a in
    if not (Ctypes.is_integer a.ty) then
      fail loc "%s needs an integer operand" (Ast.string_of_unop op);
    let ty = Ctypes.promote a.ty in
    let a = coerce loc ty a in
    ret (Ast.Unop (op, a)) ty
  | Binop ((Ast.Log_and | Ast.Log_or) as op, a, b) ->
    let a = rvalue env a and b = rvalue env b in
    if not (Ctypes.is_scalar a.ty && Ctypes.is_scalar b.ty) then
      fail loc "%s needs scalar operands" (Ast.string_of_binop op);
    ret (Ast.Binop (op, a, b)) Ctypes.int_t
  | Binop ((Ast.Shl | Ast.Shr) as op, a, b) ->
    let a = rvalue env a and b = rvalue env b in
    if not (Ctypes.is_integer a.ty && Ctypes.is_integer b.ty) then
      fail loc "shift needs integer operands";
    let ty = Ctypes.promote a.ty in
    let a = coerce loc ty a and b = coerce loc (Ctypes.promote b.ty) b in
    ret (Ast.Binop (op, a, b)) ty
  | Binop ((Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op, a, b)
    ->
    let a = rvalue env a and b = rvalue env b in
    let a, b = converge loc a b in
    ret (Ast.Binop (op, a, b)) Ctypes.int_t
  | Binop (op, a, b) ->
    (* Check each operand exactly once (re-checking inside a guard would
       make the checker exponential in expression depth), then dispatch
       on pointer arithmetic. *)
    let a = rvalue env a and b = rvalue env b in
    if
      (op = Ast.Add || op = Ast.Sub)
      && (Ctypes.is_pointer a.ty || Ctypes.is_pointer b.ty)
    then check_pointer_arith loc op a b
    else begin
      if not (Ctypes.is_integer a.ty && Ctypes.is_integer b.ty) then
        fail loc "%s needs integer operands (got %s, %s)"
          (Ast.string_of_binop op) (Ctypes.to_string a.ty)
          (Ctypes.to_string b.ty);
      let ty = Ctypes.arithmetic_conversion a.ty b.ty in
      ret (Ast.Binop (op, coerce loc ty a, coerce loc ty b)) ty
    end
  | Assign (lhs, rhs) ->
    let lhs = check_expr env lhs in
    if not (is_lvalue lhs) then fail loc "assignment to non-lvalue";
    if not (Ctypes.is_scalar lhs.ty) then
      fail loc "assignment to non-scalar %s" (Ctypes.to_string lhs.ty);
    let rhs = coerce loc lhs.ty (rvalue env rhs) in
    ret (Ast.Assign (lhs, rhs)) lhs.ty
  | Cond (c, t, f) ->
    let c = rvalue env c in
    if not (Ctypes.is_scalar c.ty) then fail loc "?: needs a scalar condition";
    let t = rvalue env t and f = rvalue env f in
    let t, f = converge loc t f in
    ret (Ast.Cond (c, t, f)) t.ty
  | Call (name, args) ->
    let ret_ty, param_tys = func_signature env loc name in
    if List.length args <> List.length param_tys then
      fail loc "%s expects %d arguments, got %d" name (List.length param_tys)
        (List.length args);
    let args =
      List.map2
        (fun arg pty ->
          let arg = rvalue env arg in
          match (pty, arg.Ast.ty) with
          | Ctypes.Pointer pe, Ctypes.Pointer ae when Ctypes.equal pe ae ->
            arg
          | Ctypes.Array (pe, _), Ctypes.Pointer ae when Ctypes.equal pe ae ->
            arg
          | (Ctypes.Array (pe, _) | Ctypes.Pointer pe), Ctypes.Array (ae, _)
            when Ctypes.equal pe ae -> arg
          | _ -> coerce loc pty arg)
        args param_tys
    in
    ret (Ast.Call (name, args)) ret_ty
  | Index (base, idx) ->
    let base = check_expr env base in
    let idx = coerce loc Ctypes.int_t (rvalue env idx) in
    let elt =
      match Ctypes.decay base.ty with
      | Ctypes.Pointer elt -> elt
      | ty -> fail loc "cannot index %s" (Ctypes.to_string ty)
    in
    ret (Ast.Index (base, idx)) elt
  | Deref a ->
    let a = rvalue env a in
    (match a.ty with
    | Ctypes.Pointer elt -> ret (Ast.Deref a) elt
    | ty -> fail loc "cannot dereference %s" (Ctypes.to_string ty))
  | Addr_of a ->
    let a = check_expr env a in
    if not (is_lvalue a) then fail loc "& needs an lvalue";
    ret (Ast.Addr_of a) (Ctypes.Pointer a.ty)
  | Cast (ty, a) ->
    let a = rvalue env a in
    if not (Ctypes.is_scalar ty && Ctypes.is_scalar a.ty) then
      fail loc "invalid cast from %s to %s" (Ctypes.to_string a.ty)
        (Ctypes.to_string ty);
    (* explicit (bool)e also takes the != 0 semantics *)
    (match ty with
    | Ctypes.Integer { kind = Ctypes.Bool; _ } when not (Ctypes.equal a.ty ty)
      -> coerce loc ty a
    | Ctypes.Void | Ctypes.Integer _ | Ctypes.Pointer _ | Ctypes.Array _
    | Ctypes.Function _ -> ret (Ast.Cast (ty, a)) ty)
  | Chan_recv ch -> ret (Ast.Chan_recv ch) (chan_type env loc ch)

(* Check as an rvalue: arrays decay to pointers. *)
and rvalue env e =
  let e = check_expr env e in
  match e.ty with
  | Ctypes.Array (elt, _) -> { e with ty = Ctypes.Pointer elt }
  | Ctypes.Void | Ctypes.Integer _ | Ctypes.Pointer _ | Ctypes.Function _ -> e

(* Bring two integer (or pointer) operands to a common type. *)
and converge loc a b =
  match (a.Ast.ty, b.Ast.ty) with
  | Ctypes.Pointer _, Ctypes.Pointer _ -> (a, b)
  | ta, tb when Ctypes.is_integer ta && Ctypes.is_integer tb ->
    let ty = Ctypes.arithmetic_conversion ta tb in
    (coerce loc ty a, coerce loc ty b)
  | ta, tb ->
    fail loc "incompatible operand types %s and %s" (Ctypes.to_string ta)
      (Ctypes.to_string tb)

and check_pointer_arith loc op a b =
  (* operands are already checked rvalues *)
  match (a.ty, b.ty, op) with
  | Ctypes.Pointer _, Ctypes.Pointer _, Ast.Sub ->
    { Ast.e = Ast.Binop (Ast.Sub, a, b); ty = Ctypes.int_t; eloc = loc }
  | Ctypes.Pointer _, ti, (Ast.Add | Ast.Sub) when Ctypes.is_integer ti ->
    let b = coerce loc Ctypes.int_t b in
    { Ast.e = Ast.Binop (op, a, b); ty = a.ty; eloc = loc }
  | ti, Ctypes.Pointer _, Ast.Add when Ctypes.is_integer ti ->
    let a = coerce loc Ctypes.int_t a in
    { Ast.e = Ast.Binop (op, b, a); ty = b.ty; eloc = loc }
  | ta, tb, _ ->
    fail loc "invalid pointer arithmetic on %s and %s" (Ctypes.to_string ta)
      (Ctypes.to_string tb)

let rec check_stmt env (st : Ast.stmt) : Ast.stmt =
  let loc = st.sloc in
  let ret desc : Ast.stmt = { Ast.s = desc; sloc = loc } in
  match st.s with
  | Expr e -> ret (Ast.Expr (check_expr env e))
  | Decl (ty, name, init) ->
    (match ty with
    | Ctypes.Void -> fail loc "void variable %s" name
    | Ctypes.Array (_, n) when n <= 0 -> fail loc "array %s has size %d" name n
    | Ctypes.Integer _ | Ctypes.Pointer _ | Ctypes.Array _
    | Ctypes.Function _ -> ());
    let init =
      match init with
      | None -> None
      | Some e ->
        if not (Ctypes.is_scalar ty) then
          fail loc "cannot initialize aggregate %s with an expression" name;
        Some (coerce loc ty (rvalue env e))
    in
    bind env loc name ty;
    ret (Ast.Decl (ty, name, init))
  | If (c, then_b, else_b) ->
    let c = scalar_cond env c in
    ret (Ast.If (c, check_block env then_b, check_block env else_b))
  | While (c, body) ->
    let c = scalar_cond env c in
    ret (Ast.While (c, check_block { env with in_loop = true } body))
  | Do_while (body, c) ->
    let body = check_block { env with in_loop = true } body in
    ret (Ast.Do_while (body, scalar_cond env c))
  | For (init, cond, step, body) ->
    let env' = push_scope env in
    let init = Option.map (check_stmt env') init in
    let cond = Option.map (scalar_cond env') cond in
    let step = Option.map (check_expr env') step in
    let body = check_block { env' with in_loop = true } body in
    ret (Ast.For (init, cond, step, body))
  | Return None ->
    if not (Ctypes.equal env.current.f_ret Ctypes.Void) then
      fail loc "return without value in %s" env.current.f_name;
    ret (Ast.Return None)
  | Return (Some e) ->
    if Ctypes.equal env.current.f_ret Ctypes.Void then
      fail loc "return with value in void function %s" env.current.f_name;
    ret (Ast.Return (Some (coerce loc env.current.f_ret (rvalue env e))))
  | Break ->
    if not env.in_loop then fail loc "break outside loop";
    ret Ast.Break
  | Continue ->
    if not env.in_loop then fail loc "continue outside loop";
    ret Ast.Continue
  | Block body -> ret (Ast.Block (check_block env body))
  | Par branches -> ret (Ast.Par (List.map (check_block env) branches))
  | Chan_send (ch, e) ->
    let ty = chan_type env loc ch in
    ret (Ast.Chan_send (ch, coerce loc ty (rvalue env e)))
  | Delay -> ret Ast.Delay
  | Constrain (lo, hi, body) ->
    if lo < 0 || hi < lo then fail loc "bad constrain bounds (%d, %d)" lo hi;
    ret (Ast.Constrain (lo, hi, check_block env body))

and check_block env body =
  let env = push_scope env in
  List.map (check_stmt env) body

and scalar_cond env e =
  let e = rvalue env e in
  if not (Ctypes.is_scalar e.ty) then
    fail e.eloc "condition must be scalar, got %s" (Ctypes.to_string e.ty);
  e

let check_func program (f : Ast.func) : Ast.func =
  let env =
    { program;
      scopes = [ Hashtbl.create 8 ];
      current = f;
      in_loop = false }
  in
  List.iter
    (fun (ty, name) ->
      match ty with
      | Ctypes.Void -> fail Ast.no_loc "void parameter %s in %s" name f.f_name
      | Ctypes.Integer _ | Ctypes.Pointer _ | Ctypes.Array _
      | Ctypes.Function _ ->
        (* Array parameters adjust to pointers, as in C. *)
        let ty =
          match ty with Ctypes.Array (elt, _) -> Ctypes.Pointer elt | t -> t
        in
        bind env Ast.no_loc name ty)
    f.f_params;
  { f with f_body = List.map (check_stmt env) f.f_body }

(** Check and elaborate a whole program. *)
let check_program (p : Ast.program) : Ast.program =
  List.iter
    (fun (g : Ast.global) ->
      match (g.g_ty, g.g_init) with
      | Ctypes.Void, _ -> fail Ast.no_loc "void global %s" g.g_name
      | Ctypes.Array (_, n), _ when n <= 0 ->
        (* locals already reject this in [check_stmt]; without the same
           guard here a negative size survives into storage allocation *)
        fail Ast.no_loc "global array %s has size %d" g.g_name n
      | Ctypes.Array (_, n), Some values when List.length values > n ->
        fail Ast.no_loc "too many initializers for %s" g.g_name
      | (Ctypes.Integer _ | Ctypes.Pointer _), Some values
        when List.length values <> 1 ->
        fail Ast.no_loc "scalar global %s needs one initializer" g.g_name
      | (Ctypes.Integer _ | Ctypes.Pointer _ | Ctypes.Array _
        | Ctypes.Function _), _ -> ())
    p.globals;
  { p with funcs = List.map (check_func p) p.funcs }

(** Convenience: parse then check. *)
let parse_and_check src = check_program (Parser.parse_program src)
