(** Dialect-matrix program generator and shrinker.

    [generate] builds a well-typed random program exercising exactly the
    constructs a dialect's Table-1 feature row allows: [par] + channels
    where the row has them, [delay]/[constrain] only where legal,
    pointer walks and bounded recursion for the pointer-capable rows,
    counting while-loops only where unbounded loops are accepted, and
    plain bounded loop nests everywhere.  Programs are safe by
    construction (masked shifts/offsets, guarded divisors, counting
    loops, disjoint par-arm ownership, matched straight-line channel
    traffic) so any cross-layer disagreement is a compiler bug, not a
    generator artifact.

    The entry point is always [f(int a, int b)]. *)

val generate : Dialect.t -> seed:int -> index:int -> Ast.program
(** Deterministic: the same [(dialect, seed, index)] triple always
    yields the same program. *)

val construct_keys : string list
(** Census keys, in reporting order. *)

val construct_counts : Ast.program -> (string * int) list
(** How many of each gated construct the program contains — one entry
    per {!construct_keys} key (zeros included), so metric streams are
    stable across programs. *)

val shrink_program : Ast.program -> Ast.program list
(** All programs reachable by one reducing edit: drop a statement,
    unwrap a control construct, sequence or drop a channel-free par
    arm, zero a non-trivial expression.  Edits never remove a counting
    loop's protected decrement and never unbalance channel traffic. *)

val shrink :
  ?max_steps:int -> keep:(Ast.program -> bool) -> Ast.program ->
  Ast.program
(** Greedy first-improvement descent over {!shrink_program}: repeatedly
    adopt the first candidate [keep] accepts; returns a local minimum
    ([keep]-preserving) after at most [max_steps] (default 400) adopted
    edits.  [keep] must re-typecheck — candidates may reference dropped
    declarations. *)
