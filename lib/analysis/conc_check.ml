(* Static concurrency checker: the paper's Concurrency section, checked.

   Two analyses over the elaborated AST:

   - a par-block race detector: per [Ast.Par] arm, compute the may-read /
     may-write sets of shared storage (globals, outer locals, arrays as
     whole regions, conservatively everything for pointer operations) and
     report write/write and read/write conflicts between sibling arms;

   - a channel lint: rendezvous endpoints used across arms are matched up,
     flagging sends with no possible receiving arm (and vice versa),
     channels shared by more than two arms (nondeterministic pairing), and
     an arm that both sends and receives the same channel with no partner
     anywhere (certain self-communication deadlock).

   Severity is per dialect: hard error where the surveyed language forbids
   the construct (Handel-C forbids two branches writing one variable;
   Bach C's untimed semantics make any racing access meaningless; an
   unmatched rendezvous deadlocks both), warning where the language merely
   makes it dangerous (SpecC's shared variables are the paper's example of
   a silent hazard).  The checker never rejects what the dialect's
   [Dialect.check] already rejects — it assumes a type-checked program in
   a dialect that allows [par] at all. *)

(* --- targets and accesses ---------------------------------------------- *)

type target =
  | Scalar of string (* a local of an enclosing scope, or a parameter *)
  | Global of string
  | Array of string (* whole-region granularity, element-insensitive *)
  | Pointer (* any pointer-mediated access: may alias anything *)

type access_kind = Read | Write

type access = { a_target : target; a_kind : access_kind; a_loc : Ast.loc }

type endpoint = Send | Recv

type chan_use = { c_chan : string; c_end : endpoint; c_loc : Ast.loc }

(* The effect summary of one par arm (or one called function). *)
type effects = {
  mutable acc : access list;
  mutable chans : chan_use list; (* everywhere in the subtree *)
  mutable serial : chan_use list; (* outside any nested par *)
}

let new_effects () = { acc = []; chans = []; serial = [] }

let describe_target = function
  | Scalar n -> Printf.sprintf "variable '%s'" n
  | Global n -> Printf.sprintf "global '%s'" n
  | Array n -> Printf.sprintf "array '%s'" n
  | Pointer -> "pointer-aliased storage"

(* --- diagnostics ------------------------------------------------------- *)

type kind =
  | Race_ww of target
  | Race_rw of target
  | Chan_unmatched_send of string
  | Chan_unmatched_recv of string
  | Chan_fan of string
  | Chan_self of string

type severity = Error | Warning

type diag = {
  d_kind : kind;
  d_severity : severity;
  d_loc : Ast.loc;
  d_other : Ast.loc option; (* the conflicting sibling access, if any *)
  d_msg : string;
}

exception Check_failed of diag list

let errors ds = List.filter (fun d -> d.d_severity = Error) ds
let warnings ds = List.filter (fun d -> d.d_severity = Warning) ds

let severity_name = function Error -> "error" | Warning -> "warning"

let render ?file d =
  let prefix =
    match file with
    | Some f -> Printf.sprintf "%s:%d:%d: " f d.d_loc.Ast.line d.d_loc.Ast.col
    | None -> Printf.sprintf "line %d: " d.d_loc.Ast.line
  in
  let also =
    match d.d_other with
    | Some l when l.Ast.line > 0 ->
      Printf.sprintf " (conflicts with line %d)" l.Ast.line
    | _ -> ""
  in
  Printf.sprintf "%s%s: %s%s" prefix (severity_name d.d_severity) d.d_msg also

let counter_name = function
  | Race_ww _ -> "races.write_write"
  | Race_rw _ -> "races.read_write"
  | Chan_unmatched_send _ -> "chan.unmatched_send"
  | Chan_unmatched_recv _ -> "chan.unmatched_recv"
  | Chan_fan _ -> "chan.fan"
  | Chan_self _ -> "chan.self_deadlock"

let metric_counters ds =
  let keys =
    [ "races.write_write"; "races.read_write"; "chan.unmatched_send";
      "chan.unmatched_recv"; "chan.fan"; "chan.self_deadlock" ]
  in
  List.map
    (fun k ->
      (k, List.length (List.filter (fun d -> counter_name d.d_kind = k) ds)))
    keys

(* --- per-dialect severity ---------------------------------------------- *)

(* The paper's characterisations, made operational.  Handel-C restricts
   the language (one writing branch per variable) so a double write is
   illegal; its one-writer-many-readers idiom is legal but timing-
   sensitive, hence a warning.  Bach C's untimed semantics leave any
   racing access with scheduling-defined meaning, so both conflict shapes
   are errors (Cyber/BDL rides the same backend and rules).  SpecC is the
   paper's silent-hazard example: shared variables between concurrent
   behaviors are permitted, so everything is a warning there.  Any other
   dialect that reaches the checker gets the permissive (warning)
   treatment. *)
let severity (dialect : Dialect.t) kind ~certain =
  let strict =
    match dialect.Dialect.name with
    | "Handel-C" | "Bach C" | "Cyber (BDL)" -> true
    | _ -> false
  in
  match kind with
  | Race_ww _ -> if strict then Error else Warning
  | Race_rw _ -> (
    match dialect.Dialect.name with
    | "Bach C" | "Cyber (BDL)" -> Error (* untimed: either order is legal *)
    | _ -> Warning)
  | Chan_unmatched_send _ | Chan_unmatched_recv _ | Chan_self _ ->
    if strict && certain then Error else Warning
  | Chan_fan _ -> Warning

(* --- effect computation ------------------------------------------------ *)

type ctx = {
  program : Ast.program;
  summaries : (string, effects) Hashtbl.t; (* per-function, memoized *)
  mutable call_stack : string list; (* recursion guard *)
}

type scopes = (string, unit) Hashtbl.t list

let bound (scopes : scopes) name =
  List.exists (fun t -> Hashtbl.mem t name) scopes

(* Classify a named variable as seen from inside a par arm: names bound
   inside the arm are private (no shared access), everything else is
   shared storage.  The elaborated type distinguishes whole arrays. *)
let classify ctx scopes name (ty : Ctypes.t) =
  if bound scopes name then None
  else
    match Ast.find_global ctx.program name with
    | Some g -> (
      match g.Ast.g_ty with
      | Ctypes.Array _ -> Some (Array name)
      | _ -> Some (Global name))
    | None -> (
      match ty with
      | Ctypes.Array _ -> Some (Array name)
      | _ -> Some (Scalar name))

let add_access (out : effects) target kind loc =
  out.acc <- { a_target = target; a_kind = kind; a_loc = loc } :: out.acc

let add_chan (out : effects) ~depth chan endpoint loc =
  let u = { c_chan = chan; c_end = endpoint; c_loc = loc } in
  out.chans <- u :: out.chans;
  if depth = 0 then out.serial <- u :: out.serial

(* Strip the casts the type checker inserts around lvalue bases. *)
let rec strip_casts (e : Ast.expr) =
  match e.Ast.e with Ast.Cast (_, inner) -> strip_casts inner | _ -> e

let rec walk_expr ctx scopes (out : effects) ~depth (e : Ast.expr) =
  let loc = e.Ast.eloc in
  match e.Ast.e with
  | Ast.Const _ -> ()
  | Ast.Var name -> (
    match classify ctx scopes name e.Ast.ty with
    | Some t -> add_access out t Read loc
    | None -> ())
  | Ast.Unop (_, a) | Ast.Cast (_, a) ->
    walk_expr ctx scopes out ~depth a
  | Ast.Binop (_, a, b) ->
    walk_expr ctx scopes out ~depth a;
    walk_expr ctx scopes out ~depth b
  | Ast.Cond (a, b, c) ->
    walk_expr ctx scopes out ~depth a;
    walk_expr ctx scopes out ~depth b;
    walk_expr ctx scopes out ~depth c
  | Ast.Assign (lhs, rhs) ->
    walk_expr ctx scopes out ~depth rhs;
    walk_lvalue ctx scopes out ~depth lhs
  | Ast.Index (base, idx) ->
    walk_expr ctx scopes out ~depth idx;
    walk_indexed ctx scopes out ~depth base Read
  | Ast.Deref a ->
    walk_expr ctx scopes out ~depth a;
    add_access out Pointer Read loc
  | Ast.Addr_of a ->
    (* the address escapes: whatever it names may be read and written *)
    (match (strip_casts a).Ast.e with
    | Ast.Var name -> (
      match classify ctx scopes name a.Ast.ty with
      | Some t ->
        add_access out t Read loc;
        add_access out t Write loc
      | None -> ())
    | _ ->
      add_access out Pointer Read loc;
      add_access out Pointer Write loc)
  | Ast.Chan_recv ch -> add_chan out ~depth ch Recv loc
  | Ast.Call (name, args) ->
    List.iter (walk_expr ctx scopes out ~depth) args;
    apply_call ctx scopes out ~depth name args loc

(* The base of an assignment or index: writes land on the named region. *)
and walk_lvalue ctx scopes (out : effects) ~depth (lhs : Ast.expr) =
  let loc = lhs.Ast.eloc in
  match (strip_casts lhs).Ast.e with
  | Ast.Var name -> (
    match classify ctx scopes name lhs.Ast.ty with
    | Some t -> add_access out t Write loc
    | None -> ())
  | Ast.Index (base, idx) ->
    walk_expr ctx scopes out ~depth idx;
    walk_indexed ctx scopes out ~depth base Write
  | Ast.Deref a ->
    walk_expr ctx scopes out ~depth a;
    add_access out Pointer Write loc
  | _ -> walk_expr ctx scopes out ~depth lhs

and walk_indexed ctx scopes (out : effects) ~depth base kind =
  let b = strip_casts base in
  match b.Ast.e with
  | Ast.Var name -> (
    match classify ctx scopes name b.Ast.ty with
    | Some (Array _ as t) -> add_access out t kind b.Ast.eloc
    | Some (Scalar _) ->
      (* indexing through a pointer-typed outer local *)
      add_access out Pointer kind b.Ast.eloc
    | Some t -> add_access out t kind b.Ast.eloc
    | None -> () (* arm-private array *))
  | _ ->
    walk_expr ctx scopes out ~depth b;
    add_access out Pointer kind b.Ast.eloc

(* Fold a callee's shared effects into the caller, relocated to the call
   site so diagnostics point into the arm.  Arrays handed to pointer
   parameters may be read and written by the callee. *)
and apply_call ctx scopes (out : effects) ~depth name args loc =
  (match Ast.find_func ctx.program name with
  | None -> () (* builtin (malloc): no shared-storage effects *)
  | Some f ->
    let s = summary_of ctx f in
    List.iter
      (fun a -> add_access out a.a_target a.a_kind loc)
      s.acc;
    List.iter (fun u -> add_chan out ~depth u.c_chan u.c_end loc) s.chans;
    List.iter2
      (fun (pty, _) (arg : Ast.expr) ->
        match pty with
        | Ctypes.Pointer _ | Ctypes.Array _ -> (
          match (strip_casts arg).Ast.e with
          | Ast.Var aname -> (
            match classify ctx scopes aname arg.Ast.ty with
            | Some t ->
              add_access out t Read loc;
              add_access out t Write loc
            | None -> ())
          | _ ->
            add_access out Pointer Read loc;
            add_access out Pointer Write loc)
        | _ -> ())
      f.Ast.f_params
      (if List.length args = List.length f.Ast.f_params then args
       else List.map (fun (_, _) -> Ast.mk_expr (Ast.Const (0L, Ctypes.int_t)))
              f.Ast.f_params))

(* The whole-function effect summary: globals, arrays and channels the
   function (transitively) touches.  Its own locals and parameters are
   private and excluded; storage reached through pointer parameters is
   charged at each call site instead. *)
and summary_of ctx (f : Ast.func) : effects =
  match Hashtbl.find_opt ctx.summaries f.Ast.f_name with
  | Some s -> s
  | None ->
    if List.mem f.Ast.f_name ctx.call_stack then new_effects ()
    else begin
      ctx.call_stack <- f.Ast.f_name :: ctx.call_stack;
      let out = new_effects () in
      let params : scopes =
        let t = Hashtbl.create 8 in
        List.iter (fun (_, n) -> Hashtbl.replace t n ()) f.Ast.f_params;
        [ t ]
      in
      walk_block ctx params out ~depth:0 f.Ast.f_body;
      ctx.call_stack <- List.tl ctx.call_stack;
      Hashtbl.replace ctx.summaries f.Ast.f_name out;
      out
    end

and walk_stmt ctx scopes (out : effects) ~depth (st : Ast.stmt) =
  match st.Ast.s with
  | Ast.Expr e -> walk_expr ctx scopes out ~depth e
  | Ast.Decl (_, name, init) ->
    (match init with
    | Some e -> walk_expr ctx scopes out ~depth e
    | None -> ());
    (match scopes with
    | t :: _ -> Hashtbl.replace t name ()
    | [] -> ())
  | Ast.If (c, t, f) ->
    walk_expr ctx scopes out ~depth c;
    walk_block ctx scopes out ~depth t;
    walk_block ctx scopes out ~depth f
  | Ast.While (c, body) ->
    walk_expr ctx scopes out ~depth c;
    walk_block ctx scopes out ~depth body
  | Ast.Do_while (body, c) ->
    walk_block ctx scopes out ~depth body;
    walk_expr ctx scopes out ~depth c
  | Ast.For (init, cond, step, body) ->
    let scopes = Hashtbl.create 4 :: scopes in
    (match init with
    | Some st -> walk_stmt ctx scopes out ~depth st
    | None -> ());
    (match cond with
    | Some c -> walk_expr ctx scopes out ~depth c
    | None -> ());
    (match step with
    | Some s -> walk_expr ctx scopes out ~depth s
    | None -> ());
    walk_block ctx scopes out ~depth body
  | Ast.Return (Some e) -> walk_expr ctx scopes out ~depth e
  | Ast.Return None | Ast.Break | Ast.Continue | Ast.Delay -> ()
  | Ast.Block body -> walk_block ctx scopes out ~depth body
  | Ast.Constrain (_, _, body) -> walk_block ctx scopes out ~depth body
  | Ast.Chan_send (ch, e) ->
    walk_expr ctx scopes out ~depth e;
    add_chan out ~depth ch Send st.Ast.sloc
  | Ast.Par branches ->
    (* a sibling sees everything the nested arms may do *)
    List.iter
      (fun b -> walk_block ctx (Hashtbl.create 4 :: scopes) out
                  ~depth:(depth + 1) b)
      branches

and walk_block ctx scopes (out : effects) ~depth body =
  let scopes = Hashtbl.create 4 :: scopes in
  List.iter (walk_stmt ctx scopes out ~depth) body

(* --- conflict detection ------------------------------------------------ *)

let may_alias a b =
  match (a, b) with Pointer, _ | _, Pointer -> true | x, y -> x = y

(* Race diagnostics between two sibling arms, one per (target, shape). *)
let pair_races dialect (i, ei) (j, ej) =
  let seen = Hashtbl.create 8 in
  let diags = ref [] in
  let report shape target wloc oloc =
    let key = (shape, describe_target target) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      let kind =
        match shape with `Ww -> Race_ww target | `Rw -> Race_rw target
      in
      let msg =
        Printf.sprintf "%s race on %s between par arms %d and %d"
          (match shape with `Ww -> "write/write" | `Rw -> "read/write")
          (describe_target target) (i + 1) (j + 1)
      in
      diags :=
        { d_kind = kind;
          d_severity = severity dialect kind ~certain:true;
          d_loc = wloc; d_other = Some oloc; d_msg = msg }
        :: !diags
    end
  in
  List.iter
    (fun w ->
      if w.a_kind = Write then
        List.iter
          (fun a ->
            if may_alias w.a_target a.a_target then
              match a.a_kind with
              | Write -> report `Ww w.a_target w.a_loc a.a_loc
              | Read -> report `Rw w.a_target w.a_loc a.a_loc)
          ej.acc)
    ei.acc;
  (* reads in arm i against writes in arm j (write/write already seen) *)
  List.iter
    (fun w ->
      if w.a_kind = Write then
        List.iter
          (fun a ->
            if a.a_kind = Read && may_alias w.a_target a.a_target then
              report `Rw w.a_target w.a_loc a.a_loc)
          ei.acc)
    ej.acc;
  List.rev !diags

(* Channel lint over the arms of one par block.  [confined ch] says every
   use of the channel in the whole program sits inside this par statement:
   then a missing partner cannot exist anywhere and the deadlock is
   certain rather than merely possible. *)
let par_chan_lint dialect ~confined (arms : (int * effects) list) =
  let diags = ref [] in
  let emit kind ~certain loc msg =
    diags :=
      { d_kind = kind; d_severity = severity dialect kind ~certain;
        d_loc = loc; d_other = None; d_msg = msg }
      :: !diags
  in
  let channels =
    List.sort_uniq compare
      (List.concat_map
         (fun (_, e) -> List.map (fun u -> u.c_chan) e.chans)
         arms)
  in
  List.iter
    (fun ch ->
      let uses_of (_, e) = List.filter (fun u -> u.c_chan = ch) e.chans in
      let users = List.filter (fun arm -> uses_of arm <> []) arms in
      if List.length users > 2 then begin
        let loc =
          match uses_of (List.hd users) with
          | u :: _ -> u.c_loc
          | [] -> Ast.no_loc
        in
        emit (Chan_fan ch) ~certain:true loc
          (Printf.sprintf
             "channel '%s' is used by %d par arms; rendezvous pairing is \
              nondeterministic"
             ch (List.length users))
      end;
      List.iter
        (fun ((i, e) as arm) ->
          let mine = uses_of arm in
          let sends = List.filter (fun u -> u.c_end = Send) mine
          and recvs = List.filter (fun u -> u.c_end = Recv) mine in
          let partner endpoint =
            List.exists
              (fun ((j, _) as other) ->
                j <> i
                && List.exists (fun u -> u.c_end = endpoint) (uses_of other))
              users
          in
          let serial endpoint =
            List.exists
              (fun u -> u.c_chan = ch && u.c_end = endpoint)
              e.serial
          in
          if
            serial Send && serial Recv
            && not (List.exists (fun (j, _) -> j <> i) users)
          then
            emit (Chan_self ch) ~certain:(confined ch)
              (match sends with u :: _ -> u.c_loc | [] -> Ast.no_loc)
              (Printf.sprintf
                 "par arm %d both sends and receives on channel '%s' with \
                  no partner arm: the rendezvous can never complete"
                 (i + 1) ch)
          else begin
            if sends <> [] && not (partner Recv) then
              emit (Chan_unmatched_send ch) ~certain:(confined ch)
                (List.hd sends).c_loc
                (Printf.sprintf
                   "par arm %d sends on channel '%s' but no sibling arm \
                    receives from it"
                   (i + 1) ch);
            if recvs <> [] && not (partner Send) then
              emit (Chan_unmatched_recv ch) ~certain:(confined ch)
                (List.hd recvs).c_loc
                (Printf.sprintf
                   "par arm %d receives on channel '%s' but no sibling arm \
                    sends to it"
                   (i + 1) ch)
          end)
        arms)
    channels;
  List.rev !diags

(* --- the driver -------------------------------------------------------- *)

(* Count every endpoint use of each channel in the program, so a par block
   can tell whether it confines all uses of a channel. *)
let program_chan_uses ctx =
  let counts = Hashtbl.create 8 in
  let bump ch =
    Hashtbl.replace counts ch (1 + Option.value ~default:0
                                     (Hashtbl.find_opt counts ch))
  in
  List.iter
    (fun (f : Ast.func) ->
      Ast.iter_func
        ~stmt:(fun st ->
          match st.Ast.s with Ast.Chan_send (ch, _) -> bump ch | _ -> ())
        ~expr:(fun e ->
          match e.Ast.e with Ast.Chan_recv ch -> bump ch | _ -> ())
        f)
    ctx.program.Ast.funcs;
  counts

let check_par ctx dialect ~total_uses scopes (branches : Ast.block list) =
  let arms =
    List.mapi
      (fun i b ->
        let out = new_effects () in
        walk_block ctx scopes out ~depth:0 b;
        (i, out))
      branches
  in
  let races =
    let rec pairs = function
      | [] -> []
      | a :: rest ->
        List.concat_map (fun b -> pair_races dialect a b) rest @ pairs rest
    in
    pairs arms
  in
  let confined ch =
    let here =
      List.fold_left
        (fun n (_, e) ->
          n + List.length (List.filter (fun u -> u.c_chan = ch) e.chans))
        0 arms
    in
    match Hashtbl.find_opt total_uses ch with
    | Some total -> total = here
    | None -> true
  in
  races @ par_chan_lint dialect ~confined arms

(* Structural walk of a function body: find every [par] (including nested
   ones inside arms), carrying the lexical scope so arm effects can tell
   arm-private storage from shared outer storage. *)
let check_func ctx dialect ~total_uses (f : Ast.func) =
  let diags = ref [] in
  let rec go_stmt (scopes : scopes) (st : Ast.stmt) =
    match st.Ast.s with
    | Ast.Decl (_, name, _) -> (
      match scopes with
      | t :: _ -> Hashtbl.replace t name ()
      | [] -> ())
    | Ast.Par branches ->
      diags := !diags @ check_par ctx dialect ~total_uses scopes branches;
      List.iter
        (fun b -> go_block (Hashtbl.create 4 :: scopes) b)
        branches
    | Ast.If (_, t, e) ->
      go_block (Hashtbl.create 4 :: scopes) t;
      go_block (Hashtbl.create 4 :: scopes) e
    | Ast.While (_, body) | Ast.Do_while (body, _)
    | Ast.Constrain (_, _, body) | Ast.Block body ->
      go_block (Hashtbl.create 4 :: scopes) body
    | Ast.For (init, _, _, body) ->
      let scopes = Hashtbl.create 4 :: scopes in
      (match init with Some st -> go_stmt scopes st | None -> ());
      go_block scopes body
    | Ast.Expr _ | Ast.Return _ | Ast.Break | Ast.Continue
    | Ast.Chan_send _ | Ast.Delay -> ()
  and go_block scopes body = List.iter (go_stmt scopes) body in
  let params : scopes =
    let t = Hashtbl.create 8 in
    List.iter (fun (_, n) -> Hashtbl.replace t n ()) f.Ast.f_params;
    [ t ]
  in
  go_block (Hashtbl.create 8 :: params) f.Ast.f_body;
  !diags

let check_program ~(dialect : Dialect.t) (program : Ast.program) : diag list =
  let ctx = { program; summaries = Hashtbl.create 16; call_stack = [] } in
  let total_uses = program_chan_uses ctx in
  List.concat_map (check_func ctx dialect ~total_uses) program.Ast.funcs

(* --- pass-manager integration ------------------------------------------ *)

(* Warnings are reported through a swappable sink (stderr by default) so
   compiles stay quiet in tests that expect them to be. *)
let warning_sink : (diag -> unit) ref =
  ref (fun d -> prerr_endline (render d))

let pass (dialect : Dialect.t) : Passes.program_pass =
  Passes.program_pass ~preserves_semantics:false "conc-check" (fun p ->
      let ds = check_program ~dialect p in
      List.iter !warning_sink (warnings ds);
      match errors ds with [] -> p | es -> raise (Check_failed es))
