(* Dialect-matrix program generator and shrinker.

   Where test/test_random.ml's generator emits expression soup as
   strings, this one builds AST programs gated on a dialect's Table-1
   feature row: Handel-C draws get [par] + rendezvous channels and
   [delay], HardwareC draws get [par]/channels/[constrain], SpecC
   shared-variable [par], C2Verilog pointer walks and bounded recursion,
   and the sequential rows get plain loop nests — so the cross-backend
   oracle is pointed exactly at the constructs where the dialects
   disagree.

   Every generated program is safe by construction:
   - shift amounts are masked to 0..7, divisors guarded into 1..8,
     array/pointer offsets masked to the buffer length;
   - while/do-while loops are in counting form (a fresh counter, a
     [> 0] guard, a protected final decrement the body cannot touch);
   - par arms own disjoint state (arm k writes only global gk and its
     own locals) so the static race checker and the seeded scheduler
     both stay quiet;
   - channel traffic is straight-line with matched send/recv counts, so
     rendezvous cannot deadlock;
   - recursion goes through one helper with a masked (0..15) argument.

   The shrinker is a greedy one-edit reducer over the same AST: drop a
   statement, unwrap a control construct, zero an expression — guarded
   so an edit cannot manufacture a hang (loop decrements and channel
   balance are preserved structurally; everything else is delegated to
   the caller's [keep] predicate, which re-typechecks). *)

let int_t = Ctypes.int_t

let const n = Ast.mk_expr (Ast.Const (Int64.of_int n, int_t))
let var v = Ast.mk_expr (Ast.Var v)
let binop op a b = Ast.mk_expr (Ast.Binop (op, a, b))
let unop op a = Ast.mk_expr (Ast.Unop (op, a))
let stmt s = Ast.mk_stmt s
let assign_to v e = stmt (Ast.Expr (Ast.mk_expr (Ast.Assign (var v, e))))

(* --- generation ------------------------------------------------------- *)

type ctx = {
  rng : Random.State.t;
  d : Dialect.t;
  mutable counter : int;
  has_helper : bool;  (* bounded-recursion helper present *)
}

(* What an expression or assignment may touch at this point: [rw] are
   assignable scalars, [ro] read-only ones (loop counters, params inside
   par arms), [arrays]/[ptrs] the addressable state.  Par arms get a
   scope stripped down to their own globals so arms never share state. *)
type scope = {
  rw : string list;
  ro : string list;
  arrays : string list;
  ptrs : string list;
}

let fresh cx prefix =
  cx.counter <- cx.counter + 1;
  Printf.sprintf "%s%d" prefix cx.counter

let rand cx n = Random.State.int cx.rng n
let pick cx l = List.nth l (rand cx (List.length l))
let chance cx p = Random.State.float cx.rng 1.0 < p

(* offsets into the 8-word buffer: [(e & 7)] *)
let masked e = binop Ast.Band e (const 7)

let rec gen_expr cx sc depth =
  let readable = sc.rw @ sc.ro in
  let leaf () =
    if readable <> [] && chance cx 0.6 then var (pick cx readable)
    else const (rand cx 41 - 20)
  in
  if depth = 0 then leaf ()
  else
    match rand cx 12 with
    | 0 | 1 | 2 ->
      let op = pick cx [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Band; Ast.Bor;
                         Ast.Bxor ] in
      binop op (gen_expr cx sc (depth - 1)) (gen_expr cx sc (depth - 1))
    | 3 ->
      let op = pick cx [ Ast.Shl; Ast.Shr ] in
      binop op (gen_expr cx sc (depth - 1))
        (masked (gen_expr cx sc (depth - 1)))
    | 4 ->
      (* division / modulo, divisor guarded into 1..8 *)
      let op = pick cx [ Ast.Div; Ast.Mod ] in
      binop op
        (gen_expr cx sc (depth - 1))
        (binop Ast.Add (masked (gen_expr cx sc (depth - 1))) (const 1))
    | 5 ->
      let op = pick cx [ Ast.Lt; Ast.Le; Ast.Eq; Ast.Ne; Ast.Gt; Ast.Ge ] in
      binop op (gen_expr cx sc (depth - 1)) (gen_expr cx sc (depth - 1))
    | 6 when sc.arrays <> [] ->
      Ast.mk_expr
        (Ast.Index (var (pick cx sc.arrays),
                    masked (gen_expr cx sc (depth - 1))))
    | 7 when sc.ptrs <> [] ->
      Ast.mk_expr
        (Ast.Deref
           (binop Ast.Add (var (pick cx sc.ptrs))
              (masked (gen_expr cx sc (depth - 1)))))
    | 8 ->
      unop (pick cx [ Ast.Neg; Ast.Bit_not ]) (gen_expr cx sc (depth - 1))
    | 9 ->
      Ast.mk_expr
        (Ast.Cond
           (gen_expr cx sc (depth - 1), gen_expr cx sc (depth - 1),
            gen_expr cx sc (depth - 1)))
    | 10 when cx.has_helper ->
      (* bounded recursion: depth masked to 0..15 *)
      Ast.mk_expr
        (Ast.Call ("rec1", [ binop Ast.Band (gen_expr cx sc (depth - 1))
                               (const 15) ]))
    | _ -> leaf ()

(* One statement; returns the scope later statements see (decls extend
   it).  [in_par] suppresses nesting of par/channels/constrain inside
   par arms — the discipline that keeps arms race- and deadlock-free. *)
let rec gen_stmt cx sc ~depth ~in_par : Ast.stmt list * scope =
  let e () = gen_expr cx sc 2 in
  let simple () =
    match rand cx (if sc.arrays <> [] || sc.ptrs <> [] then 4 else 3) with
    | 0 when sc.rw <> [] -> ([ assign_to (pick cx sc.rw) (e ()) ], sc)
    | 1 ->
      let name = fresh cx "v" in
      ( [ stmt (Ast.Decl (int_t, name, Some (e ()))) ],
        { sc with rw = name :: sc.rw } )
    | 0 | 2 ->
      let name = fresh cx "v" in
      ( [ stmt (Ast.Decl (int_t, name, Some (e ()))) ],
        { sc with rw = name :: sc.rw } )
    | _ ->
      if sc.ptrs <> [] && chance cx 0.5 then
        ( [ stmt
              (Ast.Expr
                 (Ast.mk_expr
                    (Ast.Assign
                       ( Ast.mk_expr
                           (Ast.Deref
                              (binop Ast.Add (var (pick cx sc.ptrs))
                                 (masked (e ())))),
                         e () )))) ],
          sc )
      else
        ( [ stmt
              (Ast.Expr
                 (Ast.mk_expr
                    (Ast.Assign
                       ( Ast.mk_expr
                           (Ast.Index
                              (var (List.hd sc.arrays), masked (e ()))),
                         e () )))) ],
          sc )
  in
  if depth = 0 then simple ()
  else
    match rand cx 10 with
    | 0 | 1 | 2 -> simple ()
    | 3 ->
      (* if/else; declarations stay scoped to their branch *)
      let then_b = gen_block cx sc ~n:(1 + rand cx 2) ~depth:(depth - 1)
                     ~in_par in
      let else_b = gen_block cx sc ~n:(1 + rand cx 2) ~depth:(depth - 1)
                     ~in_par in
      ([ stmt (Ast.If (e (), then_b, else_b)) ], sc)
    | 4 ->
      (* statically bounded counting for-loop (Loopform shape); the
         counter is read-only inside the body *)
      let i = fresh cx "i" in
      let trips = 2 + rand cx 5 in
      let body_sc = { sc with ro = i :: sc.ro } in
      let body = gen_block cx body_sc ~n:(1 + rand cx 2) ~depth:(depth - 1)
                   ~in_par in
      ( [ stmt
            (Ast.For
               ( Some (stmt (Ast.Decl (int_t, i, Some (const 0)))),
                 Some (binop Ast.Lt (var i) (const trips)),
                 Some (Ast.mk_expr
                         (Ast.Assign (var i, binop Ast.Add (var i) (const 1)))),
                 body )) ],
        sc )
    | 5 when cx.d.Dialect.allows_unbounded_loops && not in_par ->
      (* counting while: fresh counter, [> 0] guard, protected final
         decrement the body cannot reach (the counter is read-only) *)
      let w = fresh cx "w" in
      let trips = 2 + rand cx 5 in
      let body_sc = { sc with ro = w :: sc.ro } in
      let body = gen_block cx body_sc ~n:(1 + rand cx 2) ~depth:(depth - 1)
                   ~in_par in
      let dec =
        assign_to w (binop Ast.Sub (var w) (const 1))
      in
      let loop =
        if chance cx 0.3 then
          stmt (Ast.Do_while (body @ [ dec ], binop Ast.Gt (var w) (const 0)))
        else
          stmt (Ast.While (binop Ast.Gt (var w) (const 0), body @ [ dec ]))
      in
      ([ stmt (Ast.Decl (int_t, w, Some (const trips))); loop ], sc)
    | 6 when cx.d.Dialect.allows_delay -> ([ stmt Ast.Delay ], sc)
    | 7 when cx.d.Dialect.allows_constrain && not in_par ->
      (* generous bounds keep any body satisfiable *)
      let body = gen_block cx sc ~n:(1 + rand cx 2) ~depth:0 ~in_par in
      ([ stmt (Ast.Constrain (0, 4096, body)) ], sc)
    | _ -> simple ()

and gen_block cx sc ~n ~depth ~in_par : Ast.block =
  let rec go n sc acc =
    if n = 0 then List.rev acc
    else
      let stmts, sc = gen_stmt cx sc ~depth ~in_par in
      go (n - 1) sc (List.rev_append stmts acc)
  in
  go n sc []

(* A two-arm par region.  Arm 0 owns g0, arm 1 owns g1; both may read
   the entry parameters.  With channels on, traffic is straight-line
   with matched counts: arm 0 sends k values, arm 1 folds k receives
   into g1. *)
let gen_par cx =
  let arm_scope own = { rw = [ own ]; ro = [ "a"; "b" ]; arrays = [];
                        ptrs = [] } in
  if cx.d.Dialect.allows_channels && chance cx 0.7 then begin
    let k = 1 + rand cx 3 in
    let sends =
      List.init k (fun _ ->
          stmt (Ast.Chan_send ("c", gen_expr cx (arm_scope "g0") 2)))
    in
    let recvs =
      List.concat
        (List.init k (fun j ->
             let r = fresh cx "r" in
             [ stmt (Ast.Decl (int_t, r,
                               Some (Ast.mk_expr (Ast.Chan_recv "c"))));
               assign_to "g1"
                 (binop Ast.Add (var "g1")
                    (binop Ast.Mul (var r) (const (j + 1)))) ]))
    in
    (* pure trailing work after the channel traffic keeps arms busy
       without risking an unmatched rendezvous *)
    let tail0 =
      if chance cx 0.5 then
        [ assign_to "g0" (gen_expr cx (arm_scope "g0") 2) ]
      else []
    in
    stmt (Ast.Par [ sends @ tail0; recvs ])
  end
  else
    let arm own =
      gen_block cx (arm_scope own) ~n:(1 + rand cx 3) ~depth:1 ~in_par:true
    in
    stmt (Ast.Par [ arm "g0"; arm "g1" ])

let recursion_helper =
  { Ast.f_name = "rec1";
    f_ret = int_t;
    f_params = [ (int_t, "n") ];
    f_body =
      [ stmt
          (Ast.If
             ( binop Ast.Le (var "n") (const 0),
               [ stmt (Ast.Return (Some (const 1))) ],
               [] ));
        stmt
          (Ast.Return
             (Some
                (binop Ast.Add (var "n")
                   (binop Ast.Mul
                      (Ast.mk_expr
                         (Ast.Call
                            ("rec1", [ binop Ast.Sub (var "n") (const 1) ])))
                      (const 3))))) ] }

let generate (d : Dialect.t) ~seed ~index : Ast.program =
  let rng =
    Random.State.make
      [| seed; index; Hashtbl.hash d.Dialect.name; 0x4c48 |]
  in
  let has_helper = d.Dialect.allows_recursion && Random.State.bool rng in
  let cx = { rng; d; counter = 0; has_helper } in
  let use_par = d.Dialect.allows_par && chance cx 0.8 in
  let use_ptr = d.Dialect.allows_pointers && chance cx 0.8 in
  let sc =
    { rw = [ "a"; "b" ] @ (if use_par then [ "g0"; "g1" ] else []);
      ro = [];
      arrays = [ "buf" ];
      ptrs = [] }
  in
  let prelude, sc =
    if use_ptr then
      ( [ stmt
            (Ast.Decl
               (Ctypes.Pointer int_t, "p",
                Some (var "buf"))) ],
        { sc with ptrs = [ "p" ] } )
    else ([], sc)
  in
  let body1 = gen_block cx sc ~n:(2 + rand cx 4) ~depth:2 ~in_par:false in
  let par_part = if use_par then [ gen_par cx ] else [] in
  let body2 = gen_block cx sc ~n:(1 + rand cx 3) ~depth:1 ~in_par:false in
  let ret = stmt (Ast.Return (Some (gen_expr cx sc 2))) in
  let f =
    { Ast.f_name = "f";
      f_ret = int_t;
      f_params = [ (int_t, "a"); (int_t, "b") ];
      f_body = prelude @ body1 @ par_part @ body2 @ [ ret ] }
  in
  let globals =
    { Ast.g_name = "buf"; g_ty = Ctypes.Array (int_t, 8); g_init = None }
    ::
    (if use_par then
       [ { Ast.g_name = "g0"; g_ty = int_t; g_init = None };
         { Ast.g_name = "g1"; g_ty = int_t; g_init = None } ]
     else [])
  in
  let chans =
    if use_par && d.Dialect.allows_channels then
      [ { Ast.c_name = "c"; c_ty = int_t } ]
    else []
  in
  { Ast.globals; chans;
    funcs = (if has_helper then [ recursion_helper ] else []) @ [ f ] }

(* --- construct census -------------------------------------------------- *)

let construct_keys =
  [ "par"; "chan_send"; "chan_recv"; "delay"; "constrain"; "while";
    "do_while"; "for"; "if"; "pointer"; "array"; "div_mod"; "call";
    "ternary" ]

let construct_counts (p : Ast.program) : (string * int) list =
  let tbl = Hashtbl.create 16 in
  List.iter (fun k -> Hashtbl.replace tbl k 0) construct_keys;
  let bump k = Hashtbl.replace tbl k (Hashtbl.find tbl k + 1) in
  List.iter
    (fun f ->
      Ast.iter_func
        ~stmt:(fun st ->
          match st.Ast.s with
          | Ast.Par _ -> bump "par"
          | Ast.Chan_send _ -> bump "chan_send"
          | Ast.Delay -> bump "delay"
          | Ast.Constrain _ -> bump "constrain"
          | Ast.While _ -> bump "while"
          | Ast.Do_while _ -> bump "do_while"
          | Ast.For _ -> bump "for"
          | Ast.If _ -> bump "if"
          | Ast.Expr _ | Ast.Decl _ | Ast.Return _ | Ast.Break
          | Ast.Continue | Ast.Block _ -> ())
        ~expr:(fun e ->
          match e.Ast.e with
          | Ast.Chan_recv _ -> bump "chan_recv"
          | Ast.Deref _ | Ast.Addr_of _ -> bump "pointer"
          | Ast.Index _ -> bump "array"
          | Ast.Binop ((Ast.Div | Ast.Mod), _, _) -> bump "div_mod"
          | Ast.Call _ -> bump "call"
          | Ast.Cond _ -> bump "ternary"
          | Ast.Const _ | Ast.Var _ | Ast.Unop _ | Ast.Binop _
          | Ast.Assign _ | Ast.Cast _ -> ())
        f)
    p.Ast.funcs;
  List.map (fun k -> (k, Hashtbl.find tbl k)) construct_keys

(* --- shrinking --------------------------------------------------------- *)

let is_const (e : Ast.expr) =
  match e.Ast.e with Ast.Const _ -> true | _ -> false

let has_chan_ops (b : Ast.block) =
  List.exists
    (fun st ->
      let found = ref false in
      Ast.iter_stmt
        ~stmt:(fun s ->
          match s.Ast.s with
          | Ast.Chan_send _ -> found := true
          | _ -> ())
        ~expr:(fun e ->
          match e.Ast.e with
          | Ast.Chan_recv _ -> found := true
          | _ -> ())
        st;
      !found)
    b

(* Variables a loop condition reads; used to protect counting-loop
   decrements from removal (removing one would manufacture a hang the
   [keep] predicate then has to time out on). *)
let cond_vars (e : Ast.expr) =
  let vs = ref [] in
  Ast.iter_expr
    (fun e ->
      match e.Ast.e with Ast.Var v -> vs := v :: !vs | _ -> ())
    e;
  !vs

let is_protected_decrement protect (st : Ast.stmt) =
  match st.Ast.s with
  | Ast.Expr { Ast.e = Ast.Assign ({ Ast.e = Ast.Var v; _ }, _); _ } ->
    List.mem v protect
  | _ -> false

(* All programs reachable by one reducing edit of [b].  [protect] lists
   loop-counter variables whose updates must survive. *)
let rec shrink_block ~protect (b : Ast.block) : Ast.block list =
  let at i f = List.mapi (fun j st -> if i = j then f st else [ st ]) b
               |> List.concat in
  let drops =
    List.concat
      (List.mapi
         (fun i st ->
           if is_protected_decrement protect st then []
           else [ at i (fun _ -> []) ])
         b)
  in
  let rewrites =
    List.concat
      (List.mapi
         (fun i st ->
           List.map (fun st' -> at i (fun _ -> [ st' ]))
             (shrink_stmt ~protect st))
         b)
  in
  drops @ rewrites

and shrink_stmt ~protect (st : Ast.stmt) : Ast.stmt list =
  let mk s = Ast.mk_stmt ~loc:st.Ast.sloc s in
  match st.Ast.s with
  | Ast.If (c, t, e) ->
    [ mk (Ast.Block t); mk (Ast.Block e) ]
    @ List.map (fun t' -> mk (Ast.If (c, t', e))) (shrink_block ~protect t)
    @ List.map (fun e' -> mk (Ast.If (c, t, e'))) (shrink_block ~protect e)
  | Ast.While (c, body) ->
    let protect = cond_vars c @ protect in
    mk (Ast.Block body)
    :: List.map (fun b -> mk (Ast.While (c, b))) (shrink_block ~protect body)
  | Ast.Do_while (body, c) ->
    let protect = cond_vars c @ protect in
    mk (Ast.Block body)
    :: List.map (fun b -> mk (Ast.Do_while (b, c)))
         (shrink_block ~protect body)
  | Ast.For (init, cond, step, body) ->
    List.map (fun b -> mk (Ast.For (init, cond, step, b)))
      (shrink_block ~protect body)
  | Ast.Par arms when not (List.exists has_chan_ops arms) ->
    (* without rendezvous the arms can be sequenced or dropped *)
    mk (Ast.Block (List.concat arms))
    :: List.map (fun arm -> mk (Ast.Block arm)) arms
    @ List.concat
        (List.mapi
           (fun i arm ->
             List.map
               (fun arm' ->
                 mk (Ast.Par (List.mapi (fun j a -> if i = j then arm' else a)
                                arms)))
               (shrink_block ~protect arm))
           arms)
  | Ast.Par arms ->
    (* rendezvous present: only shrink within arms, preserving balance
       (send/recv statements themselves are never dropped here — the
       block-level drop above skips nothing, but an unmatched edit fails
       [keep] via deadlock; cheap guard: don't offer arm drops) *)
    List.concat
      (List.mapi
         (fun i arm ->
           List.map
             (fun arm' ->
               mk (Ast.Par (List.mapi (fun j a -> if i = j then arm' else a)
                              arms)))
             (shrink_block ~protect arm))
         arms)
  | Ast.Constrain (_, _, body) -> [ mk (Ast.Block body) ]
  | Ast.Block body ->
    List.map (fun b -> mk (Ast.Block b)) (shrink_block ~protect body)
  | Ast.Decl (ty, n, Some e) when not (is_const e) ->
    [ mk (Ast.Decl (ty, n, Some (const 0))) ]
  | Ast.Expr { Ast.e = Ast.Assign (l, r); _ }
    when not (is_const r) ->
    [ mk (Ast.Expr (Ast.mk_expr (Ast.Assign (l, const 0)))) ]
  | Ast.Chan_send (ch, e) when not (is_const e) ->
    [ mk (Ast.Chan_send (ch, const 0)) ]
  | Ast.Return (Some e) when not (is_const e) ->
    [ mk (Ast.Return (Some (const 0))) ]
  | Ast.Expr _ | Ast.Decl _ | Ast.Return _ | Ast.Break | Ast.Continue
  | Ast.Chan_send _ | Ast.Delay -> []

let shrink_program (p : Ast.program) : Ast.program list =
  List.concat
    (List.mapi
       (fun i f ->
         List.map
           (fun body ->
             { p with
               Ast.funcs =
                 List.mapi
                   (fun j g -> if i = j then { g with Ast.f_body = body }
                     else g)
                   p.Ast.funcs })
           (shrink_block ~protect:[] f.Ast.f_body))
       p.Ast.funcs)

(* Greedy first-improvement descent: adopt the first one-edit reduction
   [keep] accepts and restart from it; stop at a local minimum (or after
   [max_steps] adopted edits, a safety bound). *)
let shrink ?(max_steps = 400) ~keep (p : Ast.program) : Ast.program =
  let rec go steps p =
    if steps >= max_steps then p
    else
      match List.find_opt keep (shrink_program p) with
      | Some p' -> go (steps + 1) p'
      | None -> p
  in
  go 0 p
