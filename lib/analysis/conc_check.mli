(** Static concurrency checker: par-block race detection and channel
    lint over the elaborated AST.

    The race detector computes may-read/may-write sets per [Ast.Par] arm
    (outer locals, globals, whole arrays, channel endpoints; conservative
    on pointer operations — a pointer access may alias anything) and
    reports write/write and read/write conflicts between sibling arms
    with source locations.  The channel lint matches rendezvous endpoints
    across arms: sends with no receiving sibling, receives with no
    sending sibling, channels shared by more than two arms, and arms that
    self-communicate with no possible partner.

    Severity is per dialect — hard error where the surveyed language
    forbids the shape (Handel-C: two writers; Bach C: any racing access
    under untimed semantics; both: an unmatched rendezvous that can never
    complete), warning where it is merely dangerous (SpecC's shared
    variables, the paper's silent hazard).

    The checker is registered in the concurrent backends' pipelines via
    {!pass} and surfaced by [chlsc check --races]. *)

type target =
  | Scalar of string  (** a local of an enclosing scope, or a parameter *)
  | Global of string
  | Array of string  (** whole-region granularity *)
  | Pointer  (** may alias anything *)

type access_kind = Read | Write

type access = { a_target : target; a_kind : access_kind; a_loc : Ast.loc }

type endpoint = Send | Recv

type chan_use = { c_chan : string; c_end : endpoint; c_loc : Ast.loc }

type kind =
  | Race_ww of target
  | Race_rw of target
  | Chan_unmatched_send of string
  | Chan_unmatched_recv of string
  | Chan_fan of string
  | Chan_self of string

type severity = Error | Warning

type diag = {
  d_kind : kind;
  d_severity : severity;
  d_loc : Ast.loc;
  d_other : Ast.loc option;  (** the conflicting sibling access *)
  d_msg : string;
}

exception Check_failed of diag list
(** Raised by {!pass} when the dialect makes any diagnostic a hard
    error. *)

val check_program : dialect:Dialect.t -> Ast.program -> diag list
(** All diagnostics for every [par] statement in the program (nested
    pars are checked independently).  The program must be type-checked
    (the analysis reads elaborated types). *)

val errors : diag list -> diag list
val warnings : diag list -> diag list

val severity : Dialect.t -> kind -> certain:bool -> severity
(** The dialect's verdict on one hazard shape; [certain] distinguishes a
    rendezvous that provably has no partner anywhere in the program from
    one that merely lacks a sibling partner. *)

val describe_target : target -> string

val severity_name : severity -> string

val render : ?file:string -> diag -> string
(** ["file:line:col: error: message (conflicts with line N)"]. *)

val metric_counters : diag list -> (string * int) list
(** Stable counter names (races.write_write, races.read_write,
    chan.unmatched_send, chan.unmatched_recv, chan.fan,
    chan.self_deadlock) with their counts, all keys always present. *)

val warning_sink : (diag -> unit) ref
(** Where {!pass} reports warning-severity diagnostics (default:
    stderr). *)

val pass : Dialect.t -> Passes.program_pass
(** The checker as a declared source-level pass: reports warnings
    through {!warning_sink}, raises {!Check_failed} on hard errors, and
    returns the program unchanged. *)
