(** Netlist evaluator: combinational settling plus a cycle-accurate
    sequential stepper.  Registers and memories update between cycles with
    read-before-write semantics.

    The evaluator is event-driven by default: a dirty worklist seeded by
    changed primary inputs and by register/memory updates means a node is
    re-evaluated only when one of its inputs actually changed.  The
    original full in-order sweep is kept as a selectable strategy and
    serves as the differential-testing oracle (both strategies are
    bit-exact against each other; see test/test_random.ml). *)

type strategy =
  | Full_sweep  (** re-evaluate every node on every settle (the oracle) *)
  | Event_driven  (** re-evaluate only nodes whose inputs changed *)

type probe = { on_value : cycle:int -> Netlist.signal -> Bitvec.t -> unit }
(** Observation hook, fired whenever a signal's settled value actually
    changes (the event worklist is exactly the VCD change list, so
    waveform tracing is near-free).  Probes observe only: they receive
    values after they are committed and cannot perturb the simulation —
    outcomes with a probe installed are bit-identical to outcomes
    without (tested by qcheck in test/test_obs.ml). *)

type stats = {
  mutable cycles : int;  (** clock edges ([tick]s) taken *)
  mutable settles : int;  (** settle passes (full or incremental) *)
  mutable nodes_evaluated : int;  (** node evaluations across all settles *)
  mutable events : int;  (** evaluations whose value actually changed *)
  mutable wall_time : float;  (** seconds spent inside [run_until_done] *)
}

type t

val create : ?strategy:strategy -> Netlist.t -> t
(** Default strategy is [Event_driven]. *)

val set_probe : t -> probe -> unit
(** Install an observation hook on this evaluator instance. *)

val netlist : t -> Netlist.t

val eval_counts : t -> int array
(** Per-signal evaluation counts (a copy): the hot-node histogram behind
    [chlsc compile --profile]. *)

val apply_unop : Netlist.unop -> Bitvec.t -> Bitvec.t
val apply_binop : Netlist.binop -> Bitvec.t -> Bitvec.t -> Bitvec.t
(** The shared operator semantics (also used by the CIR/SSA/FSMD
    simulators, so every layer computes identically). *)

val settle : t -> inputs:(string * Bitvec.t) list -> unit
(** Settle all combinational values for the current cycle; missing inputs
    read as zero. *)

val value : t -> Netlist.signal -> Bitvec.t

val output_signal : t -> string -> Netlist.signal
(** Resolve an output name to its signal id (so polling loops can look the
    name up once, not per observation).
    @raise Invalid_argument on unknown output names, listing the outputs
    the netlist does have. *)

val output : t -> string -> Bitvec.t
(** @raise Invalid_argument on unknown output names. *)

val cycle : t -> int

val stats : t -> stats
(** Live performance counters for this evaluator instance. *)

val tick : t -> unit
(** Clock edge: commit register and memory updates. *)

val eval_combinational :
  Netlist.t -> inputs:(string * Bitvec.t) list -> (string * Bitvec.t) list
(** Evaluate a purely combinational netlist once; returns the outputs. *)

val eval_combinational_stats :
  ?strategy:strategy -> ?probe:probe ->
  Netlist.t -> inputs:(string * Bitvec.t) list ->
  (string * Bitvec.t) list * stats
(** Like [eval_combinational] but also returns the evaluator counters
    and accepts a settle strategy (default [Event_driven]). *)

val drive :
  t -> inputs:(string * Bitvec.t) list -> done_name:string ->
  max_cycles:int -> ((string * Bitvec.t) list * int, [ `Timeout ]) result
(** Clock an existing evaluator until the 1-bit output [done_name] is
    set; for callers that need the evaluator afterwards (probes,
    [eval_counts]).  [run_until_done] is this plus [create]. *)

val run_until_done :
  ?strategy:strategy ->
  Netlist.t -> inputs:(string * Bitvec.t) list -> done_name:string ->
  max_cycles:int ->
  ((string * Bitvec.t) list * int, [ `Timeout ]) result
(** Clock a sequential netlist until the 1-bit output [done_name] is set;
    returns the outputs and the cycle count.  The done output and the
    primary inputs are resolved to signal ids once, before the loop. *)

val run_until_done_stats :
  ?strategy:strategy -> ?probe:probe ->
  Netlist.t -> inputs:(string * Bitvec.t) list -> done_name:string ->
  max_cycles:int ->
  ((string * Bitvec.t) list * int * stats, [ `Timeout ]) result
(** Like [run_until_done] but also returns the evaluator counters and
    accepts an observation probe. *)
