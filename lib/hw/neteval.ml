(* Netlist evaluator: combinational settling plus a cycle-accurate
   sequential stepper.

   Nodes are created in topological order with respect to combinational
   dependencies (the builder API guarantees this; only register next-state
   and memory write ports may point forward), so one in-order pass settles
   all combinational values.  Registers and memories update between cycles
   with read-before-write semantics.

   Two settling strategies share the same node semantics:

   - [Full_sweep] re-evaluates every node in id order on every settle.
     This is the original evaluator and serves as the differential-testing
     oracle.

   - [Event_driven] (the default) keeps a dirty worklist seeded by changed
     primary inputs and by register/memory updates at each [tick], and
     re-evaluates a node only when one of its inputs actually changed.
     Events are drained in increasing id order (a min-heap), which is a
     topological order because fanout edges always point forward; each
     dirty node is therefore evaluated at most once per settle, with its
     final input values.  The first settle is always a full sweep to
     establish a consistent baseline.

   Both strategies maintain performance counters (nodes evaluated, change
   events propagated, cycles, wall time) so the activity advantage of the
   event-driven loop is measurable (see bench/neteval_bench.ml). *)

type strategy = Full_sweep | Event_driven

type probe = { on_value : cycle:int -> Netlist.signal -> Bitvec.t -> unit }

type stats = {
  mutable cycles : int; (* clock edges ([tick]s) taken *)
  mutable settles : int; (* settle passes (full or incremental) *)
  mutable nodes_evaluated : int; (* node evaluations across all settles *)
  mutable events : int; (* evaluations whose value actually changed *)
  mutable wall_time : float; (* seconds inside [run_until_done] *)
}

(* A tiny binary min-heap of signal ids.  The [dirty] flags in the
   evaluator guarantee no duplicates are ever pushed. *)
module Heap = struct
  type t = { mutable a : int array; mutable n : int }

  let create () = { a = Array.make 64 0; n = 0 }
  let clear h = h.n <- 0
  let is_empty h = h.n = 0

  let push h x =
    if h.n = Array.length h.a then begin
      let a = Array.make (2 * h.n) 0 in
      Array.blit h.a 0 a 0 h.n;
      h.a <- a
    end;
    let i = ref h.n in
    h.n <- h.n + 1;
    h.a.(!i) <- x;
    while !i > 0 && h.a.((!i - 1) / 2) > h.a.(!i) do
      let p = (!i - 1) / 2 in
      let tmp = h.a.(p) in
      h.a.(p) <- h.a.(!i);
      h.a.(!i) <- tmp;
      i := p
    done

  let pop_min h =
    let top = h.a.(0) in
    h.n <- h.n - 1;
    h.a.(0) <- h.a.(h.n);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.n && h.a.(l) < h.a.(!smallest) then smallest := l;
      if r < h.n && h.a.(r) < h.a.(!smallest) then smallest := r;
      if !smallest = !i then continue := false
      else begin
        let tmp = h.a.(!smallest) in
        h.a.(!smallest) <- h.a.(!i);
        h.a.(!i) <- tmp;
        i := !smallest
      end
    done;
    top
end

type t = {
  netlist : Netlist.t;
  strategy : strategy;
  values : Bitvec.t array;
  input_vals : Bitvec.t array; (* resolved value per Input node id *)
  input_nodes : (int * string) array; (* Input node id, port name *)
  reg_state : Bitvec.t array; (* per Reg node id, current state *)
  mem_state : Bitvec.t array array; (* per memory, current contents *)
  fanouts : int array array; (* signal id -> combinational users *)
  mem_readers : int array array; (* mem index -> Mem_read node ids *)
  dirty : bool array;
  heap : Heap.t;
  mutable primed : bool; (* first full sweep done *)
  mutable cycle : int;
  stats : stats;
  eval_counts : int array; (* per-signal evaluation count (profiling) *)
  mutable probe : probe option; (* observation hook: fired on value commits *)
}

let create ?(strategy = Event_driven) netlist =
  let n = Netlist.length netlist in
  let reg_state = Array.make (max n 1) (Bitvec.zero 1) in
  let input_vals = Array.make (max n 1) (Bitvec.zero 1) in
  let input_nodes = ref [] in
  let nmems = Array.length (Netlist.mems netlist) in
  let mem_readers = Array.make (max nmems 1) [] in
  for s = n - 1 downto 0 do
    match Netlist.node netlist s with
    | Reg { init; _ } -> reg_state.(s) <- init
    | Input name ->
      input_vals.(s) <- Bitvec.zero (Netlist.width netlist s);
      input_nodes := (s, name) :: !input_nodes
    | Mem_read { mem; _ } -> mem_readers.(mem) <- s :: mem_readers.(mem)
    | Const _ | Unop _ | Binop _ | Mux _ | Concat _ | Extract _ | Zext _
    | Sext _ -> ()
  done;
  let mem_state =
    Array.map
      (fun (m : Netlist.mem) ->
        match m.init with
        | Some a ->
          if Array.length a <> m.depth then
            invalid_arg "Neteval: memory init size mismatch";
          Array.copy a
        | None -> Array.make m.depth (Bitvec.zero m.word_width))
      (Netlist.mems netlist)
  in
  { netlist;
    strategy;
    values = Array.make (max n 1) (Bitvec.zero 1);
    input_vals;
    input_nodes = Array.of_list !input_nodes;
    reg_state;
    mem_state;
    fanouts = Netlist.fanouts netlist;
    mem_readers = Array.map (fun l -> Array.of_list l) mem_readers;
    dirty = Array.make (max n 1) false;
    heap = Heap.create ();
    primed = false;
    cycle = 0;
    stats =
      { cycles = 0; settles = 0; nodes_evaluated = 0; events = 0;
        wall_time = 0. };
    eval_counts = Array.make (max n 1) 0;
    probe = None }

let set_probe t probe = t.probe <- Some probe

(* Observation only: fired after a value commit, never able to change it. *)
let notify t s v =
  match t.probe with
  | None -> ()
  | Some p -> p.on_value ~cycle:t.cycle s v

let apply_unop op a =
  match (op : Netlist.unop) with
  | U_not -> Bitvec.lognot a
  | U_neg -> Bitvec.neg a
  | U_reduce_or -> Bitvec.of_bool (not (Bitvec.is_zero a))

let apply_binop op a b =
  let open Bitvec in
  match (op : Netlist.binop) with
  | B_add -> add a b
  | B_sub -> sub a b
  | B_mul -> mul a b
  | B_udiv -> udiv a b
  | B_urem -> urem a b
  | B_sdiv -> sdiv a b
  | B_srem -> srem a b
  | B_and -> logand a b
  | B_or -> logor a b
  | B_xor -> logxor a b
  | B_shl -> shl a b
  | B_lshr -> lshr a b
  | B_ashr -> ashr a b
  | B_eq -> of_bool (equal a b)
  | B_ne -> of_bool (not (equal a b))
  | B_ult -> of_bool (ult a b)
  | B_ule -> of_bool (ule a b)
  | B_slt -> of_bool (slt a b)
  | B_sle -> of_bool (sle a b)

let eval_node t s =
  match Netlist.node t.netlist s with
  | Const bv -> bv
  | Input _ -> t.input_vals.(s)
  | Unop (op, a) -> apply_unop op t.values.(a)
  | Binop (op, a, b) -> apply_binop op t.values.(a) t.values.(b)
  | Mux { sel; if_true; if_false } ->
    if Bitvec.to_bool t.values.(sel) then t.values.(if_true)
    else t.values.(if_false)
  | Concat { hi; lo } -> Bitvec.concat t.values.(hi) t.values.(lo)
  | Extract { hi; lo; arg } -> Bitvec.extract ~hi ~lo t.values.(arg)
  | Zext { width; arg } -> Bitvec.zero_extend ~width t.values.(arg)
  | Sext { width; arg } -> Bitvec.sign_extend ~width t.values.(arg)
  | Reg _ -> t.reg_state.(s)
  | Mem_read { mem; addr } ->
    let contents = t.mem_state.(mem) in
    let a = Bitvec.to_int_unsigned t.values.(addr) in
    if a < Array.length contents then contents.(a)
    else Bitvec.zero (Netlist.width t.netlist s)

let mark_dirty t s =
  if not t.dirty.(s) then begin
    t.dirty.(s) <- true;
    Heap.push t.heap s
  end

(** Resolve the input assoc list once: update the per-node resolved values
    and mark the Input nodes whose value actually changed as dirty.  Missing
    inputs read as zero. *)
let set_inputs t inputs =
  Array.iter
    (fun (s, name) ->
      let w = Netlist.width t.netlist s in
      let v =
        match List.assoc_opt name inputs with
        | Some bv -> Bitvec.resize ~signed:false ~width:w bv
        | None -> Bitvec.zero w
      in
      if not (Bitvec.equal v t.input_vals.(s)) then begin
        t.input_vals.(s) <- v;
        mark_dirty t s
      end)
    t.input_nodes

let full_sweep t =
  let n = Netlist.length t.netlist in
  for s = 0 to n - 1 do
    let v = eval_node t s in
    t.eval_counts.(s) <- t.eval_counts.(s) + 1;
    if not (Bitvec.equal v t.values.(s)) then begin
      t.values.(s) <- v;
      t.stats.events <- t.stats.events + 1;
      notify t s v
    end
  done;
  t.stats.nodes_evaluated <- t.stats.nodes_evaluated + n;
  Heap.clear t.heap;
  Array.fill t.dirty 0 (Array.length t.dirty) false;
  t.primed <- true

let drain_events t =
  while not (Heap.is_empty t.heap) do
    let s = Heap.pop_min t.heap in
    t.dirty.(s) <- false;
    let v = eval_node t s in
    t.stats.nodes_evaluated <- t.stats.nodes_evaluated + 1;
    t.eval_counts.(s) <- t.eval_counts.(s) + 1;
    if not (Bitvec.equal v t.values.(s)) then begin
      t.values.(s) <- v;
      t.stats.events <- t.stats.events + 1;
      notify t s v;
      Array.iter (fun u -> mark_dirty t u) t.fanouts.(s)
    end
  done

(* Settle with inputs already resolved by [set_inputs]. *)
let settle_resolved t =
  t.stats.settles <- t.stats.settles + 1;
  match t.strategy with
  | Full_sweep -> full_sweep t
  | Event_driven -> if t.primed then drain_events t else full_sweep t

let settle t ~inputs =
  set_inputs t inputs;
  settle_resolved t

let value t s = t.values.(s)

let output_signal t name =
  match List.assoc_opt name (Netlist.outputs t.netlist) with
  | Some s -> s
  | None ->
    invalid_arg
      (Printf.sprintf
         "Neteval.output: netlist %S has no output %S (outputs: %s)"
         (Netlist.name t.netlist) name
         (match Netlist.outputs t.netlist with
         | [] -> "<none>"
         | outs -> String.concat ", " (List.map fst outs)))

let output t name = value t (output_signal t name)
let cycle t = t.cycle
let stats t = t.stats
let netlist t = t.netlist
let eval_counts t = Array.copy t.eval_counts

(** Advance state: clock edge after a [settle].  Register and memory
    updates that change stored state mark their users dirty so the next
    event-driven settle re-evaluates exactly the affected cone. *)
let tick t =
  let nl = t.netlist in
  let updates = ref [] in
  for s = 0 to Netlist.length nl - 1 do
    match Netlist.node nl s with
    | Reg { next; enable; _ } ->
      let enabled =
        match enable with
        | None -> true
        | Some e -> Bitvec.to_bool t.values.(e)
      in
      if enabled && next >= 0 then updates := (s, t.values.(next)) :: !updates
    | Const _ | Input _ | Unop _ | Binop _ | Mux _ | Concat _ | Extract _
    | Zext _ | Sext _ | Mem_read _ -> ()
  done;
  List.iter
    (fun (s, v) ->
      if not (Bitvec.equal v t.reg_state.(s)) then begin
        t.reg_state.(s) <- v;
        mark_dirty t s
      end)
    !updates;
  Array.iteri
    (fun i (m : Netlist.mem) ->
      match m.write_port with
      | None -> ()
      | Some (we, addr, data) ->
        if Bitvec.to_bool t.values.(we) then begin
          let a = Bitvec.to_int_unsigned t.values.(addr) in
          if a < m.depth then begin
            let v = t.values.(data) in
            if not (Bitvec.equal v t.mem_state.(i).(a)) then begin
              t.mem_state.(i).(a) <- v;
              (* conservative: wake every reader of this memory; the read
                 that hits the written word changes value, the others settle
                 back without propagating further *)
              Array.iter (fun s -> mark_dirty t s) t.mem_readers.(i)
            end
          end
        end)
    (Netlist.mems t.netlist);
  t.cycle <- t.cycle + 1;
  t.stats.cycles <- t.cycle

(** Evaluate a purely combinational netlist once; also returns the
    evaluator counters for that settle. *)
let eval_combinational_stats ?strategy ?probe netlist ~inputs =
  let t = create ?strategy netlist in
  Option.iter (set_probe t) probe;
  settle t ~inputs;
  ( List.map (fun (name, s) -> (name, t.values.(s))) (Netlist.outputs netlist),
    t.stats )

let eval_combinational netlist ~inputs =
  fst (eval_combinational_stats netlist ~inputs)

(** Clock an existing evaluator until the 1-bit output [done_name] is set
    or [max_cycles] elapse; returns outputs and the cycle count.  The
    [done] output and the primary inputs are resolved to signal ids once,
    before the polling loop.  Exposed separately from [run_until_done] so
    callers that need the evaluator afterwards (probes, per-node
    evaluation counts) can create and keep their own instance. *)
let drive t ~inputs ~done_name ~max_cycles =
  let done_sig = output_signal t done_name in
  set_inputs t inputs;
  let t0 = Sys.time () in
  let rec go () =
    settle_resolved t;
    if Bitvec.to_bool t.values.(done_sig) then
      Ok
        ( List.map
            (fun (n, s) -> (n, t.values.(s)))
            (Netlist.outputs t.netlist),
          t.cycle )
    else if t.cycle >= max_cycles then Error `Timeout
    else begin
      tick t;
      go ()
    end
  in
  let r = go () in
  t.stats.wall_time <- t.stats.wall_time +. (Sys.time () -. t0);
  r

(** Run a sequential netlist until the 1-bit output [done_name] is set or
    [max_cycles] elapse; returns outputs, the cycle count and the
    counters. *)
let run_until_done_stats ?strategy ?probe netlist ~inputs ~done_name
    ~max_cycles =
  let t = create ?strategy netlist in
  Option.iter (set_probe t) probe;
  match drive t ~inputs ~done_name ~max_cycles with
  | Ok (outputs, cycles) -> Ok (outputs, cycles, t.stats)
  | Error `Timeout -> Error `Timeout

let run_until_done ?strategy netlist ~inputs ~done_name ~max_cycles =
  match run_until_done_stats ?strategy netlist ~inputs ~done_name ~max_cycles with
  | Ok (outputs, cycles, _) -> Ok (outputs, cycles)
  | Error `Timeout -> Error `Timeout
