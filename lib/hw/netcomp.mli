(** Compiled netlist simulation: levelize once, then run closures.

    [Neteval] interprets the netlist graph on every settle — each node
    evaluation re-dispatches on the node constructor and re-boxes its
    result.  This module compiles the netlist once into straight-line
    closure arrays: signals are levelized (topological strata over the
    combinational dependence edges), each operator becomes one
    specialized [unit -> unit] closure writing a preallocated slot in an
    unboxed [int] value array, registers are double-buffered across
    [tick], and cycles batch with no per-cycle graph walk.  Probe hooks
    (VCD tracing) only pay when attached: an id-order change walk against
    a shadow array reproduces [Neteval]'s committed-change stream
    exactly.

    The compiled engine requires every signal and memory word to fit an
    unboxed OCaml int (width <= 62).  Wider designs transparently fall
    back to the event-driven interpreter, which also remains available as
    the differential oracle for the compiled engine (see
    [bench/simcomp_bench.ml] and [chlsc compile --verify-sim]). *)

val compilable : Netlist.t -> bool
(** Can this netlist run on the compiled int engine?  Requires all
    signal and memory-word widths in [1;62], width-matched binop
    operands and write ports.  When [false], the functions below
    delegate to {!Neteval} (event-driven). *)

type t

val create : Netlist.t -> t
(** Levelize and compile.  Falls back to an embedded {!Neteval} instance
    when the netlist is not {!compilable}. *)

val compiled : t -> bool
(** [true] when running on closures, [false] on the interpreter
    fallback. *)

val num_levels : t -> int
(** Topological strata count (0 for the interpreter fallback). *)

val reset : t -> unit
(** Rewind to power-on state — registers and memories reload their
    initial images, the cycle counter restarts — while keeping the
    compiled closures, so one [create] can serve many runs.  On the
    interpreter fallback this rebuilds the {!Neteval} instance
    (dropping any attached probe; re-attach after reset if needed). *)

val set_probe : t -> Neteval.probe -> unit
(** Observe committed value changes (id order within each settle), with
    the same change stream [Neteval] produces.  Attaching a probe
    enables the shadow-compare walk; unobserved runs skip it. *)

val settle : t -> inputs:(string * Bitvec.t) list -> unit
val tick : t -> unit
val cycle : t -> int
val value : t -> Netlist.signal -> Bitvec.t
val output : t -> string -> Bitvec.t
val stats : t -> Neteval.stats

val drive :
  t -> inputs:(string * Bitvec.t) list -> done_name:string ->
  max_cycles:int ->
  ((string * Bitvec.t) list * int, [ `Timeout ]) result
(** Clock until the 1-bit output [done_name] is set; mirrors
    {!Neteval.drive}. *)

(** {1 One-shot wrappers (mirror the {!Neteval} API)} *)

val eval_combinational_stats :
  ?probe:Neteval.probe -> Netlist.t -> inputs:(string * Bitvec.t) list ->
  (string * Bitvec.t) list * Neteval.stats

val eval_combinational :
  Netlist.t -> inputs:(string * Bitvec.t) list -> (string * Bitvec.t) list

val run_until_done_stats :
  ?probe:Neteval.probe -> Netlist.t -> inputs:(string * Bitvec.t) list ->
  done_name:string -> max_cycles:int ->
  ((string * Bitvec.t) list * int * Neteval.stats, [ `Timeout ]) result

val run_until_done :
  Netlist.t -> inputs:(string * Bitvec.t) list -> done_name:string ->
  max_cycles:int ->
  ((string * Bitvec.t) list * int, [ `Timeout ]) result
