(* Word-level synchronous netlists.

   A netlist is a graph of typed nodes (constants, inputs, operators, muxes,
   registers, memory ports) referenced by dense integer signal ids.  It is
   the common hardware substrate: Cones emits purely combinational netlists,
   the FSMD backends elaborate their controller+datapath into one, and the
   area model, Verilog emitter and evaluator all consume it. *)

type signal = int

type unop = U_not | U_neg | U_reduce_or

type binop =
  | B_add | B_sub | B_mul | B_udiv | B_urem | B_sdiv | B_srem
  | B_and | B_or | B_xor
  | B_shl | B_lshr | B_ashr
  | B_eq | B_ne | B_ult | B_ule | B_slt | B_sle

type node =
  | Const of Bitvec.t
  | Input of string
  | Unop of unop * signal
  | Binop of binop * signal * signal
  | Mux of { sel : signal; if_true : signal; if_false : signal }
  | Concat of { hi : signal; lo : signal }
  | Extract of { hi : int; lo : int; arg : signal }
  | Zext of { width : int; arg : signal }
  | Sext of { width : int; arg : signal }
  | Reg of { init : Bitvec.t; next : signal; enable : signal option }
  | Mem_read of { mem : int; addr : signal }

type mem = {
  mem_name : string;
  word_width : int;
  depth : int;
  (* Synchronous write port; at a clock edge, if [we]=1 the word at [waddr]
     becomes [wdata].  Reads (Mem_read nodes) are combinational. *)
  mutable write_port : (signal * signal * signal) option; (* we, waddr, wdata *)
  init : Bitvec.t array option;
}

type t = {
  mutable nodes : node array;
  mutable widths : int array;
  mutable count : int;
  mutable mems : mem list; (* reverse order of creation *)
  mutable outputs : (string * signal) list; (* reverse order *)
  mutable name : string;
  mutable fanout_cache : signal array array option;
      (* signal id -> combinational users; rebuilt when the node count has
         changed since it was computed (see [fanouts]) *)
}

let create ?(name = "top") () =
  { nodes = Array.make 64 (Const (Bitvec.zero 1));
    widths = Array.make 64 0;
    count = 0;
    mems = [];
    outputs = [];
    name;
    fanout_cache = None }

let length t = t.count
let node t s = t.nodes.(s)
let width t s = t.widths.(s)
let name t = t.name

let ensure_capacity t =
  if t.count = Array.length t.nodes then begin
    let nodes = Array.make (2 * t.count) (Const (Bitvec.zero 1)) in
    let widths = Array.make (2 * t.count) 0 in
    Array.blit t.nodes 0 nodes 0 t.count;
    Array.blit t.widths 0 widths 0 t.count;
    t.nodes <- nodes;
    t.widths <- widths
  end

let add t ~width node =
  ensure_capacity t;
  let s = t.count in
  t.nodes.(s) <- node;
  t.widths.(s) <- width;
  t.count <- t.count + 1;
  s

let const t bv = add t ~width:(Bitvec.width bv) (Const bv)
let const_int t ~width n = const t (Bitvec.of_int ~width n)
let input t name ~width = add t ~width (Input name)

let unop t op a =
  let w = match op with U_reduce_or -> 1 | U_not | U_neg -> width t a in
  add t ~width:w (Unop (op, a))

let is_comparison = function
  | B_eq | B_ne | B_ult | B_ule | B_slt | B_sle -> true
  | B_add | B_sub | B_mul | B_udiv | B_urem | B_sdiv | B_srem | B_and | B_or
  | B_xor | B_shl | B_lshr | B_ashr -> false

let binop t op a b =
  let w = if is_comparison op then 1 else width t a in
  add t ~width:w (Binop (op, a, b))

let mux t ~sel ~if_true ~if_false =
  add t ~width:(width t if_true) (Mux { sel; if_true; if_false })

let concat t ~hi ~lo =
  add t ~width:(width t hi + width t lo) (Concat { hi; lo })

let extract t ~hi ~lo arg = add t ~width:(hi - lo + 1) (Extract { hi; lo; arg })
let zext t ~width:w arg = add t ~width:w (Zext { width = w; arg })
let sext t ~width:w arg = add t ~width:w (Sext { width = w; arg })

(** Resize a signal to [width] following C conversion rules. *)
let resize t ~signed ~width:w s =
  let cur = width t s in
  if cur = w then s
  else if w < cur then extract t ~hi:(w - 1) ~lo:0 s
  else if signed then sext t ~width:w s
  else zext t ~width:w s

(* Registers are created in two steps so feedback loops can be built:
   [reg_forward] allocates the register with a dummy next, [reg_connect]
   patches in the real next-state signal. *)
let reg_forward t ~init =
  add t ~width:(Bitvec.width init) (Reg { init; next = -1; enable = None })

let reg_connect t r ~next ?enable () =
  match t.nodes.(r) with
  | Reg { init; _ } -> t.nodes.(r) <- Reg { init; next; enable }
  | Const _ | Input _ | Unop _ | Binop _ | Mux _ | Concat _ | Extract _
  | Zext _ | Sext _ | Mem_read _ ->
    invalid_arg "Netlist.reg_connect: not a register"

let reg t ~init ~next ?enable () =
  add t ~width:(Bitvec.width init) (Reg { init; next; enable })

let add_mem t ~name ~word_width ~depth ?init () =
  let m =
    { mem_name = name; word_width; depth; write_port = None; init }
  in
  t.mems <- t.mems @ [ m ];
  List.length t.mems - 1

let mem_read t ~mem ~addr =
  let m = List.nth t.mems mem in
  add t ~width:m.word_width (Mem_read { mem; addr })

let mem_write t ~mem ~we ~addr ~data =
  let m = List.nth t.mems mem in
  (match m.write_port with
  | None -> ()
  | Some _ -> invalid_arg "Netlist.mem_write: write port already connected");
  m.write_port <- Some (we, addr, data)

let mems t = Array.of_list t.mems

let set_output t name s = t.outputs <- (name, s) :: t.outputs
let outputs t = List.rev t.outputs

let inputs t =
  let acc = ref [] in
  for s = t.count - 1 downto 0 do
    match t.nodes.(s) with
    | Input n -> acc := (n, s) :: !acc
    | Const _ | Unop _ | Binop _ | Mux _ | Concat _ | Extract _ | Zext _
    | Sext _ | Reg _ | Mem_read _ -> ()
  done;
  !acc

(** Combinational fan-in of a node (register nexts are sequential edges and
    are not included; use [sequential_deps] for those). *)
let comb_deps = function
  | Const _ | Input _ | Reg _ -> []
  | Unop (_, a) -> [ a ]
  | Binop (_, a, b) -> [ a; b ]
  | Mux { sel; if_true; if_false } -> [ sel; if_true; if_false ]
  | Concat { hi; lo } -> [ hi; lo ]
  | Extract { arg; _ } | Zext { arg; _ } | Sext { arg; _ } -> [ arg ]
  | Mem_read { addr; _ } -> [ addr ]

let sequential_deps = function
  | Reg { next; enable; _ } ->
    next :: (match enable with None -> [] | Some e -> [ e ])
  | Const _ | Input _ | Unop _ | Binop _ | Mux _ | Concat _ | Extract _
  | Zext _ | Sext _ | Mem_read _ -> []

(** Fanout index: for every signal, the combinational nodes that consume it
    (register next-states and memory write ports are sequential edges and are
    excluded).  Because builders only reference already-created signals, every
    user id is strictly greater than the signal id — the evaluator relies on
    this to process events in topological (= id) order.  The index is computed
    on first use and cached; it is transparently rebuilt if nodes have been
    added since (the cache is keyed on the node count). *)
let fanouts t =
  match t.fanout_cache with
  | Some f when Array.length f = t.count -> f
  | Some _ | None ->
    let counts = Array.make t.count 0 in
    for s = 0 to t.count - 1 do
      List.iter (fun d -> counts.(d) <- counts.(d) + 1) (comb_deps t.nodes.(s))
    done;
    let f = Array.init t.count (fun s -> Array.make counts.(s) 0) in
    let fill = Array.make t.count 0 in
    for s = 0 to t.count - 1 do
      List.iter
        (fun d ->
          f.(d).(fill.(d)) <- s;
          fill.(d) <- fill.(d) + 1)
        (comb_deps t.nodes.(s))
    done;
    t.fanout_cache <- Some f;
    f

let count_if t pred =
  let n = ref 0 in
  for s = 0 to t.count - 1 do
    if pred t.nodes.(s) then incr n
  done;
  !n

let num_registers t =
  count_if t (function
    | Reg _ -> true
    | Const _ | Input _ | Unop _ | Binop _ | Mux _ | Concat _ | Extract _
    | Zext _ | Sext _ | Mem_read _ -> false)

let string_of_unop = function
  | U_not -> "~" | U_neg -> "-" | U_reduce_or -> "|"

let string_of_binop = function
  | B_add -> "+" | B_sub -> "-" | B_mul -> "*"
  | B_udiv -> "u/" | B_urem -> "u%" | B_sdiv -> "/" | B_srem -> "%"
  | B_and -> "&" | B_or -> "|" | B_xor -> "^"
  | B_shl -> "<<" | B_lshr -> ">>" | B_ashr -> ">>>"
  | B_eq -> "==" | B_ne -> "!=" | B_ult -> "u<" | B_ule -> "u<="
  | B_slt -> "<" | B_sle -> "<="
