(** Word-level synchronous netlists: the common hardware substrate.

    A netlist is a graph of typed nodes (constants, inputs, operators,
    muxes, registers, memory ports) referenced by dense signal ids.
    Cones emits purely combinational netlists; the FSMD backends
    elaborate controller+datapath into one; the area model, Verilog
    emitter and evaluator all consume it.

    Builder discipline: combinational fan-in always references already-
    created signals, so signal id order is a topological order for
    combinational dependencies (the evaluator relies on it).  Only
    register next-state inputs and memory write ports may point forward,
    via the two-step [reg_forward]/[reg_connect] and [mem_write]. *)

type signal = int

type unop = U_not | U_neg | U_reduce_or

type binop =
  | B_add | B_sub | B_mul | B_udiv | B_urem | B_sdiv | B_srem
  | B_and | B_or | B_xor
  | B_shl | B_lshr | B_ashr
  | B_eq | B_ne | B_ult | B_ule | B_slt | B_sle

type node =
  | Const of Bitvec.t
  | Input of string
  | Unop of unop * signal
  | Binop of binop * signal * signal
  | Mux of { sel : signal; if_true : signal; if_false : signal }
  | Concat of { hi : signal; lo : signal }
  | Extract of { hi : int; lo : int; arg : signal }
  | Zext of { width : int; arg : signal }
  | Sext of { width : int; arg : signal }
  | Reg of { init : Bitvec.t; next : signal; enable : signal option }
  | Mem_read of { mem : int; addr : signal }

type mem = {
  mem_name : string;
  word_width : int;
  depth : int;
  mutable write_port : (signal * signal * signal) option;
      (** we, waddr, wdata — synchronous write; reads are combinational *)
  init : Bitvec.t array option;
}

type t

val create : ?name:string -> unit -> t
val length : t -> int
val node : t -> signal -> node
val width : t -> signal -> int
val name : t -> string

(** {1 Building} *)

val add : t -> width:int -> node -> signal
val const : t -> Bitvec.t -> signal
val const_int : t -> width:int -> int -> signal
val input : t -> string -> width:int -> signal
val unop : t -> unop -> signal -> signal

val is_comparison : binop -> bool

val binop : t -> binop -> signal -> signal -> signal
(** Result width: 1 for comparisons, else the left operand's. *)

val mux : t -> sel:signal -> if_true:signal -> if_false:signal -> signal
val concat : t -> hi:signal -> lo:signal -> signal
val extract : t -> hi:int -> lo:int -> signal -> signal
val zext : t -> width:int -> signal -> signal
val sext : t -> width:int -> signal -> signal

val resize : t -> signed:bool -> width:int -> signal -> signal
(** C conversion rules: truncate narrowing, extend per [signed]. *)

val reg_forward : t -> init:Bitvec.t -> signal
(** Allocate a register with its next-state unconnected (feedback). *)

val reg_connect : t -> signal -> next:signal -> ?enable:signal -> unit -> unit

val reg : t -> init:Bitvec.t -> next:signal -> ?enable:signal -> unit -> signal

val add_mem :
  t -> name:string -> word_width:int -> depth:int ->
  ?init:Bitvec.t array -> unit -> int

val mem_read : t -> mem:int -> addr:signal -> signal

val mem_write : t -> mem:int -> we:signal -> addr:signal -> data:signal -> unit
(** Connect the (single) synchronous write port.
    @raise Invalid_argument if already connected. *)

val mems : t -> mem array

val set_output : t -> string -> signal -> unit
val outputs : t -> (string * signal) list
val inputs : t -> (string * signal) list

(** {1 Traversal} *)

val comb_deps : node -> signal list
(** Combinational fan-in (register nexts are sequential edges). *)

val sequential_deps : node -> signal list

val fanouts : t -> signal array array
(** Fanout index: [(fanouts t).(s)] lists the combinational users of [s]
    (register next-states and write ports excluded).  User ids are always
    strictly greater than [s], so id order is a valid event-processing
    order.  Computed once and cached; rebuilt automatically if nodes have
    been added since. *)

val num_registers : t -> int

val string_of_unop : unop -> string
val string_of_binop : binop -> string
