(* Compiled netlist simulation.

   Neteval walks the node graph on every settle (and on every tick),
   re-dispatching on constructors and boxing every intermediate value.
   Here the netlist builds its own simulator instead: one compile pass
   levelizes the combinational nodes into topological strata and emits a
   specialized [unit -> unit] closure per operator, all reading and
   writing a single unboxed [int] value array (values are stored masked,
   as unsigned bit patterns).  A settle is then a straight-line run over
   the closure arrays; a tick latches register next-values into a double
   buffer, commits memory write ports and swaps — no graph traversal
   anywhere on the cycle path.

   Fidelity: arithmetic is bit-identical to Bitvec at widths <= 62
   (masking by [(1 lsl w) - 1]; signed views via shift-extend; division
   by zero follows the hardware-divider convention; shifts at or beyond
   the width produce zero, sign bits for arithmetic right shifts).
   Designs with wider signals fall back to the event-driven interpreter
   transparently, so callers never see a capability error.

   Observation: probes reproduce Neteval's committed-change stream — an
   id-order walk comparing each signal against a shadow array (seeded
   with 1-bit zeros, exactly like Neteval's value array) fires the probe
   for every value that changed during the settle.  The walk only runs
   when a probe is attached, so unobserved cycles pay nothing. *)

let int_width_limit = 62

(* (1 lsl w) - 1 for w in 0..62, precomputed once *)
let masks =
  Array.init (int_width_limit + 1) (fun w -> (1 lsl w) - 1)

(* signed view of a masked [w]-bit pattern *)
let[@inline] sx v w = (v lsl (Sys.int_size - w)) asr (Sys.int_size - w)

let[@inline] to_bits bv = Int64.to_int (Bitvec.to_int64_unsigned bv)

let compilable nl =
  let ok = ref true in
  let check_w w = if w < 1 || w > int_width_limit then ok := false in
  let n = Netlist.length nl in
  for s = 0 to n - 1 do
    check_w (Netlist.width nl s);
    match Netlist.node nl s with
    | Netlist.Binop (op, a, b) ->
      (* Bitvec raises Width_mismatch on width-mixed operands (and eq/ne
         silently compare unequal); shifts accept any amount width. *)
      (match op with
      | Netlist.B_shl | Netlist.B_lshr | Netlist.B_ashr -> ()
      | _ -> if Netlist.width nl a <> Netlist.width nl b then ok := false)
    | Netlist.Const _ | Netlist.Input _ | Netlist.Unop _ | Netlist.Mux _
    | Netlist.Concat _ | Netlist.Extract _ | Netlist.Zext _ | Netlist.Sext _
    | Netlist.Reg _ | Netlist.Mem_read _ -> ()
  done;
  Array.iter
    (fun (m : Netlist.mem) ->
      check_w m.word_width;
      (match m.write_port with
      | Some (_, _, data) ->
        if Netlist.width nl data <> m.word_width then ok := false
      | None -> ());
      match m.init with
      | Some cells ->
        Array.iter
          (fun c -> if Bitvec.width c <> m.word_width then ok := false)
          cells
      | None -> ())
    (Netlist.mems nl);
  !ok

type reg = { rs : int; next : int; enable : int (* -1 = always enabled *) }

type wport = { wmem : int; we : int; waddr : int; wdata : int; wdepth : int }

type comp = {
  netlist : Netlist.t;
  widths : int array;
  values : int array; (* masked unsigned bit patterns, one per signal *)
  levels : (unit -> unit) array array; (* strata of specialized closures *)
  closure_count : int;
  input_nodes : (int * string) array;
  regs : reg array;
  reg_buf : int array; (* double buffer: next values latched here *)
  reg_init : (int * int) array; (* signal id, initial bits — for [reset] *)
  mem_state : int array array;
  mem_init : int array array;
  wports : wport array;
  mutable ccycle : int;
  cstats : Neteval.stats;
  mutable probe : Neteval.probe option;
  prev : Bitvec.t array; (* shadow values for the observed-change walk *)
}

(* the fallback interpreter sits behind a ref so [reset] can rebuild it
   (Neteval has no in-place reset: its event heap, dirty flags and primed
   bit make fresh construction the reliable way back to cycle 0) *)
type interp = { inl : Netlist.t; mutable ie : Neteval.t }

type t = Compiled of comp | Interp of interp

let compile nl =
  let n = Netlist.length nl in
  let widths = Array.init n (Netlist.width nl) in
  let values = Array.make (max n 1) 0 in
  let v = values in
  let mems = Netlist.mems nl in
  let mem_init =
    Array.map
      (fun (m : Netlist.mem) ->
        match m.Netlist.init with
        | Some cells -> Array.map to_bits cells
        | None -> Array.make m.Netlist.depth 0)
      mems
  in
  let mem_state = Array.map Array.copy mem_init in
  let input_nodes = ref [] in
  let regs = ref [] in
  let reg_init = ref [] in
  (* levelize: id order is topological for combinational deps, so one
     in-order pass computes level(s) = 1 + max(level(comb deps)) *)
  let lev = Array.make (max n 1) 0 in
  let closures = Array.make (max n 1) None in
  for s = 0 to n - 1 do
    let node = Netlist.node nl s in
    let deps = Netlist.comb_deps node in
    lev.(s) <-
      (match deps with
      | [] -> 0
      | _ -> 1 + List.fold_left (fun acc d -> max acc lev.(d)) 0 deps);
    let w = widths.(s) in
    let m = masks.(w) in
    let cl =
      match node with
      | Netlist.Const bv ->
        v.(s) <- to_bits bv;
        None
      | Netlist.Input name ->
        input_nodes := (s, name) :: !input_nodes;
        None
      | Netlist.Reg { init; next; enable } ->
        v.(s) <- to_bits init;
        reg_init := (s, v.(s)) :: !reg_init;
        if next >= 0 then begin
          let enable = match enable with Some e -> e | None -> -1 in
          regs := { rs = s; next; enable } :: !regs
        end;
        None
      | Netlist.Unop (op, a) ->
        Some
          (match op with
          | Netlist.U_not -> fun () -> v.(s) <- v.(a) lxor m
          | Netlist.U_neg -> fun () -> v.(s) <- -v.(a) land m
          | Netlist.U_reduce_or ->
            fun () -> v.(s) <- (if v.(a) = 0 then 0 else 1))
      | Netlist.Binop (op, a, b) ->
        let ow = widths.(a) in
        (* operand width: arithmetic results carry it, comparisons are
           1-bit; [compilable] guarantees widths.(b) = ow except for
           shifts, whose amount may have any width *)
        let om = masks.(ow) in
        Some
          (match op with
          | Netlist.B_add -> fun () -> v.(s) <- (v.(a) + v.(b)) land om
          | Netlist.B_sub -> fun () -> v.(s) <- (v.(a) - v.(b)) land om
          | Netlist.B_mul -> fun () -> v.(s) <- v.(a) * v.(b) land om
          | Netlist.B_udiv ->
            fun () ->
              let d = v.(b) in
              v.(s) <- (if d = 0 then om else v.(a) / d)
          | Netlist.B_urem ->
            fun () ->
              let d = v.(b) in
              v.(s) <- (if d = 0 then v.(a) else v.(a) mod d)
          | Netlist.B_sdiv ->
            fun () ->
              let d = v.(b) in
              v.(s) <-
                (if d = 0 then om else sx v.(a) ow / sx d ow land om)
          | Netlist.B_srem ->
            fun () ->
              let d = v.(b) in
              v.(s) <-
                (if d = 0 then v.(a) else sx v.(a) ow mod sx d ow land om)
          | Netlist.B_and -> fun () -> v.(s) <- v.(a) land v.(b)
          | Netlist.B_or -> fun () -> v.(s) <- v.(a) lor v.(b)
          | Netlist.B_xor -> fun () -> v.(s) <- v.(a) lxor v.(b)
          | Netlist.B_shl ->
            fun () ->
              let amt = v.(b) in
              v.(s) <- (if amt >= ow then 0 else v.(a) lsl amt land om)
          | Netlist.B_lshr ->
            fun () ->
              let amt = v.(b) in
              v.(s) <- (if amt >= ow then 0 else v.(a) lsr amt)
          | Netlist.B_ashr ->
            fun () ->
              let amt = v.(b) in
              let amt = if amt > ow - 1 then ow - 1 else amt in
              v.(s) <- sx v.(a) ow asr amt land om
          | Netlist.B_eq ->
            fun () -> v.(s) <- (if v.(a) = v.(b) then 1 else 0)
          | Netlist.B_ne ->
            fun () -> v.(s) <- (if v.(a) <> v.(b) then 1 else 0)
          | Netlist.B_ult ->
            fun () -> v.(s) <- (if v.(a) < v.(b) then 1 else 0)
          | Netlist.B_ule ->
            fun () -> v.(s) <- (if v.(a) <= v.(b) then 1 else 0)
          | Netlist.B_slt ->
            fun () -> v.(s) <- (if sx v.(a) ow < sx v.(b) ow then 1 else 0)
          | Netlist.B_sle ->
            fun () ->
              v.(s) <- (if sx v.(a) ow <= sx v.(b) ow then 1 else 0))
      | Netlist.Mux { sel; if_true; if_false } ->
        Some
          (fun () -> v.(s) <- (if v.(sel) <> 0 then v.(if_true) else v.(if_false)))
      | Netlist.Concat { hi; lo } ->
        let lw = widths.(lo) in
        Some (fun () -> v.(s) <- (v.(hi) lsl lw) lor v.(lo))
      | Netlist.Extract { hi; lo; arg } ->
        let em = masks.(hi - lo + 1) in
        Some (fun () -> v.(s) <- (v.(arg) lsr lo) land em)
      | Netlist.Zext { arg; _ } -> Some (fun () -> v.(s) <- v.(arg))
      | Netlist.Sext { arg; _ } ->
        let aw = widths.(arg) in
        Some (fun () -> v.(s) <- sx v.(arg) aw land m)
      | Netlist.Mem_read { mem; addr } ->
        let contents = mem_state.(mem) in
        let depth = Array.length contents in
        Some
          (fun () ->
            let a = v.(addr) in
            v.(s) <- (if a < depth then contents.(a) else 0))
    in
    closures.(s) <- cl
  done;
  (* bucket closures into strata, keeping id order within each level *)
  let max_lev = Array.fold_left max 0 lev in
  let buckets = Array.make (max_lev + 1) [] in
  let count = ref 0 in
  for s = n - 1 downto 0 do
    match closures.(s) with
    | Some f ->
      buckets.(lev.(s)) <- f :: buckets.(lev.(s));
      incr count
    | None -> ()
  done;
  let levels =
    Array.of_list
      (List.filter_map
         (fun b -> match b with [] -> None | _ -> Some (Array.of_list b))
         (Array.to_list buckets))
  in
  let wports =
    let acc = ref [] in
    Array.iteri
      (fun i (mm : Netlist.mem) ->
        match mm.Netlist.write_port with
        | Some (we, waddr, wdata) ->
          acc :=
            { wmem = i; we; waddr; wdata; wdepth = mm.Netlist.depth } :: !acc
        | None -> ())
      mems;
    Array.of_list (List.rev !acc)
  in
  let regs = Array.of_list (List.rev !regs) in
  { netlist = nl;
    widths;
    values;
    levels;
    closure_count = !count;
    input_nodes = Array.of_list (List.rev !input_nodes);
    regs;
    reg_buf = Array.make (max (Array.length regs) 1) 0;
    reg_init = Array.of_list !reg_init;
    mem_state;
    mem_init;
    wports;
    ccycle = 0;
    cstats =
      { Neteval.cycles = 0; settles = 0; nodes_evaluated = 0; events = 0;
        wall_time = 0. };
    probe = None;
    prev = Array.make (max n 1) (Bitvec.zero 1) }

let create nl =
  if compilable nl then Compiled (compile nl)
  else Interp { inl = nl; ie = Neteval.create nl }

let compiled = function Compiled _ -> true | Interp _ -> false
let num_levels = function Compiled c -> Array.length c.levels | Interp _ -> 0

(* Back to power-on state, keeping the compiled closures: registers and
   memories reload their initial images, the cycle counter and the
   probe's shadow array rewind.  This is what makes the engine reusable —
   compile once, run many.  (The interpreter fallback is rebuilt instead:
   Neteval's event heap / dirty flags / primed bit have no cheap rewind.) *)
let reset = function
  | Compiled c ->
    Array.iter (fun (s, b) -> c.values.(s) <- b) c.reg_init;
    Array.iteri
      (fun i init -> Array.blit init 0 c.mem_state.(i) 0 (Array.length init))
      c.mem_init;
    c.ccycle <- 0;
    c.cstats.Neteval.cycles <- 0;
    Array.fill c.prev 0 (Array.length c.prev) (Bitvec.zero 1)
  | Interp i -> i.ie <- Neteval.create i.inl

let set_probe t p =
  match t with
  | Compiled c -> c.probe <- Some p
  | Interp i -> Neteval.set_probe i.ie p

let bv_of c s =
  Bitvec.make ~width:c.widths.(s) (Int64.of_int c.values.(s))

(* The observed-change walk: id order over all signals, exactly the
   committed-change stream Neteval's settle produces (its value array is
   likewise seeded with 1-bit zeros, so the first settle reports every
   signal whose settled value differs from a 1-bit zero). *)
let notify_changes c (p : Neteval.probe) =
  let n = Array.length c.widths in
  for s = 0 to n - 1 do
    let v = bv_of c s in
    if not (Bitvec.equal v c.prev.(s)) then begin
      c.prev.(s) <- v;
      c.cstats.Neteval.events <- c.cstats.Neteval.events + 1;
      p.Neteval.on_value ~cycle:c.ccycle s v
    end
  done

let set_inputs_c c inputs =
  Array.iter
    (fun (s, name) ->
      let w = c.widths.(s) in
      let bv =
        match List.assoc_opt name inputs with
        | Some bv -> Bitvec.resize ~signed:false ~width:w bv
        | None -> Bitvec.zero w
      in
      c.values.(s) <- to_bits bv)
    c.input_nodes

let settle_resolved c =
  c.cstats.Neteval.settles <- c.cstats.Neteval.settles + 1;
  c.cstats.Neteval.nodes_evaluated <-
    c.cstats.Neteval.nodes_evaluated + c.closure_count;
  let levels = c.levels in
  for l = 0 to Array.length levels - 1 do
    let level = levels.(l) in
    for i = 0 to Array.length level - 1 do
      level.(i) ()
    done
  done;
  match c.probe with None -> () | Some p -> notify_changes c p

let settle t ~inputs =
  match t with
  | Compiled c ->
    set_inputs_c c inputs;
    settle_resolved c
  | Interp i -> Neteval.settle i.ie ~inputs

let tick_c c =
  let v = c.values in
  (* phase 1: latch next values (read-before-write across registers) *)
  let nregs = Array.length c.regs in
  for i = 0 to nregs - 1 do
    let r = c.regs.(i) in
    c.reg_buf.(i) <-
      (if r.enable >= 0 && v.(r.enable) = 0 then v.(r.rs) else v.(r.next))
  done;
  (* memory write ports read pre-commit values too *)
  for i = 0 to Array.length c.wports - 1 do
    let p = c.wports.(i) in
    if v.(p.we) <> 0 then begin
      let a = v.(p.waddr) in
      if a < p.wdepth then c.mem_state.(p.wmem).(a) <- v.(p.wdata)
    end
  done;
  (* phase 2: commit *)
  for i = 0 to nregs - 1 do
    v.(c.regs.(i).rs) <- c.reg_buf.(i)
  done;
  c.ccycle <- c.ccycle + 1;
  c.cstats.Neteval.cycles <- c.ccycle

let tick = function Compiled c -> tick_c c | Interp i -> Neteval.tick i.ie

let cycle = function Compiled c -> c.ccycle | Interp i -> Neteval.cycle i.ie

let value t s =
  match t with Compiled c -> bv_of c s | Interp i -> Neteval.value i.ie s

let output_signal_c c name =
  match List.assoc_opt name (Netlist.outputs c.netlist) with
  | Some s -> s
  | None ->
    invalid_arg
      (Printf.sprintf
         "Netcomp.output: netlist %S has no output %S (outputs: %s)"
         (Netlist.name c.netlist) name
         (match Netlist.outputs c.netlist with
         | [] -> "<none>"
         | outs -> String.concat ", " (List.map fst outs)))

let output t name =
  match t with
  | Compiled c -> bv_of c (output_signal_c c name)
  | Interp i -> Neteval.output i.ie name

let stats = function Compiled c -> c.cstats | Interp i -> Neteval.stats i.ie

let drive t ~inputs ~done_name ~max_cycles =
  match t with
  | Interp i -> Neteval.drive i.ie ~inputs ~done_name ~max_cycles
  | Compiled c ->
    let done_sig = output_signal_c c done_name in
    set_inputs_c c inputs;
    let t0 = Sys.time () in
    let rec go () =
      settle_resolved c;
      if c.values.(done_sig) <> 0 then
        Ok
          ( List.map
              (fun (n, s) -> (n, bv_of c s))
              (Netlist.outputs c.netlist),
            c.ccycle )
      else if c.ccycle >= max_cycles then Error `Timeout
      else begin
        tick_c c;
        go ()
      end
    in
    let r = go () in
    c.cstats.Neteval.wall_time <-
      c.cstats.Neteval.wall_time +. (Sys.time () -. t0);
    r

let eval_combinational_stats ?probe nl ~inputs =
  let t = create nl in
  Option.iter (set_probe t) probe;
  settle t ~inputs;
  ( List.map (fun (name, s) -> (name, value t s)) (Netlist.outputs nl),
    stats t )

let eval_combinational nl ~inputs =
  fst (eval_combinational_stats nl ~inputs)

let run_until_done_stats ?probe nl ~inputs ~done_name ~max_cycles =
  let t = create nl in
  Option.iter (set_probe t) probe;
  match drive t ~inputs ~done_name ~max_cycles with
  | Ok (outputs, cycles) -> Ok (outputs, cycles, stats t)
  | Error `Timeout -> Error `Timeout

let run_until_done nl ~inputs ~done_name ~max_cycles =
  match run_until_done_stats nl ~inputs ~done_name ~max_cycles with
  | Ok (outputs, cycles, _) -> Ok (outputs, cycles)
  | Error `Timeout -> Error `Timeout
