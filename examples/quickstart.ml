(* Quickstart: compile one C function to hardware with three of the
   surveyed schemes, simulate each, and check them against the software
   semantics.

   Run with:  dune exec examples/quickstart.exe *)

let source =
  {|
  int isqrt(int x) {
    int r = 0;
    while ((r + 1) * (r + 1) <= x) {
      r = r + 1;
    }
    return r;
  }
  |}

let () =
  print_endline "CHLS quickstart: integer square root, three ways\n";
  print_endline "Source:";
  print_endline source;
  (* 1. the software semantics (what C says the program means) *)
  let inputs = [ 0; 1; 15; 16; 17; 1000 ] in
  Printf.printf "Software oracle: %s\n\n"
    (String.concat ", "
       (List.map
          (fun x ->
            Printf.sprintf "isqrt(%d)=%d" x
              (Chls.reference source ~entry:"isqrt" ~args:[ x ]))
          inputs));
  (* 2. synthesize with three different timing disciplines *)
  List.iter
    (fun backend ->
      let design = Chls.compile backend source ~entry:"isqrt" in
      Printf.printf "--- %s ---\n" (Chls.backend_name backend);
      List.iter
        (fun x ->
          let r = design.Design.run (Design.int_args [ x ]) in
          Printf.printf "  isqrt(%d) = %s%s\n" x
            (match r.Design.result with
            | Some v -> string_of_int (Bitvec.to_int v)
            | None -> "?")
            (match r.Design.cycles with
            | Some c -> Printf.sprintf "  (%d cycles)" c
            | None -> (
              match r.Design.time_units with
              | Some t -> Printf.sprintf "  (%.0f time units, no clock)" t
              | None -> "")))
        inputs;
      (* every backend must agree with the oracle *)
      let checks =
        Chls.verify_against_reference design source ~entry:"isqrt"
          ~arg_sets:(List.map (fun x -> [ x ]) inputs)
      in
      Printf.printf "  matches software semantics: %b\n\n"
        (List.for_all (fun c -> c.Chls.agrees) checks))
    [ (Registry.get "transmogrifier"); (Registry.get "handelc"); (Registry.get "cash") ];
  (* 3. look at generated RTL *)
  let design = Chls.compile (Registry.get "bachc") source ~entry:"isqrt" in
  match design.Design.verilog () with
  | Some v ->
    let lines = String.split_on_char '\n' v in
    Printf.printf "First lines of the Bach C backend's Verilog (%d lines):\n"
      (List.length lines);
    List.iteri (fun i l -> if i < 12 then Printf.printf "  %s\n" l) lines
  | None -> print_endline "no Verilog view"
