(* Hardware/software codesign: the paper's second motivation — "today's
   systems usually contain a mix of hardware and software, and it is often
   unclear initially which portions to implement in hardware.  Here, using
   a single language should simplify the migration task."

   This example does exactly that migration study: one C source with two
   candidate kernels; each is estimated in software (reference interpreter
   step counts x a CPI model) and in hardware (cycle-accurate simulation x
   estimated clock), and the tool recommends a partition.

   Run with:  dune exec examples/codesign.exe *)

(* A toy software CPU model: each interpreter statement-step costs ~6
   machine cycles on a 1ns-cycle processor; hardware time units are gate
   delays of ~0.1ns.  Both land in nanoseconds. *)
let software_ns steps = float_of_int steps *. 6.0 *. 1.0
let hardware_ns cycles period = float_of_int cycles *. period *. 0.1

type candidate = { name : string; source : string; entry : string; args : int list }

let candidates =
  [ { name = "crc8 (bit-serial, control heavy)";
      source = (Workloads.crc).Workloads.source;
      entry = "crc8"; args = [ 0xA5 ] };
    { name = "fir (dataflow, multiply rich)";
      source = (Workloads.fir).Workloads.source;
      entry = "fir"; args = [ 5; -3 ] };
    { name = "bsort (data-dependent swaps)";
      source = (Workloads.bsort).Workloads.source;
      entry = "bsort"; args = [ 7 ] } ]

let () =
  print_endline "HW/SW codesign: where should each kernel run?\n";
  Printf.printf "%-36s %12s %12s %10s %s\n" "kernel" "sw (ns)" "hw (ns)"
    "speedup" "recommendation";
  print_endline (String.make 92 '-');
  List.iter
    (fun c ->
      let program = Typecheck.parse_and_check c.source in
      (* software estimate: untimed interpreter work metric *)
      let outcome =
        Interp.run program ~entry:c.entry
          ~args:(List.map (Bitvec.of_int ~width:64) c.args)
      in
      let sw = software_ns outcome.Interp.steps in
      (* hardware estimate: scheduled FSMD *)
      let design = Chls.compile_program (Registry.get "bachc") program ~entry:c.entry in
      let r = design.Design.run (Design.int_args c.args) in
      let hw =
        hardware_ns (Option.get r.Design.cycles)
          (Option.get design.Design.clock_period)
      in
      (* sanity: both computed the same value *)
      assert (
        Option.map Bitvec.to_int r.Design.result
        = Option.map Bitvec.to_int outcome.Interp.return_value);
      let speedup = sw /. hw in
      Printf.printf "%-36s %12.0f %12.0f %9.1fx %s\n" c.name sw hw speedup
        (if speedup > 4.0 then "move to hardware"
         else if speedup > 1.5 then "worth considering"
         else "keep in software");
      ())
    candidates;
  print_endline
    "\nThe point of a single-language flow: the same source ran through the\n\
     interpreter (software estimate) and through synthesis (hardware \
     estimate)\nwithout rewriting — the migration the paper's proponents \
     promise.";
  (* and when a kernel moves to hardware, SpecC-style refinement checks the
     migration step by step *)
  let c = List.nth candidates 1 in
  let program = Typecheck.parse_and_check c.source in
  let _, report =
    Specc.refine program ~entry:c.entry ~test_vectors:[ c.args; [ 1; 2 ] ]
  in
  Printf.printf
    "\nSpecC refinement of '%s': %d checks across 4 levels, all equivalent \
     = %b\n"
    c.name
    (List.length report.Specc.checks)
    report.Specc.all_equivalent
