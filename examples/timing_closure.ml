(* Timing closure under the different timing-control models — the paper's
   "Time" section as a walkthrough:

     1. implicit rules force source recoding (Transmogrifier unrolling,
        Handel-C fusion);
     2. HardwareC's declarative constraints move the burden to the
        compiler, which explores allocations instead.

   Run with:  dune exec examples/timing_closure.exe *)

let () =
  print_endline "Part 1: meeting timing by *recoding* (implicit rules)\n";
  let w = Workloads.checksum in
  let program = Workloads.parse w in
  let args = [ 3 ] in
  let measure name backend p =
    let design = Chls.compile_program backend p ~entry:w.Workloads.entry in
    let r = design.Design.run (Design.int_args args) in
    Printf.printf "  %-34s %5d cycles @ period %.1f  => wall %.0f\n" name
      (Option.get r.Design.cycles)
      (Option.get design.Design.clock_period)
      (Option.get (Design.latency_estimate design r))
  in
  print_endline "Transmogrifier C (cycle per loop iteration):";
  measure "as written" (Registry.get "transmogrifier") program;
  measure "after full loop unrolling" (Registry.get "transmogrifier")
    (Loopopt.unroll_all_program program);
  print_endline "Handel-C (cycle per assignment):";
  measure "as written" (Registry.get "handelc") program;
  measure "after fusing temporaries" (Registry.get "handelc")
    (Loopopt.fuse_program program);
  print_endline
    "\nBoth recodings change the *source* to change the timing — the \
     designer\nworks around the language's clock rule.\n";

  print_endline
    "Part 2: meeting timing by *declaring* it (HardwareC constraints)\n";
  let kernel max_cycles =
    Printf.sprintf
      {|
      int f(int a, int b, int c, int d) {
        int r = 0;
        constrain(1, %d) {
          int p0 = a * b;
          int p1 = c * d;
          int p2 = (a + c) * (b + d);
          int s0 = p0 + p1;
          r = s0 ^ p2;
        }
        return r;
      }
      |}
      max_cycles
  in
  List.iter
    (fun max_cycles ->
      let program = Typecheck.parse_and_check (kernel max_cycles) in
      match Hardwarec.compile program ~entry:"f" with
      | design, report ->
        let r = design.Design.run (Design.int_args [ 3; 5; 7; 9 ]) in
        Printf.printf
          "  constrain(1, %d): met with '%s' (%d total cycles, result %d)\n"
          max_cycles report.Hardwarec.chosen_allocation
          (Option.get r.Design.cycles)
          (Bitvec.to_int (Option.get r.Design.result));
        List.iter
          (fun (alloc, steps, ok) ->
            Printf.printf "      tried %-30s -> %d steps %s\n" alloc steps
              (if ok then "(meets constraint)" else "(too slow)"))
          report.Hardwarec.exploration
      | exception Hardwarec.Unsatisfiable msg ->
        Printf.printf "  constrain(1, %d): unsatisfiable (%s)\n" max_cycles msg)
    [ 4; 2; 1 ];
  print_endline
    "\nSame source every time; only the constraint moved.  \"While such \
     constraints\ncan be subtle for the designer and challenging for the \
     compiler, they allow\neasier design-space exploration.\""
