/* Euclid's algorithm: the running example of the survey's comparisons. */
int gcd(int a, int b) {
  while (b != 0) { int t = b; b = a % b; a = t; }
  return a;
}
