/* Bit-serial CRC-32 (reflected 0xEDB88320) of one input word.
   CRC-32 of four zero bytes is the standard 0x2144DF1C:

     chlsc compare examples/crc32.c -e crc32 --args 0
     chlsc run examples/crc32.c -e crc32 -a 0        # 558161692 */

int crc32(int input) {
  unsigned int crc = 0xFFFFFFFFu;
  unsigned int data = (unsigned int)input;
  for (int i = 0; i < 32; i = i + 1) {
    unsigned int bit = (crc ^ data) & 1u;
    crc = crc >> 1;
    if (bit != 0u) { crc = crc ^ 0xEDB88320u; }
    data = data >> 1;
  }
  return (int)(crc ^ 0xFFFFFFFFu);
}
