(* DSP scenario: an 8-tap FIR filter, the workload the surveyed languages
   were marketed on.  Synthesizes it with every scheme that accepts it,
   compares cycles / clock / wall-time / area, and writes the Bach C
   RTL to fir.v.

   Run with:  dune exec examples/fir_filter.exe *)

let w = Workloads.fir

let () =
  Printf.printf "FIR filter across the surveyed synthesis schemes\n\n%s\n"
    w.Workloads.source;
  let program = Workloads.parse w in
  Printf.printf "%-16s %8s %8s %11s %12s %8s\n" "backend" "cycles" "clock"
    "wall time" "area (GE)" "correct";
  print_endline (String.make 70 '-');
  List.iter
    (fun backend ->
      if Chls.accepts backend program then begin
        let design =
          Chls.compile_program backend program ~entry:w.Workloads.entry
        in
        let ok =
          List.for_all
            (fun c -> c.Chls.agrees)
            (Chls.verify_against_reference design w.Workloads.source
               ~entry:w.Workloads.entry ~arg_sets:w.Workloads.arg_sets)
        in
        let r = design.Design.run (Design.int_args [ 1; 2 ]) in
        Printf.printf "%-16s %8s %8s %11s %12s %8b\n"
          (Chls.backend_name backend)
          (match r.Design.cycles with
          | Some c -> string_of_int c
          | None -> "-")
          (match design.Design.clock_period with
          | Some p -> Printf.sprintf "%.1f" p
          | None -> "-")
          (match Design.latency_estimate design r with
          | Some t -> Printf.sprintf "%.0f" t
          | None -> "-")
          (match design.Design.area () with
          | Some a -> Printf.sprintf "%.0f" a.Area.total_area
          | None -> "-")
          ok
      end)
    Chls.all_compiling_backends;
  (* pipelining analysis of the accumulation loop *)
  print_newline ();
  let lowered, _ = Passes.lower_simplify program ~entry:w.Workloads.entry in
  let func = lowered.Lower.func in
  (match Pipeline.modulo_schedule func with
  | r ->
    Printf.printf
      "Pipelining the inner loop: II=%d (RecMII=%d, ResMII=%d), %.2fx \
       throughput\n"
      r.Pipeline.ii r.Pipeline.rec_mii r.Pipeline.res_mii r.Pipeline.speedup
  | exception Pipeline.Irregular reason ->
    Printf.printf "Loop not pipelineable: %s\n" reason);
  (* dump RTL *)
  let design = Chls.compile_program (Registry.get "bachc") program ~entry:"fir" in
  match design.Design.verilog () with
  | Some v ->
    Out_channel.with_open_text "fir.v" (fun oc -> output_string oc v);
    Printf.printf "Wrote Bach C RTL to fir.v (%d bytes)\n" (String.length v)
  | None -> ()
